// Package cloudfog is a from-scratch Go reproduction of "CloudFog: Towards
// High Quality of Experience in Cloud Gaming" (Lin & Shen, ICPP 2015).
//
// CloudFog inserts a fog of supernodes between a game cloud and thin
// clients: the cloud computes authoritative game state and sends small
// update messages to supernodes, which render, encode and stream per-player
// game video to nearby players. The repository implements the fog-assisted
// infrastructure with its supernode assignment protocol, the
// receiver-driven encoding rate adaptation, the deadline-driven sender
// buffer scheduling, and the economic model — plus the substrates the
// paper's evaluation needs: a deterministic discrete-event simulator, a
// synthetic PlanetLab-like latency landscape, a churn workload generator,
// the Cloud and EdgeCloud baselines, and a loopback-TCP testbed.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for
// paper-vs-measured results, and bench_test.go for the per-figure
// regeneration benchmarks.
package cloudfog
