// Package flight is the simulator's flight recorder: a compact, versioned
// binary capture of every nondeterministic input of a run — the launch spec
// (seed, population, infrastructure, figure selection, health apparatus),
// the compiled fault-event schedules the resilience and scaling figures
// interpret, the generated world's fingerprint, and the RNG stream seeds
// and draw counts of the sharded data plane — together with witness data
// (canonical figure bytes and per-figure observability deltas) that lets a
// later process re-run the recording and prove, byte for byte, that it
// reproduced the original.
//
// The simulator's determinism contract makes this sufficient: every run is
// a pure function of (seed, config), so a recording does not need event-by-
// event logs. It needs the inputs, plus enough digests to localize any
// divergence when the contract is broken (a code change, a different
// platform's math library). Each figure in a recording doubles as a
// checkpoint: because figures restore the world after themselves, a replay
// may start at any recorded figure (Replayer.From) and verify only the
// suffix, skipping the expense of re-proving figures already verified.
//
// The what-if mode re-runs a recording with exactly one knob overridden —
// detector kind, shard count, bandwidth scale, population, … — and emits a
// structured figure-by-figure and counter-by-counter diff against the
// recorded baseline, with both sides' observability ledgers reconciled
// (segments, fault orphans, heartbeat detections) so a counterfactual whose
// accounting does not balance is rejected rather than reported.
//
// On disk a recording is a recfmt stream: the "CFFR" magic and a format
// version, then CRC-protected chunks (spec, world fingerprint, compiled
// schedules, one chunk per figure, final snapshot). Every chunk carries its
// own checksum, so corruption is detected before any comparison runs.
package flight

import (
	"cloudfog/internal/obs"

	"cloudfog/internal/experiment"
)

// Format identity. Version bumps whenever the chunk layout or any canonical
// encoding changes; readers reject versions newer than they understand.
const (
	Magic   = "CFFR"
	Version = 1
)

// Chunk types of the recording stream.
const (
	chunkSpec     = 1 // RunSpec, self-delimiting binary encoding
	chunkWorld    = 2 // world fingerprint (uvarint)
	chunkSchedule = 3 // one compiled fault schedule: label, checksum, bytes
	chunkFigure   = 4 // one figure checkpoint: name, figure bytes, obs delta, RNG witness
	chunkFinal    = 5 // final cumulative observability snapshot
)

// RNGStream is one random stream's witness: the seed it was derived from
// and how many draws the run consumed. A replay that consumes a different
// number of draws has diverged even if the figure bytes happen to agree.
type RNGStream struct {
	Label string `json:"label"`
	Seed  int64  `json:"seed"`
	Draws uint64 `json:"draws"`
}

// ScheduleCapture is one compiled fault-event schedule: the deterministic
// expansion of a fault profile against the world's targets, in the
// versioned binary form fault.Schedule marshals to. The checksum is the
// recfmt CRC of those bytes, letting a replay fail fast on a schedule
// mismatch before interpreting a single event.
type ScheduleCapture struct {
	Label    string
	Checksum uint32
	Bytes    []byte
}

// FigureCapture is one figure's checkpoint: the canonical encoding of its
// FigureResult (the replay comparison unit — identical bytes mean identical
// series down to every float bit), the observability counters the figure
// added to the registry, and the RNG witness of the sharded data plane when
// the figure ran one (figscale).
type FigureCapture struct {
	Name string
	// Fig is the decoded result, for printing and what-if diffing. FigBytes
	// is its canonical encoding; replays compare bytes, never structs.
	Fig      experiment.FigureResult
	FigBytes []byte
	// ObsDelta holds only the counters and histograms this figure changed.
	ObsDelta obs.Snapshot
	ObsBytes []byte
	RNG      []RNGStream
}

// Recording is a decoded flight recording.
type Recording struct {
	Version   uint64
	Spec      RunSpec
	WorldFP   uint32
	Schedules []ScheduleCapture
	Figures   []FigureCapture
	// Final is the cumulative observability snapshot at the end of the run;
	// FinalBytes its canonical encoding. The what-if ledgers reconcile
	// against it.
	Final      obs.Snapshot
	FinalBytes []byte
}

// Figure returns the named figure capture, or nil.
func (r *Recording) Figure(name string) *FigureCapture {
	for i := range r.Figures {
		if r.Figures[i].Name == name {
			return &r.Figures[i]
		}
	}
	return nil
}
