package flight

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"cloudfog/internal/experiment"
	"cloudfog/internal/fault"
	"cloudfog/internal/health"
	"cloudfog/internal/recfmt"
)

// RunSpec is the launch half of a recording: every input the simulator
// needs to reproduce a run. Zero/nil fields mean "paper default" and are
// filled by the experiment package exactly as the CLI's defaults are, so a
// spec encodes only what the original invocation actually pinned.
type RunSpec struct {
	Seed        int64
	Players     int
	Supernodes  int
	Datacenters int
	// Shards partitions the sharded figures' world; SweepWorkers bounds the
	// sweep pool. Both are recorded because they are part of the invocation,
	// even though figure bytes are invariant to them — a replay reproduces
	// the run as launched, and the what-if mode overrides them to prove the
	// invariance on a recorded incident.
	Shards       int
	SweepWorkers int

	Horizon    time.Duration
	Epoch      time.Duration // sharded-run barrier interval (0 = default)
	NodeBudget int           // figscale QoE node sample cap (0 = default, <0 = all)

	Detector string // "", "oracle", "timeout", "phi"
	Overload bool
	Breaker  bool

	// BandwidthScale multiplies every provisioned egress/uplink capacity
	// (datacenter egress, edge-server egress, per-slot supernode uplink).
	// 0 or 1 means unscaled.
	BandwidthScale float64

	// Figures is the selection, in canonical registry names and order.
	// Empty means every figure.
	Figures []string

	// FaultProfile is the resilience figures' fault profile JSON (the
	// -faults file, verbatim); nil uses the built-in chaos profile.
	FaultProfile []byte

	// Sweep overrides; nil slices use the paper defaults.
	DCCounts         []int
	SNCounts         []int
	PlayerCounts     []int
	ContinuityCounts []int
	Loads            []int
	ChurnRates       []float64
	Reqs             []time.Duration
	DetectIntervals  []time.Duration
}

// Normalize validates the spec and rewrites the figure selection into
// canonical registry names and order.
func (s RunSpec) Normalize() (RunSpec, error) {
	figs, err := experiment.SelectFigures(strings.Join(s.Figures, ","))
	if err != nil {
		return s, err
	}
	names := make([]string, len(figs))
	for i, f := range figs {
		names[i] = f.Name
	}
	s.Figures = names
	if _, err := health.ParseMode(s.Detector); err != nil {
		return s, err
	}
	if s.BandwidthScale < 0 {
		return s, fmt.Errorf("flight: negative bandwidth scale %g", s.BandwidthScale)
	}
	if s.FaultProfile != nil {
		if _, err := fault.Parse(s.FaultProfile); err != nil {
			return s, err
		}
	}
	return s, nil
}

// Summary is the one-line human description of the spec.
func (s RunSpec) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d players=%d supernodes=%d datacenters=%d shards=%d figures=%s",
		s.Seed, s.Players, s.Supernodes, s.Datacenters, s.Shards, strings.Join(s.Figures, ","))
	if s.Detector != "" && s.Detector != "oracle" {
		fmt.Fprintf(&b, " detector=%s", s.Detector)
	}
	if s.Overload {
		b.WriteString(" overload")
	}
	if s.Breaker {
		b.WriteString(" breaker")
	}
	if s.BandwidthScale != 0 && s.BandwidthScale != 1 {
		fmt.Fprintf(&b, " bandwidth=%g", s.BandwidthScale)
	}
	if len(s.FaultProfile) > 0 {
		b.WriteString(" faults=custom")
	}
	return b.String()
}

// appendSpec encodes the spec. The layout is positional — the spec chunk is
// versioned by the recording header, so fields are only ever appended in
// new format versions, never reordered.
func appendSpec(dst []byte, s RunSpec) []byte {
	dst = recfmt.AppendVarint(dst, s.Seed)
	dst = recfmt.AppendVarint(dst, int64(s.Players))
	dst = recfmt.AppendVarint(dst, int64(s.Supernodes))
	dst = recfmt.AppendVarint(dst, int64(s.Datacenters))
	dst = recfmt.AppendVarint(dst, int64(s.Shards))
	dst = recfmt.AppendVarint(dst, int64(s.SweepWorkers))
	dst = recfmt.AppendVarint(dst, int64(s.Horizon))
	dst = recfmt.AppendVarint(dst, int64(s.Epoch))
	dst = recfmt.AppendVarint(dst, int64(s.NodeBudget))
	dst = recfmt.AppendString(dst, s.Detector)
	dst = appendBool(dst, s.Overload)
	dst = appendBool(dst, s.Breaker)
	dst = recfmt.AppendFloat64(dst, s.BandwidthScale)
	dst = recfmt.AppendUvarint(dst, uint64(len(s.Figures)))
	for _, f := range s.Figures {
		dst = recfmt.AppendString(dst, f)
	}
	dst = recfmt.AppendBytes(dst, s.FaultProfile)
	dst = appendInts(dst, s.DCCounts)
	dst = appendInts(dst, s.SNCounts)
	dst = appendInts(dst, s.PlayerCounts)
	dst = appendInts(dst, s.ContinuityCounts)
	dst = appendInts(dst, s.Loads)
	dst = recfmt.AppendUvarint(dst, uint64(len(s.ChurnRates)))
	for _, r := range s.ChurnRates {
		dst = recfmt.AppendFloat64(dst, r)
	}
	dst = appendDurs(dst, s.Reqs)
	dst = appendDurs(dst, s.DetectIntervals)
	return dst
}

func decodeSpec(payload []byte) (RunSpec, error) {
	r := recfmt.NewReader(payload)
	var s RunSpec
	s.Seed = r.Varint()
	s.Players = int(r.Varint())
	s.Supernodes = int(r.Varint())
	s.Datacenters = int(r.Varint())
	s.Shards = int(r.Varint())
	s.SweepWorkers = int(r.Varint())
	s.Horizon = time.Duration(r.Varint())
	s.Epoch = time.Duration(r.Varint())
	s.NodeBudget = int(r.Varint())
	s.Detector = r.String()
	s.Overload = r.Uvarint() != 0
	s.Breaker = r.Uvarint() != 0
	s.BandwidthScale = r.Float64()
	if n := r.Uvarint(); n > 0 {
		s.Figures = make([]string, n)
		for i := range s.Figures {
			s.Figures[i] = r.String()
		}
	}
	if b := r.Bytes(); len(b) > 0 {
		s.FaultProfile = append([]byte(nil), b...)
	}
	s.DCCounts = readInts(r)
	s.SNCounts = readInts(r)
	s.PlayerCounts = readInts(r)
	s.ContinuityCounts = readInts(r)
	s.Loads = readInts(r)
	if n := r.Uvarint(); n > 0 {
		s.ChurnRates = make([]float64, n)
		for i := range s.ChurnRates {
			s.ChurnRates[i] = r.Float64()
		}
	}
	s.Reqs = readDurs(r)
	s.DetectIntervals = readDurs(r)
	return s, r.Expect()
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return recfmt.AppendUvarint(dst, 1)
	}
	return recfmt.AppendUvarint(dst, 0)
}

func appendInts(dst []byte, vs []int) []byte {
	dst = recfmt.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = recfmt.AppendVarint(dst, int64(v))
	}
	return dst
}

func readInts(r *recfmt.Reader) []int {
	n := r.Uvarint()
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.Varint())
	}
	return out
}

func appendDurs(dst []byte, vs []time.Duration) []byte {
	dst = recfmt.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = recfmt.AppendVarint(dst, int64(v))
	}
	return dst
}

func readDurs(r *recfmt.Reader) []time.Duration {
	n := r.Uvarint()
	if n == 0 {
		return nil
	}
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(r.Varint())
	}
	return out
}

// Knobs lists the what-if override keys, sorted.
func Knobs() []string {
	out := make([]string, 0, len(knobs))
	for k := range knobs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// knobs maps a what-if key to the function applying it to a spec.
var knobs = map[string]func(s *RunSpec, value string) error{
	"seed":        func(s *RunSpec, v string) error { return setInt64(&s.Seed, v) },
	"players":     func(s *RunSpec, v string) error { return setInt(&s.Players, v) },
	"supernodes":  func(s *RunSpec, v string) error { return setInt(&s.Supernodes, v) },
	"datacenters": func(s *RunSpec, v string) error { return setInt(&s.Datacenters, v) },
	"shards":      func(s *RunSpec, v string) error { return setInt(&s.Shards, v) },
	"workers":     func(s *RunSpec, v string) error { return setInt(&s.SweepWorkers, v) },
	"nodebudget":  func(s *RunSpec, v string) error { return setInt(&s.NodeBudget, v) },
	"horizon":     func(s *RunSpec, v string) error { return setDur(&s.Horizon, v) },
	"epoch":       func(s *RunSpec, v string) error { return setDur(&s.Epoch, v) },
	"detector": func(s *RunSpec, v string) error {
		if _, err := health.ParseMode(v); err != nil {
			return err
		}
		s.Detector = v
		return nil
	},
	"overload": func(s *RunSpec, v string) error { return setBool(&s.Overload, v) },
	"breaker":  func(s *RunSpec, v string) error { return setBool(&s.Breaker, v) },
	"bandwidth": func(s *RunSpec, v string) error {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			return fmt.Errorf("flight: bandwidth scale %q is not a positive number", v)
		}
		s.BandwidthScale = f
		return nil
	},
}

// Override returns a copy of the spec with exactly one knob changed. The
// key accepts "key=value" in one argument or separate key and value.
func (s RunSpec) Override(key, value string) (RunSpec, error) {
	if value == "" {
		if k, v, ok := strings.Cut(key, "="); ok {
			key, value = k, v
		}
	}
	key = strings.ToLower(strings.TrimSpace(key))
	apply, ok := knobs[key]
	if !ok {
		return s, fmt.Errorf("flight: unknown what-if knob %q (have %s)",
			key, strings.Join(Knobs(), ", "))
	}
	out := s
	// Slices are shared with the base spec but never mutated by knobs.
	if err := apply(&out, strings.TrimSpace(value)); err != nil {
		return s, err
	}
	return out.Normalize()
}

func setInt(dst *int, v string) error {
	n, err := strconv.Atoi(v)
	if err != nil {
		return fmt.Errorf("flight: bad integer %q", v)
	}
	*dst = n
	return nil
}

func setInt64(dst *int64, v string) error {
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return fmt.Errorf("flight: bad integer %q", v)
	}
	*dst = n
	return nil
}

func setDur(dst *time.Duration, v string) error {
	d, err := time.ParseDuration(v)
	if err != nil {
		return fmt.Errorf("flight: bad duration %q", v)
	}
	*dst = d
	return nil
}

func setBool(dst *bool, v string) error {
	b, err := strconv.ParseBool(v)
	if err != nil {
		return fmt.Errorf("flight: bad boolean %q", v)
	}
	*dst = b
	return nil
}
