package flight

import (
	"fmt"
	"strings"

	"cloudfog/internal/experiment"
	"cloudfog/internal/fault"
	"cloudfog/internal/obs"
	"cloudfog/internal/shard"
)

// runOutput is one execution of a spec: everything a recording stores, in
// decoded form. Record wraps it into a Recording; Replay compares it
// against one.
type runOutput struct {
	spec      RunSpec
	worldFP   uint32
	schedules []ScheduleCapture
	figures   []FigureCapture
	final     obs.Snapshot
}

// Record executes the spec and returns the finished recording. The run is
// always instrumented (a fresh obs registry), regardless of whether the
// original invocation asked for a report — the observability deltas are
// part of the witness.
func Record(spec RunSpec) (*Recording, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	out, err := spec.execute("")
	if err != nil {
		return nil, err
	}
	rec := &Recording{
		Version:   Version,
		Spec:      out.spec,
		WorldFP:   out.worldFP,
		Schedules: out.schedules,
		Figures:   out.figures,
		Final:     out.final,
	}
	rec.FinalBytes = appendSnapshot(nil, out.final)
	return rec, nil
}

// Run executes the spec's figures with no flight capture at all — no
// canonical encodings, no schedule marshalling, no snapshot deltas. It is
// the baseline the recording-overhead benchmark compares Record against,
// and a dry-run sanity check for specs.
func (s RunSpec) Run() error {
	s, err := s.Normalize()
	if err != nil {
		return err
	}
	figs, err := experiment.SelectFigures(strings.Join(s.Figures, ","))
	if err != nil {
		return err
	}
	cfg := s.config()
	w, err := experiment.NewWorld(cfg)
	if err != nil {
		return err
	}
	opts, err := s.options()
	if err != nil {
		return err
	}
	for _, fig := range figs {
		if _, err := fig.Run(w, opts); err != nil {
			return fmt.Errorf("%s: %w", fig.Name, err)
		}
	}
	return nil
}

// config builds the experiment configuration the spec pins down.
func (s RunSpec) config() experiment.Config {
	cfg := experiment.Default(s.Seed)
	if s.Players > 0 {
		cfg.Players = s.Players
	}
	if s.Supernodes > 0 {
		cfg.Supernodes = s.Supernodes
	}
	if s.Datacenters > 0 {
		cfg.Datacenters = s.Datacenters
	}
	cfg.Shards = s.Shards
	cfg.SweepWorkers = s.SweepWorkers
	if sc := s.BandwidthScale; sc != 0 && sc != 1 {
		cfg.Core.DCEgress = int64(float64(cfg.Core.DCEgress) * sc)
		cfg.Core.UplinkPerSlot = int64(float64(cfg.Core.UplinkPerSlot) * sc)
		cfg.EdgeServerEgress = int64(float64(cfg.EdgeServerEgress) * sc)
	}
	cfg.Obs = obs.NewRegistry()
	return cfg
}

// options builds the run options the spec pins down.
func (s RunSpec) options() (experiment.RunOptions, error) {
	opts := experiment.RunOptions{
		Horizon:          s.Horizon,
		Detector:         s.Detector,
		Overload:         s.Overload,
		Breaker:          s.Breaker,
		ScaleEpoch:       s.Epoch,
		ScaleNodeBudget:  s.NodeBudget,
		DCCounts:         s.DCCounts,
		SNCounts:         s.SNCounts,
		PlayerCounts:     s.PlayerCounts,
		ContinuityCounts: s.ContinuityCounts,
		Loads:            s.Loads,
		ChurnRates:       s.ChurnRates,
		Reqs:             s.Reqs,
		DetectIntervals:  s.DetectIntervals,
	}
	if len(s.FaultProfile) > 0 {
		p, err := fault.Parse(s.FaultProfile)
		if err != nil {
			return opts, err
		}
		opts.Faults = p
	}
	return opts, nil
}

// execute runs the spec's figure selection. A non-empty from starts at the
// named figure — the checkpoint-suffix replay path: figures restore the
// world behind themselves and the obs witness is stored as per-figure
// deltas of monotonic counters, so every recorded figure is independently
// verifiable without re-running its predecessors.
func (s RunSpec) execute(from string) (*runOutput, error) {
	figs, err := experiment.SelectFigures(strings.Join(s.Figures, ","))
	if err != nil {
		return nil, err
	}
	if from != "" {
		found := false
		for _, f := range figs {
			if f.Name == from {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("flight: checkpoint figure %q is not in the selection %v", from, s.Figures)
		}
	}
	cfg := s.config()
	w, err := experiment.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	out := &runOutput{spec: s, worldFP: w.Fingerprint()}

	opts, err := s.options()
	if err != nil {
		return nil, err
	}
	if out.schedules, err = compileSchedules(w, opts, figs); err != nil {
		return nil, err
	}

	skipping := from != ""
	for _, fig := range figs {
		if skipping && fig.Name == from {
			skipping = false
		}
		if skipping {
			continue
		}
		prev := cfg.Obs.Snapshot()
		var scaleRes *shard.Result
		opts.ScaleDiag = func(r shard.Result) { scaleRes = &r }
		res, err := fig.Run(w, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", fig.Name, err)
		}
		cap := FigureCapture{
			Name:     fig.Name,
			Fig:      res,
			FigBytes: appendFigure(nil, fig.Name, res),
			ObsDelta: snapshotDelta(prev, cfg.Obs.Snapshot()),
			RNG:      rngWitness(s, scaleRes),
		}
		cap.ObsBytes = appendSnapshot(nil, cap.ObsDelta)
		out.figures = append(out.figures, cap)
	}
	out.final = cfg.Obs.Snapshot()
	return out, nil
}

// compileSchedules expands every fault profile the selected figures will
// interpret into its deterministic event schedule and captures the
// versioned binary form. The resilience figures share one profile; the
// sharded scaling figure compiles its own.
func compileSchedules(w *experiment.World, opts experiment.RunOptions, figs []experiment.Figure) ([]ScheduleCapture, error) {
	var out []ScheduleCapture
	add := func(label string, p *fault.Profile) error {
		sched, err := fault.Compile(p, w.FaultTargets())
		if err != nil {
			return fmt.Errorf("flight: compiling %s schedule: %w", label, err)
		}
		b, err := sched.MarshalBinary()
		if err != nil {
			return fmt.Errorf("flight: encoding %s schedule: %w", label, err)
		}
		sum, err := sched.Checksum()
		if err != nil {
			return err
		}
		out = append(out, ScheduleCapture{Label: label, Checksum: sum, Bytes: b})
		return nil
	}
	resilience, scale := false, false
	for _, f := range figs {
		switch f.Name {
		case "figchurn", "figrecovery":
			resilience = true
		case "figscale":
			scale = true
		}
	}
	if resilience {
		if err := add("resilience", experiment.ResilienceProfile(w, opts)); err != nil {
			return nil, err
		}
	}
	if scale {
		if err := add("scale", experiment.ScaleProfile(w, opts)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// rngWitness derives the RNG stream witness of a sharded scaling run: each
// shard's split seed and draw count plus the fog's control-plane stream.
// Figures without a sharded data plane record no streams — their RNG use is
// a pure function of the world seed already pinned by the spec.
func rngWitness(s RunSpec, res *shard.Result) []RNGStream {
	if res == nil {
		return nil
	}
	out := make([]RNGStream, 0, len(res.ShardDraws)+1)
	for i, draws := range res.ShardDraws {
		seed := int64(0)
		if i < len(res.ShardSeeds) {
			seed = res.ShardSeeds[i]
		}
		out = append(out, RNGStream{Label: fmt.Sprintf("shard-%d", i), Seed: seed, Draws: draws})
	}
	// The fog's geolocation stream is minted at seed+200 (World.NewFog).
	out = append(out, RNGStream{Label: "fog", Seed: s.Seed + 200, Draws: res.FogDraws})
	return out
}
