package flight

import (
	"fmt"
	"os"

	"cloudfog/internal/recfmt"
)

// Encode serializes the recording into the CFFR chunk stream.
func Encode(rec *Recording) []byte {
	out := recfmt.AppendHeader(nil, Magic, Version)
	out = recfmt.AppendChunk(out, chunkSpec, appendSpec(nil, rec.Spec))
	out = recfmt.AppendChunk(out, chunkWorld, recfmt.AppendUvarint(nil, uint64(rec.WorldFP)))
	for _, sc := range rec.Schedules {
		var p []byte
		p = recfmt.AppendString(p, sc.Label)
		p = recfmt.AppendUvarint(p, uint64(sc.Checksum))
		p = recfmt.AppendBytes(p, sc.Bytes)
		out = recfmt.AppendChunk(out, chunkSchedule, p)
	}
	for _, fc := range rec.Figures {
		var p []byte
		p = recfmt.AppendString(p, fc.Name)
		p = recfmt.AppendBytes(p, fc.FigBytes)
		p = recfmt.AppendBytes(p, fc.ObsBytes)
		p = appendRNG(p, fc.RNG)
		out = recfmt.AppendChunk(out, chunkFigure, p)
	}
	fin := rec.FinalBytes
	if fin == nil {
		fin = appendSnapshot(nil, rec.Final)
	}
	return recfmt.AppendChunk(out, chunkFinal, fin)
}

// Decode parses a CFFR chunk stream, verifying the header, every chunk
// CRC, and each captured schedule's own header and checksum. Unknown chunk
// types within a supported version are an error — the format has no
// optional chunks yet, so an unrecognized type means corruption.
func Decode(data []byte) (*Recording, error) {
	version, rest, err := recfmt.CheckHeader(data, Magic, Version)
	if err != nil {
		return nil, err
	}
	rec := &Recording{Version: version}
	seenSpec, seenWorld, seenFinal := false, false, false
	for {
		typ, payload, next, done, err := recfmt.NextChunk(rest)
		if err != nil {
			return nil, fmt.Errorf("flight: %w", err)
		}
		if done {
			break
		}
		rest = next
		switch typ {
		case chunkSpec:
			if seenSpec {
				return nil, fmt.Errorf("flight: duplicate spec chunk")
			}
			seenSpec = true
			if rec.Spec, err = decodeSpec(payload); err != nil {
				return nil, err
			}
		case chunkWorld:
			if seenWorld {
				return nil, fmt.Errorf("flight: duplicate world chunk")
			}
			seenWorld = true
			r := recfmt.NewReader(payload)
			rec.WorldFP = uint32(r.Uvarint())
			if err := r.Expect(); err != nil {
				return nil, err
			}
		case chunkSchedule:
			r := recfmt.NewReader(payload)
			sc := ScheduleCapture{Label: r.String()}
			sc.Checksum = uint32(r.Uvarint())
			sc.Bytes = append([]byte(nil), r.Bytes()...)
			if err := r.Expect(); err != nil {
				return nil, err
			}
			if got := recfmt.Checksum(sc.Bytes); got != sc.Checksum {
				return nil, fmt.Errorf("flight: schedule %q checksum mismatch (stored %08x, computed %08x)",
					sc.Label, sc.Checksum, got)
			}
			rec.Schedules = append(rec.Schedules, sc)
		case chunkFigure:
			r := recfmt.NewReader(payload)
			fc := FigureCapture{Name: r.String()}
			fc.FigBytes = append([]byte(nil), r.Bytes()...)
			fc.ObsBytes = append([]byte(nil), r.Bytes()...)
			fc.RNG = readRNG(r)
			if err := r.Expect(); err != nil {
				return nil, err
			}
			name, fig, err := decodeFigure(fc.FigBytes)
			if err != nil {
				return nil, fmt.Errorf("flight: figure %q: %w", fc.Name, err)
			}
			if name != fc.Name {
				return nil, fmt.Errorf("flight: figure chunk %q wraps encoding of %q", fc.Name, name)
			}
			fc.Fig = fig
			if fc.ObsDelta, err = decodeSnapshot(fc.ObsBytes); err != nil {
				return nil, fmt.Errorf("flight: figure %q obs delta: %w", fc.Name, err)
			}
			rec.Figures = append(rec.Figures, fc)
		case chunkFinal:
			if seenFinal {
				return nil, fmt.Errorf("flight: duplicate final chunk")
			}
			seenFinal = true
			rec.FinalBytes = append([]byte(nil), payload...)
			if rec.Final, err = decodeSnapshot(payload); err != nil {
				return nil, fmt.Errorf("flight: final snapshot: %w", err)
			}
		default:
			return nil, fmt.Errorf("flight: unknown chunk type %d", typ)
		}
	}
	if !seenSpec {
		return nil, fmt.Errorf("flight: recording has no spec chunk")
	}
	if !seenWorld {
		return nil, fmt.Errorf("flight: recording has no world chunk")
	}
	if !seenFinal {
		return nil, fmt.Errorf("flight: recording has no final snapshot chunk")
	}
	return rec, nil
}

// Save writes the recording to path.
func Save(path string, rec *Recording) error {
	return os.WriteFile(path, Encode(rec), 0o644)
}

// Load reads and decodes a recording file.
func Load(path string) (*Recording, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}
