package flight

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"time"

	"cloudfog/internal/experiment"
)

// PointDelta is one changed series point: same x, different y.
type PointDelta struct {
	X    float64 `json:"x"`
	Base float64 `json:"base"`
	New  float64 `json:"new"`
}

// SeriesDelta is one series' changed points.
type SeriesDelta struct {
	Label string `json:"label"`
	// Shape notes a structural difference (point count, missing series);
	// empty when the series differ only in values.
	Shape  string       `json:"shape,omitempty"`
	Points []PointDelta `json:"points,omitempty"`
}

// LatencyDelta is one changed Figure 8 latency row, in nanoseconds.
type LatencyDelta struct {
	System     string `json:"system"`
	BaseMean   int64  `json:"base_mean_ns"`
	NewMean    int64  `json:"new_mean_ns"`
	BaseMedian int64  `json:"base_median_ns"`
	NewMedian  int64  `json:"new_median_ns"`
	BaseP90    int64  `json:"base_p90_ns"`
	NewP90     int64  `json:"new_p90_ns"`
}

// FigureDiff is one figure's QoE-by-QoE comparison.
type FigureDiff struct {
	Name      string `json:"name"`
	Identical bool   `json:"identical"`
	// Title notes a caption change (captions carry run tallies — kill
	// counts, detection means — so a changed title is itself a finding).
	BaseTitle string         `json:"base_title,omitempty"`
	NewTitle  string         `json:"new_title,omitempty"`
	Series    []SeriesDelta  `json:"series,omitempty"`
	Latency   []LatencyDelta `json:"latency,omitempty"`
}

// CounterDelta is one observability counter whose end-of-run value moved.
type CounterDelta struct {
	Name string `json:"name"`
	Base int64  `json:"base"`
	New  int64  `json:"new"`
}

// Diff is the structured outcome of a what-if replay: the recorded
// baseline against the same run with exactly one knob overridden. Both
// sides' ledgers are reconciled before the diff is returned.
type Diff struct {
	Knob  string `json:"knob"`
	Value string `json:"value"`

	BaseSpec string `json:"base_spec"`
	NewSpec  string `json:"new_spec"`

	Figures  []FigureDiff   `json:"figures"`
	Counters []CounterDelta `json:"counters,omitempty"`

	BaseLedgers Ledgers `json:"base_ledgers"`
	NewLedgers  Ledgers `json:"new_ledgers"`
}

// Empty reports whether the override changed nothing observable: every
// figure byte-identical and every counter unchanged.
func (d *Diff) Empty() bool {
	for _, f := range d.Figures {
		if !f.Identical {
			return false
		}
	}
	return len(d.Counters) == 0
}

// WhatIf re-runs the recording with one knob overridden and returns the
// structured diff against the recorded baseline. The baseline side comes
// entirely from the recording — it is never re-run — so the diff is
// grounded in the bytes that were actually captured, and both the recorded
// and the counterfactual ledgers must reconcile.
func (rec *Recording) WhatIf(key, value string) (*Diff, error) {
	spec, err := rec.Spec.Override(key, value)
	if err != nil {
		return nil, err
	}
	if k, v, ok := cutKey(key, value); ok {
		key, value = k, v
	}
	out, err := spec.execute("")
	if err != nil {
		return nil, fmt.Errorf("flight: what-if run: %w", err)
	}
	d := &Diff{
		Knob:        key,
		Value:       value,
		BaseSpec:    rec.Spec.Summary(),
		NewSpec:     spec.Summary(),
		BaseLedgers: Reconcile(rec.Final),
		NewLedgers:  Reconcile(out.final),
	}
	if err := d.BaseLedgers.Err(); err != nil {
		return nil, fmt.Errorf("flight: recorded baseline: %w", err)
	}
	if err := d.NewLedgers.Err(); err != nil {
		return nil, fmt.Errorf("flight: what-if run: %w", err)
	}

	live := map[string]*FigureCapture{}
	for i := range out.figures {
		live[out.figures[i].Name] = &out.figures[i]
	}
	for i := range rec.Figures {
		base := &rec.Figures[i]
		got, ok := live[base.Name]
		if !ok {
			d.Figures = append(d.Figures, FigureDiff{Name: base.Name,
				BaseTitle: title(base), NewTitle: "(not produced)"})
			continue
		}
		d.Figures = append(d.Figures, diffFigure(base, got))
	}
	d.Counters = diffCounters(rec.Final.Counters, out.final.Counters)
	return d, nil
}

func cutKey(key, value string) (string, string, bool) {
	if value != "" {
		return key, value, false
	}
	for i := range key {
		if key[i] == '=' {
			return key[:i], key[i+1:], true
		}
	}
	return key, value, false
}

func title(c *FigureCapture) string {
	if c.Fig.Title != "" {
		return c.Fig.Title
	}
	return c.Name
}

// diffFigure compares one figure pair point by point.
func diffFigure(base, got *FigureCapture) FigureDiff {
	fd := FigureDiff{Name: base.Name, Identical: bytes.Equal(base.FigBytes, got.FigBytes)}
	if fd.Identical {
		return fd
	}
	a, b := base.Fig, got.Fig
	if a.Title != b.Title {
		fd.BaseTitle, fd.NewTitle = a.Title, b.Title
	}
	bs := map[string]int{}
	for i, s := range b.Series {
		bs[s.Label] = i
	}
	for _, s := range a.Series {
		j, ok := bs[s.Label]
		if !ok {
			fd.Series = append(fd.Series, SeriesDelta{Label: s.Label, Shape: "absent from what-if run"})
			continue
		}
		delete(bs, s.Label)
		ns := b.Series[j]
		sd := SeriesDelta{Label: s.Label}
		if len(s.Points) != len(ns.Points) {
			sd.Shape = fmt.Sprintf("%d points vs %d", len(s.Points), len(ns.Points))
		}
		n := len(s.Points)
		if len(ns.Points) < n {
			n = len(ns.Points)
		}
		for i := 0; i < n; i++ {
			if s.Points[i] != ns.Points[i] {
				sd.Points = append(sd.Points, PointDelta{X: s.Points[i].X, Base: s.Points[i].Y, New: ns.Points[i].Y})
			}
		}
		if sd.Shape != "" || len(sd.Points) > 0 {
			fd.Series = append(fd.Series, sd)
		}
	}
	for label := range bs {
		fd.Series = append(fd.Series, SeriesDelta{Label: label, Shape: "only in what-if run"})
	}
	sort.Slice(fd.Series, func(i, j int) bool { return fd.Series[i].Label < fd.Series[j].Label })

	bl := map[string]experiment.LatencyResult{}
	for _, l := range b.Latency {
		bl[l.System] = l
	}
	for _, l := range a.Latency {
		nl, ok := bl[l.System]
		if !ok || nl == l {
			continue
		}
		fd.Latency = append(fd.Latency, LatencyDelta{
			System:   l.System,
			BaseMean: int64(l.Mean), NewMean: int64(nl.Mean),
			BaseMedian: int64(l.Median), NewMedian: int64(nl.Median),
			BaseP90: int64(l.P90), NewP90: int64(nl.P90),
		})
	}
	return fd
}

// diffCounters returns every counter whose end-of-run value moved, sorted.
func diffCounters(base, now map[string]int64) []CounterDelta {
	names := map[string]bool{}
	for n := range base {
		names[n] = true
	}
	for n := range now {
		names[n] = true
	}
	var out []CounterDelta
	for n := range names {
		if base[n] != now[n] {
			out = append(out, CounterDelta{Name: n, Base: base[n], New: now[n]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText prints the diff for humans: the overridden knob, each figure's
// changed points, and the moved counters, with both ledgers' verdicts.
func (d *Diff) WriteText(w io.Writer) {
	fmt.Fprintf(w, "what-if %s=%s\n", d.Knob, d.Value)
	fmt.Fprintf(w, "  base: %s\n  new:  %s\n", d.BaseSpec, d.NewSpec)
	if d.Empty() {
		fmt.Fprintln(w, "no observable difference: every figure byte-identical, every counter unchanged")
		return
	}
	for _, f := range d.Figures {
		if f.Identical {
			fmt.Fprintf(w, "%s: identical\n", f.Name)
			continue
		}
		fmt.Fprintf(w, "%s:\n", f.Name)
		if f.NewTitle != "" && f.NewTitle != f.BaseTitle {
			fmt.Fprintf(w, "  title: %s\n     ->  %s\n", f.BaseTitle, f.NewTitle)
		}
		for _, s := range f.Series {
			if s.Shape != "" {
				fmt.Fprintf(w, "  %s: %s\n", s.Label, s.Shape)
			}
			for _, p := range s.Points {
				fmt.Fprintf(w, "  %s @ %g: %.6g -> %.6g (%+.6g)\n", s.Label, p.X, p.Base, p.New, p.New-p.Base)
			}
		}
		for _, l := range f.Latency {
			fmt.Fprintf(w, "  %s: mean %v -> %v, median %v -> %v, p90 %v -> %v\n", l.System,
				nsDur(l.BaseMean), nsDur(l.NewMean), nsDur(l.BaseMedian), nsDur(l.NewMedian),
				nsDur(l.BaseP90), nsDur(l.NewP90))
		}
	}
	if len(d.Counters) > 0 {
		fmt.Fprintf(w, "counters (%d moved):\n", len(d.Counters))
		for _, c := range d.Counters {
			fmt.Fprintf(w, "  %-48s %12d -> %12d (%+d)\n", c.Name, c.Base, c.New, c.New-c.Base)
		}
	}
	fmt.Fprintf(w, "ledgers: base %s, what-if %s\n", ledgerVerdict(d.BaseLedgers), ledgerVerdict(d.NewLedgers))
}

func nsDur(ns int64) time.Duration { return time.Duration(ns).Round(time.Microsecond) }

func ledgerVerdict(l Ledgers) string {
	if err := l.Err(); err != nil {
		return "UNBALANCED"
	}
	parts := "segments balanced"
	if l.Faults != nil {
		parts += ", orphans balanced"
	}
	if l.Health != nil {
		parts += ", detections balanced"
	}
	return parts
}
