package flight

import (
	"bytes"
	"fmt"
	"io"
	"sort"
)

// Divergence is one replay mismatch, localized to the stage that produced
// it (world fingerprint, a schedule, a figure's bytes, its obs delta, its
// RNG witness, the final snapshot).
type Divergence struct {
	Stage  string `json:"stage"`
	Detail string `json:"detail"`
}

// ReplayReport is the outcome of re-running a recording.
type ReplayReport struct {
	// From is the checkpoint figure the replay started at ("" = full run).
	From string `json:"from,omitempty"`
	// Checked and Skipped list the figure names verified and bypassed.
	Checked []string `json:"checked"`
	Skipped []string `json:"skipped,omitempty"`
	// Divergences is empty exactly when the replay was bit-identical.
	Divergences []Divergence `json:"divergences,omitempty"`
}

// Identical reports whether the replay reproduced the recording exactly.
func (r *ReplayReport) Identical() bool { return len(r.Divergences) == 0 }

func (r *ReplayReport) add(stage, format string, args ...any) {
	r.Divergences = append(r.Divergences, Divergence{Stage: stage, Detail: fmt.Sprintf(format, args...)})
}

// WriteText prints the report for humans.
func (r *ReplayReport) WriteText(w io.Writer) {
	if r.From != "" {
		fmt.Fprintf(w, "replay from checkpoint %s (skipped: %v)\n", r.From, r.Skipped)
	}
	for _, name := range r.Checked {
		fmt.Fprintf(w, "  verified %s\n", name)
	}
	if r.Identical() {
		fmt.Fprintln(w, "replay: bit-identical")
		return
	}
	fmt.Fprintf(w, "replay: DIVERGED (%d mismatches)\n", len(r.Divergences))
	for _, d := range r.Divergences {
		fmt.Fprintf(w, "  %-12s %s\n", d.Stage+":", d.Detail)
	}
}

// Replay re-executes the recording's spec and compares every witness:
// world fingerprint, compiled schedules, per-figure canonical bytes,
// observability deltas, RNG draw counts, and (for full replays) the final
// cumulative snapshot. A non-empty from starts at that recorded figure —
// the checkpoint path: earlier figures are trusted as already verified and
// only the suffix is re-run. The final-snapshot comparison is skipped for
// checkpoint replays, because the live registry never saw the skipped
// figures' contributions; the per-figure deltas cover the suffix exactly.
func (rec *Recording) Replay(from string) (*ReplayReport, error) {
	rep := &ReplayReport{From: from}
	out, err := rec.Spec.execute(from)
	if err != nil {
		return nil, err
	}
	if out.worldFP != rec.WorldFP {
		rep.add("world", "fingerprint %08x, recorded %08x — the generated world differs; nothing downstream is comparable",
			out.worldFP, rec.WorldFP)
		return rep, nil
	}
	liveSched := map[string]ScheduleCapture{}
	for _, sc := range out.schedules {
		liveSched[sc.Label] = sc
	}
	for _, want := range rec.Schedules {
		got, ok := liveSched[want.Label]
		switch {
		case !ok:
			rep.add("schedule", "%s: recorded but not compiled by the replay", want.Label)
		case got.Checksum != want.Checksum || !bytes.Equal(got.Bytes, want.Bytes):
			rep.add("schedule", "%s: compiled %d bytes (crc %08x), recorded %d bytes (crc %08x)",
				want.Label, len(got.Bytes), got.Checksum, len(want.Bytes), want.Checksum)
		}
		delete(liveSched, want.Label)
	}
	for label := range liveSched {
		rep.add("schedule", "%s: compiled by the replay but absent from the recording", label)
	}

	live := map[string]*FigureCapture{}
	for i := range out.figures {
		live[out.figures[i].Name] = &out.figures[i]
	}
	reached := from == ""
	for i := range rec.Figures {
		want := &rec.Figures[i]
		if !reached && want.Name == from {
			reached = true
		}
		if !reached {
			rep.Skipped = append(rep.Skipped, want.Name)
			continue
		}
		rep.Checked = append(rep.Checked, want.Name)
		got, ok := live[want.Name]
		if !ok {
			rep.add("figure", "%s: recorded but not produced by the replay", want.Name)
			continue
		}
		compareFigure(rep, want, got)
	}
	if from == "" {
		liveFinal := appendSnapshot(nil, out.final)
		if !bytes.Equal(liveFinal, rec.FinalBytes) {
			rep.add("final", "cumulative obs snapshot differs (%s)",
				firstCounterDiff(rec.Final.Counters, out.final.Counters))
		}
	}
	return rep, nil
}

// compareFigure checks one checkpoint: canonical figure bytes first (the
// headline contract), then the obs delta, then the RNG witness.
func compareFigure(rep *ReplayReport, want, got *FigureCapture) {
	if !bytes.Equal(got.FigBytes, want.FigBytes) {
		rep.add("figure", "%s: bytes differ (live %d, recorded %d) — %s",
			want.Name, len(got.FigBytes), len(want.FigBytes), firstSeriesDiff(want, got))
	}
	if !bytes.Equal(got.ObsBytes, want.ObsBytes) {
		rep.add("obs", "%s: observability delta differs (%s)",
			want.Name, firstCounterDiff(want.ObsDelta.Counters, got.ObsDelta.Counters))
	}
	if len(got.RNG) != len(want.RNG) {
		rep.add("rng", "%s: %d live streams, %d recorded", want.Name, len(got.RNG), len(want.RNG))
		return
	}
	for i, w := range want.RNG {
		g := got.RNG[i]
		if g != w {
			rep.add("rng", "%s: stream %s live seed=%d draws=%d, recorded seed=%d draws=%d",
				want.Name, w.Label, g.Seed, g.Draws, w.Seed, w.Draws)
		}
	}
}

// firstSeriesDiff localizes a figure-byte divergence to the first series
// point (or latency row, or caption) that differs, for the error message.
func firstSeriesDiff(want, got *FigureCapture) string {
	a, b := want.Fig, got.Fig
	if a.Title != b.Title {
		return fmt.Sprintf("title %q vs %q", b.Title, a.Title)
	}
	if len(a.Series) != len(b.Series) {
		return fmt.Sprintf("%d series vs %d", len(b.Series), len(a.Series))
	}
	for i := range a.Series {
		as, bs := a.Series[i], b.Series[i]
		if as.Label != bs.Label {
			return fmt.Sprintf("series %d label %q vs %q", i, bs.Label, as.Label)
		}
		if len(as.Points) != len(bs.Points) {
			return fmt.Sprintf("series %q: %d points vs %d", as.Label, len(bs.Points), len(as.Points))
		}
		for j := range as.Points {
			if as.Points[j] != bs.Points[j] {
				return fmt.Sprintf("series %q point %d: live (%g, %.17g) recorded (%g, %.17g)",
					as.Label, j, bs.Points[j].X, bs.Points[j].Y, as.Points[j].X, as.Points[j].Y)
			}
		}
	}
	if len(a.Latency) != len(b.Latency) {
		return fmt.Sprintf("%d latency rows vs %d", len(b.Latency), len(a.Latency))
	}
	for i := range a.Latency {
		if a.Latency[i] != b.Latency[i] {
			return fmt.Sprintf("latency row %d: live %+v recorded %+v", i, b.Latency[i], a.Latency[i])
		}
	}
	return "encodings differ but decoded structs agree (encoding drift)"
}

// firstCounterDiff names the first counter (sorted) whose value differs.
func firstCounterDiff(want, got map[string]int64) string {
	var names []string
	for n := range want {
		names = append(names, n)
	}
	for n := range got {
		if _, ok := want[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		if want[n] != got[n] {
			return fmt.Sprintf("first at %s: live %d, recorded %d", n, got[n], want[n])
		}
	}
	return "counters agree; histograms differ"
}
