package flight

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

// testSpec is a small world the record/replay tests can afford dozens of
// times: enough supernodes for a real kd partition, few enough players
// that a 45-second horizon runs in milliseconds (mirrors the experiment
// package's scaleTestConfig).
func testSpec(seed int64, shards int) RunSpec {
	return RunSpec{
		Seed:        seed,
		Players:     400,
		Supernodes:  25,
		Datacenters: 3,
		Shards:      shards,
		Horizon:     45 * time.Second,
		Epoch:       15 * time.Second,
		Figures:     []string{"figscale"},
	}
}

// TestRecordReplayProperty is the tentpole property test: for 16 seeds and
// shard counts 1 and 4, a recorded run decodes from its own bytes and
// replays bit-identically — figure bytes, per-figure observability deltas,
// RNG draw counts, compiled schedules, and the final snapshot all match.
// Odd seeds run the phi detector with the overload ladder so both
// detection paths are covered, and the figure bytes must also agree across
// the two shard counts (the recorder inherits the shard-invariance
// contract).
func TestRecordReplayProperty(t *testing.T) {
	for seed := int64(1); seed <= 16; seed++ {
		var acrossShards [][]byte
		for _, shards := range []int{1, 4} {
			spec := testSpec(seed, shards)
			if seed%2 == 1 {
				spec.Detector = "phi"
				spec.Overload = true
			}
			rec, err := Record(spec)
			if err != nil {
				t.Fatalf("seed %d shards %d: record: %v", seed, shards, err)
			}
			if len(rec.Figures) != 1 || rec.Figures[0].Name != "figscale" {
				t.Fatalf("seed %d shards %d: captured %d figures", seed, shards, len(rec.Figures))
			}
			if len(rec.Figures[0].RNG) != shards+1 {
				t.Fatalf("seed %d shards %d: %d RNG streams, want %d",
					seed, shards, len(rec.Figures[0].RNG), shards+1)
			}
			for _, s := range rec.Figures[0].RNG {
				if s.Draws == 0 {
					t.Fatalf("seed %d shards %d: stream %s consumed no draws", seed, shards, s.Label)
				}
			}
			if len(rec.Schedules) != 1 || rec.Schedules[0].Label != "scale" {
				t.Fatalf("seed %d shards %d: schedules %+v", seed, shards, rec.Schedules)
			}

			data := Encode(rec)
			dec, err := Decode(data)
			if err != nil {
				t.Fatalf("seed %d shards %d: decode: %v", seed, shards, err)
			}
			if !bytes.Equal(Encode(dec), data) {
				t.Fatalf("seed %d shards %d: encode/decode round trip is not byte-stable", seed, shards)
			}

			rep, err := dec.Replay("")
			if err != nil {
				t.Fatalf("seed %d shards %d: replay: %v", seed, shards, err)
			}
			if !rep.Identical() {
				t.Fatalf("seed %d shards %d: replay diverged: %+v", seed, shards, rep.Divergences)
			}
			acrossShards = append(acrossShards, rec.Figures[0].FigBytes)
		}
		if !bytes.Equal(acrossShards[0], acrossShards[1]) {
			t.Fatalf("seed %d: figure bytes differ between 1 and 4 shards", seed)
		}
	}
}

// TestReplayFromCheckpoint verifies the checkpoint-suffix path: a recording
// of two figures replays from the second alone, skipping the first, and
// still verifies bit-identically; a checkpoint name outside the selection
// is rejected.
func TestReplayFromCheckpoint(t *testing.T) {
	spec := testSpec(5, 2)
	spec.Figures = []string{"fig9a", "figscale"}
	spec.ContinuityCounts = []int{50, 100}
	spec.Horizon = 30 * time.Second
	rec, err := Record(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Figures) != 2 {
		t.Fatalf("captured %d figures, want 2", len(rec.Figures))
	}
	rep, err := rec.Replay("figscale")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Fatalf("checkpoint replay diverged: %+v", rep.Divergences)
	}
	if len(rep.Skipped) != 1 || rep.Skipped[0] != "fig9a" {
		t.Fatalf("skipped %v, want [fig9a]", rep.Skipped)
	}
	if len(rep.Checked) != 1 || rep.Checked[0] != "figscale" {
		t.Fatalf("checked %v, want [figscale]", rep.Checked)
	}
	if _, err := rec.Replay("fig5a"); err == nil {
		t.Fatal("checkpoint outside the selection was accepted")
	}
}

// TestReplayDetectsTampering flips one recorded figure byte and one RNG
// draw count and expects the replay to report the divergence rather than
// pass.
func TestReplayDetectsTampering(t *testing.T) {
	rec, err := Record(testSpec(7, 2))
	if err != nil {
		t.Fatal(err)
	}
	tampered := *rec
	tampered.Figures = append([]FigureCapture(nil), rec.Figures...)
	fb := append([]byte(nil), rec.Figures[0].FigBytes...)
	fb[len(fb)-1] ^= 0x01
	tampered.Figures[0].FigBytes = fb
	rep, err := tampered.Replay("")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Identical() {
		t.Fatal("tampered figure bytes replayed as identical")
	}

	tampered = *rec
	tampered.Figures = append([]FigureCapture(nil), rec.Figures...)
	rng := append([]RNGStream(nil), rec.Figures[0].RNG...)
	rng[0].Draws++
	tampered.Figures[0].RNG = rng
	rep, err = tampered.Replay("")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Identical() {
		t.Fatal("tampered RNG witness replayed as identical")
	}
}

// TestDecodeRejectsCorruption covers the loud-failure contract: flipped
// payload bytes, truncation, a wrong magic, and a future version must all
// fail to decode.
func TestDecodeRejectsCorruption(t *testing.T) {
	rec, err := Record(testSpec(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	data := Encode(rec)
	if _, err := Decode(data); err != nil {
		t.Fatalf("pristine recording failed to decode: %v", err)
	}

	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Decode(flipped); err == nil {
		t.Fatal("bit-flipped recording decoded")
	}

	if _, err := Decode(data[:len(data)-3]); err == nil {
		t.Fatal("truncated recording decoded")
	}

	badMagic := append([]byte(nil), data...)
	badMagic[0] = 'X'
	if _, err := Decode(badMagic); err == nil {
		t.Fatal("wrong magic decoded")
	}

	future := append([]byte(nil), data...)
	future[4] = Version + 1 // single-byte uvarint version
	if _, err := Decode(future); err == nil {
		t.Fatal("future version decoded")
	} else if !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version error does not mention version: %v", err)
	}
}

// TestSpecRoundTrip encodes a fully populated spec and decodes it back.
func TestSpecRoundTrip(t *testing.T) {
	spec := RunSpec{
		Seed: -42, Players: 123, Supernodes: 9, Datacenters: 2,
		Shards: 3, SweepWorkers: 2,
		Horizon: 17 * time.Second, Epoch: 5 * time.Second, NodeBudget: -1,
		Detector: "timeout", Overload: true, Breaker: true,
		BandwidthScale:   0.5,
		Figures:          []string{"fig5a", "figchurn"},
		FaultProfile:     []byte(`{"name":"x","seed":1,"duration":"30s","specs":[]}`),
		DCCounts:         []int{1, 2},
		SNCounts:         []int{0, 5},
		PlayerCounts:     []int{10},
		ContinuityCounts: []int{50, 100},
		Loads:            []int{5},
		ChurnRates:       []float64{0, 2.5},
		Reqs:             []time.Duration{30 * time.Millisecond},
		DetectIntervals:  []time.Duration{2 * time.Second, 5 * time.Second},
	}
	got, err := decodeSpec(appendSpec(nil, spec))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Fatalf("spec round trip:\n got %+v\nwant %+v", got, spec)
	}
}

// TestOverride covers the what-if knob surface: a valid override, the
// key=value form, unknown knobs, and invalid values.
func TestOverride(t *testing.T) {
	base, err := testSpec(1, 1).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	over, err := base.Override("detector", "phi")
	if err != nil {
		t.Fatal(err)
	}
	if over.Detector != "phi" || base.Detector != "" {
		t.Fatalf("override mutated base or missed: base %q over %q", base.Detector, over.Detector)
	}
	if over, err = base.Override("shards=4", ""); err != nil || over.Shards != 4 {
		t.Fatalf("key=value form: %v, shards %d", err, over.Shards)
	}
	if _, err := base.Override("warp", "9"); err == nil {
		t.Fatal("unknown knob accepted")
	}
	if _, err := base.Override("detector", "psychic"); err == nil {
		t.Fatal("bad detector accepted")
	}
	if _, err := base.Override("bandwidth", "-2"); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

// TestWhatIfDetectorSwap is the counterfactual acceptance path: on a
// recorded timeout-detector scaling incident, "what if the detector had
// been phi-accrual" must produce a non-empty, ledger-reconciled diff, and
// "what if the shard count had been 4" must leave every figure identical
// (the invariance contract, proven on the incident itself).
func TestWhatIfDetectorSwap(t *testing.T) {
	spec := testSpec(9, 1)
	spec.Detector = "timeout"
	rec, err := Record(spec)
	if err != nil {
		t.Fatal(err)
	}
	d, err := rec.WhatIf("detector", "phi")
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty() {
		t.Fatal("detector swap produced an empty diff")
	}
	if err := d.BaseLedgers.Err(); err != nil {
		t.Fatalf("base ledgers: %v", err)
	}
	if err := d.NewLedgers.Err(); err != nil {
		t.Fatalf("what-if ledgers: %v", err)
	}
	found := false
	for _, f := range d.Figures {
		if f.Name == "figscale" && !f.Identical {
			found = true
		}
	}
	if !found {
		t.Fatal("figscale did not change under a detector swap")
	}

	d, err = rec.WhatIf("shards", "4")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range d.Figures {
		if !f.Identical {
			t.Fatalf("figure %s changed under a shard-count override: %+v", f.Name, f.Series)
		}
	}

	var text bytes.Buffer
	d.WriteText(&text)
	if !strings.Contains(text.String(), "what-if shards=4") {
		t.Fatalf("diff text missing header: %s", text.String())
	}
}

// TestSnapshotDelta checks the witness arithmetic directly.
func TestSnapshotDelta(t *testing.T) {
	rec, err := Record(testSpec(11, 2))
	if err != nil {
		t.Fatal(err)
	}
	delta := rec.Figures[0].ObsDelta
	if len(delta.Counters) == 0 {
		t.Fatal("figscale contributed no counters")
	}
	for name, v := range delta.Counters {
		if v == 0 {
			t.Fatalf("zero delta %s survived", name)
		}
		if rec.Final.Counters[name] != v {
			t.Fatalf("%s: single-figure delta %d != final %d", name, v, rec.Final.Counters[name])
		}
	}
}
