package flight

import (
	"sort"
	"time"

	"cloudfog/internal/experiment"
	"cloudfog/internal/metrics"
	"cloudfog/internal/obs"
	"cloudfog/internal/recfmt"
)

// Canonical encodings. These are the replay comparison units: two runs are
// bit-identical exactly when these byte strings match. Floats are encoded
// as their IEEE-754 bits, so "identical" means identical down to the last
// ulp — the same standard the %#v-based shard-invariance tests enforce.

// appendFigure canonically encodes a figure result under its registry name.
func appendFigure(dst []byte, name string, f experiment.FigureResult) []byte {
	dst = recfmt.AppendString(dst, name)
	dst = recfmt.AppendString(dst, f.Name)
	dst = recfmt.AppendString(dst, f.Title)
	dst = recfmt.AppendString(dst, f.XLabel)
	dst = recfmt.AppendUvarint(dst, uint64(len(f.Series)))
	for _, s := range f.Series {
		dst = recfmt.AppendString(dst, s.Label)
		dst = recfmt.AppendUvarint(dst, uint64(len(s.Points)))
		for _, p := range s.Points {
			dst = recfmt.AppendFloat64(dst, p.X)
			dst = recfmt.AppendFloat64(dst, p.Y)
		}
	}
	dst = recfmt.AppendUvarint(dst, uint64(len(f.Latency)))
	for _, l := range f.Latency {
		dst = recfmt.AppendString(dst, l.System)
		dst = recfmt.AppendVarint(dst, int64(l.Mean))
		dst = recfmt.AppendVarint(dst, int64(l.Median))
		dst = recfmt.AppendVarint(dst, int64(l.P90))
	}
	return dst
}

// decodeFigure reverses appendFigure.
func decodeFigure(payload []byte) (name string, f experiment.FigureResult, err error) {
	r := recfmt.NewReader(payload)
	name = r.String()
	f.Name = r.String()
	f.Title = r.String()
	f.XLabel = r.String()
	if n := r.Uvarint(); n > 0 && r.Err() == nil {
		f.Series = make([]metrics.Series, n)
		for i := range f.Series {
			f.Series[i].Label = r.String()
			np := r.Uvarint()
			if r.Err() != nil {
				break
			}
			f.Series[i].Points = make([]metrics.Point, np)
			for j := range f.Series[i].Points {
				f.Series[i].Points[j].X = r.Float64()
				f.Series[i].Points[j].Y = r.Float64()
			}
		}
	}
	if n := r.Uvarint(); n > 0 && r.Err() == nil {
		f.Latency = make([]experiment.LatencyResult, n)
		for i := range f.Latency {
			f.Latency[i].System = r.String()
			f.Latency[i].Mean = time.Duration(r.Varint())
			f.Latency[i].Median = time.Duration(r.Varint())
			f.Latency[i].P90 = time.Duration(r.Varint())
		}
	}
	return name, f, r.Expect()
}

// appendSnapshot canonically encodes an observability snapshot: counters
// and histograms in sorted name order, so map iteration never leaks into
// the bytes.
func appendSnapshot(dst []byte, s obs.Snapshot) []byte {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	dst = recfmt.AppendUvarint(dst, uint64(len(names)))
	for _, n := range names {
		dst = recfmt.AppendString(dst, n)
		dst = recfmt.AppendVarint(dst, s.Counters[n])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	dst = recfmt.AppendUvarint(dst, uint64(len(hnames)))
	for _, n := range hnames {
		h := s.Histograms[n]
		dst = recfmt.AppendString(dst, n)
		dst = recfmt.AppendUvarint(dst, uint64(len(h.Bounds)))
		for _, b := range h.Bounds {
			dst = recfmt.AppendVarint(dst, b)
		}
		dst = recfmt.AppendUvarint(dst, uint64(len(h.Counts)))
		for _, c := range h.Counts {
			dst = recfmt.AppendVarint(dst, c)
		}
		dst = recfmt.AppendVarint(dst, h.Sum)
		dst = recfmt.AppendVarint(dst, h.Count)
	}
	return dst
}

// decodeSnapshot reverses appendSnapshot.
func decodeSnapshot(payload []byte) (obs.Snapshot, error) {
	r := recfmt.NewReader(payload)
	s := obs.Snapshot{Counters: map[string]int64{}}
	nc := r.Uvarint()
	for i := uint64(0); i < nc && r.Err() == nil; i++ {
		name := r.String()
		s.Counters[name] = r.Varint()
	}
	nh := r.Uvarint()
	if nh > 0 && r.Err() == nil {
		s.Histograms = make(map[string]obs.HistogramSnapshot, nh)
	}
	for i := uint64(0); i < nh && r.Err() == nil; i++ {
		name := r.String()
		var h obs.HistogramSnapshot
		nb := r.Uvarint()
		if r.Err() != nil {
			break
		}
		h.Bounds = make([]int64, nb)
		for j := range h.Bounds {
			h.Bounds[j] = r.Varint()
		}
		nk := r.Uvarint()
		if r.Err() != nil {
			break
		}
		h.Counts = make([]int64, nk)
		for j := range h.Counts {
			h.Counts[j] = r.Varint()
		}
		h.Sum = r.Varint()
		h.Count = r.Varint()
		s.Histograms[name] = h
	}
	return s, r.Expect()
}

// snapshotDelta returns cur − prev, keeping only counters that moved and
// histograms that received observations between the two snapshots. Counters
// are monotonic, so the delta is exactly "what this figure contributed"
// regardless of what ran before it — the property that makes per-figure
// checkpoints verifiable in isolation.
func snapshotDelta(prev, cur obs.Snapshot) obs.Snapshot {
	d := obs.Snapshot{Counters: map[string]int64{}}
	for name, v := range cur.Counters {
		if dv := v - prev.Counters[name]; dv != 0 {
			d.Counters[name] = dv
		}
	}
	for name, h := range cur.Histograms {
		p, ok := prev.Histograms[name]
		if ok && p.Count == h.Count && p.Sum == h.Sum {
			continue
		}
		dh := obs.HistogramSnapshot{
			Bounds: append([]int64(nil), h.Bounds...),
			Counts: append([]int64(nil), h.Counts...),
			Sum:    h.Sum,
			Count:  h.Count,
		}
		if ok {
			for i := range dh.Counts {
				if i < len(p.Counts) {
					dh.Counts[i] -= p.Counts[i]
				}
			}
			dh.Sum -= p.Sum
			dh.Count -= p.Count
		}
		if d.Histograms == nil {
			d.Histograms = map[string]obs.HistogramSnapshot{}
		}
		d.Histograms[name] = dh
	}
	return d
}

// appendRNG encodes the RNG witness streams.
func appendRNG(dst []byte, streams []RNGStream) []byte {
	dst = recfmt.AppendUvarint(dst, uint64(len(streams)))
	for _, s := range streams {
		dst = recfmt.AppendString(dst, s.Label)
		dst = recfmt.AppendVarint(dst, s.Seed)
		dst = recfmt.AppendUvarint(dst, s.Draws)
	}
	return dst
}

func readRNG(r *recfmt.Reader) []RNGStream {
	n := r.Uvarint()
	if n == 0 || r.Err() != nil {
		return nil
	}
	out := make([]RNGStream, n)
	for i := range out {
		out[i].Label = r.String()
		out[i].Seed = r.Varint()
		out[i].Draws = r.Uvarint()
	}
	return out
}
