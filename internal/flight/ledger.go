package flight

import (
	"fmt"

	"cloudfog/internal/obs"
)

// The ledgers are the run's conservation laws, derived from an
// observability snapshot: every generated segment, every orphaned player,
// and every observed kill must be accounted for. cmd/cloudfog-sim's
// -report reconciles them on live runs; the what-if mode reconciles both
// sides of a counterfactual before reporting any diff, so an unbalanced
// alternative world is an error, not a data point.

// SegmentLedger reconciles the QoE segment lifecycle: generated ==
// delivered + dropped + in flight at the horizon.
type SegmentLedger struct {
	Generated   int64 `json:"segments_generated"`
	Delivered   int64 `json:"segments_delivered"`
	Dropped     int64 `json:"segments_dropped"`
	InFlightEnd int64 `json:"segments_inflight_end"`
	Balanced    bool  `json:"balanced"`
}

// FaultLedger reconciles fault injection: every orphaned player is absorbed
// by a backup, reassigned through the full protocol, lapsed to unserved, or
// still pending at the horizon.
type FaultLedger struct {
	Kills      int64 `json:"kills"`
	Recoveries int64 `json:"recoveries"`
	Orphaned   int64 `json:"orphaned"`
	BackupHits int64 `json:"failover_backup_hits"`
	Reassigns  int64 `json:"failover_reassigns"`
	Lapsed     int64 `json:"lapsed"`
	PendingEnd int64 `json:"pending_end"`
	// OrphansBalanced is orphaned == backup hits + reassigns + lapsed +
	// pending.
	OrphansBalanced bool `json:"orphans_balanced"`
}

// HealthLedger reconciles heartbeat detection: every observed kill is
// detected or still pending at the horizon.
type HealthLedger struct {
	HeartbeatsSent int64 `json:"heartbeats_sent"`
	HeartbeatsLost int64 `json:"heartbeats_lost"`
	KillsObserved  int64 `json:"kills_observed"`
	Detected       int64 `json:"detected"`
	DetectPending  int64 `json:"detect_pending"`
	FalsePositives int64 `json:"false_positives"`
	// KillsBalanced is detected + detect_pending == kills_observed.
	KillsBalanced bool `json:"kills_balanced"`
}

// Ledgers bundles the reconciliations of one snapshot. Faults and Health
// are nil when the run injected no faults / ran no heartbeat detector.
type Ledgers struct {
	Segments SegmentLedger `json:"segments"`
	Faults   *FaultLedger  `json:"faults,omitempty"`
	Health   *HealthLedger `json:"health,omitempty"`
}

// Reconcile derives the ledgers from a snapshot's counters.
func Reconcile(snap obs.Snapshot) Ledgers {
	c := snap.Counters
	l := Ledgers{Segments: SegmentLedger{
		Generated:   c["cloudfog_qoe_segments_generated_total"],
		Delivered:   c["cloudfog_qoe_segments_delivered_total"],
		Dropped:     c["cloudfog_qoe_segments_dropped_total"],
		InFlightEnd: c["cloudfog_qoe_segments_inflight_end_total"],
	}}
	l.Segments.Balanced = l.Segments.Generated ==
		l.Segments.Delivered+l.Segments.Dropped+l.Segments.InFlightEnd
	if c["cloudfog_fault_kills_total"] > 0 || c["cloudfog_fault_orphaned_total"] > 0 {
		f := &FaultLedger{
			Kills:      c["cloudfog_fault_kills_total"],
			Recoveries: c["cloudfog_fault_recoveries_total"],
			Orphaned:   c["cloudfog_fault_orphaned_total"],
			BackupHits: c["cloudfog_assign_failover_backup_total"],
			Reassigns:  c["cloudfog_assign_failover_rerun_total"],
			Lapsed:     c["cloudfog_fault_lapsed_total"],
			PendingEnd: c["cloudfog_fault_pending_end_total"],
		}
		f.OrphansBalanced = f.Orphaned == f.BackupHits+f.Reassigns+f.Lapsed+f.PendingEnd
		l.Faults = f
	}
	if c["cloudfog_health_heartbeats_sent_total"] > 0 || c["cloudfog_health_kills_observed_total"] > 0 {
		h := &HealthLedger{
			HeartbeatsSent: c["cloudfog_health_heartbeats_sent_total"],
			HeartbeatsLost: c["cloudfog_health_heartbeats_lost_total"],
			KillsObserved:  c["cloudfog_health_kills_observed_total"],
			Detected:       c["cloudfog_health_detected_total"],
			DetectPending:  c["cloudfog_health_detect_pending_total"],
			FalsePositives: c["cloudfog_health_false_positives_total"],
		}
		h.KillsBalanced = h.KillsObserved == h.Detected+h.DetectPending
		l.Health = h
	}
	return l
}

// Err returns the first failed conservation law, or nil when every present
// ledger balances.
func (l Ledgers) Err() error {
	if !l.Segments.Balanced {
		s := l.Segments
		return fmt.Errorf("segment ledger does not balance: %d generated vs %d delivered + %d dropped + %d in flight",
			s.Generated, s.Delivered, s.Dropped, s.InFlightEnd)
	}
	if f := l.Faults; f != nil && !f.OrphansBalanced {
		return fmt.Errorf("fault orphan ledger does not balance: %d orphaned vs %d backup + %d reassigned + %d lapsed + %d pending",
			f.Orphaned, f.BackupHits, f.Reassigns, f.Lapsed, f.PendingEnd)
	}
	if h := l.Health; h != nil && !h.KillsBalanced {
		return fmt.Errorf("health detection ledger does not balance: %d kills observed vs %d detected + %d pending",
			h.KillsObserved, h.Detected, h.DetectPending)
	}
	return nil
}
