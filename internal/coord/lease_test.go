package coord

import (
	"testing"
	"time"

	"cloudfog/internal/health"
	"cloudfog/internal/live"
	"cloudfog/internal/proto"
)

// leasePlacer builds a placer with leases on and phi detection, registered
// with workers at the given positions (IDs 1..n).
func leasePlacer(t *testing.T, ttl time.Duration, pos ...[2]float64) *Placer {
	t.Helper()
	p, err := NewPlacer(PlacerConfig{
		Detector: health.DetectorConfig{Mode: health.ModePhi, Interval: 100 * time.Millisecond},
		LeaseTTL: ttl,
	})
	if err != nil {
		t.Fatalf("placer: %v", err)
	}
	for i, xy := range pos {
		p.Register(time.Second, proto.Register{
			Worker: int64(i + 1), Capacity: 16,
			X: xy[0], Y: xy[1],
			Addr: "w:" + string(rune('1'+i)),
		})
	}
	return p
}

// beat heartbeats every worker at now so a Sweep exercises only the lease
// pass, not worker burial.
func beat(p *Placer, now time.Duration, seq uint64, workers int) {
	for id := 1; id <= workers; id++ {
		p.Report(now, proto.Report{Worker: int64(id), Seq: seq, Load: 0, Capacity: 16})
	}
}

// TestLeaseExpiryAtBoundary pins the retirement instant: a session whose
// lease lapsed is retired exactly when now reaches expiry + TTL (one full
// TTL of grace past the stamped expiry), not a nanosecond sooner.
func TestLeaseExpiryAtBoundary(t *testing.T) {
	const ttl = time.Second
	p := leasePlacer(t, ttl, [2]float64{1000, 1000})
	now := time.Second
	tk, ok := p.Place(now, proto.Place{Player: 7, X: 1000, Y: 1000})
	if !ok {
		t.Fatal("place failed")
	}
	if tk.Expiry != int64(now+ttl) {
		t.Fatalf("ticket expiry %d, want %d (now + TTL)", tk.Expiry, int64(now+ttl))
	}
	boundary := now + 2*ttl // expiry + one full TTL of grace

	beat(p, boundary-time.Nanosecond, 1, 1)
	if reps := p.Sweep(boundary - time.Nanosecond); len(reps) != 0 {
		t.Fatalf("session retired %v before the boundary: %+v", time.Nanosecond, reps)
	}

	beat(p, boundary, 2, 1)
	reps := p.Sweep(boundary)
	if len(reps) != 1 || !reps[0].Expired || reps[0].Player != 7 {
		t.Fatalf("want exactly one Expired replacement for player 7 at the boundary, got %+v", reps)
	}
	if _, ok := p.Renew(boundary, 7); ok {
		t.Fatal("renewal of a retired session must fail")
	}
	l := p.Ledger()
	if l.Expired != 1 || !l.Balanced() {
		t.Fatalf("ledger after expiry: %+v", l)
	}
}

// TestLeaseRenewalAtBoundary shows a renewal landing a nanosecond before the
// retirement boundary keeps the session alive a further TTL.
func TestLeaseRenewalAtBoundary(t *testing.T) {
	const ttl = time.Second
	p := leasePlacer(t, ttl, [2]float64{1000, 1000})
	now := time.Second
	if _, ok := p.Place(now, proto.Place{Player: 9, X: 1000, Y: 1000}); !ok {
		t.Fatal("place failed")
	}
	boundary := now + 2*ttl
	renewAt := boundary - time.Nanosecond
	rn, ok := p.Renew(renewAt, 9)
	if !ok {
		t.Fatal("renewal before the boundary must succeed")
	}
	if rn.Expiry != int64(renewAt+ttl) {
		t.Fatalf("renewed expiry %d, want %d", rn.Expiry, int64(renewAt+ttl))
	}
	// The old boundary passes harmlessly; the new one holds.
	beat(p, boundary, 1, 1)
	if reps := p.Sweep(boundary); len(reps) != 0 {
		t.Fatalf("renewed session retired at the old boundary: %+v", reps)
	}
	beat(p, renewAt+2*ttl, 2, 1)
	if reps := p.Sweep(renewAt + 2*ttl); len(reps) != 1 || !reps[0].Expired {
		t.Fatalf("renewed session not retired at its new boundary: %+v", reps)
	}
}

// TestRenewalRacingDrainReplacement is the freshest-epoch-wins race: a
// renewal arriving after a drain-issued replacement re-leases the session on
// its post-drain worker with a strictly newer epoch, so the player applying
// highest-epoch-wins converges on the drain target no matter the arrival
// order.
func TestRenewalRacingDrainReplacement(t *testing.T) {
	p := leasePlacer(t, time.Second, [2]float64{1000, 1000}, [2]float64{2000, 1000})
	now := time.Second
	t0, ok := p.Place(now, proto.Place{Player: 5, X: 1000, Y: 1000})
	if !ok || t0.Worker != 1 {
		t.Fatalf("place: ok=%v worker=%d, want worker 1", ok, t0.Worker)
	}
	// Worker 1 announces a drain; the sweep issues a replacement onto 2.
	p.Report(now, proto.Report{Worker: 1, Seq: 1, Load: 1, Capacity: 16, Draining: 1})
	p.Report(now, proto.Report{Worker: 2, Seq: 1, Load: 0, Capacity: 16})
	reps := p.Sweep(now)
	if len(reps) != 1 || reps[0].Ticket.Worker != 2 {
		t.Fatalf("want one drain replacement onto worker 2, got %+v", reps)
	}
	rep := reps[0].Ticket
	if rep.Epoch <= t0.Epoch {
		t.Fatalf("replacement epoch %d does not supersede %d", rep.Epoch, t0.Epoch)
	}
	// The player's half-life renewal was already in flight; it lands after
	// the replacement and must not resurrect worker 1.
	rn, ok := p.Renew(now+10*time.Millisecond, 5)
	if !ok {
		t.Fatal("renewal failed")
	}
	if rn.Worker != 2 {
		t.Fatalf("renewal re-leased worker %d, want the drain target 2", rn.Worker)
	}
	if rn.Epoch <= rep.Epoch {
		t.Fatalf("renewal epoch %d does not supersede the replacement's %d", rn.Epoch, rep.Epoch)
	}
	l := p.Ledger()
	if !l.Balanced() || l.DrainSessions != 1 || l.Renewals != 1 {
		t.Fatalf("ledger: %+v", l)
	}
}

// TestPlacerDrainNewestFirst checks the RelieveOverloaded discipline: a full
// drain hands sessions off newest attachment first.
func TestPlacerDrainNewestFirst(t *testing.T) {
	p := leasePlacer(t, 0, [2]float64{1000, 1000}, [2]float64{9000, 1000})
	now := time.Second
	for i := int64(0); i < 4; i++ {
		if _, ok := p.Place(now, proto.Place{Player: 100 + i, X: 1000, Y: 1000}); !ok {
			t.Fatalf("place %d failed", i)
		}
	}
	p.Report(now, proto.Report{Worker: 1, Seq: 1, Load: 4, Capacity: 16, Draining: 1})
	p.Report(now, proto.Report{Worker: 2, Seq: 1, Load: 0, Capacity: 16})
	reps := p.Sweep(now)
	if len(reps) != 4 {
		t.Fatalf("want 4 drain replacements, got %d", len(reps))
	}
	for i, want := range []int64{103, 102, 101, 100} {
		if reps[i].Player != want {
			t.Fatalf("drain order %v, want newest-first [103 102 101 100]",
				[]int64{reps[0].Player, reps[1].Player, reps[2].Player, reps[3].Player})
		}
		if reps[i].Ticket.Worker != 2 {
			t.Fatalf("player %d drained onto worker %d, want 2", reps[i].Player, reps[i].Ticket.Worker)
		}
	}
	l := p.Ledger()
	if l.DrainWorkers != 1 || l.DrainSessions != 4 || !l.Balanced() {
		t.Fatalf("ledger: %+v", l)
	}
}

// gateWorker builds a bare Worker for exercising the join gate directly:
// synced against a coordinator 5s ahead of local time, leases on, tickets
// signed under key. The supernode is never touched because every test ticket
// names the worker by ID.
func gateWorker(key string, tol time.Duration) *Worker {
	w := &Worker{
		cfg: live.Config{
			ID: 3, TicketKey: key, SkewTolerance: tol,
		},
		start:    time.Now(),
		coordDet: health.NewDetector(health.DetectorConfig{Mode: health.ModePhi, Interval: 100 * time.Millisecond}),
		skew:     int64(5 * time.Second),
		synced:   true,
		leaseTTL: time.Second,
	}
	w.coordDet.Reset(w.lnow())
	return w
}

// ticketFor signs a ticket for player 42 on worker 3 whose expiry sits
// offset away from the worker's current estimate of the coordinator clock.
func ticketFor(w *Worker, key string, player int64, offset time.Duration) []byte {
	t := proto.Ticket{
		Player: player, Worker: 3, Epoch: 1,
		Expiry: int64(w.lnow()) + w.skew + int64(offset),
	}
	SignTicket([]byte(key), &t)
	return proto.MarshalTicket(t)
}

// TestWorkerGateSkewTolerance drives the lease gate across the skew window:
// expiries are judged on the coordinator's estimated clock, slack by
// SkewTolerance in the player's favor, so a worker whose clock drifted
// within tolerance never bounces a freshly-issued ticket.
func TestWorkerGateSkewTolerance(t *testing.T) {
	const key = "gate-key"
	w := gateWorker(key, 200*time.Millisecond)

	cases := []struct {
		name   string
		offset time.Duration // ticket expiry minus estimated coordinator now
		want   uint32
	}{
		{"fresh ticket", time.Second, proto.AckOK},
		{"lapsed within tolerance", -100 * time.Millisecond, proto.AckOK},
		{"lapsed beyond tolerance", -2 * time.Second, proto.AckExpired},
	}
	for _, tc := range cases {
		join := proto.JoinStream{Player: 42, Ticket: ticketFor(w, key, 42, tc.offset)}
		if got := w.gate(join, false); got != tc.want {
			t.Errorf("%s: gate = %d, want %d", tc.name, got, tc.want)
		}
	}

	// A known player bypasses every check: lease expiry never interrupts a
	// session already being served.
	expired := proto.JoinStream{Player: 42, Ticket: ticketFor(w, key, 42, -time.Minute)}
	if got := w.gate(expired, true); got != proto.AckOK {
		t.Errorf("known player refused: gate = %d", got)
	}
	// A ticket issued to someone else is refused outright.
	stolen := proto.JoinStream{Player: 43, Ticket: ticketFor(w, key, 42, time.Second)}
	if got := w.gate(stolen, false); got != proto.AckRefused {
		t.Errorf("player-mismatched ticket: gate = %d, want AckRefused", got)
	}
	// A forged signature is refused.
	forged := proto.JoinStream{Player: 42, Ticket: ticketFor(w, "wrong-key", 42, time.Second)}
	if got := w.gate(forged, false); got != proto.AckRefused {
		t.Errorf("forged ticket: gate = %d, want AckRefused", got)
	}
}

// TestWorkerGateSafeMode: a worker whose coordinator detector has fired
// refuses unknown players with AckSafeMode but keeps serving known ones.
func TestWorkerGateSafeMode(t *testing.T) {
	w := gateWorker("k", 0)
	// A millisecond-interval detector fires after ~6ms of silence.
	w.coordDet = health.NewDetector(health.DetectorConfig{Mode: health.ModePhi, Interval: time.Millisecond})
	w.coordDet.Reset(w.lnow())
	deadline := time.Now().Add(2 * time.Second)
	for !w.SafeMode() {
		if time.Now().After(deadline) {
			t.Fatal("detector never fired on coordinator silence")
		}
		time.Sleep(2 * time.Millisecond)
	}
	join := proto.JoinStream{Player: 42, Ticket: ticketFor(w, "k", 42, time.Second)}
	if got := w.gate(join, false); got != proto.AckSafeMode {
		t.Errorf("unknown player in safe mode: gate = %d, want AckSafeMode", got)
	}
	if got := w.gate(join, true); got != proto.AckOK {
		t.Errorf("known player in safe mode: gate = %d, want AckOK", got)
	}
}
