package coord

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"sync"
	"syscall"
	"testing"
	"time"

	"cloudfog/internal/health"
	"cloudfog/internal/live"
)

// workerConfigEnv carries a JSON live.Config to the re-executed test binary
// acting as a worker process.
const workerConfigEnv = "CLOUDFOG_WORKER_CONFIG"

// TestHelperWorkerProcess is not a test: it is the worker subprocess body,
// entered only when the driver re-executes the test binary with the config
// env set. It runs a coordinator-registered worker until it is killed
// (SIGKILL, the abrupt-death tests) or SIGTERM'd, in which case it drains —
// every session handed off make-before-break — and exits 0 only if the
// supernode emptied before the drain deadline.
func TestHelperWorkerProcess(t *testing.T) {
	blob := os.Getenv(workerConfigEnv)
	if blob == "" {
		t.Skip("not a worker subprocess")
	}
	var cfg live.Config
	if err := json.Unmarshal([]byte(blob), &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "worker config: %v\n", err)
		os.Exit(2)
	}
	w, err := StartWorker(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker start: %v\n", err)
		os.Exit(2)
	}
	defer w.Close()
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM)
	<-ch
	if w.Drain() {
		os.Exit(0)
	}
	fmt.Fprintln(os.Stderr, "worker drain deadline lapsed with sessions attached")
	os.Exit(1)
}

// spawnWorker re-executes the test binary as a worker process.
func spawnWorker(t *testing.T, cfg live.Config) *exec.Cmd {
	t.Helper()
	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("marshal worker config: %v", err)
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperWorkerProcess$")
	cmd.Env = append(os.Environ(), workerConfigEnv+"="+string(blob))
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn worker: %v", err)
	}
	return cmd
}

// TestCoordinatorChurnMultiProcess is the end-to-end churn proof: a cloud
// and coordinator in this process, three worker processes, and six streaming
// players. One worker is SIGKILLed mid-stream; every affected player must
// receive a replacement ticket within the detector Bound(), and the ledger
// must reconcile after all sessions depart.
func TestCoordinatorChurnMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}

	cloud, err := live.NewCloud(live.Config{
		Role: live.RoleCloud, Addr: "127.0.0.1:0",
		Tick: 20 * time.Millisecond, DirectFPS: 10,
	})
	if err != nil {
		t.Fatalf("cloud: %v", err)
	}
	defer cloud.Close()

	det := health.DetectorConfig{Mode: health.ModePhi, Interval: 100 * time.Millisecond}
	coordCfg := live.Config{
		Role: live.RoleCoordinator, Addr: "127.0.0.1:0",
		CloudAddr: cloud.Addr(), TicketKey: "integration-key",
		Detector: det, Backups: 2,
	}
	c, err := StartCoordinator(coordCfg)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer c.Close()

	// Three worker processes spread across the plane.
	pos := map[int64][2]float64{1: {2500, 2500}, 2: {7500, 2500}, 3: {5000, 7500}}
	procs := map[int64]*exec.Cmd{}
	for id := int64(1); id <= 3; id++ {
		procs[id] = spawnWorker(t, live.Config{
			Role: live.RoleSupernode, ID: id, Addr: "127.0.0.1:0",
			CloudAddr: cloud.Addr(), CoordAddr: c.Addr(),
			FPS: 30, X: pos[id][0], Y: pos[id][1],
			Capacity: 16, ReportEvery: 50 * time.Millisecond,
		})
	}
	defer func() {
		for _, cmd := range procs {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	deadline := time.Now().Add(15 * time.Second)
	for c.WorkersAlive() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/3 workers registered", c.WorkersAlive())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Six players, two near each worker, streaming for the rest of the
	// test. Their sessions stay open to receive re-placement pushes.
	type run struct {
		sess *Session
		done chan live.PlayerReport
	}
	ctx := context.Background()
	var runs []run
	for i := int64(0); i < 6; i++ {
		wid := i%3 + 1
		cfg := live.Config{
			Role: live.RolePlayer, ID: 500 + i, GameID: 1,
			CloudAddr: cloud.Addr(), CoordAddr: c.Addr(),
			TicketKey: "integration-key",
			X:         pos[wid][0] + float64(i), Y: pos[wid][1],
		}
		s, err := OpenSession(ctx, cfg)
		if err != nil {
			t.Fatalf("player %d session: %v", cfg.ID, err)
		}
		r := run{sess: s, done: make(chan live.PlayerReport, 1)}
		go func() {
			rep, err := s.Run(4 * time.Second)
			if err != nil {
				t.Errorf("player run: %v", err)
			}
			r.done <- rep
		}()
		runs = append(runs, r)
	}
	closeAll := func() {
		for _, r := range runs {
			r.sess.Close()
		}
	}
	defer closeAll()

	// Let streams establish, then SIGKILL the worker serving player 0.
	time.Sleep(500 * time.Millisecond)
	victim := runs[0].sess.Ticket().Worker
	if victim == 0 {
		t.Fatal("player 0 was placed cloud-direct; no worker to kill")
	}
	var affected []run
	for _, r := range runs {
		if r.sess.Ticket().Worker == victim {
			affected = append(affected, r)
		}
	}
	if len(affected) == 0 {
		t.Fatal("no players on the victim worker")
	}
	procs[victim].Process.Kill()
	procs[victim].Wait()
	killedAt := time.Now()
	bound := c.Bound()

	var wg sync.WaitGroup
	for _, r := range affected {
		wg.Add(1)
		go func(r run) {
			defer wg.Done()
			old := r.sess.Ticket()
			select {
			case fresh, ok := <-r.sess.Updates():
				if !ok {
					t.Errorf("player %d: session closed before re-placement", old.Player)
					return
				}
				elapsed := time.Since(killedAt)
				if elapsed > bound {
					t.Errorf("player %d re-placed after %v, beyond Bound %v", old.Player, elapsed, bound)
				}
				if fresh.Worker == victim {
					t.Errorf("player %d re-ticketed onto the dead worker %d", old.Player, victim)
				}
				if fresh.Epoch <= old.Epoch {
					t.Errorf("player %d replacement epoch %d did not pass %d", old.Player, fresh.Epoch, old.Epoch)
				}
				if !VerifyTicket([]byte("integration-key"), fresh) {
					t.Errorf("player %d replacement ticket fails verification", old.Player)
				}
			case <-time.After(bound + time.Second):
				t.Errorf("player %d: no replacement ticket within Bound %v (+1s grace)", old.Player, bound)
			}
		}(r)
	}
	wg.Wait()

	// Drain the player runs, then depart every session and reconcile.
	for _, r := range runs {
		rep := <-r.done
		if rep.Segments == 0 {
			t.Error("a player streamed zero segments")
		}
	}
	closeAll()
	deadline = time.Now().Add(5 * time.Second)
	for {
		l := c.Ledger()
		if l.ActiveOriginal+l.ActiveReplaced == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sessions never departed: %+v", l)
		}
		time.Sleep(20 * time.Millisecond)
	}
	l := c.Ledger()
	if !l.Balanced() {
		t.Fatalf("ledger unbalanced: %+v", l)
	}
	if l.Placements != 6 || l.Departed != 6 {
		t.Fatalf("ledger placements/departed %d/%d, want 6/6: %+v", l.Placements, l.Departed, l)
	}
	if int(l.Replacements) < len(affected) {
		t.Fatalf("replacements %d < affected players %d", l.Replacements, len(affected))
	}
	if l.WorkersLost != 1 {
		t.Fatalf("WorkersLost %d, want 1 (the SIGKILLed worker)", l.WorkersLost)
	}
}
