// Package coord is the CloudFog control plane: a coordinator process that
// supernode workers register with (periodic capacity/occupancy reports feed
// its failure detectors), that places joining players on the closest
// admitting worker via the spatial shortlist + overload ladder, and that
// survives worker churn by re-placing every session a dead worker was
// serving and pushing fresh tickets to the affected players.
//
// The package splits into a pure, caller-synchronized placement state
// machine (Placer — the part property tests drive deterministically) and
// the network shells around it: Coordinator (the server), Worker (a
// supernode that registers and reports), and Session (a player's placement
// client).
package coord

import (
	"crypto/hmac"
	"crypto/sha256"

	"cloudfog/internal/proto"
)

// SignTicket computes the ticket's HMAC-SHA256 signature over every field
// except Sig and stores it in t.Sig. An empty key disables signing (Sig is
// cleared), matching unsigned local deployments.
func SignTicket(key []byte, t *proto.Ticket) {
	if len(key) == 0 {
		t.Sig = nil
		return
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(proto.AppendTicketBody(nil, *t))
	t.Sig = mac.Sum(nil)
}

// VerifyTicket reports whether the ticket's signature is valid under key.
// An empty key accepts only unsigned tickets; a non-empty key rejects both
// unsigned and tampered tickets.
func VerifyTicket(key []byte, t proto.Ticket) bool {
	if len(key) == 0 {
		return len(t.Sig) == 0
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(proto.AppendTicketBody(nil, t))
	return hmac.Equal(t.Sig, mac.Sum(nil))
}
