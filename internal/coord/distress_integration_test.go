package coord

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"cloudfog/internal/health"
	"cloudfog/internal/live"
)

// Env plumbing for the coordinator subprocess: its live.Config and the path
// it writes the ledger reconciliation Report to on SIGTERM.
const (
	coordConfigEnv = "CLOUDFOG_COORD_CONFIG"
	coordLedgerEnv = "CLOUDFOG_COORD_LEDGER"
)

// coordAddrPrefix tags the line the coordinator subprocess prints so the
// parent can find the ephemeral listen address in the test binary's output.
const coordAddrPrefix = "COORD_ADDR "

// TestHelperCoordinatorProcess is not a test: it is the coordinator
// subprocess body for the partition test. It serves until SIGTERM, then
// writes the ledger reconciliation JSON and exits.
func TestHelperCoordinatorProcess(t *testing.T) {
	blob := os.Getenv(coordConfigEnv)
	if blob == "" {
		t.Skip("not a coordinator subprocess")
	}
	var cfg live.Config
	if err := json.Unmarshal([]byte(blob), &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "coordinator config: %v\n", err)
		os.Exit(2)
	}
	c, err := StartCoordinator(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coordinator start: %v\n", err)
		os.Exit(2)
	}
	defer c.Close()
	fmt.Println(coordAddrPrefix + c.Addr())
	os.Stdout.Sync()
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM)
	<-ch
	if path := os.Getenv(coordLedgerEnv); path != "" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ledger file: %v\n", err)
			os.Exit(2)
		}
		if err := c.WriteReport(f); err != nil {
			fmt.Fprintf(os.Stderr, "ledger write: %v\n", err)
			os.Exit(2)
		}
		f.Close()
	}
	os.Exit(0)
}

// spawnCoordinator re-executes the test binary as a coordinator process and
// returns the command plus the listen address scraped from its stdout.
func spawnCoordinator(t *testing.T, cfg live.Config, ledgerPath string) (*exec.Cmd, string) {
	t.Helper()
	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("marshal coordinator config: %v", err)
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperCoordinatorProcess$")
	cmd.Env = append(os.Environ(),
		coordConfigEnv+"="+string(blob),
		coordLedgerEnv+"="+ledgerPath,
	)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("coordinator stdout: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn coordinator: %v", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, coordAddrPrefix) {
				addrCh <- strings.TrimPrefix(line, coordAddrPrefix)
				break
			}
		}
		// Keep draining so the subprocess never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("coordinator subprocess never printed its address")
		return nil, ""
	}
}

// TestCoordinatorPartitionMultiProcess is the control-plane partition proof:
// the coordinator runs as its own process and is SIGSTOP'd mid-stream. Every
// worker must drop into safe mode on TSync silence, no player may lose its
// session (streams ride out the partition untouched), and after SIGCONT the
// workers must leave safe mode and the coordinator's extended ledger —
// including the pause-recovery Rebase — must reconcile.
func TestCoordinatorPartitionMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}

	cloud, err := live.NewCloud(live.Config{
		Role: live.RoleCloud, Addr: "127.0.0.1:0",
		Tick: 20 * time.Millisecond, DirectFPS: 10,
	})
	if err != nil {
		t.Fatalf("cloud: %v", err)
	}
	defer cloud.Close()

	det := health.DetectorConfig{Mode: health.ModePhi, Interval: 100 * time.Millisecond}
	ledgerPath := t.TempDir() + "/ledger.json"
	coordProc, coordAddr := spawnCoordinator(t, live.Config{
		Role: live.RoleCoordinator, Addr: "127.0.0.1:0",
		CloudAddr: cloud.Addr(), TicketKey: "partition-key",
		Detector: det, Backups: 2, LeaseTTL: time.Second,
	}, ledgerPath)
	defer func() {
		coordProc.Process.Kill()
		coordProc.Wait()
	}()

	// Two in-process workers, so the test can watch their safe-mode state
	// directly while the coordinator process is frozen.
	pos := map[int64][2]float64{1: {2500, 2500}, 2: {7500, 2500}}
	var workers []*Worker
	for id := int64(1); id <= 2; id++ {
		w, err := StartWorker(live.Config{
			Role: live.RoleSupernode, ID: id, Addr: "127.0.0.1:0",
			CloudAddr: cloud.Addr(), CoordAddr: coordAddr,
			TicketKey: "partition-key",
			FPS:       30, X: pos[id][0], Y: pos[id][1],
			Capacity: 16, ReportEvery: 50 * time.Millisecond,
			Detector: det,
		})
		if err != nil {
			t.Fatalf("worker %d: %v", id, err)
		}
		defer w.Close()
		workers = append(workers, w)
	}
	deadline := time.Now().Add(15 * time.Second)
	for _, w := range workers {
		for {
			if _, synced := w.Skew(); synced {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %d never saw a TSync beacon", w.ID())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	type run struct {
		sess *Session
		done chan live.PlayerReport
	}
	var runs []run
	for i := int64(0); i < 3; i++ {
		wid := i%2 + 1
		cfg := live.Config{
			Role: live.RolePlayer, ID: 700 + i, GameID: 1,
			CloudAddr: cloud.Addr(), CoordAddr: coordAddr,
			TicketKey: "partition-key",
			X:         pos[wid][0] + float64(i), Y: pos[wid][1],
		}
		s, err := OpenSession(context.Background(), cfg)
		if err != nil {
			t.Fatalf("player %d session: %v", cfg.ID, err)
		}
		defer s.Close()
		r := run{sess: s, done: make(chan live.PlayerReport, 1)}
		go func() {
			rep, err := s.Run(4 * time.Second)
			if err != nil {
				t.Errorf("player run: %v", err)
			}
			r.done <- rep
		}()
		runs = append(runs, r)
	}

	// Streams established; record who serves whom, then freeze the
	// coordinator — a full control-plane partition without a death.
	time.Sleep(500 * time.Millisecond)
	before := make([]int64, len(runs))
	for i, r := range runs {
		before[i] = r.sess.Ticket().Worker
	}
	if err := coordProc.Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatalf("SIGSTOP coordinator: %v", err)
	}
	stopped := time.Now()

	// Every worker's phi detector must fire on TSync silence.
	deadline = time.Now().Add(3 * time.Second)
	for _, w := range workers {
		for !w.SafeMode() {
			if time.Now().After(deadline) {
				coordProc.Process.Signal(syscall.SIGCONT)
				t.Fatalf("worker %d never entered safe mode during the partition", w.ID())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// Hold the partition a little past detection, then heal it.
	time.Sleep(200 * time.Millisecond)
	if err := coordProc.Process.Signal(syscall.SIGCONT); err != nil {
		t.Fatalf("SIGCONT coordinator: %v", err)
	}
	t.Logf("partition held %v", time.Since(stopped))

	deadline = time.Now().Add(3 * time.Second)
	for _, w := range workers {
		for w.SafeMode() {
			if time.Now().After(deadline) {
				t.Fatalf("worker %d stuck in safe mode after the partition healed", w.ID())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// No player may have lost its session: every run finishes with zero
	// visible interruptions, still served by its pre-partition worker.
	for i, r := range runs {
		rep := <-r.done
		if rep.Segments == 0 {
			t.Errorf("player %d streamed zero segments", 700+int64(i))
		}
		if rep.Failovers != 0 {
			t.Errorf("player %d saw %d stream interruptions across the partition", 700+int64(i), rep.Failovers)
		}
		if after := r.sess.Ticket().Worker; after != before[i] {
			t.Errorf("player %d moved from worker %d to %d during the partition", 700+int64(i), before[i], after)
		}
		r.sess.Close()
	}

	// Let the departs land, then stop the coordinator and read its ledger.
	time.Sleep(time.Second)
	if err := coordProc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM coordinator: %v", err)
	}
	if err := coordProc.Wait(); err != nil {
		t.Fatalf("coordinator exit: %v", err)
	}
	blob, err := os.ReadFile(ledgerPath)
	if err != nil {
		t.Fatalf("ledger report: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("ledger report decode: %v", err)
	}
	l := rep.Ledger
	t.Logf("ledger: %+v", l)
	if !rep.Balanced {
		t.Fatalf("ledger does not reconcile after the partition: %+v", l)
	}
	if l.Rebases == 0 {
		t.Errorf("coordinator never rebased after the pause: %+v", l)
	}
	if l.Expired != 0 {
		t.Errorf("%d sessions expired across the partition; leases must survive a coordinator pause", l.Expired)
	}
	if l.ActiveOriginal+l.ActiveReplaced != 0 || l.Placements != 3 || l.Departed != 3 {
		t.Errorf("session accounting off: %+v", l)
	}
}

// TestCoordinatorDrainMultiProcess is the graceful-distress proof: a worker
// process is SIGTERM'd mid-stream and must hand off every session it serves
// with zero visible interruptions — replacement tickets pushed within the
// detector Bound(), make-before-break handoffs on the players, the drained
// worker exiting 0 — while the ledger's drain accounting reconciles.
func TestCoordinatorDrainMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}

	cloud, err := live.NewCloud(live.Config{
		Role: live.RoleCloud, Addr: "127.0.0.1:0",
		Tick: 20 * time.Millisecond, DirectFPS: 10,
	})
	if err != nil {
		t.Fatalf("cloud: %v", err)
	}
	defer cloud.Close()

	det := health.DetectorConfig{Mode: health.ModePhi, Interval: 100 * time.Millisecond}
	c, err := StartCoordinator(live.Config{
		Role: live.RoleCoordinator, Addr: "127.0.0.1:0",
		CloudAddr: cloud.Addr(), TicketKey: "drain-key",
		Detector: det, Backups: 2, LeaseTTL: time.Second,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer c.Close()

	pos := map[int64][2]float64{1: {2500, 2500}, 2: {7500, 2500}, 3: {5000, 7500}}
	procs := map[int64]*exec.Cmd{}
	for id := int64(1); id <= 3; id++ {
		procs[id] = spawnWorker(t, live.Config{
			Role: live.RoleSupernode, ID: id, Addr: "127.0.0.1:0",
			CloudAddr: cloud.Addr(), CoordAddr: c.Addr(),
			TicketKey: "drain-key",
			FPS:       30, X: pos[id][0], Y: pos[id][1],
			Capacity: 16, ReportEvery: 50 * time.Millisecond,
			Detector: det, DrainTimeout: 5 * time.Second,
		})
	}
	defer func() {
		for _, cmd := range procs {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	deadline := time.Now().Add(15 * time.Second)
	for c.WorkersAlive() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/3 workers registered", c.WorkersAlive())
		}
		time.Sleep(20 * time.Millisecond)
	}

	type run struct {
		sess *Session
		done chan live.PlayerReport
	}
	var runs []run
	for i := int64(0); i < 6; i++ {
		wid := i%3 + 1
		cfg := live.Config{
			Role: live.RolePlayer, ID: 800 + i, GameID: 1,
			CloudAddr: cloud.Addr(), CoordAddr: c.Addr(),
			TicketKey: "drain-key",
			X:         pos[wid][0] + float64(i), Y: pos[wid][1],
		}
		s, err := OpenSession(context.Background(), cfg)
		if err != nil {
			t.Fatalf("player %d session: %v", cfg.ID, err)
		}
		defer s.Close()
		r := run{sess: s, done: make(chan live.PlayerReport, 1)}
		go func() {
			rep, err := s.Run(4 * time.Second)
			if err != nil {
				t.Errorf("player run: %v", err)
			}
			r.done <- rep
		}()
		runs = append(runs, r)
	}
	closeAll := func() {
		for _, r := range runs {
			r.sess.Close()
		}
	}
	defer closeAll()

	// Streams up; SIGTERM the worker serving player 0 and hold it to its
	// drain contract.
	time.Sleep(time.Second)
	victim := runs[0].sess.Ticket().Worker
	if victim == 0 {
		t.Fatal("player 0 was placed cloud-direct; no worker to drain")
	}
	var affected []run
	for _, r := range runs {
		if r.sess.Ticket().Worker == victim {
			affected = append(affected, r)
		}
	}
	bound := c.Bound()
	if err := procs[victim].Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM worker %d: %v", victim, err)
	}
	termAt := time.Now()

	// Every affected player must receive a replacement ticket naming a
	// different worker within the detector Bound().
	var wg sync.WaitGroup
	for _, r := range affected {
		wg.Add(1)
		go func(r run) {
			defer wg.Done()
			old := r.sess.Ticket()
			timeout := time.After(bound + time.Second)
			// Renewal tickets (same worker, half-life cadence) share the
			// updates channel; skip any queued before the drain ticket.
			for {
				select {
				case fresh, ok := <-r.sess.Updates():
					if !ok {
						t.Errorf("player %d: session closed during the drain", old.Player)
						return
					}
					if fresh.Epoch <= old.Epoch || fresh.Worker == victim {
						continue
					}
					if elapsed := time.Since(termAt); elapsed > bound {
						t.Errorf("player %d drain ticket after %v, beyond Bound %v", old.Player, elapsed, bound)
					}
					return
				case <-timeout:
					t.Errorf("player %d: no drain ticket within Bound %v (+1s grace)", old.Player, bound)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	// The drained worker exits cleanly — exit 0 is its own assertion that
	// the supernode emptied before the drain deadline.
	if err := procs[victim].Wait(); err != nil {
		t.Errorf("drained worker %d exit: %v", victim, err)
	}
	t.Logf("worker %d drained and exited in %v (bound %v)", victim, time.Since(termAt), bound)
	delete(procs, victim)

	// Zero visible interruptions anywhere; the affected sessions moved via
	// make-before-break handoffs.
	var handoffs int64
	for i, r := range runs {
		rep := <-r.done
		if rep.Segments == 0 {
			t.Errorf("player %d streamed zero segments", 800+int64(i))
		}
		if rep.Failovers != 0 {
			t.Errorf("player %d saw %d stream interruptions during a drain", 800+int64(i), rep.Failovers)
		}
		handoffs += rep.Handoffs
	}
	if int(handoffs) < len(affected) {
		t.Errorf("only %d handoffs for %d drained sessions", handoffs, len(affected))
	}

	closeAll()
	deadline = time.Now().Add(5 * time.Second)
	for {
		l := c.Ledger()
		if l.ActiveOriginal+l.ActiveReplaced == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sessions never departed: %+v", c.Ledger())
		}
		time.Sleep(20 * time.Millisecond)
	}
	l := c.Ledger()
	if !l.Balanced() {
		t.Fatalf("ledger unbalanced after the drain: %+v", l)
	}
	if l.DrainWorkers == 0 || int(l.DrainSessions) < len(affected) {
		t.Errorf("drain accounting %d workers / %d sessions, want >=1 / >=%d: %+v",
			l.DrainWorkers, l.DrainSessions, len(affected), l)
	}
	if l.Expired != 0 {
		t.Errorf("%d sessions expired during the drain: %+v", l.Expired, l)
	}
}
