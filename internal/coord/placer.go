package coord

import (
	"fmt"
	"time"

	"cloudfog/internal/health"
	"cloudfog/internal/obs"
	"cloudfog/internal/proto"
	"cloudfog/internal/spatial"
)

// Placer defaults, used when the corresponding PlacerConfig field is zero.
const (
	// DefaultShortlistK is how many nearest candidates a placement ranks.
	DefaultShortlistK = 4
	// DefaultBackups is the backup-ring size baked into tickets.
	DefaultBackups = 2
	// defaultPlane matches world.DefaultConfig()'s 10,000² bounds.
	defaultPlane = 10_000
)

// PlacerConfig parameterizes the placement state machine.
type PlacerConfig struct {
	// Width, Height bound the plane workers and players live on (zero
	// means the default 10,000² world).
	Width, Height float64
	// ShortlistK is the nearest-worker candidate count per placement;
	// Backups is the ring size baked into each ticket.
	ShortlistK int
	Backups    int
	// Detector configures the per-worker failure detector fed by report
	// arrivals.
	Detector health.DetectorConfig
	// Overload configures the admission ladder (zero means defaults).
	Overload health.OverloadConfig
	// TicketKey signs issued tickets (empty disables signing).
	TicketKey []byte
	// CloudAddr, when non-empty, is the cloud's direct-stream address: a
	// placement with no admitting worker falls back to it instead of
	// rejecting, and a re-placement with no surviving worker migrates there
	// instead of dropping the session.
	CloudAddr string
	// Stats, when non-nil, mirrors the placer's ledger into metrics.
	Stats *obs.CoordStats
}

// Replacement is one churn outcome from Sweep or Deregister: either a fresh
// ticket for the player (pushed over its control link) or a dropped session
// (no surviving worker and no cloud fallback).
type Replacement struct {
	Player  int64
	Ticket  proto.Ticket
	Dropped bool
}

// Ledger is the placer's session accounting. The reconciliation identity —
// checked by Balanced — is
//
//	Placements == ActiveOriginal + ActiveReplaced + Departed
//
// Rejected joins never enter the ledger; Replacements counts ticket
// re-issues, not sessions (a twice-moved session is one ActiveReplaced).
type Ledger struct {
	Placements     uint64 `json:"placements"`
	Replacements   uint64 `json:"replacements"`
	Rejected       uint64 `json:"rejected"`
	Departed       uint64 `json:"departed"`
	ActiveOriginal uint64 `json:"active_original"`
	ActiveReplaced uint64 `json:"active_replaced"`

	WorkersAlive      int    `json:"workers_alive"`
	WorkersRegistered uint64 `json:"workers_registered"`
	WorkersLost       uint64 `json:"workers_lost"`
	WorkersReturned   uint64 `json:"workers_returned"`
}

// Balanced reports whether the ledger identity holds.
func (l Ledger) Balanced() bool {
	return l.Placements == l.ActiveOriginal+l.ActiveReplaced+l.Departed
}

type workerState struct {
	reg      proto.Register
	det      *health.Detector
	alive    bool
	load     int
	capacity int
	lastSeq  uint64
}

type sessionState struct {
	place    proto.Place
	worker   int64 // zero: cloud-direct
	epoch    uint64
	replaced bool
}

// Placer is the coordinator's placement state machine: worker liveness and
// occupancy, the spatial shortlist, the overload admission ladder, and the
// session ledger. It is a passive value fed explicit timestamps — no clocks,
// no goroutines — so the churn property tests drive it deterministically.
// Not safe for concurrent use; the Coordinator serializes access.
type Placer struct {
	cfg     PlacerConfig
	grid    *spatial.Grid
	ladder  *health.Overload
	workers map[int64]*workerState
	// sessions maps player → session; sweep iterates workers' sessions via
	// this map (worker counts stay small next to session counts).
	sessions map[int64]*sessionState
	epoch    uint64
	scratch  []spatial.Neighbor

	placements   uint64
	replacements uint64
	rejected     uint64
	departed     uint64
	wRegistered  uint64
	wLost        uint64
	wReturned    uint64
}

// NewPlacer builds a placement state machine; zero config fields default.
func NewPlacer(cfg PlacerConfig) (*Placer, error) {
	if cfg.Width <= 0 {
		cfg.Width = defaultPlane
	}
	if cfg.Height <= 0 {
		cfg.Height = defaultPlane
	}
	if cfg.ShortlistK <= 0 {
		cfg.ShortlistK = DefaultShortlistK
	}
	if cfg.Backups < 0 {
		return nil, fmt.Errorf("coord: PlacerConfig.Backups %d is negative", cfg.Backups)
	}
	if cfg.Backups == 0 {
		cfg.Backups = DefaultBackups
	}
	ladder, err := health.NewOverload(cfg.Overload, nil, nil)
	if err != nil {
		return nil, err
	}
	return &Placer{
		cfg:      cfg,
		grid:     spatial.NewGrid(cfg.Width, cfg.Height),
		ladder:   ladder,
		workers:  make(map[int64]*workerState),
		sessions: make(map[int64]*sessionState),
	}, nil
}

// Bound returns the provable worker-death detection latency: no session
// ticket points at a dead worker longer than this after the worker's last
// report, provided Sweep runs at least every Detector.CheckEvery.
func (p *Placer) Bound() time.Duration { return p.cfg.Detector.Bound() }

// Register admits (or re-admits) a worker at now. Returned reports whether
// this was a dead worker coming back.
func (p *Placer) Register(now time.Duration, r proto.Register) (returned bool) {
	w := p.workers[r.Worker]
	if w == nil {
		w = &workerState{det: health.NewDetector(p.cfg.Detector)}
		p.workers[r.Worker] = w
		p.wRegistered++
		if p.cfg.Stats != nil {
			p.cfg.Stats.WorkersRegistered.Inc()
		}
	} else if !w.alive {
		returned = true
		p.wReturned++
		if p.cfg.Stats != nil {
			p.cfg.Stats.WorkersReturned.Inc()
		}
	}
	w.reg = r
	w.alive = true
	w.load = int(r.Load)
	w.capacity = int(r.Capacity)
	w.lastSeq = 0
	w.det.Reset(now)
	p.grid.Insert(r.Worker, r.X, r.Y)
	p.ladder.Observe(r.Worker, w.load, w.capacity)
	return returned
}

// Report consumes a worker's periodic occupancy beacon: the arrival gap
// feeds the failure detector, the load ratio moves the admission ladder.
// Reports from unknown or dead workers — and stale out-of-order datagrams —
// are dropped (a dead worker must re-register to rejoin the pool).
func (p *Placer) Report(now time.Duration, r proto.Report) bool {
	w := p.workers[r.Worker]
	if w == nil || !w.alive {
		return false
	}
	if r.Seq != 0 && r.Seq <= w.lastSeq {
		return false
	}
	w.lastSeq = r.Seq
	w.det.Heartbeat(now)
	w.load = int(r.Load)
	if r.Capacity > 0 {
		w.capacity = int(r.Capacity)
	}
	p.ladder.Observe(r.Worker, w.load, w.capacity)
	if p.cfg.Stats != nil {
		p.cfg.Stats.ReportsReceived.Inc()
	}
	return true
}

// Place answers a join: shortlist the nearest alive workers, pick the first
// the ladder admits, ring the next backup-eligible ones, and issue a signed
// ticket. With no admitting worker the session falls back to the cloud's
// direct stream when configured, otherwise the join is rejected (ok=false).
// A repeated Place for a live session re-issues its current ticket.
func (p *Placer) Place(now time.Duration, req proto.Place) (proto.Ticket, bool) {
	if s := p.sessions[req.Player]; s != nil {
		return p.issue(now, req.Player, s), true
	}
	wid, ok := p.choose(req.X, req.Y)
	if !ok {
		p.rejected++
		if p.cfg.Stats != nil {
			p.cfg.Stats.Rejected.Inc()
		}
		return proto.Ticket{}, false
	}
	s := &sessionState{place: req, worker: wid}
	p.sessions[req.Player] = s
	p.placements++
	if p.cfg.Stats != nil {
		p.cfg.Stats.Placements.Inc()
	}
	p.attach(wid)
	return p.issue(now, req.Player, s), true
}

// choose runs the placement policy at (x, y): the nearest alive worker the
// ladder admits, or the cloud fallback (wid 0) when nothing admits.
func (p *Placer) choose(x, y float64) (wid int64, ok bool) {
	p.scratch = p.grid.NearestInto(p.scratch, x, y, p.cfg.ShortlistK,
		func(id int64) bool {
			w := p.workers[id]
			return w != nil && w.alive
		})
	for _, nb := range p.scratch {
		if p.ladder.Admit(nb.ID) {
			return nb.ID, true
		}
	}
	if p.cfg.CloudAddr == "" {
		return 0, false
	}
	return 0, true // cloud-direct
}

// attach counts a placed session against the worker's occupancy until its
// next report supersedes the estimate.
func (p *Placer) attach(wid int64) {
	if w := p.workers[wid]; w != nil {
		w.load++
		p.ladder.Observe(wid, w.load, w.capacity)
	}
}

func (p *Placer) detach(wid int64) {
	if w := p.workers[wid]; w != nil && w.load > 0 {
		w.load--
		p.ladder.Observe(wid, w.load, w.capacity)
	}
}

// issue builds and signs the session's current ticket, advancing the global
// epoch so every ticket supersedes all earlier ones for that player.
func (p *Placer) issue(now time.Duration, player int64, s *sessionState) proto.Ticket {
	p.epoch++
	s.epoch = p.epoch
	t := proto.Ticket{
		Player: player,
		Worker: s.worker,
		Epoch:  s.epoch,
		Issued: int64(now),
	}
	if w := p.workers[s.worker]; s.worker != 0 && w != nil {
		t.Transport = w.reg.Transport
		t.Addr = w.reg.Addr
		t.Backups = p.ring(s)
	} else {
		t.Transport = proto.StreamTCP
		t.Addr = p.cfg.CloudAddr
	}
	SignTicket(p.cfg.TicketKey, &t)
	return t
}

// ring computes the backup ring around a session's position: the nearest
// backup-eligible alive workers, excluding its serving worker.
func (p *Placer) ring(s *sessionState) []string {
	p.scratch = p.grid.NearestInto(p.scratch, s.place.X, s.place.Y, p.cfg.ShortlistK,
		func(id int64) bool {
			w := p.workers[id]
			return w != nil && w.alive && id != s.worker
		})
	var backups []string
	for _, nb := range p.scratch {
		if len(backups) >= p.cfg.Backups {
			break
		}
		if p.ladder.AllowBackup(nb.ID) {
			backups = append(backups, p.workers[nb.ID].reg.Addr)
		}
	}
	return backups
}

// Depart retires a player's session (its control link closed).
func (p *Placer) Depart(player int64) bool {
	s := p.sessions[player]
	if s == nil {
		return false
	}
	delete(p.sessions, player)
	p.detach(s.worker)
	p.departed++
	if p.cfg.Stats != nil {
		p.cfg.Stats.Departed.Inc()
	}
	return true
}

// Deregister removes a worker voluntarily (clean shutdown): its sessions
// re-place exactly as if the detector had declared it dead, without waiting
// for the silence bound.
func (p *Placer) Deregister(now time.Duration, worker int64) []Replacement {
	w := p.workers[worker]
	if w == nil || !w.alive {
		return nil
	}
	return p.bury(now, worker, w)
}

// Sweep evaluates every alive worker's detector at now and re-places the
// sessions of any declared dead. Call it at least every Detector.CheckEvery
// to keep Bound() honest.
func (p *Placer) Sweep(now time.Duration) []Replacement {
	var out []Replacement
	for id, w := range p.workers {
		if w.alive && w.det.Suspect(now) {
			out = append(out, p.bury(now, id, w)...)
		}
	}
	return out
}

// bury marks a worker dead and re-places every session it was serving.
func (p *Placer) bury(now time.Duration, worker int64, w *workerState) []Replacement {
	w.alive = false
	p.grid.Remove(worker)
	p.ladder.Forget(worker)
	p.wLost++
	if p.cfg.Stats != nil {
		p.cfg.Stats.WorkersLost.Inc()
	}
	var out []Replacement
	for player, s := range p.sessions {
		if s.worker != worker {
			continue
		}
		wid, ok := p.choose(s.place.X, s.place.Y)
		if !ok {
			// Nowhere to go: forced departure keeps the ledger balanced.
			delete(p.sessions, player)
			p.departed++
			if p.cfg.Stats != nil {
				p.cfg.Stats.Departed.Inc()
			}
			out = append(out, Replacement{Player: player, Dropped: true})
			continue
		}
		s.worker = wid
		s.replaced = true
		p.attach(wid)
		p.replacements++
		if p.cfg.Stats != nil {
			p.cfg.Stats.Replacements.Inc()
		}
		out = append(out, Replacement{Player: player, Ticket: p.issue(now, player, s)})
	}
	return out
}

// WorkerAlive reports whether the worker is currently registered and not
// declared dead.
func (p *Placer) WorkerAlive(id int64) bool {
	w := p.workers[id]
	return w != nil && w.alive
}

// WorkersAlive counts registered, not-dead workers.
func (p *Placer) WorkersAlive() int {
	n := 0
	for _, w := range p.workers {
		if w.alive {
			n++
		}
	}
	return n
}

// SessionWorker returns the worker currently serving the player's session
// (0, false if the session does not exist; 0, true for cloud-direct).
func (p *Placer) SessionWorker(player int64) (int64, bool) {
	s := p.sessions[player]
	if s == nil {
		return 0, false
	}
	return s.worker, true
}

// Ledger snapshots the session accounting.
func (p *Placer) Ledger() Ledger {
	l := Ledger{
		Placements:        p.placements,
		Replacements:      p.replacements,
		Rejected:          p.rejected,
		Departed:          p.departed,
		WorkersAlive:      p.WorkersAlive(),
		WorkersRegistered: p.wRegistered,
		WorkersLost:       p.wLost,
		WorkersReturned:   p.wReturned,
	}
	for _, s := range p.sessions {
		if s.replaced {
			l.ActiveReplaced++
		} else {
			l.ActiveOriginal++
		}
	}
	return l
}
