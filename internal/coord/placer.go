package coord

import (
	"fmt"
	"sort"
	"time"

	"cloudfog/internal/health"
	"cloudfog/internal/obs"
	"cloudfog/internal/proto"
	"cloudfog/internal/spatial"
)

// Placer defaults, used when the corresponding PlacerConfig field is zero.
const (
	// DefaultShortlistK is how many nearest candidates a placement ranks.
	DefaultShortlistK = 4
	// DefaultBackups is the backup-ring size baked into tickets.
	DefaultBackups = 2
	// defaultPlane matches world.DefaultConfig()'s 10,000² bounds.
	defaultPlane = 10_000
)

// PlacerConfig parameterizes the placement state machine.
type PlacerConfig struct {
	// Width, Height bound the plane workers and players live on (zero
	// means the default 10,000² world).
	Width, Height float64
	// ShortlistK is the nearest-worker candidate count per placement;
	// Backups is the ring size baked into each ticket.
	ShortlistK int
	Backups    int
	// Detector configures the per-worker failure detector fed by report
	// arrivals.
	Detector health.DetectorConfig
	// Overload configures the admission ladder (zero means defaults).
	Overload health.OverloadConfig
	// TicketKey signs issued tickets (empty disables signing).
	TicketKey []byte
	// CloudAddr, when non-empty, is the cloud's direct-stream address: a
	// placement with no admitting worker falls back to it instead of
	// rejecting, and a re-placement with no surviving worker migrates there
	// instead of dropping the session.
	CloudAddr string
	// LeaseTTL, when positive, turns tickets into leases: every issued
	// ticket expires LeaseTTL after issue (signed into the HMAC body), and
	// Sweep retires sessions whose lease has lapsed a full TTL past expiry
	// without renewal. Zero disables leases.
	LeaseTTL time.Duration
	// Stats, when non-nil, mirrors the placer's ledger into metrics.
	Stats *obs.CoordStats
}

// Replacement is one churn outcome from Sweep, Deregister, or Register
// reconciliation: a fresh ticket for the player (pushed over its control
// link), a dropped session (no surviving worker and no cloud fallback), or an
// expired lease (the player never renewed and the session is retired).
type Replacement struct {
	Player  int64
	Ticket  proto.Ticket
	Dropped bool
	// Expired marks a session retired because its lease lapsed a full TTL
	// past expiry without renewal — no ticket accompanies it; the
	// coordinator reclaims the player's control link instead.
	Expired bool
}

// Ledger is the placer's session accounting. The reconciliation identities —
// checked by Balanced — are
//
//	Placements    == ActiveOriginal + ActiveReplaced + Departed + Expired
//	TicketsIssued == Placements + Replacements + Renewals
//
// Rejected joins never enter the ledger; Replacements counts ticket
// re-issues, not sessions (a twice-moved session is one ActiveReplaced).
type Ledger struct {
	Placements     uint64 `json:"placements"`
	Replacements   uint64 `json:"replacements"`
	Renewals       uint64 `json:"renewals"`
	TicketsIssued  uint64 `json:"tickets_issued"`
	Rejected       uint64 `json:"rejected"`
	Departed       uint64 `json:"departed"`
	Expired        uint64 `json:"expired"`
	ActiveOriginal uint64 `json:"active_original"`
	ActiveReplaced uint64 `json:"active_replaced"`

	// Drain accounting: episodes started, sessions moved, and sessions that
	// stayed in place because no ladder-admissible target existed.
	DrainWorkers  uint64 `json:"drain_workers"`
	DrainSessions uint64 `json:"drain_sessions"`
	DrainStranded uint64 `json:"drain_stranded"`

	// Partition accounting: coordinator pause recoveries and sessions
	// realigned against worker-reported live-session lists.
	Rebases    uint64 `json:"rebases"`
	Reconciled uint64 `json:"reconciled"`

	WorkersAlive      int    `json:"workers_alive"`
	WorkersRegistered uint64 `json:"workers_registered"`
	WorkersLost       uint64 `json:"workers_lost"`
	WorkersReturned   uint64 `json:"workers_returned"`
}

// Balanced reports whether both ledger identities hold.
func (l Ledger) Balanced() bool {
	return l.Placements == l.ActiveOriginal+l.ActiveReplaced+l.Departed+l.Expired &&
		l.TicketsIssued == l.Placements+l.Replacements+l.Renewals
}

type workerState struct {
	reg      proto.Register
	det      *health.Detector
	alive    bool
	load     int
	capacity int
	lastSeq  uint64
	// level is the worker's self-reported overload-ladder state; draining
	// marks a worker that asked for a full handoff (SIGTERM). drainCounted
	// dedupes the per-episode DrainWorkers counter.
	level        health.OverloadState
	draining     bool
	drainCounted bool
}

// distressed reports whether the worker wants sessions moved off it: a full
// drain request, or a self-reported ladder level at Shedding or beyond.
func (w *workerState) distressed() bool {
	return w.draining || w.level >= health.StateShedding
}

type sessionState struct {
	place    proto.Place
	worker   int64 // zero: cloud-direct
	epoch    uint64
	replaced bool
	// attachSeq orders sessions by their most recent attachment; drains
	// move the newest attachments first (the RelieveOverloaded discipline).
	attachSeq uint64
	// expiry is the session's current lease deadline (zero without leases).
	expiry time.Duration
}

// Placer is the coordinator's placement state machine: worker liveness and
// occupancy, the spatial shortlist, the overload admission ladder, and the
// session ledger. It is a passive value fed explicit timestamps — no clocks,
// no goroutines — so the churn property tests drive it deterministically.
// Not safe for concurrent use; the Coordinator serializes access.
type Placer struct {
	cfg PlacerConfig
	// olCfg is the defaulted overload config, consulted directly when drain
	// admissibility needs thresholds (WouldMigrate, partial-drain target).
	olCfg   health.OverloadConfig
	grid    *spatial.Grid
	ladder  *health.Overload
	workers map[int64]*workerState
	// sessions maps player → session; sweep iterates workers' sessions via
	// this map (worker counts stay small next to session counts).
	sessions  map[int64]*sessionState
	epoch     uint64
	attachSeq uint64
	scratch   []spatial.Neighbor
	// drainScratch orders a distressed worker's sessions newest-first.
	drainScratch []drainCandidate

	placements    uint64
	replacements  uint64
	renewals      uint64
	ticketsIssued uint64
	rejected      uint64
	departed      uint64
	expired       uint64
	drainWorkers  uint64
	drainSessions uint64
	drainStranded uint64
	rebases       uint64
	reconciled    uint64
	wRegistered   uint64
	wLost         uint64
	wReturned     uint64
}

type drainCandidate struct {
	player int64
	s      *sessionState
}

// NewPlacer builds a placement state machine; zero config fields default.
func NewPlacer(cfg PlacerConfig) (*Placer, error) {
	if cfg.Width <= 0 {
		cfg.Width = defaultPlane
	}
	if cfg.Height <= 0 {
		cfg.Height = defaultPlane
	}
	if cfg.ShortlistK <= 0 {
		cfg.ShortlistK = DefaultShortlistK
	}
	if cfg.Backups < 0 {
		return nil, fmt.Errorf("coord: PlacerConfig.Backups %d is negative", cfg.Backups)
	}
	if cfg.Backups == 0 {
		cfg.Backups = DefaultBackups
	}
	ladder, err := health.NewOverload(cfg.Overload, nil, nil)
	if err != nil {
		return nil, err
	}
	olCfg := cfg.Overload
	if olCfg == (health.OverloadConfig{}) {
		olCfg = health.DefaultOverloadConfig()
	}
	return &Placer{
		cfg:      cfg,
		olCfg:    olCfg,
		grid:     spatial.NewGrid(cfg.Width, cfg.Height),
		ladder:   ladder,
		workers:  make(map[int64]*workerState),
		sessions: make(map[int64]*sessionState),
	}, nil
}

// Bound returns the provable worker-death detection latency: no session
// ticket points at a dead worker longer than this after the worker's last
// report, provided Sweep runs at least every Detector.CheckEvery.
func (p *Placer) Bound() time.Duration { return p.cfg.Detector.Bound() }

// Register admits (or re-admits) a worker at now. Returned reports whether
// this was a dead worker coming back. When the register carries the worker's
// live-session list (a reconnect after a partition), the placer reconciles:
// any session it maps to this worker that the worker no longer serves is
// re-placed and its fresh ticket returned for pushing. Sessions the worker
// reports but the placer doesn't map are left to worker-side lease expiry.
func (p *Placer) Register(now time.Duration, r proto.Register) (returned bool, reps []Replacement) {
	w := p.workers[r.Worker]
	preexisting := w != nil && w.alive
	if w == nil {
		w = &workerState{det: health.NewDetector(p.cfg.Detector)}
		p.workers[r.Worker] = w
		p.wRegistered++
		if p.cfg.Stats != nil {
			p.cfg.Stats.WorkersRegistered.Inc()
		}
	} else if !w.alive {
		returned = true
		p.wReturned++
		if p.cfg.Stats != nil {
			p.cfg.Stats.WorkersReturned.Inc()
		}
	}
	w.reg = r
	w.alive = true
	w.load = int(r.Load)
	w.capacity = int(r.Capacity)
	w.lastSeq = 0
	w.level = health.StateNormal
	w.draining = false
	w.drainCounted = false
	w.det.Reset(now)
	p.grid.Insert(r.Worker, r.X, r.Y)
	p.ladder.Observe(r.Worker, w.load, w.capacity)
	if preexisting || returned {
		reps = p.reconcile(now, r.Worker, r.Sessions)
	}
	return returned, reps
}

// reconcile realigns the placer's session map against a reconnecting
// worker's reported live sessions: any player the placer maps here that the
// worker dropped (its lease lapsed during the partition, or it never heard
// the placement) is re-placed — possibly back onto the same worker, since
// the retarget push is what re-aligns the player either way.
func (p *Placer) reconcile(now time.Duration, worker int64, live []int64) []Replacement {
	serving := make(map[int64]struct{}, len(live))
	for _, pid := range live {
		serving[pid] = struct{}{}
	}
	var out []Replacement
	for player, s := range p.sessions {
		if s.worker != worker {
			continue
		}
		if _, ok := serving[player]; ok {
			continue
		}
		// The register's load already excludes dropped sessions, so no
		// detach here — only the new attachment is counted.
		wid, ok := p.choose(s.place.X, s.place.Y)
		if !ok {
			delete(p.sessions, player)
			p.departed++
			if p.cfg.Stats != nil {
				p.cfg.Stats.Departed.Inc()
			}
			out = append(out, Replacement{Player: player, Dropped: true})
			continue
		}
		s.worker = wid
		s.replaced = true
		p.attachSeq++
		s.attachSeq = p.attachSeq
		p.attach(wid)
		p.replacements++
		p.reconciled++
		if p.cfg.Stats != nil {
			p.cfg.Stats.Replacements.Inc()
			p.cfg.Stats.Reconciled.Inc()
		}
		out = append(out, Replacement{Player: player, Ticket: p.issue(now, player, s)})
	}
	return out
}

// Report consumes a worker's periodic occupancy beacon: the arrival gap
// feeds the failure detector, the load ratio moves the admission ladder.
// Reports from unknown or dead workers — and stale out-of-order datagrams —
// are dropped (a dead worker must re-register to rejoin the pool).
func (p *Placer) Report(now time.Duration, r proto.Report) bool {
	w := p.workers[r.Worker]
	if w == nil || !w.alive {
		return false
	}
	if r.Seq != 0 && r.Seq <= w.lastSeq {
		return false
	}
	w.lastSeq = r.Seq
	w.det.Heartbeat(now)
	w.load = int(r.Load)
	if r.Capacity > 0 {
		w.capacity = int(r.Capacity)
	}
	w.level = health.OverloadState(r.Level)
	w.draining = r.Draining != 0
	if !w.distressed() {
		w.drainCounted = false
	}
	p.ladder.Observe(r.Worker, w.load, w.capacity)
	if p.cfg.Stats != nil {
		p.cfg.Stats.ReportsReceived.Inc()
	}
	return true
}

// Place answers a join: shortlist the nearest alive workers, pick the first
// the ladder admits, ring the next backup-eligible ones, and issue a signed
// ticket. With no admitting worker the session falls back to the cloud's
// direct stream when configured, otherwise the join is rejected (ok=false).
// A repeated Place for a live session re-issues its current ticket (counted
// as a renewal so the ticket identity stays balanced).
func (p *Placer) Place(now time.Duration, req proto.Place) (proto.Ticket, bool) {
	if s := p.sessions[req.Player]; s != nil {
		p.renewals++
		if p.cfg.Stats != nil {
			p.cfg.Stats.LeaseRenewed.Inc()
		}
		return p.issue(now, req.Player, s), true
	}
	wid, ok := p.choose(req.X, req.Y)
	if !ok {
		p.rejected++
		if p.cfg.Stats != nil {
			p.cfg.Stats.Rejected.Inc()
		}
		return proto.Ticket{}, false
	}
	p.attachSeq++
	s := &sessionState{place: req, worker: wid, attachSeq: p.attachSeq}
	p.sessions[req.Player] = s
	p.placements++
	if p.cfg.Stats != nil {
		p.cfg.Stats.Placements.Inc()
	}
	p.attach(wid)
	return p.issue(now, req.Player, s), true
}

// Renew extends a player's lease: a fresh ticket for its current worker with
// a new expiry and a newer epoch, so a renewal racing a drain-issued
// replacement resolves freshest-epoch-wins on the player side. The epoch the
// player renewed against is accepted even when stale — the session's current
// placement is what gets re-leased. Returns ok=false for unknown sessions.
func (p *Placer) Renew(now time.Duration, player int64) (proto.Ticket, bool) {
	s := p.sessions[player]
	if s == nil {
		return proto.Ticket{}, false
	}
	p.renewals++
	if p.cfg.Stats != nil {
		p.cfg.Stats.LeaseRenewed.Inc()
	}
	return p.issue(now, player, s), true
}

// choose runs the placement policy at (x, y): the nearest alive worker the
// ladder admits, or the cloud fallback (wid 0) when nothing admits.
func (p *Placer) choose(x, y float64) (wid int64, ok bool) {
	p.scratch = p.grid.NearestInto(p.scratch, x, y, p.cfg.ShortlistK,
		func(id int64) bool {
			w := p.workers[id]
			return w != nil && w.alive
		})
	for _, nb := range p.scratch {
		if p.ladder.Admit(nb.ID) {
			return nb.ID, true
		}
	}
	if p.cfg.CloudAddr == "" {
		return 0, false
	}
	return 0, true // cloud-direct
}

// attach counts a placed session against the worker's occupancy until its
// next report supersedes the estimate.
func (p *Placer) attach(wid int64) {
	if w := p.workers[wid]; w != nil {
		w.load++
		p.ladder.Observe(wid, w.load, w.capacity)
	}
}

func (p *Placer) detach(wid int64) {
	if w := p.workers[wid]; w != nil && w.load > 0 {
		w.load--
		p.ladder.Observe(wid, w.load, w.capacity)
	}
}

// issue builds and signs the session's current ticket, advancing the global
// epoch so every ticket supersedes all earlier ones for that player. With
// leases enabled the expiry is stamped into the signed body and the session's
// renewal deadline moves forward.
func (p *Placer) issue(now time.Duration, player int64, s *sessionState) proto.Ticket {
	p.epoch++
	s.epoch = p.epoch
	p.ticketsIssued++
	t := proto.Ticket{
		Player: player,
		Worker: s.worker,
		Epoch:  s.epoch,
		Issued: int64(now),
	}
	if p.cfg.LeaseTTL > 0 {
		s.expiry = now + p.cfg.LeaseTTL
		t.Expiry = int64(s.expiry)
		if p.cfg.Stats != nil {
			p.cfg.Stats.LeaseIssued.Inc()
		}
	}
	if w := p.workers[s.worker]; s.worker != 0 && w != nil {
		t.Transport = w.reg.Transport
		t.Addr = w.reg.Addr
		t.Backups = p.ring(s)
	} else {
		t.Transport = proto.StreamTCP
		t.Addr = p.cfg.CloudAddr
	}
	SignTicket(p.cfg.TicketKey, &t)
	return t
}

// ring computes the backup ring around a session's position: the nearest
// backup-eligible alive workers, excluding its serving worker.
func (p *Placer) ring(s *sessionState) []string {
	p.scratch = p.grid.NearestInto(p.scratch, s.place.X, s.place.Y, p.cfg.ShortlistK,
		func(id int64) bool {
			w := p.workers[id]
			return w != nil && w.alive && id != s.worker
		})
	var backups []string
	for _, nb := range p.scratch {
		if len(backups) >= p.cfg.Backups {
			break
		}
		if p.ladder.AllowBackup(nb.ID) {
			backups = append(backups, p.workers[nb.ID].reg.Addr)
		}
	}
	return backups
}

// Depart retires a player's session (its control link closed).
func (p *Placer) Depart(player int64) bool {
	s := p.sessions[player]
	if s == nil {
		return false
	}
	delete(p.sessions, player)
	p.detach(s.worker)
	p.departed++
	if p.cfg.Stats != nil {
		p.cfg.Stats.Departed.Inc()
	}
	return true
}

// Deregister removes a worker voluntarily (clean shutdown): its sessions
// re-place exactly as if the detector had declared it dead, without waiting
// for the silence bound.
func (p *Placer) Deregister(now time.Duration, worker int64) []Replacement {
	w := p.workers[worker]
	if w == nil || !w.alive {
		return nil
	}
	return p.bury(now, worker, w)
}

// Sweep evaluates every alive worker's detector at now and re-places the
// sessions of any declared dead; then drains distressed workers (proactive
// migration) and, with leases enabled, retires sessions whose lease lapsed a
// full TTL past expiry without renewal. Call it at least every
// Detector.CheckEvery to keep Bound() honest.
func (p *Placer) Sweep(now time.Duration) []Replacement {
	var out []Replacement
	for id, w := range p.workers {
		if w.alive && w.det.Suspect(now) {
			out = append(out, p.bury(now, id, w)...)
		}
	}
	out = append(out, p.drainDistressed(now)...)
	if p.cfg.LeaseTTL > 0 {
		for player, s := range p.sessions {
			if s.expiry > 0 && now >= s.expiry+p.cfg.LeaseTTL {
				delete(p.sessions, player)
				p.detach(s.worker)
				p.expired++
				if p.cfg.Stats != nil {
					p.cfg.Stats.LeaseExpired.Inc()
				}
				out = append(out, Replacement{Player: player, Expired: true})
			}
		}
	}
	return out
}

// drainDistressed runs the proactive-migration pass: every alive worker that
// asked for a full drain hands off all sessions; every worker self-reporting
// Shedding or worse sheds newest-first down to the hysteresis re-entry load.
func (p *Placer) drainDistressed(now time.Duration) []Replacement {
	var out []Replacement
	for id, w := range p.workers {
		if !w.alive || !w.distressed() {
			continue
		}
		out = append(out, p.drainWorker(now, id, w)...)
	}
	return out
}

// drainWorker moves sessions off one distressed worker, newest attachment
// first — the RelieveOverloaded discipline: the latest arrivals have the
// least session state to lose. A full drain (w.draining) targets zero load; a
// ladder-level drain stops at (ShedAt − Hysteresis) × capacity so the worker
// re-enters the ladder below Shedding without oscillating. Sessions with no
// ladder-admissible target stay put (counted stranded) — better a distressed
// worker than an interrupted stream — except a full drain falls back to the
// cloud when configured.
func (p *Placer) drainWorker(now time.Duration, worker int64, w *workerState) []Replacement {
	p.drainScratch = p.drainScratch[:0]
	for player, s := range p.sessions {
		if s.worker == worker {
			p.drainScratch = append(p.drainScratch, drainCandidate{player, s})
		}
	}
	if len(p.drainScratch) == 0 {
		return nil
	}
	sort.Slice(p.drainScratch, func(i, j int) bool {
		return p.drainScratch[i].s.attachSeq > p.drainScratch[j].s.attachSeq
	})
	target := 0
	if !w.draining {
		target = int((p.olCfg.ShedAt - p.olCfg.Hysteresis) * float64(w.capacity))
	}
	if !w.drainCounted {
		w.drainCounted = true
		p.drainWorkers++
		if p.cfg.Stats != nil {
			p.cfg.Stats.DrainWorkers.Inc()
		}
	}
	var out []Replacement
	for _, c := range p.drainScratch {
		if w.load <= target {
			break
		}
		nid, ok := p.drainTargetFor(c.s, worker)
		if !ok {
			if w.draining && p.cfg.CloudAddr != "" {
				nid = 0 // cloud-direct absorbs a full drain
			} else {
				p.drainStranded++
				if p.cfg.Stats != nil {
					p.cfg.Stats.DrainStranded.Inc()
				}
				continue
			}
		}
		p.detach(worker)
		c.s.worker = nid
		c.s.replaced = true
		p.attachSeq++
		c.s.attachSeq = p.attachSeq
		p.attach(nid)
		p.replacements++
		p.drainSessions++
		if p.cfg.Stats != nil {
			p.cfg.Stats.Replacements.Inc()
			p.cfg.Stats.DrainSessions.Inc()
		}
		out = append(out, Replacement{Player: c.player, Ticket: p.issue(now, c.player, c.s)})
	}
	return out
}

// drainTargetFor picks a ladder-admissible alternative for one draining
// session: the nearest alive, non-draining worker that still accepts backup
// duty, would not itself cross the migration threshold by taking one more
// session, and self-reports below Shedding.
func (p *Placer) drainTargetFor(s *sessionState, exclude int64) (int64, bool) {
	p.scratch = p.grid.NearestInto(p.scratch, s.place.X, s.place.Y, p.cfg.ShortlistK,
		func(id int64) bool {
			w := p.workers[id]
			return w != nil && w.alive && !w.draining && id != exclude
		})
	for _, nb := range p.scratch {
		w := p.workers[nb.ID]
		if w.level < health.StateShedding &&
			p.ladder.AllowBackup(nb.ID) &&
			!p.ladder.WouldMigrate(w.load+1, w.capacity) {
			return nb.ID, true
		}
	}
	return 0, false
}

// Rebase recovers from a coordinator pause (the process was stopped, not the
// workers): every alive worker's detector restarts its silence window and,
// with leases on, every live session's expiry extends to at least a full TTL
// from now — the pause was the coordinator's fault, so no lease may lapse
// because renewals couldn't land.
func (p *Placer) Rebase(now time.Duration) {
	for _, w := range p.workers {
		if w.alive {
			w.det.Reset(now)
		}
	}
	if p.cfg.LeaseTTL > 0 {
		for _, s := range p.sessions {
			if s.expiry > 0 && s.expiry < now+p.cfg.LeaseTTL {
				s.expiry = now + p.cfg.LeaseTTL
			}
		}
	}
	p.rebases++
	if p.cfg.Stats != nil {
		p.cfg.Stats.Rebases.Inc()
	}
}

// bury marks a worker dead and re-places every session it was serving.
func (p *Placer) bury(now time.Duration, worker int64, w *workerState) []Replacement {
	w.alive = false
	p.grid.Remove(worker)
	p.ladder.Forget(worker)
	p.wLost++
	if p.cfg.Stats != nil {
		p.cfg.Stats.WorkersLost.Inc()
	}
	var out []Replacement
	for player, s := range p.sessions {
		if s.worker != worker {
			continue
		}
		wid, ok := p.choose(s.place.X, s.place.Y)
		if !ok {
			// Nowhere to go: forced departure keeps the ledger balanced.
			delete(p.sessions, player)
			p.departed++
			if p.cfg.Stats != nil {
				p.cfg.Stats.Departed.Inc()
			}
			out = append(out, Replacement{Player: player, Dropped: true})
			continue
		}
		s.worker = wid
		s.replaced = true
		p.attachSeq++
		s.attachSeq = p.attachSeq
		p.attach(wid)
		p.replacements++
		if p.cfg.Stats != nil {
			p.cfg.Stats.Replacements.Inc()
		}
		out = append(out, Replacement{Player: player, Ticket: p.issue(now, player, s)})
	}
	return out
}

// WorkerAlive reports whether the worker is currently registered and not
// declared dead.
func (p *Placer) WorkerAlive(id int64) bool {
	w := p.workers[id]
	return w != nil && w.alive
}

// WorkersAlive counts registered, not-dead workers.
func (p *Placer) WorkersAlive() int {
	n := 0
	for _, w := range p.workers {
		if w.alive {
			n++
		}
	}
	return n
}

// SessionWorker returns the worker currently serving the player's session
// (0, false if the session does not exist; 0, true for cloud-direct).
func (p *Placer) SessionWorker(player int64) (int64, bool) {
	s := p.sessions[player]
	if s == nil {
		return 0, false
	}
	return s.worker, true
}

// Ledger snapshots the session accounting.
func (p *Placer) Ledger() Ledger {
	l := Ledger{
		Placements:        p.placements,
		Replacements:      p.replacements,
		Renewals:          p.renewals,
		TicketsIssued:     p.ticketsIssued,
		Rejected:          p.rejected,
		Departed:          p.departed,
		Expired:           p.expired,
		DrainWorkers:      p.drainWorkers,
		DrainSessions:     p.drainSessions,
		DrainStranded:     p.drainStranded,
		Rebases:           p.rebases,
		Reconciled:        p.reconciled,
		WorkersAlive:      p.WorkersAlive(),
		WorkersRegistered: p.wRegistered,
		WorkersLost:       p.wLost,
		WorkersReturned:   p.wReturned,
	}
	for _, s := range p.sessions {
		if s.replaced {
			l.ActiveReplaced++
		} else {
			l.ActiveOriginal++
		}
	}
	return l
}
