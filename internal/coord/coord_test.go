package coord

import (
	"fmt"
	"testing"
	"time"

	"cloudfog/internal/fault"
	"cloudfog/internal/health"
	"cloudfog/internal/proto"
)

func TestTicketSignVerify(t *testing.T) {
	key := []byte("test-key")
	tk := proto.Ticket{
		Player: 7, Worker: 3, Epoch: 12, Issued: 99,
		Transport: proto.StreamUDP, Addr: "127.0.0.1:4100",
		Backups: []string{"127.0.0.1:4101", "127.0.0.1:4102"},
	}
	SignTicket(key, &tk)
	if len(tk.Sig) == 0 {
		t.Fatal("signing produced no signature")
	}
	if !VerifyTicket(key, tk) {
		t.Fatal("valid signature rejected")
	}
	if VerifyTicket([]byte("other-key"), tk) {
		t.Fatal("signature verified under the wrong key")
	}
	tampered := tk
	tampered.Addr = "10.0.0.1:4100"
	if VerifyTicket(key, tampered) {
		t.Fatal("tampered ticket verified")
	}
	forged := tk
	forged.Sig = nil
	if VerifyTicket(key, forged) {
		t.Fatal("unsigned ticket accepted under a signing key")
	}

	var unsigned proto.Ticket
	unsigned.Addr = "127.0.0.1:1"
	SignTicket(nil, &unsigned)
	if unsigned.Sig != nil {
		t.Fatal("empty key produced a signature")
	}
	if !VerifyTicket(nil, unsigned) {
		t.Fatal("unsigned ticket rejected on an unsigned deployment")
	}
}

// storm is the detector tuning every placer test uses: 100ms reports, so
// Bound() is 625ms.
var testDetector = health.DetectorConfig{Mode: health.ModePhi, Interval: 100 * time.Millisecond}

func testPlacer(t *testing.T, cloudAddr string) *Placer {
	t.Helper()
	p, err := NewPlacer(PlacerConfig{
		Detector:  testDetector,
		TicketKey: []byte("k"),
		CloudAddr: cloudAddr,
		Backups:   2,
	})
	if err != nil {
		t.Fatalf("NewPlacer: %v", err)
	}
	return p
}

func reg(id int64, x, y float64, capacity int32) proto.Register {
	return proto.Register{
		Worker: id, Capacity: capacity, X: x, Y: y,
		Transport: proto.StreamTCP, Addr: addrOf(id),
	}
}

func addrOf(id int64) string { return fmt.Sprintf("127.0.0.1:%d", 4000+id) }

func TestPlacerPlacement(t *testing.T) {
	p := testPlacer(t, "")
	now := time.Duration(0)
	p.Register(now, reg(1, 1000, 1000, 4))
	p.Register(now, reg(2, 9000, 1000, 4))
	p.Register(now, reg(3, 5000, 9000, 4))

	tk, ok := p.Place(now, proto.Place{Player: 100, GameID: 1, X: 1100, Y: 900})
	if !ok {
		t.Fatal("placement with free capacity rejected")
	}
	if tk.Worker != 1 {
		t.Fatalf("player near worker 1 placed on worker %d", tk.Worker)
	}
	if tk.Addr != addrOf(1) {
		t.Fatalf("ticket addr %q, want worker 1's", tk.Addr)
	}
	if !VerifyTicket([]byte("k"), tk) {
		t.Fatal("issued ticket fails verification")
	}
	for _, b := range tk.Backups {
		if b == tk.Addr {
			t.Fatal("backup ring contains the serving worker")
		}
	}
	if len(tk.Backups) != 2 {
		t.Fatalf("ring size %d, want 2", len(tk.Backups))
	}

	// Same player again: idempotent re-issue, not a second placement.
	tk2, ok := p.Place(now, proto.Place{Player: 100, GameID: 1, X: 1100, Y: 900})
	if !ok || tk2.Worker != tk.Worker {
		t.Fatalf("re-place moved the session: %v %d", ok, tk2.Worker)
	}
	if tk2.Epoch <= tk.Epoch {
		t.Fatalf("re-issued epoch %d did not advance past %d", tk2.Epoch, tk.Epoch)
	}
	if l := p.Ledger(); l.Placements != 1 {
		t.Fatalf("idempotent re-place counted twice: %+v", l)
	}

	// Fill worker 1 to its rejection threshold: the next nearby player
	// must land on an admitting worker instead.
	for i := int64(101); i <= 103; i++ {
		if _, ok := p.Place(now, proto.Place{Player: i, X: 1000, Y: 1000}); !ok {
			t.Fatalf("player %d rejected below capacity", i)
		}
	}
	tk3, ok := p.Place(now, proto.Place{Player: 104, X: 1000, Y: 1000})
	if !ok {
		t.Fatal("player rejected while other workers admit")
	}
	if tk3.Worker == 1 {
		t.Fatal("player placed on a rejecting (full) worker")
	}

	if !p.Ledger().Balanced() {
		t.Fatalf("ledger unbalanced: %+v", p.Ledger())
	}
}

func TestPlacerRejectionAndCloudFallback(t *testing.T) {
	// No workers, no cloud: reject.
	p := testPlacer(t, "")
	if _, ok := p.Place(0, proto.Place{Player: 1, X: 10, Y: 10}); ok {
		t.Fatal("empty placer placed a player")
	}
	if l := p.Ledger(); l.Rejected != 1 || l.Placements != 0 {
		t.Fatalf("rejection ledger: %+v", l)
	}

	// No workers, cloud fallback configured: cloud-direct ticket.
	pc := testPlacer(t, "127.0.0.1:9999")
	tk, ok := pc.Place(0, proto.Place{Player: 1, X: 10, Y: 10})
	if !ok {
		t.Fatal("cloud fallback rejected the join")
	}
	if tk.Worker != 0 || tk.Addr != "127.0.0.1:9999" || tk.Transport != proto.StreamTCP {
		t.Fatalf("cloud-direct ticket wrong: %+v", tk)
	}
}

func TestPlacerDetectorChurn(t *testing.T) {
	p := testPlacer(t, "")
	step := 100 * time.Millisecond
	now := time.Duration(0)
	p.Register(now, reg(1, 1000, 1000, 8))
	p.Register(now, reg(2, 9000, 1000, 8))
	p.Register(now, reg(3, 5000, 9000, 8))

	var players []int64
	for i := int64(0); i < 6; i++ {
		id := 200 + i
		if _, ok := p.Place(now, proto.Place{Player: id, X: float64(500 + i*1500), Y: 1500}); !ok {
			t.Fatalf("player %d not placed", id)
		}
		players = append(players, id)
	}

	// Everyone reports for 1s, then worker 1 goes silent.
	var seq uint64
	silentFrom := time.Duration(0)
	for tick := 1; tick <= 30; tick++ {
		now = time.Duration(tick) * step
		seq++
		for _, w := range []int64{1, 2, 3} {
			if w == 1 && tick > 10 {
				continue
			}
			if w == 1 {
				silentFrom = now
			}
			p.Report(now, proto.Report{Worker: w, Seq: seq, Load: 2, Capacity: 8})
		}
		reps := p.Sweep(now)
		for _, r := range reps {
			if r.Dropped {
				t.Fatalf("session %d dropped with live workers available", r.Player)
			}
			if r.Ticket.Worker == 1 {
				t.Fatal("replacement ticket points at the dead worker")
			}
		}
		if len(reps) > 0 {
			elapsed := now - silentFrom
			if elapsed > p.Bound() {
				t.Fatalf("re-placement at %v after silence, beyond Bound %v", elapsed, p.Bound())
			}
		}
	}
	if p.WorkerAlive(1) {
		t.Fatal("silent worker still alive after 2s of silence (Bound is 625ms)")
	}
	for _, id := range players {
		w, ok := p.SessionWorker(id)
		if !ok {
			t.Fatalf("session %d vanished", id)
		}
		if w == 1 {
			t.Fatalf("session %d still ticketed to the dead worker", id)
		}
	}
	l := p.Ledger()
	if !l.Balanced() {
		t.Fatalf("ledger unbalanced after churn: %+v", l)
	}
	if l.WorkersLost != 1 {
		t.Fatalf("WorkersLost %d, want 1", l.WorkersLost)
	}

	// The dead worker comes back: counted as returned, eligible again.
	if returned, _ := p.Register(now, reg(1, 1000, 1000, 8)); !returned {
		t.Fatal("re-registration of a dead worker not flagged as returned")
	}
	if !p.WorkerAlive(1) {
		t.Fatal("returned worker not alive")
	}
	if got := p.Ledger().WorkersReturned; got != 1 {
		t.Fatalf("WorkersReturned %d, want 1", got)
	}
}

// TestTicketNeverPointsAtDeadWorker is the churn property test: a
// deregister/re-register storm driven by a compiled PR 4 fault schedule
// must never leave any session's ticket naming a dead worker, and the
// ledger must stay balanced at every step. Run under -race in the suite.
func TestTicketNeverPointsAtDeadWorker(t *testing.T) {
	const nWorkers = 8
	var nodes []fault.Node
	positions := map[int64][2]float64{}
	for i := int64(1); i <= nWorkers; i++ {
		x := float64(1000 + (i%4)*2500)
		y := float64(1500 + (i/4)*5000)
		nodes = append(nodes, fault.Node{ID: i, X: x, Y: y})
		positions[i] = [2]float64{x, y}
	}
	profile := &fault.Profile{
		Name: "coord-storm", Seed: 8, Duration: fault.Dur(10 * time.Second),
		Specs: []fault.Spec{{
			Kind:   fault.KindCrash,
			Period: fault.Dur(200 * time.Millisecond),
			MTTR:   fault.Dur(400 * time.Millisecond),
			Detect: fault.Dur(100 * time.Millisecond),
		}},
	}
	sched, err := fault.Compile(profile, fault.Targets{Supernodes: nodes})
	if err != nil {
		t.Fatalf("fault.Compile: %v", err)
	}
	if len(sched.Events) < 20 {
		t.Fatalf("storm schedule too quiet: %d events", len(sched.Events))
	}

	p := testPlacer(t, "127.0.0.1:9999") // cloud fallback: sessions survive total loss
	now := time.Duration(0)
	for _, n := range nodes {
		p.Register(now, reg(n.ID, n.X, n.Y, 64))
	}
	var players []int64
	for i := int64(0); i < 100; i++ {
		id := 1000 + i
		x := float64((i * 97) % 10000)
		y := float64((i * 71) % 10000)
		if _, ok := p.Place(now, proto.Place{Player: id, X: x, Y: y}); !ok {
			t.Fatalf("seed player %d rejected", id)
		}
		players = append(players, id)
	}

	check := func(at time.Duration, ev string) {
		t.Helper()
		for _, id := range players {
			w, ok := p.SessionWorker(id)
			if !ok {
				continue // departed via forced drop (shouldn't happen with fallback)
			}
			if w != 0 && !p.WorkerAlive(w) {
				t.Fatalf("after %s at %v: session %d ticketed to dead worker %d", ev, at, id, w)
			}
		}
		if l := p.Ledger(); !l.Balanced() {
			t.Fatalf("after %s at %v: ledger unbalanced: %+v", ev, at, l)
		}
	}

	next := int64(2000)
	for _, ev := range sched.Events {
		now = ev.At
		switch ev.Op {
		case fault.OpKill:
			for _, r := range p.Deregister(now, ev.Node) {
				if !r.Dropped && r.Ticket.Worker == ev.Node {
					t.Fatalf("replacement re-ticketed onto the worker being buried: %+v", r)
				}
			}
		case fault.OpRecover:
			pos := positions[ev.Node]
			p.Register(now, reg(ev.Node, pos[0], pos[1], 64))
		default:
			continue
		}
		// Keep join/leave traffic flowing through the storm.
		if _, ok := p.Place(now, proto.Place{Player: next, X: float64(next % 10000), Y: 3000}); ok {
			players = append(players, next)
		}
		next++
		if len(players) > 120 {
			p.Depart(players[0])
			players = players[1:]
		}
		p.Sweep(now)
		check(now, ev.Op.String())
	}
	l := p.Ledger()
	if l.WorkersLost == 0 || l.WorkersReturned == 0 || l.Replacements == 0 {
		t.Fatalf("storm exercised nothing: %+v", l)
	}
}
