package coord

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cloudfog/internal/live"
	"cloudfog/internal/proto"
)

// Worker is a coordinator-registered supernode: the serving supernode plus
// the control loop that registers it and streams capacity/occupancy reports
// whose arrival gaps drive the coordinator's failure detector.
type Worker struct {
	sn   *live.Supernode
	cfg  live.Config
	opts []live.Option
	occ  func() int

	mu   sync.Mutex
	link live.Transport

	wg   sync.WaitGroup
	stop chan struct{}
}

// StartWorker launches a worker: a supernode (Role RoleSupernode with
// CoordAddr set) that registers with the coordinator and reports every
// ReportEvery. The report loop survives coordinator restarts by re-dialing
// and re-registering when the control link dies.
func StartWorker(cfg live.Config, opts ...live.Option) (*Worker, error) {
	if cfg.Role != live.RoleSupernode || cfg.CoordAddr == "" {
		return nil, fmt.Errorf("coord: StartWorker needs Role %q with CoordAddr set, got %q/%q",
			live.RoleSupernode, cfg.Role, cfg.CoordAddr)
	}
	o := live.BuildOptions(opts...)
	cfg = cfg.Applied(o)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sn, err := live.NewSupernode(cfg, opts...)
	if err != nil {
		return nil, err
	}
	w := &Worker{sn: sn, cfg: cfg, opts: opts, occ: o.Occupancy, stop: make(chan struct{})}
	if w.occ == nil {
		w.occ = sn.SessionCount
	}
	link, err := w.connect()
	if err != nil {
		sn.Close()
		return nil, err
	}
	w.link = link
	w.wg.Add(1)
	go w.reportLoop()
	return w, nil
}

// connect dials the coordinator and registers the worker's current state.
func (w *Worker) connect() (live.Transport, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	link, err := live.Dial(ctx, live.RoleCoordinator, w.cfg, w.opts...)
	if err != nil {
		return nil, err
	}
	reg := proto.Register{
		Worker:    w.cfg.ID,
		Capacity:  int32(w.cfg.Capacity),
		Load:      int32(w.occ()),
		X:         w.cfg.X,
		Y:         w.cfg.Y,
		Transport: streamCode(w.cfg.Transport),
		Addr:      w.sn.Addr(),
	}
	if !link.Send(proto.TRegister, proto.MarshalRegister(reg)) {
		link.Close()
		return nil, fmt.Errorf("coord: worker %d registration send failed", w.cfg.ID)
	}
	return link, nil
}

// reportLoop streams occupancy reports; a dead link triggers reconnection
// (with registration), so a restarted coordinator re-learns the worker.
func (w *Worker) reportLoop() {
	defer w.wg.Done()
	ticker := time.NewTicker(w.cfg.ReportEvery)
	defer ticker.Stop()
	seq := uint64(0)
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
		}
		seq++
		r := proto.Report{
			Worker:   w.cfg.ID,
			Seq:      seq,
			Load:     int32(w.occ()),
			Capacity: int32(w.cfg.Capacity),
		}
		w.mu.Lock()
		link := w.link
		w.mu.Unlock()
		if link.Send(proto.TReport, proto.MarshalReport(r)) && link.Err() == nil {
			continue
		}
		link.Close()
		fresh, err := w.connect()
		if err != nil {
			// Coordinator still unreachable; keep the dead link and retry
			// on the next tick.
			continue
		}
		w.mu.Lock()
		w.link = fresh
		w.mu.Unlock()
	}
}

// Addr returns the worker's player-facing stream address.
func (w *Worker) Addr() string { return w.sn.Addr() }

// ID returns the worker's identity.
func (w *Worker) ID() int64 { return w.cfg.ID }

// Supernode exposes the serving supernode (for chaos hooks and counters).
func (w *Worker) Supernode() *live.Supernode { return w.sn }

// Close stops reporting and shuts the supernode down.
func (w *Worker) Close() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	w.wg.Wait()
	w.mu.Lock()
	link := w.link
	w.mu.Unlock()
	if link != nil {
		link.Close()
	}
	w.sn.Close()
}

// streamCode maps the live transport name onto the wire code tickets carry.
func streamCode(t string) uint8 {
	if t == live.TransportUDP {
		return proto.StreamUDP
	}
	return proto.StreamTCP
}

// streamName maps a ticket's wire code back onto the live transport name.
func streamName(c uint8) string {
	if c == proto.StreamUDP {
		return live.TransportUDP
	}
	return live.TransportTCP
}
