package coord

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cloudfog/internal/health"
	"cloudfog/internal/live"
	"cloudfog/internal/proto"
)

// Worker is a coordinator-registered supernode: the serving supernode plus
// the control loop that registers it and streams capacity/occupancy reports
// whose arrival gaps drive the coordinator's failure detector.
//
// The worker watches back: every report is answered by a TSync beacon, and a
// phi detector on coordinator silence drops the worker into safe mode — keep
// serving every existing session, refuse new placements (AckSafeMode), and
// trust worker-side lease expiry rather than coordinator churn — until the
// beacons resume. TSync also carries the coordinator's clock, so the worker
// estimates skew and judges ticket expiries on the coordinator's timeline.
type Worker struct {
	sn   *live.Supernode
	cfg  live.Config
	opts []live.Option
	occ  func() int

	start time.Time

	mu       sync.Mutex
	link     live.Transport
	ladder   *health.Overload
	coordDet *health.Detector
	skew     int64 // coordinator clock minus local clock, nanoseconds
	synced   bool  // at least one TSync consumed
	leaseTTL time.Duration
	draining bool
	closed   bool

	wg   sync.WaitGroup
	stop chan struct{}
}

// StartWorker launches a worker: a supernode (Role RoleSupernode with
// CoordAddr set) that registers with the coordinator and reports every
// ReportEvery. The report loop survives coordinator restarts by re-dialing
// and re-registering when the control link dies; a re-registration carries
// the worker's live-session list so the coordinator reconciles rather than
// trusting stale state.
func StartWorker(cfg live.Config, opts ...live.Option) (*Worker, error) {
	if cfg.Role != live.RoleSupernode || cfg.CoordAddr == "" {
		return nil, fmt.Errorf("coord: StartWorker needs Role %q with CoordAddr set, got %q/%q",
			live.RoleSupernode, cfg.Role, cfg.CoordAddr)
	}
	o := live.BuildOptions(opts...)
	cfg = cfg.Applied(o)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ladder, err := health.NewOverload(cfg.Overload, nil, nil)
	if err != nil {
		return nil, err
	}
	w := &Worker{
		cfg:      cfg,
		opts:     opts,
		occ:      o.Occupancy,
		start:    time.Now(),
		ladder:   ladder,
		coordDet: health.NewDetector(cfg.Detector),
		stop:     make(chan struct{}),
	}
	// The supernode's join gate is the worker's lease and safe-mode
	// enforcement point.
	snOpts := append(append([]live.Option{}, opts...), live.WithJoinGate(w.gate))
	sn, err := live.NewSupernode(cfg, snOpts...)
	if err != nil {
		return nil, err
	}
	w.sn = sn
	if w.occ == nil {
		w.occ = sn.SessionCount
	}
	w.coordDet.Reset(w.lnow())
	link, err := w.connect()
	if err != nil {
		sn.Close()
		return nil, err
	}
	w.setLink(link)
	w.wg.Add(1)
	go w.reportLoop()
	return w, nil
}

// lnow is the worker's monotonic clock (offset from process start), the same
// Duration form every detector in the tree uses.
func (w *Worker) lnow() time.Duration { return time.Since(w.start) }

// dialCtx bounds a coordinator dial at 10s and additionally cancels it the
// moment Close is called, so a worker shutting down mid-reconnect exits
// promptly instead of riding out the full dial timeout.
func (w *Worker) dialCtx() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	go func() {
		select {
		case <-w.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}

// connect dials the coordinator and registers the worker's current state,
// including the live-session list the coordinator reconciles against.
func (w *Worker) connect() (live.Transport, error) {
	ctx, cancel := w.dialCtx()
	defer cancel()
	link, err := live.Dial(ctx, live.RoleCoordinator, w.cfg, w.opts...)
	if err != nil {
		return nil, err
	}
	reg := proto.Register{
		Worker:    w.cfg.ID,
		Capacity:  int32(w.cfg.Capacity),
		Load:      int32(w.occ()),
		X:         w.cfg.X,
		Y:         w.cfg.Y,
		Transport: streamCode(w.cfg.Transport),
		Addr:      w.sn.Addr(),
		Sessions:  w.sn.SessionIDs(),
	}
	if !link.Send(proto.TRegister, proto.MarshalRegister(reg)) {
		link.Close()
		return nil, fmt.Errorf("coord: worker %d registration send failed", w.cfg.ID)
	}
	return link, nil
}

// setLink installs a fresh control link and starts its receive loop (TSync
// beacons feed the partition detector and the skew estimate). A reconnect
// that races Close hands the fresh link straight to Close's teardown.
func (w *Worker) setLink(link live.Transport) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		link.Close()
		return
	}
	w.link = link
	w.mu.Unlock()
	w.wg.Add(1)
	go w.recvLoop(link)
}

// recvLoop consumes coordinator frames on one control link until it dies.
func (w *Worker) recvLoop(link live.Transport) {
	defer w.wg.Done()
	for {
		typ, payload, err := link.Recv()
		if err != nil {
			return
		}
		if typ != proto.TSync {
			continue // registration acks and anything newer
		}
		s, err := proto.UnmarshalSync(payload)
		if err != nil {
			continue
		}
		now := w.lnow()
		w.mu.Lock()
		w.coordDet.Heartbeat(now)
		w.skew = s.Now - int64(now)
		w.synced = true
		w.leaseTTL = time.Duration(s.LeaseTTL)
		w.mu.Unlock()
	}
}

// reportLoop streams occupancy reports; a dead link triggers reconnection
// (with registration), so a restarted coordinator re-learns the worker.
func (w *Worker) reportLoop() {
	defer w.wg.Done()
	ticker := time.NewTicker(w.cfg.ReportEvery)
	defer ticker.Stop()
	seq := uint64(0)
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
		}
		seq++
		r := w.reportMsg(seq)
		w.mu.Lock()
		link := w.link
		w.mu.Unlock()
		if link.Send(proto.TReport, proto.MarshalReport(r)) && link.Err() == nil {
			continue
		}
		link.Close()
		fresh, err := w.connect()
		if err != nil {
			// Coordinator still unreachable; keep the dead link and retry
			// on the next tick.
			continue
		}
		w.setLink(fresh)
	}
}

// reportMsg snapshots the worker's beacon: occupancy, the local overload
// ladder's verdict on it, and the drain flag.
func (w *Worker) reportMsg(seq uint64) proto.Report {
	load := w.occ()
	w.mu.Lock()
	w.ladder.Observe(w.cfg.ID, load, w.cfg.Capacity)
	level := w.ladder.State(w.cfg.ID)
	draining := w.draining
	w.mu.Unlock()
	r := proto.Report{
		Worker:   w.cfg.ID,
		Seq:      seq,
		Load:     int32(load),
		Capacity: int32(w.cfg.Capacity),
		Level:    uint8(level),
	}
	if draining {
		r.Draining = 1
	}
	return r
}

// gate is the supernode's join admission hook. Known players (an existing
// stream re-keying or keepalive-rejoining) always pass: safe mode and lease
// expiry never interrupt a session already being served. Unknown players are
// refused in safe mode, and — when the deployment runs leases — must present
// a verifiable, unexpired ticket naming this worker or its backup ring.
func (w *Worker) gate(join proto.JoinStream, known bool) uint32 {
	if known {
		return proto.AckOK
	}
	now := w.lnow()
	w.mu.Lock()
	safe := w.coordDet.Suspect(now)
	skew := w.skew
	ttl := w.leaseTTL
	w.mu.Unlock()
	if safe {
		return proto.AckSafeMode
	}
	if ttl <= 0 {
		return proto.AckOK
	}
	t, err := proto.UnmarshalTicket(join.Ticket)
	if err != nil || !VerifyTicket([]byte(w.cfg.TicketKey), t) || t.Player != join.Player {
		return proto.AckRefused
	}
	if t.Worker != w.cfg.ID && t.Addr != w.sn.Addr() && !ringHas(t.Backups, w.sn.Addr()) {
		return proto.AckRefused
	}
	if t.Expiry > 0 {
		// Judge expiry on the coordinator's estimated clock, slack by the
		// configured skew tolerance in the player's favor.
		coordNow := int64(now) + skew
		if coordNow >= t.Expiry+int64(w.cfg.SkewTolerance) {
			return proto.AckExpired
		}
	}
	return proto.AckOK
}

func ringHas(ring []string, addr string) bool {
	for _, a := range ring {
		if a == addr {
			return true
		}
	}
	return false
}

// SafeMode reports whether the worker currently distrusts the coordinator
// (the phi detector fired on TSync silence).
func (w *Worker) SafeMode() bool {
	now := w.lnow()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.coordDet.Suspect(now)
}

// Skew returns the latest estimate of the coordinator clock minus the local
// clock, and whether any TSync has been observed to base it on.
func (w *Worker) Skew() (time.Duration, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return time.Duration(w.skew), w.synced
}

// LeaseTTL returns the lease duration learned from the coordinator (zero
// until a TSync arrives or when the deployment runs without leases).
func (w *Worker) LeaseTTL() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.leaseTTL
}

// Draining reports whether Drain has been requested.
func (w *Worker) Draining() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.draining
}

// Drain asks the coordinator to move every session off this worker, waits up
// to DrainTimeout for the handoffs to complete, then shuts down. The drain
// intent is announced immediately (an out-of-band Seq-0 report, which the
// placer accepts regardless of report ordering) and re-announced by every
// periodic report until the worker exits. Returns true when the supernode
// emptied before the deadline — a zero-interruption handoff.
func (w *Worker) Drain() bool {
	w.mu.Lock()
	already := w.draining
	w.draining = true
	link := w.link
	w.mu.Unlock()
	if !already && link != nil {
		link.Send(proto.TReport, proto.MarshalReport(w.reportMsg(0)))
	}
	timeout := w.cfg.DrainTimeout
	if timeout <= 0 {
		timeout = live.DefaultDrainTimeout
	}
	deadline := time.Now().Add(timeout)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	drained := false
	for time.Now().Before(deadline) {
		if w.sn.SessionCount() == 0 {
			drained = true
			break
		}
		select {
		case <-w.stop:
			w.Close()
			return false
		case <-tick.C:
		}
	}
	w.Close()
	return drained
}

// Addr returns the worker's player-facing stream address.
func (w *Worker) Addr() string { return w.sn.Addr() }

// ID returns the worker's identity.
func (w *Worker) ID() int64 { return w.cfg.ID }

// Supernode exposes the serving supernode (for chaos hooks and counters).
func (w *Worker) Supernode() *live.Supernode { return w.sn }

// Close stops reporting and shuts the supernode down. Safe to call twice.
func (w *Worker) Close() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	w.mu.Lock()
	w.closed = true
	link := w.link
	w.mu.Unlock()
	if link != nil {
		// Closing the link unparks the recvLoop before wg.Wait.
		link.Close()
	}
	w.wg.Wait()
	w.sn.Close()
}

// streamCode maps the live transport name onto the wire code tickets carry.
func streamCode(t string) uint8 {
	if t == live.TransportUDP {
		return proto.StreamUDP
	}
	return proto.StreamTCP
}

// streamName maps a ticket's wire code back onto the live transport name.
func streamName(c uint8) string {
	if c == proto.StreamUDP {
		return live.TransportUDP
	}
	return live.TransportTCP
}
