package coord

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cloudfog/internal/live"
	"cloudfog/internal/proto"
)

// Session is a player's placement client: it asks the coordinator for a
// ticket and keeps the control link open so re-placement tickets pushed
// after worker deaths arrive on Updates. The coordinator counts the link
// closing as the player's departure.
type Session struct {
	cfg     live.Config
	link    live.Transport
	updates chan proto.Ticket

	mu     sync.Mutex
	ticket proto.Ticket

	wg sync.WaitGroup
}

// OpenSession places a player (Role RolePlayer with CoordAddr set): it
// dials the coordinator — placement always rides TCP, whatever transport
// the game stream uses — sends the placement request, and verifies the
// returned ticket under cfg.TicketKey.
func OpenSession(ctx context.Context, cfg live.Config, opts ...live.Option) (*Session, error) {
	if cfg.Role != live.RolePlayer || cfg.CoordAddr == "" {
		return nil, fmt.Errorf("coord: OpenSession needs Role %q with CoordAddr set, got %q/%q",
			live.RolePlayer, cfg.Role, cfg.CoordAddr)
	}
	o := live.BuildOptions(opts...)
	cfg = cfg.Applied(o)
	cfg, err := live.DefaultedPlayer(cfg)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dialCfg := cfg
	dialCfg.Transport = live.TransportTCP
	link, err := live.Dial(ctx, live.RoleCoordinator, dialCfg, opts...)
	if err != nil {
		return nil, err
	}
	req := proto.Place{Player: cfg.ID, GameID: int32(cfg.GameID), X: cfg.X, Y: cfg.Y}
	if !link.Send(proto.TPlace, proto.MarshalPlace(req)) {
		link.Close()
		return nil, fmt.Errorf("coord: placement request send failed")
	}
	typ, payload, err := link.Recv()
	if err != nil {
		link.Close()
		return nil, fmt.Errorf("coord: placement reply: %w", err)
	}
	if typ != proto.TTicket {
		link.Close()
		return nil, fmt.Errorf("coord: placement reply type %d, want ticket", typ)
	}
	t, err := proto.UnmarshalTicket(payload)
	if err != nil {
		link.Close()
		return nil, err
	}
	if t.Addr == "" {
		link.Close()
		return nil, fmt.Errorf("coord: join rejected: no admitting worker")
	}
	if !VerifyTicket([]byte(cfg.TicketKey), t) {
		link.Close()
		return nil, fmt.Errorf("coord: ticket signature verification failed")
	}
	s := &Session{cfg: cfg, link: link, updates: make(chan proto.Ticket, 8), ticket: t}
	s.wg.Add(1)
	go s.watch()
	return s, nil
}

// watch forwards pushed re-placement tickets (signature-checked) to Updates
// until the link dies. A full updates channel drops the oldest ticket —
// only the freshest placement matters.
func (s *Session) watch() {
	defer s.wg.Done()
	defer close(s.updates)
	for {
		typ, payload, err := s.link.Recv()
		if err != nil {
			return
		}
		if typ != proto.TTicket {
			continue
		}
		t, err := proto.UnmarshalTicket(payload)
		if err != nil || !VerifyTicket([]byte(s.cfg.TicketKey), t) {
			continue
		}
		s.mu.Lock()
		if t.Epoch > s.ticket.Epoch {
			s.ticket = t
		}
		s.mu.Unlock()
		for {
			select {
			case s.updates <- t:
			default:
				select {
				case <-s.updates:
				default:
				}
				continue
			}
			break
		}
	}
}

// Ticket returns the freshest ticket seen so far.
func (s *Session) Ticket() proto.Ticket {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticket
}

// Updates delivers re-placement tickets pushed by the coordinator. The
// channel closes when the control link dies.
func (s *Session) Updates() <-chan proto.Ticket { return s.updates }

// PlayerConfig resolves the session's current ticket into a runnable player
// config: the ticket's worker address as StreamAddr, its ring as the
// failover backups, and its transport as the stream transport.
func (s *Session) PlayerConfig() (live.Config, error) {
	t := s.Ticket()
	cfg := s.cfg
	cfg.StreamAddr = t.Addr
	cfg.BackupAddrs = t.Backups
	cfg.Transport = streamName(t.Transport)
	return live.DefaultedPlayer(cfg)
}

// Run drives the placed player for the given wall-clock duration. Worker
// churn mid-run is absorbed by the player's own failover ring — the ring is
// the ticket's backups — while the pushed replacement ticket updates
// Ticket() for the next attachment.
func (s *Session) Run(duration time.Duration, opts ...live.Option) (live.PlayerReport, error) {
	cfg, err := s.PlayerConfig()
	if err != nil {
		return live.PlayerReport{}, err
	}
	p, err := live.NewPlayer(cfg, opts...)
	if err != nil {
		return live.PlayerReport{}, err
	}
	return p.Run(duration)
}

// Close ends the session; the coordinator records the departure.
func (s *Session) Close() {
	s.link.Close()
	s.wg.Wait()
}

// RunSession is the one-call client: place, stream for duration, depart.
// It returns the player's report and the last ticket held.
func RunSession(ctx context.Context, cfg live.Config, duration time.Duration, opts ...live.Option) (live.PlayerReport, proto.Ticket, error) {
	s, err := OpenSession(ctx, cfg, opts...)
	if err != nil {
		return live.PlayerReport{}, proto.Ticket{}, err
	}
	defer s.Close()
	rep, err := s.Run(duration, opts...)
	return rep, s.Ticket(), err
}
