package coord

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cloudfog/internal/live"
	"cloudfog/internal/proto"
)

// Session is a player's placement client: it asks the coordinator for a
// ticket and keeps the control link open so re-placement tickets pushed
// after worker deaths arrive on Updates. The coordinator counts the link
// closing as the player's departure.
type Session struct {
	cfg     live.Config
	link    live.Transport
	updates chan proto.Ticket
	// retargets is the internal twin of updates feeding Run's live-retarget
	// forwarder, so consuming Updates() externally never races Run.
	retargets chan proto.Ticket

	mu     sync.Mutex
	ticket proto.Ticket

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// OpenSession places a player (Role RolePlayer with CoordAddr set): it
// dials the coordinator — placement always rides TCP, whatever transport
// the game stream uses — sends the placement request, and verifies the
// returned ticket under cfg.TicketKey.
func OpenSession(ctx context.Context, cfg live.Config, opts ...live.Option) (*Session, error) {
	if cfg.Role != live.RolePlayer || cfg.CoordAddr == "" {
		return nil, fmt.Errorf("coord: OpenSession needs Role %q with CoordAddr set, got %q/%q",
			live.RolePlayer, cfg.Role, cfg.CoordAddr)
	}
	o := live.BuildOptions(opts...)
	cfg = cfg.Applied(o)
	cfg, err := live.DefaultedPlayer(cfg)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dialCfg := cfg
	dialCfg.Transport = live.TransportTCP
	link, err := live.Dial(ctx, live.RoleCoordinator, dialCfg, opts...)
	if err != nil {
		return nil, err
	}
	req := proto.Place{Player: cfg.ID, GameID: int32(cfg.GameID), X: cfg.X, Y: cfg.Y}
	if !link.Send(proto.TPlace, proto.MarshalPlace(req)) {
		link.Close()
		return nil, fmt.Errorf("coord: placement request send failed")
	}
	typ, payload, err := link.Recv()
	if err != nil {
		link.Close()
		return nil, fmt.Errorf("coord: placement reply: %w", err)
	}
	if typ != proto.TTicket {
		link.Close()
		return nil, fmt.Errorf("coord: placement reply type %d, want ticket", typ)
	}
	t, err := proto.UnmarshalTicket(payload)
	if err != nil {
		link.Close()
		return nil, err
	}
	if t.Addr == "" {
		link.Close()
		return nil, fmt.Errorf("coord: join rejected: no admitting worker")
	}
	if !VerifyTicket([]byte(cfg.TicketKey), t) {
		link.Close()
		return nil, fmt.Errorf("coord: ticket signature verification failed")
	}
	s := &Session{
		cfg: cfg, link: link, ticket: t,
		updates:   make(chan proto.Ticket, 8),
		retargets: make(chan proto.Ticket, 8),
		stop:      make(chan struct{}),
	}
	s.wg.Add(1)
	go s.watch()
	if t.Expiry > 0 {
		s.wg.Add(1)
		go s.renewLoop()
	}
	return s, nil
}

// renewLoop keeps the session's lease alive: a renewal request (a Renew
// payload riding a TTicket frame player→coordinator) at every lease
// half-life, with capped-backoff retry when the send fails — the coordinator
// may be briefly unreachable and the lease grace period absorbs a few missed
// half-lives. The reply is an ordinary pushed ticket, consumed by watch.
func (s *Session) renewLoop() {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		t := s.Ticket()
		ttl := time.Duration(t.Expiry - t.Issued)
		if t.Expiry == 0 || ttl <= 0 {
			return
		}
		wait := ttl / 2
		if backoff > 0 {
			wait = backoff
		}
		timer := time.NewTimer(wait)
		select {
		case <-s.stop:
			timer.Stop()
			return
		case <-timer.C:
		}
		rn := proto.Renew{Player: s.cfg.ID, Epoch: s.Ticket().Epoch}
		if s.link.Send(proto.TTicket, proto.MarshalRenew(rn)) && s.link.Err() == nil {
			backoff = 0
			continue
		}
		// Retry sooner than the next half-life, doubling up to the
		// half-life cap.
		if backoff == 0 {
			backoff = ttl / 16
		} else {
			backoff *= 2
		}
		if backoff > ttl/2 {
			backoff = ttl / 2
		}
		if backoff <= 0 {
			backoff = time.Millisecond
		}
	}
}

// watch forwards pushed re-placement tickets (signature-checked) to Updates
// until the link dies. A full updates channel drops the oldest ticket —
// only the freshest placement matters.
func (s *Session) watch() {
	defer s.wg.Done()
	defer close(s.updates)
	defer close(s.retargets)
	for {
		typ, payload, err := s.link.Recv()
		if err != nil {
			return
		}
		if typ != proto.TTicket {
			continue
		}
		t, err := proto.UnmarshalTicket(payload)
		if err != nil || !VerifyTicket([]byte(s.cfg.TicketKey), t) {
			continue
		}
		s.mu.Lock()
		if t.Epoch > s.ticket.Epoch {
			s.ticket = t
		}
		s.mu.Unlock()
		pushLatest(s.updates, t)
		pushLatest(s.retargets, t)
	}
}

// pushLatest enqueues t, evicting the oldest entry when the channel is full —
// only the freshest placement matters.
func pushLatest(ch chan proto.Ticket, t proto.Ticket) {
	for {
		select {
		case ch <- t:
			return
		default:
			select {
			case <-ch:
			default:
			}
		}
	}
}

// Ticket returns the freshest ticket seen so far.
func (s *Session) Ticket() proto.Ticket {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticket
}

// Updates delivers re-placement tickets pushed by the coordinator. The
// channel closes when the control link dies.
func (s *Session) Updates() <-chan proto.Ticket { return s.updates }

// PlayerConfig resolves the session's current ticket into a runnable player
// config: the ticket's worker address as StreamAddr, its ring as the
// failover backups, and its transport as the stream transport.
func (s *Session) PlayerConfig() (live.Config, error) {
	t := s.Ticket()
	cfg := s.cfg
	cfg.StreamAddr = t.Addr
	cfg.BackupAddrs = t.Backups
	cfg.Transport = streamName(t.Transport)
	return live.DefaultedPlayer(cfg)
}

// Run drives the placed player for the given wall-clock duration. Sudden
// worker death is absorbed by the player's own failover ring — the ring is
// the ticket's backups — while pushed replacement tickets that move the
// session to a *different* address retarget the running player make-before-
// break: subscribe to the new worker first, then drop the old stream, a
// handoff with zero visible interruption. The player carries the session's
// ticket bytes so lease-enforcing workers can admit it.
func (s *Session) Run(duration time.Duration, opts ...live.Option) (live.PlayerReport, error) {
	cfg, err := s.PlayerConfig()
	if err != nil {
		return live.PlayerReport{}, err
	}
	cur := s.Ticket()
	retarget := make(chan live.StreamTarget, 1)
	done := make(chan struct{})
	var fwg sync.WaitGroup
	fwg.Add(1)
	go func() {
		defer fwg.Done()
		addr := cur.Addr
		for {
			select {
			case <-done:
				return
			case nt, ok := <-s.retargets:
				if !ok {
					return
				}
				if nt.Addr == "" || nt.Addr == addr {
					continue // renewal or re-issue in place: no retarget
				}
				addr = nt.Addr
				tgt := live.StreamTarget{
					Addr:      nt.Addr,
					Backups:   nt.Backups,
					Transport: streamName(nt.Transport),
					Ticket:    proto.MarshalTicket(nt),
				}
				for {
					select {
					case retarget <- tgt:
					default:
						// Full: drop the stale target, keep the freshest.
						select {
						case <-retarget:
						default:
						}
						continue
					}
					break
				}
			}
		}
	}()
	opts = append(append([]live.Option{}, opts...),
		live.WithTicket(proto.MarshalTicket(cur)), live.WithRetarget(retarget))
	p, err := live.NewPlayer(cfg, opts...)
	if err != nil {
		close(done)
		fwg.Wait()
		return live.PlayerReport{}, err
	}
	rep, err := p.Run(duration)
	close(done)
	fwg.Wait()
	return rep, err
}

// Close ends the session; the coordinator records the departure.
func (s *Session) Close() {
	s.once.Do(func() { close(s.stop) })
	s.link.Close()
	s.wg.Wait()
}

// RunSession is the one-call client: place, stream for duration, depart.
// It returns the player's report and the last ticket held.
func RunSession(ctx context.Context, cfg live.Config, duration time.Duration, opts ...live.Option) (live.PlayerReport, proto.Ticket, error) {
	s, err := OpenSession(ctx, cfg, opts...)
	if err != nil {
		return live.PlayerReport{}, proto.Ticket{}, err
	}
	defer s.Close()
	rep, err := s.Run(duration, opts...)
	return rep, s.Ticket(), err
}
