package coord

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cloudfog/internal/live"
	"cloudfog/internal/obs"
	"cloudfog/internal/proto"
)

// Coordinator is the control-plane server: it accepts worker registrations
// and reports (TCP frames, or datagrams when configured for UDP transport),
// answers player placement requests with signed tickets, and pushes
// replacement tickets to affected players when a worker dies.
type Coordinator struct {
	cfg   live.Config
	stats *obs.CoordStats

	ln    net.Listener
	udp   *net.UDPConn
	start time.Time

	mu      sync.Mutex
	placer  *Placer
	players map[int64]live.Transport
	conns   map[net.Conn]struct{}
	closed  bool

	wg   sync.WaitGroup
	stop chan struct{}
}

// StartCoordinator launches the coordinator described by cfg (Role must be
// RoleCoordinator). With Transport TCP workers and players share the stream
// listener; with Transport UDP a datagram socket on the same port also
// accepts worker registrations and reports (placement stays on TCP — a lost
// ticket would strand a player).
func StartCoordinator(cfg live.Config, opts ...live.Option) (*Coordinator, error) {
	if cfg.Role != live.RoleCoordinator {
		return nil, fmt.Errorf("coord: StartCoordinator on Config.Role %q", cfg.Role)
	}
	o := live.BuildOptions(opts...)
	cfg = cfg.Applied(o)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	stats := obs.NewCoordStats()
	if o.Obs != nil {
		stats = obs.CoordStatsIn(o.Obs)
	}
	bounds := cfg.WorldConfig().Bounds
	placer, err := NewPlacer(PlacerConfig{
		Width:      bounds.Max.X - bounds.Min.X,
		Height:     bounds.Max.Y - bounds.Min.Y,
		ShortlistK: cfg.ShortlistK,
		Backups:    cfg.Backups,
		Detector:   cfg.Detector,
		Overload:   cfg.Overload,
		TicketKey:  []byte(cfg.TicketKey),
		CloudAddr:  cfg.CloudAddr,
		LeaseTTL:   cfg.LeaseTTL,
		Stats:      stats,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		stats:   stats,
		ln:      ln,
		start:   time.Now(),
		placer:  placer,
		players: make(map[int64]live.Transport),
		conns:   make(map[net.Conn]struct{}),
		stop:    make(chan struct{}),
	}
	if cfg.Transport == live.TransportUDP {
		port := ln.Addr().(*net.TCPAddr).Port
		udp, err := net.ListenUDP("udp", &net.UDPAddr{IP: ln.Addr().(*net.TCPAddr).IP, Port: port})
		if err != nil {
			ln.Close()
			return nil, err
		}
		c.udp = udp
		c.wg.Add(1)
		go c.udpLoop()
	}
	c.wg.Add(2)
	go c.acceptLoop()
	go c.sweepLoop()
	return c, nil
}

// Addr returns the coordinator's TCP listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Bound returns the worker-death detection latency guarantee.
func (c *Coordinator) Bound() time.Duration { return c.placer.Bound() }

// now is the coordinator's monotonic clock: offset from process start, the
// same Duration form the detectors and the sim engine use.
func (c *Coordinator) now() time.Duration { return time.Since(c.start) }

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.conns[conn] = struct{}{}
		c.mu.Unlock()
		c.wg.Add(1)
		go c.serveConn(conn)
	}
}

// serveConn speaks the control protocol on one accepted stream: worker
// connections carry TRegister/TReport frames, player connections carry one
// TPlace and then stay open to receive pushed TTicket frames — the player
// closing the connection is its departure.
func (c *Coordinator) serveConn(conn net.Conn) {
	defer c.wg.Done()
	link := live.NewLinkOpts(conn, live.LinkOptions{})
	defer link.Close()
	var player int64
	for {
		typ, payload, err := link.Recv()
		if err != nil {
			break
		}
		switch typ {
		case proto.TRegister:
			r, err := proto.UnmarshalRegister(payload)
			if err != nil {
				continue
			}
			c.mu.Lock()
			_, reps := c.placer.Register(c.now(), r)
			c.mu.Unlock()
			link.Send(proto.TAck, nil)
			c.pushSync(link)
			// Reconnect reconciliation: realigned sessions get their fresh
			// tickets pushed down still-open player control links.
			c.deliver(time.Now(), reps)
		case proto.TReport:
			r, err := proto.UnmarshalReport(payload)
			if err != nil {
				continue
			}
			c.mu.Lock()
			c.placer.Report(c.now(), r)
			c.mu.Unlock()
			c.pushSync(link)
		case proto.TTicket:
			// A TTicket frame arriving player→coordinator is a lease
			// renewal: answer with a fresh ticket on the same link.
			rn, err := proto.UnmarshalRenew(payload)
			if err != nil {
				continue
			}
			c.mu.Lock()
			t, ok := c.placer.Renew(c.now(), rn.Player)
			c.mu.Unlock()
			if !ok {
				// Unknown session: an empty-Addr ticket tells the player its
				// lease is gone and it must re-place.
				t = proto.Ticket{Player: rn.Player}
			}
			c.pushTicket(link, t)
		case proto.TPlace:
			pl, err := proto.UnmarshalPlace(payload)
			if err != nil {
				continue
			}
			began := time.Now()
			c.mu.Lock()
			t, ok := c.placer.Place(c.now(), pl)
			if ok {
				player = pl.Player
				c.players[player] = link
			}
			c.mu.Unlock()
			c.stats.PlacementNs.Observe(int64(time.Since(began)))
			if !ok {
				// Rejection: a ticket with no address. The empty Addr is
				// the signal; no signature covers a non-placement.
				t = proto.Ticket{Player: pl.Player}
			}
			c.pushTicket(link, t)
		}
	}
	c.mu.Lock()
	delete(c.conns, conn)
	if player != 0 && c.players[player] == link {
		delete(c.players, player)
		c.placer.Depart(player)
	}
	c.mu.Unlock()
}

// pushTicket encodes a ticket on the link's pooled frame path.
func (c *Coordinator) pushTicket(link live.Transport, t proto.Ticket) bool {
	frame := link.AcquireFrame(proto.TTicket)
	frame = proto.AppendTicket(frame, t)
	return link.SendFrame(frame)
}

// pushSync answers a worker beacon with the coordinator's clock and lease
// TTL: the worker's partition detector feeds on these, and the clock lets it
// judge ticket expiries despite skew.
func (c *Coordinator) pushSync(link live.Transport) bool {
	frame := link.AcquireFrame(proto.TSync)
	frame = proto.AppendSync(frame, proto.Sync{Now: int64(c.now()), LeaseTTL: int64(c.cfg.LeaseTTL)})
	return link.SendFrame(frame)
}

// deliver pushes churn outcomes to the affected players: replacement tickets
// down open control links, and for expired leases the zombie control link is
// closed so the departed player's link state is reclaimed.
func (c *Coordinator) deliver(began time.Time, reps []Replacement) {
	if len(reps) == 0 {
		return
	}
	links := make([]live.Transport, len(reps))
	c.mu.Lock()
	for i, r := range reps {
		links[i] = c.players[r.Player]
		if r.Expired && links[i] != nil {
			delete(c.players, r.Player)
		}
	}
	c.mu.Unlock()
	for i, r := range reps {
		if links[i] == nil {
			continue
		}
		if r.Expired {
			links[i].Close()
			continue
		}
		if r.Dropped {
			continue
		}
		c.pushTicket(links[i], r.Ticket)
		c.stats.ReplaceNs.Observe(int64(time.Since(began)))
	}
}

// udpLoop demultiplexes worker control datagrams (register/report) off the
// shared UDP socket.
func (c *Coordinator) udpLoop() {
	defer c.wg.Done()
	buf := make([]byte, proto.MaxDatagram)
	var sync []byte
	for {
		n, raddr, err := c.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		typ, payload, err := proto.ParseDatagram(buf[:n])
		if err != nil {
			continue
		}
		handled := false
		switch typ {
		case proto.TRegister:
			if r, err := proto.UnmarshalRegister(payload); err == nil {
				c.mu.Lock()
				_, reps := c.placer.Register(c.now(), r)
				c.mu.Unlock()
				c.deliver(time.Now(), reps)
				handled = true
			}
		case proto.TReport:
			if r, err := proto.UnmarshalReport(payload); err == nil {
				c.mu.Lock()
				c.placer.Report(c.now(), r)
				c.mu.Unlock()
				handled = true
			}
		}
		if handled {
			// Beacon the clock back to the datagram's source so UDP workers
			// feed their partition detectors too.
			sync = proto.AppendFrame(sync[:0], proto.TSync,
				proto.MarshalSync(proto.Sync{Now: int64(c.now()), LeaseTTL: int64(c.cfg.LeaseTTL)}))
			c.udp.WriteToUDP(sync, raddr)
		}
	}
}

// sweepLoop evaluates the failure detectors every CheckEvery and pushes
// replacement tickets to the players a dead worker stranded. It also watches
// its own cadence: a tick arriving far later than scheduled means the
// coordinator process itself was paused (SIGSTOP, VM freeze) — the workers
// were fine, their silence is our fault — so the sweep rebases every detector
// and extends every lease instead of mass-burying the fleet.
func (c *Coordinator) sweepLoop() {
	defer c.wg.Done()
	det := c.cfg.Detector.Defaulted()
	every := det.CheckEvery
	// The pause threshold keys on sweep cadence, not MaxSilence: phi
	// detectors adapt to the actual report cadence and can fire on far less
	// silence than the configured bound, so even a short coordinator freeze
	// would mass-bury a healthy fleet. A tick arriving 4+ periods late (at
	// least one detector interval) cannot be scheduler jitter at this
	// cadence; treat it as a pause. A spurious rebase only delays real
	// detection by one silence bound, so erring toward rebase is safe.
	pauseGap := 4 * every
	if det.Interval > pauseGap {
		pauseGap = det.Interval
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	last := time.Now()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		began := time.Now()
		gap := began.Sub(last)
		last = began
		c.mu.Lock()
		if gap > pauseGap {
			c.placer.Rebase(c.now())
			c.mu.Unlock()
			continue
		}
		reps := c.placer.Sweep(c.now())
		c.mu.Unlock()
		c.deliver(began, reps)
	}
}

// Ledger snapshots the session accounting.
func (c *Coordinator) Ledger() Ledger {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.placer.Ledger()
}

// WorkersAlive counts currently-registered live workers.
func (c *Coordinator) WorkersAlive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.placer.WorkersAlive()
}

// Report is the JSON document `cloudfog-coordinator -report` emits: the
// ledger plus its reconciliation verdict.
type Report struct {
	Ledger   Ledger `json:"ledger"`
	Balanced bool   `json:"balanced"`
	BoundNs  int64  `json:"detector_bound_ns"`
}

// WriteReport writes the reconciliation report as indented JSON.
func (c *Coordinator) WriteReport(w io.Writer) error {
	l := c.Ledger()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report{Ledger: l, Balanced: l.Balanced(), BoundNs: int64(c.placer.Bound())})
}

// Close stops the server: listener, datagram socket, and every live worker
// and player control connection. Safe to call twice.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conns := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	close(c.stop)
	c.ln.Close()
	if c.udp != nil {
		c.udp.Close()
	}
	// Unblock every serveConn goroutine parked in Recv.
	for _, conn := range conns {
		conn.Close()
	}
	c.wg.Wait()
}
