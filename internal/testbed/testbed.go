// Package testbed stands in for the paper's PlanetLab deployment: every
// node runs a real TCP server on the loopback interface, and wide-area
// latency is injected per node pair from the synthetic trace model. Probes
// are genuine TCP round trips — dial, write, read — so connection setup,
// kernel scheduling and socket behavior are real; only the propagation
// delay is emulated.
//
// The Cluster implements trace.Source with measured (not modeled)
// latencies, so the same CloudFog assignment protocol and experiment
// harness that run on the simulator run unchanged against live sockets —
// the paper's PeerSim/PlanetLab split.
package testbed

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"cloudfog/internal/trace"
)

// Cluster is a set of loopback-TCP nodes with injected pairwise delays.
type Cluster struct {
	model trace.Model

	mu    sync.Mutex
	nodes map[trace.NodeID]*node
	cache map[[2]trace.NodeID]time.Duration

	closed   bool
	wg       sync.WaitGroup
	probes   int64
	fallback int64
}

type node struct {
	ep   trace.Endpoint
	ln   net.Listener
	addr string
}

// Start launches one TCP server per endpoint. Callers must Close the
// cluster to release the listeners.
func Start(model trace.Model, endpoints []trace.Endpoint) (*Cluster, error) {
	c := &Cluster{
		model: model,
		nodes: make(map[trace.NodeID]*node, len(endpoints)),
		cache: make(map[[2]trace.NodeID]time.Duration),
	}
	for _, ep := range endpoints {
		if _, dup := c.nodes[ep.ID]; dup {
			c.Close()
			return nil, fmt.Errorf("testbed: duplicate endpoint id %d", ep.ID)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("testbed: listen: %w", err)
		}
		n := &node{ep: ep, ln: ln, addr: ln.Addr().String()}
		c.nodes[ep.ID] = n
		c.wg.Add(1)
		go c.serve(n)
	}
	return c, nil
}

// Nodes returns the number of live nodes.
func (c *Cluster) Nodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// Probes returns how many TCP probes have completed.
func (c *Cluster) Probes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.probes
}

// serve answers probe requests: the client sends its 8-byte node ID, the
// server sleeps the injected round-trip delay for the pair and echoes one
// byte. One probe per connection, mirroring a fresh measurement.
func (c *Cluster) serve(n *node) {
	defer c.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go func(conn net.Conn) {
			defer conn.Close()
			var buf [8]byte
			conn.SetDeadline(time.Now().Add(10 * time.Second))
			if _, err := readFull(conn, buf[:]); err != nil {
				return
			}
			peer := trace.NodeID(binary.BigEndian.Uint64(buf[:]))
			c.mu.Lock()
			peerNode, ok := c.nodes[peer]
			c.mu.Unlock()
			if !ok {
				return
			}
			time.Sleep(c.model.RTT(peerNode.ep, n.ep))
			conn.Write(buf[:1])
		}(conn)
	}
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Probe performs one real TCP round trip from node `from` to node `to` and
// returns the measured one-way latency (half the round trip).
func (c *Cluster) Probe(from, to trace.NodeID) (time.Duration, error) {
	c.mu.Lock()
	toNode, ok := c.nodes[to]
	_, fromOK := c.nodes[from]
	c.mu.Unlock()
	if !ok || !fromOK {
		return 0, fmt.Errorf("testbed: unknown endpoint %d or %d", from, to)
	}
	conn, err := net.DialTimeout("tcp", toNode.addr, 5*time.Second)
	if err != nil {
		return 0, fmt.Errorf("testbed: dial %d: %w", to, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(from))
	start := time.Now()
	if _, err := conn.Write(buf[:]); err != nil {
		return 0, err
	}
	if _, err := readFull(conn, buf[:1]); err != nil {
		return 0, err
	}
	rtt := time.Since(start)
	c.mu.Lock()
	c.probes++
	c.mu.Unlock()
	return rtt / 2, nil
}

// OneWay implements trace.Source with measured latencies. Each pair is
// probed once and cached (a node keeps its measurement, as the assignment
// protocol does); a failed probe falls back to the underlying model so an
// experiment never derails mid-run.
func (c *Cluster) OneWay(a, b trace.Endpoint) time.Duration {
	if a.ID == b.ID {
		return c.model.Base
	}
	key := pairKey(a.ID, b.ID)
	c.mu.Lock()
	if v, ok := c.cache[key]; ok {
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()

	v, err := c.Probe(a.ID, b.ID)
	if err != nil {
		c.mu.Lock()
		c.fallback++
		c.mu.Unlock()
		v = c.model.OneWay(a, b)
	}
	c.mu.Lock()
	c.cache[key] = v
	c.mu.Unlock()
	return v
}

// Fallbacks returns how many OneWay calls fell back to the model because a
// probe failed.
func (c *Cluster) Fallbacks() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fallback
}

func pairKey(a, b trace.NodeID) [2]trace.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]trace.NodeID{a, b}
}

// Prewarm measures the given endpoint pairs concurrently (up to `parallel`
// in flight) so that subsequent synchronous OneWay calls hit the cache.
// Real probes sleep their injected delays, so warming in parallel is what
// makes thousand-node assignments tractable.
func (c *Cluster) Prewarm(pairs [][2]trace.Endpoint, parallel int) {
	if parallel < 1 {
		parallel = 1
	}
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for _, pr := range pairs {
		key := pairKey(pr[0].ID, pr[1].ID)
		c.mu.Lock()
		_, done := c.cache[key]
		c.mu.Unlock()
		if done || pr[0].ID == pr[1].ID {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(a, b trace.Endpoint) {
			defer wg.Done()
			defer func() { <-sem }()
			c.OneWay(a, b)
		}(pr[0], pr[1])
	}
	wg.Wait()
}

// Close shuts every listener down and waits for the accept loops to exit.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, n := range c.nodes {
		n.ln.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
}

var _ trace.Source = (*Cluster)(nil)
