package testbed

import (
	"testing"
	"time"

	"cloudfog/internal/experiment"
	"cloudfog/internal/geo"
	"cloudfog/internal/trace"
)

// fastModel returns a latency model with small absolute delays so real
// sleeps keep the test quick, while preserving the model's structure.
func fastModel(seed int64) trace.Model {
	m := trace.DefaultModel(seed)
	m.AccessMedian = 2 * time.Millisecond
	m.SupernodeAccessMedian = 1 * time.Millisecond
	m.NoiseMedian = 4 * time.Millisecond
	m.Base = 500 * time.Microsecond
	return m
}

func testEndpoints(n int) []trace.Endpoint {
	eps := make([]trace.Endpoint, n)
	for i := range eps {
		class := trace.ClassNode
		if i == 0 {
			class = trace.ClassDatacenter
		}
		eps[i] = trace.Endpoint{
			ID:    trace.NodeID(i),
			Pos:   geo.Point{X: float64(i * 100), Y: 500},
			Class: class,
		}
	}
	return eps
}

func TestProbeMeasuresInjectedDelay(t *testing.T) {
	model := fastModel(1)
	eps := testEndpoints(4)
	c, err := Start(model, eps)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	want := model.OneWay(eps[1], eps[2])
	got, err := c.Probe(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Real sockets add some overhead; the measurement must sit near the
	// injected delay (within 40% + 5ms of slack for CI scheduling).
	lo := want - 5*time.Millisecond
	hi := want + want*2/5 + 5*time.Millisecond
	if got < lo || got > hi {
		t.Fatalf("probe = %v, injected %v", got, want)
	}
}

func TestProbeUnknownEndpoint(t *testing.T) {
	c, err := Start(fastModel(2), testEndpoints(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Probe(0, 99); err == nil {
		t.Fatal("probe to unknown endpoint succeeded")
	}
	if _, err := c.Probe(99, 0); err == nil {
		t.Fatal("probe from unknown endpoint succeeded")
	}
}

func TestOneWayCaches(t *testing.T) {
	c, err := Start(fastModel(3), testEndpoints(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	eps := testEndpoints(3)
	v1 := c.OneWay(eps[0], eps[1])
	probesAfterFirst := c.Probes()
	v2 := c.OneWay(eps[0], eps[1])
	v3 := c.OneWay(eps[1], eps[0]) // symmetric: same pair
	if v1 != v2 || v1 != v3 {
		t.Fatalf("cached measurements diverge: %v %v %v", v1, v2, v3)
	}
	if c.Probes() != probesAfterFirst {
		t.Fatal("cache miss on repeated OneWay")
	}
}

func TestOneWaySelfIsBase(t *testing.T) {
	model := fastModel(4)
	c, err := Start(model, testEndpoints(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ep := testEndpoints(2)[1]
	if got := c.OneWay(ep, ep); got != model.Base {
		t.Fatalf("self latency = %v, want base", got)
	}
}

func TestPrewarmFillsCache(t *testing.T) {
	eps := testEndpoints(6)
	c, err := Start(fastModel(5), eps)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var pairs [][2]trace.Endpoint
	for i := 1; i < len(eps); i++ {
		pairs = append(pairs, [2]trace.Endpoint{eps[0], eps[i]})
	}
	c.Prewarm(pairs, 8)
	probes := c.Probes()
	if probes != int64(len(pairs)) {
		t.Fatalf("prewarm ran %d probes, want %d", probes, len(pairs))
	}
	for _, pr := range pairs {
		c.OneWay(pr[0], pr[1])
	}
	if c.Probes() != probes {
		t.Fatal("prewarmed pairs re-probed")
	}
}

func TestDuplicateEndpointRejected(t *testing.T) {
	eps := testEndpoints(2)
	eps[1].ID = eps[0].ID
	if _, err := Start(fastModel(6), eps); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
}

func TestCloseIdempotentAndStopsProbes(t *testing.T) {
	c, err := Start(fastModel(7), testEndpoints(3))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close()
	if _, err := c.Probe(0, 1); err == nil {
		t.Fatal("probe succeeded after Close")
	}
}

// TestFogRunsOnMeasuredLatencies is the integration check: the CloudFog
// assignment protocol and a coverage measurement run end-to-end against
// live TCP sockets instead of the synthetic model.
func TestFogRunsOnMeasuredLatencies(t *testing.T) {
	cfg := experiment.Default(99)
	cfg.Players = 40
	cfg.Supernodes = 2
	cfg.EdgeServers = 2
	cfg.Datacenters = 2
	cfg.Core.Latency = fastModel(99)
	w, err := experiment.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cluster, err := Start(fastModel(99), w.Endpoints())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Prewarm(w.ProbePairs(cfg.Core.Candidates*2), 32)
	w.UseLatencySource(cluster)

	fog, err := w.NewFog(cfg.Datacenters, cfg.Supernodes)
	if err != nil {
		t.Fatal(err)
	}
	players := w.JoinAll(fog, cfg.Players)
	served := 0
	for _, p := range players {
		if p.Attached.Served() {
			served++
		}
		if l := fog.NetworkLatency(p); l <= 0 || l > time.Minute {
			t.Fatalf("implausible measured latency %v", l)
		}
	}
	if served != cfg.Players {
		t.Fatalf("served %d of %d players", served, cfg.Players)
	}
	if cluster.Probes() == 0 {
		t.Fatal("no TCP probes ran — the measured source was not used")
	}
	if cluster.Fallbacks() != 0 {
		t.Fatalf("%d probes fell back to the model", cluster.Fallbacks())
	}
	w.LeaveAll(fog, players)
}

// TestProbeFallbackAfterNodeFailure: when a node dies mid-run, OneWay falls
// back to the model instead of derailing the experiment.
func TestProbeFallbackAfterNodeFailure(t *testing.T) {
	model := fastModel(8)
	eps := testEndpoints(3)
	c, err := Start(model, eps)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Kill node 2's listener behind the cluster's back.
	c.mu.Lock()
	c.nodes[2].ln.Close()
	c.mu.Unlock()

	got := c.OneWay(eps[0], eps[2])
	if got != model.OneWay(eps[0], eps[2]) {
		t.Fatalf("fallback latency %v != model %v", got, model.OneWay(eps[0], eps[2]))
	}
	if c.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1", c.Fallbacks())
	}
	// The fallback value is cached like a measurement.
	before := c.Probes()
	c.OneWay(eps[0], eps[2])
	if c.Probes() != before || c.Fallbacks() != 1 {
		t.Fatal("fallback value not cached")
	}
	// Healthy nodes keep probing normally.
	if _, err := c.Probe(0, 1); err != nil {
		t.Fatalf("healthy probe failed: %v", err)
	}
}
