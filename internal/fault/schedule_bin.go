package fault

import (
	"encoding/json"
	"fmt"
	"time"

	"cloudfog/internal/recfmt"
)

// ScheduleMagic and ScheduleVersion stamp every persisted compiled schedule
// with the same recfmt versioned header the flight recorder uses. A compiled
// schedule IS the injected-event log the resilience figures replay, so a
// stale or bit-rotted schedule must fail loudly at load time — a silent
// mis-decode would replay garbage faults and corrupt every downstream QoE
// comparison.
const (
	ScheduleMagic   = "CFSC"
	ScheduleVersion = 1
)

// Schedule chunk types.
const (
	schedChunkProfile = 1 // the source profile, as validated JSON
	schedChunkEvents  = 2 // the compiled event list, delta-encoded
	schedChunkWindows = 3 // the pre-resolved impairment windows
)

// MarshalBinary encodes the compiled schedule as a recfmt file: header,
// profile chunk (the JSON source, so a decoded schedule is self-contained),
// event chunk (times delta-encoded — schedules are time-sorted, so deltas
// varint-pack far smaller than absolute nanoseconds), and window chunk.
// Every chunk carries its own CRC-32C.
func (s *Schedule) MarshalBinary() ([]byte, error) {
	if s.Profile == nil {
		return nil, fmt.Errorf("fault: schedule has no profile")
	}
	pj, err := json.Marshal(s.Profile)
	if err != nil {
		return nil, fmt.Errorf("fault: marshal profile: %w", err)
	}
	out := recfmt.AppendHeader(nil, ScheduleMagic, ScheduleVersion)
	out = recfmt.AppendChunk(out, schedChunkProfile, pj)

	var ev []byte
	ev = recfmt.AppendUvarint(ev, uint64(len(s.Events)))
	prev := time.Duration(0)
	for _, e := range s.Events {
		ev = recfmt.AppendVarint(ev, int64(e.At-prev))
		prev = e.At
		ev = recfmt.AppendUvarint(ev, uint64(e.Op))
		ev = recfmt.AppendVarint(ev, e.Node)
		ev = recfmt.AppendVarint(ev, int64(e.D))
		ev = recfmt.AppendFloat64(ev, e.F)
	}
	out = recfmt.AppendChunk(out, schedChunkEvents, ev)

	var win []byte
	for _, ws := range [][]window{s.lossW, s.latW, s.bwW} {
		win = recfmt.AppendUvarint(win, uint64(len(ws)))
		for _, w := range ws {
			win = recfmt.AppendVarint(win, int64(w.from))
			win = recfmt.AppendVarint(win, int64(w.to))
			win = recfmt.AppendFloat64(win, w.f)
			win = recfmt.AppendVarint(win, int64(w.d))
		}
	}
	out = recfmt.AppendChunk(out, schedChunkWindows, win)
	return out, nil
}

// UnmarshalSchedule decodes a persisted schedule, rejecting bad magics,
// newer format versions, and checksum mismatches before touching any event.
// The embedded profile is re-validated, so a decoded schedule is exactly as
// trustworthy as a freshly compiled one.
func UnmarshalSchedule(data []byte) (*Schedule, error) {
	_, rest, err := recfmt.CheckHeader(data, ScheduleMagic, ScheduleVersion)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	s := &Schedule{}
	seen := map[uint64]bool{}
	for {
		typ, payload, r, done, err := recfmt.NextChunk(rest)
		if err != nil {
			return nil, fmt.Errorf("fault: %w", err)
		}
		if done {
			break
		}
		rest = r
		if seen[typ] {
			return nil, fmt.Errorf("fault: duplicate schedule chunk %d", typ)
		}
		seen[typ] = true
		switch typ {
		case schedChunkProfile:
			p, err := Parse(payload)
			if err != nil {
				return nil, err
			}
			s.Profile = p
		case schedChunkEvents:
			rd := recfmt.NewReader(payload)
			n := rd.Uvarint()
			if n > uint64(len(payload)) { // every event takes >1 byte
				return nil, fmt.Errorf("fault: event count %d exceeds chunk size", n)
			}
			if n > 0 {
				s.Events = make([]Event, 0, n)
			}
			at := time.Duration(0)
			for i := uint64(0); i < n; i++ {
				at += time.Duration(rd.Varint())
				e := Event{
					At:   at,
					Op:   Op(rd.Uvarint()),
					Node: rd.Varint(),
					D:    time.Duration(rd.Varint()),
					F:    rd.Float64(),
				}
				s.Events = append(s.Events, e)
			}
			if err := rd.Expect(); err != nil {
				return nil, fmt.Errorf("fault: events chunk: %w", err)
			}
		case schedChunkWindows:
			rd := recfmt.NewReader(payload)
			for _, dst := range []*[]window{&s.lossW, &s.latW, &s.bwW} {
				n := rd.Uvarint()
				if n > uint64(len(payload)) {
					return nil, fmt.Errorf("fault: window count %d exceeds chunk size", n)
				}
				var ws []window // nil when empty, matching Compile
				for i := uint64(0); i < n; i++ {
					ws = append(ws, window{
						from: time.Duration(rd.Varint()),
						to:   time.Duration(rd.Varint()),
						f:    rd.Float64(),
						d:    time.Duration(rd.Varint()),
					})
				}
				*dst = ws
			}
			if err := rd.Expect(); err != nil {
				return nil, fmt.Errorf("fault: windows chunk: %w", err)
			}
		default:
			return nil, fmt.Errorf("fault: unknown schedule chunk %d", typ)
		}
	}
	if s.Profile == nil || !seen[schedChunkEvents] {
		return nil, fmt.Errorf("fault: schedule missing profile or events chunk")
	}
	return s, nil
}

// Checksum returns a digest of the full marshaled schedule — the compact
// fingerprint flight recordings compare to prove a replay recompiled the
// bit-identical injected-event log.
func (s *Schedule) Checksum() (uint32, error) {
	b, err := s.MarshalBinary()
	if err != nil {
		return 0, err
	}
	return recfmt.Checksum(b), nil
}
