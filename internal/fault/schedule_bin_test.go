package fault

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func binTestSchedule(t *testing.T) *Schedule {
	t.Helper()
	p := &Profile{
		Name:     "bin-test",
		Seed:     77,
		Duration: Dur(90 * time.Second),
		Specs: []Spec{
			{Kind: KindCrash, MTTF: Dur(20 * time.Second), MTTR: Dur(10 * time.Second),
				Detect: Dur(5 * time.Second), TargetFrac: 0.5},
			{Kind: KindLoss, MeanGood: Dur(40 * time.Second), MeanBad: Dur(5 * time.Second),
				LossFrac: 0.2},
			{Kind: KindLatency, MeanGood: Dur(60 * time.Second), MeanBad: Dur(8 * time.Second),
				Extra: Dur(25 * time.Millisecond)},
		},
	}
	targets := Targets{}
	for i := int64(0); i < 20; i++ {
		targets.Supernodes = append(targets.Supernodes, Node{ID: 1000 + i, X: float64(i), Y: float64(i % 5)})
	}
	s, err := Compile(p, targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) == 0 {
		t.Fatal("compiled schedule has no events")
	}
	return s
}

// TestScheduleBinaryRoundTrip proves a persisted schedule decodes to the
// bit-identical injected-event log: same events, same pre-resolved
// impairment windows, same checksum.
func TestScheduleBinaryRoundTrip(t *testing.T) {
	s := binTestSchedule(t)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, s.Events) {
		t.Fatalf("events differ after round trip (%d vs %d)", len(got.Events), len(s.Events))
	}
	if !reflect.DeepEqual(got.lossW, s.lossW) || !reflect.DeepEqual(got.latW, s.latW) ||
		!reflect.DeepEqual(got.bwW, s.bwW) {
		t.Fatal("impairment windows differ after round trip")
	}
	if got.Profile.Name != s.Profile.Name || got.Profile.Seed != s.Profile.Seed {
		t.Fatalf("profile differs after round trip: %+v", got.Profile)
	}
	sum1, err := s.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := got.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	if sum1 != sum2 {
		t.Fatalf("checksum changed across round trip: %08x vs %08x", sum1, sum2)
	}
}

// TestScheduleBinaryRejectsStale covers the loud-failure contract for
// persisted schedules: bad magic, future version, flipped payload bytes,
// truncation, and duplicate chunks all fail before any event is replayed.
func TestScheduleBinaryRejectsStale(t *testing.T) {
	s := binTestSchedule(t)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]byte(nil), data...)
	bad[0] = 'Z'
	if _, err := UnmarshalSchedule(bad); err == nil {
		t.Fatal("wrong magic accepted")
	}

	future := append([]byte(nil), data...)
	future[4] = ScheduleVersion + 1
	if _, err := UnmarshalSchedule(future); err == nil {
		t.Fatal("future version accepted")
	} else if !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version error does not mention version: %v", err)
	}

	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x10
	if _, err := UnmarshalSchedule(flipped); err == nil {
		t.Fatal("bit flip accepted")
	}

	if _, err := UnmarshalSchedule(data[:len(data)-2]); err == nil {
		t.Fatal("truncation accepted")
	}

	if _, err := UnmarshalSchedule(data[:5]); err == nil {
		t.Fatal("header-only schedule accepted")
	}
}

// TestScheduleChecksumTracksContent: two different profiles compile to
// different checksums (the fingerprint actually discriminates).
func TestScheduleChecksumTracksContent(t *testing.T) {
	s := binTestSchedule(t)
	sum1, err := s.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	p2 := *s.Profile
	p2.Seed++
	targets := Targets{}
	for i := int64(0); i < 20; i++ {
		targets.Supernodes = append(targets.Supernodes, Node{ID: 1000 + i, X: float64(i), Y: float64(i % 5)})
	}
	s2, err := Compile(&p2, targets)
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := s2.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	if sum1 == sum2 {
		t.Fatal("different profiles produced the same schedule checksum")
	}
}
