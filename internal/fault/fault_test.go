package fault

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"cloudfog/internal/core"
	"cloudfog/internal/game"
	"cloudfog/internal/geo"
	"cloudfog/internal/obs"
	"cloudfog/internal/sim"
	"cloudfog/internal/trace"
)

func testTargets(n int) Targets {
	t := Targets{Supernodes: make([]Node, n)}
	for i := range t.Supernodes {
		t.Supernodes[i] = Node{ID: int64(i + 1), X: float64(i * 10), Y: 50}
	}
	return t
}

func testProfile() *Profile {
	return &Profile{
		Name:     "test",
		Seed:     99,
		Duration: Dur(time.Hour),
		Specs: []Spec{
			{Kind: KindCrash, MTTF: Dur(20 * time.Minute), MTTR: Dur(4 * time.Minute), Detect: Dur(10 * time.Second), TargetFrac: 0.5},
			{Kind: KindLoss, MeanGood: Dur(5 * time.Minute), MeanBad: Dur(30 * time.Second), LossFrac: 0.3},
			{Kind: KindLatency, MeanGood: Dur(8 * time.Minute), MeanBad: Dur(20 * time.Second), Extra: Dur(80 * time.Millisecond)},
			{Kind: KindBandwidth, Start: Dur(10 * time.Minute), End: Dur(20 * time.Minute), Factor: 0.4, TargetFrac: 0.25},
			{Kind: KindPartition, Start: Dur(30 * time.Minute), End: Dur(40 * time.Minute), Region: &Rect{X0: 0, Y0: 0, X1: 45, Y1: 100}},
			{Kind: KindStorm, Start: Dur(5 * time.Minute), End: Dur(6 * time.Minute), Rate: 0.5},
			{Kind: KindCloud, Start: Dur(50 * time.Minute), End: Dur(55 * time.Minute), Factor: 0.6},
		},
	}
}

// The determinism contract: same (profile, targets) ⇒ the bit-identical
// event list and impairment windows. The schedule IS the injected-event log.
func TestCompileDeterministic(t *testing.T) {
	tg := testTargets(16)
	a, err := Compile(testProfile(), tg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(testProfile(), tg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("same profile compiled to different event logs")
	}
	if !reflect.DeepEqual(a.lossW, b.lossW) || !reflect.DeepEqual(a.latW, b.latW) || !reflect.DeepEqual(a.bwW, b.bwW) {
		t.Fatal("same profile compiled to different impairment windows")
	}
	if len(a.Events) == 0 {
		t.Fatal("profile compiled to an empty schedule")
	}
	c, err := Compile(&Profile{Name: "test", Seed: 100, Duration: Dur(time.Hour), Specs: testProfile().Specs}, tg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds compiled to identical event logs (vanishingly unlikely)")
	}
}

func TestCompiledEventsSortedAndBounded(t *testing.T) {
	s, err := Compile(testProfile(), testTargets(16))
	if err != nil {
		t.Fatal(err)
	}
	horizon := time.Hour
	for i, ev := range s.Events {
		if i > 0 && ev.At < s.Events[i-1].At {
			t.Fatalf("event %d at %v precedes event %d at %v", i, ev.At, i-1, s.Events[i-1].At)
		}
		// Only recoveries may land past the horizon (the injector never
		// reaches them); everything else must start inside it.
		if ev.Op != OpRecover && (ev.At < 0 || ev.At > horizon) {
			t.Fatalf("event %v at %v outside [0, %v]", ev.Op, ev.At, horizon)
		}
	}
}

func TestImpairmentLookups(t *testing.T) {
	s, err := Compile(testProfile(), testTargets(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.lossW) == 0 {
		t.Fatal("loss spec produced no bad windows")
	}
	for i, w := range s.lossW {
		if w.to <= w.from {
			t.Fatalf("window %d degenerate: [%v, %v)", i, w.from, w.to)
		}
		if i > 0 && w.from < s.lossW[i-1].to {
			t.Fatalf("windows %d and %d overlap", i-1, i)
		}
		mid := w.from + (w.to-w.from)/2
		if got := s.LossFrac(mid); got != 0.3 {
			t.Fatalf("LossFrac inside window = %v, want 0.3", got)
		}
		if got := s.LossFrac(w.to); got != 0 && !insideAny(s.lossW, w.to) {
			t.Fatalf("LossFrac at window end = %v, want 0", got)
		}
	}
	if got := s.LossFrac(-time.Second); got != 0 {
		t.Fatalf("LossFrac before start = %v", got)
	}
	if got := s.BandwidthScale(15 * time.Minute); got != 0.4 {
		t.Fatalf("BandwidthScale inside collapse = %v, want 0.4", got)
	}
	if got := s.BandwidthScale(25 * time.Minute); got != 1 {
		t.Fatalf("BandwidthScale outside collapse = %v, want 1", got)
	}
}

func insideAny(ws []window, at time.Duration) bool {
	for _, w := range ws {
		if at >= w.from && at < w.to {
			return true
		}
	}
	return false
}

func TestProfileJSONRoundTrip(t *testing.T) {
	p := testProfile()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip changed the profile:\n%+v\n%+v", p, q)
	}
	a, err := Compile(p, testTargets(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(q, testTargets(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("round-tripped profile compiled differently")
	}
}

func TestProfileValidation(t *testing.T) {
	bad := []Profile{
		{Duration: Dur(0)},
		{Duration: Dur(time.Hour), Specs: []Spec{{Kind: "nope"}}},
		{Duration: Dur(time.Hour), Specs: []Spec{{Kind: KindCrash}}},
		{Duration: Dur(time.Hour), Specs: []Spec{{Kind: KindCrash, MTTF: Dur(time.Minute), Period: Dur(time.Minute)}}},
		{Duration: Dur(time.Hour), Specs: []Spec{{Kind: KindLoss, MeanGood: Dur(time.Minute)}}},
		{Duration: Dur(time.Hour), Specs: []Spec{{Kind: KindLoss, MeanGood: Dur(time.Minute), MeanBad: Dur(time.Second), LossFrac: 1.5}}},
		{Duration: Dur(time.Hour), Specs: []Spec{{Kind: KindBandwidth, Factor: 0}}},
		{Duration: Dur(time.Hour), Specs: []Spec{{Kind: KindPartition}}},
		{Duration: Dur(time.Hour), Specs: []Spec{{Kind: KindStorm}}},
		{Duration: Dur(time.Hour), Specs: []Spec{{Kind: KindCloud, Factor: 0.5, Start: Dur(time.Minute), End: Dur(time.Second)}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("profile %d accepted", i)
		}
	}
	if err := testProfile().Validate(); err != nil {
		t.Errorf("good profile rejected: %v", err)
	}
}

// buildFaultFog mirrors the core package's test fog: one datacenter, a line
// of supernodes, players joined nearby.
func buildFaultFog(t *testing.T, nSN, nPlayers int, stats *obs.AssignStats) (*core.Fog, []*core.Player, Targets) {
	t.Helper()
	cfg := core.DefaultConfig(1)
	cfg.Locator.ErrorSigma = 0
	// Tame the latency model's pair noise so nearby probes qualify, the
	// same calibration the core package's own tests use.
	m := cfg.Latency.(trace.Model)
	m.NoiseMedian = 2 * time.Millisecond
	cfg.Latency = m
	cfg.Obs = stats
	center := cfg.Region.Center()
	dc := core.NewDatacenter(2_000_000, geo.Point{X: center.X + 1200, Y: center.Y}, cfg.DCEgress)
	sns := make([]*core.Supernode, nSN)
	tg := Targets{Supernodes: make([]Node, nSN)}
	for i := range sns {
		pos := geo.Point{X: center.X + float64(i*15), Y: center.Y + 10}
		sns[i] = core.NewSupernode(1_000_000+int64(i), pos, 8, 8*cfg.UplinkPerSlot)
		tg.Supernodes[i] = Node{ID: sns[i].ID, X: pos.X, Y: pos.Y}
	}
	f, err := core.BuildFog(cfg, []*core.Datacenter{dc}, sns, sim.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	g := mustGame(t)
	players := make([]*core.Player, nPlayers)
	for i := range players {
		pos := geo.Point{X: center.X + float64(i%40), Y: center.Y + float64(i%25)}
		players[i] = &core.Player{ID: int64(i + 1), Pos: pos, Game: g, Downlink: 20_000_000}
		f.Join(players[i])
	}
	return f, players, tg
}

func mustGame(t *testing.T) game.Game {
	t.Helper()
	g, err := game.ByID(5)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// newAssignStats is a standalone (registry-free) assignment bundle.
func newAssignStats() *obs.AssignStats {
	return &obs.AssignStats{
		JoinsFog:           new(obs.Counter),
		JoinsCloud:         new(obs.Counter),
		FailoverBackupHits: new(obs.Counter),
		FailoverReassigns:  new(obs.Counter),
		Reassigned:         new(obs.Counter),
	}
}

// TestInjectorOrphanBalance runs a crash-heavy schedule against a real fog
// and checks the orphan ledger: every player orphaned by a kill is either
// repaired through the assignment protocol (backup hit or rerun), lapsed, or
// still pending when the horizon hit.
func TestInjectorOrphanBalance(t *testing.T) {
	assign := newAssignStats()
	f, players, tg := buildFaultFog(t, 20, 100, assign)
	p := &Profile{
		Name:     "balance",
		Seed:     7,
		Duration: Dur(time.Hour),
		Specs: []Spec{
			{Kind: KindCrash, MTTF: Dur(10 * time.Minute), MTTR: Dur(3 * time.Minute), Detect: Dur(30 * time.Second)},
		},
	}
	sched, err := Compile(p, tg)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.New()
	stats := obs.NewFaultStats()
	specs := make(map[int64]snSpec, len(tg.Supernodes))
	for _, sn := range f.Supernodes() {
		specs[sn.ID] = snSpec{pos: sn.Pos, capacity: sn.Capacity, uplink: sn.Uplink}
	}
	inj := NewInjector(sched, engine, f, SimHooks{
		Respawn: func(id int64) *core.Supernode {
			s := specs[id]
			return core.NewSupernode(id, s.pos, s.capacity, s.uplink)
		},
	}, sim.NewRand(42), stats)
	inj.Start()
	engine.RunUntil(time.Hour)
	inj.Finish()

	if inj.Killed() == 0 {
		t.Fatal("schedule killed nothing")
	}
	if stats.Kills.Load() != inj.Killed() {
		t.Fatalf("stats kills %d != tally %d", stats.Kills.Load(), inj.Killed())
	}
	repaired := assign.FailoverBackupHits.Load() + assign.FailoverReassigns.Load()
	ledger := repaired + inj.Lapsed() + inj.PendingEnd()
	if inj.Orphaned() != ledger {
		t.Fatalf("orphan ledger: orphaned=%d but backup+rerun=%d lapsed=%d pending=%d",
			inj.Orphaned(), repaired, inj.Lapsed(), inj.PendingEnd())
	}
	if assign.FailoverBackupHits.Load() == 0 {
		t.Fatal("no orphan survived via a recorded backup")
	}
	// Every online player is served except orphans whose repair is still
	// pending at the horizon (the cloud has not detected their loss yet).
	unserved := int64(0)
	for _, p := range players {
		if p.Online && !p.Attached.Served() {
			unserved++
		}
	}
	if unserved > inj.PendingEnd() {
		t.Fatalf("%d online players unserved but only %d repairs pending", unserved, inj.PendingEnd())
	}
}

type snSpec struct {
	pos      geo.Point
	capacity int
	uplink   int64
}

// TestInjectorDeterministic pins that two injector runs with the same seeds
// produce identical tallies and identical fog states.
func TestInjectorDeterministic(t *testing.T) {
	run := func() (int64, int64, int64, int) {
		f, _, tg := buildFaultFog(t, 12, 120, nil)
		p := &Profile{Seed: 3, Duration: Dur(30 * time.Minute), Specs: []Spec{
			{Kind: KindCrash, Period: Dur(2 * time.Minute), MTTR: Dur(5 * time.Minute), Detect: Dur(20 * time.Second)},
		}}
		sched, err := Compile(p, tg)
		if err != nil {
			t.Fatal(err)
		}
		engine := sim.New()
		specs := make(map[int64]snSpec)
		for _, sn := range f.Supernodes() {
			specs[sn.ID] = snSpec{pos: sn.Pos, capacity: sn.Capacity, uplink: sn.Uplink}
		}
		inj := NewInjector(sched, engine, f, SimHooks{Respawn: func(id int64) *core.Supernode {
			s := specs[id]
			return core.NewSupernode(id, s.pos, s.capacity, s.uplink)
		}}, sim.NewRand(11), nil)
		inj.Start()
		engine.RunUntil(30 * time.Minute)
		inj.Finish()
		return inj.Killed(), inj.Orphaned(), inj.Recovered(), len(f.Supernodes())
	}
	k1, o1, r1, n1 := run()
	k2, o2, r2, n2 := run()
	if k1 != k2 || o1 != o2 || r1 != r2 || n1 != n2 {
		t.Fatalf("injector not deterministic: (%d %d %d %d) vs (%d %d %d %d)",
			k1, o1, r1, n1, k2, o2, r2, n2)
	}
}

// TestRunWallRepliesSchedule drives the wall-clock interpreter with a tiny
// compressed profile and checks the hooks see the same kill/recover sequence
// the schedule encodes.
func TestRunWallReplaysSchedule(t *testing.T) {
	p := &Profile{
		Seed:     5,
		Duration: Dur(300 * time.Millisecond),
		Specs: []Spec{
			{Kind: KindCrash, Period: Dur(60 * time.Millisecond), MTTR: Dur(40 * time.Millisecond)},
		},
	}
	tg := testTargets(4)
	sched, err := Compile(p, tg)
	if err != nil {
		t.Fatal(err)
	}
	var kills, recovers []int64
	stats := obs.NewFaultStats()
	err = RunWall(context.Background(), sched, WallHooks{
		Kill:    func(id int64) { kills = append(kills, id) },
		Recover: func(id int64) { recovers = append(recovers, id) },
	}, stats)
	if err != nil {
		t.Fatal(err)
	}
	var wantKills []int64
	for _, ev := range sched.Events {
		if ev.Op == OpKill && ev.At < p.Duration.Duration {
			wantKills = append(wantKills, ev.Node)
		}
	}
	if !reflect.DeepEqual(kills, wantKills) {
		t.Fatalf("wall kills %v != schedule kills %v", kills, wantKills)
	}
	if len(recovers) == 0 {
		t.Fatal("no recoveries replayed")
	}
	if stats.Kills.Load() != int64(len(kills)) {
		t.Fatalf("stats kills %d != %d", stats.Kills.Load(), len(kills))
	}
}

func TestRunWallCancel(t *testing.T) {
	p := &Profile{Seed: 5, Duration: Dur(time.Hour), Specs: []Spec{
		{Kind: KindCrash, Period: Dur(time.Minute), MTTR: Dur(time.Minute)},
	}}
	sched, err := Compile(p, testTargets(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := RunWall(ctx, sched, WallHooks{Kill: func(int64) {}}, nil); err == nil {
		t.Fatal("canceled RunWall returned nil")
	}
}
