package fault

import (
	"fmt"
	"sort"
	"time"

	"cloudfog/internal/sim"
)

// Op is one scheduled fault action.
type Op uint8

const (
	// OpKill removes supernode Node abruptly; D carries the spec's Detect
	// interval for the orphan-repair delay draws.
	OpKill Op = iota + 1
	// OpRecover re-registers supernode Node (a fresh instance).
	OpRecover
	// OpLinkBad / OpLinkGood bracket a Gilbert–Elliott bad window; F is
	// the bad-state loss fraction.
	OpLinkBad
	OpLinkGood
	// OpLatencyOn / OpLatencyOff bracket a latency spike; D is the extra
	// one-way latency.
	OpLatencyOn
	OpLatencyOff
	// OpBandwidth scales supernode Node's uplink by F (F = 1 restores).
	OpBandwidth
	// OpCloudScale scales every datacenter's egress by F (F = 1 restores).
	OpCloudScale
	// OpJoin injects one flash-crowd player join.
	OpJoin
	// OpCoordDown / OpCoordUp bracket a coordinator partition: the control
	// plane goes silent while the data plane keeps serving. Live runs stop
	// (SIGSTOP) and resume (SIGCONT) the coordinator process; the sim
	// injector has no coordinator and skips both.
	OpCoordDown
	OpCoordUp
	// OpDistressOn / OpDistressOff bracket a worker-distress window: the
	// targeted worker reports itself at Shedding (or requests a drain),
	// exercising the proactive-migration path without killing anything.
	OpDistressOn
	OpDistressOff
)

// String names the op for logs.
func (o Op) String() string {
	switch o {
	case OpKill:
		return "kill"
	case OpRecover:
		return "recover"
	case OpLinkBad:
		return "link_bad"
	case OpLinkGood:
		return "link_good"
	case OpLatencyOn:
		return "latency_on"
	case OpLatencyOff:
		return "latency_off"
	case OpBandwidth:
		return "bandwidth"
	case OpCloudScale:
		return "cloud_scale"
	case OpJoin:
		return "join"
	case OpCoordDown:
		return "coord_down"
	case OpCoordUp:
		return "coord_up"
	case OpDistressOn:
		return "distress_on"
	case OpDistressOff:
		return "distress_off"
	default:
		return "unknown"
	}
}

// Event is one compiled fault action. The compiled event list is the
// injected-event log the determinism property pins: same profile + targets
// ⇒ the bit-identical slice.
type Event struct {
	At   time.Duration
	Op   Op
	Node int64         // target supernode id; 0 = global
	D    time.Duration // op-specific duration payload (Detect, Extra)
	F    float64       // op-specific factor (loss frac, bandwidth/cloud scale)
}

// Node is one fault target: a supernode's identity and position (positions
// drive partition membership).
type Node struct {
	ID   int64
	X, Y float64
}

// Targets enumerates what the profile can act on.
type Targets struct {
	Supernodes []Node
}

// window is one active impairment interval, pre-resolved at compile time so
// runtime lookups never draw randomness.
type window struct {
	from, to time.Duration
	f        float64       // loss fraction / bandwidth scale
	d        time.Duration // extra latency
}

// Schedule is a compiled profile: the sorted event list for the injectors
// plus per-kind impairment windows answering pure time queries. Schedule
// implements the qoe package's Impairment interface.
type Schedule struct {
	Profile *Profile
	Events  []Event

	lossW []window // sorted, non-overlapping
	latW  []window
	bwW   []window
}

// Compile materializes a profile against the targets. All randomness is
// drawn here: the root stream is keyed by the profile seed and forked once
// per spec in order, so specs are independent and the output is a pure
// function of (profile, targets).
func Compile(p *Profile, t Targets) (*Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{Profile: p}
	root := sim.NewRand(p.Seed)
	horizon := p.Duration.Duration
	for i := range p.Specs {
		spec := &p.Specs[i]
		rng := root.Fork()
		start := spec.Start.Duration
		end := spec.End.Duration
		if end <= 0 || end > horizon {
			end = horizon
		}
		switch spec.Kind {
		case KindCrash:
			s.compileCrash(spec, t, rng, start, end)
		case KindLoss:
			w := alternating(rng, start, end, spec.MeanGood.Duration, spec.MeanBad.Duration)
			for _, b := range w {
				s.Events = append(s.Events,
					Event{At: b.from, Op: OpLinkBad, F: spec.LossFrac},
					Event{At: b.to, Op: OpLinkGood})
				s.lossW = append(s.lossW, window{from: b.from, to: b.to, f: spec.LossFrac})
			}
		case KindLatency:
			w := alternating(rng, start, end, spec.MeanGood.Duration, spec.MeanBad.Duration)
			for _, b := range w {
				s.Events = append(s.Events,
					Event{At: b.from, Op: OpLatencyOn, D: spec.Extra.Duration},
					Event{At: b.to, Op: OpLatencyOff})
				s.latW = append(s.latW, window{from: b.from, to: b.to, d: spec.Extra.Duration})
			}
		case KindBandwidth:
			for _, n := range pickTargets(t.Supernodes, spec.TargetFrac, rng) {
				s.Events = append(s.Events,
					Event{At: start, Op: OpBandwidth, Node: n.ID, F: spec.Factor},
					Event{At: end, Op: OpBandwidth, Node: n.ID, F: 1})
			}
			s.bwW = append(s.bwW, window{from: start, to: end, f: spec.Factor})
		case KindPartition:
			for _, n := range t.Supernodes {
				if spec.Region.Contains(n.X, n.Y) {
					s.Events = append(s.Events,
						Event{At: start, Op: OpKill, Node: n.ID, D: spec.Detect.Duration},
						Event{At: end, Op: OpRecover, Node: n.ID})
				}
			}
		case KindStorm:
			for at := start + rng.Exp(spec.Rate); at < end; at += rng.Exp(spec.Rate) {
				s.Events = append(s.Events, Event{At: at, Op: OpJoin})
			}
		case KindCloud:
			s.Events = append(s.Events,
				Event{At: start, Op: OpCloudScale, F: spec.Factor},
				Event{At: end, Op: OpCloudScale, F: 1})
		case KindCoordPartition:
			s.Events = append(s.Events,
				Event{At: start, Op: OpCoordDown},
				Event{At: end, Op: OpCoordUp})
		case KindDistress:
			for _, n := range pickTargets(t.Supernodes, spec.TargetFrac, rng) {
				s.Events = append(s.Events,
					Event{At: start, Op: OpDistressOn, Node: n.ID},
					Event{At: end, Op: OpDistressOff, Node: n.ID})
			}
		}
	}
	// Stable sort: ties keep spec order, so the schedule is deterministic.
	sort.SliceStable(s.Events, func(a, b int) bool { return s.Events[a].At < s.Events[b].At })
	for _, w := range [][]window{s.lossW, s.latW, s.bwW} {
		if err := checkWindows(w); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// compileCrash emits kill/recover pairs. Exponential mode renews each
// targeted supernode independently (up ~ Exp(mean MTTF), down ~ Exp(mean
// MTTR)); period mode kills one uniformly-drawn target per period with a
// fixed MTTR downtime. Recoveries past the horizon are still emitted — the
// injector simply never reaches them.
func (s *Schedule) compileCrash(spec *Spec, t Targets, rng *sim.Rand, start, end time.Duration) {
	targets := pickTargets(t.Supernodes, spec.TargetFrac, rng)
	if len(targets) == 0 {
		return
	}
	mttr := spec.MTTR.Duration
	if mttr <= 0 {
		mttr = 5 * time.Minute
	}
	if spec.Period.Duration > 0 {
		for at := start + spec.Period.Duration; at < end; at += spec.Period.Duration {
			n := targets[rng.Intn(len(targets))]
			s.Events = append(s.Events,
				Event{At: at, Op: OpKill, Node: n.ID, D: spec.Detect.Duration},
				Event{At: at + mttr, Op: OpRecover, Node: n.ID})
		}
		return
	}
	upRate := 1 / spec.MTTF.Duration.Seconds()
	downRate := 1 / mttr.Seconds()
	for _, n := range targets {
		at := start + rng.Exp(upRate)
		for at < end {
			down := rng.Exp(downRate)
			s.Events = append(s.Events,
				Event{At: at, Op: OpKill, Node: n.ID, D: spec.Detect.Duration},
				Event{At: at + down, Op: OpRecover, Node: n.ID})
			at += down + rng.Exp(upRate)
		}
	}
}

// pickTargets selects frac of the nodes via a seeded shuffle (frac <= 0
// means all). The draw consumes the spec stream even when it selects
// everything, keeping downstream draws stable as frac changes.
func pickTargets(nodes []Node, frac float64, rng *sim.Rand) []Node {
	if len(nodes) == 0 {
		return nil
	}
	perm := rng.Perm(len(nodes))
	k := len(nodes)
	if frac > 0 && frac < 1 {
		k = int(frac*float64(len(nodes)) + 0.5)
		if k < 1 {
			k = 1
		}
	}
	out := make([]Node, k)
	for i := 0; i < k; i++ {
		out[i] = nodes[perm[i]]
	}
	// Deterministic apply order independent of the shuffle.
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// alternating draws the bad windows of a good/bad alternating renewal
// process on [start, end): exponential good sojourns, exponential bad
// sojourns, starting in the good state.
func alternating(rng *sim.Rand, start, end time.Duration, meanGood, meanBad time.Duration) []window {
	goodRate := 1 / meanGood.Seconds()
	badRate := 1 / meanBad.Seconds()
	var out []window
	at := start
	for {
		at += rng.Exp(goodRate)
		if at >= end {
			return out
		}
		bad := rng.Exp(badRate)
		to := at + bad
		if to > end {
			to = end
		}
		out = append(out, window{from: at, to: to})
		at = to
	}
}

// checkWindows rejects overlapping same-kind windows: two loss (or latency,
// or bandwidth) specs whose bad windows intersect would make the impairment
// ambiguous. One spec per kind never overlaps itself.
func checkWindows(w []window) error {
	sorted := make([]window, len(w))
	copy(sorted, w)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].from < sorted[b].from })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].from < sorted[i-1].to {
			return fmt.Errorf("fault: overlapping impairment windows at %v — use one spec per kind or disjoint Start/End", sorted[i].from)
		}
	}
	copy(w, sorted)
	return nil
}

// lookup binary-searches the sorted window list for one covering now.
func lookup(ws []window, now time.Duration) (window, bool) {
	i := sort.Search(len(ws), func(i int) bool { return ws[i].to > now })
	if i < len(ws) && ws[i].from <= now {
		return ws[i], true
	}
	return window{}, false
}

// ExtraLatency returns the extra one-way latency active at now. Pure in now:
// safe for parallel sweeps, zero runtime randomness.
func (s *Schedule) ExtraLatency(now time.Duration) time.Duration {
	if w, ok := lookup(s.latW, now); ok {
		return w.d
	}
	return 0
}

// LossFrac returns the wire loss fraction active at now.
func (s *Schedule) LossFrac(now time.Duration) float64 {
	if w, ok := lookup(s.lossW, now); ok {
		return w.f
	}
	return 0
}

// BandwidthScale returns the uplink capacity multiplier active at now
// (1 when unimpaired).
func (s *Schedule) BandwidthScale(now time.Duration) float64 {
	if w, ok := lookup(s.bwW, now); ok {
		return w.f
	}
	return 1
}
