// Package fault is the deterministic fault-injection subsystem: it compiles
// declarative *fault profiles* — supernode crash/recover processes, Gilbert–
// Elliott loss bursts, latency spikes, bandwidth collapse, regional
// partitions, flash-crowd join storms, cloud degradation — into a fully
// materialized event schedule. The same Schedule drives two interpreters:
//
//   - Injector replays it on the internal/sim engine against a real
//     core.Fog, exercising the paper's Register/Deregister/failover paths
//     (§III-A3: backups exist precisely because supernodes churn).
//   - RunWall replays it in wall-clock time against the internal/live
//     runtime (kill/restart supernode processes, impair live links), so
//     simulated and testbed chaos share one schedule format.
//
// Determinism contract: every random draw happens at Compile time from a
// single seed-keyed stream (one Fork per spec, in spec order), so the same
// (profile, targets) pair always yields the bit-identical event list — the
// schedule IS the injected-event log. Runtime impairment lookups
// (ExtraLatency/LossFrac/BandwidthScale) are pure functions of the query
// time, safe for parallel figure sweeps. The only runtime randomness is the
// Injector's per-orphan detection delay, drawn from an engine-ordered stream
// the caller seeds.
package fault

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Duration wraps time.Duration so profiles read and write Go duration
// strings ("45s", "5m") in JSON; a bare number is taken as nanoseconds.
type Duration struct{ time.Duration }

// Dur wraps a time.Duration.
func Dur(d time.Duration) Duration { return Duration{d} }

// MarshalJSON emits the duration string form.
func (d Duration) MarshalJSON() ([]byte, error) { return json.Marshal(d.String()) }

// UnmarshalJSON accepts "45s" strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		parsed, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("fault: bad duration %q: %w", x, err)
		}
		d.Duration = parsed
	case float64:
		d.Duration = time.Duration(x)
	default:
		return fmt.Errorf("fault: duration must be a string or number, got %T", v)
	}
	return nil
}

// Kind discriminates fault specs.
type Kind string

const (
	// KindCrash kills supernodes and later recovers them. Two modes:
	// exponential MTTF/MTTR lifetimes per targeted supernode, or a
	// deterministic Period cadence picking one random target per period
	// with a fixed MTTR downtime.
	KindCrash Kind = "crash"
	// KindLoss is a Gilbert–Elliott packet-loss process: exponential
	// good/bad sojourns (MeanGood/MeanBad) with LossFrac loss during bad
	// windows, applied to every segment on the wire.
	KindLoss Kind = "loss"
	// KindLatency adds Extra one-way latency during bad windows of the
	// same alternating good/bad process.
	KindLatency Kind = "latency"
	// KindBandwidth scales targeted supernodes' uplinks (and the global
	// qoe bandwidth window) by Factor over [Start, End).
	KindBandwidth Kind = "bandwidth"
	// KindPartition kills every supernode inside Region at Start and
	// recovers them at End — a regional outage.
	KindPartition Kind = "partition"
	// KindStorm injects a Poisson flash crowd: extra player joins at Rate
	// per second over [Start, End).
	KindStorm Kind = "storm"
	// KindCloud scales every datacenter's egress by Factor over
	// [Start, End) — cloud-side degradation.
	KindCloud Kind = "cloud"
	// KindCoordPartition makes the coordinator unreachable over [Start,
	// End): workers must enter safe mode on control-plane silence and the
	// coordinator must reconcile — not mass-bury — on recovery. Live runs
	// SIGSTOP/SIGCONT the coordinator process; the sim injector skips it.
	KindCoordPartition Kind = "coord_partition"
	// KindDistress puts targeted workers into self-reported overload
	// distress over [Start, End), driving the coordinator's proactive
	// drain without killing anything.
	KindDistress Kind = "distress"
)

// Rect is an axis-aligned region in world kilometers, for partitions.
type Rect struct {
	X0 float64 `json:"x0"`
	Y0 float64 `json:"y0"`
	X1 float64 `json:"x1"`
	Y1 float64 `json:"y1"`
}

// Contains reports whether (x, y) lies inside the rectangle.
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X0 && x <= r.X1 && y >= r.Y0 && y <= r.Y1
}

// Spec is one fault process. Fields are shared across kinds; Validate
// rejects combinations the kind does not use incorrectly set.
type Spec struct {
	Kind Kind `json:"kind"`

	// Start/End bound the spec's active window. Zero End means the
	// profile's full duration.
	Start Duration `json:"start,omitempty"`
	End   Duration `json:"end,omitempty"`

	// Crash: exponential mode draws up-times with mean MTTF and down-times
	// with mean MTTR per targeted supernode; period mode (Period > 0)
	// kills one random target every Period with a fixed MTTR downtime.
	// Detect is the failure-detection heartbeat interval: each orphan's
	// repair is delayed by a uniform draw in (0, Detect] (zero = the
	// graceful-leave case, orphans fail over synchronously).
	MTTF   Duration `json:"mttf,omitempty"`
	MTTR   Duration `json:"mttr,omitempty"`
	Period Duration `json:"period,omitempty"`
	Detect Duration `json:"detect,omitempty"`
	// TargetFrac is the fraction of supernodes subject to this spec,
	// chosen deterministically from the spec's stream. Zero means all.
	TargetFrac float64 `json:"target_frac,omitempty"`

	// Loss / latency: exponential sojourn means of the alternating
	// good/bad process, the bad-state loss fraction, and the bad-state
	// extra one-way latency.
	MeanGood Duration `json:"mean_good,omitempty"`
	MeanBad  Duration `json:"mean_bad,omitempty"`
	LossFrac float64  `json:"loss_frac,omitempty"`
	Extra    Duration `json:"extra,omitempty"`

	// Bandwidth / cloud: the capacity multiplier during the window.
	Factor float64 `json:"factor,omitempty"`

	// Partition: the outage region.
	Region *Rect `json:"region,omitempty"`

	// Storm: Poisson join rate (players/second).
	Rate float64 `json:"rate,omitempty"`
}

// Profile is a complete fault scenario: a seed, a horizon, and the fault
// processes to compile onto it.
type Profile struct {
	Name     string   `json:"name"`
	Seed     int64    `json:"seed"`
	Duration Duration `json:"duration"`
	Specs    []Spec   `json:"specs"`
}

// Validate reports profile errors.
func (p *Profile) Validate() error {
	if p.Duration.Duration <= 0 {
		return fmt.Errorf("fault: profile duration %v is not positive", p.Duration.Duration)
	}
	for i := range p.Specs {
		if err := p.Specs[i].validate(p.Duration.Duration); err != nil {
			return fmt.Errorf("fault: spec %d: %w", i, err)
		}
	}
	return nil
}

func (s *Spec) validate(horizon time.Duration) error {
	if s.Start.Duration < 0 || s.End.Duration < 0 {
		return fmt.Errorf("negative start/end")
	}
	if s.End.Duration > 0 && s.End.Duration <= s.Start.Duration {
		return fmt.Errorf("end %v not after start %v", s.End.Duration, s.Start.Duration)
	}
	if s.TargetFrac < 0 || s.TargetFrac > 1 {
		return fmt.Errorf("target_frac %v outside [0,1]", s.TargetFrac)
	}
	switch s.Kind {
	case KindCrash:
		if s.MTTF.Duration <= 0 && s.Period.Duration <= 0 {
			return fmt.Errorf("crash needs mttf or period")
		}
		if s.MTTF.Duration > 0 && s.Period.Duration > 0 {
			return fmt.Errorf("crash takes mttf or period, not both")
		}
		if s.MTTR.Duration < 0 || s.Detect.Duration < 0 {
			return fmt.Errorf("negative mttr/detect")
		}
	case KindLoss:
		if s.MeanGood.Duration <= 0 || s.MeanBad.Duration <= 0 {
			return fmt.Errorf("loss needs positive mean_good and mean_bad")
		}
		if s.LossFrac <= 0 || s.LossFrac > 1 {
			return fmt.Errorf("loss_frac %v outside (0,1]", s.LossFrac)
		}
	case KindLatency:
		if s.MeanGood.Duration <= 0 || s.MeanBad.Duration <= 0 {
			return fmt.Errorf("latency needs positive mean_good and mean_bad")
		}
		if s.Extra.Duration <= 0 {
			return fmt.Errorf("latency needs positive extra")
		}
	case KindBandwidth, KindCloud:
		if s.Factor <= 0 || s.Factor > 1 {
			return fmt.Errorf("factor %v outside (0,1]", s.Factor)
		}
	case KindPartition:
		if s.Region == nil || s.Region.X1 <= s.Region.X0 || s.Region.Y1 <= s.Region.Y0 {
			return fmt.Errorf("partition needs a non-degenerate region")
		}
	case KindStorm:
		if s.Rate <= 0 {
			return fmt.Errorf("storm needs a positive rate")
		}
	case KindCoordPartition, KindDistress:
		// Window-only kinds: Start/End (already range-checked above) are the
		// whole spec.
	default:
		return fmt.Errorf("unknown kind %q", s.Kind)
	}
	_ = horizon
	return nil
}

// Parse decodes a profile from JSON and validates it.
func Parse(data []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fault: parse profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads and parses a profile file.
func Load(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	p, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	return p, nil
}
