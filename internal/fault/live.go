package fault

import (
	"context"
	"time"

	"cloudfog/internal/obs"
)

// WallHooks are the testbed-side callbacks RunWall drives. All are optional;
// a nil hook skips its op. Hooks run on RunWall's goroutine in schedule
// order and must not block for long, or later events slip.
type WallHooks struct {
	// Kill terminates the live supernode process with the given fog ID.
	Kill func(id int64)
	// Recover starts a fresh supernode process under the same ID.
	Recover func(id int64)
	// Link applies the current global link impairment (extra one-way
	// latency plus loss fraction) to every active stream. Called on every
	// impairment window edge with the post-edge values; (0, 0) restores.
	Link func(extra time.Duration, lossFrac float64)
	// Join starts one flash-crowd player.
	Join func()
	// CoordPartition pauses (on) or resumes (off) the coordinator process —
	// SIGSTOP/SIGCONT in the multi-process harness.
	CoordPartition func(on bool)
	// Distress puts worker id into (or out of) self-reported overload
	// distress, driving the coordinator's proactive drain.
	Distress func(id int64, on bool)
}

// RunWall replays a compiled schedule in wall-clock time against the live
// runtime, so a testbed chaos run follows the exact event log a simulation
// of the same profile follows. It returns when the profile horizon elapses
// or ctx is canceled. Bandwidth and cloud-scale ops have no live
// counterpart and map onto the Link hook's loss path only through the
// schedule's own window lookups.
func RunWall(ctx context.Context, sched *Schedule, hooks WallHooks, stats *obs.FaultStats) error {
	start := time.Now()
	downSince := make(map[int64]time.Time)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

	apply := func(ev Event) {
		switch ev.Op {
		case OpKill:
			if hooks.Kill == nil {
				return
			}
			hooks.Kill(ev.Node)
			if _, down := downSince[ev.Node]; !down {
				downSince[ev.Node] = time.Now()
			}
			if stats != nil {
				stats.Kills.Inc()
				if stats.Sink != nil {
					stats.Sink(obs.Event{Kind: obs.EventFaultKill, At: ev.At, Node: ev.Node})
				}
			}
		case OpRecover:
			downAt, ok := downSince[ev.Node]
			if !ok || hooks.Recover == nil {
				return
			}
			delete(downSince, ev.Node)
			hooks.Recover(ev.Node)
			if stats != nil {
				stats.Recoveries.Inc()
				stats.MTTRNs.Observe(int64(time.Since(downAt)))
				if stats.Sink != nil {
					stats.Sink(obs.Event{Kind: obs.EventFaultRecover, At: ev.At, Node: ev.Node})
				}
			}
		case OpLinkBad, OpLinkGood, OpLatencyOn, OpLatencyOff:
			if hooks.Link == nil {
				return
			}
			// Query the schedule at the event time itself: window starts
			// are inclusive and ends exclusive, so the post-edge state
			// falls out of the same pure lookups the simulator uses.
			extra := sched.ExtraLatency(ev.At)
			loss := sched.LossFrac(ev.At)
			hooks.Link(extra, loss)
			if stats != nil {
				entering := int64(0)
				if ev.Op == OpLinkBad || ev.Op == OpLatencyOn {
					entering = 1
					stats.LinkWindows.Inc()
				}
				if stats.Sink != nil {
					stats.Sink(obs.Event{Kind: obs.EventFaultLink, At: ev.At, A: entering})
				}
			}
		case OpJoin:
			if hooks.Join == nil {
				return
			}
			hooks.Join()
			if stats != nil {
				stats.StormJoins.Inc()
			}
		case OpCoordDown, OpCoordUp:
			if hooks.CoordPartition == nil {
				return
			}
			hooks.CoordPartition(ev.Op == OpCoordDown)
		case OpDistressOn, OpDistressOff:
			if hooks.Distress == nil {
				return
			}
			hooks.Distress(ev.Node, ev.Op == OpDistressOn)
		}
	}

	for _, ev := range sched.Events {
		if ev.At >= sched.Profile.Duration.Duration {
			// The sim injector never reaches past-horizon events either
			// (RunUntil stops at the horizon); keep the interpreters aligned.
			break
		}
		wait := time.Until(start.Add(ev.At))
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			return ctx.Err()
		}
		apply(ev)
	}
	// Let the horizon tail play out so recoveries near the end settle.
	rest := time.Until(start.Add(sched.Profile.Duration.Duration))
	if rest > 0 {
		timer.Reset(rest)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
	}
	return nil
}
