package fault

import (
	"time"

	"cloudfog/internal/core"
	"cloudfog/internal/health"
	"cloudfog/internal/obs"
	"cloudfog/internal/sim"
	"cloudfog/internal/trace"
)

// NetState overlays a compiled schedule's latency impairment on a base
// latency source: every one-way latency gains the extra latency active at
// the engine's current virtual time. Deterministic because the schedule
// lookup is pure and the clock is the single-threaded engine's.
type NetState struct {
	Base  trace.Source
	Sched *Schedule
	Now   func() time.Duration
}

// OneWay returns the impaired one-way latency from a to b.
func (n *NetState) OneWay(a, b trace.Endpoint) time.Duration {
	d := n.Base.OneWay(a, b)
	if n.Sched != nil && n.Now != nil {
		d += n.Sched.ExtraLatency(n.Now())
	}
	return d
}

// SimHooks are the experiment-supplied callbacks the injector drives.
// Respawn is required for recoveries; the rest are optional.
type SimHooks struct {
	// Respawn builds a fresh supernode instance for a recovery. The fault
	// subsystem never resurrects the old pointer: the paper's failover
	// logic treats a re-registered contributor as a new machine.
	Respawn func(id int64) *core.Supernode
	// Join injects one flash-crowd player join.
	Join func()
	// Bandwidth applies an uplink scale to one supernode (1 restores).
	Bandwidth func(id int64, scale float64)
	// Cloud applies an egress scale to every datacenter (1 restores).
	Cloud func(scale float64)
}

// Injector replays a compiled schedule on a sim engine against a real Fog:
// kills run core.FailSupernode, each orphan's repair is delayed by a uniform
// draw in (0, Detect] from the caller-seeded stream (the subsystem's only
// runtime randomness, totally ordered by the single-threaded engine), and
// recoveries re-register fresh instances. Tallies are kept always-on and
// folded into the optional obs bundle once by Finish, so instrumentation
// never changes the run.
type Injector struct {
	sched  *Schedule
	engine *sim.Engine
	fog    *core.Fog
	hooks  SimHooks
	rng    *sim.Rand
	stats  *obs.FaultStats

	downSince map[int64]time.Duration
	killed    int64
	recovered int64
	orphaned  int64
	lapsed    int64
	repairs   int64 // scheduled orphan repairs not yet fired
	joins     int64
	windows   int64
	finished  bool

	// mon, when non-nil, replaces the oracle detection-delay draw: orphans
	// wait in pendingDetect until the heartbeat monitor actually notices
	// the node's silence. Oracle mode (mon == nil) is bit-identical to
	// PR 4.
	mon           *health.Monitor
	pendingDetect map[int64][]pendingRepair
	// Oracle-mode detection tallies, for the figdetect comparison: the
	// uniform draws are the oracle's "detection latency".
	oracleDelaySum time.Duration
	oracleDelays   int64
}

// pendingRepair is one orphan awaiting its node's failure detection.
type pendingRepair struct {
	p      *core.Player
	killAt time.Duration
}

// NewInjector binds a schedule to an engine and fog. rng seeds the
// detection-delay draws; stats may be nil.
func NewInjector(sched *Schedule, engine *sim.Engine, fog *core.Fog, hooks SimHooks, rng *sim.Rand, stats *obs.FaultStats) *Injector {
	return &Injector{
		sched:     sched,
		engine:    engine,
		fog:       fog,
		hooks:     hooks,
		rng:       rng,
		stats:     stats,
		downSince: make(map[int64]time.Duration),
	}
}

// SetMonitor replaces the oracle detection-delay draw with a heartbeat
// monitor: orphans of a killed supernode are repaired when the monitor
// detects the silence, not after a drawn delay. Call before Start.
func (in *Injector) SetMonitor(mon *health.Monitor) {
	in.mon = mon
	in.pendingDetect = make(map[int64][]pendingRepair)
	mon.OnDetect(in.onDetect)
}

// Start schedules every compiled event on the engine and, in monitor mode,
// starts heartbeat tracking for every currently-registered supernode. Call
// once, before running the engine.
func (in *Injector) Start() {
	if in.mon != nil {
		for _, sn := range in.fog.Supernodes() {
			in.mon.Track(sn.ID)
		}
		in.mon.Start()
	}
	for i := range in.sched.Events {
		ev := in.sched.Events[i]
		in.engine.ScheduleAt(ev.At, func() { in.apply(ev) })
	}
}

func (in *Injector) emit(kind obs.EventKind, node, a int64) {
	if in.stats == nil || in.stats.Sink == nil {
		return
	}
	in.stats.Sink(obs.Event{Kind: kind, At: in.engine.Now(), Node: node, A: a})
}

func (in *Injector) apply(ev Event) {
	switch ev.Op {
	case OpKill:
		in.kill(ev)
	case OpRecover:
		in.recover(ev.Node)
	case OpLinkBad, OpLatencyOn:
		in.windows++
		in.emit(obs.EventFaultLink, 0, 1)
	case OpLinkGood, OpLatencyOff:
		in.emit(obs.EventFaultLink, 0, 0)
	case OpBandwidth:
		if in.hooks.Bandwidth != nil {
			in.hooks.Bandwidth(ev.Node, ev.F)
		}
		if ev.F != 1 {
			in.windows++
			in.emit(obs.EventFaultLink, ev.Node, 1)
		} else {
			in.emit(obs.EventFaultLink, ev.Node, 0)
		}
	case OpCloudScale:
		if in.hooks.Cloud != nil {
			in.hooks.Cloud(ev.F)
		}
		if ev.F != 1 {
			in.windows++
			in.emit(obs.EventFaultLink, 0, 1)
		} else {
			in.emit(obs.EventFaultLink, 0, 0)
		}
	case OpJoin:
		if in.hooks.Join != nil {
			in.hooks.Join()
			in.joins++
		}
	}
}

// kill fails the supernode and schedules each orphan's repair after its
// detection delay. A kill targeting an already-down supernode is skipped;
// its paired recovery self-skips too because downSince is keyed by the kill
// that actually happened.
func (in *Injector) kill(ev Event) {
	if _, up := in.fog.Supernode(ev.Node); !up {
		return
	}
	killAt := in.engine.Now()
	orphans := in.fog.FailSupernode(ev.Node)
	in.killed++
	in.orphaned += int64(len(orphans))
	if _, down := in.downSince[ev.Node]; !down {
		in.downSince[ev.Node] = killAt
	}
	in.emit(obs.EventFaultKill, ev.Node, int64(len(orphans)))
	for _, p := range orphans {
		if ev.D <= 0 {
			// Graceful leave: the cloud knows immediately, repair is
			// synchronous (matches DeregisterSupernode semantics).
			in.repair(p, killAt)
			continue
		}
		if in.mon != nil {
			// Monitor mode: the orphan waits until the heartbeat monitor
			// actually notices the node's silence. If recovery or the
			// horizon preempts detection, the orphan counts as PendingEnd,
			// same as an unfired oracle repair.
			in.repairs++
			in.pendingDetect[ev.Node] = append(in.pendingDetect[ev.Node], pendingRepair{p, killAt})
			continue
		}
		delay := in.rng.UniformDuration(0, ev.D)
		in.oracleDelaySum += delay
		in.oracleDelays++
		in.repairs++
		p := p
		in.engine.Schedule(delay, func() {
			in.repairs--
			in.repair(p, killAt)
		})
	}
	if in.mon != nil {
		in.mon.Kill(ev.Node)
	}
}

// onDetect fires when the heartbeat monitor detects a node's failure: every
// orphan stashed for that node repairs now, in kill (hence player-ID) order.
func (in *Injector) onDetect(id int64, now time.Duration) {
	pend := in.pendingDetect[id]
	if len(pend) == 0 {
		return
	}
	delete(in.pendingDetect, id)
	for _, pr := range pend {
		in.repairs--
		in.repair(pr.p, pr.killAt)
	}
}

func (in *Injector) repair(p *core.Player, killAt time.Duration) {
	if !in.fog.Failover(p) {
		in.lapsed++
		return
	}
	if in.stats != nil {
		in.stats.InterruptionNs.Observe(int64(in.engine.Now() - killAt))
	}
}

func (in *Injector) recover(id int64) {
	downAt, ok := in.downSince[id]
	if !ok {
		return
	}
	delete(in.downSince, id)
	if in.hooks.Respawn == nil {
		return
	}
	sn := in.hooks.Respawn(id)
	if sn == nil {
		return
	}
	if err := in.fog.RegisterSupernode(sn); err != nil {
		return
	}
	if in.mon != nil {
		in.mon.Recover(id)
	}
	in.recovered++
	in.emit(obs.EventFaultRecover, id, 0)
	if in.stats != nil {
		in.stats.MTTRNs.Observe(int64(in.engine.Now() - downAt))
	}
}

// Finish closes the orphan ledger after the engine stops: repairs still
// scheduled count as pending, and the always-on tallies fold into the obs
// bundle exactly once. The ledger identity the reconciliation checks is
//
//	Orphaned == FailoverBackupHits + FailoverReassigns + Lapsed + PendingEnd.
func (in *Injector) Finish() {
	if in.finished {
		return
	}
	in.finished = true
	if in.mon != nil {
		if hs := in.mon.Stats(); hs != nil {
			hs.KillsObserved.Add(in.killed)
			hs.DetectPending.Add(in.DetectPending())
		}
	}
	if in.stats == nil {
		return
	}
	in.stats.Kills.Add(in.killed)
	in.stats.Recoveries.Add(in.recovered)
	in.stats.Orphaned.Add(in.orphaned)
	in.stats.Lapsed.Add(in.lapsed)
	in.stats.PendingEnd.Add(in.repairs)
	in.stats.LinkWindows.Add(in.windows)
	in.stats.StormJoins.Add(in.joins)
}

// Killed returns how many kills were applied so far.
func (in *Injector) Killed() int64 { return in.killed }

// Recovered returns how many recoveries re-registered a supernode.
func (in *Injector) Recovered() int64 { return in.recovered }

// Orphaned returns how many players were orphaned by kills.
func (in *Injector) Orphaned() int64 { return in.orphaned }

// Lapsed returns how many orphans were unrepairable when their repair fired.
func (in *Injector) Lapsed() int64 { return in.lapsed }

// PendingEnd returns how many orphan repairs are still scheduled.
func (in *Injector) PendingEnd() int64 { return in.repairs }

// Detected returns how many kills the failure detector noticed: heartbeat
// detections in monitor mode, or every kill in oracle mode (the oracle knows
// by construction).
func (in *Injector) Detected() int64 {
	if in.mon != nil {
		return in.mon.Detected()
	}
	return in.killed
}

// DetectPending returns how many kills were still undetected at the horizon
// (a node recovered before its silence crossed the threshold, or the run
// ended first). Always zero in oracle mode. The detection ledger identity is
//
//	Detected + DetectPending == Killed.
func (in *Injector) DetectPending() int64 {
	if in.mon == nil {
		return 0
	}
	return in.killed - in.mon.Detected()
}

// FalsePositives returns how many live supernodes the detector wrongly
// suspected (zero in oracle mode).
func (in *Injector) FalsePositives() int64 {
	if in.mon == nil {
		return 0
	}
	return in.mon.FalsePositives()
}

// MeanDetectionLatency returns the mean failure-detection latency: the
// monitor's measured kill-to-detection time, or the mean of the oracle's
// drawn delays. Zero when nothing was detected.
func (in *Injector) MeanDetectionLatency() time.Duration {
	if in.mon != nil {
		return in.mon.MeanDetectionLatency()
	}
	if in.oracleDelays == 0 {
		return 0
	}
	return in.oracleDelaySum / time.Duration(in.oracleDelays)
}

// Downtime reports how long the supernode has been down at now, and whether
// it is down at all.
func (in *Injector) Downtime(id int64, now time.Duration) (time.Duration, bool) {
	at, ok := in.downSince[id]
	if !ok {
		return 0, false
	}
	return now - at, true
}
