package sim

import (
	"testing"
	"time"

	"cloudfog/internal/obs"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	e.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestEngineBreaksTiesByScheduleOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("tie-break violated at position %d: %v", i, order)
		}
	}
}

func TestEngineClockAdvancesDuringEvent(t *testing.T) {
	e := New()
	var sawNow time.Duration
	e.Schedule(42*time.Millisecond, func() { sawNow = e.Now() })
	e.Run()
	if sawNow != 42*time.Millisecond {
		t.Fatalf("Now() inside event = %v, want 42ms", sawNow)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	var fired []time.Duration
	e.Schedule(10*time.Millisecond, func() {
		e.Schedule(5*time.Millisecond, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 1 || fired[0] != 15*time.Millisecond {
		t.Fatalf("nested event fired at %v, want [15ms]", fired)
	}
}

func TestEventCancel(t *testing.T) {
	e := New()
	ran := false
	ev := e.Schedule(time.Millisecond, func() { ran = true })
	ev.Cancel()
	e.Run()
	if ran {
		t.Fatal("canceled event still ran")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := New()
	var ran []time.Duration
	for _, d := range []time.Duration{5, 10, 15, 20} {
		d := d * time.Millisecond
		e.Schedule(d, func() { ran = append(ran, d) })
	}
	e.RunUntil(12 * time.Millisecond)
	if len(ran) != 2 {
		t.Fatalf("ran %d events, want 2 (5ms, 10ms): %v", len(ran), ran)
	}
	if e.Now() != 12*time.Millisecond {
		t.Fatalf("clock = %v, want 12ms", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("remaining events did not run: %v", ran)
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	e := New()
	e.RunUntil(time.Second)
	if e.Now() != time.Second {
		t.Fatalf("clock = %v, want 1s", e.Now())
	}
}

func TestRunUntilSkipsCanceledRoot(t *testing.T) {
	e := New()
	ev := e.Schedule(5*time.Millisecond, func() { t.Fatal("canceled event ran") })
	ran := false
	e.Schedule(10*time.Millisecond, func() { ran = true })
	ev.Cancel()
	e.RunUntil(20 * time.Millisecond)
	if !ran {
		t.Fatal("live event after canceled root did not run")
	}
}

func TestStopInterruptsRun(t *testing.T) {
	e := New()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	e := New()
	var ticks []time.Duration
	tk := e.Every(10*time.Millisecond, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 3 {
			e.Stop()
		}
	})
	e.Run()
	tk.Stop()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestTickerStopPreventsFurtherTicks(t *testing.T) {
	e := New()
	count := 0
	var tk *Ticker
	tk = e.Every(time.Millisecond, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	e.Schedule(10*time.Millisecond, func() {})
	e.Run()
	if count != 2 {
		t.Fatalf("ticker fired %d times after Stop, want 2", count)
	}
}

func TestScheduleNegativeDelayClampsToNow(t *testing.T) {
	e := New()
	e.Schedule(10*time.Millisecond, func() {
		ev := e.Schedule(-5*time.Millisecond, func() {})
		if ev.At() != e.Now() {
			t.Fatalf("negative delay scheduled at %v, want %v", ev.At(), e.Now())
		}
	})
	e.Run()
}

func TestScheduleAtPastClampsToNow(t *testing.T) {
	e := New()
	e.Schedule(10*time.Millisecond, func() {
		ev := e.ScheduleAt(time.Millisecond, func() {})
		if ev.At() != 10*time.Millisecond {
			t.Fatalf("past event scheduled at %v, want now (10ms)", ev.At())
		}
	})
	e.Run()
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	New().Schedule(0, nil)
}

func TestExecutedCountsFiredEvents(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	canceled := e.Schedule(time.Millisecond, func() {})
	canceled.Cancel()
	e.Run()
	if e.Executed() != 5 {
		t.Fatalf("Executed = %d, want 5", e.Executed())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int {
		e := New()
		r := NewRand(7)
		var out []int
		var spawn func()
		spawn = func() {
			out = append(out, r.Intn(1000))
			if len(out) < 50 {
				e.Schedule(r.Exp(10), spawn)
			}
		}
		e.Schedule(0, spawn)
		e.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestEngineStatsCountLifecycle(t *testing.T) {
	e := New()
	stats := obs.NewEngineStats()
	e.SetStats(stats)
	ran := 0
	for i := 0; i < 5; i++ {
		e.Schedule(time.Duration(i+1)*time.Millisecond, func() { ran++ })
	}
	ev := e.Schedule(10*time.Millisecond, func() { ran++ })
	ev.Cancel()
	ev.Cancel() // double-cancel must not double-count
	e.Run()
	if ran != 5 {
		t.Fatalf("ran %d events, want 5", ran)
	}
	if got := stats.Scheduled.Load(); got != 6 {
		t.Fatalf("scheduled = %d, want 6", got)
	}
	if got := stats.Executed.Load(); got != 5 {
		t.Fatalf("executed = %d, want 5", got)
	}
	if got := stats.Canceled.Load(); got != 1 {
		t.Fatalf("canceled = %d, want 1", got)
	}
}
