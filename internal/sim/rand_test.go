package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestExpMeanMatchesRate(t *testing.T) {
	r := NewRand(1)
	const rate = 5.0 // 5 events/sec => mean 200ms
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / n
	if mean < 180*time.Millisecond || mean > 220*time.Millisecond {
		t.Fatalf("Exp(5) mean = %v, want ~200ms", mean)
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewRand(1).Exp(0)
}

func TestParetoRespectsScale(t *testing.T) {
	r := NewRand(2)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(3, 2); v < 3 {
			t.Fatalf("Pareto(3,2) = %v below scale", v)
		}
	}
}

func TestParetoMeanAlpha2(t *testing.T) {
	// Pareto(xm=1, alpha=2) has mean alpha*xm/(alpha-1) = 2.
	r := NewRand(3)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Pareto(1, 2)
	}
	mean := sum / n
	if mean < 1.8 || mean > 2.2 {
		t.Fatalf("Pareto(1,2) mean = %v, want ~2", mean)
	}
}

func TestBoundedParetoStaysInBounds(t *testing.T) {
	r := NewRand(4)
	for i := 0; i < 20000; i++ {
		v := r.BoundedPareto(1, 150, 1)
		if v < 1 || v > 150 {
			t.Fatalf("BoundedPareto out of bounds: %v", v)
		}
	}
}

func TestCapacityParetoMeanNearFive(t *testing.T) {
	// The paper's node capacities follow a Pareto with mean 5 (alpha = 1);
	// our bounded calibration targets lo*hi/(hi-lo)*ln(hi/lo) ~= 5.04.
	r := NewRand(5)
	sum := 0.0
	const n = 400000
	for i := 0; i < n; i++ {
		sum += r.CapacityPareto()
	}
	mean := sum / n
	if mean < 4.5 || mean > 5.6 {
		t.Fatalf("CapacityPareto mean = %v, want ~5", mean)
	}
}

func TestPowerLawIntBoundsProperty(t *testing.T) {
	r := NewRand(6)
	f := func(seed int64) bool {
		rr := NewRand(seed)
		for i := 0; i < 100; i++ {
			v := rr.PowerLawInt(1, 100, 0.5)
			if v < 1 || v > 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: r.Rand}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawIntSkewFavorsSmallValues(t *testing.T) {
	r := NewRand(7)
	small, large := 0, 0
	for i := 0; i < 50000; i++ {
		v := r.PowerLawInt(1, 100, 0.5)
		if v <= 10 {
			small++
		} else if v > 90 {
			large++
		}
	}
	if small <= large {
		t.Fatalf("power law not skewed: %d small vs %d large", small, large)
	}
}

func TestPowerLawIntDegenerateRange(t *testing.T) {
	r := NewRand(8)
	if v := r.PowerLawInt(7, 7, 0.5); v != 7 {
		t.Fatalf("PowerLawInt(7,7) = %d, want 7", v)
	}
}

func TestPowerLawIntSkewOne(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		v := r.PowerLawInt(1, 50, 1)
		if v < 1 || v > 50 {
			t.Fatalf("PowerLawInt skew=1 out of bounds: %d", v)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	// Median of LogNormal(mu, sigma) is e^mu.
	r := NewRand(10)
	const n = 100000
	above := 0
	for i := 0; i < n; i++ {
		if r.LogNormal(1, 0.5) > math.E {
			above++
		}
	}
	frac := float64(above) / n
	if frac < 0.48 || frac > 0.52 {
		t.Fatalf("LogNormal median check: %.3f above e^mu, want ~0.5", frac)
	}
}

func TestUniformDurationRange(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 10000; i++ {
		v := r.UniformDuration(2*time.Hour, 5*time.Hour)
		if v <= 2*time.Hour-time.Nanosecond || v > 5*time.Hour {
			t.Fatalf("UniformDuration out of (2h,5h]: %v", v)
		}
	}
}

func TestSessionDurationMixture(t *testing.T) {
	r := NewRand(12)
	var short, mid, long int
	const n = 100000
	for i := 0; i < n; i++ {
		d := r.SessionDuration()
		switch {
		case d <= 2*time.Hour:
			short++
		case d <= 5*time.Hour:
			mid++
		case d <= 24*time.Hour:
			long++
		default:
			t.Fatalf("session duration out of range: %v", d)
		}
	}
	check := func(name string, got int, want float64) {
		frac := float64(got) / n
		if math.Abs(frac-want) > 0.01 {
			t.Fatalf("%s sessions = %.3f, want ~%.2f", name, frac, want)
		}
	}
	check("short", short, 0.5)
	check("mid", mid, 0.3)
	check("long", long, 0.2)
}

func TestForkIndependence(t *testing.T) {
	a := NewRand(13)
	b := a.Fork()
	c := a.Fork()
	// Two forks from the same parent must produce different streams.
	same := true
	for i := 0; i < 10; i++ {
		if b.Int63() != c.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("forked streams are identical")
	}
}

func TestForkDeterminism(t *testing.T) {
	seq := func() []int64 {
		r := NewRand(99).Fork()
		out := make([]int64, 5)
		for i := range out {
			out[i] = r.Int63()
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Fork is not deterministic")
		}
	}
}
