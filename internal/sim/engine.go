// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine replaces the PeerSim simulator used in the CloudFog paper: it
// maintains a virtual clock and a priority queue of timestamped events, and
// executes events in time order. Ties are broken by scheduling order, so a
// run with a fixed seed is fully reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it before it fires.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	index    int // position in the heap; -1 once popped or canceled
	canceled bool
}

// At returns the virtual time the event is scheduled to fire.
func (ev *Event) At() time.Duration { return ev.at }

// Cancel prevents the event from firing. Canceling an event that already
// fired or was already canceled is a no-op.
func (ev *Event) Cancel() { ev.canceled = true }

// Canceled reports whether Cancel was called on the event.
func (ev *Event) Canceled() bool { return ev.canceled }

// Engine is a single-threaded discrete-event scheduler with a virtual clock.
// The zero value is not ready to use; call New.
type Engine struct {
	now      time.Duration
	queue    eventQueue
	seq      uint64
	executed uint64
	stopped  bool
}

// New returns an engine with the clock at zero and an empty event queue.
func New() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of events still queued (including canceled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return e.queue.Len() }

// Executed returns the number of events that have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Schedule queues fn to run after delay from the current virtual time.
// A negative delay is treated as zero. It panics if fn is nil.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute virtual time t. Times in the past
// are clamped to the current time. It panics if fn is nil.
func (e *Engine) ScheduleAt(t time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: ScheduleAt called with nil fn")
	}
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Step executes the next event, advancing the clock to its timestamp.
// It returns false when the queue holds no runnable events.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to deadline. Events scheduled beyond deadline remain queued.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.stopped = false
	for !e.stopped {
		ev := e.queue.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop makes the active Run or RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Every schedules fn to run repeatedly with the given period, starting one
// period from now, until the returned Ticker is stopped or the run ends.
func (e *Engine) Every(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every called with non-positive period %v", period))
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.arm()
	return t
}

// Ticker re-schedules a callback at a fixed virtual-time period.
type Ticker struct {
	engine  *Engine
	period  time.Duration
	fn      func()
	pending *Event
	stopped bool
}

func (t *Ticker) arm() {
	t.pending = t.engine.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks. The callback never runs again after Stop.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.pending != nil {
		t.pending.Cancel()
	}
}

// eventQueue is a binary min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// peek returns the earliest runnable event without removing it, discarding
// any canceled events found at the heap root along the way.
func (q *eventQueue) peek() *Event {
	for q.Len() > 0 && (*q)[0].canceled {
		heap.Pop(q)
	}
	if q.Len() == 0 {
		return nil
	}
	return (*q)[0]
}
