// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine replaces the PeerSim simulator used in the CloudFog paper: it
// maintains a virtual clock and a priority queue of timestamped events, and
// executes events in time order. Ties are broken by scheduling order, so a
// run with a fixed seed is fully reproducible.
//
// The event queue is a 4-ary min-heap of small event-entry values ordered by
// (time, sequence) — no per-event heap allocation and no interface boxing.
// Callbacks live in a slot arena recycled through a free list; handles carry
// a generation counter so Cancel on a stale handle can never touch a slot
// that has been reused for a later event. Steady-state Schedule+Step is
// allocation-free (see TestScheduleStepZeroAllocs).
package sim

import (
	"fmt"
	"time"

	"cloudfog/internal/obs"
)

// Event is a generation-counted handle to a scheduled callback, returned by
// the scheduling methods so callers can cancel the event before it fires.
// The zero value is an inert handle: Cancel and Canceled work but refer to
// no event.
type Event struct {
	e        *Engine
	slot     int32
	gen      uint64
	at       time.Duration
	canceled bool
}

// At returns the virtual time the event is scheduled to fire.
func (ev *Event) At() time.Duration { return ev.at }

// Cancel prevents the event from firing. Canceling an event that already
// fired or was already canceled is a no-op: the generation check makes sure
// a stale handle cannot cancel an unrelated event that reused the slot.
func (ev *Event) Cancel() {
	ev.canceled = true
	if ev.e != nil {
		ev.e.cancel(ev.slot, ev.gen)
	}
}

// Canceled reports whether Cancel was called on this handle.
func (ev *Event) Canceled() bool { return ev.canceled }

// eventEntry is one heap element: the firing time and tie-breaking sequence
// plus the index of the slot holding the callback. Entries are plain values;
// the heap never stores pointers or interfaces.
type eventEntry struct {
	at   time.Duration
	seq  uint64
	slot int32
}

func entryLess(a, b eventEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventSlot holds a pending callback. Exactly one of fn/pfn is set. While
// queued, the slot is owned by its heap entry; Cancel only marks it, and the
// slot returns to the free list when the entry is popped.
type eventSlot struct {
	fn       func()
	pfn      func(any)
	arg      any
	gen      uint64
	next     int32 // free-list link while free
	canceled bool
}

// Engine is a single-threaded discrete-event scheduler with a virtual clock.
// The zero value is not ready to use; call New.
type Engine struct {
	now      time.Duration
	heap     []eventEntry
	slots    []eventSlot
	free     int32 // head of the slot free list; -1 when empty
	seq      uint64
	executed uint64
	stopped  bool

	// stats, when non-nil, counts scheduled/executed/canceled events. The
	// hot paths pay one nil-check when disabled; counters never influence
	// control flow, so instrumented runs stay deterministic.
	stats *obs.EngineStats
}

// New returns an engine with the clock at zero and an empty event queue.
func New() *Engine {
	return &Engine{free: -1}
}

// SetStats attaches (or, with nil, detaches) an observability bundle.
func (e *Engine) SetStats(s *obs.EngineStats) { e.stats = s }

// Reset returns the engine to its post-New state — clock at zero, queue
// empty, sequence counter rewound — while keeping the heap and slot arena
// capacity, so back-to-back runs reuse one engine without reallocating.
// Every slot generation is bumped, invalidating all outstanding Event
// handles from the previous run. A reset engine behaves bit-identically to
// a fresh one: scheduling order restarts from sequence zero.
func (e *Engine) Reset() {
	e.heap = e.heap[:0]
	e.free = -1
	for i := len(e.slots) - 1; i >= 0; i-- {
		sl := &e.slots[i]
		sl.fn, sl.pfn, sl.arg = nil, nil, nil
		sl.canceled = false
		sl.gen++
		sl.next = e.free
		e.free = int32(i)
	}
	e.now = 0
	e.seq = 0
	e.executed = 0
	e.stopped = false
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of events still queued (including canceled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.heap) }

// Executed returns the number of events that have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Schedule queues fn to run after delay from the current virtual time.
// A negative delay is treated as zero. It panics if fn is nil.
func (e *Engine) Schedule(delay time.Duration, fn func()) Event {
	if fn == nil {
		panic("sim: Schedule called with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	return e.schedule(e.now+delay, fn, nil, nil)
}

// ScheduleAt queues fn to run at absolute virtual time t. Times in the past
// are clamped to the current time. It panics if fn is nil.
func (e *Engine) ScheduleAt(t time.Duration, fn func()) Event {
	if fn == nil {
		panic("sim: ScheduleAt called with nil fn")
	}
	return e.schedule(t, fn, nil, nil)
}

// SchedulePayload queues fn(arg) to run after delay from the current
// virtual time. It exists so hot loops can reuse one long-lived callback
// (typically a bound method stored in a struct field) with a per-event
// payload instead of allocating a fresh closure per event: storing a pointer
// in the any payload does not allocate. A negative delay is treated as
// zero. It panics if fn is nil.
func (e *Engine) SchedulePayload(delay time.Duration, fn func(any), arg any) Event {
	if fn == nil {
		panic("sim: SchedulePayload called with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	return e.schedule(e.now+delay, nil, fn, arg)
}

// SchedulePayloadAt is SchedulePayload at an absolute virtual time. Times in
// the past are clamped to the current time. It panics if fn is nil.
func (e *Engine) SchedulePayloadAt(t time.Duration, fn func(any), arg any) Event {
	if fn == nil {
		panic("sim: SchedulePayloadAt called with nil fn")
	}
	return e.schedule(t, nil, fn, arg)
}

func (e *Engine) schedule(t time.Duration, fn func(), pfn func(any), arg any) Event {
	if t < e.now {
		t = e.now
	}
	slot := e.allocSlot()
	sl := &e.slots[slot]
	sl.fn, sl.pfn, sl.arg = fn, pfn, arg
	e.push(eventEntry{at: t, seq: e.seq, slot: slot})
	e.seq++
	if e.stats != nil {
		e.stats.Scheduled.Inc()
	}
	return Event{e: e, slot: slot, gen: sl.gen, at: t}
}

func (e *Engine) allocSlot() int32 {
	if e.free >= 0 {
		s := e.free
		e.free = e.slots[s].next
		return s
	}
	e.slots = append(e.slots, eventSlot{})
	return int32(len(e.slots) - 1)
}

// freeSlot recycles a slot whose heap entry was popped. Bumping the
// generation invalidates every outstanding handle to the old event.
func (e *Engine) freeSlot(slot int32) {
	sl := &e.slots[slot]
	sl.fn, sl.pfn, sl.arg = nil, nil, nil
	sl.canceled = false
	sl.gen++
	sl.next = e.free
	e.free = slot
}

// cancel marks the slot's event canceled if the handle's generation still
// matches; the slot itself is reclaimed lazily when its entry is popped.
func (e *Engine) cancel(slot int32, gen uint64) {
	if slot < 0 || int(slot) >= len(e.slots) {
		return
	}
	if sl := &e.slots[slot]; sl.gen == gen && !sl.canceled {
		sl.canceled = true
		if e.stats != nil {
			e.stats.Canceled.Inc()
		}
	}
}

// Step executes the next event, advancing the clock to its timestamp.
// It returns false when the queue holds no runnable events.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ent := e.pop()
		sl := &e.slots[ent.slot]
		if sl.canceled {
			e.freeSlot(ent.slot)
			continue
		}
		fn, pfn, arg := sl.fn, sl.pfn, sl.arg
		e.freeSlot(ent.slot)
		e.now = ent.at
		e.executed++
		if e.stats != nil {
			e.stats.Executed.Inc()
		}
		if fn != nil {
			fn()
		} else {
			pfn(arg)
		}
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to deadline. Events scheduled beyond deadline remain queued.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.stopped = false
	for !e.stopped {
		at, ok := e.peek()
		if !ok || at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// peek returns the firing time of the earliest runnable event, discarding
// canceled events found at the heap root along the way.
func (e *Engine) peek() (time.Duration, bool) {
	for len(e.heap) > 0 {
		ent := e.heap[0]
		if !e.slots[ent.slot].canceled {
			return ent.at, true
		}
		e.pop()
		e.freeSlot(ent.slot)
	}
	return 0, false
}

// Stop makes the active Run or RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// The heap is 4-ary: children of i are 4i+1..4i+4. A wider node roughly
// halves the tree depth versus a binary heap, trading a few extra sibling
// comparisons (cheap: entries are 24-byte values in one cache line) for
// fewer swap levels on every push and pop.

func (e *Engine) push(ent eventEntry) {
	h := append(e.heap, ent)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

func (e *Engine) pop() eventEntry {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	e.heap = h
	n := len(h)
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(h[j], h[best]) {
				best = j
			}
		}
		if !entryLess(h[best], h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}

// Every schedules fn to run repeatedly with the given period, starting one
// period from now, until the returned Ticker is stopped or the run ends.
func (e *Engine) Every(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every called with non-positive period %v", period))
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.arm()
	return t
}

// Ticker re-schedules a callback at a fixed virtual-time period.
type Ticker struct {
	engine  *Engine
	period  time.Duration
	fn      func()
	pending Event
	stopped bool
}

// tickerFire is the shared payload callback for all tickers: re-arming
// through it costs no allocation per tick.
func tickerFire(arg any) {
	t := arg.(*Ticker)
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.arm()
	}
}

func (t *Ticker) arm() {
	t.pending = t.engine.SchedulePayload(t.period, tickerFire, t)
}

// Stop cancels future ticks. The callback never runs again after Stop.
func (t *Ticker) Stop() {
	t.stopped = true
	t.pending.Cancel()
}
