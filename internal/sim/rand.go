package sim

import (
	"math"
	"math/rand"
	"time"
)

// Rand wraps math/rand with the distributions the CloudFog evaluation uses:
// exponential inter-arrival times for Poisson player joins, (bounded) Pareto
// node capacities, power-law friend counts, and lognormal latency jitter.
// Each concern of a simulation should own its own Rand stream so that
// changing one workload dimension does not perturb the others.
type Rand struct {
	*rand.Rand
	draws uint64
}

// NewRand returns a deterministic random stream for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{Rand: rand.New(rand.NewSource(seed))}
}

// Draws returns how many primitive draws this stream has made — each call
// through one of the counted wrappers below is one draw. The count is the
// flight recorder's cheapest divergence witness: two runs that consumed a
// stream differently cannot have made the same number of draws, so replay
// compares counts per stream before comparing any output bytes. Values
// produced are untouched; the counter is one register increment per draw.
func (r *Rand) Draws() uint64 { return r.draws }

// Float64 counts and forwards to math/rand.
func (r *Rand) Float64() float64 { r.draws++; return r.Rand.Float64() }

// Intn counts and forwards to math/rand.
func (r *Rand) Intn(n int) int { r.draws++; return r.Rand.Intn(n) }

// Int63 counts and forwards to math/rand.
func (r *Rand) Int63() int64 { r.draws++; return r.Rand.Int63() }

// Int63n counts and forwards to math/rand.
func (r *Rand) Int63n(n int64) int64 { r.draws++; return r.Rand.Int63n(n) }

// ExpFloat64 counts and forwards to math/rand.
func (r *Rand) ExpFloat64() float64 { r.draws++; return r.Rand.ExpFloat64() }

// NormFloat64 counts and forwards to math/rand.
func (r *Rand) NormFloat64() float64 { r.draws++; return r.Rand.NormFloat64() }

// Perm counts (as one draw) and forwards to math/rand.
func (r *Rand) Perm(n int) []int { r.draws++; return r.Rand.Perm(n) }

// Fork derives an independent stream from this one. The derived stream is a
// pure function of the parent's state, preserving determinism.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Int63())
}

// SplitSeed derives the seed of an independent child stream from a parent
// seed and a stream index with one splitmix64 round. Unlike Fork it consumes
// no parent state: the result is a pure function of (seed, stream), so
// shards, epochs, and per-node streams can be derived in any order — or in
// parallel — and still agree bit for bit. Nest calls to split along more
// than one axis, e.g. SplitSeed(SplitSeed(seed, epoch), nodeID).
func SplitSeed(seed, stream int64) int64 {
	z := uint64(seed) + (uint64(stream)+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Exp draws an exponentially distributed duration with the given rate
// (events per second). It panics if rate is not positive.
func (r *Rand) Exp(rate float64) time.Duration {
	if rate <= 0 {
		panic("sim: Exp requires positive rate")
	}
	return time.Duration(r.ExpFloat64() / rate * float64(time.Second))
}

// Pareto draws from a Pareto distribution with scale xm (minimum value) and
// shape alpha. For alpha <= 1 the distribution has infinite mean; use
// BoundedPareto when a finite mean is required, as the paper's node-capacity
// model (mean 5, alpha = 1) implies.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("sim: Pareto requires positive scale and shape")
	}
	u := r.uniformOpen()
	return xm / math.Pow(u, 1/alpha)
}

// BoundedPareto draws from a Pareto distribution with shape alpha truncated
// to [lo, hi] by inverse-CDF sampling. The CloudFog evaluation draws node
// capacities from a Pareto with mean 5 and alpha = 1, which is only
// well-defined with an upper bound; CapacityPareto provides calibrated
// parameters.
func (r *Rand) BoundedPareto(lo, hi, alpha float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		panic("sim: BoundedPareto requires 0 < lo < hi and positive alpha")
	}
	u := r.uniformOpen()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	// Inverse CDF of the bounded Pareto.
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// CapacityPareto draws a node capacity following the paper's model: a Pareto
// distribution with shape alpha = 1 bounded so the mean is approximately 5.
// With lo = 1 and hi = 150 the bounded Pareto mean is
// lo*hi/(hi-lo) * ln(hi/lo) = (150/149) * ln 150 ~= 5.04.
func (r *Rand) CapacityPareto() float64 {
	return r.BoundedPareto(1, 150, 1)
}

// PowerLawInt draws an integer in [lo, hi] from a discrete power-law
// distribution P(k) proportional to k^(-skew). The paper draws per-player
// friend counts from a power law with skew 0.5.
func (r *Rand) PowerLawInt(lo, hi int, skew float64) int {
	if lo < 1 || hi < lo {
		panic("sim: PowerLawInt requires 1 <= lo <= hi")
	}
	if lo == hi {
		return lo
	}
	// Continuous inverse-CDF sampling of x^(-skew) on [lo, hi+1), floored.
	u := r.uniformOpen()
	var x float64
	if skew == 1 {
		x = float64(lo) * math.Pow(float64(hi+1)/float64(lo), u)
	} else {
		a := 1 - skew
		loA := math.Pow(float64(lo), a)
		hiA := math.Pow(float64(hi+1), a)
		x = math.Pow(loA+u*(hiA-loA), 1/a)
	}
	k := int(x)
	if k < lo {
		k = lo
	}
	if k > hi {
		k = hi
	}
	return k
}

// LogNormal draws from a lognormal distribution with the given parameters of
// the underlying normal (mu, sigma).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// UniformDuration draws uniformly from (lo, hi].
func (r *Rand) UniformDuration(lo, hi time.Duration) time.Duration {
	if hi < lo {
		panic("sim: UniformDuration requires lo <= hi")
	}
	if hi == lo {
		return hi
	}
	span := float64(hi - lo)
	return hi - time.Duration(r.uniformOpen()*span)
}

// SessionDuration draws a play-session length following the paper's daily
// play-time study: 50% of players play for a period in (0,2] hours, 30% in
// (2,5] hours, and 20% in (5,24] hours.
func (r *Rand) SessionDuration() time.Duration {
	switch p := r.Float64(); {
	case p < 0.5:
		return r.UniformDuration(0, 2*time.Hour)
	case p < 0.8:
		return r.UniformDuration(2*time.Hour, 5*time.Hour)
	default:
		return r.UniformDuration(5*time.Hour, 24*time.Hour)
	}
}

// uniformOpen returns a uniform sample in the open interval (0, 1), avoiding
// the zero that would make inverse-CDF transforms blow up.
func (r *Rand) uniformOpen() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}
