package sim

import (
	"container/heap"
	"testing"
	"time"
)

// --- Reference implementation: the pre-rewrite container/heap engine. ---
//
// The equivalence test drives this oracle and the production engine with the
// same randomized schedule/cancel/Every workload and asserts identical
// firing order and clocks, so the 4-ary value heap, free list, and payload
// events cannot drift from the documented (at, seq) total order.

type refEvent struct {
	at       time.Duration
	seq      uint64
	fn       func()
	canceled bool
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(*refEvent)) }
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

type refEngine struct {
	now   time.Duration
	queue refQueue
	seq   uint64
}

func (e *refEngine) Now() time.Duration { return e.now }

func (e *refEngine) Schedule(delay time.Duration, fn func()) *refEvent {
	if delay < 0 {
		delay = 0
	}
	t := e.now + delay
	ev := &refEvent{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

func (e *refEngine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*refEvent)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

func (e *refEngine) RunUntil(deadline time.Duration) {
	for {
		for e.queue.Len() > 0 && e.queue[0].canceled {
			heap.Pop(&e.queue)
		}
		if e.queue.Len() == 0 || e.queue[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// --- Generic driver: one randomized workload, two engines. ---

type firing struct {
	id int
	at time.Duration
}

// driver adapts either engine to the workload below.
type driver struct {
	now      func() time.Duration
	schedule func(delay time.Duration, fn func()) (cancel func())
	every    func(period time.Duration, fn func()) (stop func())
	runUntil func(deadline time.Duration)
}

func newEngineDriver(e *Engine) driver {
	return driver{
		now: e.Now,
		schedule: func(d time.Duration, fn func()) func() {
			ev := e.Schedule(d, fn)
			return ev.Cancel
		},
		every: func(p time.Duration, fn func()) func() {
			tk := e.Every(p, fn)
			return tk.Stop
		},
		runUntil: e.RunUntil,
	}
}

func newRefDriver(e *refEngine) driver {
	return driver{
		now: e.Now,
		schedule: func(d time.Duration, fn func()) func() {
			ev := e.Schedule(d, fn)
			return func() { ev.canceled = true }
		},
		every: func(p time.Duration, fn func()) func() {
			// Mirror Ticker's semantics: fire, then re-arm unless stopped.
			stopped := false
			var pending *refEvent
			var tick func()
			tick = func() {
				if stopped {
					return
				}
				fn()
				if !stopped {
					pending = e.Schedule(p, tick)
				}
			}
			pending = e.Schedule(p, tick)
			return func() {
				stopped = true
				if pending != nil {
					pending.canceled = true
				}
			}
		},
		runUntil: e.RunUntil,
	}
}

// runWorkload drives one engine through the randomized workload and returns
// the firing log. All randomness comes from a private Rand seeded
// identically for both engines; draws happen inside callbacks, so the drawn
// sequence itself verifies the firing order.
func runWorkload(t *testing.T, d driver, seed int64) ([]firing, time.Duration) {
	t.Helper()
	rng := NewRand(seed)
	var log []firing
	var cancels []func()
	var tickerStops []func()
	nextID := 0
	var spawn func(id int)
	spawn = func(id int) {
		log = append(log, firing{id, d.now()})
		if len(log) >= 600 {
			return
		}
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // schedule one successor
			id := nextID
			nextID++
			cancels = append(cancels, d.schedule(time.Duration(rng.Intn(5_000_000)), func() { spawn(id) }))
		case 4: // schedule two, tie times often
			delay := time.Duration(rng.Intn(3)) * time.Millisecond
			for k := 0; k < 2; k++ {
				id := nextID
				nextID++
				cancels = append(cancels, d.schedule(delay, func() { spawn(id) }))
			}
		case 5: // cancel a random outstanding handle (possibly already fired)
			if len(cancels) > 0 {
				cancels[rng.Intn(len(cancels))]()
			}
			id := nextID
			nextID++
			cancels = append(cancels, d.schedule(time.Duration(rng.Intn(2_000_000)), func() { spawn(id) }))
		case 6: // start a ticker
			if len(tickerStops) < 8 {
				id := nextID
				nextID++
				tickerStops = append(tickerStops, d.every(time.Duration(1+rng.Intn(4))*time.Millisecond, func() { spawn(id) }))
			}
		case 7: // stop a random ticker
			if len(tickerStops) > 0 {
				tickerStops[rng.Intn(len(tickerStops))]()
			}
		case 8: // zero-delay event (fires at the current instant, later seq)
			id := nextID
			nextID++
			cancels = append(cancels, d.schedule(0, func() { spawn(id) }))
		case 9: // negative delay clamps to now
			id := nextID
			nextID++
			cancels = append(cancels, d.schedule(-time.Millisecond, func() { spawn(id) }))
		}
	}
	for i := 0; i < 25; i++ {
		id := nextID
		nextID++
		cancels = append(cancels, d.schedule(time.Duration(rng.Intn(1_000_000)), func() { spawn(id) }))
	}
	// Alternate RunUntil horizons so deadline clamping is exercised too.
	for h := 5 * time.Millisecond; h <= 400*time.Millisecond; h += 5 * time.Millisecond {
		d.runUntil(h)
	}
	for _, stop := range tickerStops {
		stop()
	}
	d.runUntil(time.Second)
	return log, d.now()
}

func TestEngineMatchesHeapReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		gotLog, gotNow := runWorkload(t, newEngineDriver(New()), seed)
		wantLog, wantNow := runWorkload(t, newRefDriver(&refEngine{}), seed)
		if gotNow != wantNow {
			t.Fatalf("seed %d: clock %v, reference %v", seed, gotNow, wantNow)
		}
		if len(gotLog) != len(wantLog) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(gotLog), len(wantLog))
		}
		for i := range gotLog {
			if gotLog[i] != wantLog[i] {
				t.Fatalf("seed %d: firing %d = %+v, reference %+v", seed, i, gotLog[i], wantLog[i])
			}
		}
		if len(gotLog) < 200 {
			t.Fatalf("seed %d: workload fired only %d events; raise the horizon", seed, len(gotLog))
		}
	}
}

// TestCancelSafeAfterSlotReuse pins the generation scheme: a handle kept
// past its event's firing must not cancel an unrelated event that happens to
// reuse the freed slot.
func TestCancelSafeAfterSlotReuse(t *testing.T) {
	e := New()
	stale := e.Schedule(time.Millisecond, func() {})
	e.Run() // fires; the slot returns to the free list
	ran := false
	fresh := e.Schedule(time.Millisecond, func() { ran = true })
	stale.Cancel() // must be a no-op on the reused slot
	e.Run()
	if !ran {
		t.Fatal("stale Cancel killed an event that reused the slot")
	}
	if fresh.Canceled() {
		t.Fatal("fresh handle reports canceled")
	}
}

// TestScheduleStepZeroAllocs pins the tentpole contract: steady-state
// Schedule+Step allocates nothing once the heap and slot arena are warm.
func TestScheduleStepZeroAllocs(t *testing.T) {
	e := New()
	fn := func() {}
	e.Schedule(time.Millisecond, fn) // warm the arena and heap
	e.Step()
	if avg := testing.AllocsPerRun(200, func() {
		e.Schedule(time.Millisecond, fn)
		e.Step()
	}); avg != 0 {
		t.Fatalf("Schedule+Step allocates %.1f/op, want 0", avg)
	}
}

// TestSchedulePayloadZeroAllocs additionally checks that a pointer payload
// does not box: the payload path is what the QoE hot loop rides.
func TestSchedulePayloadZeroAllocs(t *testing.T) {
	e := New()
	type payload struct{ n int }
	p := &payload{}
	fn := func(arg any) { arg.(*payload).n++ }
	e.SchedulePayload(time.Millisecond, fn, p)
	e.Step()
	if avg := testing.AllocsPerRun(200, func() {
		e.SchedulePayload(time.Millisecond, fn, p)
		e.Step()
	}); avg != 0 {
		t.Fatalf("SchedulePayload+Step allocates %.1f/op, want 0", avg)
	}
	if p.n != 202 { // AllocsPerRun runs the func one extra warm-up time
		t.Fatalf("payload callback ran %d times, want 202", p.n)
	}
}

// TestTickerZeroAllocsPerTick verifies the shared tickerFire callback:
// re-arming a ticker costs nothing per tick.
func TestTickerZeroAllocsPerTick(t *testing.T) {
	e := New()
	ticks := 0
	tk := e.Every(time.Millisecond, func() { ticks++ })
	e.Step() // warm
	if avg := testing.AllocsPerRun(200, func() { e.Step() }); avg != 0 {
		t.Fatalf("ticker tick allocates %.1f/op, want 0", avg)
	}
	tk.Stop()
	if ticks != 202 { // AllocsPerRun runs the func one extra warm-up time
		t.Fatalf("ticker fired %d times, want 202", ticks)
	}
}

func TestSchedulePayloadAtClampsPast(t *testing.T) {
	e := New()
	e.Schedule(10*time.Millisecond, func() {
		ev := e.SchedulePayloadAt(time.Millisecond, func(any) {}, nil)
		if ev.At() != 10*time.Millisecond {
			t.Fatalf("past payload event scheduled at %v, want now (10ms)", ev.At())
		}
	})
	e.Run()
}

func TestZeroValueEventHandle(t *testing.T) {
	var ev Event
	ev.Cancel() // must not panic
	if !ev.Canceled() {
		t.Fatal("zero handle did not record Cancel")
	}
	if ev.At() != 0 {
		t.Fatal("zero handle has nonzero At")
	}
}
