// Package qoe runs the segment-level QoE simulation behind the paper's
// Figures 9-11: one serving node (a supernode, datacenter, or edge server)
// streams game video to a set of players over a shared uplink, with the
// receiver-driven encoding rate adaptation (§III-B) and the deadline-driven
// sender buffer scheduling (§III-C) individually switchable.
//
// Each player's stream produces one segment per frame interval; segments
// pass through the node's sender buffer, transmit serially over the uplink,
// and arrive after the player's propagation latency. A player is satisfied
// when at least 95% of its packets arrive within its game's network latency
// budget; continuity is the on-time packet fraction.
package qoe

import (
	"fmt"
	"time"

	"cloudfog/internal/adapt"
	"cloudfog/internal/game"
	"cloudfog/internal/obs"
	"cloudfog/internal/sched"
	"cloudfog/internal/sim"
	"cloudfog/internal/stream"
)

// Impairment supplies network fault state as pure functions of virtual
// time: the fault package's compiled Schedule implements it. Purity is what
// keeps chaos runs deterministic — the same query time always gets the same
// answer, regardless of sweep parallelism or instrumentation.
type Impairment interface {
	// ExtraLatency is the additional one-way propagation delay at now.
	ExtraLatency(now time.Duration) time.Duration
	// LossFrac is the wire loss fraction at now, in [0, 1].
	LossFrac(now time.Duration) float64
	// BandwidthScale is the uplink capacity multiplier at now (1 = clean).
	BandwidthScale(now time.Duration) float64
}

// Options toggles the two CloudFog strategies and carries their parameters.
type Options struct {
	// Adaptation enables receiver-driven encoding rate adaptation.
	Adaptation bool
	// Scheduling enables deadline-driven sender buffer scheduling
	// (EDF ordering + tolerance-weighted packet dropping). Disabled, the
	// sender is a plain FIFO without drops — the CloudFog/B behavior.
	Scheduling bool

	Adapt  adapt.Config
	Sched  sched.Config
	Stream stream.Config

	// EstimationInterval is the receiver's occupancy-calculation cadence
	// (§III-B does not fix one; estimating every video frame makes the
	// h₁/h₂ streaks elapse in seconds and synchronizes bitrate
	// oscillation across players). Default: 10 frame intervals.
	EstimationInterval time.Duration
	// Warmup excludes the startup transient from the meters.
	Warmup time.Duration
	// PrebufferSegments is the receiver's startup buffer (in segments).
	PrebufferSegments int
	// SizeJitterSigma is the lognormal sigma of per-segment size
	// variation around the nominal bitrate (game video mixes small
	// P-frames with large I-frames). Zero disables jitter.
	SizeJitterSigma float64
	// Seed drives the per-run randomness (frame-size jitter).
	Seed int64

	// Impair, when non-nil, modulates the wire: extra propagation latency,
	// deterministic packet loss, and uplink bandwidth scaling, all queried
	// at the moment each segment touches the link. Nil means a clean wire
	// and costs one nil-check per segment.
	Impair Impairment

	// Obs, when non-nil, receives the node's observability: segment
	// lifecycle counters and delivery-latency histogram (folded from
	// always-on per-run tallies at Results), per-event emission through
	// Obs.Sink, and engine counters through Obs.Engine. Counter updates
	// are atomic, so one bundle can aggregate parallel sweep workers. Obs
	// never influences simulation control flow: results are bit-identical
	// with it on or off.
	Obs *obs.NodeStats
}

// DefaultOptions returns both strategies enabled with paper defaults
// (CloudFog/A).
func DefaultOptions() Options {
	return Options{
		Adaptation:         true,
		Scheduling:         true,
		Adapt:              adapt.DefaultConfig(),
		Sched:              sched.DefaultConfig(),
		Stream:             stream.DefaultConfig(),
		EstimationInterval: 10 * time.Second / 30,
		Warmup:             5 * time.Second,
		PrebufferSegments:  2,
		SizeJitterSigma:    0.3,
		Seed:               1,
	}
}

// BasicOptions returns both strategies disabled (CloudFog/B and the
// baselines' serving behavior).
func BasicOptions() Options {
	o := DefaultOptions()
	o.Adaptation = false
	o.Scheduling = false
	return o
}

// PlayerSpec describes one player attached to the serving node.
type PlayerSpec struct {
	ID int64
	// Game determines latency budget, loss tolerance and starting level.
	Game game.Game
	// Latency is the one-way serving-node → player propagation delay.
	Latency time.Duration
	// InboundDelay is the upstream share of the response path charged
	// before a segment can be rendered: for a fog supernode, the
	// cloud→supernode update latency; zero when the cloud itself serves.
	InboundDelay time.Duration
	// LevelCap, when positive, bounds the encoding ladder below the game's
	// matched level — the overload ladder's degradation cap on the serving
	// node. Zero leaves the ladder unconstrained.
	LevelCap int
}

// PlayerResult summarizes one player's stream after the run.
type PlayerResult struct {
	ID           int64
	GameID       int
	Continuity   float64
	Satisfied    bool
	MeanLatency  time.Duration // mean action→arrival latency of delivered segments
	FinalLevel   int
	LevelChanges int
	Stalls       int
	Segments     int64
	// PacketsOnTime and PacketsTotal are the continuity meter's raw
	// post-warmup tallies. Continuity == PacketsOnTime/PacketsTotal; the
	// integers are what epoch-sharded runs merge across epochs, exactly.
	PacketsOnTime int64
	PacketsTotal  int64
}

// ServerSim simulates one serving node streaming to its players.
//
// The per-segment path (generate → enqueue → pump → transmit → deliver, one
// cycle per player per frame) is allocation-free in steady state: events ride
// the engine's payload variant through callbacks bound once at construction
// instead of per-event closures, and segments are recycled through a
// per-run pool once the buffer or receiver is done with them.
type ServerSim struct {
	engine *sim.Engine
	opts   Options
	buffer *sched.Buffer
	uplink int64

	sessions  []*session
	sessionBy map[int64]*session
	sessArena []session // backing store for sessions; pool-recycled
	rng       *sim.Rand
	busy      bool
	started   bool
	halted    bool

	// Pre-bound payload callbacks: binding a method value once here keeps
	// SchedulePayload from allocating a fresh closure per event.
	generateFn func(any)
	estimateFn func(any)
	transmitFn func(any)
	deliverFn  func(any)

	segPool []*stream.Segment
	// segAll tracks every segment this sim ever allocated, including ones
	// in flight when the run ends (those never come back through
	// putSegment). The pool re-deals the full set at the next run's start,
	// so pooled runs stop allocating segments at peak concurrency.
	segAll []*stream.Segment

	// Always-on per-run lifecycle tallies (plain ints: one increment per
	// event, no atomics, no allocations). Results folds them into
	// opts.Obs when observation is enabled; they also pin the lifecycle
	// identity generated == delivered + dropped + in-flight.
	genCount, delivCount, dropCount int64
	onTimeCount, lateCount          int64
	levelUpCount, levelDownCount    int64
	obsFolded                       bool
}

// session holds one player's per-run state. Every component is embedded by
// value — the encoder, controller, receiver buffer, meter, and estimator
// are all flat structs — so a session is a single contiguous record and the
// arena behind sessions is the only allocation the player set needs.
type session struct {
	spec     PlayerSpec
	encoder  stream.Encoder
	ctrl     adapt.Controller
	adapting bool
	recv     stream.ReceiverBuffer
	meter    stream.ContinuityMeter

	// est is the Eq. 7 buffered-size estimator driving adaptation; the
	// receiver measures its download rate over each estimation interval.
	est            adapt.OccupancyEstimator
	bytesSinceTick int
	lastTick       time.Duration

	latSum     time.Duration
	delivered  int64
	levelMoves int
}

// NewServerSim builds a serving-node simulation on the engine with the
// given uplink bandwidth (bits/second).
func NewServerSim(engine *sim.Engine, opts Options, uplink int64) (*ServerSim, error) {
	return newServerSimIn(engine, opts, uplink, nil)
}

// newServerSimIn is NewServerSim reusing a pooled sender buffer when one is
// supplied (Reset makes it indistinguishable from a fresh buffer).
func newServerSimIn(engine *sim.Engine, opts Options, uplink int64, buf *sched.Buffer) (*ServerSim, error) {
	if uplink <= 0 {
		return nil, fmt.Errorf("qoe: non-positive uplink %d", uplink)
	}
	if err := opts.Stream.Validate(); err != nil {
		return nil, err
	}
	schedCfg := opts.Sched
	schedCfg.EDF = opts.Scheduling
	schedCfg.DropEnabled = opts.Scheduling
	if opts.Obs != nil {
		schedCfg.Sink = opts.Obs.Sink
		if opts.Obs.Engine != nil {
			engine.SetStats(opts.Obs.Engine)
		}
	}
	if buf == nil {
		buf = sched.NewBuffer(schedCfg, opts.Stream, uplink)
	} else {
		buf.Reset(schedCfg, opts.Stream, uplink)
	}
	s := &ServerSim{
		engine: engine,
		opts:   opts,
		buffer: buf,
		uplink: uplink,
		rng:    sim.NewRand(opts.Seed),
	}
	s.generateFn = s.generate
	s.estimateFn = s.estimate
	s.transmitFn = s.transmitted
	s.deliverFn = s.deliver
	return s, nil
}

// getSegment takes a segment from the per-run pool (or allocates the pool's
// first copies); putSegment returns one once no queue, meter, or receiver
// will touch it again.
func (s *ServerSim) getSegment() *stream.Segment {
	if n := len(s.segPool); n > 0 {
		seg := s.segPool[n-1]
		s.segPool[n-1] = nil
		s.segPool = s.segPool[:n-1]
		return seg
	}
	seg := new(stream.Segment)
	s.segAll = append(s.segAll, seg)
	return seg
}

func (s *ServerSim) putSegment(seg *stream.Segment) {
	s.segPool = append(s.segPool, seg)
}

// emit sends a structured event when a sink is attached. One nil-check per
// call site when observation is off; the Event is a value, so an enabled
// emission still costs no allocation.
func (s *ServerSim) emit(kind obs.EventKind, at time.Duration, player, a, b int64) {
	if s.opts.Obs == nil || s.opts.Obs.Sink == nil {
		return
	}
	s.opts.Obs.Sink(obs.Event{Kind: kind, At: at, Player: player, A: a, B: b})
}

// dropSegment accounts a segment lost in full: the always-on tally plus the
// optional drop event carrying the packets lost.
func (s *ServerSim) dropSegment(now time.Duration, seg *stream.Segment) {
	s.dropCount++
	s.emit(obs.EventSegmentDropped, now, seg.PlayerID, int64(seg.RemainingPackets()), 0)
}

// AddPlayer attaches a player before Start.
func (s *ServerSim) AddPlayer(spec PlayerSpec) error {
	if s.started {
		return fmt.Errorf("qoe: AddPlayer after Start")
	}
	if s.sessionBy == nil {
		s.sessionBy = make(map[int64]*session)
	}
	if _, dup := s.sessionBy[spec.ID]; dup {
		return fmt.Errorf("qoe: duplicate player id %d", spec.ID)
	}
	start := spec.Game.Quality()
	if spec.LevelCap > 0 && spec.LevelCap < start.Level {
		start = game.MustLevelAt(spec.LevelCap)
	}
	// Take the session from the arena while spare capacity remains (the
	// pool pre-sizes it); the assignment overwrites every field of a
	// recycled slot. Growing the arena would move live sessions, so past
	// its capacity each session allocates individually.
	var ss *session
	if len(s.sessArena) < cap(s.sessArena) {
		s.sessArena = s.sessArena[:len(s.sessArena)+1]
		ss = &s.sessArena[len(s.sessArena)-1]
	} else {
		ss = new(session)
	}
	*ss = session{
		spec:    spec,
		encoder: *stream.NewEncoder(s.opts.Stream, spec.ID, start),
		recv:    *stream.NewReceiverBuffer(s.opts.Stream, start.Bitrate),
	}
	if s.opts.Adaptation {
		ss.ctrl.Init(s.opts.Adapt, spec.Game)
		ss.adapting = true
		if spec.LevelCap > 0 {
			ss.ctrl.SetMaxLevel(spec.LevelCap)
		}
	}
	prebuf := float64(s.opts.PrebufferSegments * s.opts.Stream.SegmentBytes(start.Bitrate))
	ss.recv.SetPrebuffer(prebuf)
	s.sessions = append(s.sessions, ss)
	s.sessionBy[spec.ID] = ss
	return nil
}

// Start schedules segment generation for every player. Generation phases
// are staggered across the frame interval so segments do not arrive in
// lockstep bursts.
func (s *ServerSim) Start() {
	if s.started {
		return
	}
	s.started = true
	n := len(s.sessions)
	if n == 0 {
		return
	}
	period := s.opts.Stream.SegmentDuration
	for i, ss := range s.sessions {
		offset := time.Duration(int64(period) * int64(i) / int64(n))
		s.engine.SchedulePayload(offset, s.generateFn, ss)
		if ss.adapting {
			// Periodic receiver-side occupancy estimation (§III-B: the
			// client calculates r a number of times consecutively).
			s.engine.SchedulePayload(offset, s.estimateFn, ss)
		}
	}
}

// estimate runs one receiver-driven occupancy calculation (Eq. 7: the
// buffered-size estimate integrates download rate minus playback rate) and
// applies any resulting encoding-level change, then schedules the next
// calculation.
func (s *ServerSim) estimate(arg any) {
	if s.halted {
		return
	}
	ss := arg.(*session)
	now := s.engine.Now()
	ss.recv.Advance(now)
	dt := (now - ss.lastTick).Seconds()
	ss.lastTick = now
	var downloadBits float64
	if dt > 0 {
		downloadBits = float64(ss.bytesSinceTick) * 8 / dt
	}
	ss.bytesSinceTick = 0
	playbackBits := float64(ss.encoder.Level().Bitrate)
	if !ss.recv.Playing() {
		playbackBits = 0
	}
	ss.est.Update(now, downloadBits, playbackBits)
	r := ss.est.Segments(s.opts.Stream.SegmentBytes(ss.encoder.Level().Bitrate))
	switch ss.ctrl.Observe(r) {
	case adapt.AdjustedUp:
		lvl := ss.ctrl.Level()
		ss.encoder.SetLevel(lvl)
		ss.recv.SetPlaybackBitrate(lvl.Bitrate)
		ss.levelMoves++
		s.levelUpCount++
		s.emit(obs.EventLevelChange, now, ss.spec.ID, int64(lvl.Level), 1)
	case adapt.AdjustedDown:
		lvl := ss.ctrl.Level()
		ss.encoder.SetLevel(lvl)
		ss.recv.SetPlaybackBitrate(lvl.Bitrate)
		ss.levelMoves++
		s.levelDownCount++
		s.emit(obs.EventLevelChange, now, ss.spec.ID, int64(lvl.Level), -1)
	}
	s.engine.SchedulePayload(s.estimationInterval(), s.estimateFn, ss)
}

func (s *ServerSim) estimationInterval() time.Duration {
	if s.opts.EstimationInterval > 0 {
		return s.opts.EstimationInterval
	}
	return 10 * s.opts.Stream.SegmentDuration
}

// generate produces the next segment of a session and schedules the
// following one a frame interval later.
func (s *ServerSim) generate(arg any) {
	if s.halted {
		return
	}
	ss := arg.(*session)
	now := s.engine.Now()
	actionTime := now - ss.spec.InboundDelay
	seg := s.getSegment()
	ss.encoder.EncodeInto(seg, actionTime, now, ss.spec.Game)
	if sigma := s.opts.SizeJitterSigma; sigma > 0 {
		// Mean-one lognormal frame-size variation: E[e^(N(-s²/2, s))] = 1.
		mult := s.rng.LogNormal(-sigma*sigma/2, sigma)
		seg.Bytes = int(float64(seg.Bytes) * mult)
		if seg.Bytes < 1 {
			seg.Bytes = 1
		}
		seg.Packets = (seg.Bytes + s.opts.Stream.PacketSize - 1) / s.opts.Stream.PacketSize
	}
	s.genCount++
	s.emit(obs.EventSegmentGenerated, now, ss.spec.ID, int64(seg.Bytes), 0)
	s.buffer.Enqueue(now, seg)
	// Segments shed by the queue bound (the arrival or evicted lenient
	// segments) are lost in full, and nothing touches them again.
	if evicted := s.buffer.Evicted(); len(evicted) > 0 {
		for _, ev := range evicted {
			if now >= s.opts.Warmup {
				if owner := s.sessionFor(ev.PlayerID); owner != nil {
					owner.meter.RecordSegment(ev, false)
				}
			}
			s.dropSegment(now, ev)
			s.putSegment(ev)
		}
		s.buffer.ClearEvicted()
	}
	s.pump()
	s.engine.SchedulePayload(s.opts.Stream.SegmentDuration, s.generateFn, ss)
}

// pump starts a transmission if the uplink is idle and segments are queued.
// Fully-dropped segments never transmit, but their packets still count as
// lost for continuity purposes.
func (s *ServerSim) pump() {
	if s.busy {
		return
	}
	now := s.engine.Now()
	for {
		seg := s.buffer.DequeueAny(now)
		if seg == nil {
			return
		}
		if seg.RemainingPackets() == 0 {
			if ss := s.sessionFor(seg.PlayerID); ss != nil && now >= s.opts.Warmup {
				ss.meter.RecordSegment(seg, false)
			}
			s.dropSegment(now, seg)
			s.putSegment(seg)
			continue
		}
		s.busy = true
		if imp := s.opts.Impair; imp != nil {
			// Bandwidth collapse: rescale the uplink for this transmission
			// from the impairment window active right now.
			s.buffer.SetBandwidthScale(imp.BandwidthScale(now))
		}
		tx := s.buffer.TransmissionTime(seg)
		s.engine.SchedulePayload(tx, s.transmitFn, seg)
		return
	}
}

// transmitted completes a segment's uplink transmission: it is delivered to
// the player after its propagation latency, and the uplink moves on.
func (s *ServerSim) transmitted(arg any) {
	if s.halted {
		return
	}
	seg := arg.(*stream.Segment)
	s.busy = false
	now := s.engine.Now()
	ss := s.sessionFor(seg.PlayerID)
	if ss != nil {
		if imp := s.opts.Impair; imp != nil {
			// Wire loss: the fraction of the segment's surviving packets
			// shed by the loss window active when it leaves the uplink.
			// Deterministic rounding, no runtime randomness.
			if lf := imp.LossFrac(now); lf > 0 {
				rem := seg.RemainingPackets()
				lost := int(float64(rem)*lf + 0.5)
				if lost >= rem {
					// The whole segment died on the wire.
					if now >= s.opts.Warmup {
						ss.meter.RecordSegment(seg, false)
					}
					s.dropSegment(now, seg)
					s.putSegment(seg)
					s.pump()
					return
				}
				seg.Dropped += lost
			}
		}
		prop := ss.spec.Latency
		if imp := s.opts.Impair; imp != nil {
			prop += imp.ExtraLatency(now)
		}
		s.buffer.RecordPropagation(seg.PlayerID, prop)
		s.emit(obs.EventSegmentTransmitted, now, seg.PlayerID,
			int64(seg.RemainingBytes(s.opts.Stream.PacketSize)), 0)
		s.engine.SchedulePayload(prop, s.deliverFn, seg)
	} else {
		s.dropSegment(now, seg)
		s.putSegment(seg)
	}
	s.pump()
}

// deliver lands a segment at the player: meters record on-time packets and
// the receiver buffer absorbs the bytes; the adaptation controller observes
// the new occupancy. The deliver event fires exactly at the arrival time the
// transmission computed, so arrival is the engine clock here.
func (s *ServerSim) deliver(arg any) {
	if s.halted {
		return
	}
	seg := arg.(*stream.Segment)
	ss := s.sessionFor(seg.PlayerID)
	arrival := s.engine.Now()
	onTime := arrival <= seg.ExpectedArrival()
	s.delivCount++
	if onTime {
		s.onTimeCount++
	} else {
		s.lateCount++
	}
	if o := s.opts.Obs; o != nil {
		if o.DeliveryLatencyNs != nil {
			o.DeliveryLatencyNs.Observe(int64(arrival - seg.ActionTime))
		}
		if o.Sink != nil {
			b := int64(0)
			if onTime {
				b = 1
			}
			o.Sink(obs.Event{Kind: obs.EventSegmentDelivered, At: arrival,
				Player: seg.PlayerID, A: int64(arrival - seg.ActionTime), B: b})
		}
	}
	if arrival >= s.opts.Warmup {
		ss.meter.RecordSegment(seg, onTime)
		ss.latSum += arrival - seg.ActionTime
		ss.delivered++
	}
	n := seg.RemainingBytes(s.opts.Stream.PacketSize)
	ss.recv.OnArrival(arrival, n)
	ss.bytesSinceTick += n
	s.putSegment(seg)
}

func (s *ServerSim) sessionFor(id int64) *session { return s.sessionBy[id] }

// Halt freezes the simulation permanently: every callback that fires after
// Halt returns immediately without acting or rescheduling, so the node's
// remaining queued events decay into no-ops. The shard runner halts a
// node's data plane at its kill time (mid-epoch, via a scheduled event that
// sorts before the node's own same-timestamp events) and halts every node
// sim at an epoch barrier before collecting results. Results of everything
// that happened before the halt remain readable.
func (s *ServerSim) Halt() { s.halted = true }

// Lifecycle returns the always-on per-run segment tallies. The identity
// generated == delivered + dropped + inFlight holds at any stopping point:
// every generated segment is eventually delivered, discarded, or still
// queued/in transit when the horizon hits.
func (s *ServerSim) Lifecycle() (generated, delivered, dropped, inFlight int64) {
	return s.genCount, s.delivCount, s.dropCount,
		s.genCount - s.delivCount - s.dropCount
}

// FlushObs folds the per-run tallies (and the sender buffer's packet-drop
// counters) into the attached NodeStats. Results calls it once; calling it
// again is a no-op, so shared registries never double-count a run.
func (s *ServerSim) FlushObs() {
	o := s.opts.Obs
	if o == nil || s.obsFolded {
		return
	}
	s.obsFolded = true
	o.SegmentsGenerated.Add(s.genCount)
	o.SegmentsDelivered.Add(s.delivCount)
	o.SegmentsDropped.Add(s.dropCount)
	o.SegmentsInFlightEnd.Add(s.genCount - s.delivCount - s.dropCount)
	o.SegmentsOnTime.Add(s.onTimeCount)
	o.SegmentsLate.Add(s.lateCount)
	o.LevelUps.Add(s.levelUpCount)
	o.LevelDowns.Add(s.levelDownCount)
	_, _, droppedPackets, _, _ := s.buffer.Stats()
	o.PacketsDropped.Add(droppedPackets)
	for _, ss := range s.sessions {
		o.Stalls.Add(int64(ss.recv.StallCount()))
	}
}

// Results summarizes every player after the engine has run.
func (s *ServerSim) Results() []PlayerResult {
	return s.AppendResults(make([]PlayerResult, 0, len(s.sessions)))
}

// AppendResults appends every player's summary to dst and returns it, so
// steady-state callers (the pool, the shard runner) keep one result buffer
// across runs instead of allocating per node.
func (s *ServerSim) AppendResults(dst []PlayerResult) []PlayerResult {
	s.FlushObs()
	for _, ss := range s.sessions {
		r := PlayerResult{
			ID:            ss.spec.ID,
			GameID:        ss.spec.Game.ID,
			Continuity:    ss.meter.Continuity(),
			Satisfied:     ss.meter.Satisfied(),
			FinalLevel:    ss.encoder.Level().Level,
			LevelChanges:  ss.levelMoves,
			Stalls:        ss.recv.StallCount(),
			Segments:      ss.delivered,
			PacketsOnTime: ss.meter.OnTime(),
			PacketsTotal:  ss.meter.Total(),
		}
		if ss.delivered > 0 {
			r.MeanLatency = ss.latSum / time.Duration(ss.delivered)
		}
		dst = append(dst, r)
	}
	return dst
}

// Summary aggregates player results.
type Summary struct {
	Players        int
	MeanContinuity float64
	SatisfiedFrac  float64
	MeanLatency    time.Duration
	MeanLevel      float64
}

// Summarize aggregates a result set.
func Summarize(results []PlayerResult) Summary {
	var s Summary
	s.Players = len(results)
	if s.Players == 0 {
		return s
	}
	var latSum time.Duration
	for _, r := range results {
		s.MeanContinuity += r.Continuity
		if r.Satisfied {
			s.SatisfiedFrac++
		}
		latSum += r.MeanLatency
		s.MeanLevel += float64(r.FinalLevel)
	}
	n := float64(s.Players)
	s.MeanContinuity /= n
	s.SatisfiedFrac /= n
	s.MeanLevel /= n
	s.MeanLatency = latSum / time.Duration(s.Players)
	return s
}

// RunNode is the one-call entry: simulate a serving node with the given
// uplink and players for the duration and return the per-player results.
func RunNode(opts Options, uplink int64, players []PlayerSpec, duration time.Duration) ([]PlayerResult, error) {
	engine := sim.New()
	srv, err := NewServerSim(engine, opts, uplink)
	if err != nil {
		return nil, err
	}
	for _, p := range players {
		if err := srv.AddPlayer(p); err != nil {
			return nil, err
		}
	}
	srv.Start()
	engine.RunUntil(duration)
	return srv.Results(), nil
}

// Pool recycles the allocation-heavy state of back-to-back node runs: the
// engine (event heap and slot arena), the session arena, the session index,
// the segment pool, and the result slice. A figure that simulates hundreds
// of serving nodes per sweep point pays the setup allocations once instead
// of per node. A Pool serves one goroutine; results are bit-identical to
// RunNode — a reset engine restarts at sequence zero, recycled sessions and
// segments are overwritten in full before use, and the per-run rng is
// always fresh.
type Pool struct {
	engine   *sim.Engine
	buf      *sched.Buffer
	arena    []session
	ptrs     []*session
	index    map[int64]*session
	segsAll  []*stream.Segment
	segsFree []*stream.Segment
	results  []PlayerResult
	draws    uint64
}

// Draws returns the cumulative RNG draws every run on this pool consumed —
// the flight recorder's per-shard data-plane witness.
func (p *Pool) Draws() uint64 { return p.draws }

// NewPool returns an empty pool with its own engine.
func NewPool() *Pool {
	return &Pool{engine: sim.New(), index: make(map[int64]*session)}
}

// RunNode is qoe.RunNode against the pool's reusable state. The returned
// slice is valid until the next RunNode call on this pool; callers that
// keep results across calls must copy them out.
func (p *Pool) RunNode(opts Options, uplink int64, players []PlayerSpec, duration time.Duration) ([]PlayerResult, error) {
	p.engine.Reset()
	srv, err := newServerSimIn(p.engine, opts, uplink, p.buf)
	if err != nil {
		return nil, err
	}
	p.buf = srv.buffer
	if cap(p.arena) < len(players) {
		p.arena = make([]session, 0, len(players))
	}
	srv.sessArena = p.arena[:0]
	srv.sessions = p.ptrs[:0]
	clear(p.index)
	srv.sessionBy = p.index
	srv.segAll = p.segsAll
	srv.segPool = append(p.segsFree[:0], p.segsAll...)
	for _, spec := range players {
		if err := srv.AddPlayer(spec); err != nil {
			return nil, err
		}
	}
	srv.Start()
	p.engine.RunUntil(duration)
	p.results = srv.AppendResults(p.results[:0])
	p.draws += srv.rng.Draws()
	p.arena = srv.sessArena
	p.ptrs = srv.sessions
	p.segsAll = srv.segAll
	p.segsFree = srv.segPool
	return p.results, nil
}
