package qoe

import (
	"math"
	"reflect"
	"testing"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/obs"
	"cloudfog/internal/sim"
)

func mustGame(t *testing.T, id int) game.Game {
	t.Helper()
	g, err := game.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// noJitter returns options with deterministic segment sizes so tests can
// reason exactly.
func noJitter(o Options) Options {
	o.SizeJitterSigma = 0
	return o
}

func mixedPlayers(t *testing.T, n int, seed int64) []PlayerSpec {
	t.Helper()
	rng := sim.NewRand(seed)
	players := make([]PlayerSpec, n)
	for i := range players {
		players[i] = PlayerSpec{
			ID:           int64(i),
			Game:         mustGame(t, 1+rng.Intn(5)),
			Latency:      time.Duration(8+rng.Intn(18)) * time.Millisecond,
			InboundDelay: time.Duration(15+rng.Intn(15)) * time.Millisecond,
		}
	}
	return players
}

func TestSinglePlayerHealthyStream(t *testing.T) {
	opts := noJitter(BasicOptions())
	p := PlayerSpec{ID: 1, Game: mustGame(t, 4), Latency: 15 * time.Millisecond, InboundDelay: 20 * time.Millisecond}
	res, err := RunNode(opts, 25_000_000, []PlayerSpec{p}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results", len(res))
	}
	r := res[0]
	if r.Continuity != 1 || !r.Satisfied {
		t.Fatalf("healthy stream not fully continuous: %+v", r)
	}
	// Latency = inbound 20ms + tx (5000B at 25Mbps = 1.6ms) + prop 15ms.
	want := 20*time.Millisecond + 1600*time.Microsecond + 15*time.Millisecond
	if d := r.MeanLatency - want; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("mean latency = %v, want ~%v", r.MeanLatency, want)
	}
	if r.Stalls > 1 { // at most the startup prebuffer transition
		t.Fatalf("healthy stream stalled %d times", r.Stalls)
	}
	// ~30 segments/s for 25 metered seconds.
	if r.Segments < 700 || r.Segments > 910 {
		t.Fatalf("delivered %d segments, want ~750-900", r.Segments)
	}
}

func TestInfeasibleBudgetNeverSatisfied(t *testing.T) {
	opts := noJitter(BasicOptions())
	// Game 1 has a 30ms budget; inbound alone is 40ms.
	p := PlayerSpec{ID: 1, Game: mustGame(t, 1), Latency: 10 * time.Millisecond, InboundDelay: 40 * time.Millisecond}
	res, err := RunNode(opts, 25_000_000, []PlayerSpec{p}, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Continuity != 0 || res[0].Satisfied {
		t.Fatalf("infeasible stream reported continuity %v", res[0].Continuity)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() Summary {
		res, err := RunNode(DefaultOptions(), 20_000_000, mixedPlayers(t, 20, 7), 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(res)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
}

func TestOverloadCollapsesBasic(t *testing.T) {
	players := mixedPlayers(t, 25, 42)
	res, err := RunNode(BasicOptions(), 20_000_000, players, 40*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(res)
	if s.SatisfiedFrac > 0.2 {
		t.Fatalf("basic FIFO at overload kept satisfaction %.2f", s.SatisfiedFrac)
	}
	// The bounded sender queue turns overload into loss plus bounded
	// delay: latency sits near the 100ms queue bound, and continuity
	// falls well below healthy levels.
	if s.MeanLatency < 50*time.Millisecond {
		t.Fatalf("overloaded queue latency %v below the queue bound", s.MeanLatency)
	}
	if s.MeanContinuity > 0.5 {
		t.Fatalf("overload kept continuity %.2f", s.MeanContinuity)
	}
}

// TestAdaptationImprovesOverload mirrors Figure 10: at high players-per-
// supernode, enabling the encoding rate adaptation recovers continuity that
// CloudFog/B loses.
func TestAdaptationImprovesOverload(t *testing.T) {
	players := mixedPlayers(t, 25, 42)
	basic, err := RunNode(BasicOptions(), 20_000_000, players, 40*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	opts := BasicOptions()
	opts.Adaptation = true
	adapted, err := RunNode(opts, 20_000_000, players, 40*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, a := Summarize(basic), Summarize(adapted)
	if a.MeanContinuity <= b.MeanContinuity+0.1 {
		t.Fatalf("adaptation gain too small: basic %.2f vs adapted %.2f",
			b.MeanContinuity, a.MeanContinuity)
	}
	if a.MeanLevel >= 3.0 {
		t.Fatalf("adaptation did not lower encoding levels under overload: %.2f", a.MeanLevel)
	}
}

// TestSchedulingImprovesOverload mirrors Figure 11: deadline-driven buffer
// scheduling raises satisfaction under load relative to FIFO.
func TestSchedulingImprovesOverload(t *testing.T) {
	players := mixedPlayers(t, 25, 42)
	basic, err := RunNode(BasicOptions(), 20_000_000, players, 40*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	opts := BasicOptions()
	opts.Scheduling = true
	sched, err := RunNode(opts, 20_000_000, players, 40*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, s := Summarize(basic), Summarize(sched)
	if s.SatisfiedFrac <= b.SatisfiedFrac {
		t.Fatalf("scheduling did not improve satisfaction: basic %.2f vs sched %.2f",
			b.SatisfiedFrac, s.SatisfiedFrac)
	}
	if s.MeanContinuity <= b.MeanContinuity {
		t.Fatalf("scheduling did not improve continuity: basic %.2f vs sched %.2f",
			b.MeanContinuity, s.MeanContinuity)
	}
}

// TestFullStrategiesBeatBasicUnderLoad checks CloudFog/A vs CloudFog/B.
func TestFullStrategiesBeatBasicUnderLoad(t *testing.T) {
	players := mixedPlayers(t, 25, 42)
	basic, err := RunNode(BasicOptions(), 20_000_000, players, 40*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunNode(DefaultOptions(), 20_000_000, players, 40*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, f := Summarize(basic), Summarize(full)
	if f.SatisfiedFrac <= b.SatisfiedFrac {
		t.Fatalf("CloudFog/A (%.2f) did not beat CloudFog/B (%.2f)",
			f.SatisfiedFrac, b.SatisfiedFrac)
	}
}

func TestLightLoadAllVariantsAgree(t *testing.T) {
	// Below saturation, the strategies should not hurt.
	players := mixedPlayers(t, 5, 42)
	basic, _ := RunNode(noJitter(BasicOptions()), 25_000_000, players, 30*time.Second)
	full, _ := RunNode(noJitter(DefaultOptions()), 25_000_000, players, 30*time.Second)
	b, f := Summarize(basic), Summarize(full)
	if f.SatisfiedFrac < b.SatisfiedFrac-0.01 {
		t.Fatalf("strategies hurt light load: basic %.2f vs full %.2f",
			b.SatisfiedFrac, f.SatisfiedFrac)
	}
}

func TestValidationErrors(t *testing.T) {
	engine := sim.New()
	if _, err := NewServerSim(engine, DefaultOptions(), 0); err == nil {
		t.Fatal("zero uplink accepted")
	}
	bad := DefaultOptions()
	bad.Stream.PacketSize = 0
	if _, err := NewServerSim(engine, bad, 1_000_000); err == nil {
		t.Fatal("invalid stream config accepted")
	}
	srv, err := NewServerSim(engine, DefaultOptions(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	p := PlayerSpec{ID: 1, Game: mustGame(t, 3)}
	if err := srv.AddPlayer(p); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddPlayer(p); err == nil {
		t.Fatal("duplicate player accepted")
	}
	srv.Start()
	if err := srv.AddPlayer(PlayerSpec{ID: 2, Game: mustGame(t, 3)}); err == nil {
		t.Fatal("AddPlayer after Start accepted")
	}
}

func TestEmptyServerRuns(t *testing.T) {
	engine := sim.New()
	srv, err := NewServerSim(engine, DefaultOptions(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	engine.RunUntil(time.Second)
	if len(srv.Results()) != 0 {
		t.Fatal("empty server produced results")
	}
}

func TestSummarizeArithmetic(t *testing.T) {
	res := []PlayerResult{
		{Continuity: 1.0, Satisfied: true, MeanLatency: 40 * time.Millisecond, FinalLevel: 4},
		{Continuity: 0.5, Satisfied: false, MeanLatency: 80 * time.Millisecond, FinalLevel: 2},
	}
	s := Summarize(res)
	if s.Players != 2 || math.Abs(s.MeanContinuity-0.75) > 1e-12 ||
		math.Abs(s.SatisfiedFrac-0.5) > 1e-12 || s.MeanLatency != 60*time.Millisecond ||
		math.Abs(s.MeanLevel-3) > 1e-12 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if z := Summarize(nil); z.Players != 0 {
		t.Fatal("empty summarize wrong")
	}
}

func TestWarmupExcludesStartup(t *testing.T) {
	// A stream that only runs during warmup delivers zero metered segments.
	opts := noJitter(BasicOptions())
	opts.Warmup = time.Hour
	p := PlayerSpec{ID: 1, Game: mustGame(t, 4), Latency: 10 * time.Millisecond}
	res, err := RunNode(opts, 25_000_000, []PlayerSpec{p}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Segments != 0 {
		t.Fatalf("%d segments metered during warmup", res[0].Segments)
	}
	if res[0].Continuity != 1 {
		t.Fatal("unmetered stream should report continuity 1")
	}
}

func TestJitterPreservesMeanDemand(t *testing.T) {
	// With mean-one jitter, a stream near 50% utilization stays healthy.
	opts := DefaultOptions()
	p := PlayerSpec{ID: 1, Game: mustGame(t, 4), Latency: 10 * time.Millisecond, InboundDelay: 20 * time.Millisecond}
	res, err := RunNode(opts, 2_400_000, []PlayerSpec{p}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Continuity < 0.9 {
		t.Fatalf("mild jitter broke a half-utilized stream: continuity %v", res[0].Continuity)
	}
}

func TestObsSegmentLedgerBalances(t *testing.T) {
	reg := obs.NewRegistry()
	opts := DefaultOptions()
	opts.Obs = obs.NodeStatsIn(reg)
	opts.Obs.Engine = obs.EngineStatsIn(reg)
	players := mixedPlayers(t, 12, 99)
	if _, err := RunNode(opts, 18_000_000, players, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	gen := snap.Counters["cloudfog_qoe_segments_generated_total"]
	del := snap.Counters["cloudfog_qoe_segments_delivered_total"]
	drop := snap.Counters["cloudfog_qoe_segments_dropped_total"]
	inflight := snap.Counters["cloudfog_qoe_segments_inflight_end_total"]
	if gen == 0 {
		t.Fatal("no segments generated")
	}
	if gen != del+drop+inflight {
		t.Fatalf("ledger does not balance: %d generated vs %d delivered + %d dropped + %d in flight",
			gen, del, drop, inflight)
	}
	onTime := snap.Counters["cloudfog_qoe_segments_ontime_total"]
	late := snap.Counters["cloudfog_qoe_segments_late_total"]
	if onTime+late != del {
		t.Fatalf("on-time (%d) + late (%d) != delivered (%d)", onTime, late, del)
	}
	if snap.Counters["cloudfog_engine_events_executed_total"] == 0 {
		t.Fatal("engine executed no events")
	}
}

func TestObsDoesNotChangeResults(t *testing.T) {
	// Instrumentation is observe-only: the same run with and without a
	// NodeStats bundle must produce identical player results.
	players := mixedPlayers(t, 8, 7)
	plain, err := RunNode(DefaultOptions(), 18_000_000, players, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Obs = obs.NodeStatsIn(obs.NewRegistry())
	observed, err := RunNode(opts, 18_000_000, players, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("observability changed results:\n%+v\n%+v", plain, observed)
	}
}

func TestObsFoldsOnce(t *testing.T) {
	// Calling Results twice must not double-count the lifecycle tallies.
	reg := obs.NewRegistry()
	engine := sim.New()
	opts := noJitter(BasicOptions())
	opts.Obs = obs.NodeStatsIn(reg)
	p := PlayerSpec{ID: 1, Game: mustGame(t, 4), Latency: 15 * time.Millisecond}
	srv, err := NewServerSim(engine, opts, 25_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddPlayer(p); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	engine.RunUntil(10 * time.Second)
	srv.Results()
	first := reg.Snapshot().Counters["cloudfog_qoe_segments_generated_total"]
	srv.Results()
	second := reg.Snapshot().Counters["cloudfog_qoe_segments_generated_total"]
	if first == 0 || first != second {
		t.Fatalf("lifecycle tallies folded more than once: %d then %d", first, second)
	}
	gen, del, drop, inflight := srv.Lifecycle()
	if gen != del+drop+inflight {
		t.Fatalf("Lifecycle does not balance: %d vs %d+%d+%d", gen, del, drop, inflight)
	}
}

// TestPoolMatchesRunNode pins the pooled-run equivalence contract: a Pool
// run is bit-identical to a fresh RunNode, even back-to-back across nodes
// with different options, loads, and recycled sessions/segments/engine.
func TestPoolMatchesRunNode(t *testing.T) {
	pool := NewPool()
	cases := []struct {
		opts    Options
		uplink  int64
		players int
		seed    int64
	}{
		{DefaultOptions(), 120_000_000, 14, 11},
		{BasicOptions(), 40_000_000, 25, 12},
		{DefaultOptions(), 40_000_000, 25, 12}, // same load, strategies on
		{BasicOptions(), 200_000_000, 3, 13},
		{DefaultOptions(), 120_000_000, 14, 11}, // repeat of case 0 on a warm pool
	}
	for i, c := range cases {
		opts := c.opts
		opts.Seed = 1000 + c.seed
		players := mixedPlayers(t, c.players, c.seed)
		want, err := RunNode(opts, c.uplink, players, 8*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pool.RunNode(opts, c.uplink, players, 8*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("case %d: pooled results differ\nwant %+v\ngot  %+v", i, want, got)
		}
	}
}

// TestHaltFreezesSim verifies Halt: no segments are generated or delivered
// after the halt point, and queued events decay into no-ops.
func TestHaltFreezesSim(t *testing.T) {
	engine := sim.New()
	opts := DefaultOptions()
	srv, err := NewServerSim(engine, opts, 120_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range mixedPlayers(t, 8, 21) {
		if err := srv.AddPlayer(p); err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	engine.RunUntil(6 * time.Second)
	srv.Halt()
	gen0, del0, drop0, _ := srv.Lifecycle()
	if gen0 == 0 || del0 == 0 {
		t.Fatalf("no traffic before halt: gen=%d del=%d", gen0, del0)
	}
	engine.RunUntil(12 * time.Second)
	gen1, del1, drop1, _ := srv.Lifecycle()
	if gen1 != gen0 || del1 != del0 || drop1 != drop0 {
		t.Fatalf("tallies moved after Halt: gen %d→%d del %d→%d drop %d→%d",
			gen0, gen1, del0, del1, drop0, drop1)
	}
	if pending := engine.Pending(); pending != 0 {
		// Stale events fire as no-ops; after a long-enough run-out only
		// self-rescheduling chains could remain, and Halt cuts those.
		t.Fatalf("%d events still pending after halted run-out", pending)
	}
}

// TestPoolAllocFloor records the satellite alloc floor: a warm pool runs a
// node with amortized near-zero per-player allocations — the per-run
// overhead is the sim struct, buffer, rng, and a handful of engine/map
// internals, regardless of the player count.
func TestPoolAllocFloor(t *testing.T) {
	pool := NewPool()
	opts := DefaultOptions()
	opts.Seed = 42
	players := mixedPlayers(t, 30, 31)
	warm := func() {
		if _, err := pool.RunNode(opts, 120_000_000, players, 4*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	warm()
	allocs := testing.AllocsPerRun(5, warm)
	// Fresh RunNode costs >100 allocs for this load (sessions, components,
	// engine, results). The warm pool floor: ~10 fixed per run.
	const floor = 16
	if allocs > floor {
		t.Fatalf("warm pool run allocates %.0f, want <= %d", allocs, floor)
	}
}
