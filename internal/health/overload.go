package health

import (
	"fmt"
	"time"

	"cloudfog/internal/obs"
)

// OverloadState is one rung of the supernode degradation ladder. The ladder
// replaces the binary capacity check: instead of serving at full quality
// until the last slot and then refusing, a filling supernode first steps its
// players down the encoding ladder, then stops advertising itself as a
// backup, then refuses new joins, and finally asks the fog to migrate its
// newest players away.
type OverloadState int

const (
	StateNormal OverloadState = iota
	StateDegraded
	StateShedding
	StateRejecting
	StateMigrating
)

// String names the state.
func (s OverloadState) String() string {
	switch s {
	case StateNormal:
		return "normal"
	case StateDegraded:
		return "degraded"
	case StateShedding:
		return "shedding"
	case StateRejecting:
		return "rejecting"
	case StateMigrating:
		return "migrating"
	default:
		return fmt.Sprintf("OverloadState(%d)", int(s))
	}
}

// OverloadConfig sets the ladder's entry thresholds (slot occupancy,
// load/capacity) and the hysteresis gap applied on the way back down: a state
// entered at occupancy u is only left when occupancy falls to u-Hysteresis,
// so a node oscillating around one threshold does not flap.
type OverloadConfig struct {
	DegradeAt  float64 // enter Degraded (players step one ladder level down)
	ShedAt     float64 // enter Shedding (no longer accepts backup duty)
	RejectAt   float64 // enter Rejecting (admission control refuses joins)
	MigrateAt  float64 // enter Migrating (newest players moved off)
	Hysteresis float64
}

// DefaultOverloadConfig returns the canonical ladder.
func DefaultOverloadConfig() OverloadConfig {
	return OverloadConfig{
		DegradeAt:  0.70,
		ShedAt:     0.85,
		RejectAt:   0.95,
		MigrateAt:  1.0,
		Hysteresis: 0.15,
	}
}

// Validate reports configuration errors.
func (c OverloadConfig) Validate() error {
	switch {
	case !(c.DegradeAt > 0 && c.DegradeAt < c.ShedAt && c.ShedAt < c.RejectAt && c.RejectAt <= c.MigrateAt):
		return fmt.Errorf("health: overload thresholds must be ordered 0 < DegradeAt < ShedAt < RejectAt <= MigrateAt, got %+v", c)
	case c.Hysteresis <= 0 || c.Hysteresis >= c.DegradeAt:
		return fmt.Errorf("health: Hysteresis %v outside (0, DegradeAt)", c.Hysteresis)
	}
	return nil
}

// enterAt returns the occupancy at which the ladder enters state s.
func (c OverloadConfig) enterAt(s OverloadState) float64 {
	switch s {
	case StateDegraded:
		return c.DegradeAt
	case StateShedding:
		return c.ShedAt
	case StateRejecting:
		return c.RejectAt
	case StateMigrating:
		return c.MigrateAt
	default:
		return 0
	}
}

// Overload tracks the ladder state of every supernode. Not safe for
// concurrent use — it belongs to the single-threaded fog control plane, like
// the Fog itself.
type Overload struct {
	cfg   OverloadConfig
	nodes map[int64]*olNode
	stats *obs.HealthStats
	// now, when non-nil, timestamps degraded episodes for the
	// time-in-degraded histogram.
	now func() time.Duration
}

type olNode struct {
	state      OverloadState
	degradedAt time.Duration
}

// NewOverload builds a ladder manager; cfg zero-value means defaults. stats
// and now may be nil.
func NewOverload(cfg OverloadConfig, stats *obs.HealthStats, now func() time.Duration) (*Overload, error) {
	if cfg == (OverloadConfig{}) {
		cfg = DefaultOverloadConfig()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Overload{cfg: cfg, nodes: make(map[int64]*olNode), stats: stats, now: now}, nil
}

// Observe feeds one supernode's current occupancy (load/capacity) into the
// ladder, advancing or retreating its state with hysteresis, and returns the
// state after the move. The fog calls it on every attach and detach.
func (o *Overload) Observe(id int64, load, capacity int) OverloadState {
	if capacity <= 0 {
		return StateNormal
	}
	u := float64(load) / float64(capacity)
	n := o.nodes[id]
	if n == nil {
		n = &olNode{}
		o.nodes[id] = n
	}
	prev := n.state
	for n.state < StateMigrating && u >= o.cfg.enterAt(n.state+1) {
		n.state++
	}
	for n.state > StateNormal && u < o.cfg.enterAt(n.state)-o.cfg.Hysteresis {
		n.state--
	}
	if n.state != prev {
		o.transition(id, prev, n.state, n)
	}
	return n.state
}

func (o *Overload) transition(id int64, from, to OverloadState, n *olNode) {
	var now time.Duration
	if o.now != nil {
		now = o.now()
	}
	if from == StateNormal && to > StateNormal {
		n.degradedAt = now
	}
	if o.stats != nil {
		if to > from {
			o.stats.Degraded.Inc()
		} else {
			o.stats.Restored.Inc()
			if to == StateNormal && o.now != nil {
				o.stats.TimeDegradedNs.Observe(int64(now - n.degradedAt))
			}
		}
		if o.stats.Sink != nil {
			o.stats.Sink(obs.Event{Kind: obs.EventHealthOverload, At: now, Node: id,
				A: int64(to), B: int64(from)})
		}
	}
}

// State returns the node's current ladder state.
func (o *Overload) State(id int64) OverloadState {
	if n := o.nodes[id]; n != nil {
		return n.state
	}
	return StateNormal
}

// Admit reports whether the node accepts a new player (join or failover).
func (o *Overload) Admit(id int64) bool { return o.State(id) < StateRejecting }

// AllowBackup reports whether the node may be recorded as a failover backup.
func (o *Overload) AllowBackup(id int64) bool { return o.State(id) < StateShedding }

// ShouldMigrate reports whether the fog should move players off the node.
func (o *Overload) ShouldMigrate(id int64) bool { return o.State(id) >= StateMigrating }

// WouldMigrate reports whether the given occupancy sits at or past the
// migration threshold — the predictive form of ShouldMigrate the relief
// sweep uses to keep evictees off nodes they would immediately overfill.
func (o *Overload) WouldMigrate(load, capacity int) bool {
	if capacity <= 0 {
		return false
	}
	return float64(load)/float64(capacity) >= o.cfg.MigrateAt
}

// LevelCap returns the highest encoding-ladder level the node currently
// serves, given a player's preferred start level: each rung past Normal
// steps one level further down, floored at level 1.
func (o *Overload) LevelCap(id int64, startLevel int) int {
	s := o.State(id)
	if s < StateDegraded {
		return startLevel
	}
	cap := startLevel - int(s)
	if cap < 1 {
		cap = 1
	}
	return cap
}

// Forget drops a node's ladder state (the node failed or deregistered).
func (o *Overload) Forget(id int64) { delete(o.nodes, id) }
