package health

import (
	"slices"
	"time"

	"cloudfog/internal/obs"
	"cloudfog/internal/sim"
)

// Monitor runs heartbeat-based failure detection on the sim engine: every
// tracked node schedules deterministic heartbeat events, an evaluation ticker
// sweeps the detectors in sorted node-ID order, and a detected failure fires
// the caller's callback (the fault injector repairs the node's pending
// orphans there). All randomness-free: heartbeat phases are hashed from node
// IDs and loss is the same deterministic accumulator the live links use, so a
// run is a pure function of (profile, seed) like everything else in the sim.
type Monitor struct {
	engine *sim.Engine
	cfg    DetectorConfig

	// Loss, when non-nil, is queried at each heartbeat send time; the
	// schedule's LossFrac lookup plugs in here so detector traffic sees the
	// same impairment windows as video traffic.
	loss func(now time.Duration) float64
	// onDetect fires once per down-transition detection.
	onDetect func(id int64, now time.Duration)

	nodes map[int64]*monNode
	// seq holds the tracked nodes for the evaluation sweep; appended on
	// Track and re-sorted by ID only when a sweep actually runs, so bulk
	// registration costs no per-node sorted-insert shuffle.
	seq      []*monNode
	seqDirty bool
	// block is the tail of a chunked node arena: nodes and their detector
	// gap windows come from per-chunk slabs, pointer-stable for the
	// lifetime of the monitor, instead of three heap objects per Track.
	block *monBlock
	stats *obs.HealthStats

	hbFn func(any) // pre-bound payload callback: no closure per heartbeat

	// Plain tallies (the figure accessors): per-world, never shared.
	heartbeats    int64
	lost          int64
	detected      int64
	falsePos      int64
	detLatencySum time.Duration
	detLatencyMax time.Duration
}

type monNode struct {
	id        int64
	det       Detector
	alive     bool
	suspected bool
	downAt    time.Duration
	lossAcc   float64
}

// monChunk is the arena slab size: one allocation per 64 tracked nodes
// (plus one gap-window backing array shared by the slab).
const monChunk = 64

type monBlock struct {
	nodes [monChunk]monNode
	used  int
	gaps  []time.Duration
}

// allocNode hands out the next arena slot with its detector wired to a
// cap-bounded sub-window of the slab's shared gaps array — the detector
// ring never grows past Window, so the sub-slice is all it ever needs.
func (m *Monitor) allocNode() *monNode {
	if m.block == nil || m.block.used == monChunk {
		m.block = &monBlock{gaps: make([]time.Duration, monChunk*m.cfg.Window)}
	}
	b := m.block
	n := &b.nodes[b.used]
	w := m.cfg.Window
	lo := b.used * w
	*n = monNode{det: Detector{cfg: m.cfg, gaps: b.gaps[lo : lo : lo+w]}}
	b.used++
	return n
}

// NewMonitor binds a monitor to an engine. loss and onDetect may be nil;
// stats may be nil.
func NewMonitor(engine *sim.Engine, cfg DetectorConfig, loss func(time.Duration) float64, stats *obs.HealthStats) *Monitor {
	m := &Monitor{
		engine: engine,
		cfg:    cfg.Defaulted(),
		loss:   loss,
		nodes:  make(map[int64]*monNode),
		stats:  stats,
	}
	m.hbFn = m.heartbeat
	return m
}

// OnDetect installs the detection callback. Install before Start.
func (m *Monitor) OnDetect(fn func(id int64, now time.Duration)) { m.onDetect = fn }

// Track starts heartbeat monitoring for a node. The first heartbeat fires at
// a deterministic per-ID phase offset inside one interval so a fleet does not
// beat in lockstep.
func (m *Monitor) Track(id int64) {
	if _, dup := m.nodes[id]; dup {
		return
	}
	n := m.allocNode()
	n.id = id
	n.alive = true
	n.det.Reset(m.engine.Now())
	m.nodes[id] = n
	m.seq = append(m.seq, n)
	m.seqDirty = true
	h := uint64(id)*2654435761 + 0x9e3779b97f4a7c15
	offset := time.Duration(h % uint64(m.cfg.Interval))
	m.engine.SchedulePayload(offset, m.hbFn, n)
}

// Start arms the evaluation ticker. Call once, before running the engine.
func (m *Monitor) Start() {
	m.engine.Every(m.cfg.CheckEvery, m.evaluate)
}

// Kill marks a node dead: its heartbeats stop being sent. Detection of the
// silence is the monitor's job from here.
func (m *Monitor) Kill(id int64) {
	n, ok := m.nodes[id]
	if !ok || !n.alive {
		return
	}
	n.alive = false
	n.downAt = m.engine.Now()
}

// Recover marks a node alive again as a fresh instance: detector history
// resets and heartbeats resume at the node's standing cadence.
func (m *Monitor) Recover(id int64) {
	n, ok := m.nodes[id]
	if !ok {
		m.Track(id)
		return
	}
	n.alive = true
	n.suspected = false
	n.lossAcc = 0
	n.det.Reset(m.engine.Now())
}

// heartbeat is one node's send event: if the node is alive and the loss
// accumulator lets the frame through, the detector records an arrival. The
// event reschedules itself every interval whether or not the node is up, so
// a recovered node resumes on its original phase.
func (m *Monitor) heartbeat(arg any) {
	n := arg.(*monNode)
	now := m.engine.Now()
	if n.alive {
		m.heartbeats++
		if m.stats != nil {
			m.stats.HeartbeatsSent.Inc()
		}
		dropped := false
		if m.loss != nil {
			if lf := m.loss(now); lf > 0 {
				n.lossAcc += lf
				if n.lossAcc >= 1 {
					n.lossAcc--
					dropped = true
				}
			} else {
				n.lossAcc = 0
			}
		}
		if dropped {
			m.lost++
			if m.stats != nil {
				m.stats.HeartbeatsLost.Inc()
			}
		} else {
			n.det.Heartbeat(now)
			if n.suspected {
				// The node was wrongly suspected and spoke up again; the
				// false positive was already counted at suspicion time.
				n.suspected = false
			}
		}
	}
	m.engine.SchedulePayload(m.cfg.Interval, m.hbFn, n)
}

// sorted returns the tracked nodes in ascending ID order, re-sorting only
// after new registrations. The sort is in place over the standing slice:
// steady-state sweeps pay zero allocations.
func (m *Monitor) sorted() []*monNode {
	if m.seqDirty {
		slices.SortFunc(m.seq, func(a, b *monNode) int {
			switch {
			case a.id < b.id:
				return -1
			case a.id > b.id:
				return 1
			}
			return 0
		})
		m.seqDirty = false
	}
	return m.seq
}

// evaluate sweeps every tracked detector. Sorted-ID order keeps the sweep —
// and therefore the onDetect callback order inside one tick — deterministic.
func (m *Monitor) evaluate() {
	now := m.engine.Now()
	for _, n := range m.sorted() {
		if n.suspected || !n.det.Suspect(now) {
			continue
		}
		n.suspected = true
		if n.alive {
			m.falsePos++
			if m.stats != nil {
				m.stats.FalsePositives.Inc()
				if m.stats.Sink != nil {
					m.stats.Sink(obs.Event{Kind: obs.EventHealthDetect, At: now, Node: n.id, A: 0})
				}
			}
			continue
		}
		lat := now - n.downAt
		m.detected++
		m.detLatencySum += lat
		if lat > m.detLatencyMax {
			m.detLatencyMax = lat
		}
		if m.stats != nil {
			m.stats.Detected.Inc()
			m.stats.DetectionNs.Observe(int64(lat))
			if m.stats.Sink != nil {
				m.stats.Sink(obs.Event{Kind: obs.EventHealthDetect, At: now, Node: n.id, A: 1, B: int64(lat)})
			}
		}
		if m.onDetect != nil {
			m.onDetect(n.id, now)
		}
	}
}

// Stats returns the monitor's obs bundle, or nil.
func (m *Monitor) Stats() *obs.HealthStats { return m.stats }

// Heartbeats returns sent and loss-dropped heartbeat counts.
func (m *Monitor) Heartbeats() (sent, lost int64) { return m.heartbeats, m.lost }

// Detected returns how many down-transitions the monitor detected.
func (m *Monitor) Detected() int64 { return m.detected }

// FalsePositives returns how many live nodes were wrongly suspected.
func (m *Monitor) FalsePositives() int64 { return m.falsePos }

// MeanDetectionLatency returns the mean down-to-detection latency, or 0 when
// nothing was detected.
func (m *Monitor) MeanDetectionLatency() time.Duration {
	if m.detected == 0 {
		return 0
	}
	return m.detLatencySum / time.Duration(m.detected)
}

// MaxDetectionLatency returns the worst down-to-detection latency observed —
// the quantity DetectorConfig.Bound bounds.
func (m *Monitor) MaxDetectionLatency() time.Duration { return m.detLatencyMax }

// MaxObservedAlive exposes the worst live-node silence across tracked nodes
// at now — a test hook for bounding false-positive margins.
func (m *Monitor) MaxObservedAlive(now time.Duration) time.Duration {
	var worst time.Duration
	for _, n := range m.sorted() {
		if n.alive {
			if s := n.det.Silence(now); s > worst {
				worst = s
			}
		}
	}
	return worst
}
