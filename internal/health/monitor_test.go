package health

import (
	"testing"
	"time"

	"cloudfog/internal/sim"
)

// TestMonitorSweepZeroAlloc pins the steady-state cost of a running
// monitor: once the fleet is tracked and the engine warm, heartbeat events
// and evaluation sweeps allocate nothing — the detectors live in the node
// arena, heartbeats ride pre-bound payload callbacks through recycled
// engine slots, and the sorted sweep order is only rebuilt on registration.
func TestMonitorSweepZeroAlloc(t *testing.T) {
	engine := sim.New()
	mon := NewMonitor(engine, DetectorConfig{Mode: ModePhi}, nil, nil)
	for id := int64(0); id < 100; id++ {
		mon.Track(5000 + id)
	}
	mon.Start()
	engine.RunUntil(30 * time.Second)
	allocs := testing.AllocsPerRun(10, func() {
		engine.RunUntil(engine.Now() + 5*time.Second)
	})
	if allocs > 0 {
		t.Fatalf("warm monitor run allocates %.0f per 5s window, want 0", allocs)
	}
	if fp := mon.FalsePositives(); fp != 0 {
		t.Fatalf("%d false positives on clean heartbeats", fp)
	}
}

// TestMonitorTrackChurn bounds registration cost: the chunked arena spends
// ~2 allocations per 64 tracked nodes (slab + shared gap window) instead of
// the former 3+ per node (node, detector, ring buffer, sorted-insert).
func TestMonitorTrackChurn(t *testing.T) {
	engine := sim.New()
	mon := NewMonitor(engine, DetectorConfig{Mode: ModePhi}, nil, nil)
	next := int64(0)
	allocs := testing.AllocsPerRun(5, func() {
		for i := 0; i < 128; i++ {
			mon.Track(next)
			next++
		}
	})
	// 128 tracks: 2 slabs + amortized map/slice growth. Bound with slack
	// for map rehashes landing inside one run.
	if allocs > 64 {
		t.Fatalf("tracking 128 nodes allocates %.0f, want <= 64", allocs)
	}
}

// TestMonitorSweepOrderAfterBulkTrack verifies the lazily-sorted sweep
// behaves exactly like the former sorted-insert: out-of-order registration
// still detects in ascending node-ID order within one tick.
func TestMonitorSweepOrderAfterBulkTrack(t *testing.T) {
	engine := sim.New()
	// A sweep cadence far coarser than the heartbeat phase spread, so all
	// five nodes cross the silence threshold between two sweeps and one
	// evaluation detects them all in a single tick.
	cfg := DetectorConfig{Mode: ModeTimeout, CheckEvery: 5 * time.Second}
	mon := NewMonitor(engine, cfg, nil, nil)
	var order []int64
	mon.OnDetect(func(id int64, now time.Duration) { order = append(order, id) })
	for _, id := range []int64{42, 7, 99, 3, 61} {
		mon.Track(id)
	}
	mon.Start()
	engine.RunUntil(10 * time.Second) // warm heartbeat history
	for _, id := range []int64{42, 7, 99, 3, 61} {
		mon.Kill(id)
	}
	engine.RunUntil(25 * time.Second)
	if len(order) != 5 {
		t.Fatalf("detected %d of 5 killed nodes: %v", len(order), order)
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("detections out of ID order: %v", order)
		}
	}
}
