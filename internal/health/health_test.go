package health

import (
	"testing"
	"time"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"", ModeOracle, true},
		{"oracle", ModeOracle, true},
		{"timeout", ModeTimeout, true},
		{"phi", ModePhi, true},
		{"bogus", ModeOracle, false},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

// beat feeds n regular heartbeats at the given interval and returns the last
// arrival time.
func beat(d *Detector, n int, interval time.Duration) time.Duration {
	var now time.Duration
	for i := 0; i < n; i++ {
		now = time.Duration(i) * interval
		d.Heartbeat(now)
	}
	return now
}

// firstSuspectAfter scans forward from last in small steps and returns the
// silence at which the detector first suspects.
func firstSuspectAfter(d *Detector, last time.Duration) time.Duration {
	const step = 10 * time.Millisecond
	for s := step; s <= 20*time.Second; s += step {
		if d.Suspect(last + s) {
			return s
		}
	}
	return -1
}

// TestDetectorTimeoutThreshold: the timeout detector fires once the silence
// reaches TimeoutFactor heartbeat intervals, and not a moment before.
func TestDetectorTimeoutThreshold(t *testing.T) {
	d := NewDetector(DetectorConfig{Mode: ModeTimeout, Interval: time.Second})
	last := beat(d, 10, time.Second)
	if d.Suspect(last + 3400*time.Millisecond) {
		t.Fatal("timeout detector suspected before 3.5 intervals of silence")
	}
	if !d.Suspect(last + 3500*time.Millisecond) {
		t.Fatal("timeout detector did not suspect at 3.5 intervals of silence")
	}
}

// TestDetectorPhiBeatsTimeout: with the same heartbeat history, phi-accrual
// must suspect strictly earlier than the plain timeout, while still tolerating
// the 2-interval silence a single lost heartbeat causes (the zero-false-
// positive property under the chaos profiles' loss accumulator).
func TestDetectorPhiBeatsTimeout(t *testing.T) {
	phi := NewDetector(DetectorConfig{Mode: ModePhi, Interval: time.Second})
	to := NewDetector(DetectorConfig{Mode: ModeTimeout, Interval: time.Second})
	lastPhi := beat(phi, 10, time.Second)
	lastTo := beat(to, 10, time.Second)

	if phi.Suspect(lastPhi + 2*time.Second) {
		t.Fatal("phi detector suspected a single lost heartbeat (2-interval silence)")
	}
	phiAt := firstSuspectAfter(phi, lastPhi)
	toAt := firstSuspectAfter(to, lastTo)
	if phiAt <= 0 || toAt <= 0 {
		t.Fatalf("a detector never fired: phi=%v timeout=%v", phiAt, toAt)
	}
	if phiAt >= toAt {
		t.Fatalf("phi detection latency %v is not strictly below timeout's %v", phiAt, toAt)
	}
}

// TestDetectorMaxSilenceCap: even when lossy history has inflated the
// adaptive estimate far past the send interval, the hard MaxSilence cap
// fires — this is what makes DetectorConfig.Bound provable.
func TestDetectorMaxSilenceCap(t *testing.T) {
	cfg := DetectorConfig{Mode: ModePhi, Interval: time.Second}.Defaulted()
	d := NewDetector(cfg)
	// Every gap observed was 5 s (heavy loss): the phi estimate alone would
	// tolerate silences far beyond 6 s.
	last := beat(d, 10, 5*time.Second)
	if got := firstSuspectAfter(d, last); got <= 0 || got > cfg.MaxSilence {
		t.Fatalf("suspicion at silence %v, want within the MaxSilence cap %v", got, cfg.MaxSilence)
	}
	if cfg.Bound() != cfg.MaxSilence+cfg.CheckEvery {
		t.Fatalf("Bound() = %v, want MaxSilence+CheckEvery = %v", cfg.Bound(), cfg.MaxSilence+cfg.CheckEvery)
	}
}

// TestOverloadLadderHysteresis walks one node up and down the ladder and
// checks every gate plus the no-flapping property around a threshold.
func TestOverloadLadderHysteresis(t *testing.T) {
	o, err := NewOverload(OverloadConfig{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	const id, cap = 1, 100

	if s := o.Observe(id, 69, cap); s != StateNormal {
		t.Fatalf("occupancy 0.69 -> %v, want normal", s)
	}
	if s := o.Observe(id, 70, cap); s != StateDegraded {
		t.Fatalf("occupancy 0.70 -> %v, want degraded", s)
	}
	// Oscillating just below the entry threshold must NOT drop the state:
	// exit needs occupancy under enterAt - Hysteresis = 0.55.
	for i := 0; i < 10; i++ {
		o.Observe(id, 69, cap)
		o.Observe(id, 70, cap)
	}
	if s := o.State(id); s != StateDegraded {
		t.Fatalf("state flapped to %v while oscillating around the threshold", s)
	}
	if s := o.Observe(id, 56, cap); s != StateDegraded {
		t.Fatalf("occupancy 0.56 -> %v, want still degraded (hysteresis)", s)
	}
	if s := o.Observe(id, 54, cap); s != StateNormal {
		t.Fatalf("occupancy 0.54 -> %v, want normal again", s)
	}

	// The gates, rung by rung.
	o.Observe(id, 85, cap)
	if o.AllowBackup(id) {
		t.Fatal("shedding node still advertised as a backup")
	}
	if !o.Admit(id) {
		t.Fatal("shedding node refused a join (that is Rejecting's job)")
	}
	o.Observe(id, 95, cap)
	if o.Admit(id) {
		t.Fatal("rejecting node admitted a join")
	}
	if o.ShouldMigrate(id) {
		t.Fatal("rejecting node asked for migration (that is Migrating's job)")
	}
	o.Observe(id, 100, cap)
	if !o.ShouldMigrate(id) {
		t.Fatal("fully loaded node did not ask for migration")
	}
	if got := o.LevelCap(id, 5); got != 5-int(StateMigrating) {
		t.Fatalf("LevelCap at migrating = %d, want startLevel-4", got)
	}
	if got := o.LevelCap(id, 2); got != 1 {
		t.Fatalf("LevelCap floors at 1, got %d", got)
	}

	o.Forget(id)
	if s := o.State(id); s != StateNormal {
		t.Fatalf("forgotten node reports %v, want normal", s)
	}
}

// TestBreakerOneProbePerHalfOpenWindow is the acceptance criterion: after the
// breaker opens, each half-open window admits exactly one failover probe, and
// a failed probe re-opens the window clock.
func TestBreakerOneProbePerHalfOpenWindow(t *testing.T) {
	b, err := NewBreaker(BreakerConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultBreakerConfig()
	now := time.Duration(0)

	// Three consecutive failures trip it.
	for i := 0; i < cfg.FailureThreshold; i++ {
		if !b.Allow(now) {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.RecordFailure(now)
	}
	if b.State(now) != BreakerOpen {
		t.Fatalf("state = %v after %d failures, want open", b.State(now), cfg.FailureThreshold)
	}
	if b.Allow(now + cfg.OpenFor/2) {
		t.Fatal("open breaker admitted a request before the probe window")
	}

	// First half-open window: exactly one probe.
	now += cfg.OpenFor
	if !b.Allow(now) {
		t.Fatal("half-open breaker refused its first probe")
	}
	for i := 0; i < 5; i++ {
		if b.Allow(now) {
			t.Fatal("half-open breaker admitted a second probe in the same window")
		}
	}
	// The probe fails: open again, clock restarted at now.
	b.RecordFailure(now)
	if b.Allow(now + cfg.OpenFor - time.Millisecond) {
		t.Fatal("breaker admitted a request before the restarted window elapsed")
	}

	// Second window: the probe succeeds and the breaker closes.
	now += cfg.OpenFor
	if !b.Allow(now) {
		t.Fatal("half-open breaker refused its probe in the second window")
	}
	b.RecordSuccess(now)
	if b.State(now) != BreakerClosed {
		t.Fatalf("state = %v after a successful probe, want closed", b.State(now))
	}
	for i := 0; i < 3; i++ {
		if !b.Allow(now) {
			t.Fatal("closed breaker refused a request after recovery")
		}
		b.RecordSuccess(now)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewOverload(OverloadConfig{DegradeAt: 0.9, ShedAt: 0.8, RejectAt: 0.95, MigrateAt: 1, Hysteresis: 0.1}, nil, nil); err == nil {
		t.Fatal("unordered overload thresholds validated")
	}
	if _, err := NewBreaker(BreakerConfig{FailureThreshold: 0, OpenFor: time.Second, HalfOpenProbes: 1, SuccessThreshold: 1}, nil); err == nil {
		t.Fatal("zero FailureThreshold validated")
	}
}
