// Package health implements the self-protective mechanisms layered on the
// CloudFog control plane: heartbeat-based failure detection (phi-accrual and
// plain-timeout, replacing the fault injector's oracle detection-delay draw),
// the supernode overload-degradation ladder, and the cloud-fallback circuit
// breaker. Every component is a pure function of the timestamps it is fed, so
// the same code runs on the deterministic sim engine and against wall-clock
// time on the live testbed.
package health

import (
	"fmt"
	"math"
	"time"
)

// Mode selects the failure-detection algorithm.
type Mode int

const (
	// ModeOracle keeps the fault injector's PR-4 behavior: detection delay
	// is a uniform draw in (0, Detect], no heartbeats exist. The monitor is
	// never constructed in this mode.
	ModeOracle Mode = iota
	// ModeTimeout suspects a node once no heartbeat arrived for
	// TimeoutFactor heartbeat intervals.
	ModeTimeout
	// ModePhi is phi-accrual detection: suspicion when the phi value of the
	// current heartbeat silence crosses PhiThreshold.
	ModePhi
)

// ParseMode maps a CLI flag string onto a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "oracle":
		return ModeOracle, nil
	case "timeout":
		return ModeTimeout, nil
	case "phi":
		return ModePhi, nil
	}
	return ModeOracle, fmt.Errorf("health: unknown detector mode %q (oracle|timeout|phi)", s)
}

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeOracle:
		return "oracle"
	case ModeTimeout:
		return "timeout"
	case ModePhi:
		return "phi"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DetectorConfig parameterizes one failure detector.
type DetectorConfig struct {
	Mode Mode
	// Interval is the heartbeat send period.
	Interval time.Duration
	// Window is the inter-arrival sample window (phi mode).
	Window int
	// PhiThreshold is the suspicion level (phi mode). Phi 6 means the
	// detector estimates a 1-in-10^6 chance the node is still alive.
	PhiThreshold float64
	// TimeoutFactor is the silence threshold in heartbeat intervals
	// (timeout mode).
	TimeoutFactor float64
	// MaxSilence is a hard suspicion cap in both modes: a node silent this
	// long is suspected regardless of the adaptive estimate, which makes
	// Bound provable whatever variance loss injected into the window.
	MaxSilence time.Duration
	// CheckEvery is the evaluation cadence.
	CheckEvery time.Duration
}

// sigmaFloorFrac keeps the phi denominator meaningful when heartbeats arrive
// with (near-)zero jitter, as deterministic sim heartbeats do: the standard
// deviation never drops below this fraction of the mean interval. The floor
// also sets the detection point — phi crosses 6 at mean + 4.75 sigma, i.e.
// ~2.7 intervals of silence — strictly earlier than the 3.5-interval timeout
// while still clearing the 2-interval silence a single lost heartbeat causes.
const sigmaFloorFrac = 0.35

// Defaulted fills zero fields with the canonical values.
func (c DetectorConfig) Defaulted() DetectorConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.PhiThreshold <= 0 {
		c.PhiThreshold = 6
	}
	if c.TimeoutFactor <= 0 {
		c.TimeoutFactor = 3.5
	}
	if c.MaxSilence <= 0 {
		c.MaxSilence = 6 * c.Interval
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = c.Interval / 4
		if c.CheckEvery <= 0 {
			c.CheckEvery = c.Interval
		}
	}
	return c
}

// Bound returns the provable worst-case detection latency measured from the
// moment a node dies: the silence since the last heartbeat reaches MaxSilence
// at the latest (the hard cap fires even if the adaptive estimate has been
// inflated by lossy intervals), and the evaluation ticker adds at most one
// check period on top.
func (c DetectorConfig) Bound() time.Duration {
	c = c.Defaulted()
	return c.MaxSilence + c.CheckEvery
}

// Detector tracks one node's heartbeat history. It is a passive value: feed
// it Heartbeat timestamps and ask Suspect at evaluation points. Time is any
// monotonic Duration clock — the sim engine's virtual now or a wall-clock
// offset — which is what lets the sim and live paths share the arithmetic.
type Detector struct {
	cfg  DetectorConfig
	last time.Duration
	// Inter-arrival window, a running ring over the last cfg.Window gaps.
	gaps  []time.Duration
	next  int
	sum   float64 // seconds
	sumSq float64 // seconds^2
	seen  bool
	// sync marks the first heartbeat after a Reset as a phase re-base: its
	// gap spans only the remainder of the node's send phase, and letting that
	// partial interval into a near-empty window collapses the phi mean and
	// fires a false positive one silence later.
	sync bool
}

// NewDetector returns a detector with the (defaulted) config.
func NewDetector(cfg DetectorConfig) *Detector {
	cfg = cfg.Defaulted()
	return &Detector{cfg: cfg, gaps: make([]time.Duration, 0, cfg.Window)}
}

// Reset clears the history and re-bases the silence clock at now — used when
// a recovered node re-registers as a fresh instance.
func (d *Detector) Reset(now time.Duration) {
	d.gaps = d.gaps[:0]
	d.next = 0
	d.sum, d.sumSq = 0, 0
	d.last = now
	d.seen = true
	d.sync = true
}

// Heartbeat records an arrival at now.
func (d *Detector) Heartbeat(now time.Duration) {
	if !d.seen || d.sync {
		d.seen = true
		d.sync = false
		d.last = now
		return
	}
	gap := now - d.last
	d.last = now
	if gap <= 0 {
		return
	}
	// Arrival bursts — a paused receiver draining its queue delivers many
	// heartbeats almost at once — would collapse the window mean and make
	// the sender's normal cadence look like death afterward. A gap far below
	// the configured send interval says nothing about the sender's cadence,
	// only about delivery batching: re-base the silence clock but keep it
	// out of the statistics.
	if gap < d.cfg.Interval/4 {
		return
	}
	gs := gap.Seconds()
	if len(d.gaps) < cap(d.gaps) {
		d.gaps = append(d.gaps, gap)
	} else {
		old := d.gaps[d.next].Seconds()
		d.sum -= old
		d.sumSq -= old * old
		d.gaps[d.next] = gap
	}
	d.next = (d.next + 1) % cap(d.gaps)
	d.sum += gs
	d.sumSq += gs * gs
}

// mean returns the estimated inter-arrival mean in seconds, falling back to
// the configured interval before any sample exists.
func (d *Detector) mean() float64 {
	if len(d.gaps) == 0 {
		return d.cfg.Interval.Seconds()
	}
	return d.sum / float64(len(d.gaps))
}

// Phi returns the phi-accrual suspicion level of the current silence:
// -log10 of the Gaussian tail probability that a live node would stay silent
// this long, with the sigma floor keeping zero-jitter windows sane.
func (d *Detector) Phi(now time.Duration) float64 {
	if !d.seen {
		return 0
	}
	elapsed := (now - d.last).Seconds()
	if elapsed <= 0 {
		return 0
	}
	m := d.mean()
	sigma := sigmaFloorFrac * m
	if n := float64(len(d.gaps)); n > 1 {
		if v := d.sumSq/n - (d.sum/n)*(d.sum/n); v > sigma*sigma {
			sigma = math.Sqrt(v)
		}
	}
	if sigma <= 0 {
		return 0
	}
	z := (elapsed - m) / sigma
	tail := 0.5 * math.Erfc(z/math.Sqrt2)
	if tail <= 0 {
		return math.Inf(1)
	}
	return -math.Log10(tail)
}

// Silence returns how long the node has been quiet at now.
func (d *Detector) Silence(now time.Duration) time.Duration {
	if !d.seen {
		return 0
	}
	return now - d.last
}

// Suspect reports whether the detector considers the node failed at now.
func (d *Detector) Suspect(now time.Duration) bool {
	if !d.seen {
		return false
	}
	silence := now - d.last
	if silence >= d.cfg.MaxSilence {
		return true
	}
	switch d.cfg.Mode {
	case ModeTimeout:
		return silence.Seconds() >= d.cfg.TimeoutFactor*d.cfg.Interval.Seconds()
	case ModePhi:
		return d.Phi(now) >= d.cfg.PhiThreshold
	default:
		return false
	}
}
