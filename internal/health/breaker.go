package health

import (
	"fmt"
	"time"

	"cloudfog/internal/obs"
)

// BreakerState is the classic circuit-breaker triple.
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerConfig parameterizes the cloud-fallback circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures open the breaker.
	FailureThreshold int
	// OpenFor is how long the breaker stays open before the next probe
	// window — the deterministic probe schedule: exactly one transition to
	// half-open every OpenFor after the last failure.
	OpenFor time.Duration
	// HalfOpenProbes caps how many requests one half-open window admits.
	HalfOpenProbes int
	// SuccessThreshold is how many probe successes close the breaker.
	SuccessThreshold int
}

// DefaultBreakerConfig returns the canonical breaker tuning.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		FailureThreshold: 3,
		OpenFor:          30 * time.Second,
		HalfOpenProbes:   1,
		SuccessThreshold: 1,
	}
}

// Validate reports configuration errors.
func (c BreakerConfig) Validate() error {
	switch {
	case c.FailureThreshold < 1:
		return fmt.Errorf("health: FailureThreshold %d < 1", c.FailureThreshold)
	case c.OpenFor <= 0:
		return fmt.Errorf("health: OpenFor %v is not positive", c.OpenFor)
	case c.HalfOpenProbes < 1:
		return fmt.Errorf("health: HalfOpenProbes %d < 1", c.HalfOpenProbes)
	case c.SuccessThreshold < 1:
		return fmt.Errorf("health: SuccessThreshold %d < 1", c.SuccessThreshold)
	}
	return nil
}

// Breaker is a time-fed circuit breaker: every decision takes the current
// time as a parameter, so the same breaker runs on the sim clock and on
// wall-clock offsets, and the probe schedule is fully deterministic.
// Not safe for concurrent use.
type Breaker struct {
	cfg      BreakerConfig
	state    BreakerState
	failures int
	succ     int
	openedAt time.Duration
	probes   int
	stats    *obs.HealthStats
}

// NewBreaker builds a breaker; zero-value cfg means defaults. stats may be
// nil.
func NewBreaker(cfg BreakerConfig, stats *obs.HealthStats) (*Breaker, error) {
	if cfg == (BreakerConfig{}) {
		cfg = DefaultBreakerConfig()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Breaker{cfg: cfg, stats: stats}, nil
}

// State returns the breaker state at now, applying the open→half-open
// transition if the open window has elapsed.
func (b *Breaker) State(now time.Duration) BreakerState {
	if b.state == BreakerOpen && now-b.openedAt >= b.cfg.OpenFor {
		b.state = BreakerHalfOpen
		b.probes = 0
		b.succ = 0
	}
	return b.state
}

// Allow reports whether a request may pass at now. In half-open it admits at
// most HalfOpenProbes probes per window; everything else waits for the
// probes' verdict.
func (b *Breaker) Allow(now time.Duration) bool {
	switch b.State(now) {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			if b.stats != nil {
				b.stats.BreakerProbes.Inc()
			}
			return true
		}
		b.reject(now)
		return false
	default:
		b.reject(now)
		return false
	}
}

func (b *Breaker) reject(now time.Duration) {
	if b.stats != nil {
		b.stats.BreakerRejects.Inc()
	}
}

// RecordSuccess feeds a request outcome. Enough half-open successes close
// the breaker.
func (b *Breaker) RecordSuccess(now time.Duration) {
	switch b.State(now) {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		b.succ++
		if b.succ >= b.cfg.SuccessThreshold {
			b.state = BreakerClosed
			b.failures = 0
			b.succ = 0
			if b.stats != nil && b.stats.Sink != nil {
				b.stats.Sink(obs.Event{Kind: obs.EventHealthBreaker, At: now, A: int64(BreakerClosed)})
			}
		}
	}
}

// RecordFailure feeds a request outcome. Consecutive closed-state failures
// past the threshold — or any half-open probe failure — open the breaker and
// restart the probe clock at now.
func (b *Breaker) RecordFailure(now time.Duration) {
	switch b.State(now) {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip(now)
		}
	case BreakerHalfOpen:
		b.trip(now)
	case BreakerOpen:
		// A straggler from before the trip; the clock does not restart.
	}
}

func (b *Breaker) trip(now time.Duration) {
	b.state = BreakerOpen
	b.openedAt = now
	b.failures = 0
	b.succ = 0
	if b.stats != nil {
		b.stats.BreakerOpens.Inc()
		if b.stats.Sink != nil {
			b.stats.Sink(obs.Event{Kind: obs.EventHealthBreaker, At: now, A: int64(BreakerOpen)})
		}
	}
}
