package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cloudfog/internal/geo"
	"cloudfog/internal/sim"
)

func TestOneWaySymmetric(t *testing.T) {
	m := DefaultModel(1)
	a := Endpoint{ID: 1, Pos: geo.Point{X: 100, Y: 100}, Class: ClassNode}
	b := Endpoint{ID: 2, Pos: geo.Point{X: 2000, Y: 1500}, Class: ClassDatacenter}
	if m.OneWay(a, b) != m.OneWay(b, a) {
		t.Fatal("OneWay not symmetric")
	}
}

func TestOneWayDeterministic(t *testing.T) {
	a := Endpoint{ID: 7, Pos: geo.Point{X: 10, Y: 20}, Class: ClassNode}
	b := Endpoint{ID: 8, Pos: geo.Point{X: 300, Y: 400}, Class: ClassNode}
	m1, m2 := DefaultModel(42), DefaultModel(42)
	if m1.OneWay(a, b) != m2.OneWay(a, b) {
		t.Fatal("same seed produced different latency")
	}
	m3 := DefaultModel(43)
	if m1.PairNoise(7, 8) == m3.PairNoise(7, 8) {
		t.Fatal("different seeds produced identical pair noise (vanishingly unlikely)")
	}
}

func TestSelfLatencyIsBase(t *testing.T) {
	m := DefaultModel(1)
	a := Endpoint{ID: 5, Pos: geo.Point{X: 1, Y: 1}, Class: ClassNode}
	if got := m.OneWay(a, a); got != m.Base {
		t.Fatalf("self latency = %v, want base %v", got, m.Base)
	}
}

func TestAccessClassDistinction(t *testing.T) {
	m := DefaultModel(1)
	if got := m.Access(3, ClassDatacenter); got != m.ProvisionedAccess {
		t.Fatalf("datacenter access = %v, want %v", got, m.ProvisionedAccess)
	}
	if got := m.Access(3, ClassServer); got != m.ProvisionedAccess {
		t.Fatalf("server access = %v, want %v", got, m.ProvisionedAccess)
	}
	// Regular node access is stable per node.
	if m.Access(3, ClassNode) != m.Access(3, ClassNode) {
		t.Fatal("node access not stable")
	}
}

func TestDistanceIncreasesLatency(t *testing.T) {
	m := DefaultModel(1)
	a := Endpoint{ID: 1, Pos: geo.Point{X: 0, Y: 0}, Class: ClassDatacenter}
	near := Endpoint{ID: 2, Pos: geo.Point{X: 100, Y: 0}, Class: ClassDatacenter}
	far := Endpoint{ID: 2, Pos: geo.Point{X: 4000, Y: 0}, Class: ClassDatacenter}
	// Same IDs => same access and noise; only distance differs.
	if m.OneWay(a, near) >= m.OneWay(a, far) {
		t.Fatal("longer distance did not increase latency")
	}
	wantDelta := time.Duration(3900 * float64(m.PerKm))
	gotDelta := m.OneWay(a, far) - m.OneWay(a, near)
	if gotDelta != wantDelta {
		t.Fatalf("distance delta = %v, want %v", gotDelta, wantDelta)
	}
}

func TestAccessMedianCalibration(t *testing.T) {
	m := DefaultModel(9)
	below := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.Access(NodeID(i), ClassNode) <= m.AccessMedian {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("access median calibration off: %.3f below median", frac)
	}
}

func TestPairNoiseMedianCalibration(t *testing.T) {
	m := DefaultModel(10)
	below := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.PairNoise(NodeID(i), NodeID(i+100000)) <= m.NoiseMedian {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("noise median calibration off: %.3f below median", frac)
	}
}

// TestChoyCalibration reproduces the measurement the paper's motivation
// rests on (Choy et al., NetGames'12): with ~13 provisioned datacenters in
// the US, fewer than 70% of end users see latency within the 80 ms network
// budget — but well over half do.
func TestChoyCalibration(t *testing.T) {
	m := DefaultModel(2026)
	r := sim.NewRand(7)
	region := geo.USRegion()
	dcPts := geo.SpreadPoints(region, 13, r)
	dcs := make([]Endpoint, len(dcPts))
	for i, p := range dcPts {
		dcs[i] = Endpoint{ID: NodeID(1_000_000 + i), Pos: p, Class: ClassDatacenter}
	}
	placer := geo.DefaultUSPlacer()
	const players = 4000
	covered := 0
	for i := 0; i < players; i++ {
		p := Endpoint{ID: NodeID(i), Pos: placer.Place(r), Class: ClassNode}
		// Player connects to the geographically closest datacenter, as in
		// the paper's coverage definition.
		best := dcs[0]
		for _, dc := range dcs[1:] {
			if p.Pos.DistanceTo(dc.Pos) < p.Pos.DistanceTo(best.Pos) {
				best = dc
			}
		}
		if m.OneWay(p, best) <= 80*time.Millisecond {
			covered++
		}
	}
	frac := float64(covered) / players
	if frac >= 0.70 {
		t.Fatalf("13-DC coverage at 80ms = %.3f, want < 0.70 (Choy et al.)", frac)
	}
	if frac < 0.50 {
		t.Fatalf("13-DC coverage at 80ms = %.3f, implausibly low (want >= 0.50)", frac)
	}
}

func TestRTTIsTwiceOneWay(t *testing.T) {
	m := DefaultModel(1)
	a := Endpoint{ID: 1, Pos: geo.Point{X: 0, Y: 0}, Class: ClassNode}
	b := Endpoint{ID: 2, Pos: geo.Point{X: 500, Y: 500}, Class: ClassNode}
	if m.RTT(a, b) != 2*m.OneWay(a, b) {
		t.Fatal("RTT != 2 * OneWay")
	}
}

func TestMatrixMatchesOneWay(t *testing.T) {
	m := DefaultModel(3)
	r := sim.NewRand(4)
	placer := geo.DefaultUSPlacer()
	nodes := make([]Endpoint, 20)
	for i := range nodes {
		nodes[i] = Endpoint{ID: NodeID(i), Pos: placer.Place(r), Class: ClassNode}
	}
	mat := m.Matrix(nodes)
	for i := range nodes {
		for j := range nodes {
			if mat[i][j] != m.OneWay(nodes[i], nodes[j]) {
				t.Fatalf("matrix[%d][%d] mismatch", i, j)
			}
			if mat[i][j] != mat[j][i] {
				t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestLatenciesArePositive(t *testing.T) {
	m := DefaultModel(5)
	r := sim.NewRand(6)
	placer := geo.DefaultUSPlacer()
	for i := 0; i < 5000; i++ {
		a := Endpoint{ID: NodeID(i), Pos: placer.Place(r), Class: ClassNode}
		b := Endpoint{ID: NodeID(i + 100000), Pos: placer.Place(r), Class: ClassNode}
		if l := m.OneWay(a, b); l <= 0 {
			t.Fatalf("non-positive latency %v", l)
		}
	}
}

// TestSupernodeSelectionCollapsesNoise verifies the property the fog design
// relies on: the minimum latency over many nearby candidate supernodes is
// far below the latency to a datacenter chosen from a small fixed set.
func TestSupernodeSelectionCollapsesNoise(t *testing.T) {
	m := DefaultModel(11)
	r := sim.NewRand(12)
	placer := geo.DefaultUSPlacer()

	const trials = 500
	var sumSN, sumDC time.Duration
	for trial := 0; trial < trials; trial++ {
		player := Endpoint{ID: NodeID(900000 + trial), Pos: placer.Place(r), Class: ClassNode}

		// Min latency over 10 candidate supernodes within ~200 km.
		bestSN := time.Duration(1 << 62)
		for i := 0; i < 10; i++ {
			sn := Endpoint{
				ID:    NodeID(500000 + trial*10 + i),
				Pos:   geo.USRegion().Clamp(geo.Point{X: player.Pos.X + float64(i*20), Y: player.Pos.Y + 10}),
				Class: ClassNode,
			}
			if l := m.OneWay(player, sn); l < bestSN {
				bestSN = l
			}
		}
		// One datacenter 1500 km away.
		dc := Endpoint{
			ID:    NodeID(1000000 + trial),
			Pos:   geo.USRegion().Clamp(geo.Point{X: player.Pos.X + 1500, Y: player.Pos.Y}),
			Class: ClassDatacenter,
		}
		sumSN += bestSN
		sumDC += m.OneWay(player, dc)
	}
	if sumSN >= sumDC {
		t.Fatalf("mean min-over-supernodes latency (%v) not below mean remote-DC latency (%v)",
			sumSN/trials, sumDC/trials)
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m := DefaultModel(12345)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got, m)
	}
	// Reloaded models produce identical latencies.
	a := Endpoint{ID: 1, Pos: geo.Point{X: 100, Y: 200}, Class: ClassNode}
	b := Endpoint{ID: 2, Pos: geo.Point{X: 900, Y: 300}, Class: ClassSupernode}
	if got.OneWay(a, b) != m.OneWay(a, b) {
		t.Fatal("reloaded model draws different latencies")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"unknown_field": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Load(strings.NewReader(`{"seed":1,"noise_sigma":-3}`)); err == nil {
		t.Fatal("negative sigma accepted")
	}
}

func TestSaveLoadPreservesPairwiseLatencies(t *testing.T) {
	// Property over a whole population: a reloaded model reproduces the
	// full pairwise latency matrix bit-for-bit, across every endpoint
	// class, because all draws are pure functions of the saved parameters.
	m := DefaultModel(777)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(42)
	classes := []Class{ClassNode, ClassSupernode, ClassDatacenter}
	eps := make([]Endpoint, 40)
	for i := range eps {
		eps[i] = Endpoint{
			ID:    NodeID(i + 1),
			Pos:   geo.Point{X: rng.Float64() * 4000, Y: rng.Float64() * 2500},
			Class: classes[i%len(classes)],
		}
	}
	want := m.Matrix(eps)
	have := got.Matrix(eps)
	for i := range want {
		for j := range want[i] {
			if want[i][j] != have[i][j] {
				t.Fatalf("latency [%d][%d] diverged after reload: %v vs %v",
					i, j, want[i][j], have[i][j])
			}
		}
	}
}
