package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// modelJSON is the stable serialized form of a Model: durations in
// nanoseconds, field names frozen independently of the Go struct.
type modelJSON struct {
	Seed                    int64   `json:"seed"`
	BaseNs                  int64   `json:"base_ns"`
	PerKmNs                 int64   `json:"per_km_ns"`
	AccessMedianNs          int64   `json:"access_median_ns"`
	AccessSigma             float64 `json:"access_sigma"`
	SupernodeAccessMedianNs int64   `json:"supernode_access_median_ns"`
	SupernodeAccessSigma    float64 `json:"supernode_access_sigma"`
	ProvisionedAccessNs     int64   `json:"provisioned_access_ns"`
	NoiseMedianNs           int64   `json:"noise_median_ns"`
	NoiseSigma              float64 `json:"noise_sigma"`
	SupernodeBackboneFactor float64 `json:"supernode_backbone_factor"`
}

// Save writes the model's parameters as JSON, so a calibrated latency
// landscape can be committed alongside experiment results and reloaded
// bit-for-bit (all draws are pure functions of these parameters).
func (m Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(modelJSON{
		Seed:                    m.Seed,
		BaseNs:                  int64(m.Base),
		PerKmNs:                 int64(m.PerKm),
		AccessMedianNs:          int64(m.AccessMedian),
		AccessSigma:             m.AccessSigma,
		SupernodeAccessMedianNs: int64(m.SupernodeAccessMedian),
		SupernodeAccessSigma:    m.SupernodeAccessSigma,
		ProvisionedAccessNs:     int64(m.ProvisionedAccess),
		NoiseMedianNs:           int64(m.NoiseMedian),
		NoiseSigma:              m.NoiseSigma,
		SupernodeBackboneFactor: m.SupernodeBackboneFactor,
	})
}

// Load reads a model saved with Save.
func Load(r io.Reader) (Model, error) {
	var j modelJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return Model{}, fmt.Errorf("trace: load model: %w", err)
	}
	m := Model{
		Seed:                    j.Seed,
		Base:                    time.Duration(j.BaseNs),
		PerKm:                   time.Duration(j.PerKmNs),
		AccessMedian:            time.Duration(j.AccessMedianNs),
		AccessSigma:             j.AccessSigma,
		SupernodeAccessMedian:   time.Duration(j.SupernodeAccessMedianNs),
		SupernodeAccessSigma:    j.SupernodeAccessSigma,
		ProvisionedAccess:       time.Duration(j.ProvisionedAccessNs),
		NoiseMedian:             time.Duration(j.NoiseMedianNs),
		NoiseSigma:              j.NoiseSigma,
		SupernodeBackboneFactor: j.SupernodeBackboneFactor,
	}
	if m.PerKm < 0 || m.AccessSigma < 0 || m.NoiseSigma < 0 {
		return Model{}, fmt.Errorf("trace: load model: negative parameters")
	}
	return m, nil
}
