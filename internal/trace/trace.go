// Package trace synthesizes a PlanetLab-like pairwise latency landscape.
//
// The CloudFog paper drives its PeerSim simulation with a latency trace
// collected from PlanetLab and validates on PlanetLab itself. We do not have
// that trace, so this package generates a deterministic synthetic
// equivalent. A one-way latency between two nodes decomposes into
//
//	oneway(a,b) = access(a) + access(b) + distance(a,b)·perKm + noise(a,b)
//
// where access(x) is a per-node last-mile delay (lognormal across nodes:
// most players have decent broadband, a heavy tail does not), noise(a,b) is
// a per-pair routing-quality component (lognormal: PlanetLab pairs routinely
// see tens of milliseconds beyond geographic distance), and the distance
// term models great-circle propagation with route inflation. Datacenters and
// edge servers get a small fixed access delay: their links are provisioned.
//
// Every component is a pure function of (Seed, node IDs), so the same
// "trace" can drive both the simulator and the loopback-TCP testbed, and a
// run is reproducible without storing an O(n²) matrix.
//
// Calibration targets (see trace_test.go): with 13 provisioned datacenters
// spread over the US and metro-clustered players, fewer than ~70% of players
// see one-way latency <= 80 ms to their closest datacenter — the Choy et al.
// measurement the paper builds its motivation on.
package trace

import (
	"math"
	"time"

	"cloudfog/internal/geo"
)

// NodeID identifies a node for latency-trace purposes. IDs must be stable
// across a run; they seed the deterministic per-node and per-pair draws.
type NodeID int64

// Class describes how well provisioned a node's network attachment is.
type Class int

const (
	// ClassNode is a regular end host (player or supernode): last-mile
	// access delay drawn from the lognormal access distribution.
	ClassNode Class = iota
	// ClassDatacenter is a cloud datacenter with a provisioned link.
	ClassDatacenter
	// ClassServer is an EdgeCloud-style deployed server: provisioned, like
	// a datacenter, but typically placed nearer users.
	ClassServer
	// ClassSupernode is a fog supernode: an end host, but one vetted for
	// stable, well-provisioned connectivity (paper §III-A1 requires
	// contributors to provide credentials and sign contracts, and
	// candidates are selected for their hardware and bandwidth), so its
	// last-mile delay distribution is tighter than a random player's.
	ClassSupernode
)

// Model generates the synthetic latency landscape. The zero value is not
// useful; start from DefaultModel.
type Model struct {
	// Seed makes all per-node and per-pair draws deterministic.
	Seed int64
	// Base is a fixed per-path overhead (serialization, first-hop).
	Base time.Duration
	// PerKm is the effective one-way propagation delay per kilometer,
	// including route inflation (fiber is ~5 µs/km; routes are ~1.6x
	// longer than geodesics).
	PerKm time.Duration
	// AccessMedian and AccessSigma parameterize the lognormal per-node
	// last-mile delay for ClassNode endpoints.
	AccessMedian time.Duration
	AccessSigma  float64
	// ProvisionedAccess is the access delay for datacenters and servers.
	ProvisionedAccess time.Duration
	// SupernodeAccessMedian and SupernodeAccessSigma parameterize the
	// lognormal last-mile delay for ClassSupernode endpoints.
	SupernodeAccessMedian time.Duration
	SupernodeAccessSigma  float64
	// NoiseMedian and NoiseSigma parameterize the lognormal per-pair
	// routing-quality component.
	NoiseMedian time.Duration
	NoiseSigma  float64
	// SupernodeBackboneFactor scales the pair noise on paths between a
	// supernode and provisioned infrastructure (datacenter or edge
	// server). Supernodes keep persistent, contracted connections to the
	// cloud over well-peered backbone routes (§III-A1 vets contributors),
	// so their update paths see far less routing badness than arbitrary
	// end-host pairs.
	SupernodeBackboneFactor float64
}

// DefaultModel returns the calibrated PlanetLab-like model used by all
// default experiment configurations.
func DefaultModel(seed int64) Model {
	return Model{
		Seed:                    seed,
		Base:                    1 * time.Millisecond,
		PerKm:                   8 * time.Microsecond, // 5 µs/km fiber × 1.6 route inflation
		AccessMedian:            14 * time.Millisecond,
		AccessSigma:             0.7,
		SupernodeAccessMedian:   7 * time.Millisecond,
		SupernodeAccessSigma:    0.5,
		ProvisionedAccess:       1 * time.Millisecond,
		NoiseMedian:             38 * time.Millisecond,
		NoiseSigma:              0.85,
		SupernodeBackboneFactor: 0.3,
	}
}

// Access returns the deterministic last-mile delay of a node.
func (m Model) Access(id NodeID, class Class) time.Duration {
	switch class {
	case ClassDatacenter, ClassServer:
		return m.ProvisionedAccess
	case ClassSupernode:
		z := hashNormal(uint64(m.Seed), uint64(id), 0x9e3779b97f4a7c15)
		return time.Duration(float64(m.SupernodeAccessMedian) * math.Exp(m.SupernodeAccessSigma*z))
	default:
		z := hashNormal(uint64(m.Seed), uint64(id), 0x9e3779b97f4a7c15)
		return time.Duration(float64(m.AccessMedian) * math.Exp(m.AccessSigma*z))
	}
}

// PairNoise returns the deterministic routing-quality component for the
// unordered pair (a, b). It is symmetric: PairNoise(a,b) == PairNoise(b,a).
func (m Model) PairNoise(a, b NodeID) time.Duration {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	z := hashNormal(uint64(m.Seed), uint64(lo), uint64(hi))
	d := float64(m.NoiseMedian) * math.Exp(m.NoiseSigma*z)
	return time.Duration(d)
}

// Endpoint bundles what the model needs to know about one end of a path.
type Endpoint struct {
	ID    NodeID
	Pos   geo.Point
	Class Class
}

// Source supplies one-way latencies between endpoints. The synthetic Model
// implements it for simulation; the testbed package implements it with real
// TCP round-trip measurements over injected delays, so the same CloudFog
// code runs against both (the paper's PeerSim + PlanetLab split).
type Source interface {
	OneWay(a, b Endpoint) time.Duration
}

var _ Source = Model{}

// OneWay returns the one-way latency from a to b. It is symmetric and
// deterministic for a given model seed.
func (m Model) OneWay(a, b Endpoint) time.Duration {
	if a.ID == b.ID {
		return m.Base
	}
	dist := a.Pos.DistanceTo(b.Pos)
	noise := m.PairNoise(a.ID, b.ID)
	if m.SupernodeBackboneFactor > 0 && supernodeBackbone(a.Class, b.Class) {
		noise = time.Duration(float64(noise) * m.SupernodeBackboneFactor)
	}
	return m.Base +
		m.Access(a.ID, a.Class) +
		m.Access(b.ID, b.Class) +
		time.Duration(dist*float64(m.PerKm)) +
		noise
}

// supernodeBackbone reports whether the pair is a supernode talking to
// provisioned infrastructure.
func supernodeBackbone(a, b Class) bool {
	provisioned := func(c Class) bool { return c == ClassDatacenter || c == ClassServer }
	return (a == ClassSupernode && provisioned(b)) || (b == ClassSupernode && provisioned(a))
}

// RTT returns the round-trip latency between a and b (twice the one-way
// latency; the synthetic landscape is symmetric).
func (m Model) RTT(a, b Endpoint) time.Duration {
	return 2 * m.OneWay(a, b)
}

// Matrix materializes the full pairwise one-way latency matrix for a small
// node set — used to configure the loopback-TCP testbed, where delays must
// be known up front.
func (m Model) Matrix(nodes []Endpoint) [][]time.Duration {
	n := len(nodes)
	mat := make([][]time.Duration, n)
	flat := make([]time.Duration, n*n)
	for i := range mat {
		mat[i], flat = flat[:n], flat[n:]
		for j := range nodes {
			mat[i][j] = m.OneWay(nodes[i], nodes[j])
		}
	}
	return mat
}

// splitmix64 is the SplitMix64 mixing function: a fast, high-quality
// avalanche hash used to derive deterministic per-node/per-pair randomness.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashNormal derives a standard-normal variate from three 64-bit inputs via
// SplitMix64 mixing and the Box–Muller transform.
func hashNormal(a, b, c uint64) float64 {
	h1 := splitmix64(a ^ splitmix64(b) ^ splitmix64(splitmix64(c)))
	h2 := splitmix64(h1)
	u1 := uniform64(h1)
	u2 := uniform64(h2)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// uniform64 maps a 64-bit hash to a uniform float in (0, 1).
func uniform64(h uint64) float64 {
	u := (float64(h>>11) + 0.5) / (1 << 53)
	return u
}
