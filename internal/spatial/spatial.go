// Package spatial provides a uniform-grid spatial index over geolocated
// points with incremental insert/remove and deterministic k-nearest
// queries.
//
// The CloudFog assignment protocol shortlists the geographically closest
// supernodes for every joining player (paper §III-A3). At paper scale that
// shortlist runs for every one of 10,000 players at every sweep point of
// every figure, and on every failover; a full scan-and-sort over all
// registered supernodes is the dominant cost of the whole evaluation. The
// grid turns that into an expanding-ring search over the few cells around
// the query point, with a bounded max-heap in place of a full sort.
//
// Determinism contract: neighbors are ordered by squared distance with
// ties broken on ascending ID. The ordering is a strict total order over
// distinct IDs, so query results never depend on insertion order, removal
// history, or internal bucket layout — the same index contents always
// produce byte-identical shortlists.
package spatial

import "math"

// Neighbor is one k-nearest query result.
type Neighbor struct {
	// ID identifies the indexed point.
	ID int64
	// Dist2 is the squared Euclidean distance to the query point.
	Dist2 float64
}

// worse reports whether a ranks strictly after b in query order
// (farther, or equally far with the larger ID). It is the max-heap
// ordering: the heap root is the worst retained candidate.
func worse(a, b Neighbor) bool {
	if a.Dist2 != b.Dist2 {
		return a.Dist2 > b.Dist2
	}
	return a.ID > b.ID
}

type entry struct {
	id   int64
	x, y float64
}

// Grid is a uniform-grid index over points on a [0,Width]×[0,Height]
// plane. Inserts and removes are incremental; the bucket geometry retunes
// itself (an amortized-O(1) rebucketing) as the point count grows or
// shrinks, keeping mean occupancy near targetPerCell. The zero value is
// not useful; use NewGrid.
//
// Grid is not safe for concurrent mutation; concurrent queries without
// writers are safe.
type Grid struct {
	width, height float64
	cols, rows    int
	cellW, cellH  float64
	minCell       float64 // min(cellW, cellH), the ring lower-bound unit
	cells         [][]entry
	cellOf        map[int64]int // id → bucket index
	n             int
}

const (
	// targetPerCell is the mean bucket occupancy after a retune.
	targetPerCell = 2.0
	// growLoad triggers a retune when mean occupancy exceeds it.
	growLoad = 6.0
	// minCells floors the grid so small indexes stay cheap to build.
	minCells = 16
)

// NewGrid returns an empty index over a width×height plane (kilometers in
// this repo, but any consistent unit works). Points outside the plane are
// clamped into the boundary cells, so out-of-range inserts are safe.
func NewGrid(width, height float64) *Grid {
	if width <= 0 {
		width = 1
	}
	if height <= 0 {
		height = 1
	}
	g := &Grid{width: width, height: height, cellOf: make(map[int64]int)}
	g.rebucket(minCells)
	return g
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return g.n }

// gridShape lays out ~want cells matching a width×height plane's aspect
// ratio — the single source of truth for bucket geometry, shared by
// rebucket and the exported CellGeometry.
func gridShape(width, height float64, want int) (cols, rows int) {
	if want < minCells {
		want = minCells
	}
	cols = int(math.Round(math.Sqrt(float64(want) * width / height)))
	if cols < 1 {
		cols = 1
	}
	rows = (want + cols - 1) / cols
	if rows < 1 {
		rows = 1
	}
	return cols, rows
}

// CellGeometry returns the bucket dimensions a Grid over a width×height
// plane uses once it has been tuned for n points (want = n/targetPerCell,
// floored at the minimum cell count) — the same arithmetic rebucket runs.
// The shard planner snaps kd-tree partition cuts to multiples of these
// dimensions: a cut landing on a cell boundary means no shortlist cell ever
// straddles two shards. Cells are anchored at the plane origin, so any
// multiple of cellW (cellH) is a vertical (horizontal) cell edge.
func CellGeometry(width, height float64, n int) (cellW, cellH float64) {
	if width <= 0 {
		width = 1
	}
	if height <= 0 {
		height = 1
	}
	cols, rows := gridShape(width, height, int(float64(n)/targetPerCell))
	return width / float64(cols), height / float64(rows)
}

// rebucket lays out ~want cells matching the plane's aspect ratio and
// redistributes every entry.
func (g *Grid) rebucket(want int) {
	cols, rows := gridShape(g.width, g.height, want)
	old := g.cells
	g.cols, g.rows = cols, rows
	g.cellW = g.width / float64(cols)
	g.cellH = g.height / float64(rows)
	g.minCell = math.Min(g.cellW, g.cellH)
	g.cells = make([][]entry, cols*rows)
	for _, bucket := range old {
		for _, e := range bucket {
			idx := g.bucketIndex(e.x, e.y)
			g.cells[idx] = append(g.cells[idx], e)
			g.cellOf[e.id] = idx
		}
	}
}

// cellCoords maps a position to cell coordinates, clamping out-of-plane
// positions into the boundary cells.
func (g *Grid) cellCoords(x, y float64) (cx, cy int) {
	cx = int(x / g.cellW)
	cy = int(y / g.cellH)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cx, cy
}

func (g *Grid) bucketIndex(x, y float64) int {
	cx, cy := g.cellCoords(x, y)
	return cy*g.cols + cx
}

// Insert adds a point, replacing any existing point with the same ID.
func (g *Grid) Insert(id int64, x, y float64) {
	if _, ok := g.cellOf[id]; ok {
		g.Remove(id)
	}
	idx := g.bucketIndex(x, y)
	g.cells[idx] = append(g.cells[idx], entry{id: id, x: x, y: y})
	g.cellOf[id] = idx
	g.n++
	if float64(g.n) > growLoad*float64(len(g.cells)) {
		g.rebucket(int(float64(g.n) / targetPerCell))
	}
}

// Remove deletes a point by ID, reporting whether it was present.
func (g *Grid) Remove(id int64) bool {
	idx, ok := g.cellOf[id]
	if !ok {
		return false
	}
	bucket := g.cells[idx]
	for i := range bucket {
		if bucket[i].id == id {
			last := len(bucket) - 1
			bucket[i] = bucket[last]
			g.cells[idx] = bucket[:last]
			break
		}
	}
	delete(g.cellOf, id)
	g.n--
	if len(g.cells) > minCells && float64(g.n) < 0.5*float64(len(g.cells)) {
		g.rebucket(int(float64(g.n) / targetPerCell))
	}
	return true
}

// Nearest returns up to k accepted points closest to (x, y), ordered by
// (squared distance, ID) ascending. A nil accept admits every point.
func (g *Grid) Nearest(x, y float64, k int, accept func(id int64) bool) []Neighbor {
	return g.NearestInto(nil, x, y, k, accept)
}

// NearestInto is Nearest writing into buf (grown as needed), so steady-state
// callers can keep a scratch slice and avoid per-query allocation.
//
// The search expands square rings of cells around the query cell. Any
// point in a ring at Chebyshev cell distance r is at least (r-1)·minCell
// away, so once k candidates are held the search stops at the first ring
// whose lower bound strictly exceeds the worst retained distance —
// strictly, because an equal distance with a smaller ID must still be
// admitted for the ordering to stay total.
func (g *Grid) NearestInto(buf []Neighbor, x, y float64, k int, accept func(id int64) bool) []Neighbor {
	h := buf[:0]
	if k <= 0 || g.n == 0 {
		return h
	}
	cx, cy := g.cellCoords(x, y)
	maxR := maxInt(maxInt(cx, g.cols-1-cx), maxInt(cy, g.rows-1-cy))
	for r := 0; r <= maxR; r++ {
		if len(h) == k && r >= 2 {
			lb := float64(r-1) * g.minCell
			if lb*lb > h[0].Dist2 {
				break
			}
		}
		x0, x1 := cx-r, cx+r
		y0, y1 := cy-r, cy+r
		for iy := y0; iy <= y1; iy++ {
			if iy < 0 || iy >= g.rows {
				continue
			}
			stepX := 1
			if r > 0 && iy != y0 && iy != y1 {
				stepX = 2 * r // interior rows: only the two edge columns
			}
			for ix := x0; ix <= x1; ix += stepX {
				if ix < 0 || ix >= g.cols {
					continue
				}
				bucket := g.cells[iy*g.cols+ix]
				for i := range bucket {
					e := &bucket[i]
					if accept != nil && !accept(e.id) {
						continue
					}
					dx, dy := e.x-x, e.y-y
					cand := Neighbor{ID: e.id, Dist2: dx*dx + dy*dy}
					if len(h) < k {
						h = append(h, cand)
						siftUp(h)
					} else if worse(h[0], cand) {
						h[0] = cand
						siftDown(h, 0)
					}
				}
			}
		}
	}
	// Heap-sort in place: repeatedly move the worst candidate to the end,
	// yielding (distance, ID)-ascending order without allocating.
	for end := len(h) - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		siftDown(h[:end], 0)
	}
	return h
}

// siftUp restores the max-heap property after appending to h.
func siftUp(h []Neighbor) {
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// siftDown restores the max-heap property after replacing h[i].
func siftDown(h []Neighbor, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(h) && worse(h[l], h[worst]) {
			worst = l
		}
		if r < len(h) && worse(h[r], h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
