package spatial

import (
	"sort"
	"testing"

	"cloudfog/internal/sim"
)

// bruteNearest is the reference: scan every point, sort by (dist², ID).
func bruteNearest(pts map[int64][2]float64, x, y float64, k int, accept func(int64) bool) []Neighbor {
	all := make([]Neighbor, 0, len(pts))
	for id, p := range pts {
		if accept != nil && !accept(id) {
			continue
		}
		dx, dy := p[0]-x, p[1]-y
		all = append(all, Neighbor{ID: id, Dist2: dx*dx + dy*dy})
	}
	sort.Slice(all, func(i, j int) bool { return worse(all[j], all[i]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func sameNeighbors(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := sim.NewRand(42)
	const width, height = 4500.0, 2900.0
	for trial := 0; trial < 60; trial++ {
		g := NewGrid(width, height)
		pts := make(map[int64][2]float64)
		n := 1 + rng.Intn(400)
		for i := 0; i < n; i++ {
			id := int64(rng.Intn(1000)) // collisions exercise replacement
			x, y := rng.Float64()*width, rng.Float64()*height
			g.Insert(id, x, y)
			pts[id] = [2]float64{x, y}
		}
		// Remove a random subset to exercise incremental deletes.
		for id := range pts {
			if rng.Float64() < 0.2 {
				if !g.Remove(id) {
					t.Fatalf("trial %d: Remove(%d) reported absent", trial, id)
				}
				delete(pts, id)
			}
		}
		if g.Len() != len(pts) {
			t.Fatalf("trial %d: Len = %d, want %d", trial, g.Len(), len(pts))
		}
		var accept func(int64) bool
		if trial%3 == 1 {
			accept = func(id int64) bool { return id%3 != 0 }
		}
		for q := 0; q < 20; q++ {
			x, y := rng.Float64()*width, rng.Float64()*height
			k := 1 + rng.Intn(25)
			got := g.Nearest(x, y, k, accept)
			want := bruteNearest(pts, x, y, k, accept)
			if !sameNeighbors(got, want) {
				t.Fatalf("trial %d query %d: grid %v != brute force %v", trial, q, got, want)
			}
		}
	}
}

// TestNearestTieBreaksOnID plants coincident points: equal distances must
// order by ascending ID regardless of insertion order.
func TestNearestTieBreaksOnID(t *testing.T) {
	g := NewGrid(100, 100)
	g.Insert(9, 50, 50)
	g.Insert(3, 50, 50)
	g.Insert(7, 50, 50)
	got := g.Nearest(50, 50, 2, nil)
	if len(got) != 2 || got[0].ID != 3 || got[1].ID != 7 {
		t.Fatalf("tie-break order = %v, want IDs [3 7]", got)
	}
}

// TestNearestDeterministicAcrossHistories: the same final contents must
// answer identically no matter how they were built.
func TestNearestDeterministicAcrossHistories(t *testing.T) {
	rng := sim.NewRand(7)
	type pt struct {
		id   int64
		x, y float64
	}
	pts := make([]pt, 300)
	for i := range pts {
		pts[i] = pt{int64(i), rng.Float64() * 4500, rng.Float64() * 2900}
	}

	forward := NewGrid(4500, 2900)
	for _, p := range pts {
		forward.Insert(p.id, p.x, p.y)
	}
	// Backwards, with extra points inserted and removed along the way.
	churned := NewGrid(4500, 2900)
	for i := len(pts) - 1; i >= 0; i-- {
		churned.Insert(pts[i].id, pts[i].x, pts[i].y)
		churned.Insert(10_000+int64(i), rng.Float64()*4500, rng.Float64()*2900)
	}
	for i := range pts {
		churned.Remove(10_000 + int64(i))
	}

	for q := 0; q < 50; q++ {
		x, y := rng.Float64()*4500, rng.Float64()*2900
		a := forward.Nearest(x, y, 15, nil)
		b := churned.Nearest(x, y, 15, nil)
		if !sameNeighbors(a, b) {
			t.Fatalf("query %d: forward %v != churned %v", q, a, b)
		}
	}
}

func TestInsertReplacesExistingID(t *testing.T) {
	g := NewGrid(100, 100)
	g.Insert(1, 10, 10)
	g.Insert(1, 90, 90)
	if g.Len() != 1 {
		t.Fatalf("Len = %d after replacing insert, want 1", g.Len())
	}
	got := g.Nearest(90, 90, 1, nil)
	if len(got) != 1 || got[0].Dist2 != 0 {
		t.Fatalf("replaced point not at new position: %v", got)
	}
}

func TestRetuneGrowsAndShrinks(t *testing.T) {
	g := NewGrid(4500, 2900)
	rng := sim.NewRand(11)
	for i := 0; i < 5000; i++ {
		g.Insert(int64(i), rng.Float64()*4500, rng.Float64()*2900)
	}
	if len(g.cells) <= minCells {
		t.Fatalf("grid did not grow: %d cells for %d points", len(g.cells), g.Len())
	}
	grown := len(g.cells)
	for i := 0; i < 4990; i++ {
		g.Remove(int64(i))
	}
	if len(g.cells) >= grown {
		t.Fatalf("grid did not shrink: still %d cells for %d points", len(g.cells), g.Len())
	}
	// Contents survive retunes.
	got := g.Nearest(0, 0, 10, nil)
	if len(got) != 10 {
		t.Fatalf("lost points across retunes: %d of 10 remain", len(got))
	}
}

func TestNearestEdgeCases(t *testing.T) {
	g := NewGrid(100, 100)
	if got := g.Nearest(5, 5, 3, nil); len(got) != 0 {
		t.Fatalf("empty grid returned %v", got)
	}
	g.Insert(1, 5, 5)
	if got := g.Nearest(5, 5, 0, nil); len(got) != 0 {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := g.Nearest(5, 5, 10, nil); len(got) != 1 {
		t.Fatalf("k beyond size returned %v", got)
	}
	// Out-of-plane points clamp into boundary cells but keep true coords.
	g.Insert(2, -50, 500)
	got := g.Nearest(-50, 500, 1, nil)
	if len(got) != 1 || got[0].ID != 2 || got[0].Dist2 != 0 {
		t.Fatalf("out-of-plane point not found at its true position: %v", got)
	}
	if g.Remove(99) {
		t.Fatal("Remove of unknown ID reported present")
	}
}

func TestNearestIntoReusesBuffer(t *testing.T) {
	g := NewGrid(1000, 1000)
	rng := sim.NewRand(3)
	for i := 0; i < 200; i++ {
		g.Insert(int64(i), rng.Float64()*1000, rng.Float64()*1000)
	}
	buf := make([]Neighbor, 0, 32)
	out := g.NearestInto(buf, 500, 500, 15, nil)
	if len(out) != 15 {
		t.Fatalf("got %d neighbors, want 15", len(out))
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("NearestInto did not reuse the provided buffer")
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = g.NearestInto(buf[:0], 500, 500, 15, nil)
	})
	if allocs != 0 {
		t.Fatalf("NearestInto allocates %v per query with a warm buffer", allocs)
	}
}
