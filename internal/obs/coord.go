package obs

// CoordStats instruments the coordinator control plane: worker registration
// churn, placement outcomes, and churn-driven re-placements. The session
// ledger identity the reconciliation checks is
//
//	Placements == ActiveOriginal + ActiveReplaced + Departed
//
// where Placements counts first-time tickets only (re-placements increment
// Replacements, not Placements), ActiveOriginal/ActiveReplaced split live
// sessions by whether churn ever moved them, and Departed counts sessions
// that ended — voluntarily or because no worker (and no cloud fallback)
// could take them after a death.
type CoordStats struct {
	Placements   *Counter // first-time session placements ticketed
	Replacements *Counter // sessions re-placed after a worker death
	Rejected     *Counter // joins refused (no admitting worker, no fallback)
	Departed     *Counter // sessions ended and retired from the ledger

	WorkersRegistered *Counter // workers registered (first contact)
	WorkersLost       *Counter // workers declared dead by the detector
	WorkersReturned   *Counter // dead workers re-registered
	ReportsReceived   *Counter // worker capacity/occupancy reports consumed

	DrainWorkers  *Counter // distressed-worker drain episodes started
	DrainSessions *Counter // sessions moved off distressed workers
	DrainStranded *Counter // drain candidates with no admissible target

	LeaseIssued  *Counter // tickets issued with a lease expiry
	LeaseRenewed *Counter // lease renewals granted
	LeaseExpired *Counter // sessions retired because their lease lapsed

	Rebases    *Counter // coordinator pause recoveries (detectors rebased)
	Reconciled *Counter // sessions realigned against worker-reported truth

	PlacementNs *Histogram // per-placement decision latency
	ReplaceNs   *Histogram // worker death to last session re-placed

	// Sink, when non-nil, receives placement and churn events.
	Sink EventSink
}

// NewCoordStats returns a standalone bundle (not registry-backed).
func NewCoordStats() *CoordStats {
	return &CoordStats{
		Placements:        new(Counter),
		Replacements:      new(Counter),
		Rejected:          new(Counter),
		Departed:          new(Counter),
		WorkersRegistered: new(Counter),
		WorkersLost:       new(Counter),
		WorkersReturned:   new(Counter),
		ReportsReceived:   new(Counter),
		DrainWorkers:      new(Counter),
		DrainSessions:     new(Counter),
		DrainStranded:     new(Counter),
		LeaseIssued:       new(Counter),
		LeaseRenewed:      new(Counter),
		LeaseExpired:      new(Counter),
		Rebases:           new(Counter),
		Reconciled:        new(Counter),
		PlacementNs:       NewHistogram(LatencyBucketsNs()),
		ReplaceNs:         NewHistogram(LatencyBucketsNs()),
	}
}

// CoordStatsIn binds the canonical coordinator metrics in a registry. Like
// the other bundles it is get-or-create, so server loops share instruments.
func CoordStatsIn(r *Registry) *CoordStats {
	return &CoordStats{
		Placements:        r.Counter("cloudfog_coord_placements_total", "first-time session placements ticketed"),
		Replacements:      r.Counter("cloudfog_coord_replacements_total", "sessions re-placed after worker death"),
		Rejected:          r.Counter("cloudfog_coord_rejected_joins_total", "joins refused by admission control"),
		Departed:          r.Counter("cloudfog_coord_departed_total", "sessions retired from the ledger"),
		WorkersRegistered: r.Counter("cloudfog_coord_workers_registered_total", "workers registered (first contact)"),
		WorkersLost:       r.Counter("cloudfog_coord_workers_lost_total", "workers declared dead by the detector"),
		WorkersReturned:   r.Counter("cloudfog_coord_workers_returned_total", "dead workers re-registered"),
		ReportsReceived:   r.Counter("cloudfog_coord_reports_total", "worker capacity/occupancy reports consumed"),
		DrainWorkers:      r.Counter("cloudfog_coord_drain_workers_total", "distressed-worker drain episodes started"),
		DrainSessions:     r.Counter("cloudfog_coord_drain_sessions_total", "sessions moved off distressed workers"),
		DrainStranded:     r.Counter("cloudfog_coord_drain_stranded_total", "drain candidates with no admissible target"),
		LeaseIssued:       r.Counter("cloudfog_coord_lease_issued_total", "tickets issued with a lease expiry"),
		LeaseRenewed:      r.Counter("cloudfog_coord_lease_renewed_total", "lease renewals granted"),
		LeaseExpired:      r.Counter("cloudfog_coord_lease_expired_total", "sessions retired on lease expiry"),
		Rebases:           r.Counter("cloudfog_coord_rebases_total", "coordinator pause recoveries (detectors rebased)"),
		Reconciled:        r.Counter("cloudfog_coord_reconciled_total", "sessions realigned against worker-reported truth"),
		PlacementNs:       r.Histogram("cloudfog_coord_placement_ns", "per-placement decision latency", LatencyBucketsNs()),
		ReplaceNs:         r.Histogram("cloudfog_coord_replace_ns", "worker death to session re-placement", LatencyBucketsNs()),
	}
}
