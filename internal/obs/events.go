package obs

import (
	"sync"
	"time"
)

// EventKind discriminates structured observability events.
type EventKind uint8

const (
	// EventSegmentGenerated fires when an encoder produces a segment.
	// Node = serving node, Player = stream owner, A = segment bytes.
	EventSegmentGenerated EventKind = iota + 1
	// EventSegmentTransmitted fires when a segment finishes its uplink
	// transmission. A = remaining bytes on the wire.
	EventSegmentTransmitted
	// EventSegmentDropped fires when a segment is lost in full (queue-bound
	// eviction or every packet dropped). A = packets lost.
	EventSegmentDropped
	// EventSegmentDelivered fires when a segment lands at its player.
	// A = action→arrival latency in nanoseconds, B = 1 if on time.
	EventSegmentDelivered
	// EventLevelChange fires on a bitrate ladder move. A = new level,
	// B = +1 for up, -1 for down.
	EventLevelChange
	// EventAssign fires when a player joins. A = 1 for a supernode
	// attachment, 0 for the direct-cloud fallback; Node = serving node id.
	EventAssign
	// EventFailover fires when an orphaned player is repaired. A = 1 when a
	// recorded backup absorbed it, 0 when the full protocol reran.
	EventFailover
	// EventDropDecision fires when the Eq. 14 deadline repair sheds
	// packets. Player = the late segment's owner, A = packet deficit.
	EventDropDecision
	// EventFaultKill fires when the fault injector kills a supernode.
	// Node = the supernode, A = players orphaned.
	EventFaultKill
	// EventFaultRecover fires when a killed supernode re-registers.
	EventFaultRecover
	// EventFaultLink fires on an impairment window edge. A = 1 entering the
	// impaired state, 0 leaving it.
	EventFaultLink
	// EventHealthDetect fires when the failure detector suspects a node.
	// A = 1 for a true detection (B = detection latency ns), 0 for a false
	// positive on a live node.
	EventHealthDetect
	// EventHealthOverload fires on a degradation-ladder transition.
	// A = new OverloadState, B = previous state.
	EventHealthOverload
	// EventHealthBreaker fires on a circuit-breaker state change.
	// A = new BreakerState.
	EventHealthBreaker
)

// String names the kind for logs and tests.
func (k EventKind) String() string {
	switch k {
	case EventSegmentGenerated:
		return "segment_generated"
	case EventSegmentTransmitted:
		return "segment_transmitted"
	case EventSegmentDropped:
		return "segment_dropped"
	case EventSegmentDelivered:
		return "segment_delivered"
	case EventLevelChange:
		return "level_change"
	case EventAssign:
		return "assign"
	case EventFailover:
		return "failover"
	case EventDropDecision:
		return "drop_decision"
	case EventFaultKill:
		return "fault_kill"
	case EventFaultRecover:
		return "fault_recover"
	case EventFaultLink:
		return "fault_link"
	case EventHealthDetect:
		return "health_detect"
	case EventHealthOverload:
		return "health_overload"
	case EventHealthBreaker:
		return "health_breaker"
	default:
		return "unknown"
	}
}

// Event is one structured observability event. It is a small value struct:
// emitting one costs a nil-check and a direct func call, never an
// allocation or interface dispatch.
type Event struct {
	Kind   EventKind
	At     time.Duration // virtual (sim) or wall-clock-relative (live) time
	Node   int64         // serving node id, when meaningful
	Player int64         // player id, when meaningful
	A, B   int64         // kind-specific payload, see the kind docs
}

// EventSink receives events. A nil sink disables emission; callers must
// nil-check before calling. Sinks must be safe for concurrent use when the
// instrumented layer is (the live runtime and parallel sweeps are).
type EventSink func(Event)

// EventLog is a bounded, concurrency-safe ring of the most recent events —
// the reference sink for tests and post-run inspection.
type EventLog struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	total int64
}

// NewEventLog returns a ring keeping the last capacity events.
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{ring: make([]Event, 0, capacity)}
}

// Sink returns the log's EventSink.
func (l *EventLog) Sink() EventSink { return l.record }

func (l *EventLog) record(e Event) {
	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
	}
	l.next = (l.next + 1) % cap(l.ring)
	l.total++
	l.mu.Unlock()
}

// Total returns how many events were recorded (including overwritten ones).
func (l *EventLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.ring))
	if len(l.ring) == cap(l.ring) {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
	} else {
		out = append(out, l.ring...)
	}
	return out
}

// EngineStats instruments the discrete-event engine. The engine holds a
// nilable pointer and pays one nil-check per site when disabled.
type EngineStats struct {
	Scheduled *Counter
	Executed  *Counter
	Canceled  *Counter
}

// NewEngineStats returns a standalone bundle (not registry-backed).
func NewEngineStats() *EngineStats {
	return &EngineStats{Scheduled: new(Counter), Executed: new(Counter), Canceled: new(Counter)}
}

// EngineStatsIn binds the canonical engine metrics in a registry.
func EngineStatsIn(r *Registry) *EngineStats {
	return &EngineStats{
		Scheduled: r.Counter("cloudfog_engine_events_scheduled_total", "events queued on the virtual clock"),
		Executed:  r.Counter("cloudfog_engine_events_executed_total", "events fired"),
		Canceled:  r.Counter("cloudfog_engine_events_canceled_total", "events canceled before firing"),
	}
}

// NodeStats instruments one (or an aggregate of) QoE serving nodes: the
// segment lifecycle, drop outcomes, ladder moves, and delivery latency.
// Counters are shared across sweep workers; all updates are atomic.
type NodeStats struct {
	SegmentsGenerated   *Counter
	SegmentsDelivered   *Counter
	SegmentsDropped     *Counter // lost in full: evictions + all-packets-dropped
	SegmentsInFlightEnd *Counter // generated but neither delivered nor dropped at horizon
	SegmentsOnTime      *Counter
	SegmentsLate        *Counter
	PacketsDropped      *Counter // Eq. 14 partial drops (packets)
	LevelUps            *Counter
	LevelDowns          *Counter
	Stalls              *Counter
	DeliveryLatencyNs   *Histogram

	// Sink, when non-nil, receives per-segment lifecycle events.
	Sink EventSink
	// Engine, when non-nil, is attached to each node's event engine.
	Engine *EngineStats
}

// NodeStatsIn binds the canonical QoE node metrics in a registry. Calling
// it twice on the same registry returns bundles sharing the same
// instruments, so per-worker bundles aggregate naturally.
func NodeStatsIn(r *Registry) *NodeStats {
	return &NodeStats{
		SegmentsGenerated:   r.Counter("cloudfog_qoe_segments_generated_total", "video segments produced by encoders"),
		SegmentsDelivered:   r.Counter("cloudfog_qoe_segments_delivered_total", "segments that arrived at their player"),
		SegmentsDropped:     r.Counter("cloudfog_qoe_segments_dropped_total", "segments lost in full (evicted or fully packet-dropped)"),
		SegmentsInFlightEnd: r.Counter("cloudfog_qoe_segments_inflight_end_total", "segments still queued or in transit when the horizon hit"),
		SegmentsOnTime:      r.Counter("cloudfog_qoe_segments_ontime_total", "delivered segments that met their expected arrival"),
		SegmentsLate:        r.Counter("cloudfog_qoe_segments_late_total", "delivered segments past their expected arrival"),
		PacketsDropped:      r.Counter("cloudfog_qoe_packets_dropped_total", "packets shed by the Eq. 14 deadline repair"),
		LevelUps:            r.Counter("cloudfog_qoe_level_ups_total", "bitrate ladder moves up"),
		LevelDowns:          r.Counter("cloudfog_qoe_level_downs_total", "bitrate ladder moves down"),
		Stalls:              r.Counter("cloudfog_qoe_stalls_total", "receiver buffer underruns"),
		DeliveryLatencyNs:   r.Histogram("cloudfog_qoe_delivery_latency_ns", "action-to-arrival latency of delivered segments", LatencyBucketsNs()),
	}
}

// AssignStats instruments the assignment protocol: join outcomes, failover
// repairs, and cooperative reassignments.
type AssignStats struct {
	JoinsFog           *Counter // joins attached to a supernode
	JoinsCloud         *Counter // joins that fell back to a direct cloud connection
	FailoverBackupHits *Counter // orphans absorbed by a recorded backup
	FailoverReassigns  *Counter // orphans that reran the full protocol
	Reassigned         *Counter // cooperative TryReassign moves committed

	// Sink, when non-nil, receives assign/failover events.
	Sink EventSink
}

// AssignStatsIn binds the canonical assignment metrics in a registry.
func AssignStatsIn(r *Registry) *AssignStats {
	return &AssignStats{
		JoinsFog:           r.Counter("cloudfog_assign_joins_fog_total", "joins attached to a supernode"),
		JoinsCloud:         r.Counter("cloudfog_assign_joins_cloud_total", "joins that fell back to the cloud"),
		FailoverBackupHits: r.Counter("cloudfog_assign_failover_backup_total", "failovers absorbed by a recorded backup"),
		FailoverReassigns:  r.Counter("cloudfog_assign_failover_rerun_total", "failovers that reran the full protocol"),
		Reassigned:         r.Counter("cloudfog_assign_reassigned_total", "cooperative reassignments committed"),
	}
}

// FaultStats instruments the fault-injection subsystem: kill/recover churn,
// orphan repair outcomes, impairment window edges, and the recovery-time
// distributions the resilience figures plot. The orphan ledger identity is
//
//	Orphaned == failover backup hits + failover reruns + Lapsed + PendingEnd
//
// where the failover counters live in AssignStats (the injector drives the
// real assignment protocol), Lapsed counts orphans whose session ended before
// their repair fired, and PendingEnd counts repairs still pending when the
// horizon hit.
type FaultStats struct {
	Kills          *Counter // supernodes killed by the injector
	Recoveries     *Counter // killed supernodes re-registered
	Orphaned       *Counter // players orphaned by kills
	Lapsed         *Counter // orphans gone offline before their repair fired
	PendingEnd     *Counter // orphan repairs still pending at the horizon
	LinkWindows    *Counter // impairment windows entered (loss/latency/bw/cloud)
	StormJoins     *Counter // flash-crowd joins injected
	MTTRNs         *Histogram
	InterruptionNs *Histogram // per-orphan detection→repair interruption

	// Sink, when non-nil, receives fault kill/recover/link events.
	Sink EventSink
}

// NewFaultStats returns a standalone bundle (not registry-backed).
func NewFaultStats() *FaultStats {
	return &FaultStats{
		Kills:          new(Counter),
		Recoveries:     new(Counter),
		Orphaned:       new(Counter),
		Lapsed:         new(Counter),
		PendingEnd:     new(Counter),
		LinkWindows:    new(Counter),
		StormJoins:     new(Counter),
		MTTRNs:         NewHistogram(LatencyBucketsNs()),
		InterruptionNs: NewHistogram(LatencyBucketsNs()),
	}
}

// FaultStatsIn binds the canonical fault metrics in a registry.
func FaultStatsIn(r *Registry) *FaultStats {
	return &FaultStats{
		Kills:          r.Counter("cloudfog_fault_kills_total", "supernodes killed by the fault injector"),
		Recoveries:     r.Counter("cloudfog_fault_recoveries_total", "killed supernodes re-registered"),
		Orphaned:       r.Counter("cloudfog_fault_orphaned_total", "players orphaned by supernode kills"),
		Lapsed:         r.Counter("cloudfog_fault_lapsed_total", "orphans whose session ended before repair"),
		PendingEnd:     r.Counter("cloudfog_fault_pending_end_total", "orphan repairs still pending at the horizon"),
		LinkWindows:    r.Counter("cloudfog_fault_link_windows_total", "impairment windows entered"),
		StormJoins:     r.Counter("cloudfog_fault_storm_joins_total", "flash-crowd joins injected"),
		MTTRNs:         r.Histogram("cloudfog_fault_mttr_ns", "supernode kill-to-recover downtime", LatencyBucketsNs()),
		InterruptionNs: r.Histogram("cloudfog_fault_interruption_ns", "per-orphan kill-to-repair interruption", LatencyBucketsNs()),
	}
}

// HealthStats instruments the health subsystem: heartbeat traffic and
// detection outcomes, the supernode degradation ladder, and the
// cloud-fallback circuit breaker. The detection ledger identity the
// reconciliation checks is
//
//	Detected + DetectPending == KillsObserved
//
// and FalsePositives must stay zero on a loss-free profile.
type HealthStats struct {
	HeartbeatsSent *Counter // heartbeat frames sent by live nodes
	HeartbeatsLost *Counter // heartbeats shed by impairment windows
	Detected       *Counter // node failures detected (one per down-transition)
	FalsePositives *Counter // live nodes wrongly suspected
	KillsObserved  *Counter // kills applied while a heartbeat monitor watched
	DetectPending  *Counter // monitored kills still undetected at the horizon
	DetectionNs    *Histogram

	Degraded       *Counter // ladder transitions upward (toward Migrating)
	Restored       *Counter // ladder transitions back down (toward Normal)
	JoinsRejected  *Counter // supernode candidacies refused by admission control
	Migrations     *Counter // players migrated off overloaded supernodes
	TimeDegradedNs *Histogram

	BreakerOpens   *Counter // breaker trips to open
	BreakerProbes  *Counter // half-open probes admitted
	BreakerRejects *Counter // requests refused while open/half-open-exhausted

	// Sink, when non-nil, receives detect/overload/breaker events.
	Sink EventSink
}

// NewHealthStats returns a standalone bundle (not registry-backed).
func NewHealthStats() *HealthStats {
	return &HealthStats{
		HeartbeatsSent: new(Counter),
		HeartbeatsLost: new(Counter),
		Detected:       new(Counter),
		FalsePositives: new(Counter),
		KillsObserved:  new(Counter),
		DetectPending:  new(Counter),
		DetectionNs:    NewHistogram(LatencyBucketsNs()),
		Degraded:       new(Counter),
		Restored:       new(Counter),
		JoinsRejected:  new(Counter),
		Migrations:     new(Counter),
		TimeDegradedNs: NewHistogram(LatencyBucketsNs()),
		BreakerOpens:   new(Counter),
		BreakerProbes:  new(Counter),
		BreakerRejects: new(Counter),
	}
}

// HealthStatsIn binds the canonical health metrics in a registry. Like the
// other bundles it is get-or-create, so sweep workers share instruments.
func HealthStatsIn(r *Registry) *HealthStats {
	return &HealthStats{
		HeartbeatsSent: r.Counter("cloudfog_health_heartbeats_sent_total", "heartbeat frames sent by monitored nodes"),
		HeartbeatsLost: r.Counter("cloudfog_health_heartbeats_lost_total", "heartbeats shed by impairment windows"),
		Detected:       r.Counter("cloudfog_health_detected_total", "node failures detected by the heartbeat detector"),
		FalsePositives: r.Counter("cloudfog_health_false_positives_total", "live nodes wrongly suspected"),
		KillsObserved:  r.Counter("cloudfog_health_kills_observed_total", "kills applied while a heartbeat monitor watched"),
		DetectPending:  r.Counter("cloudfog_health_detect_pending_total", "monitored kills still undetected at the horizon"),
		DetectionNs:    r.Histogram("cloudfog_health_detection_latency_ns", "node death to detection latency", LatencyBucketsNs()),
		Degraded:       r.Counter("cloudfog_health_degraded_total", "overload ladder transitions toward degradation"),
		Restored:       r.Counter("cloudfog_health_restored_total", "overload ladder transitions back toward normal"),
		JoinsRejected:  r.Counter("cloudfog_health_joins_rejected_total", "supernode candidacies refused by overload admission control"),
		Migrations:     r.Counter("cloudfog_health_migrations_total", "players migrated off overloaded supernodes"),
		TimeDegradedNs: r.Histogram("cloudfog_health_time_degraded_ns", "time supernodes spent degraded before returning to normal", LatencyBucketsNs()),
		BreakerOpens:   r.Counter("cloudfog_health_breaker_opens_total", "cloud-fallback circuit breaker trips"),
		BreakerProbes:  r.Counter("cloudfog_health_breaker_probes_total", "half-open probes admitted toward the cloud"),
		BreakerRejects: r.Counter("cloudfog_health_breaker_rejects_total", "cloud attaches refused by the open breaker"),
	}
}

// LinkStats instruments one live wire link (TCP stream or UDP datagram):
// frames and bytes each way, frames shed by a congested send queue or the
// loss process, the sender-side holding delay (queue wait plus injected
// propagation) actually experienced by each frame, and the coalescing
// writer's batching activity (frames folded into multi-frame writes, and
// the number of such writes).
type LinkStats struct {
	SentFrames    *Counter
	SentBytes     *Counter
	DroppedFrames *Counter
	RecvFrames    *Counter
	RecvBytes     *Counter
	BatchedFrames *Counter
	BatchWrites   *Counter
	SendDelayNs   *Histogram
}

// LinkStatsIn binds a link's metrics in a registry under the given link
// label (e.g. "cloud_to_sn7").
func LinkStatsIn(r *Registry, link string) *LinkStats {
	lbl := `{link="` + link + `"}`
	return &LinkStats{
		SentFrames:    r.Counter("cloudfog_link_sent_frames_total"+lbl, "frames written to the wire"),
		SentBytes:     r.Counter("cloudfog_link_sent_bytes_total"+lbl, "payload bytes written to the wire"),
		DroppedFrames: r.Counter("cloudfog_link_dropped_frames_total"+lbl, "frames shed by a full send queue"),
		RecvFrames:    r.Counter("cloudfog_link_recv_frames_total"+lbl, "frames read from the wire"),
		RecvBytes:     r.Counter("cloudfog_link_recv_bytes_total"+lbl, "payload bytes read from the wire"),
		BatchedFrames: r.Counter("cloudfog_link_batched_frames_total"+lbl, "frames written as part of a coalesced multi-frame batch"),
		BatchWrites:   r.Counter("cloudfog_link_batch_writes_total"+lbl, "coalesced multi-frame writes (one writev per batch)"),
		SendDelayNs:   r.Histogram("cloudfog_link_send_delay_ns"+lbl, "sender-side frame holding delay (queue wait + injected propagation)", LatencyBucketsNs()),
	}
}
