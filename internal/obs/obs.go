// Package obs is the repo's observability layer: named counters,
// fixed-bucket histograms, and a structured event sink, shared by the
// deterministic simulator and the live TCP runtime.
//
// Design constraints, in priority order:
//
//   - Determinism: instruments never influence control flow. Counter and
//     histogram updates are commutative, so totals are identical no matter
//     how the parallel figure-sweep workers interleave, and a run's figure
//     output is bit-identical with observation on or off.
//   - Near-zero disabled overhead: every instrumented layer holds a nilable
//     pointer to its stat bundle (EngineStats, NodeStats, AssignStats,
//     LinkStats) and a nilable EventSink func value. Disabled, the hot path
//     pays one pointer nil-check per site — no interface dispatch, no
//     allocation — preserving the repo's pinned zero-alloc floors.
//   - Allocation-conscious enabled overhead: counters are single atomic
//     adds; histograms are a branchless-ish linear bucket scan over a fixed
//     bounds slice plus two atomic adds; events are small structs passed by
//     value to a func, never boxed.
//
// Metric naming follows the Prometheus convention: snake_case with a
// cloudfog_ prefix, _total for counters, unit suffixes (_ns) on histograms.
// Registry.WritePrometheus emits the text exposition format (served by
// cloudfog-live's -metrics-addr); Registry.Snapshot emits the JSON form
// (written by cloudfog-sim's -report).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored — counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper edges in ascending order; one implicit overflow bucket catches
// everything above the last bound. The zero value is not usable; build one
// through Registry.Histogram or NewHistogram.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	n      atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %d <= %d",
				i, bounds[i], bounds[i-1]))
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bounds returns the bucket upper edges (shared; do not mutate).
func (h *Histogram) Bounds() []int64 { return h.bounds }

// BucketCounts returns a copy of the per-bucket counts; the last element is
// the overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// LatencyBucketsNs is the default latency histogram: 1ms..5s upper edges in
// nanoseconds, roughly logarithmic — wide enough for wide-area paths and
// queue-congested segments alike.
func LatencyBucketsNs() []int64 {
	return []int64{
		1e6, 2e6, 5e6, 10e6, 20e6, 50e6, 100e6, 200e6, 500e6, 1e9, 2e9, 5e9,
	}
}

// Registry holds named metrics. Get-or-create accessors make registration
// idempotent, so independent layers (and parallel sweep workers) can bind
// the same canonical names and share the underlying instrument.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*registeredCounter
	hists  map[string]*registeredHistogram
}

type registeredCounter struct {
	help string
	c    *Counter
}

type registeredHistogram struct {
	help string
	h    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*registeredCounter),
		hists:  make(map[string]*registeredHistogram),
	}
}

// Counter returns the counter registered under name, creating it with the
// given help text on first use. Name may carry a Prometheus label block,
// e.g. `cloudfog_link_sent_bytes_total{link="cloud_to_sn7"}`.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rc, ok := r.counts[name]; ok {
		return rc.c
	}
	rc := &registeredCounter{help: help, c: new(Counter)}
	r.counts[name] = rc
	return rc.c
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds on first use. Re-registration with different bounds
// returns the original instrument (bounds are fixed at first registration).
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rh, ok := r.hists[name]; ok {
		return rh.h
	}
	rh := &registeredHistogram{help: help, h: NewHistogram(bounds)}
	r.hists[name] = rh
	return rh.h
}

// familyOf strips a label block from a metric name: the exposition format
// declares HELP/TYPE once per family.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus emits every registered metric in the Prometheus text
// exposition format, sorted by name so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	cnames := make([]string, 0, len(r.counts))
	for n := range r.counts {
		cnames = append(cnames, n)
	}
	hnames := make([]string, 0, len(r.hists))
	for n := range r.hists {
		hnames = append(hnames, n)
	}
	r.mu.Unlock()
	sort.Strings(cnames)
	sort.Strings(hnames)

	seen := make(map[string]bool)
	for _, n := range cnames {
		r.mu.Lock()
		rc := r.counts[n]
		r.mu.Unlock()
		fam := familyOf(n)
		if !seen[fam] {
			seen[fam] = true
			if rc.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, rc.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", fam); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", n, rc.c.Load()); err != nil {
			return err
		}
	}
	for _, n := range hnames {
		r.mu.Lock()
		rh := r.hists[n]
		r.mu.Unlock()
		fam := familyOf(n)
		if !seen[fam] {
			seen[fam] = true
			if rh.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, rh.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", fam); err != nil {
				return err
			}
		}
		base, labels := splitLabels(n)
		cum := int64(0)
		counts := rh.h.BucketCounts()
		for i, bound := range rh.h.Bounds() {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"%d\"} %d\n", base, labels, bound, cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labels, cum); err != nil {
			return err
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + strings.TrimSuffix(labels, ",") + "}"
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", base, suffix, rh.h.Sum()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, rh.h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// splitLabels splits `name{a="b"}` into ("name", `a="b",`); a bare name
// yields ("name", "").
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	inner := strings.TrimSuffix(name[i+1:], "}")
	if inner == "" {
		return name[:i], ""
	}
	return name[:i], inner + ","
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(bounds)+1; last is overflow
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON.
// Map iteration order does not matter: encoding/json sorts keys.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every registered metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Counters: make(map[string]int64, len(r.counts))}
	for n, rc := range r.counts {
		s.Counters[n] = rc.c.Load()
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, rh := range r.hists {
			s.Histograms[n] = HistogramSnapshot{
				Bounds: rh.h.Bounds(),
				Counts: rh.h.BucketCounts(),
				Sum:    rh.h.Sum(),
				Count:  rh.h.Count(),
			}
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
