package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	want := []int64{2, 2, 0, 1} // <=10: {5,10}; <=100: {11,100}; <=1000: {}; +Inf: {5000}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 || h.Sum() != 5+10+11+100+5000 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewHistogram([]int64{10, 10})
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "other help")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	h1 := r.Histogram("h_ns", "", []int64{1, 2})
	h2 := r.Histogram("h_ns", "", []int64{5})
	if h1 != h2 {
		t.Fatal("re-registration returned a different histogram")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("cloudfog_a_total", "counts a").Add(3)
	r.Counter(`cloudfog_link_sent_bytes_total{link="cloud_to_sn7"}`, "link bytes").Add(99)
	h := r.Histogram("cloudfog_lat_ns", "latency", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE cloudfog_a_total counter",
		"cloudfog_a_total 3",
		"# TYPE cloudfog_link_sent_bytes_total counter",
		`cloudfog_link_sent_bytes_total{link="cloud_to_sn7"} 99`,
		"# TYPE cloudfog_lat_ns histogram",
		`cloudfog_lat_ns_bucket{le="10"} 1`,
		`cloudfog_lat_ns_bucket{le="100"} 2`,
		`cloudfog_lat_ns_bucket{le="+Inf"} 3`,
		"cloudfog_lat_ns_sum 555",
		"cloudfog_lat_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Deterministic: a second write is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("exposition not deterministic across writes")
	}
}

func TestHistogramExpositionWithLabels(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`cloudfog_link_send_delay_ns{link="p1"}`, "", []int64{100})
	h.Observe(50)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`cloudfog_link_send_delay_ns_bucket{link="p1",le="100"} 1`,
		`cloudfog_link_send_delay_ns_sum{link="p1"} 50`,
		`cloudfog_link_send_delay_ns_count{link="p1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("gen_total", "").Add(7)
	r.Histogram("lat_ns", "", []int64{10}).Observe(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["gen_total"] != 7 {
		t.Fatalf("snapshot counter = %d, want 7", snap.Counters["gen_total"])
	}
	hs := snap.Histograms["lat_ns"]
	if hs.Count != 1 || hs.Sum != 3 || len(hs.Counts) != 2 {
		t.Fatalf("snapshot histogram = %+v", hs)
	}
}

func TestConcurrentUpdatesSumExactly(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h_ns", "", LatencyBucketsNs())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(3)
	sink := l.Sink()
	for i := 1; i <= 5; i++ {
		sink(Event{Kind: EventSegmentGenerated, A: int64(i)})
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}
	evs := l.Events()
	if len(evs) != 3 || evs[0].A != 3 || evs[2].A != 5 {
		t.Fatalf("ring = %+v, want A=3,4,5", evs)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EventSegmentGenerated, EventSegmentTransmitted, EventSegmentDropped,
		EventSegmentDelivered, EventLevelChange, EventAssign, EventFailover,
		EventDropDecision,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
}

func TestBundleConstructorsShareInstruments(t *testing.T) {
	r := NewRegistry()
	a, b := NodeStatsIn(r), NodeStatsIn(r)
	a.SegmentsGenerated.Inc()
	if b.SegmentsGenerated.Load() != 1 {
		t.Fatal("NodeStatsIn bundles do not share registry instruments")
	}
	e1, e2 := EngineStatsIn(r), EngineStatsIn(r)
	e1.Executed.Inc()
	if e2.Executed.Load() != 1 {
		t.Fatal("EngineStatsIn bundles do not share registry instruments")
	}
	s1, s2 := AssignStatsIn(r), AssignStatsIn(r)
	s1.JoinsFog.Inc()
	if s2.JoinsFog.Load() != 1 {
		t.Fatal("AssignStatsIn bundles do not share registry instruments")
	}
	l1, l2 := LinkStatsIn(r, "x"), LinkStatsIn(r, "x")
	l1.SentBytes.Add(10)
	if l2.SentBytes.Load() != 10 {
		t.Fatal("LinkStatsIn bundles do not share registry instruments")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(LatencyBucketsNs())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) % 1e9)
	}
}
