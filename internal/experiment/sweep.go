package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cloudfog/internal/core"
	"cloudfog/internal/workload"
)

// Clone returns a world whose players are fresh copies of this world's, so
// a sweep worker can join and leave them without touching any other
// worker's state. Immutable data — the config, infrastructure placements,
// supernode specs, friend lists — is shared; only the mutable per-player
// runtime state (Online, Game, Attached, Backups) is duplicated, reset to
// the never-joined state every sweep point starts from.
func (w *World) Clone() *World {
	cw := *w
	pop := &workload.Population{
		Players: make([]*core.Player, len(w.Pop.Players)),
		Capable: w.Pop.Capable,
	}
	for i, p := range w.Pop.Players {
		cp := *p
		cp.Online = false
		cp.Attached = core.Attachment{}
		cp.Backups = nil
		pop.Players[i] = &cp
	}
	cw.Pop = pop
	return &cw
}

// sweepWorkers resolves the configured pool size: 0 means one worker per
// available CPU, 1 forces the serial path.
func (w *World) sweepWorkers() int {
	if n := w.Cfg.SweepWorkers; n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// sweepPoints evaluates fn for every point index 0..n-1 on a bounded
// worker pool. Each worker owns a private clone of the world, so the
// per-point work (mint a system, join players, measure, leave) runs with
// no shared mutable state; results must be written into per-index slots of
// preallocated slices, never appended.
//
// Every figure sweep derives each point's randomness from (Cfg.Seed, point
// parameters) alone — fresh systems are built with fixed seed offsets and
// joins re-seed at Seed+300 — so a point's value is a pure function of the
// world spec and the point index, and the assembled series are identical
// to the serial output regardless of how goroutines interleave. With one
// worker (or one point) the sweep runs on the original world itself, which
// is exactly the pre-harness serial behavior.
func (w *World) sweepPoints(n int, fn func(pw *World, i int) error) error {
	workers := w.sweepWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(w, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pw := w.Clone()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(pw, i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
