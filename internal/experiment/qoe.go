package experiment

import (
	"sort"
	"sync"
	"time"

	"cloudfog/internal/core"
	"cloudfog/internal/game"
	"cloudfog/internal/geo"
	"cloudfog/internal/metrics"
	"cloudfog/internal/obs"
	"cloudfog/internal/qoe"
	"cloudfog/internal/shard"
	"cloudfog/internal/sim"
	"cloudfog/internal/trace"
	"cloudfog/internal/workload"
	"cloudfog/internal/world"
)

// nodeStatsFor binds the canonical QoE metrics in the world's registry and
// attaches engine instrumentation. NodeStatsIn is get-or-create, so every
// sweep worker's bundle aliases the same atomic instruments and per-run
// tallies aggregate across the whole figure.
func nodeStatsFor(w *World) *obs.NodeStats {
	ns := obs.NodeStatsIn(w.Cfg.Obs)
	ns.Engine = obs.EngineStatsIn(w.Cfg.Obs)
	return ns
}

// nodeKey identifies a serving node when partitioning players: datacenters
// (cloud and edge attachments share the DC egress) sort before supernodes,
// then by node id. A comparable struct key costs no allocation per player,
// unlike the fmt.Sprintf string keys it replaced.
type nodeKey struct {
	kind uint8 // 0 = datacenter (cloud or edge), 1 = supernode
	id   int64
}

// groupRun partitions the joined players by serving node, runs the
// segment-level QoE simulation per node, and aggregates all players. sys may
// be nil; when it is a Fog with the overload ladder installed, supernode-
// attached players inherit their node's current encoding-level cap.
//
// Per-node simulations are pure in (opts, uplink, specs, horizon), so the
// node runs parallelize freely: with Cfg.Shards > 1 the nodes are
// partitioned geographically and each shard runs its slice on its own
// qoe.Pool, with results landing in per-node slots and concatenating in the
// canonical node order — byte-identical to the serial path at any shard
// count. The serial path reuses one pool across all nodes, which is what
// cut Figure 9(a)'s per-run allocations to the pooled floor.
func groupRun(w *World, sys core.System, players []*core.Player, opts qoe.Options, horizon time.Duration) (qoe.Summary, error) {
	if w.Cfg.Obs != nil && opts.Obs == nil {
		opts.Obs = nodeStatsFor(w)
	}
	var capOf func(snID int64, startLevel int) int
	if fog, ok := sys.(*core.Fog); ok && fog.Overload() != nil {
		capOf = fog.SupernodeLevelCap
	}
	type group struct {
		uplink int64
		pos    geo.Point
		specs  []qoe.PlayerSpec
	}
	groups := make(map[nodeKey]*group)
	for _, p := range players {
		a := p.Attached
		if !a.Served() {
			continue
		}
		var key nodeKey
		var uplink int64
		var levelCap int
		var pos geo.Point
		switch a.Kind {
		case core.AttachSupernode:
			key = nodeKey{kind: 1, id: a.SN.ID}
			uplink = a.SN.Uplink
			pos = a.SN.Pos
			if capOf != nil {
				levelCap = capOf(a.SN.ID, p.Game.StartLevel)
			}
		case core.AttachCloud, core.AttachEdge:
			key = nodeKey{kind: 0, id: a.DC.ID}
			uplink = a.DC.Egress
			pos = a.DC.Pos
		}
		g := groups[key]
		if g == nil {
			g = &group{uplink: uplink, pos: pos}
			groups[key] = g
		}
		g.specs = append(g.specs, qoe.PlayerSpec{
			ID:           p.ID,
			Game:         p.Game,
			Latency:      a.StreamLatency,
			InboundDelay: a.UpdateLatency,
			LevelCap:     levelCap,
		})
	}
	keys := make([]nodeKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].kind != keys[b].kind {
			return keys[a].kind < keys[b].kind
		}
		return keys[a].id < keys[b].id
	})

	var all []qoe.PlayerResult
	if w.Cfg.Shards <= 1 {
		pool := qoe.NewPool()
		for _, k := range keys {
			g := groups[k]
			res, err := pool.RunNode(opts, g.uplink, g.specs, horizon)
			if err != nil {
				return qoe.Summary{}, err
			}
			all = append(all, res...)
		}
		return qoe.Summarize(all), nil
	}

	// Sharded: partition the serving nodes geographically and run each
	// shard's slice on its own pool and goroutine.
	region := w.Cfg.Core.Region
	pts := make([]world.Vec2, len(keys))
	for i, k := range keys {
		pts[i] = world.Vec2{X: groups[k].pos.X, Y: groups[k].pos.Y}
	}
	plan := shard.NewPlan(region.Width, region.Height, pts, w.Cfg.Shards)
	owner := make([]int, len(keys))
	for i := range keys {
		owner[i] = plan.Owner(pts[i].X, pts[i].Y)
	}
	slots := make([][]qoe.PlayerResult, len(keys))
	errs := make([]error, plan.Shards())
	var wg sync.WaitGroup
	for s := 0; s < plan.Shards(); s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			pool := qoe.NewPool()
			for i, k := range keys {
				if owner[i] != s {
					continue
				}
				g := groups[k]
				res, err := pool.RunNode(opts, g.uplink, g.specs, horizon)
				if err != nil {
					errs[s] = err
					return
				}
				// Pool results are reused on the next RunNode: copy out.
				slots[i] = append(make([]qoe.PlayerResult, 0, len(res)), res...)
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return qoe.Summary{}, err
		}
	}
	for _, res := range slots {
		all = append(all, res...)
	}
	return qoe.Summarize(all), nil
}

// ContinuityVsPlayers reproduces Figure 9(a): average playback continuity
// as the number of concurrent players grows, for Cloud, EdgeCloud,
// CloudFog/B and CloudFog/A. Each point runs the segment-level simulation
// for `horizon` of virtual time on every serving node.
func ContinuityVsPlayers(w *World, counts []int, horizon time.Duration) ([]metrics.Series, error) {
	systems := []struct {
		label string
		build func(pw *World) (core.System, error)
		opts  qoe.Options
	}{
		{"Cloud", func(pw *World) (core.System, error) { return pw.NewCloud(pw.Cfg.Datacenters) }, qoe.BasicOptions()},
		{"EdgeCloud", func(pw *World) (core.System, error) { return pw.NewEdgeCloud(pw.Cfg.Datacenters) }, qoe.BasicOptions()},
		{"CloudFog/B", func(pw *World) (core.System, error) { return pw.NewFog(pw.Cfg.Datacenters, pw.Cfg.Supernodes) }, qoe.BasicOptions()},
		{"CloudFog/A", func(pw *World) (core.System, error) { return pw.NewFog(pw.Cfg.Datacenters, pw.Cfg.Supernodes) }, qoe.DefaultOptions()},
	}
	series := make([]metrics.Series, len(systems))
	for i, sys := range systems {
		series[i].Label = sys.label
		series[i].Points = make([]metrics.Point, len(counts))
	}
	err := w.sweepPoints(len(counts)*len(systems), func(pw *World, pt int) error {
		ci, si := pt/len(systems), pt%len(systems)
		n := counts[ci]
		sys, err := systems[si].build(pw)
		if err != nil {
			return err
		}
		players := pw.JoinAll(sys, n)
		opts := systems[si].opts
		opts.Seed = pw.Cfg.Seed + int64(n)
		sum, err := groupRun(pw, sys, players, opts, horizon)
		if err != nil {
			return err
		}
		series[si].Points[ci] = metrics.Point{X: float64(n), Y: sum.MeanContinuity}
		pw.LeaveAll(sys, players)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return series, nil
}

// SupernodeScenario builds the controlled single-supernode workload of
// Figures 10 and 11: one supernode with a fixed uplink supporting k nearby
// players with realistic fog latencies (probed against the synthetic
// trace) and the supernode's real cloud-update latency as inbound delay.
func (w *World) SupernodeScenario(k int) (uplink int64, specs []qoe.PlayerSpec) {
	// A large supernode: 12 capacity slots at the configured per-slot
	// uplink (30 Mbps by default). The 5..30-player sweep then spans
	// uplink utilization from ~0.15 to ~0.92 — congestion builds from
	// frame-size bursts well before saturation, as in the paper's sweep.
	uplink = 12 * w.Cfg.Core.UplinkPerSlot

	// Pick the supernode with the best cloud-update path: the figure
	// isolates load effects, so the serving node itself should not be
	// latency-handicapped.
	updateOf := func(sp snSpec) time.Duration {
		snEP := trace.Endpoint{ID: trace.NodeID(sp.id), Pos: sp.pos, Class: trace.ClassSupernode}
		best := time.Duration(1<<62 - 1)
		for i := 0; i < w.Cfg.Datacenters && i < len(w.dcPts); i++ {
			dcEP := trace.Endpoint{
				ID:    trace.NodeID(workload.DatacenterIDBase + int64(i)),
				Pos:   w.dcPts[i],
				Class: trace.ClassDatacenter,
			}
			if l := w.Cfg.Core.Latency.OneWay(dcEP, snEP); l < best {
				best = l
			}
		}
		return best
	}
	sn := w.snSpec[0]
	inbound := updateOf(sn)
	for _, sp := range w.snSpec[1:] {
		if u := updateOf(sp); u < inbound {
			sn, inbound = sp, u
		}
	}
	snEP := trace.Endpoint{ID: trace.NodeID(sn.id), Pos: sn.pos, Class: trace.ClassSupernode}

	// Rank a geographic candidate pool by probed latency — the same
	// shortlist-then-probe process the assignment protocol uses — and
	// serve the k best. These are the players this supernode would
	// actually support.
	type cand struct {
		idx int
		d   float64
	}
	pool := make([]cand, len(w.Pop.Players))
	for i, p := range w.Pop.Players {
		pool[i] = cand{i, p.Pos.DistanceTo(sn.pos)}
	}
	sort.Slice(pool, func(a, b int) bool { return pool[a].d < pool[b].d })
	poolSize := 10 * k
	if poolSize > len(pool) {
		poolSize = len(pool)
	}
	type probed struct {
		idx int
		l   time.Duration
	}
	probes := make([]probed, poolSize)
	for i := 0; i < poolSize; i++ {
		p := w.Pop.Players[pool[i].idx]
		probes[i] = probed{pool[i].idx, w.Cfg.Core.Latency.OneWay(p.Endpoint(), snEP)}
	}
	sort.Slice(probes, func(a, b int) bool { return probes[a].l < probes[b].l })

	rng := sim.NewRand(w.Cfg.Seed + 400)
	if k > len(probes) {
		k = len(probes)
	}
	specs = make([]qoe.PlayerSpec, k)
	for i := 0; i < k; i++ {
		p := w.Pop.Players[probes[i].idx]
		g, err := game.ByID(1 + rng.Intn(5))
		if err != nil {
			panic(err)
		}
		specs[i] = qoe.PlayerSpec{
			ID:           p.ID,
			Game:         g,
			Latency:      probes[i].l,
			InboundDelay: inbound,
		}
	}
	return uplink, specs
}

// StrategyEffect runs the Figure 10/11 sweep: the fraction of satisfied
// players with and without one strategy, as the players-per-supernode load
// grows. Set adaptation or scheduling (or both) to choose the variant under
// test; the "without" series is always CloudFog/B.
func StrategyEffect(w *World, loads []int, horizon time.Duration, adaptation, scheduling bool) ([]metrics.Series, error) {
	label := "CloudFog-adapt"
	if scheduling && !adaptation {
		label = "CloudFog-schedule"
	}
	if scheduling && adaptation {
		label = "CloudFog/A"
	}
	with := metrics.Series{Label: label, Points: make([]metrics.Point, len(loads))}
	without := metrics.Series{Label: "CloudFog/B", Points: make([]metrics.Point, len(loads))}
	err := w.sweepPoints(len(loads), func(pw *World, i int) error {
		k := loads[i]
		uplink, specs := pw.SupernodeScenario(k)

		opts := qoe.BasicOptions()
		opts.Seed = pw.Cfg.Seed + int64(k)
		if pw.Cfg.Obs != nil {
			opts.Obs = nodeStatsFor(pw)
		}
		resB, err := qoe.RunNode(opts, uplink, specs, horizon)
		if err != nil {
			return err
		}
		without.Points[i] = metrics.Point{X: float64(k), Y: qoe.Summarize(resB).SatisfiedFrac}

		opts.Adaptation = adaptation
		opts.Scheduling = scheduling
		resW, err := qoe.RunNode(opts, uplink, specs, horizon)
		if err != nil {
			return err
		}
		with.Points[i] = metrics.Point{X: float64(k), Y: qoe.Summarize(resW).SatisfiedFrac}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return []metrics.Series{without, with}, nil
}

// AdaptationEffect reproduces Figure 10(a): satisfied players with and
// without the receiver-driven encoding rate adaptation.
func AdaptationEffect(w *World, loads []int, horizon time.Duration) ([]metrics.Series, error) {
	return StrategyEffect(w, loads, horizon, true, false)
}

// SchedulingEffect reproduces Figure 11(a): satisfied players with and
// without the deadline-driven sender buffer scheduling.
func SchedulingEffect(w *World, loads []int, horizon time.Duration) ([]metrics.Series, error) {
	return StrategyEffect(w, loads, horizon, false, true)
}
