package experiment

import (
	"reflect"
	"testing"
	"time"

	"cloudfog/internal/fault"
)

// testChaosProfile is a compressed chaos scenario: two minutes with crash,
// loss, and latency faults, sized so a full replay runs in well under a
// second of wall time.
func testChaosProfile(seed int64) *fault.Profile {
	return &fault.Profile{
		Name:     "test-chaos",
		Seed:     seed,
		Duration: fault.Dur(2 * time.Minute),
		Specs: []fault.Spec{
			{Kind: fault.KindCrash, MTTF: fault.Dur(40 * time.Second), MTTR: fault.Dur(20 * time.Second),
				Detect: fault.Dur(5 * time.Second), TargetFrac: 0.5},
			{Kind: fault.KindLoss, MeanGood: fault.Dur(30 * time.Second), MeanBad: fault.Dur(5 * time.Second),
				LossFrac: 0.2},
			{Kind: fault.KindLatency, MeanGood: fault.Dur(30 * time.Second), MeanBad: fault.Dur(5 * time.Second),
				Extra: fault.Dur(30 * time.Millisecond)},
		},
	}
}

func TestQoEVsChurnShape(t *testing.T) {
	w := testWorld(t)
	rates := []float64{0, 6}
	series, err := QoEVsChurn(w, rates, 3*time.Minute, HealthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("want 3 series, got %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != len(rates) {
			t.Fatalf("series %q has %d points, want %d", s.Label, len(s.Points), len(rates))
		}
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 1 {
				t.Fatalf("series %q point %+v outside [0,1]", s.Label, p)
			}
		}
	}
	unserved := series[2]
	if got := at(unserved, 0); got != 0 {
		t.Fatalf("fault-free baseline has unserved fraction %v, want 0", got)
	}
	// With a 15s detection delay and a kill every 10s, some samples must
	// catch players between a kill and its repair.
	if got := at(unserved, 6); got <= 0 {
		t.Fatalf("churning at 6 kills/min never caught an unserved player (got %v)", got)
	}
}

func TestRecoveryTimelineShape(t *testing.T) {
	w := testWorld(t)
	profile := testChaosProfile(w.Cfg.Seed + 600)
	series, title, err := RecoveryTimeline(w, profile, 2*time.Second, HealthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("want 2 series, got %d", len(series))
	}
	if title == "" {
		t.Fatal("timeline title is empty")
	}
	served := series[0]
	if len(served.Points) == 0 {
		t.Fatal("served series is empty")
	}
	dipped := false
	for _, p := range served.Points {
		if p.Y < 0 || p.Y > 1 {
			t.Fatalf("served fraction %+v outside [0,1]", p)
		}
		if p.Y < 1 {
			dipped = true
		}
	}
	if !dipped {
		t.Fatal("served fraction never dipped below 1 under a crash profile with 5s detection")
	}
	// The run must leave the world restored for the next figure.
	for _, p := range w.Pop.Players {
		if p.Online || p.Attached.Served() {
			t.Fatalf("player %d still joined after RecoveryTimeline", p.ID)
		}
	}
}

// TestResilienceSerialMatchesParallel is the fault-subsystem determinism
// acceptance test: for a fixed seed and fault profile, the resilience
// figures' output and the compiled injected-event log must be bit-identical
// whether the sweep points run serially or on the worker pool.
func TestResilienceSerialMatchesParallel(t *testing.T) {
	ws, wp := sweepTestWorlds(t)
	profile := testChaosProfile(ws.Cfg.Seed + 600)

	// The injected-event log is the compiled schedule; both worlds must
	// derive the identical log from the same profile.
	ss, err := fault.Compile(profile, ws.FaultTargets())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := fault.Compile(profile, wp.FaultTargets())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ss.Events, sp.Events) {
		t.Fatal("serial and parallel worlds compiled different injected-event logs")
	}

	t.Run("QoEVsChurn", func(t *testing.T) {
		got, err := QoEVsChurn(ws, []float64{0, 2, 6}, 2*time.Minute, HealthOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := QoEVsChurn(wp, []float64{0, 2, 6}, 2*time.Minute, HealthOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("serial and parallel outputs differ\nserial:   %+v\nparallel: %+v", got, want)
		}
	})
	t.Run("RecoveryTimeline", func(t *testing.T) {
		got, gotTitle, err := RecoveryTimeline(ws, profile, 2*time.Second, HealthOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, wantTitle, err := RecoveryTimeline(wp, profile, 2*time.Second, HealthOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if gotTitle != wantTitle {
			t.Fatalf("titles differ:\nserial:   %s\nparallel: %s", gotTitle, wantTitle)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("serial and parallel outputs differ\nserial:   %+v\nparallel: %+v", got, want)
		}
	})
	t.Run("RepeatRunsBitIdentical", func(t *testing.T) {
		a, aTitle, err := RecoveryTimeline(ws, profile, 2*time.Second, HealthOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, bTitle, err := RecoveryTimeline(ws, profile, 2*time.Second, HealthOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if aTitle != bTitle || !reflect.DeepEqual(a, b) {
			t.Fatal("same world, seed, and profile produced different timelines across runs")
		}
	})
}
