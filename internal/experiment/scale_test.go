package experiment

import (
	"fmt"
	"testing"
	"time"

	"cloudfog/internal/fault"
	"cloudfog/internal/qoe"
	"cloudfog/internal/shard"
)

// scaleTestConfig is a small world the sharded-run tests can afford to run
// dozens of times: enough supernodes that a kd partition has real interior
// boundaries, few enough players that a 60-second horizon runs in
// milliseconds.
func scaleTestConfig(seed int64, shards int) Config {
	cfg := Default(seed)
	cfg.Players = 400
	cfg.Supernodes = 25
	cfg.Datacenters = 3
	cfg.EdgeServers = 6
	cfg.Shards = shards
	return cfg
}

// TestFigscaleShardInvariance is the tentpole property test: for every seed,
// the scaling figure's bytes are identical at 1, 2, 4, and 8 shards — the
// parallel epoch-barrier path reproduces the serial path exactly. Odd seeds
// run the heartbeat detector with the overload ladder, even seeds the
// oracle, so both detection paths are covered.
func TestFigscaleShardInvariance(t *testing.T) {
	shardCounts := []int{1, 2, 4, 8}
	for seed := int64(1); seed <= 16; seed++ {
		o := RunOptions{Horizon: 60 * time.Second, ScaleEpoch: 15 * time.Second}
		if seed%2 == 1 {
			o.Detector = "phi"
			o.Overload = true
		}
		var want string
		for _, shards := range shardCounts {
			w, err := NewWorld(scaleTestConfig(seed, shards))
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			res, fig, err := ScaleRun(w, o)
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, shards, err)
			}
			if res.Shards != shards {
				t.Fatalf("seed %d: result reports %d shards, want %d", seed, res.Shards, shards)
			}
			got := fmt.Sprintf("%#v", fig)
			if shards == shardCounts[0] {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("seed %d: figscale output diverges at %d shards:\n  1 shard: %s\n  %d shards: %s",
					seed, shards, want, shards, got)
			}
		}
	}
}

// TestScaleRunProgress guards against a vacuous invariance pass: the chaos
// profile must actually kill, detect, and repair, and the node sample must
// actually produce continuity tallies.
func TestScaleRunProgress(t *testing.T) {
	w, err := NewWorld(scaleTestConfig(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, fig, err := ScaleRun(w, RunOptions{
		Horizon: 60 * time.Second, ScaleEpoch: 15 * time.Second,
		Detector: "phi", Overload: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kills == 0 || res.Detections == 0 || res.Repairs == 0 {
		t.Fatalf("chaos made no progress: %+v", res)
	}
	if res.QoEPlayers == 0 || res.MeanContinuity <= 0 {
		t.Fatalf("no segment-level tallies: %+v", res)
	}
	if len(res.Samples) != res.Epochs {
		t.Fatalf("got %d samples for %d epochs", len(res.Samples), res.Epochs)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("figscale has %d series, want 4", len(fig.Series))
	}
	// Orphan ledger: every kill's orphans either repaired, lapsed, or
	// pending at the horizon — and detection never exceeds kills.
	if res.Detections > res.Kills {
		t.Fatalf("%d detections for %d kills", res.Detections, res.Kills)
	}
}

// TestGroupRunShardedMatchesSerial asserts the sharded group-run path (the
// QoE figures' node-level parallelism) reproduces the serial bytes: Figure
// 9(a) computed at Shards=4 equals Shards=1.
func TestGroupRunShardedMatchesSerial(t *testing.T) {
	counts := []int{60, 120}
	horizon := 6 * time.Second
	var want string
	for _, shards := range []int{1, 4} {
		w, err := NewWorld(scaleTestConfig(11, shards))
		if err != nil {
			t.Fatal(err)
		}
		s, err := ContinuityVsPlayers(w, counts, horizon)
		if err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprintf("%#v", s)
		if shards == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("sharded groupRun diverges from serial:\n serial: %s\n sharded: %s", want, got)
		}
	}
}

// TestCrossShardBackupRingFailover kills one supernode whose players'
// backup ring crosses the partition boundary and checks the barrier
// protocol repairs them onto the other shard: CrossShardRepairs is positive
// at two shards, zero at one shard, and the figure-facing outputs (samples,
// continuity) are identical either way.
func TestCrossShardBackupRingFailover(t *testing.T) {
	horizon := 10 * time.Second
	epoch := 5 * time.Second
	run := func(shards int, target int64) (shard.Result, *shard.Runner) {
		w, err := NewWorld(scaleTestConfig(5, shards))
		if err != nil {
			t.Fatal(err)
		}
		clk := &shard.Clock{}
		fog, err := w.buildHealthFog(clk.Now, HealthOptions{})
		if err != nil {
			t.Fatal(err)
		}
		players := w.JoinAll(fog, w.Cfg.Players)
		sched := &fault.Schedule{Events: []fault.Event{
			{At: time.Second, Op: fault.OpKill, Node: target, D: 2 * time.Second},
		}}
		qopts := qoe.DefaultOptions()
		qopts.Warmup = epoch / 5
		runner := shard.NewRunner(shard.Config{
			Shards: shards, Seed: w.Cfg.Seed, Horizon: horizon, Epoch: epoch,
			Width: w.Cfg.Core.Region.Width, Height: w.Cfg.Core.Region.Height,
			QoE: qopts, QoENodeBudget: 16,
		}, fog, players, sched, w.Respawner(), clk)
		res, err := runner.Run()
		if err != nil {
			t.Fatal(err)
		}
		w.LeaveAll(fog, players)
		return res, runner
	}

	// Find a supernode whose failover lands at least one player on the
	// other shard — with a geographic backup ring, any node near the cut
	// qualifies; scan until one does.
	w, err := NewWorld(scaleTestConfig(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	var target int64 = -1
	var twoShard shard.Result
	for _, fn := range w.FaultTargets().Supernodes {
		res, _ := run(2, fn.ID)
		if res.Kills == 0 {
			continue // no players attached; kill skipped or irrelevant
		}
		if res.CrossShardRepairs > 0 {
			target, twoShard = fn.ID, res
			break
		}
	}
	if target < 0 {
		t.Fatal("no supernode produced a cross-shard failover; partition or backup ring is broken")
	}
	if twoShard.Repairs == 0 {
		t.Fatalf("cross-shard repairs without repairs: %+v", twoShard)
	}

	oneShard, _ := run(1, target)
	if oneShard.CrossShardRepairs != 0 {
		t.Fatalf("single shard reports %d cross-shard repairs", oneShard.CrossShardRepairs)
	}
	inv := func(r shard.Result) string {
		return fmt.Sprintf("%#v|%v|%d|%d|%d|%d", r.Samples, r.MeanContinuity,
			r.Kills, r.Detections, r.Repairs, r.Lapsed)
	}
	if inv(oneShard) != inv(twoShard) {
		t.Fatalf("invariant outputs diverge across shard counts:\n 1: %s\n 2: %s",
			inv(oneShard), inv(twoShard))
	}
}
