package experiment

import (
	"testing"
	"time"

	"cloudfog/internal/metrics"
)

// testWorld builds a scaled-down world: 1,500 players, 100 supernodes,
// 10 edge servers — the same proportions as the paper defaults, sized so
// the whole test file runs in seconds.
func testWorld(t *testing.T) *World {
	t.Helper()
	cfg := Default(2026)
	cfg.Players = 1500
	cfg.Supernodes = 100
	cfg.EdgeServers = 10
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func reqs() []time.Duration {
	return []time.Duration{30 * time.Millisecond, 70 * time.Millisecond, 110 * time.Millisecond}
}

func at(s metrics.Series, x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	return -1
}

func TestConfigValidation(t *testing.T) {
	bad := Default(1)
	bad.Players = 0
	if _, err := NewWorld(bad); err == nil {
		t.Fatal("zero players accepted")
	}
	bad = Default(1)
	bad.Datacenters = 0
	if _, err := NewWorld(bad); err == nil {
		t.Fatal("zero datacenters accepted")
	}
	bad = Default(1)
	bad.Supernodes = 100_000
	if _, err := NewWorld(bad); err == nil {
		t.Fatal("more supernodes than capable players accepted")
	}
}

func TestWorldDeterministic(t *testing.T) {
	cfg := Default(7)
	cfg.Players = 500
	cfg.Supernodes = 30
	w1, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := NewWorld(cfg)
	for i := range w1.snSpec {
		if w1.snSpec[i] != w2.snSpec[i] {
			t.Fatal("supernode specs diverge across identical worlds")
		}
	}
	if w1.dcPts[0] != w2.dcPts[0] {
		t.Fatal("datacenter placement diverges")
	}
}

// TestFig5aShape: coverage grows with datacenters (with diminishing
// returns) and shrinks with stricter latency requirements.
func TestFig5aShape(t *testing.T) {
	w := testWorld(t)
	series, err := CoverageVsDatacenters(w, []int{1, 5, 25}, reqs())
	if err != nil {
		t.Fatal(err)
	}
	lenient := series[len(series)-1] // 110ms
	if at(lenient, 25) <= at(lenient, 1) {
		t.Fatalf("coverage did not grow with datacenters: %v", lenient.Points)
	}
	if at(lenient, 5) <= 0.3 {
		t.Fatalf("5-DC coverage at 110ms = %v, implausibly low", at(lenient, 5))
	}
	// Stricter requirement => lower coverage at every datacenter count.
	strict := series[0] // 30ms
	for _, x := range []float64{1, 5, 25} {
		if at(strict, x) >= at(lenient, x) {
			t.Fatalf("30ms coverage %v >= 110ms coverage %v at %v DCs",
				at(strict, x), at(lenient, x), x)
		}
	}
}

// TestFig5bShape: supernodes increase coverage at lenient requirements.
func TestFig5bShape(t *testing.T) {
	w := testWorld(t)
	series, err := CoverageVsSupernodes(w, []int{0, 100}, reqs())
	if err != nil {
		t.Fatal(err)
	}
	lenient := series[len(series)-1]
	if at(lenient, 100) <= at(lenient, 0) {
		t.Fatalf("supernodes did not increase 110ms coverage: %v", lenient.Points)
	}
	// Supernodes must never reduce coverage at any requirement.
	for _, s := range series {
		if at(s, 100) < at(s, 0)-0.01 {
			t.Fatalf("supernodes reduced coverage for %s: %v", s.Label, s.Points)
		}
	}
}

// TestFig7Shape: bandwidth ordering Cloud > EdgeCloud > CloudFog/B, and
// CloudFog's growth is the flattest.
func TestFig7Shape(t *testing.T) {
	w := testWorld(t)
	series, err := BandwidthVsPlayers(w, []int{750, 1500})
	if err != nil {
		t.Fatal(err)
	}
	cloud, edge, fog := series[0], series[1], series[2]
	for _, x := range []float64{750, 1500} {
		if !(at(cloud, x) > at(edge, x) && at(edge, x) > at(fog, x)) {
			t.Fatalf("bandwidth ordering violated at %v players: cloud=%v edge=%v fog=%v",
				x, at(cloud, x), at(edge, x), at(fog, x))
		}
	}
	cloudSlope := at(cloud, 1500) - at(cloud, 750)
	fogSlope := at(fog, 1500) - at(fog, 750)
	if fogSlope >= cloudSlope {
		t.Fatalf("CloudFog bandwidth slope %v not flatter than Cloud's %v", fogSlope, cloudSlope)
	}
}

// TestFig8Shape: mean response latency ordering
// Cloud > EdgeCloud? > CloudFog/B > CloudFog/A (EdgeCloud sits between
// Cloud and CloudFog/B; with only slightly lower latency than Cloud, as
// the paper reports).
func TestFig8Shape(t *testing.T) {
	w := testWorld(t)
	results, err := ResponseLatency(w)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]time.Duration{}
	for _, r := range results {
		byName[r.System] = r.Mean
	}
	if len(byName) != 4 {
		t.Fatalf("expected 4 systems, got %v", byName)
	}
	if !(byName["Cloud"] > byName["CloudFog/B"]) {
		t.Fatalf("Cloud (%v) not slower than CloudFog/B (%v)", byName["Cloud"], byName["CloudFog/B"])
	}
	if !(byName["Cloud"] >= byName["EdgeCloud"]) {
		t.Fatalf("Cloud (%v) not slower than EdgeCloud (%v)", byName["Cloud"], byName["EdgeCloud"])
	}
	if !(byName["EdgeCloud"] > byName["CloudFog/B"]) {
		t.Fatalf("EdgeCloud (%v) not slower than CloudFog/B (%v)", byName["EdgeCloud"], byName["CloudFog/B"])
	}
	if !(byName["CloudFog/B"] >= byName["CloudFog/A"]) {
		t.Fatalf("CloudFog/B (%v) not slower than CloudFog/A (%v)", byName["CloudFog/B"], byName["CloudFog/A"])
	}
}

// TestFig9Shape: continuity ordering Cloud < CloudFog/B <= CloudFog/A.
func TestFig9Shape(t *testing.T) {
	w := testWorld(t)
	series, err := ContinuityVsPlayers(w, []int{400}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string) float64 {
		for _, s := range series {
			if s.Label == label {
				return at(s, 400)
			}
		}
		t.Fatalf("missing series %s", label)
		return 0
	}
	cloud, fogB, fogA := get("Cloud"), get("CloudFog/B"), get("CloudFog/A")
	if !(fogB > cloud) {
		t.Fatalf("CloudFog/B continuity %v not above Cloud %v", fogB, cloud)
	}
	if fogA < fogB-0.02 {
		t.Fatalf("CloudFog/A continuity %v below CloudFog/B %v", fogA, fogB)
	}
}

// TestFig10Shape: the rate adaptation keeps satisfaction up at loads where
// CloudFog/B collapses.
func TestFig10Shape(t *testing.T) {
	w := testWorld(t)
	series, err := AdaptationEffect(w, []int{5, 30}, 40*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	without, with := series[0], series[1]
	if at(with, 30) <= at(without, 30)+0.1 {
		t.Fatalf("adaptation gain at 30 players too small: with=%v without=%v",
			at(with, 30), at(without, 30))
	}
	// At light load both behave the same.
	if d := at(with, 5) - at(without, 5); d < -0.05 || d > 0.05 {
		t.Fatalf("variants diverge at light load: with=%v without=%v", at(with, 5), at(without, 5))
	}
}

// TestFig11Shape: the deadline scheduling keeps satisfaction up at loads
// where CloudFog/B collapses, and never hurts at light load.
func TestFig11Shape(t *testing.T) {
	w := testWorld(t)
	series, err := SchedulingEffect(w, []int{5, 30}, 40*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	without, with := series[0], series[1]
	if at(with, 30) <= at(without, 30)+0.1 {
		t.Fatalf("scheduling gain at 30 players too small: with=%v without=%v",
			at(with, 30), at(without, 30))
	}
	if at(with, 5) < at(without, 5)-0.05 {
		t.Fatalf("scheduling hurt light load: with=%v without=%v", at(with, 5), at(without, 5))
	}
}

func TestJoinAllRestoresOnLeave(t *testing.T) {
	w := testWorld(t)
	sys, err := w.NewFog(w.Cfg.Datacenters, 50)
	if err != nil {
		t.Fatal(err)
	}
	players := w.JoinAll(sys, 200)
	if sys.OnlinePlayers() != 200 {
		t.Fatalf("online = %d", sys.OnlinePlayers())
	}
	w.LeaveAll(sys, players)
	if sys.OnlinePlayers() != 0 {
		t.Fatal("players leaked after LeaveAll")
	}
	for _, p := range players {
		if p.Online || p.Attached.Served() {
			t.Fatal("player state not reset")
		}
	}
}

func TestGameForRequirement(t *testing.T) {
	g, err := gameForRequirement(70 * time.Millisecond)
	if err != nil || g.ID != 3 {
		t.Fatalf("70ms -> game %d, %v", g.ID, err)
	}
	if _, err := gameForRequirement(42 * time.Millisecond); err == nil {
		t.Fatal("unknown requirement accepted")
	}
}

func TestSupernodeScenarioShape(t *testing.T) {
	w := testWorld(t)
	uplink, specs := w.SupernodeScenario(12)
	if uplink <= 0 || len(specs) != 12 {
		t.Fatalf("scenario: uplink=%d players=%d", uplink, len(specs))
	}
	ids := map[int64]bool{}
	for _, sp := range specs {
		if sp.Latency <= 0 || sp.InboundDelay <= 0 {
			t.Fatalf("bad latencies in spec %+v", sp)
		}
		if ids[sp.ID] {
			t.Fatal("duplicate player in scenario")
		}
		ids[sp.ID] = true
	}
}
