package experiment

import (
	"reflect"
	"testing"
	"time"

	"cloudfog/internal/metrics"
)

// sweepTestWorlds builds two identical small worlds, one forced serial and
// one on a 4-worker pool, so every figure can be compared bit-for-bit.
func sweepTestWorlds(t *testing.T) (serial, parallel *World) {
	t.Helper()
	build := func(workers int) *World {
		cfg := Default(77)
		cfg.Players = 800
		cfg.Supernodes = 60
		cfg.SweepWorkers = workers
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	return build(1), build(4)
}

func mustSeries(t *testing.T, s []metrics.Series, err error) []metrics.Series {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestParallelSweepsMatchSerial is the determinism acceptance test: for a
// fixed seed, every figure's series must be bit-identical whether the
// sweep points run serially or on the worker pool.
func TestParallelSweepsMatchSerial(t *testing.T) {
	ws, wp := sweepTestWorlds(t)
	reqs := []time.Duration{30 * time.Millisecond, 70 * time.Millisecond, 110 * time.Millisecond}

	checks := []struct {
		name string
		run  func(w *World) (interface{}, error)
	}{
		{"CoverageVsDatacenters", func(w *World) (interface{}, error) {
			return CoverageVsDatacenters(w, []int{1, 3, 5}, reqs)
		}},
		{"CoverageVsSupernodes", func(w *World) (interface{}, error) {
			return CoverageVsSupernodes(w, []int{0, 20, 60}, reqs)
		}},
		{"BandwidthVsPlayers", func(w *World) (interface{}, error) {
			return BandwidthVsPlayers(w, []int{200, 500, 800})
		}},
		{"ResponseLatency", func(w *World) (interface{}, error) {
			return ResponseLatency(w)
		}},
		{"ContinuityVsPlayers", func(w *World) (interface{}, error) {
			return ContinuityVsPlayers(w, []int{200, 400}, 2*time.Second)
		}},
		{"AdaptationEffect", func(w *World) (interface{}, error) {
			return AdaptationEffect(w, []int{5, 10}, 2*time.Second)
		}},
	}
	for _, c := range checks {
		t.Run(c.name, func(t *testing.T) {
			got, err := c.run(ws)
			if err != nil {
				t.Fatal(err)
			}
			want, err := c.run(wp)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("serial and parallel outputs differ\nserial:   %+v\nparallel: %+v", got, want)
			}
		})
	}
}

// TestCloneIsolation: joining players in a clone must not leak runtime
// state into the original world's players.
func TestCloneIsolation(t *testing.T) {
	ws, _ := sweepTestWorlds(t)
	cw := ws.Clone()
	sys, err := cw.NewFog(cw.Cfg.Datacenters, cw.Cfg.Supernodes)
	if err != nil {
		t.Fatal(err)
	}
	players := cw.JoinAll(sys, 300)
	if len(players) == 0 {
		t.Fatal("no players joined in clone")
	}
	for _, p := range ws.Pop.Players {
		if p.Online || p.Attached.Served() || p.Backups != nil {
			t.Fatalf("player %d in the original world picked up clone state", p.ID)
		}
	}
	// Shared immutable spec: same IDs and positions in both worlds.
	for i, p := range ws.Pop.Players {
		cp := cw.Pop.Players[i]
		if p.ID != cp.ID || p.Pos != cp.Pos {
			t.Fatalf("clone changed player %d's spec", p.ID)
		}
	}
}

// TestSweepSerialFastPathUsesOriginalWorld: with one worker the sweep must
// run on the original world (no clone), preserving pre-harness behavior.
func TestSweepSerialFastPathUsesOriginalWorld(t *testing.T) {
	ws, _ := sweepTestWorlds(t)
	err := ws.sweepPoints(3, func(pw *World, i int) error {
		if pw != ws {
			t.Fatal("serial sweep did not run on the original world")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
