package experiment

import (
	"testing"
	"time"

	"cloudfog/internal/coop"
	"cloudfog/internal/core"
	"cloudfog/internal/sim"
	"cloudfog/internal/trust"
	"cloudfog/internal/workload"
)

// TestIntegratedFogOperations runs everything at once: session churn,
// graceful supernode departures and returns, periodic cooperation passes,
// and a byzantine supernode whose players report failures until the trust
// registry blacklists it. The run must keep every online player served,
// drain the byzantine supernode, and let cooperation reduce latency.
func TestIntegratedFogOperations(t *testing.T) {
	cfg := Default(77)
	cfg.Players = 800
	cfg.Supernodes = 50
	cfg.EdgeServers = 5

	registry := trust.NewRegistry(trust.Config{BlacklistBelow: 0.6, MinReports: 15, Decay: 1})
	cfg.Core.Exclude = registry.Blacklisted

	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.New()
	fog, err := w.NewFog(cfg.Datacenters, cfg.Supernodes)
	if err != nil {
		t.Fatal(err)
	}
	churn := workload.NewChurn(engine, fog, w.Pop, 5, sim.NewRand(78))
	churn.Start()

	// Let the system fill before the adversary acts.
	engine.RunUntil(20 * time.Minute)

	// The byzantine supernode: the most-loaded one starts corrupting
	// streams; its players notice and report.
	var byzantine *core.Supernode
	for _, sn := range fog.Supernodes() {
		if byzantine == nil || sn.Load() > byzantine.Load() {
			byzantine = sn
		}
	}
	if byzantine == nil || byzantine.Load() == 0 {
		t.Fatal("setup: no loaded supernode to corrupt")
	}
	byzID := byzantine.ID

	reporter := engine.Every(time.Minute, func() {
		for _, sn := range fog.Supernodes() {
			for range sn.Players() {
				registry.Report(sn.ID, sn.ID != byzID)
			}
		}
		// Players on a blacklisted supernode are reassigned by the cloud
		// (it deregisters the machine and terminates the contract).
		if registry.Blacklisted(byzID) {
			fog.DeregisterSupernode(byzID)
		}
	})
	defer reporter.Stop()

	// Supernode churn: every 15 minutes one machine leaves and returns.
	departRng := sim.NewRand(79)
	engine.Every(15*time.Minute, func() {
		sns := fog.Supernodes()
		if len(sns) == 0 {
			return
		}
		sn := sns[departRng.Intn(len(sns))]
		if sn.ID == byzID {
			return
		}
		id, pos, capacity, uplink := sn.ID, sn.Pos, sn.Capacity, sn.Uplink
		fog.DeregisterSupernode(id)
		engine.Schedule(4*time.Minute, func() {
			if registry.Blacklisted(id) {
				return
			}
			fresh := core.NewSupernode(id, pos, capacity, uplink)
			if err := fog.RegisterSupernode(fresh); err != nil {
				t.Errorf("re-register: %v", err)
			}
		})
	})

	// Cooperation: a rebalancing pass every 10 minutes.
	var coopMoves int
	engine.Every(10*time.Minute, func() {
		coopMoves += coop.Rebalance(fog, coop.DefaultConfig()).Moves
	})

	engine.RunUntil(3 * time.Hour)

	// 1. The byzantine supernode was caught and drained.
	if !registry.Blacklisted(byzID) {
		t.Fatal("byzantine supernode never blacklisted")
	}
	for _, sn := range fog.Supernodes() {
		if sn.ID == byzID {
			t.Fatal("byzantine supernode still registered")
		}
	}

	// 2. No player was left unserved by any of the machinery.
	online := 0
	for _, p := range w.Pop.Players {
		if !p.Online {
			continue
		}
		online++
		if !p.Attached.Served() {
			t.Fatalf("online player %d unserved", p.ID)
		}
		if p.Attached.Kind == core.AttachSupernode && p.Attached.SN.ID == byzID {
			t.Fatalf("player %d still on the byzantine supernode", p.ID)
		}
	}
	if online == 0 {
		t.Fatal("no players online after three hours of churn")
	}

	// 3. Cooperation did real work.
	if coopMoves == 0 {
		t.Fatal("cooperation passes never moved a player")
	}

	// 4. Core invariants hold at the end.
	for _, sn := range fog.Supernodes() {
		if sn.Load() > sn.Capacity {
			t.Fatalf("supernode %d over capacity", sn.ID)
		}
		for _, pid := range sn.Players() {
			p := sn.Member(pid)
			if p == nil || p.Attached.SN != sn {
				t.Fatalf("membership inconsistency at supernode %d", sn.ID)
			}
		}
	}
}
