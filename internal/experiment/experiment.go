// Package experiment regenerates every figure of the CloudFog paper's
// evaluation (§IV) on the simulator substrate. Each exported function
// corresponds to one figure and returns the same series the paper plots;
// the cmd/cloudfog-sim tool and the repository benchmarks print them.
//
// Default settings follow the paper: 10,000 players (10% supernode-capable,
// 600 selected as supernodes), 5 main datacenters, 45 extra EdgeCloud
// servers, Poisson joins at 5 players/second, session lengths from the
// daily play-time mixture, θ=0.5, λ=1, h₁=100, h₂=10, 30 fps video.
package experiment

import (
	"fmt"
	"sort"
	"time"

	"cloudfog/internal/baseline"
	"cloudfog/internal/core"
	"cloudfog/internal/game"
	"cloudfog/internal/geo"
	"cloudfog/internal/metrics"
	"cloudfog/internal/obs"
	"cloudfog/internal/recfmt"
	"cloudfog/internal/sim"
	"cloudfog/internal/trace"
	"cloudfog/internal/workload"
)

// Config parameterizes the whole evaluation.
type Config struct {
	Seed int64
	// Core carries the infrastructure knobs (latency model, stream
	// sizing, assignment parameters).
	Core core.Config
	// Workload carries the population parameters.
	Workload workload.Config

	Players            int
	Supernodes         int
	Datacenters        int
	EdgeServers        int
	EdgeServerCapacity int
	EdgeServerEgress   int64

	// SweepWorkers bounds the worker pool the figure sweeps run their
	// independent points on: 0 (the default) means one worker per
	// available CPU, 1 forces the serial path. Series values are
	// identical at any setting; see sweepPoints.
	SweepWorkers int

	// Shards partitions a single run's simulated world by geographic
	// region and runs the slices in parallel between deterministic epoch
	// barriers (internal/shard). 0 or 1 runs serially; any value produces
	// byte-identical figure output (see groupRun and ScaleRun).
	Shards int

	// Obs, when non-nil, aggregates observability counters from every
	// system and QoE run a figure performs: segment lifecycle and delivery
	// latency from the per-node simulations, assignment outcomes from each
	// minted fog, and engine event totals. The registry is shared across
	// sweep workers (all updates are atomic and commutative), so figure
	// series stay bit-identical at any worker count.
	Obs *obs.Registry
}

// Default returns the paper-default configuration.
func Default(seed int64) Config {
	coreCfg := core.DefaultConfig(seed)
	coreCfg.DCEgress = 2_500_000_000 // per-datacenter video egress
	wl := workload.DefaultConfig(seed + 1)
	return Config{
		Seed:               seed,
		Core:               coreCfg,
		Workload:           wl,
		Players:            10_000,
		Supernodes:         600,
		Datacenters:        5,
		EdgeServers:        45,
		EdgeServerCapacity: 15,
		EdgeServerEgress:   100_000_000,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Players < 1 {
		return fmt.Errorf("experiment: Players %d < 1", c.Players)
	}
	if c.Datacenters < 1 {
		return fmt.Errorf("experiment: Datacenters %d < 1", c.Datacenters)
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	return c.Workload.Validate()
}

// World holds the generated population and infrastructure specifications.
// Infrastructure entities carry runtime state (attached players), so World
// stores immutable specs and mints fresh instances per system.
type World struct {
	Cfg Config
	Pop *workload.Population

	dcPts  []geo.Point
	srvPts []geo.Point
	snSpec []snSpec
}

type snSpec struct {
	id       int64
	pos      geo.Point
	capacity int
	uplink   int64
}

// NewWorld generates the population and infrastructure placements.
func NewWorld(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	wl := cfg.Workload
	wl.Players = cfg.Players
	pop, err := workload.Generate(wl)
	if err != nil {
		return nil, err
	}
	w := &World{Cfg: cfg, Pop: pop}

	rng := sim.NewRand(cfg.Seed + 100)
	w.dcPts = geo.SpreadPoints(cfg.Core.Region, maxInt(cfg.Datacenters, 25), rng.Fork())
	w.srvPts = geo.SpreadPoints(cfg.Core.Region, cfg.EdgeServers, rng.Fork())

	sns, err := pop.BuildSupernodes(cfg.Supernodes, cfg.Core.UplinkPerSlot, rng.Fork())
	if err != nil {
		return nil, err
	}
	w.snSpec = make([]snSpec, len(sns))
	for i, sn := range sns {
		w.snSpec[i] = snSpec{id: sn.ID, pos: sn.Pos, capacity: sn.Capacity, uplink: sn.Uplink}
	}
	return w, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Fingerprint digests the generated world — every player's identity,
// position, downlink, and capability flag, the supernode specs, and the
// infrastructure placements — into one CRC-protected value. The flight
// recorder stamps it into each recording and checks it before replaying:
// a replay that reconstructs a different world (changed generation code, a
// different workload default) fails immediately instead of producing a
// confusing figure-byte divergence ten minutes in.
func (w *World) Fingerprint() uint32 {
	var b []byte
	b = recfmt.AppendVarint(b, w.Cfg.Seed)
	b = recfmt.AppendUvarint(b, uint64(len(w.Pop.Players)))
	for _, p := range w.Pop.Players {
		b = recfmt.AppendVarint(b, p.ID)
		b = recfmt.AppendFloat64(b, p.Pos.X)
		b = recfmt.AppendFloat64(b, p.Pos.Y)
		b = recfmt.AppendVarint(b, p.Downlink)
		cap := uint64(0)
		if p.SupernodeCapable {
			cap = 1
		}
		b = recfmt.AppendUvarint(b, cap)
	}
	b = recfmt.AppendUvarint(b, uint64(len(w.snSpec)))
	for _, sp := range w.snSpec {
		b = recfmt.AppendVarint(b, sp.id)
		b = recfmt.AppendFloat64(b, sp.pos.X)
		b = recfmt.AppendFloat64(b, sp.pos.Y)
		b = recfmt.AppendVarint(b, int64(sp.capacity))
		b = recfmt.AppendVarint(b, sp.uplink)
	}
	for _, pts := range [][]geo.Point{w.dcPts, w.srvPts} {
		b = recfmt.AppendUvarint(b, uint64(len(pts)))
		for _, pt := range pts {
			b = recfmt.AppendFloat64(b, pt.X)
			b = recfmt.AppendFloat64(b, pt.Y)
		}
	}
	return recfmt.Checksum(b)
}

// Datacenters mints n fresh datacenter instances.
func (w *World) Datacenters(n int) []*core.Datacenter {
	if n > len(w.dcPts) {
		n = len(w.dcPts)
	}
	dcs := make([]*core.Datacenter, n)
	for i := 0; i < n; i++ {
		dcs[i] = core.NewDatacenter(workload.DatacenterIDBase+int64(i), w.dcPts[i], w.Cfg.Core.DCEgress)
	}
	return dcs
}

// EdgeServers mints fresh edge-server instances.
func (w *World) EdgeServers() []*core.Datacenter {
	servers := make([]*core.Datacenter, len(w.srvPts))
	for i, pt := range w.srvPts {
		servers[i] = core.NewEdgeServer(workload.EdgeServerIDBase+int64(i), pt,
			w.Cfg.EdgeServerEgress, w.Cfg.EdgeServerCapacity)
	}
	return servers
}

// SupernodeSet mints n fresh supernode instances (the first n of the
// selected set, so sweeps nest).
func (w *World) SupernodeSet(n int) []*core.Supernode {
	if n > len(w.snSpec) {
		n = len(w.snSpec)
	}
	sns := make([]*core.Supernode, n)
	for i := 0; i < n; i++ {
		sp := w.snSpec[i]
		sns[i] = core.NewSupernode(sp.id, sp.pos, sp.capacity, sp.uplink)
	}
	return sns
}

// NewFog builds a CloudFog system with nDCs datacenters and nSNs supernodes.
func (w *World) NewFog(nDCs, nSNs int) (*core.Fog, error) {
	cc := w.Cfg.Core
	if w.Cfg.Obs != nil {
		cc.Obs = obs.AssignStatsIn(w.Cfg.Obs)
	}
	return core.BuildFog(cc, w.Datacenters(nDCs), w.SupernodeSet(nSNs),
		sim.NewRand(w.Cfg.Seed+200))
}

// NewCloud builds the Cloud baseline with nDCs datacenters.
func (w *World) NewCloud(nDCs int) (*baseline.Cloud, error) {
	return baseline.NewCloud(w.Cfg.Core, w.Datacenters(nDCs), sim.NewRand(w.Cfg.Seed+201))
}

// NewEdgeCloud builds the EdgeCloud baseline with nDCs datacenters and the
// configured edge servers.
func (w *World) NewEdgeCloud(nDCs int) (*baseline.EdgeCloud, error) {
	return baseline.NewEdgeCloud(w.Cfg.Core, w.Datacenters(nDCs), w.EdgeServers(),
		sim.NewRand(w.Cfg.Seed+202))
}

// JoinAll assigns every one of the first n players a game (uniformly at
// random, deterministic in the world seed) and joins them to the system in
// a deterministic shuffled order, returning the joined players.
func (w *World) JoinAll(sys core.System, n int) []*core.Player {
	return w.joinAll(sys, n, nil)
}

// JoinAllGame is JoinAll with every player assigned the same game — the
// coverage sweeps' semantics, where each curve is a world whose games share
// one network latency requirement.
func (w *World) JoinAllGame(sys core.System, n int, g game.Game) []*core.Player {
	return w.joinAll(sys, n, &g)
}

func (w *World) joinAll(sys core.System, n int, fixed *game.Game) []*core.Player {
	if n > len(w.Pop.Players) {
		n = len(w.Pop.Players)
	}
	rng := sim.NewRand(w.Cfg.Seed + 300)
	players := make([]*core.Player, n)
	order := rng.Perm(len(w.Pop.Players))[:n]
	for i, idx := range order {
		p := w.Pop.Players[idx]
		if fixed != nil {
			p.Game = *fixed
		} else {
			g, err := game.ByID(1 + rng.Intn(5))
			if err != nil {
				panic(err)
			}
			p.Game = g
		}
		players[i] = p
	}
	for _, p := range players {
		sys.Join(p)
	}
	return players
}

// UseLatencySource swaps the latency source the world's systems measure
// against — the hook that runs every experiment on the loopback-TCP testbed
// instead of the synthetic model.
func (w *World) UseLatencySource(src trace.Source) { w.Cfg.Core.Latency = src }

// Endpoints enumerates every node in the world (players, supernodes,
// datacenter sites, edge servers) for the testbed to host.
func (w *World) Endpoints() []trace.Endpoint {
	out := make([]trace.Endpoint, 0, len(w.Pop.Players)+len(w.snSpec)+len(w.dcPts)+len(w.srvPts))
	for _, p := range w.Pop.Players {
		out = append(out, p.Endpoint())
	}
	for _, sp := range w.snSpec {
		out = append(out, trace.Endpoint{ID: trace.NodeID(sp.id), Pos: sp.pos, Class: trace.ClassSupernode})
	}
	for i, pt := range w.dcPts {
		out = append(out, trace.Endpoint{ID: trace.NodeID(workload.DatacenterIDBase + int64(i)), Pos: pt, Class: trace.ClassDatacenter})
	}
	for i, pt := range w.srvPts {
		out = append(out, trace.Endpoint{ID: trace.NodeID(workload.EdgeServerIDBase + int64(i)), Pos: pt, Class: trace.ClassServer})
	}
	return out
}

// ProbePairs enumerates the endpoint pairs the experiments will measure —
// every player against every datacenter site and edge server, its k
// geographically nearest supernodes, and every supernode against every
// datacenter — so a testbed can prewarm them in parallel.
func (w *World) ProbePairs(k int) [][2]trace.Endpoint {
	var pairs [][2]trace.Endpoint
	sns := make([]trace.Endpoint, len(w.snSpec))
	for i, sp := range w.snSpec {
		sns[i] = trace.Endpoint{ID: trace.NodeID(sp.id), Pos: sp.pos, Class: trace.ClassSupernode}
	}
	dcs := make([]trace.Endpoint, len(w.dcPts))
	for i, pt := range w.dcPts {
		dcs[i] = trace.Endpoint{ID: trace.NodeID(workload.DatacenterIDBase + int64(i)), Pos: pt, Class: trace.ClassDatacenter}
	}
	srvs := make([]trace.Endpoint, len(w.srvPts))
	for i, pt := range w.srvPts {
		srvs[i] = trace.Endpoint{ID: trace.NodeID(workload.EdgeServerIDBase + int64(i)), Pos: pt, Class: trace.ClassServer}
	}
	for _, p := range w.Pop.Players {
		pe := p.Endpoint()
		for _, dc := range dcs {
			pairs = append(pairs, [2]trace.Endpoint{pe, dc})
		}
		for _, sv := range srvs {
			pairs = append(pairs, [2]trace.Endpoint{pe, sv})
		}
		// k geographically nearest supernodes (a superset of any
		// shortlist the assignment protocol will build).
		type cand struct {
			i int
			d float64
		}
		cands := make([]cand, len(sns))
		for i, sn := range sns {
			cands[i] = cand{i, pe.Pos.DistanceTo(sn.Pos)}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
		n := k
		if n > len(cands) {
			n = len(cands)
		}
		for _, c := range cands[:n] {
			pairs = append(pairs, [2]trace.Endpoint{pe, sns[c.i]})
		}
	}
	for _, sn := range sns {
		for _, dc := range dcs {
			pairs = append(pairs, [2]trace.Endpoint{sn, dc})
		}
	}
	return pairs
}

// LeaveAll detaches the players (restoring the world for the next system).
func (w *World) LeaveAll(sys core.System, players []*core.Player) {
	for _, p := range players {
		sys.Leave(p)
	}
}

// gameForRequirement maps a swept network latency requirement onto the
// matching game (the Figure 2 ladder rows are exactly the swept values).
func gameForRequirement(req time.Duration) (game.Game, error) {
	for _, g := range game.Games() {
		if g.NetworkBudget() == req {
			return g, nil
		}
	}
	return game.Game{}, fmt.Errorf("experiment: no game with network requirement %v", req)
}

// CoverageVsDatacenters reproduces Figure 5(a): the fraction of players
// whose network latency is within the requirement, as the number of
// datacenters grows, under the pure Cloud model. Each requirement curve is
// a run where every player plays the game with that requirement, matching
// the paper's "different network latency requirements of games".
func CoverageVsDatacenters(w *World, dcCounts []int, reqs []time.Duration) ([]metrics.Series, error) {
	return coverageSweep(w, dcCounts, reqs, func(pw *World, n int) (core.System, error) {
		return pw.NewCloud(n)
	})
}

// coverageSweep runs one coverage figure: every (count, requirement) pair
// is an independent point — a fresh system, a full join of the population
// on the requirement's game, a coverage measurement — so the pairs run on
// the sweep worker pool, each writing its preallocated series cell.
func coverageSweep(w *World, counts []int, reqs []time.Duration,
	build func(pw *World, n int) (core.System, error)) ([]metrics.Series, error) {
	games := make([]game.Game, len(reqs))
	series := make([]metrics.Series, len(reqs))
	for i, req := range reqs {
		g, err := gameForRequirement(req)
		if err != nil {
			return nil, err
		}
		games[i] = g
		series[i].Label = fmt.Sprintf("req=%dms", req.Milliseconds())
		series[i].Points = make([]metrics.Point, len(counts))
	}
	err := w.sweepPoints(len(counts)*len(reqs), func(pw *World, pt int) error {
		ci, ri := pt/len(reqs), pt%len(reqs)
		n := counts[ci]
		sys, err := build(pw, n)
		if err != nil {
			return err
		}
		players := pw.JoinAllGame(sys, pw.Cfg.Players, games[ri])
		var cov metrics.Coverage
		for _, p := range players {
			cov.Observe(sys.NetworkLatency(p), reqs[ri])
		}
		series[ri].Points[ci] = metrics.Point{X: float64(n), Y: cov.Fraction()}
		pw.LeaveAll(sys, players)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return series, nil
}

// CoverageVsSupernodes reproduces Figure 5(b): coverage as supernodes are
// added to the default datacenter deployment.
func CoverageVsSupernodes(w *World, snCounts []int, reqs []time.Duration) ([]metrics.Series, error) {
	return coverageSweep(w, snCounts, reqs, func(pw *World, n int) (core.System, error) {
		return pw.NewFog(pw.Cfg.Datacenters, n)
	})
}

// BandwidthVsPlayers reproduces Figure 7(a): the cloud's video egress as
// the number of concurrent players grows, for Cloud, EdgeCloud and
// CloudFog/B. Values are in Mbit/s.
func BandwidthVsPlayers(w *World, playerCounts []int) ([]metrics.Series, error) {
	builds := []struct {
		label string
		build func(pw *World) (core.System, error)
	}{
		{"Cloud", func(pw *World) (core.System, error) { return pw.NewCloud(pw.Cfg.Datacenters) }},
		{"EdgeCloud", func(pw *World) (core.System, error) { return pw.NewEdgeCloud(pw.Cfg.Datacenters) }},
		{"CloudFog/B", func(pw *World) (core.System, error) { return pw.NewFog(pw.Cfg.Datacenters, pw.Cfg.Supernodes) }},
	}
	series := make([]metrics.Series, len(builds))
	for i, b := range builds {
		series[i].Label = b.label
		series[i].Points = make([]metrics.Point, len(playerCounts))
	}
	err := w.sweepPoints(len(playerCounts)*len(builds), func(pw *World, pt int) error {
		ci, si := pt/len(builds), pt%len(builds)
		n := playerCounts[ci]
		sys, err := builds[si].build(pw)
		if err != nil {
			return err
		}
		players := pw.JoinAll(sys, n)
		series[si].Points[ci] = metrics.Point{X: float64(n), Y: float64(sys.CloudBandwidth()) / 1e6}
		pw.LeaveAll(sys, players)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return series, nil
}

// LatencyResult is one system's average response network latency (Fig. 8).
type LatencyResult struct {
	System string
	Mean   time.Duration
	Median time.Duration
	P90    time.Duration
}

// ResponseLatency reproduces Figure 8(a): the average response latency per
// player under Cloud, EdgeCloud, CloudFog/B and CloudFog/A at the default
// scale. CloudFog/A uses the flow-level adaptation proxy (encoders step
// down until the segment fits the game's budget).
func ResponseLatency(w *World) ([]LatencyResult, error) {
	systems := []struct {
		name    string
		build   func(pw *World) (core.System, error)
		adapted bool
	}{
		{"Cloud", func(pw *World) (core.System, error) { return pw.NewCloud(pw.Cfg.Datacenters) }, false},
		{"EdgeCloud", func(pw *World) (core.System, error) { return pw.NewEdgeCloud(pw.Cfg.Datacenters) }, false},
		{"CloudFog/B", func(pw *World) (core.System, error) { return pw.NewFog(pw.Cfg.Datacenters, pw.Cfg.Supernodes) }, false},
		{"CloudFog/A", func(pw *World) (core.System, error) { return pw.NewFog(pw.Cfg.Datacenters, pw.Cfg.Supernodes) }, true},
	}
	out := make([]LatencyResult, len(systems))
	err := w.sweepPoints(len(systems), func(pw *World, i int) error {
		sys, err := systems[i].build(pw)
		if err != nil {
			return err
		}
		players := pw.JoinAll(sys, pw.Cfg.Players)
		var ds metrics.DurationSample
		for _, p := range players {
			var l time.Duration
			if systems[i].adapted {
				l = core.AdaptedFlowLatency(pw.Cfg.Core, p)
			} else {
				l = sys.NetworkLatency(p)
			}
			ds.Add(l + game.PlayoutDelay)
		}
		out[i] = LatencyResult{
			System: systems[i].name,
			Mean:   ds.Mean(),
			Median: ds.Median(),
			P90:    ds.Percentile(90),
		}
		pw.LeaveAll(sys, players)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
