package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cloudfog/internal/fault"
	"cloudfog/internal/health"
	"cloudfog/internal/metrics"
	"cloudfog/internal/shard"
)

// RunOptions is the shared knob set every registered figure accepts. The
// zero value means "paper defaults": nil slices and a zero horizon are
// filled per figure, and sweep counts exceeding the world's population or
// supernode pool are trimmed rather than rejected, so one options struct
// drives every figure of a run.
type RunOptions struct {
	// Horizon is the virtual-time horizon of the QoE figures (9a runs
	// each point for Horizon/3: its sweep multiplies four systems by the
	// player counts, and the paper's continuity curves flatten well
	// before a full horizon). Default: 60s.
	Horizon time.Duration
	// Reqs are the network-requirement curves of the coverage figures.
	// Default: the Figure 2 ladder (30, 50, 70, 90, 110 ms).
	Reqs []time.Duration
	// DCCounts is the Figure 5(a) datacenter sweep.
	DCCounts []int
	// SNCounts is the Figure 5(b) supernode sweep.
	SNCounts []int
	// PlayerCounts is the Figure 7(a) bandwidth sweep.
	PlayerCounts []int
	// ContinuityCounts is the Figure 9(a) concurrent-player sweep.
	ContinuityCounts []int
	// Loads is the Figure 10(a)/11(a) players-per-supernode sweep.
	Loads []int
	// ChurnRates is the figchurn supernode kill-rate sweep, in kills per
	// minute. Rate 0 is the fault-free baseline point.
	ChurnRates []float64
	// Faults, when non-nil, is the fault profile the resilience figures
	// replay (figrecovery runs it verbatim; figchurn borrows its duration).
	// Nil uses the built-in chaos profile keyed by the world seed.
	Faults *fault.Profile
	// DetectIntervals is the figdetect heartbeat-interval sweep.
	DetectIntervals []time.Duration
	// Detector selects how the resilience figures notice supernode
	// failures: "oracle" (or empty, the default — drawn repair delays,
	// bit-identical to the pre-health figures), "timeout", or "phi".
	// figdetect always sweeps all three modes regardless.
	Detector string
	// Overload installs the supernode degradation ladder on every fog the
	// resilience figures build.
	Overload bool
	// Breaker installs the cloud-fallback circuit breaker on those fogs.
	Breaker bool
	// ScaleEpoch is the sharded scaling run's barrier interval (figscale).
	// Default: 15s.
	ScaleEpoch time.Duration
	// ScaleNodeBudget caps how many supernodes run the segment-level QoE
	// simulation per epoch of the scaling run; the sample is a pure hash
	// of (seed, epoch, node), so it is partition-invariant. 0 uses the
	// default of 32; pass a negative value to simulate every node.
	ScaleNodeBudget int
	// ScaleDiag, when non-nil, receives the shard.Result of every scaling
	// run executed with these options. The flight recorder uses it to
	// capture the partition diagnostics — per-shard RNG seeds and draw
	// counts — that never feed figure bytes and so cannot be recovered
	// from a FigureResult.
	ScaleDiag func(shard.Result)
}

// healthOptions resolves the run's failure-handling knobs, rejecting unknown
// detector names.
func (o RunOptions) healthOptions() (HealthOptions, error) {
	mode, err := health.ParseMode(o.Detector)
	if err != nil {
		return HealthOptions{}, err
	}
	return HealthOptions{Detector: mode, Overload: o.Overload, Breaker: o.Breaker}, nil
}

// DefaultRunOptions returns the sweeps the paper's evaluation uses.
func DefaultRunOptions() RunOptions {
	return RunOptions{
		Horizon:          60 * time.Second,
		Reqs:             DefaultReqs(),
		DCCounts:         []int{1, 5, 10, 15, 20, 25},
		SNCounts:         []int{0, 100, 200, 300, 400, 500, 600},
		PlayerCounts:     []int{1000, 2000, 4000, 6000, 8000, 10000},
		ContinuityCounts: []int{500, 1000, 2000, 3000},
		Loads:            []int{5, 10, 15, 20, 25, 30},
		ChurnRates:       []float64{0, 1, 2, 4, 8},
		DetectIntervals:  []time.Duration{2 * time.Second, 5 * time.Second, 10 * time.Second, 15 * time.Second, 20 * time.Second},
	}
}

// DefaultReqs returns the network latency requirements of the Figure 2 game
// ladder — the coverage figures' curve set.
func DefaultReqs() []time.Duration {
	return []time.Duration{
		30 * time.Millisecond, 50 * time.Millisecond, 70 * time.Millisecond,
		90 * time.Millisecond, 110 * time.Millisecond,
	}
}

// filled returns a copy with every unset field at its paper default.
func (o RunOptions) filled() RunOptions {
	d := DefaultRunOptions()
	if o.Horizon <= 0 {
		o.Horizon = d.Horizon
	}
	if len(o.Reqs) == 0 {
		o.Reqs = d.Reqs
	}
	if len(o.DCCounts) == 0 {
		o.DCCounts = d.DCCounts
	}
	if len(o.SNCounts) == 0 {
		o.SNCounts = d.SNCounts
	}
	if len(o.PlayerCounts) == 0 {
		o.PlayerCounts = d.PlayerCounts
	}
	if len(o.ContinuityCounts) == 0 {
		o.ContinuityCounts = d.ContinuityCounts
	}
	if len(o.Loads) == 0 {
		o.Loads = d.Loads
	}
	if len(o.ChurnRates) == 0 {
		o.ChurnRates = d.ChurnRates
	}
	if len(o.DetectIntervals) == 0 {
		o.DetectIntervals = d.DetectIntervals
	}
	if o.ScaleEpoch <= 0 {
		o.ScaleEpoch = 15 * time.Second
	}
	if o.ScaleNodeBudget == 0 {
		o.ScaleNodeBudget = 32
	} else if o.ScaleNodeBudget < 0 {
		o.ScaleNodeBudget = 0 // explicit "no cap"
	}
	return o
}

// trimMax returns the counts not exceeding limit, preserving order.
func trimMax(counts []int, limit int) []int {
	out := make([]int, 0, len(counts))
	for _, c := range counts {
		if c <= limit {
			out = append(out, c)
		}
	}
	return out
}

// FigureResult is one figure's output: series for the sweep figures, or
// per-system latency rows for Figure 8(a). Exactly one of Series/Latency is
// non-empty. Title, when set, is a run-specific caption (e.g. carrying the
// world's datacenter count) that overrides the Figure's static one.
type FigureResult struct {
	Name   string
	Title  string
	XLabel string

	Series  []metrics.Series
	Latency []LatencyResult
}

// Figure is one registered paper figure. Run executes it against a world
// with the given options; it never mutates the world's lasting state (every
// sweep leaves joined players again).
type Figure struct {
	// Name is the canonical registry key, e.g. "fig9a".
	Name string
	// Title is the paper caption the CLI prints.
	Title string
	// XLabel names the swept axis.
	XLabel string
	// Run executes the figure.
	Run func(w *World, o RunOptions) (FigureResult, error)
}

// figures is the registry, in paper order.
var figures = []Figure{
	{
		Name:   "fig5a",
		Title:  "Figure 5(a): user coverage vs number of datacenters (Cloud)",
		XLabel: "#datacenters",
		Run: func(w *World, o RunOptions) (FigureResult, error) {
			o = o.filled()
			s, err := CoverageVsDatacenters(w, o.DCCounts, o.Reqs)
			return FigureResult{Series: s}, err
		},
	},
	{
		Name:   "fig5b",
		Title:  "Figure 5(b): user coverage vs number of supernodes",
		XLabel: "#supernodes",
		Run: func(w *World, o RunOptions) (FigureResult, error) {
			o = o.filled()
			s, err := CoverageVsSupernodes(w, trimMax(o.SNCounts, w.Cfg.Supernodes), o.Reqs)
			title := fmt.Sprintf("Figure 5(b): user coverage vs number of supernodes (%d datacenters)",
				w.Cfg.Datacenters)
			return FigureResult{Title: title, Series: s}, err
		},
	},
	{
		Name:   "fig7a",
		Title:  "Figure 7(a): cloud bandwidth consumption (Mbit/s) vs number of players",
		XLabel: "#players",
		Run: func(w *World, o RunOptions) (FigureResult, error) {
			o = o.filled()
			s, err := BandwidthVsPlayers(w, trimMax(o.PlayerCounts, w.Cfg.Players))
			return FigureResult{Series: s}, err
		},
	},
	{
		Name:   "fig8a",
		Title:  "Figure 8(a): average response latency per player",
		XLabel: "system",
		Run: func(w *World, o RunOptions) (FigureResult, error) {
			res, err := ResponseLatency(w)
			return FigureResult{Latency: res}, err
		},
	},
	{
		Name:   "fig9a",
		Title:  "Figure 9(a): average playback continuity vs concurrent players",
		XLabel: "#players",
		Run: func(w *World, o RunOptions) (FigureResult, error) {
			o = o.filled()
			s, err := ContinuityVsPlayers(w, trimMax(o.ContinuityCounts, w.Cfg.Players), o.Horizon/3)
			return FigureResult{Series: s}, err
		},
	},
	{
		Name:   "fig10a",
		Title:  "Figure 10(a): satisfied players, with/without encoding rate adaptation",
		XLabel: "players/SN",
		Run: func(w *World, o RunOptions) (FigureResult, error) {
			o = o.filled()
			s, err := AdaptationEffect(w, o.Loads, o.Horizon)
			return FigureResult{Series: s}, err
		},
	},
	{
		Name:   "fig11a",
		Title:  "Figure 11(a): satisfied players, with/without deadline-driven scheduling",
		XLabel: "players/SN",
		Run: func(w *World, o RunOptions) (FigureResult, error) {
			o = o.filled()
			s, err := SchedulingEffect(w, o.Loads, o.Horizon)
			return FigureResult{Series: s}, err
		},
	},
	{
		Name:   "figchurn",
		Title:  "Resilience: service quality vs supernode churn rate",
		XLabel: "kills/min",
		Run: func(w *World, o RunOptions) (FigureResult, error) {
			o = o.filled()
			ho, err := o.healthOptions()
			if err != nil {
				return FigureResult{}, err
			}
			s, err := QoEVsChurn(w, o.ChurnRates, resilienceProfile(w, o).Duration.Duration, ho)
			return FigureResult{Series: s}, err
		},
	},
	{
		Name:   "figrecovery",
		Title:  "Resilience: recovery timeline under the chaos profile",
		XLabel: "t (s)",
		Run: func(w *World, o RunOptions) (FigureResult, error) {
			o = o.filled()
			ho, err := o.healthOptions()
			if err != nil {
				return FigureResult{}, err
			}
			s, title, err := RecoveryTimeline(w, resilienceProfile(w, o), o.Horizon, ho)
			return FigureResult{Title: title, Series: s}, err
		},
	},
	{
		Name:   "figscale",
		Title:  "Scaling: sharded single-run service quality over time",
		XLabel: "t (s)",
		Run: func(w *World, o RunOptions) (FigureResult, error) {
			_, fig, err := ScaleRun(w, o)
			return fig, err
		},
	},
	{
		Name:   "figdetect",
		Title:  "Failure detection latency: oracle vs timeout vs phi-accrual",
		XLabel: "heartbeat interval (s)",
		Run: func(w *World, o RunOptions) (FigureResult, error) {
			o = o.filled()
			s, title, err := DetectionLatency(w, o.DetectIntervals)
			return FigureResult{Title: title, Series: s}, err
		},
	},
}

// Figures returns the registered figures in paper order. The slice is a
// copy; callers may reorder it freely.
func Figures() []Figure {
	out := make([]Figure, len(figures))
	copy(out, figures)
	return out
}

// FigureNames returns the canonical figure names in paper order.
func FigureNames() []string {
	out := make([]string, len(figures))
	for i, f := range figures {
		out[i] = f.Name
	}
	return out
}

// FigureByName looks a figure up by canonical name ("fig9a") or bare paper
// label ("9a", case-insensitive).
func FigureByName(name string) (Figure, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if !strings.HasPrefix(key, "fig") {
		key = "fig" + key
	}
	for _, f := range figures {
		if f.Name == key {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("experiment: unknown figure %q (have %s)",
		name, strings.Join(FigureNames(), ", "))
}

// SelectFigures resolves a comma-separated selection ("fig9a,10a", or "all"
// / "" for every figure) into registry order, deduplicating repeats.
func SelectFigures(selection string) ([]Figure, error) {
	sel := strings.TrimSpace(selection)
	if sel == "" || strings.EqualFold(sel, "all") {
		return Figures(), nil
	}
	rank := make(map[string]int, len(figures))
	for i, f := range figures {
		rank[f.Name] = i
	}
	seen := make(map[string]bool)
	var out []Figure
	for _, part := range strings.Split(sel, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		f, err := FigureByName(part)
		if err != nil {
			return nil, err
		}
		if !seen[f.Name] {
			seen[f.Name] = true
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiment: empty figure selection %q", selection)
	}
	sort.Slice(out, func(a, b int) bool { return rank[out[a].Name] < rank[out[b].Name] })
	return out, nil
}
