package experiment

import (
	"fmt"
	"time"

	"cloudfog/internal/fault"
	"cloudfog/internal/metrics"
	"cloudfog/internal/qoe"
	"cloudfog/internal/shard"
)

// scaleChaosProfile is the fault scenario the scaling figure replays: brisk
// supernode crash/recovery churn with a 10-second detection window, a light
// Gilbert–Elliott loss process, and periodic latency spikes. It deliberately
// contains only crash and wire specs — joins and cloud scaling are control-
// plane ops the sharded runner's barrier protocol does not exchange.
func scaleChaosProfile(seed int64, duration time.Duration) *fault.Profile {
	return &fault.Profile{
		Name:     "scale-chaos",
		Seed:     seed,
		Duration: fault.Dur(duration),
		Specs: []fault.Spec{
			{Kind: fault.KindCrash, MTTF: fault.Dur(45 * time.Second), MTTR: fault.Dur(20 * time.Second),
				Detect: fault.Dur(10 * time.Second), TargetFrac: 0.3},
			{Kind: fault.KindLoss, MeanGood: fault.Dur(90 * time.Second), MeanBad: fault.Dur(8 * time.Second),
				LossFrac: 0.15},
			{Kind: fault.KindLatency, MeanGood: fault.Dur(2 * time.Minute), MeanBad: fault.Dur(12 * time.Second),
				Extra: fault.Dur(30 * time.Millisecond)},
		},
	}
}

// ScaleProfile returns the fault scenario the scaling figure replays for
// this world and options — exported so the flight recorder can compile and
// fingerprint the same injected-event log the run will interpret.
func ScaleProfile(w *World, o RunOptions) *fault.Profile {
	o = o.filled()
	return scaleChaosProfile(w.Cfg.Seed+700, o.Horizon)
}

// ScaleRun executes the sharded single-run scaling experiment (figscale):
// the whole population joins one fog, the scale chaos profile churns the
// supernodes, and Cfg.Shards shard slices run the data plane (heartbeat
// monitors plus a budgeted sample of segment-level node simulations) in
// parallel between epoch barriers. The figure series — served, fog-served,
// unserved, and latency-coverage fractions over time — and everything in the
// returned FigureResult are partition-invariant: byte-identical at any shard
// count, including the serial anchor Shards=1. The shard.Result carries the
// partition-dependent scaling diagnostics (cross-shard repair and migration
// counts) alongside the invariant tallies.
func ScaleRun(w *World, o RunOptions) (shard.Result, FigureResult, error) {
	o = o.filled()
	ho, err := o.healthOptions()
	if err != nil {
		return shard.Result{}, FigureResult{}, err
	}
	clk := &shard.Clock{}
	fog, err := w.buildHealthFog(clk.Now, ho)
	if err != nil {
		return shard.Result{}, FigureResult{}, err
	}
	players := w.JoinAll(fog, w.Cfg.Players)
	sched, err := fault.Compile(scaleChaosProfile(w.Cfg.Seed+700, o.Horizon), w.FaultTargets())
	if err != nil {
		return shard.Result{}, FigureResult{}, err
	}
	qopts := qoe.DefaultOptions()
	qopts.Seed = w.Cfg.Seed + 701
	// Each epoch is simulated as a fresh session, so the warmup transient
	// scales with the barrier interval instead of eating short epochs
	// whole.
	qopts.Warmup = o.ScaleEpoch / 5
	cfg := shard.Config{
		Shards:         w.Cfg.Shards,
		Seed:           w.Cfg.Seed,
		Horizon:        o.Horizon,
		Epoch:          o.ScaleEpoch,
		Width:          w.Cfg.Core.Region.Width,
		Height:         w.Cfg.Core.Region.Height,
		Detector:       ho.Detector,
		DetectorConfig: ho.DetectorConfig,
		Overload:       ho.Overload,
		QoE:            qopts,
		QoENodeBudget:  o.ScaleNodeBudget,
	}
	runner := shard.NewRunner(cfg, fog, players, sched, w.Respawner(), clk)
	res, err := runner.Run()
	if err != nil {
		return res, FigureResult{}, err
	}
	w.LeaveAll(fog, players)
	if o.ScaleDiag != nil {
		o.ScaleDiag(res)
	}

	served := metrics.Series{Label: "served"}
	fogServed := metrics.Series{Label: "fog-served"}
	unserved := metrics.Series{Label: "unserved"}
	coverage := metrics.Series{Label: "coverage"}
	n := float64(res.Players)
	for _, s := range res.Samples {
		t := s.T.Seconds()
		served.Add(t, float64(s.Served)/n)
		fogServed.Add(t, float64(s.FogServed)/n)
		unserved.Add(t, float64(s.Unserved)/n)
		coverage.Add(t, float64(s.Within)/n)
	}
	// The title carries only partition-invariant tallies, so the whole
	// FigureResult compares bytewise across shard counts.
	title := fmt.Sprintf(
		"Scaling run (%d players, %d epochs): %d kills, %d detections (mean %.2fs), %d repairs, %d lapsed, %d cloud hops, sampled continuity %.3f over %d players",
		res.Players, res.Epochs, res.Kills, res.Detections,
		res.MeanDetectionLatency().Seconds(), res.Repairs, res.Lapsed,
		res.CloudHops, res.MeanContinuity, res.QoEPlayers)
	fig := FigureResult{
		Name:   "figscale",
		Title:  title,
		XLabel: "t (s)",
		Series: []metrics.Series{served, fogServed, unserved, coverage},
	}
	return res, fig, nil
}
