package experiment

import (
	"testing"
	"time"
)

func TestChurnDynamicsKeepsEveryoneServed(t *testing.T) {
	cfg := Default(11)
	cfg.Players = 600
	cfg.Supernodes = 40
	cfg.EdgeServers = 5
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ChurnDynamics(w, 2*time.Hour, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Joins == 0 {
		t.Fatal("no sessions started")
	}
	if res.Unserved != 0 {
		t.Fatalf("%d online players found unserved — failover broken", res.Unserved)
	}
	if res.SupernodeDepartures == 0 {
		t.Fatal("no supernode departures were injected")
	}
	if res.MeanOnline <= 0 {
		t.Fatal("no online players sampled")
	}
	if res.FogServedFrac <= 0 {
		t.Fatal("no players fog-served under churn")
	}
	if res.MeanLatency <= 0 || res.MeanLatency > time.Second {
		t.Fatalf("implausible mean latency %v", res.MeanLatency)
	}
	// The world must be restored for later experiments.
	for _, p := range w.Pop.Players {
		if p.Online || p.Attached.Served() {
			t.Fatal("population not restored after churn run")
		}
	}
}

func TestChurnDynamicsDeterministic(t *testing.T) {
	run := func() ChurnResult {
		cfg := Default(12)
		cfg.Players = 300
		cfg.Supernodes = 20
		cfg.EdgeServers = 3
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ChurnDynamics(w, time.Hour, 15*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("churn runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestIncentiveEvaluationMonotone(t *testing.T) {
	w := testWorld(t)
	rewards := []float64{0.05, 0.2, 0.5}
	results, err := IncentiveEvaluation(w, rewards)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(rewards) {
		t.Fatalf("got %d results", len(results))
	}
	// Higher rewards recruit weakly more contributors.
	for i := 1; i < len(results); i++ {
		if results[i].Willing < results[i-1].Willing {
			t.Fatalf("willing fraction decreased with reward: %+v", results)
		}
	}
	// At a generous reward most contributors profit...
	if results[len(results)-1].Willing < 0.5 {
		t.Fatalf("only %.2f willing at c_s=0.5", results[len(results)-1].Willing)
	}
	// ...and the provider still saves at the low end.
	if results[0].ProviderSaving <= 0 {
		t.Fatalf("no provider saving at c_s=%.2f: %+v", rewards[0], results[0])
	}
	series := IncentiveSeries(results)
	if len(series) != 2 || len(series[0].Points) != len(rewards) {
		t.Fatal("series conversion wrong")
	}
	// World restored.
	for _, p := range w.Pop.Players {
		if p.Online {
			t.Fatal("players left online after incentive evaluation")
		}
	}
}
