package experiment

import (
	"fmt"
	"time"

	"cloudfog/internal/fault"
	"cloudfog/internal/health"
	"cloudfog/internal/metrics"
	"cloudfog/internal/sim"
)

// detectKillEvery is the figdetect crash cadence: one supernode kill every
// 30 seconds, so every sweep point sees the same injected-failure workload
// whatever its heartbeat interval.
const detectKillEvery = 30 * time.Second

// detectDuration is the virtual time each figdetect point simulates.
const detectDuration = 10 * time.Minute

// detectProfile is one figdetect point's fault workload: periodic crashes
// with a repair window long enough that detection always precedes recovery.
// The Detect field sizes the oracle's draw window to the timeout detector's
// budget (TimeoutFactor heartbeat intervals), so all three modes answer the
// same question: how long does this failure stay unnoticed?
func detectProfile(seed int64, interval time.Duration) *fault.Profile {
	oracleWindow := time.Duration(3.5 * float64(interval))
	return &fault.Profile{
		Name:     "detect",
		Seed:     seed,
		Duration: fault.Dur(detectDuration),
		Specs: []fault.Spec{{
			Kind:   fault.KindCrash,
			Period: fault.Dur(detectKillEvery),
			MTTR:   fault.Dur(3 * time.Minute),
			Detect: fault.Dur(oracleWindow),
		}},
	}
}

// DetectionLatency is the figdetect figure: the mean failure-detection
// latency as the heartbeat interval grows, for the oracle baseline (drawn
// delays), the plain timeout detector, and the phi-accrual detector, all
// against the same per-interval crash schedule. Every (interval, mode) pair
// is an independent sweep point deterministic in (seed, interval, mode), so
// serial and parallel sweeps agree bitwise. The returned title carries the
// detection ledger: kills, detections and false positives per mode.
func DetectionLatency(w *World, intervals []time.Duration) ([]metrics.Series, string, error) {
	modes := []health.Mode{health.ModeOracle, health.ModeTimeout, health.ModePhi}
	series := make([]metrics.Series, len(modes))
	for i, m := range modes {
		series[i].Label = m.String()
		series[i].Points = make([]metrics.Point, len(intervals))
	}
	// Per-point ledger cells: sweep workers write disjoint indices, the
	// title sums them after the barrier.
	kills := make([]int64, len(intervals)*len(modes))
	detected := make([]int64, len(intervals)*len(modes))
	falsePos := make([]int64, len(intervals)*len(modes))

	err := w.sweepPoints(len(intervals)*len(modes), func(pw *World, pt int) error {
		ii, mi := pt/len(modes), pt%len(modes)
		interval, mode := intervals[ii], modes[mi]

		engine := sim.New()
		fog, mon, err := pw.newHealthFog(engine, HealthOptions{
			Detector:       mode,
			DetectorConfig: health.DetectorConfig{Interval: interval},
		}, nil)
		if err != nil {
			return err
		}
		players := pw.JoinAll(fog, pw.Cfg.Players)

		sched, err := fault.Compile(detectProfile(pw.Cfg.Seed+700, interval), pw.FaultTargets())
		if err != nil {
			return err
		}
		inj := fault.NewInjector(sched, engine, fog, fault.SimHooks{Respawn: pw.Respawner()},
			sim.NewRand(pw.Cfg.Seed+701), faultStatsFor(pw))
		if mon != nil {
			inj.SetMonitor(mon)
		}
		inj.Start()
		engine.RunUntil(detectDuration)
		inj.Finish()

		series[mi].Points[ii] = metrics.Point{
			X: interval.Seconds(),
			Y: inj.MeanDetectionLatency().Seconds(),
		}
		kills[pt] = inj.Killed()
		detected[pt] = inj.Detected()
		falsePos[pt] = inj.FalsePositives()
		pw.LeaveAll(fog, players)
		return nil
	})
	if err != nil {
		return nil, "", err
	}

	perMode := func(cells []int64, mi int) int64 {
		var s int64
		for ii := range intervals {
			s += cells[ii*len(modes)+mi]
		}
		return s
	}
	var totalKills int64
	for _, k := range kills {
		totalKills += k
	}
	title := fmt.Sprintf(
		"Failure detection latency (%d kills): timeout %d/%d detected (%d FP), phi %d/%d detected (%d FP)",
		totalKills,
		perMode(detected, 1), perMode(kills, 1), perMode(falsePos, 1),
		perMode(detected, 2), perMode(kills, 2), perMode(falsePos, 2))
	return series, title, nil
}
