package experiment

import (
	"fmt"
	"time"

	"cloudfog/internal/core"
	"cloudfog/internal/econ"
	"cloudfog/internal/metrics"
	"cloudfog/internal/sim"
	"cloudfog/internal/workload"
)

// ChurnResult summarizes a churn-driven run of the fog.
type ChurnResult struct {
	// Sessions started and ended during the run.
	Joins, Leaves uint64
	// SupernodeDepartures counts graceful supernode leaves injected.
	SupernodeDepartures int
	// MeanOnline is the time-averaged concurrent player count.
	MeanOnline float64
	// FogServedFrac is the time-averaged fraction of online players
	// served by supernodes (the rest stream from the cloud).
	FogServedFrac float64
	// MeanLatency is the time-averaged mean network latency of online
	// players.
	MeanLatency time.Duration
	// Unserved counts online players found without a serving attachment
	// at any sample point — must be zero: failover repairs departures.
	Unserved int
}

// ChurnDynamics runs the fog under the paper's session churn (Poisson joins
// at 5 players/second, session-length mixture, friend-driven game choice)
// while a fraction of supernodes gracefully departs and re-registers,
// exercising the backup-failover path. Metrics are sampled every minute of
// virtual time after a warmup.
func ChurnDynamics(w *World, duration time.Duration, departEvery time.Duration) (ChurnResult, error) {
	engine := sim.New()
	fog, err := w.NewFog(w.Cfg.Datacenters, w.Cfg.Supernodes)
	if err != nil {
		return ChurnResult{}, err
	}
	churn := workload.NewChurn(engine, fog, w.Pop, 5, sim.NewRand(w.Cfg.Seed+500))
	churn.Start()

	res := ChurnResult{}

	// Periodically deregister the most-loaded supernode and re-register a
	// fresh instance of it shortly after (a contributor rebooting).
	if departEvery > 0 {
		departRng := sim.NewRand(w.Cfg.Seed + 501)
		engine.Every(departEvery, func() {
			sns := fog.Supernodes()
			if len(sns) == 0 {
				return
			}
			sn := sns[departRng.Intn(len(sns))]
			spec := snSpec{id: sn.ID, pos: sn.Pos, capacity: sn.Capacity, uplink: sn.Uplink}
			fog.DeregisterSupernode(sn.ID)
			res.SupernodeDepartures++
			engine.Schedule(5*time.Minute, func() {
				fresh := core.NewSupernode(spec.id, spec.pos, spec.capacity, spec.uplink)
				if err := fog.RegisterSupernode(fresh); err != nil {
					panic(fmt.Sprintf("re-register supernode %d: %v", spec.id, err))
				}
			})
		})
	}

	warmup := duration / 5
	var samples int
	var onlineSum, fogFracSum float64
	var latSum time.Duration
	engine.Every(time.Minute, func() {
		if engine.Now() < warmup {
			return
		}
		online, fogServed := 0, 0
		var lat time.Duration
		for _, p := range w.Pop.Players {
			if !p.Online {
				continue
			}
			online++
			if !p.Attached.Served() {
				res.Unserved++
				continue
			}
			if p.Attached.Kind == core.AttachSupernode {
				fogServed++
			}
			lat += fog.NetworkLatency(p)
		}
		if online == 0 {
			return
		}
		samples++
		onlineSum += float64(online)
		fogFracSum += float64(fogServed) / float64(online)
		latSum += lat / time.Duration(online)
	})

	engine.RunUntil(duration)

	res.Joins = churn.Joins()
	res.Leaves = churn.Leaves()
	if samples > 0 {
		res.MeanOnline = onlineSum / float64(samples)
		res.FogServedFrac = fogFracSum / float64(samples)
		res.MeanLatency = latSum / time.Duration(samples)
	}

	// Restore the population for subsequent experiments.
	for _, p := range w.Pop.Players {
		if p.Online {
			fog.Leave(p)
		}
	}
	return res, nil
}

// IncentiveResult is one reward-rate point of the §III-A incentive study.
type IncentiveResult struct {
	RewardPerUnit float64
	// Willing is the fraction of the fog's supernodes whose contributors
	// profit at this reward rate (Eq. 1 > 0).
	Willing float64
	// ProviderSaving is C_g (Eq. 3) for the fog-served players, counting
	// only the willing supernodes' contribution.
	ProviderSaving float64
}

// IncentiveEvaluation runs the §IV promise ("we will evaluate the
// effectiveness of this incentive mechanism"): join the population onto the
// fog, read each supernode's actual uplink utilization, and sweep the
// reward rate c_s to see how many contributors profit (Eq. 1) and what the
// provider saves (Eq. 3). Bandwidth is accounted in Mbit/s units; costs
// default to 0.2–1.0 units per contributor.
func IncentiveEvaluation(w *World, rewards []float64) ([]IncentiveResult, error) {
	fog, err := w.NewFog(w.Cfg.Datacenters, w.Cfg.Supernodes)
	if err != nil {
		return nil, err
	}
	players := w.JoinAll(fog, w.Cfg.Players)
	defer w.LeaveAll(fog, players)

	utils := fog.SupernodeUtilizations()
	costRng := sim.NewRand(w.Cfg.Seed + 502)
	sns := make([]econ.Supernode, 0, len(utils))
	fogServed := 0
	for _, sn := range fog.Supernodes() {
		sns = append(sns, econ.Supernode{
			Capacity:    float64(sn.Uplink) / 1e6, // Mbit/s units
			Utilization: utils[sn.ID],
			Cost:        0.2 + 0.8*costRng.Float64(),
		})
		fogServed += sn.Load()
	}
	// Stream rate R: mean wire rate across the ladder-matched games.
	meanBitrate := 0.0
	for _, p := range players {
		meanBitrate += float64(w.Cfg.Core.WireRate(p.Game.Quality().Bitrate)) / 1e6
	}
	meanBitrate /= float64(len(players))
	params := econ.Params{
		RevenuePerUnit: 1.0,
		StreamRate:     meanBitrate,
		UpdateRate:     float64(w.Cfg.Core.UpdateBandwidth) / 1e6,
	}

	out := make([]IncentiveResult, 0, len(rewards))
	for _, cs := range rewards {
		params.RewardPerUnit = cs
		willing := make([]econ.Supernode, 0, len(sns))
		for _, s := range sns {
			if econ.WillContribute(cs, s, 0) {
				willing = append(willing, s)
			}
		}
		r := IncentiveResult{RewardPerUnit: cs, Willing: float64(len(willing)) / float64(len(sns))}
		// The willing supernodes can support at most their contribution
		// over R players; the fog-served count is capped by that.
		supportable := params.SupportedPlayers(willing)
		served := fogServed
		if served > supportable {
			served = supportable
		}
		if saving, err := params.ProviderSaving(served, willing); err == nil {
			r.ProviderSaving = saving
		}
		out = append(out, r)
	}
	return out, nil
}

// IncentiveSeries converts incentive results into plottable series.
func IncentiveSeries(results []IncentiveResult) []metrics.Series {
	willing := metrics.Series{Label: "willing-frac"}
	saving := metrics.Series{Label: "provider-saving"}
	for _, r := range results {
		willing.Add(r.RewardPerUnit, r.Willing)
		saving.Add(r.RewardPerUnit, r.ProviderSaving)
	}
	return []metrics.Series{willing, saving}
}
