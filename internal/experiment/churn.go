package experiment

import (
	"fmt"
	"time"

	"cloudfog/internal/core"
	"cloudfog/internal/econ"
	"cloudfog/internal/fault"
	"cloudfog/internal/metrics"
	"cloudfog/internal/sim"
	"cloudfog/internal/workload"
)

// ChurnResult summarizes a churn-driven run of the fog.
type ChurnResult struct {
	// Sessions started and ended during the run.
	Joins, Leaves uint64
	// SupernodeDepartures counts supernode departures injected.
	SupernodeDepartures int
	// Orphaned counts players orphaned by those departures; every one was
	// repaired synchronously (graceful leaves detect instantly).
	Orphaned int64
	// MeanOnline is the time-averaged concurrent player count.
	MeanOnline float64
	// FogServedFrac is the time-averaged fraction of online players
	// served by supernodes (the rest stream from the cloud).
	FogServedFrac float64
	// MeanLatency is the time-averaged mean network latency of online
	// players.
	MeanLatency time.Duration
	// Unserved counts online players found without a serving attachment
	// at any sample point — must be zero: failover repairs departures.
	Unserved int
}

// churnProfile is the fault profile the classic churn dynamics compile to:
// one supernode departs per period and re-registers five minutes later; zero
// detection delay makes the departures graceful (synchronous failover), the
// behavior this function has always modeled.
func churnProfile(seed int64, duration, departEvery time.Duration) *fault.Profile {
	return &fault.Profile{
		Name:     "churn",
		Seed:     seed,
		Duration: fault.Dur(duration),
		Specs: []fault.Spec{{
			Kind:   fault.KindCrash,
			Period: fault.Dur(departEvery),
			MTTR:   fault.Dur(5 * time.Minute),
		}},
	}
}

// FaultTargets enumerates the world's supernodes as fault-injection targets.
func (w *World) FaultTargets() fault.Targets {
	t := fault.Targets{Supernodes: make([]fault.Node, len(w.snSpec))}
	for i, sp := range w.snSpec {
		t.Supernodes[i] = fault.Node{ID: sp.id, X: sp.pos.X, Y: sp.pos.Y}
	}
	return t
}

// Respawner returns the SimHooks Respawn function minting fresh supernode
// instances from the world's immutable specs.
func (w *World) Respawner() func(id int64) *core.Supernode {
	specs := make(map[int64]snSpec, len(w.snSpec))
	for _, sp := range w.snSpec {
		specs[sp.id] = sp
	}
	return func(id int64) *core.Supernode {
		sp, ok := specs[id]
		if !ok {
			return nil
		}
		return core.NewSupernode(sp.id, sp.pos, sp.capacity, sp.uplink)
	}
}

// ChurnDynamics runs the fog under the paper's session churn (Poisson joins
// at 5 players/second, session-length mixture, friend-driven game choice)
// while supernodes periodically depart and re-register through the fault
// subsystem, exercising the backup-failover path. Metrics are sampled every
// minute of virtual time after a warmup.
func ChurnDynamics(w *World, duration time.Duration, departEvery time.Duration) (ChurnResult, error) {
	engine := sim.New()
	fog, err := w.NewFog(w.Cfg.Datacenters, w.Cfg.Supernodes)
	if err != nil {
		return ChurnResult{}, err
	}

	res := ChurnResult{}
	var inj *fault.Injector
	if departEvery > 0 {
		sched, err := fault.Compile(churnProfile(w.Cfg.Seed+501, duration, departEvery), w.FaultTargets())
		if err != nil {
			return ChurnResult{}, fmt.Errorf("experiment: churn profile: %w", err)
		}
		inj = fault.NewInjector(sched, engine, fog, fault.SimHooks{Respawn: w.Respawner()},
			sim.NewRand(w.Cfg.Seed+503), nil)
		inj.Start()
	}

	churn := workload.NewChurn(engine, fog, w.Pop, 5, sim.NewRand(w.Cfg.Seed+500))
	churn.Start()

	warmup := duration / 5
	var samples int
	var onlineSum, fogFracSum float64
	var latSum time.Duration
	engine.Every(time.Minute, func() {
		if engine.Now() < warmup {
			return
		}
		online, fogServed := 0, 0
		var lat time.Duration
		for _, p := range w.Pop.Players {
			if !p.Online {
				continue
			}
			online++
			if !p.Attached.Served() {
				res.Unserved++
				continue
			}
			if p.Attached.Kind == core.AttachSupernode {
				fogServed++
			}
			lat += fog.NetworkLatency(p)
		}
		if online == 0 {
			return
		}
		samples++
		onlineSum += float64(online)
		fogFracSum += float64(fogServed) / float64(online)
		latSum += lat / time.Duration(online)
	})

	engine.RunUntil(duration)

	res.Joins = churn.Joins()
	res.Leaves = churn.Leaves()
	if inj != nil {
		inj.Finish()
		res.SupernodeDepartures = int(inj.Killed())
		res.Orphaned = inj.Orphaned()
	}
	if samples > 0 {
		res.MeanOnline = onlineSum / float64(samples)
		res.FogServedFrac = fogFracSum / float64(samples)
		res.MeanLatency = latSum / time.Duration(samples)
	}

	// Restore the population for subsequent experiments.
	for _, p := range w.Pop.Players {
		if p.Online {
			fog.Leave(p)
		}
	}
	return res, nil
}

// IncentiveResult is one reward-rate point of the §III-A incentive study.
type IncentiveResult struct {
	RewardPerUnit float64
	// Willing is the fraction of the fog's supernodes whose contributors
	// profit at this reward rate (Eq. 1 > 0).
	Willing float64
	// ProviderSaving is C_g (Eq. 3) for the fog-served players, counting
	// only the willing supernodes' contribution.
	ProviderSaving float64
}

// IncentiveEvaluation runs the §IV promise ("we will evaluate the
// effectiveness of this incentive mechanism"): join the population onto the
// fog, read each supernode's actual uplink utilization, and sweep the
// reward rate c_s to see how many contributors profit (Eq. 1) and what the
// provider saves (Eq. 3). Bandwidth is accounted in Mbit/s units; costs
// default to 0.2–1.0 units per contributor.
func IncentiveEvaluation(w *World, rewards []float64) ([]IncentiveResult, error) {
	fog, err := w.NewFog(w.Cfg.Datacenters, w.Cfg.Supernodes)
	if err != nil {
		return nil, err
	}
	players := w.JoinAll(fog, w.Cfg.Players)
	defer w.LeaveAll(fog, players)

	utils := fog.SupernodeUtilizations()
	costRng := sim.NewRand(w.Cfg.Seed + 502)
	sns := make([]econ.Supernode, 0, len(utils))
	fogServed := 0
	for _, sn := range fog.Supernodes() {
		sns = append(sns, econ.Supernode{
			Capacity:    float64(sn.Uplink) / 1e6, // Mbit/s units
			Utilization: utils[sn.ID],
			Cost:        0.2 + 0.8*costRng.Float64(),
		})
		fogServed += sn.Load()
	}
	// Stream rate R: mean wire rate across the ladder-matched games.
	meanBitrate := 0.0
	for _, p := range players {
		meanBitrate += float64(w.Cfg.Core.WireRate(p.Game.Quality().Bitrate)) / 1e6
	}
	meanBitrate /= float64(len(players))
	params := econ.Params{
		RevenuePerUnit: 1.0,
		StreamRate:     meanBitrate,
		UpdateRate:     float64(w.Cfg.Core.UpdateBandwidth) / 1e6,
	}

	out := make([]IncentiveResult, 0, len(rewards))
	for _, cs := range rewards {
		params.RewardPerUnit = cs
		willing := make([]econ.Supernode, 0, len(sns))
		for _, s := range sns {
			if econ.WillContribute(cs, s, 0) {
				willing = append(willing, s)
			}
		}
		r := IncentiveResult{RewardPerUnit: cs, Willing: float64(len(willing)) / float64(len(sns))}
		// The willing supernodes can support at most their contribution
		// over R players; the fog-served count is capped by that.
		supportable := params.SupportedPlayers(willing)
		served := fogServed
		if served > supportable {
			served = supportable
		}
		if saving, err := params.ProviderSaving(served, willing); err == nil {
			r.ProviderSaving = saving
		}
		out = append(out, r)
	}
	return out, nil
}

// IncentiveSeries converts incentive results into plottable series.
func IncentiveSeries(results []IncentiveResult) []metrics.Series {
	willing := metrics.Series{Label: "willing-frac"}
	saving := metrics.Series{Label: "provider-saving"}
	for _, r := range results {
		willing.Add(r.RewardPerUnit, r.Willing)
		saving.Add(r.RewardPerUnit, r.ProviderSaving)
	}
	return []metrics.Series{willing, saving}
}
