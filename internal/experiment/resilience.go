package experiment

import (
	"fmt"
	"time"

	"cloudfog/internal/core"
	"cloudfog/internal/fault"
	"cloudfog/internal/health"
	"cloudfog/internal/metrics"
	"cloudfog/internal/obs"
	"cloudfog/internal/qoe"
	"cloudfog/internal/sim"
)

// HealthOptions selects the failure-handling apparatus of a resilience run.
// The zero value reproduces the pre-health behaviour bit-for-bit: orphan
// repairs use the oracle detection-delay draw, no overload ladder, no
// circuit breaker.
type HealthOptions struct {
	// Detector chooses how supernode failures are noticed: ModeOracle
	// (default) draws the repair delay, ModeTimeout and ModePhi run the
	// heartbeat monitor.
	Detector health.Mode
	// DetectorConfig tunes the monitor; zero-value fields use the package
	// defaults. Mode is overridden by Detector.
	DetectorConfig health.DetectorConfig
	// Overload installs the supernode degradation ladder on the fog.
	Overload bool
	// Breaker installs the cloud-fallback circuit breaker on the fog.
	Breaker bool
}

// enabled reports whether any apparatus beyond the oracle is requested.
func (h HealthOptions) enabled() bool {
	return h.Detector != health.ModeOracle || h.Overload || h.Breaker
}

// healthStatsFor binds the canonical health metrics in the world's registry,
// when one is attached.
func healthStatsFor(w *World) *obs.HealthStats {
	if w.Cfg.Obs == nil {
		return nil
	}
	return obs.HealthStatsIn(w.Cfg.Obs)
}

// buildHealthFog mints a default-scale fog with the run's health apparatus
// installed against an arbitrary virtual-time source — the engine's Now for
// the serial figures, the shard runner's barrier Clock for sharded runs.
// A zero HealthOptions builds exactly what NewFog builds.
func (w *World) buildHealthFog(now func() time.Duration, ho HealthOptions) (*core.Fog, error) {
	cc := w.Cfg.Core
	if w.Cfg.Obs != nil {
		cc.Obs = obs.AssignStatsIn(w.Cfg.Obs)
	}
	hs := healthStatsFor(w)
	if ho.Overload || ho.Breaker {
		cc.Health = hs
		cc.Now = now
	}
	if ho.Overload {
		ol, err := health.NewOverload(health.OverloadConfig{}, hs, now)
		if err != nil {
			return nil, err
		}
		cc.Overload = ol
	}
	if ho.Breaker {
		br, err := health.NewBreaker(health.BreakerConfig{}, hs)
		if err != nil {
			return nil, err
		}
		cc.Breaker = br
	}
	return core.BuildFog(cc, w.Datacenters(w.Cfg.Datacenters), w.SupernodeSet(w.Cfg.Supernodes),
		sim.NewRand(w.Cfg.Seed+200))
}

// newHealthFog is buildHealthFog on an engine clock plus the heartbeat
// monitor (returned separately, nil in oracle mode) riding that engine.
// loss feeds the schedule's loss windows into heartbeat delivery; it may be
// nil.
func (w *World) newHealthFog(engine *sim.Engine, ho HealthOptions, loss func(time.Duration) float64) (*core.Fog, *health.Monitor, error) {
	fog, err := w.buildHealthFog(engine.Now, ho)
	if err != nil {
		return nil, nil, err
	}
	var mon *health.Monitor
	if ho.Detector != health.ModeOracle {
		dc := ho.DetectorConfig
		dc.Mode = ho.Detector
		mon = health.NewMonitor(engine, dc, loss, healthStatsFor(w))
	}
	return fog, mon, nil
}

// DefaultChaosProfile is the built-in resilience scenario the figures (and
// the -faults-less chaos runs) use: half the supernodes crash and recover on
// exponential lifetimes with a 10-second detection heartbeat, a Gilbert–
// Elliott loss process burns bursts into the wire, latency spikes hit every
// stream, and a 3-minute bandwidth collapse squeezes a third of the uplinks.
func DefaultChaosProfile(seed int64) *fault.Profile {
	return &fault.Profile{
		Name:     "default-chaos",
		Seed:     seed,
		Duration: fault.Dur(10 * time.Minute),
		Specs: []fault.Spec{
			{Kind: fault.KindCrash, MTTF: fault.Dur(3 * time.Minute), MTTR: fault.Dur(90 * time.Second),
				Detect: fault.Dur(10 * time.Second), TargetFrac: 0.5},
			{Kind: fault.KindLoss, MeanGood: fault.Dur(time.Minute), MeanBad: fault.Dur(10 * time.Second),
				LossFrac: 0.25},
			{Kind: fault.KindLatency, MeanGood: fault.Dur(90 * time.Second), MeanBad: fault.Dur(15 * time.Second),
				Extra: fault.Dur(40 * time.Millisecond)},
			{Kind: fault.KindBandwidth, Start: fault.Dur(3 * time.Minute), End: fault.Dur(6 * time.Minute),
				Factor: 0.5, TargetFrac: 0.3},
		},
	}
}

// ResilienceProfile resolves the profile a resilience figure runs: the
// caller-supplied one, or the built-in chaos scenario keyed by the world
// seed so the run stays a pure function of (seed, options). Exported so the
// flight recorder can compile and fingerprint the exact injected-event log
// figchurn and figrecovery will replay.
func ResilienceProfile(w *World, o RunOptions) *fault.Profile {
	if o.Faults != nil {
		return o.Faults
	}
	return DefaultChaosProfile(w.Cfg.Seed + 600)
}

// resilienceProfile is the internal alias of ResilienceProfile.
func resilienceProfile(w *World, o RunOptions) *fault.Profile {
	return ResilienceProfile(w, o)
}

// churnRateProfile is one figchurn point: rate supernode kills per minute at
// a fixed repair time and detection heartbeat.
func churnRateProfile(seed int64, duration time.Duration, rate float64) *fault.Profile {
	return &fault.Profile{
		Name:     "churn-rate",
		Seed:     seed,
		Duration: fault.Dur(duration),
		Specs: []fault.Spec{{
			Kind:   fault.KindCrash,
			Period: fault.Dur(time.Duration(float64(time.Minute) / rate)),
			MTTR:   fault.Dur(2 * time.Minute),
			Detect: fault.Dur(15 * time.Second),
		}},
	}
}

// faultStatsFor binds the canonical fault metrics in the world's registry,
// when one is attached.
func faultStatsFor(w *World) *obs.FaultStats {
	if w.Cfg.Obs == nil {
		return nil
	}
	return obs.FaultStatsIn(w.Cfg.Obs)
}

// QoEVsChurn sweeps the supernode kill rate and measures the flow-level
// quality the fog sustains: the time-averaged fraction of players inside
// their game's latency budget (coverage), the fraction still served by
// supernodes, and the fraction caught unserved between a kill and its
// detected repair. Rate 0 is the fault-free baseline point. Each rate is an
// independent sweep point, deterministic in (seed, rate) alone, so serial
// and parallel sweeps agree bitwise. A zero ho keeps the run bit-identical
// to the pre-health figure.
func QoEVsChurn(w *World, rates []float64, duration time.Duration, ho HealthOptions) ([]metrics.Series, error) {
	coverage := metrics.Series{Label: "coverage", Points: make([]metrics.Point, len(rates))}
	fogServed := metrics.Series{Label: "fog-served", Points: make([]metrics.Point, len(rates))}
	unserved := metrics.Series{Label: "unserved", Points: make([]metrics.Point, len(rates))}
	err := w.sweepPoints(len(rates), func(pw *World, i int) error {
		rate := rates[i]
		engine := sim.New()
		var fog *core.Fog
		var mon *health.Monitor
		var err error
		if ho.enabled() {
			fog, mon, err = pw.newHealthFog(engine, ho, nil)
		} else {
			fog, err = pw.NewFog(pw.Cfg.Datacenters, pw.Cfg.Supernodes)
		}
		if err != nil {
			return err
		}
		players := pw.JoinAll(fog, pw.Cfg.Players)

		var inj *fault.Injector
		if rate > 0 {
			sched, err := fault.Compile(churnRateProfile(pw.Cfg.Seed+601, duration, rate), pw.FaultTargets())
			if err != nil {
				return err
			}
			inj = fault.NewInjector(sched, engine, fog, fault.SimHooks{Respawn: pw.Respawner()},
				sim.NewRand(pw.Cfg.Seed+602), faultStatsFor(pw))
			if mon != nil {
				inj.SetMonitor(mon)
			}
			inj.Start()
		} else if mon != nil {
			// Fault-free point: the monitor still runs, so its heartbeat
			// traffic and zero-false-positive behaviour are measured.
			for _, sn := range fog.Supernodes() {
				mon.Track(sn.ID)
			}
			mon.Start()
		}

		var samples int
		var covSum, fogSum, unsSum float64
		engine.Every(15*time.Second, func() {
			if ho.Overload {
				fog.RelieveOverloaded()
			}
			served, fogN, uns := 0, 0, 0
			within := 0
			for _, p := range players {
				if !p.Attached.Served() {
					uns++
					continue
				}
				served++
				if p.Attached.Kind == core.AttachSupernode {
					fogN++
				}
				if fog.NetworkLatency(p) <= p.Game.NetworkBudget() {
					within++
				}
			}
			n := len(players)
			samples++
			covSum += float64(within) / float64(n)
			fogSum += float64(fogN) / float64(n)
			unsSum += float64(uns) / float64(n)
		})
		engine.RunUntil(duration)
		if inj != nil {
			inj.Finish()
		}
		if samples > 0 {
			coverage.Points[i] = metrics.Point{X: rate, Y: covSum / float64(samples)}
			fogServed.Points[i] = metrics.Point{X: rate, Y: fogSum / float64(samples)}
			unserved.Points[i] = metrics.Point{X: rate, Y: unsSum / float64(samples)}
		}
		pw.LeaveAll(fog, players)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return []metrics.Series{coverage, fogServed, unserved}, nil
}

// RecoveryTimeline replays a full chaos profile against the fog and samples
// the served and fog-served player fractions over time — the recovery
// timeline around each kill and repair. After the timeline it runs the
// segment-level QoE simulation over the surviving attachments with the same
// schedule modulating the wire (loss bursts, latency spikes, bandwidth
// collapse), so a chaos run exercises the full segment ledger; the summary
// rides back in the figure title.
func RecoveryTimeline(w *World, profile *fault.Profile, qoeHorizon time.Duration, ho HealthOptions) ([]metrics.Series, string, error) {
	var series []metrics.Series
	var title string
	err := w.sweepPoints(1, func(pw *World, _ int) error {
		sched, err := fault.Compile(profile, pw.FaultTargets())
		if err != nil {
			return err
		}
		engine := sim.New()
		var fog *core.Fog
		var mon *health.Monitor
		if ho.enabled() {
			// Heartbeat frames ride the same impaired wire as video: the
			// schedule's loss windows drop them too.
			fog, mon, err = pw.newHealthFog(engine, ho, sched.LossFrac)
		} else {
			fog, err = pw.NewFog(pw.Cfg.Datacenters, pw.Cfg.Supernodes)
		}
		if err != nil {
			return err
		}
		players := pw.JoinAll(fog, pw.Cfg.Players)

		inj := fault.NewInjector(sched, engine, fog, fault.SimHooks{Respawn: pw.Respawner()},
			sim.NewRand(pw.Cfg.Seed+603), faultStatsFor(pw))
		if mon != nil {
			inj.SetMonitor(mon)
		}
		inj.Start()

		duration := profile.Duration.Duration
		step := duration / 60
		if step < time.Second {
			step = time.Second
		}
		served := metrics.Series{Label: "served"}
		fogServed := metrics.Series{Label: "fog-served"}
		engine.Every(step, func() {
			if ho.Overload {
				fog.RelieveOverloaded()
			}
			s, fn := 0, 0
			for _, p := range players {
				if !p.Attached.Served() {
					continue
				}
				s++
				if p.Attached.Kind == core.AttachSupernode {
					fn++
				}
			}
			t := engine.Now().Seconds()
			n := float64(len(players))
			served.Add(t, float64(s)/n)
			fogServed.Add(t, float64(fn)/n)
		})
		engine.RunUntil(duration)
		inj.Finish()

		// Segment-level pass over the post-chaos attachments: the schedule
		// modulates every wire from its own t=0, so the QoE horizon
		// re-experiences the profile's first impairment windows.
		qopts := qoe.DefaultOptions()
		qopts.Seed = pw.Cfg.Seed + 604
		qopts.Impair = sched
		sum, err := groupRun(pw, fog, players, qopts, qoeHorizon)
		if err != nil {
			return err
		}
		title = fmt.Sprintf(
			"Recovery timeline (%s): %d kills, %d orphans, post-chaos continuity %.3f",
			profile.Name, inj.Killed(), inj.Orphaned(), sum.MeanContinuity)
		if mon != nil {
			title += fmt.Sprintf(" — %s detector: %d/%d detected (mean %.2fs), %d false positives",
				ho.Detector, inj.Detected(), inj.Killed(),
				inj.MeanDetectionLatency().Seconds(), inj.FalsePositives())
		}
		series = []metrics.Series{served, fogServed}
		pw.LeaveAll(fog, players)
		return nil
	})
	if err != nil {
		return nil, "", err
	}
	return series, title, nil
}
