package experiment

import (
	"reflect"
	"testing"
	"time"

	"cloudfog/internal/core"
	"cloudfog/internal/fault"
	"cloudfog/internal/health"
	"cloudfog/internal/sim"
)

// TestDetectionPropertyAcrossSeeds is the detector property test: on a
// loss-free profile, across 32 seeds and both heartbeat modes, the monitor
// must produce zero false positives, detect every injected crash before the
// horizon, and keep every detection latency inside DetectorConfig.Bound().
func TestDetectionPropertyAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("32-seed property sweep")
	}
	for seed := int64(1); seed <= 32; seed++ {
		mode := health.ModeTimeout
		if seed%2 == 0 {
			mode = health.ModePhi
		}
		cfg := Default(seed)
		cfg.Players = 500
		cfg.Supernodes = 25
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		engine := sim.New()
		dc := health.DetectorConfig{Interval: time.Second}
		fog, mon, err := w.newHealthFog(engine, HealthOptions{Detector: mode, DetectorConfig: dc}, nil)
		if err != nil {
			t.Fatal(err)
		}
		players := w.JoinAll(fog, w.Cfg.Players)

		sched, err := fault.Compile(detectProfile(seed+700, time.Second), w.FaultTargets())
		if err != nil {
			t.Fatal(err)
		}
		inj := fault.NewInjector(sched, engine, fog, fault.SimHooks{Respawn: w.Respawner()},
			sim.NewRand(seed+701), nil)
		inj.SetMonitor(mon)
		inj.Start()
		engine.RunUntil(detectDuration)
		inj.Finish()

		if inj.Killed() == 0 {
			t.Fatalf("seed %d (%s): profile injected no kills", seed, mode)
		}
		if fp := inj.FalsePositives(); fp != 0 {
			t.Errorf("seed %d (%s): %d false positives on a loss-free profile", seed, mode, fp)
		}
		if pend := inj.DetectPending(); pend != 0 {
			t.Errorf("seed %d (%s): %d of %d kills undetected at the horizon",
				seed, mode, pend, inj.Killed())
		}
		bound := dc.Bound()
		if worst := mon.MaxDetectionLatency(); worst > bound {
			t.Errorf("seed %d (%s): worst detection latency %v exceeds Bound() %v",
				seed, mode, worst, bound)
		}
		w.LeaveAll(fog, players)
	}
}

// TestDetectionLatencyFigure checks figdetect's two acceptance properties:
// serial and parallel sweeps are bit-identical, and the phi-accrual mean
// detection latency sits strictly below the plain timeout's at every
// heartbeat interval.
func TestDetectionLatencyFigure(t *testing.T) {
	ws, wp := sweepTestWorlds(t)
	intervals := []time.Duration{2 * time.Second, 5 * time.Second}

	serial, serialTitle, err := DetectionLatency(ws, intervals)
	if err != nil {
		t.Fatal(err)
	}
	parallel, parallelTitle, err := DetectionLatency(wp, intervals)
	if err != nil {
		t.Fatal(err)
	}
	if serialTitle != parallelTitle {
		t.Fatalf("titles differ:\nserial:   %s\nparallel: %s", serialTitle, parallelTitle)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("serial and parallel figdetect outputs differ\nserial:   %+v\nparallel: %+v", serial, parallel)
	}

	if len(serial) != 3 {
		t.Fatalf("want 3 series (oracle, timeout, phi), got %d", len(serial))
	}
	timeout, phi := serial[1], serial[2]
	if timeout.Label != "timeout" || phi.Label != "phi" {
		t.Fatalf("unexpected series order: %q, %q", timeout.Label, phi.Label)
	}
	for i := range intervals {
		to, ph := timeout.Points[i].Y, phi.Points[i].Y
		if ph <= 0 || to <= 0 {
			t.Fatalf("interval %v: zero mean detection latency (timeout %v, phi %v)", intervals[i], to, ph)
		}
		if ph >= to {
			t.Fatalf("interval %v: phi mean %vs is not strictly below timeout mean %vs", intervals[i], ph, to)
		}
	}
}

// TestOverloadKeepsFlashCrowdStreaming floods a small fog far past its slot
// capacity with the degradation ladder installed: everyone keeps streaming
// (supernode or cloud), loaded supernodes degrade instead of flapping, and
// RelieveOverloaded drains every Migrating node.
func TestOverloadKeepsFlashCrowdStreaming(t *testing.T) {
	cfg := Default(55)
	cfg.Players = 1500
	cfg.Supernodes = 40
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.New()
	fog, _, err := w.newHealthFog(engine, HealthOptions{Overload: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	players := w.JoinAll(fog, w.Cfg.Players)

	for _, p := range players {
		if !p.Attached.Served() {
			t.Fatalf("player %d left unserved during the flash crowd", p.ID)
		}
	}
	ol := fog.Overload()
	degraded := 0
	for _, sn := range fog.Supernodes() {
		if sn.Load() > sn.Capacity {
			t.Fatalf("supernode %d over capacity: %d/%d", sn.ID, sn.Load(), sn.Capacity)
		}
		if ol.State(sn.ID) >= health.StateDegraded {
			degraded++
			if lc := fog.SupernodeLevelCap(sn.ID, 5); lc >= 5 {
				t.Fatalf("degraded supernode %d has level cap %d, want < startLevel", sn.ID, lc)
			}
		}
	}
	if degraded == 0 {
		t.Fatal("no supernode entered the degradation ladder under a 1500-player flood of 40 nodes")
	}

	fog.RelieveOverloaded()
	for _, sn := range fog.Supernodes() {
		if ol.ShouldMigrate(sn.ID) && sn.Load() > 0 {
			t.Fatalf("supernode %d still Migrating with %d players after RelieveOverloaded", sn.ID, sn.Load())
		}
	}
	for _, p := range players {
		if !p.Attached.Served() {
			t.Fatalf("player %d lost service during overload migration", p.ID)
		}
	}
	w.LeaveAll(fog, players)
}

// TestBreakerGuardsDegradedCloud starves the cloud fallback (tiny egress, all
// supernodes excluded) behind a circuit breaker: after FailureThreshold
// failed probes the breaker opens and joins are left unserved rather than
// piled onto the degraded cloud, and each half-open window re-admits exactly
// one probe.
func TestBreakerGuardsDegradedCloud(t *testing.T) {
	cfg := Default(77)
	cfg.Players = 100
	cfg.Supernodes = 10
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.New()
	br, err := health.NewBreaker(health.BreakerConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cc := w.Cfg.Core
	cc.Now = engine.Now
	cc.Breaker = br
	fog, err := core.BuildFog(cc, w.Datacenters(w.Cfg.Datacenters), w.SupernodeSet(w.Cfg.Supernodes),
		sim.NewRand(w.Cfg.Seed+200))
	if err != nil {
		t.Fatal(err)
	}
	fog.SetExclude(func(int64) bool { return true }) // force the cloud path
	for _, dc := range fog.Datacenters() {
		dc.Egress = 1000 // a degraded cloud: no player fits its budget
	}

	players := w.JoinAll(fog, 12)
	served, unserved := 0, 0
	for _, p := range players {
		if p.Attached.Served() {
			served++
		} else {
			unserved++
		}
	}
	bcfg := health.DefaultBreakerConfig()
	if served != bcfg.FailureThreshold {
		t.Fatalf("%d players reached the degraded cloud, want exactly FailureThreshold=%d before the trip",
			served, bcfg.FailureThreshold)
	}
	if unserved != len(players)-bcfg.FailureThreshold {
		t.Fatalf("%d players unserved, want %d refused by the open breaker",
			unserved, len(players)-bcfg.FailureThreshold)
	}

	// Next half-open window: exactly one player probes the (still degraded)
	// cloud; the second retry in the same window is refused.
	engine.RunUntil(bcfg.OpenFor + time.Second)
	var retry []*core.Player
	for _, p := range players {
		if !p.Attached.Served() {
			retry = append(retry, p)
		}
		if len(retry) == 2 {
			break
		}
	}
	fog.Failover(retry[0])
	fog.Failover(retry[1])
	probed := 0
	for _, p := range retry {
		if p.Attached.Served() {
			probed++
		}
	}
	if probed != 1 {
		t.Fatalf("half-open window admitted %d failover probes, want exactly 1", probed)
	}
	w.LeaveAll(fog, players)
}
