// Package adapt implements CloudFog's receiver-driven encoding rate
// adaptation (paper §III-B, Eqs. 7-11).
//
// A player buffers received segments and plays them back; the occupancy of
// that buffer, measured in segments (r of Eq. 8), tells the supernode
// whether the download rate keeps up with the playback rate. When r exceeds
// 1+β for enough consecutive estimations the encoding bitrate steps up one
// ladder level; when r falls below θ it steps down, proactively trading
// video quality for playback continuity under congestion. Latency-sensitive
// games scale both thresholds by 1/ρ (ρ = latency tolerance degree), so
// they keep a larger safety buffer before risking a quality increase.
package adapt

import (
	"fmt"
	"time"

	"cloudfog/internal/game"
)

// Config parameterizes the adaptation controller. Zero-value fields are
// replaced by paper defaults in NewController.
type Config struct {
	// Theta is the adjust-down threshold θ of Formula 11 (default 0.5).
	Theta float64
	// Beta is the adjust-up factor β of Eq. 10. Zero means "derive from
	// the quality ladder" (2/3 for the paper's Figure 2 ladder).
	Beta float64
	// UpStreak h₁ is how many consecutive estimations must satisfy the
	// adjust-up condition before the bitrate increases (default 100).
	UpStreak int
	// DownStreak h₂ is how many consecutive estimations must satisfy the
	// adjust-down condition before the bitrate decreases (default 10).
	DownStreak int
	// UseRho applies the per-game latency-tolerance scaling of the
	// thresholds (r > (1+β)/ρ and r < θ/ρ). Disabled it reduces to the
	// plain Formulas 9 and 11 — kept as an ablation switch.
	UseRho bool
}

// DefaultConfig returns the paper's defaults: θ = 0.5, h₁ = 100, h₂ = 10,
// β derived from the ladder, ρ scaling enabled.
func DefaultConfig() Config {
	return Config{Theta: 0.5, Beta: game.AdjustUpFactor(), UpStreak: 100, DownStreak: 10, UseRho: true}
}

// Decision is the outcome of one buffer-occupancy observation.
type Decision int

const (
	// Hold keeps the current encoding level.
	Hold Decision = iota
	// AdjustedUp increased the level by one.
	AdjustedUp
	// AdjustedDown decreased the level by one.
	AdjustedDown
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Hold:
		return "hold"
	case AdjustedUp:
		return "up"
	case AdjustedDown:
		return "down"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Controller runs the adaptation state machine for one player's stream.
type Controller struct {
	cfg        Config
	g          game.Game
	level      int // current ladder level
	maxLevel   int // game's matched level: quality never exceeds the latency requirement
	upStreak   int
	downStreak int
	upCount    int
	downCount  int
}

// NewController returns a controller for the given game, starting at the
// game's matched ladder level.
func NewController(cfg Config, g game.Game) *Controller {
	c := new(Controller)
	c.Init(cfg, g)
	return c
}

// Init is NewController writing into caller-provided storage: it overwrites
// every field, so value-embedded controllers (the QoE session arena) can be
// re-initialized in place without a heap allocation.
func (c *Controller) Init(cfg Config, g game.Game) {
	if cfg.Theta == 0 {
		cfg.Theta = 0.5
	}
	if cfg.Beta == 0 {
		cfg.Beta = game.AdjustUpFactor()
	}
	if cfg.UpStreak == 0 {
		cfg.UpStreak = 100
	}
	if cfg.DownStreak == 0 {
		cfg.DownStreak = 10
	}
	*c = Controller{cfg: cfg, g: g, level: g.StartLevel, maxLevel: g.StartLevel}
}

// Level returns the current encoding operating point.
func (c *Controller) Level() game.QualityLevel { return game.MustLevelAt(c.level) }

// SetMaxLevel lowers the controller's ladder ceiling below the game's
// matched level — the overload ladder's per-supernode degradation cap. The
// current level clamps down immediately; the ceiling never rises above the
// game's matched level and never falls below 1.
func (c *Controller) SetMaxLevel(lvl int) {
	if lvl < 1 {
		lvl = 1
	}
	if lvl > c.g.StartLevel {
		lvl = c.g.StartLevel
	}
	c.maxLevel = lvl
	if c.level > lvl {
		c.level = lvl
	}
}

// UpThreshold returns the occupancy above which the controller counts
// toward an up-adjustment: (1+β), scaled by 1/ρ when ρ scaling is on.
func (c *Controller) UpThreshold() float64 {
	t := 1 + c.cfg.Beta
	if c.cfg.UseRho {
		t /= c.g.RhoLatency
	}
	return t
}

// DownThreshold returns the occupancy below which the controller counts
// toward a down-adjustment: θ, scaled by 1/ρ when ρ scaling is on.
func (c *Controller) DownThreshold() float64 {
	t := c.cfg.Theta
	if c.cfg.UseRho {
		t /= c.g.RhoLatency
	}
	return t
}

// Observe feeds one buffer-occupancy estimate r (in segments, Eq. 8) into
// the controller and returns the resulting decision. The bitrate only moves
// after UpStreak (resp. DownStreak) consecutive estimations satisfy the
// corresponding condition, preventing bitrate fluctuation (§III-B).
func (c *Controller) Observe(r float64) Decision {
	up := r > c.UpThreshold()
	down := r < c.DownThreshold()

	if up {
		c.upStreak++
	} else {
		c.upStreak = 0
	}
	if down {
		c.downStreak++
	} else {
		c.downStreak = 0
	}

	if c.upStreak >= c.cfg.UpStreak {
		c.upStreak = 0
		if c.level < c.maxLevel {
			c.level++
			c.upCount++
			return AdjustedUp
		}
		return Hold
	}
	if c.downStreak >= c.cfg.DownStreak {
		c.downStreak = 0
		if c.level > 1 {
			c.level--
			c.downCount++
			return AdjustedDown
		}
		return Hold
	}
	return Hold
}

// Adjustments returns how many up and down level changes have occurred.
func (c *Controller) Adjustments() (up, down int) { return c.upCount, c.downCount }

// OccupancyEstimator implements Eq. 7's buffered-size estimate:
//
//	s(t_k) = s(t_{k-1}) + (t_k - t_{k-1})(d(t_k) - b_p(t_k))
//
// where d is the measured downloading rate and b_p the playback rate, both
// in bits per second. The estimate is clamped at zero: a buffer cannot hold
// negative video.
type OccupancyEstimator struct {
	bytes float64
	last  time.Duration
	init  bool
}

// Update advances the estimate to time now given the current download and
// playback rates (bits/second) and returns the estimated buffered bytes.
func (e *OccupancyEstimator) Update(now time.Duration, downloadBits, playbackBits float64) float64 {
	if !e.init {
		e.init = true
		e.last = now
		return e.bytes
	}
	dt := (now - e.last).Seconds()
	if dt < 0 {
		dt = 0
	}
	e.last = now
	e.bytes += dt * (downloadBits - playbackBits) / 8
	if e.bytes < 0 {
		e.bytes = 0
	}
	return e.bytes
}

// Bytes returns the current buffered-size estimate.
func (e *OccupancyEstimator) Bytes() float64 { return e.bytes }

// Segments converts the estimate into the occupancy r of Eq. 8, in units of
// segments of the given byte size τ.
func (e *OccupancyEstimator) Segments(segmentBytes int) float64 {
	if segmentBytes <= 0 {
		return 0
	}
	return e.bytes / float64(segmentBytes)
}
