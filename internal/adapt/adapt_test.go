package adapt

import (
	"math"
	"testing"
	"time"

	"cloudfog/internal/game"
)

func mustGame(t *testing.T, id int) game.Game {
	t.Helper()
	g, err := game.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestControllerStartsAtGameLevel(t *testing.T) {
	g := mustGame(t, 4)
	c := NewController(DefaultConfig(), g)
	if c.Level().Level != 4 {
		t.Fatalf("start level = %d, want 4", c.Level().Level)
	}
}

// TestAdjustDownPaperExample reproduces Figure 3's down path: a level-3
// (800 kbps) stream whose occupancy stays below θ drops to 500 kbps.
func TestAdjustDownPaperExample(t *testing.T) {
	g := mustGame(t, 3)
	cfg := DefaultConfig()
	cfg.UseRho = false // plain Formula 11, as in the figure
	c := NewController(cfg, g)
	var last Decision
	for i := 0; i < cfg.DownStreak; i++ {
		last = c.Observe(0.3) // r < θ = 0.5
	}
	if last != AdjustedDown {
		t.Fatalf("decision = %v, want down", last)
	}
	if c.Level().Bitrate != 500_000 {
		t.Fatalf("bitrate = %d, want 500kbps", c.Level().Bitrate)
	}
}

// TestAdjustUpPaperExample reproduces Figure 3's up path: after a down
// adjustment, sustained occupancy above 1+β brings the stream back up to
// its matched level (800 kbps -> 1200 kbps would exceed a level-3 game's
// latency requirement, so the example uses a level-4 game).
func TestAdjustUpPaperExample(t *testing.T) {
	g := mustGame(t, 4) // matched to 1200 kbps
	cfg := DefaultConfig()
	cfg.UseRho = false
	c := NewController(cfg, g)
	// First adapt down to 800 kbps.
	for i := 0; i < cfg.DownStreak; i++ {
		c.Observe(0.2)
	}
	if c.Level().Bitrate != 800_000 {
		t.Fatalf("setup: bitrate = %d, want 800kbps", c.Level().Bitrate)
	}
	// Now sustain r > 1+β = 5/3 for h1 estimations.
	var last Decision
	for i := 0; i < cfg.UpStreak; i++ {
		last = c.Observe(2.0)
	}
	if last != AdjustedUp {
		t.Fatalf("decision = %v, want up", last)
	}
	if c.Level().Bitrate != 1_200_000 {
		t.Fatalf("bitrate = %d, want 1200kbps", c.Level().Bitrate)
	}
}

func TestUpCappedAtGameLevel(t *testing.T) {
	g := mustGame(t, 2)
	cfg := DefaultConfig()
	cfg.UseRho = false
	c := NewController(cfg, g)
	for i := 0; i < cfg.UpStreak*3; i++ {
		c.Observe(10)
	}
	if c.Level().Level != 2 {
		t.Fatalf("level rose above game's matched level: %d", c.Level().Level)
	}
}

func TestDownCappedAtLevelOne(t *testing.T) {
	g := mustGame(t, 1)
	c := NewController(DefaultConfig(), g)
	for i := 0; i < 100; i++ {
		c.Observe(0)
	}
	if c.Level().Level != 1 {
		t.Fatalf("level fell below 1: %d", c.Level().Level)
	}
}

// TestHysteresisPreventsFluctuation checks that a single low sample does not
// trigger a change — all h consecutive results must satisfy the condition.
func TestHysteresisPreventsFluctuation(t *testing.T) {
	g := mustGame(t, 3)
	cfg := DefaultConfig()
	cfg.UseRho = false
	c := NewController(cfg, g)
	for i := 0; i < 200; i++ {
		// Alternate: condition never holds DownStreak times in a row.
		if i%5 == 4 {
			c.Observe(1.0) // neutral
		} else {
			c.Observe(0.1) // would-be down
		}
	}
	if c.Level().Level != 3 {
		t.Fatalf("level changed despite broken streak: %d", c.Level().Level)
	}
}

func TestStreakResetsAfterAdjustment(t *testing.T) {
	g := mustGame(t, 3)
	cfg := DefaultConfig()
	cfg.UseRho = false
	cfg.DownStreak = 3
	c := NewController(cfg, g)
	downs := 0
	for i := 0; i < 6; i++ {
		if c.Observe(0.1) == AdjustedDown {
			downs++
		}
	}
	// 6 observations with streak 3 => exactly 2 adjustments, not 4.
	if downs != 2 {
		t.Fatalf("adjustments = %d, want 2", downs)
	}
}

// TestRhoScalingMakesSensitiveGamesConservative verifies §III-B's extension:
// lower ρ (latency-sensitive game) means a higher up threshold, so a
// latency-sensitive game requires more buffered video before adjusting up.
func TestRhoScalingMakesSensitiveGamesConservative(t *testing.T) {
	cfg := DefaultConfig()
	sensitive := NewController(cfg, mustGame(t, 1)) // rho 0.6
	tolerant := NewController(cfg, mustGame(t, 5))  // rho 1.0
	if sensitive.UpThreshold() <= tolerant.UpThreshold() {
		t.Fatalf("sensitive up threshold %v <= tolerant %v",
			sensitive.UpThreshold(), tolerant.UpThreshold())
	}
	if sensitive.DownThreshold() <= tolerant.DownThreshold() {
		t.Fatalf("sensitive down threshold %v <= tolerant %v",
			sensitive.DownThreshold(), tolerant.DownThreshold())
	}
}

func TestRhoDisabledMatchesPlainThresholds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseRho = false
	c := NewController(cfg, mustGame(t, 1))
	if math.Abs(c.UpThreshold()-(1+2.0/3.0)) > 1e-12 {
		t.Fatalf("up threshold = %v, want 1+beta", c.UpThreshold())
	}
	if c.DownThreshold() != 0.5 {
		t.Fatalf("down threshold = %v, want theta", c.DownThreshold())
	}
}

func TestDefaultsFilledIn(t *testing.T) {
	c := NewController(Config{}, mustGame(t, 3))
	if c.cfg.Theta != 0.5 || c.cfg.UpStreak != 100 || c.cfg.DownStreak != 10 {
		t.Fatalf("defaults not applied: %+v", c.cfg)
	}
	if math.Abs(c.cfg.Beta-2.0/3.0) > 1e-12 {
		t.Fatalf("beta default = %v, want 2/3", c.cfg.Beta)
	}
}

func TestAdjustmentCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseRho = false
	cfg.DownStreak = 2
	cfg.UpStreak = 2
	c := NewController(cfg, mustGame(t, 4))
	c.Observe(0.1)
	c.Observe(0.1) // down to 3
	c.Observe(3)
	c.Observe(3) // up to 4
	up, down := c.Adjustments()
	if up != 1 || down != 1 {
		t.Fatalf("adjustments = (%d,%d), want (1,1)", up, down)
	}
}

func TestOccupancyEstimatorEq7(t *testing.T) {
	var e OccupancyEstimator
	e.Update(0, 0, 0) // initialize at t=0
	// 1 second at download 800kbps, playback 400kbps => +50,000 bytes.
	got := e.Update(time.Second, 800_000, 400_000)
	if math.Abs(got-50_000) > 1e-9 {
		t.Fatalf("estimate = %v, want 50000", got)
	}
	// Another 0.5s draining at -800kbps net => -50,000 bytes => clamp at 0.
	got = e.Update(1500*time.Millisecond, 0, 800_000)
	if got != 0 {
		t.Fatalf("estimate = %v, want clamp at 0", got)
	}
}

func TestOccupancyEstimatorSegments(t *testing.T) {
	var e OccupancyEstimator
	e.Update(0, 0, 0)
	e.Update(time.Second, 800_000, 0) // 100,000 bytes
	if r := e.Segments(10_000); math.Abs(r-10) > 1e-9 {
		t.Fatalf("r = %v, want 10", r)
	}
	if r := e.Segments(0); r != 0 {
		t.Fatalf("r with zero segment size = %v, want 0", r)
	}
}

func TestOccupancyEstimatorIgnoresBackwardsTime(t *testing.T) {
	var e OccupancyEstimator
	e.Update(time.Second, 800_000, 0)
	before := e.Bytes()
	e.Update(500*time.Millisecond, 800_000, 0)
	if e.Bytes() != before {
		t.Fatal("backwards update changed estimate")
	}
}

func TestDecisionString(t *testing.T) {
	if Hold.String() != "hold" || AdjustedUp.String() != "up" || AdjustedDown.String() != "down" {
		t.Fatal("decision names wrong")
	}
	if Decision(42).String() == "" {
		t.Fatal("unknown decision produced empty string")
	}
}
