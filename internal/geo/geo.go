// Package geo models node geography for the CloudFog reproduction.
//
// Nodes (players, supernodes, datacenters, edge servers) live on a
// continental-scale 2-D plane measured in kilometers. The CloudFog paper
// geolocates nodes from their IP addresses (refs [20][21]) and uses the
// resulting coordinates to shortlist nearby supernodes; this package supplies
// the coordinates, population-clustered placement, and an IP-geolocation
// error model for that shortlist step.
package geo

import (
	"fmt"
	"math"

	"cloudfog/internal/sim"
)

// Point is a position on the plane, in kilometers.
type Point struct {
	X, Y float64
}

// DistanceTo returns the Euclidean distance to q in kilometers.
func (p Point) DistanceTo(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// String formats the point with kilometer precision.
func (p Point) String() string { return fmt.Sprintf("(%.0fkm,%.0fkm)", p.X, p.Y) }

// Region is the rectangular deployment area. The defaults approximate the
// contiguous United States, where both the paper's PlanetLab nodes and the
// Choy et al. latency measurements it builds on were located.
type Region struct {
	Width, Height float64 // kilometers
}

// USRegion approximates the contiguous United States.
func USRegion() Region { return Region{Width: 4500, Height: 2900} }

// Contains reports whether p lies inside the region.
func (rg Region) Contains(p Point) bool {
	return p.X >= 0 && p.X <= rg.Width && p.Y >= 0 && p.Y <= rg.Height
}

// Clamp returns p moved to the nearest point inside the region.
func (rg Region) Clamp(p Point) Point {
	return Point{X: clamp(p.X, 0, rg.Width), Y: clamp(p.Y, 0, rg.Height)}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Center returns the region's midpoint.
func (rg Region) Center() Point { return Point{X: rg.Width / 2, Y: rg.Height / 2} }

// Placer produces node positions.
type Placer interface {
	// Place draws the next position using the provided random stream.
	Place(r *sim.Rand) Point
}

// UniformPlacer spreads nodes uniformly over a region.
type UniformPlacer struct {
	Region Region
}

// Place draws a uniform position in the region.
func (u UniformPlacer) Place(r *sim.Rand) Point {
	return Point{X: r.Float64() * u.Region.Width, Y: r.Float64() * u.Region.Height}
}

// Cluster is one population center: nodes placed from it are normally
// distributed around Center with standard deviation Sigma kilometers.
type Cluster struct {
	Name   string
	Center Point
	Sigma  float64
	Weight float64 // relative population share
}

// ClusterPlacer places nodes around weighted population centers, mirroring
// how game players concentrate in metropolitan areas.
type ClusterPlacer struct {
	Region      Region
	Clusters    []Cluster
	totalWeight float64
}

// NewClusterPlacer validates the clusters and precomputes weights.
func NewClusterPlacer(region Region, clusters []Cluster) (*ClusterPlacer, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("geo: NewClusterPlacer requires at least one cluster")
	}
	total := 0.0
	for i, c := range clusters {
		if c.Weight <= 0 {
			return nil, fmt.Errorf("geo: cluster %d (%s) has non-positive weight %v", i, c.Name, c.Weight)
		}
		if c.Sigma <= 0 {
			return nil, fmt.Errorf("geo: cluster %d (%s) has non-positive sigma %v", i, c.Name, c.Sigma)
		}
		total += c.Weight
	}
	return &ClusterPlacer{Region: region, Clusters: clusters, totalWeight: total}, nil
}

// Place picks a cluster proportionally to weight, then draws a Gaussian
// offset around its center, clamped to the region.
func (cp *ClusterPlacer) Place(r *sim.Rand) Point {
	target := r.Float64() * cp.totalWeight
	idx := len(cp.Clusters) - 1
	acc := 0.0
	for i, c := range cp.Clusters {
		acc += c.Weight
		if target < acc {
			idx = i
			break
		}
	}
	c := cp.Clusters[idx]
	p := Point{
		X: c.Center.X + r.NormFloat64()*c.Sigma,
		Y: c.Center.Y + r.NormFloat64()*c.Sigma,
	}
	return cp.Region.Clamp(p)
}

// USMetroClusters returns a 15-metro population model of the contiguous US
// (positions are plane approximations of real metro locations, weights are
// rough population shares). It drives all default player placement.
func USMetroClusters() []Cluster {
	return []Cluster{
		{Name: "NewYork", Center: Point{4100, 2100}, Sigma: 90, Weight: 20},
		{Name: "LosAngeles", Center: Point{500, 1100}, Sigma: 100, Weight: 13},
		{Name: "Chicago", Center: Point{3000, 2100}, Sigma: 80, Weight: 9},
		{Name: "Dallas", Center: Point{2500, 1000}, Sigma: 80, Weight: 8},
		{Name: "Houston", Center: Point{2600, 700}, Sigma: 70, Weight: 7},
		{Name: "WashingtonDC", Center: Point{3950, 1850}, Sigma: 70, Weight: 6},
		{Name: "Miami", Center: Point{3800, 300}, Sigma: 60, Weight: 6},
		{Name: "Philadelphia", Center: Point{4050, 2000}, Sigma: 60, Weight: 6},
		{Name: "Atlanta", Center: Point{3450, 1100}, Sigma: 70, Weight: 6},
		{Name: "Phoenix", Center: Point{900, 1050}, Sigma: 60, Weight: 5},
		{Name: "Boston", Center: Point{4300, 2300}, Sigma: 60, Weight: 5},
		{Name: "SanFrancisco", Center: Point{250, 1700}, Sigma: 70, Weight: 5},
		{Name: "Seattle", Center: Point{450, 2700}, Sigma: 60, Weight: 4},
		{Name: "Denver", Center: Point{1800, 1700}, Sigma: 60, Weight: 3},
		{Name: "Minneapolis", Center: Point{2750, 2400}, Sigma: 60, Weight: 3},
	}
}

// DefaultUSPlacer returns the metro-clustered placer used by all default
// experiment configurations.
func DefaultUSPlacer() *ClusterPlacer {
	p, err := NewClusterPlacer(USRegion(), USMetroClusters())
	if err != nil {
		panic(err) // static data; cannot fail
	}
	return p
}

// Locator models IP-based geolocation: the cloud knows node positions only
// up to a Gaussian error of ErrorSigma kilometers, matching the paper's
// assumption that "node locations and coordinates can be determined by IP
// addresses" approximately.
type Locator struct {
	Region     Region
	ErrorSigma float64
}

// Locate returns the estimated position of a node at truth.
func (l Locator) Locate(truth Point, r *sim.Rand) Point {
	if l.ErrorSigma <= 0 {
		return truth
	}
	p := Point{
		X: truth.X + r.NormFloat64()*l.ErrorSigma,
		Y: truth.Y + r.NormFloat64()*l.ErrorSigma,
	}
	return l.Region.Clamp(p)
}

// SpreadPoints returns n positions spread as a jittered grid over the region,
// used to site datacenters and EdgeCloud servers "randomly distributed"
// across the deployment area while avoiding degenerate clumping at small n.
func SpreadPoints(region Region, n int, r *sim.Rand) []Point {
	if n <= 0 {
		return nil
	}
	// Choose grid dimensions close to the region aspect ratio.
	cols := int(math.Ceil(math.Sqrt(float64(n) * region.Width / region.Height)))
	if cols < 1 {
		cols = 1
	}
	rows := (n + cols - 1) / cols
	cellW := region.Width / float64(cols)
	cellH := region.Height / float64(rows)
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		cx := float64(i%cols)*cellW + cellW/2
		cy := float64(i/cols)*cellH + cellH/2
		p := Point{
			X: cx + (r.Float64()-0.5)*cellW*0.6,
			Y: cy + (r.Float64()-0.5)*cellH*0.6,
		}
		pts = append(pts, region.Clamp(p))
	}
	return pts
}
