package geo

import (
	"math"
	"testing"
	"testing/quick"

	"cloudfog/internal/sim"
)

func TestDistanceTo(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if d := a.DistanceTo(b); d != 5 {
		t.Fatalf("distance = %v, want 5", d)
	}
	if d := b.DistanceTo(a); d != 5 {
		t.Fatalf("distance not symmetric: %v", d)
	}
}

func TestDistanceProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Bound inputs to keep float error manageable.
		bound := func(v float64) float64 { return math.Mod(math.Abs(v), 5000) }
		a := Point{bound(ax), bound(ay)}
		b := Point{bound(bx), bound(by)}
		c := Point{bound(cx), bound(cy)}
		ab, ba := a.DistanceTo(b), b.DistanceTo(a)
		if ab != ba || ab < 0 {
			return false
		}
		// Triangle inequality with float tolerance.
		return a.DistanceTo(c) <= ab+b.DistanceTo(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegionContainsAndClamp(t *testing.T) {
	rg := USRegion()
	if !rg.Contains(rg.Center()) {
		t.Fatal("region does not contain its center")
	}
	out := Point{-10, 99999}
	in := rg.Clamp(out)
	if !rg.Contains(in) {
		t.Fatalf("Clamp produced point outside region: %v", in)
	}
	if in.X != 0 || in.Y != rg.Height {
		t.Fatalf("Clamp = %v, want (0, %v)", in, rg.Height)
	}
}

func TestUniformPlacerStaysInRegion(t *testing.T) {
	r := sim.NewRand(1)
	rg := USRegion()
	up := UniformPlacer{Region: rg}
	for i := 0; i < 10000; i++ {
		if p := up.Place(r); !rg.Contains(p) {
			t.Fatalf("uniform placement outside region: %v", p)
		}
	}
}

func TestClusterPlacerStaysInRegion(t *testing.T) {
	r := sim.NewRand(2)
	cp := DefaultUSPlacer()
	for i := 0; i < 10000; i++ {
		if p := cp.Place(r); !cp.Region.Contains(p) {
			t.Fatalf("cluster placement outside region: %v", p)
		}
	}
}

func TestClusterPlacerWeights(t *testing.T) {
	// Nodes should appear near the heaviest cluster (NewYork, weight 20)
	// more often than near the lightest (Minneapolis, weight 3).
	r := sim.NewRand(3)
	cp := DefaultUSPlacer()
	clusters := USMetroClusters()
	var ny, mn Point
	for _, c := range clusters {
		switch c.Name {
		case "NewYork":
			ny = c.Center
		case "Minneapolis":
			mn = c.Center
		}
	}
	nearNY, nearMN := 0, 0
	for i := 0; i < 20000; i++ {
		p := cp.Place(r)
		if p.DistanceTo(ny) < 200 {
			nearNY++
		}
		if p.DistanceTo(mn) < 200 {
			nearMN++
		}
	}
	if nearNY <= nearMN*2 {
		t.Fatalf("cluster weights not respected: NY=%d MN=%d", nearNY, nearMN)
	}
}

func TestNewClusterPlacerValidation(t *testing.T) {
	rg := USRegion()
	if _, err := NewClusterPlacer(rg, nil); err == nil {
		t.Fatal("empty cluster list accepted")
	}
	bad := []Cluster{{Name: "x", Center: rg.Center(), Sigma: 10, Weight: 0}}
	if _, err := NewClusterPlacer(rg, bad); err == nil {
		t.Fatal("zero weight accepted")
	}
	bad[0].Weight = 1
	bad[0].Sigma = 0
	if _, err := NewClusterPlacer(rg, bad); err == nil {
		t.Fatal("zero sigma accepted")
	}
}

func TestLocatorZeroErrorIsExact(t *testing.T) {
	r := sim.NewRand(4)
	l := Locator{Region: USRegion()}
	p := Point{1000, 1000}
	if got := l.Locate(p, r); got != p {
		t.Fatalf("zero-error locate moved point: %v", got)
	}
}

func TestLocatorErrorMagnitude(t *testing.T) {
	r := sim.NewRand(5)
	l := Locator{Region: USRegion(), ErrorSigma: 50}
	p := Point{2000, 1500}
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		sum += p.DistanceTo(l.Locate(p, r))
	}
	mean := sum / n
	// Mean of a 2-D Gaussian displacement is sigma*sqrt(pi/2) ~= 62.7km.
	if mean < 50 || mean > 80 {
		t.Fatalf("geolocation error mean = %.1fkm, want ~63km", mean)
	}
}

func TestSpreadPointsCountAndContainment(t *testing.T) {
	r := sim.NewRand(6)
	rg := USRegion()
	for _, n := range []int{0, 1, 2, 5, 13, 25, 45, 600} {
		pts := SpreadPoints(rg, n, r)
		if len(pts) != n {
			t.Fatalf("SpreadPoints(%d) returned %d points", n, len(pts))
		}
		for _, p := range pts {
			if !rg.Contains(p) {
				t.Fatalf("spread point outside region: %v", p)
			}
		}
	}
}

func TestSpreadPointsAreSpread(t *testing.T) {
	// With 5 datacenters over the US, the min pairwise distance should be
	// continental-scale, not clumped.
	r := sim.NewRand(7)
	pts := SpreadPoints(USRegion(), 5, r)
	min := math.Inf(1)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].DistanceTo(pts[j]); d < min {
				min = d
			}
		}
	}
	if min < 500 {
		t.Fatalf("5 spread datacenters clumped: min pairwise distance %.0fkm", min)
	}
}
