package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestWelfordMeanStd(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("n = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	// Sample variance of that classic set is 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("var = %v, want %v", w.Var(), 32.0/7.0)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Var() != 0 {
		t.Fatal("single observation wrong")
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, x := range clean {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		ss := 0.0
		for _, x := range clean {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(clean)-1)
		scale := math.Max(1, math.Abs(naiveVar))
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Var()-naiveVar)/scale < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationSamplePercentiles(t *testing.T) {
	var d DurationSample
	for i := 1; i <= 100; i++ {
		d.Add(time.Duration(i) * time.Millisecond)
	}
	if d.N() != 100 {
		t.Fatal("wrong N")
	}
	if d.Median() != 50*time.Millisecond {
		t.Fatalf("median = %v", d.Median())
	}
	if d.Percentile(90) != 90*time.Millisecond {
		t.Fatalf("p90 = %v", d.Percentile(90))
	}
	if d.Percentile(0) != time.Millisecond || d.Percentile(100) != 100*time.Millisecond {
		t.Fatal("extremes wrong")
	}
	if d.Mean() != 50500*time.Microsecond {
		t.Fatalf("mean = %v", d.Mean())
	}
}

func TestDurationSampleEmpty(t *testing.T) {
	var d DurationSample
	if d.Mean() != 0 || d.Median() != 0 || d.Percentile(99) != 0 {
		t.Fatal("empty sample not zero")
	}
}

func TestDurationSampleAddAfterPercentile(t *testing.T) {
	var d DurationSample
	d.Add(10 * time.Millisecond)
	_ = d.Median()
	d.Add(20 * time.Millisecond)
	d.Add(2 * time.Millisecond)
	if d.Percentile(100) != 20*time.Millisecond || d.Percentile(0) != 2*time.Millisecond {
		t.Fatal("re-sorting after Add broken")
	}
}

func TestCoverage(t *testing.T) {
	var c Coverage
	if c.Fraction() != 0 {
		t.Fatal("empty coverage not 0")
	}
	c.Observe(50*time.Millisecond, 80*time.Millisecond)
	c.Observe(90*time.Millisecond, 80*time.Millisecond)
	c.Observe(80*time.Millisecond, 80*time.Millisecond) // inclusive
	if c.Fraction() != 2.0/3.0 {
		t.Fatalf("fraction = %v", c.Fraction())
	}
	c.Add(true)
	if c.Total() != 4 || c.Fraction() != 0.75 {
		t.Fatal("Add broken")
	}
}

func TestSeriesTable(t *testing.T) {
	a := Series{Label: "Cloud"}
	a.Add(5, 0.31)
	a.Add(10, 0.42)
	b := Series{Label: "CloudFog"}
	b.Add(5, 0.65)
	out := Table("#dcs", []Series{a, b})
	for _, want := range []string{"#dcs", "Cloud", "CloudFog", "0.31", "0.42", "0.65"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// Missing cell prints as "-".
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "-") {
		t.Fatalf("missing cell not dashed:\n%s", out)
	}
}
