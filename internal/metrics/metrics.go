// Package metrics provides the small statistics toolkit the experiment
// harness aggregates results with: streaming mean/variance, duration
// samples with percentiles, and coverage counters.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Welford accumulates mean and variance in one pass.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add accumulates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance (0 with fewer than two observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// DurationSample collects durations for mean/percentile reporting.
type DurationSample struct {
	values []time.Duration
	sorted bool
}

// Add appends one duration.
func (d *DurationSample) Add(v time.Duration) {
	d.values = append(d.values, v)
	d.sorted = false
}

// N returns the sample size.
func (d *DurationSample) N() int { return len(d.values) }

// Mean returns the average duration (0 when empty).
func (d *DurationSample) Mean() time.Duration {
	if len(d.values) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range d.values {
		sum += v
	}
	return sum / time.Duration(len(d.values))
}

// Percentile returns the p-th percentile (p in [0,100]) by nearest-rank,
// or 0 when empty.
func (d *DurationSample) Percentile(p float64) time.Duration {
	if len(d.values) == 0 {
		return 0
	}
	if !d.sorted {
		sort.Slice(d.values, func(i, j int) bool { return d.values[i] < d.values[j] })
		d.sorted = true
	}
	if p <= 0 {
		return d.values[0]
	}
	if p >= 100 {
		return d.values[len(d.values)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(d.values)))) - 1
	if rank < 0 {
		rank = 0
	}
	return d.values[rank]
}

// Median returns the 50th percentile.
func (d *DurationSample) Median() time.Duration { return d.Percentile(50) }

// Coverage counts how many observations fall within a threshold.
type Coverage struct {
	within int64
	total  int64
}

// Observe records one latency against the threshold.
func (c *Coverage) Observe(latency, threshold time.Duration) {
	c.total++
	if latency <= threshold {
		c.within++
	}
}

// Add merges a pre-counted pair.
func (c *Coverage) Add(within bool) {
	c.total++
	if within {
		c.within++
	}
}

// Fraction returns the covered fraction (0 when empty).
func (c *Coverage) Fraction() float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.within) / float64(c.total)
}

// Total returns the number of observations.
func (c *Coverage) Total() int64 { return c.total }

// Series is one plotted curve: a label plus (x, y) points, used by the
// experiment harness to print figures in the shape the paper plots them.
type Series struct {
	Label  string
	Points []Point
}

// Point is one (x, y) pair.
type Point struct {
	X float64
	Y float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Table formats a set of series sharing an x-axis into an aligned text
// table: one row per x value, one column per series. Series may have
// different x sets; missing cells print as "-".
func Table(xLabel string, series []Series) string {
	xs := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sortedXs := make([]float64, 0, len(xs))
	for x := range xs {
		sortedXs = append(sortedXs, x)
	}
	sort.Float64s(sortedXs)

	out := fmt.Sprintf("%-12s", xLabel)
	for _, s := range series {
		out += fmt.Sprintf("%14s", s.Label)
	}
	out += "\n"
	for _, x := range sortedXs {
		out += fmt.Sprintf("%-12g", x)
		for _, s := range series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%.4g", p.Y)
					break
				}
			}
			out += fmt.Sprintf("%14s", cell)
		}
		out += "\n"
	}
	return out
}
