// Package game defines the game genres and the video-quality ladder that the
// CloudFog paper evaluates with (its Figure 2), together with each game's
// QoE tolerances: response-latency requirement, latency tolerance degree ρ,
// and packet-loss tolerance rate L̃_t. Different genres tolerate delay and
// loss differently (Lee et al., NetGames'12 — the paper's ref [11]); both
// proposed strategies key off these per-game tolerances.
package game

import (
	"fmt"
	"time"
)

// FrameRate is the game-video frame rate used throughout the evaluation
// (OnLive streams at 30 fps; paper §IV).
const FrameRate = 30

// PlayoutDelay is the non-network share of the 100 ms response budget:
// 20 ms attributed to client playout plus cloud processing (paper §I, §IV).
const PlayoutDelay = 20 * time.Millisecond

// GeneralLatencyRequirement is the overall response-latency bound at which
// players begin to notice delay (100 ms; paper §I).
const GeneralLatencyRequirement = 100 * time.Millisecond

// QualityLevel is one row of the paper's Figure 2: an encoding operating
// point with its resolution, bitrate, and the response-latency requirement
// it can serve.
type QualityLevel struct {
	Level            int           // 1 (lowest) .. 5 (highest)
	Width, Height    int           // video resolution in pixels
	Bitrate          int64         // encoding bitrate in bits/second
	LatencyReq       time.Duration // network latency requirement this level is matched to
	LatencyTolerance float64       // latency tolerance degree ρ in [0,1]
}

// String formats the level like the paper's table row.
func (q QualityLevel) String() string {
	return fmt.Sprintf("L%d %dx%d @%dkbps (req %v, rho %.1f)",
		q.Level, q.Width, q.Height, q.Bitrate/1000, q.LatencyReq, q.LatencyTolerance)
}

// ladder is Figure 2 of the paper, lowest quality first.
var ladder = []QualityLevel{
	{Level: 1, Width: 288, Height: 216, Bitrate: 300_000, LatencyReq: 30 * time.Millisecond, LatencyTolerance: 0.6},
	{Level: 2, Width: 384, Height: 216, Bitrate: 500_000, LatencyReq: 50 * time.Millisecond, LatencyTolerance: 0.7},
	{Level: 3, Width: 640, Height: 480, Bitrate: 800_000, LatencyReq: 70 * time.Millisecond, LatencyTolerance: 0.8},
	{Level: 4, Width: 720, Height: 486, Bitrate: 1_200_000, LatencyReq: 90 * time.Millisecond, LatencyTolerance: 0.9},
	{Level: 5, Width: 1280, Height: 720, Bitrate: 1_800_000, LatencyReq: 110 * time.Millisecond, LatencyTolerance: 1.0},
}

// Ladder returns the quality ladder (Figure 2), lowest quality first. The
// returned slice is a copy; callers may not mutate the canonical table.
func Ladder() []QualityLevel {
	out := make([]QualityLevel, len(ladder))
	copy(out, ladder)
	return out
}

// Levels is the number of quality levels Q.
func Levels() int { return len(ladder) }

// LevelAt returns the quality level with the given 1-based level number.
func LevelAt(level int) (QualityLevel, error) {
	if level < 1 || level > len(ladder) {
		return QualityLevel{}, fmt.Errorf("game: quality level %d out of range [1,%d]", level, len(ladder))
	}
	return ladder[level-1], nil
}

// MustLevelAt is LevelAt for statically valid levels; it panics on error.
func MustLevelAt(level int) QualityLevel {
	q, err := LevelAt(level)
	if err != nil {
		panic(err)
	}
	return q
}

// HighestLevelWithin returns the highest quality level whose latency
// requirement does not exceed req — the starting encoding point for a game
// with response-latency requirement req (paper §III-B: a 90 ms game starts
// at 1200 kbps / level 4). If even the lowest level's requirement exceeds
// req, level 1 is returned: the system cannot encode below the ladder.
func HighestLevelWithin(req time.Duration) QualityLevel {
	best := ladder[0]
	for _, q := range ladder[1:] {
		if q.LatencyReq <= req {
			best = q
		}
	}
	return best
}

// AdjustUpFactor returns β = max over i of (b_{i+1} - b_i) / b_i (Eq. 10):
// the largest relative bitrate step in the ladder. For Figure 2 this is the
// 300→500 kbps step, β = 2/3.
func AdjustUpFactor() float64 {
	beta := 0.0
	for i := 0; i+1 < len(ladder); i++ {
		step := float64(ladder[i+1].Bitrate-ladder[i].Bitrate) / float64(ladder[i].Bitrate)
		if step > beta {
			beta = step
		}
	}
	return beta
}

// Game is one of the five evaluated games. Each game is matched to a ladder
// row: its response-latency requirement is that row's requirement, and its
// latency tolerance degree ρ is that row's tolerance. Loss tolerance is the
// per-game packet-loss tolerance rate L̃_t used by the sender scheduler.
type Game struct {
	ID            int
	Name          string
	LatencyReq    time.Duration // network latency requirement (Fig. 2 column)
	RhoLatency    float64       // latency tolerance degree ρ ∈ [0,1]
	LossTolerance float64       // packet loss tolerance rate L̃_t ∈ [0,1]
	StartLevel    int           // ladder level matched to LatencyReq
}

// games mirrors the paper's five evaluated games, one per ladder row. Loss
// tolerances follow the genre ordering of ref [11]: fast-paced games (strict
// latency) tolerate some loss; slow-paced games tolerate more of both.
var games = []Game{
	{ID: 1, Name: "shooter", LatencyReq: 30 * time.Millisecond, RhoLatency: 0.6, LossTolerance: 0.10, StartLevel: 1},
	{ID: 2, Name: "racing", LatencyReq: 50 * time.Millisecond, RhoLatency: 0.7, LossTolerance: 0.15, StartLevel: 2},
	{ID: 3, Name: "action-rpg", LatencyReq: 70 * time.Millisecond, RhoLatency: 0.8, LossTolerance: 0.20, StartLevel: 3},
	{ID: 4, Name: "mmorpg", LatencyReq: 90 * time.Millisecond, RhoLatency: 0.9, LossTolerance: 0.30, StartLevel: 4},
	{ID: 5, Name: "strategy", LatencyReq: 110 * time.Millisecond, RhoLatency: 1.0, LossTolerance: 0.40, StartLevel: 5},
}

// Games returns the five evaluated games. The slice is a copy.
func Games() []Game {
	out := make([]Game, len(games))
	copy(out, games)
	return out
}

// ByID returns the game with the given 1-based ID.
func ByID(id int) (Game, error) {
	if id < 1 || id > len(games) {
		return Game{}, fmt.Errorf("game: id %d out of range [1,%d]", id, len(games))
	}
	return games[id-1], nil
}

// NetworkBudget returns the game's network latency budget. The paper's
// coverage sweeps use the Figure 2 latency column directly as the "network
// latency requirement" (30-110 ms), so the budget is LatencyReq itself.
func (g Game) NetworkBudget() time.Duration { return g.LatencyReq }

// ResponseRequirement returns the game's end-to-end response latency
// requirement L̃_r: the network budget plus the 20 ms playout/processing
// share (paper §IV: 100 ms total = 20 ms playout/processing + 80 ms
// network).
func (g Game) ResponseRequirement() time.Duration { return g.LatencyReq + PlayoutDelay }

// Quality returns the ladder row matched to the game's latency requirement.
func (g Game) Quality() QualityLevel { return MustLevelAt(g.StartLevel) }
