package game

import (
	"math"
	"testing"
	"time"
)

// TestQualityLadder pins the ladder to the paper's Figure 2 exactly.
func TestQualityLadder(t *testing.T) {
	want := []struct {
		level, w, h int
		kbps        int64
		req         time.Duration
		rho         float64
	}{
		{1, 288, 216, 300, 30 * time.Millisecond, 0.6},
		{2, 384, 216, 500, 50 * time.Millisecond, 0.7},
		{3, 640, 480, 800, 70 * time.Millisecond, 0.8},
		{4, 720, 486, 1200, 90 * time.Millisecond, 0.9},
		{5, 1280, 720, 1800, 110 * time.Millisecond, 1.0},
	}
	ld := Ladder()
	if len(ld) != len(want) {
		t.Fatalf("ladder has %d levels, want %d", len(ld), len(want))
	}
	for i, w := range want {
		q := ld[i]
		if q.Level != w.level || q.Width != w.w || q.Height != w.h ||
			q.Bitrate != w.kbps*1000 || q.LatencyReq != w.req || q.LatencyTolerance != w.rho {
			t.Fatalf("ladder[%d] = %+v, want %+v", i, q, w)
		}
	}
}

func TestLadderReturnsCopy(t *testing.T) {
	ld := Ladder()
	ld[0].Bitrate = 1
	if Ladder()[0].Bitrate == 1 {
		t.Fatal("Ladder exposes internal table")
	}
}

func TestLevelAtBounds(t *testing.T) {
	if _, err := LevelAt(0); err == nil {
		t.Fatal("LevelAt(0) did not error")
	}
	if _, err := LevelAt(6); err == nil {
		t.Fatal("LevelAt(6) did not error")
	}
	q, err := LevelAt(3)
	if err != nil || q.Bitrate != 800_000 {
		t.Fatalf("LevelAt(3) = %+v, %v", q, err)
	}
}

func TestMustLevelAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLevelAt(99) did not panic")
		}
	}()
	MustLevelAt(99)
}

func TestHighestLevelWithin(t *testing.T) {
	cases := []struct {
		req  time.Duration
		want int
	}{
		{110 * time.Millisecond, 5},
		{100 * time.Millisecond, 4},
		{90 * time.Millisecond, 4},
		{89 * time.Millisecond, 3},
		{50 * time.Millisecond, 2},
		{30 * time.Millisecond, 1},
		{10 * time.Millisecond, 1}, // cannot go below the ladder
		{time.Second, 5},
	}
	for _, c := range cases {
		if got := HighestLevelWithin(c.req); got.Level != c.want {
			t.Errorf("HighestLevelWithin(%v) = L%d, want L%d", c.req, got.Level, c.want)
		}
	}
}

// TestPaperEncodingExample checks §III-B's example: a game with a 90 ms
// latency requirement should be encoded at 1200 kbps (level 4).
func TestPaperEncodingExample(t *testing.T) {
	q := HighestLevelWithin(90 * time.Millisecond)
	if q.Bitrate != 1_200_000 || q.Level != 4 {
		t.Fatalf("90ms game mapped to %+v, want level 4 @ 1200kbps", q)
	}
}

// TestAdjustUpFactor checks β (Eq. 10) for the Figure 2 ladder: the largest
// relative step is 300→500 kbps, i.e. 2/3.
func TestAdjustUpFactor(t *testing.T) {
	if got := AdjustUpFactor(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("beta = %v, want 2/3", got)
	}
}

func TestFiveGamesMatchLadder(t *testing.T) {
	gs := Games()
	if len(gs) != 5 {
		t.Fatalf("%d games, want 5", len(gs))
	}
	for i, g := range gs {
		q := g.Quality()
		if q.LatencyReq != g.LatencyReq {
			t.Errorf("game %d: quality req %v != game req %v", g.ID, q.LatencyReq, g.LatencyReq)
		}
		if g.ID != i+1 {
			t.Errorf("game IDs not sequential: %d at index %d", g.ID, i)
		}
		if q.LatencyTolerance != g.RhoLatency {
			t.Errorf("game %d: rho mismatch", g.ID)
		}
		if g.LossTolerance <= 0 || g.LossTolerance >= 1 {
			t.Errorf("game %d: loss tolerance %v out of (0,1)", g.ID, g.LossTolerance)
		}
	}
}

func TestTolerancesMonotonicAcrossGenres(t *testing.T) {
	gs := Games()
	for i := 1; i < len(gs); i++ {
		if gs[i].LatencyReq <= gs[i-1].LatencyReq {
			t.Fatal("latency requirements not strictly increasing")
		}
		if gs[i].RhoLatency <= gs[i-1].RhoLatency {
			t.Fatal("latency tolerance not strictly increasing")
		}
		if gs[i].LossTolerance <= gs[i-1].LossTolerance {
			t.Fatal("loss tolerance not strictly increasing")
		}
	}
}

func TestByID(t *testing.T) {
	g, err := ByID(4)
	if err != nil || g.Name != "mmorpg" {
		t.Fatalf("ByID(4) = %+v, %v", g, err)
	}
	if _, err := ByID(0); err == nil {
		t.Fatal("ByID(0) did not error")
	}
	if _, err := ByID(6); err == nil {
		t.Fatal("ByID(6) did not error")
	}
}

func TestResponseRequirementAddsPlayout(t *testing.T) {
	g, _ := ByID(4)
	if g.ResponseRequirement() != 110*time.Millisecond {
		t.Fatalf("mmorpg response req = %v, want 110ms", g.ResponseRequirement())
	}
	if g.NetworkBudget() != 90*time.Millisecond {
		t.Fatalf("mmorpg network budget = %v, want 90ms", g.NetworkBudget())
	}
}

// TestGeneralRequirementDecomposition pins the paper's 100 = 20 + 80 split.
func TestGeneralRequirementDecomposition(t *testing.T) {
	if GeneralLatencyRequirement != 100*time.Millisecond {
		t.Fatal("general requirement changed")
	}
	if PlayoutDelay != 20*time.Millisecond {
		t.Fatal("playout delay changed")
	}
	if GeneralLatencyRequirement-PlayoutDelay != 80*time.Millisecond {
		t.Fatal("network share of general requirement != 80ms")
	}
}
