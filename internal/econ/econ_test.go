package econ

import (
	"math"
	"testing"
	"testing/quick"
)

func defaultParams() Params {
	// R = 1 Mbps stream (800kbps video + overhead), Λ = 0.1 Mbps updates,
	// c_c = 1.0 per unit saved, c_s = 0.3 per unit rewarded.
	return Params{RewardPerUnit: 0.3, RevenuePerUnit: 1.0, StreamRate: 1.0, UpdateRate: 0.1}
}

func TestParamsValidate(t *testing.T) {
	if err := defaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{RewardPerUnit: -1, RevenuePerUnit: 1, StreamRate: 1},
		{RewardPerUnit: 1, RevenuePerUnit: -1, StreamRate: 1},
		{RewardPerUnit: 1, RevenuePerUnit: 1, StreamRate: 0},
		{RewardPerUnit: 1, RevenuePerUnit: 1, StreamRate: 1, UpdateRate: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad params %d accepted", i)
		}
	}
}

func TestSupernodeValidate(t *testing.T) {
	good := Supernode{Capacity: 10, Utilization: 0.5, Cost: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Supernode{
		{Capacity: -1, Utilization: 0.5},
		{Capacity: 1, Utilization: -0.1},
		{Capacity: 1, Utilization: 1.1},
		{Capacity: 1, Utilization: 0.5, Cost: -1},
		{Capacity: 1, Utilization: 0.5, CoverageGain: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad supernode %d accepted", i)
		}
	}
}

// TestContributorProfitEq1 pins Eq. 1: P_s(j) = c_s·c_j·u_j − cost_j.
func TestContributorProfitEq1(t *testing.T) {
	s := Supernode{Capacity: 20, Utilization: 0.8, Cost: 3}
	got := ContributorProfit(0.5, s)
	want := 0.5*20*0.8 - 3 // = 5
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("P_s = %v, want %v", got, want)
	}
}

func TestWillContributeThreshold(t *testing.T) {
	s := Supernode{Capacity: 20, Utilization: 0.8, Cost: 3} // profit 5 at c_s=0.5
	if !WillContribute(0.5, s, 4.9) {
		t.Fatal("profitable contribution rejected")
	}
	if WillContribute(0.5, s, 5.0) {
		t.Fatal("threshold-equal profit accepted (must be strictly greater)")
	}
	// Raising the reward rate c_s turns reluctant contributors around —
	// the incentive mechanism the paper relies on.
	if WillContribute(0.1, s, 0) {
		t.Fatal("lossmaking contribution accepted")
	}
	if !WillContribute(1.0, s, 0) {
		t.Fatal("high reward did not motivate contribution")
	}
}

// TestBandwidthReductionEq2 pins Eq. 2: B_r = n·R − Λ·m.
func TestBandwidthReductionEq2(t *testing.T) {
	p := defaultParams()
	got := p.BandwidthReduction(1000, 200)
	want := 1000*1.0 - 0.1*200 // = 980
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("B_r = %v, want %v", got, want)
	}
}

func TestFewerSupernodesSaveMore(t *testing.T) {
	// Eq. 3's observation: for fixed n, smaller m means higher saving.
	p := defaultParams()
	if p.BandwidthReduction(1000, 100) <= p.BandwidthReduction(1000, 200) {
		t.Fatal("fewer supernodes did not increase bandwidth reduction")
	}
}

// TestProviderSavingEq3 pins Eq. 3 with its Eq. 4-5 constraints.
func TestProviderSavingEq3(t *testing.T) {
	p := defaultParams()
	sns := []Supernode{
		{Capacity: 100, Utilization: 1.0},
		{Capacity: 50, Utilization: 0.8},
	} // B_s = 140
	got, err := p.ProviderSaving(120, sns)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0*(120*1.0-0.1*2) - 0.3*140 // 119.8 - 42 = 77.8
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("C_g = %v, want %v", got, want)
	}
}

func TestProviderSavingEnforcesEq4(t *testing.T) {
	p := defaultParams()
	sns := []Supernode{{Capacity: 10, Utilization: 1.0}}
	if _, err := p.ProviderSaving(100, sns); err == nil {
		t.Fatal("Eq. 4 capacity violation accepted")
	}
}

func TestProviderSavingEnforcesEq5(t *testing.T) {
	p := defaultParams()
	sns := []Supernode{{Capacity: 1000, Utilization: 1.5}}
	if _, err := p.ProviderSaving(100, sns); err == nil {
		t.Fatal("Eq. 5 utilization violation accepted")
	}
}

// TestMarginalGainEq6 pins Eq. 6: G_s = c_c(ν·R − Λ) − c_s·c_j·u_j.
func TestMarginalGainEq6(t *testing.T) {
	p := defaultParams()
	s := Supernode{Capacity: 10, Utilization: 0.9, CoverageGain: 8}
	got := p.MarginalGain(s)
	want := 1.0*(8*1.0-0.1) - 0.3*9 // 7.9 - 2.7 = 5.2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("G_s = %v, want %v", got, want)
	}
	if !p.WorthDeploying(s) {
		t.Fatal("positive-gain supernode not worth deploying")
	}
	s.CoverageGain = 0
	if p.WorthDeploying(s) {
		t.Fatal("zero-coverage supernode deployed")
	}
}

func TestSupportedPlayersEq4(t *testing.T) {
	p := defaultParams()
	sns := []Supernode{{Capacity: 7, Utilization: 0.5}} // 3.5 units / R=1
	if got := p.SupportedPlayers(sns); got != 3 {
		t.Fatalf("supported = %d, want 3", got)
	}
}

func TestPlanDeploymentPicksFewest(t *testing.T) {
	p := defaultParams()
	candidates := []Supernode{
		{Capacity: 2, Utilization: 1},
		{Capacity: 50, Utilization: 1},
		{Capacity: 3, Utilization: 1},
		{Capacity: 40, Utilization: 1},
	}
	plan, err := p.PlanDeployment(80, candidates)
	if err != nil {
		t.Fatal(err)
	}
	// The two big nodes (90 units) cover 80 players; small ones unneeded.
	if len(plan.Chosen) != 2 {
		t.Fatalf("chose %d supernodes, want 2: %v", len(plan.Chosen), plan.Chosen)
	}
	seen := map[int]bool{}
	for _, idx := range plan.Chosen {
		seen[idx] = true
	}
	if !seen[1] || !seen[3] {
		t.Fatalf("wrong supernodes chosen: %v", plan.Chosen)
	}
	if plan.Supported < 80 {
		t.Fatalf("plan supports %d < target 80", plan.Supported)
	}
	if plan.Saving <= 0 {
		t.Fatalf("plan saving %v not positive", plan.Saving)
	}
}

func TestPlanDeploymentInsufficient(t *testing.T) {
	p := defaultParams()
	if _, err := p.PlanDeployment(100, []Supernode{{Capacity: 5, Utilization: 1}}); err == nil {
		t.Fatal("infeasible plan accepted")
	}
}

func TestPlanDeploymentRejectsInvalidCandidate(t *testing.T) {
	p := defaultParams()
	if _, err := p.PlanDeployment(1, []Supernode{{Capacity: 5, Utilization: 2}}); err == nil {
		t.Fatal("invalid candidate accepted")
	}
}

func TestPlanDeploymentSavingBeatsLargerSelections(t *testing.T) {
	// Property: adding an unneeded supernode to a feasible plan never
	// increases the saving (it costs Λ updates and c_s rewards).
	p := defaultParams()
	f := func(caps []uint8) bool {
		candidates := make([]Supernode, 0, len(caps)+2)
		candidates = append(candidates,
			Supernode{Capacity: 100, Utilization: 1},
			Supernode{Capacity: 80, Utilization: 1})
		for _, c := range caps {
			candidates = append(candidates, Supernode{Capacity: float64(c%50) + 1, Utilization: 1})
		}
		plan, err := p.PlanDeployment(90, candidates)
		if err != nil {
			return true // infeasible inputs are out of scope
		}
		all, err := p.ProviderSaving(90, candidates)
		if err != nil {
			return true
		}
		return plan.Saving >= all-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
