// Package econ implements CloudFog's economic model (paper §III-A):
// the supernode contributor's profit (Eq. 1), the cloud bandwidth reduction
// from fog streaming (Eq. 2), the game service provider's saved-cost
// objective with its capacity constraints (Eqs. 3-5), and the marginal gain
// of deploying one more supernode (Eq. 6). It also provides a greedy
// deployment planner derived from the paper's observation that, for a fixed
// coverage n, fewer supernodes mean higher savings.
//
// Bandwidth quantities are in abstract "bandwidth units" (the paper never
// fixes one); use any consistent unit such as Mbit/s.
package econ

import (
	"fmt"
	"sort"
)

// Params holds the market constants of the model.
type Params struct {
	// RewardPerUnit is c_s: the reward paid per bandwidth unit a
	// supernode contributes.
	RewardPerUnit float64
	// RevenuePerUnit is c_c: the provider's value of each server
	// bandwidth unit saved.
	RevenuePerUnit float64
	// StreamRate is R: the game-video streaming rate per player.
	StreamRate float64
	// UpdateRate is Λ: the cloud→supernode update bandwidth per
	// supernode (per player action, aggregated).
	UpdateRate float64
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.RewardPerUnit < 0:
		return fmt.Errorf("econ: negative reward c_s %v", p.RewardPerUnit)
	case p.RevenuePerUnit < 0:
		return fmt.Errorf("econ: negative revenue c_c %v", p.RevenuePerUnit)
	case p.StreamRate <= 0:
		return fmt.Errorf("econ: non-positive stream rate R %v", p.StreamRate)
	case p.UpdateRate < 0:
		return fmt.Errorf("econ: negative update rate Λ %v", p.UpdateRate)
	}
	return nil
}

// Supernode describes one contributed machine for economic purposes.
type Supernode struct {
	// Capacity is c_j: upload capacity in bandwidth units.
	Capacity float64
	// Utilization is u_j in [0,1]: the used fraction of that capacity
	// (Eq. 5's constraint).
	Utilization float64
	// Cost is cost_j: the contributor's running cost, in the same unit
	// as c_s rewards.
	Cost float64
	// CoverageGain is ν: how many new players this supernode's
	// deployment would newly cover (used by Eq. 6).
	CoverageGain int
}

// Validate reports supernode description errors.
func (s Supernode) Validate() error {
	switch {
	case s.Capacity < 0:
		return fmt.Errorf("econ: negative capacity %v", s.Capacity)
	case s.Utilization < 0 || s.Utilization > 1:
		return fmt.Errorf("econ: utilization %v outside [0,1]", s.Utilization)
	case s.Cost < 0:
		return fmt.Errorf("econ: negative cost %v", s.Cost)
	case s.CoverageGain < 0:
		return fmt.Errorf("econ: negative coverage gain %d", s.CoverageGain)
	}
	return nil
}

// Contribution returns c_j × u_j: the bandwidth this supernode contributes.
func (s Supernode) Contribution() float64 { return s.Capacity * s.Utilization }

// ContributorProfit implements Eq. 1: P_s(j) = c_s·c_j·u_j − cost_j.
func ContributorProfit(cs float64, s Supernode) float64 {
	return cs*s.Contribution() - s.Cost
}

// WillContribute reports whether a contributor with the given profit
// threshold is motivated to deploy the supernode (P_s(j) > threshold).
func WillContribute(cs float64, s Supernode, threshold float64) bool {
	return ContributorProfit(cs, s) > threshold
}

// TotalContribution returns B_s = Σ c_j·u_j over the supernodes.
func TotalContribution(sns []Supernode) float64 {
	total := 0.0
	for _, s := range sns {
		total += s.Contribution()
	}
	return total
}

// BandwidthReduction implements Eq. 2: B_r = n·R − Λ·m, the cloud bandwidth
// saved when n players are served by m supernodes instead of the cloud.
func (p Params) BandwidthReduction(n, m int) float64 {
	return float64(n)*p.StreamRate - p.UpdateRate*float64(m)
}

// SupportedPlayers returns the largest n satisfying the capacity constraint
// of Eq. 4: Σ c_j·u_j ≥ n·R.
func (p Params) SupportedPlayers(sns []Supernode) int {
	return int(TotalContribution(sns) / p.StreamRate)
}

// ProviderSaving implements Eq. 3's objective for a given deployment:
// C_g = c_c·B_r − c_s·B_s, where n players are served by the m = len(sns)
// supernodes. It returns an error when the deployment violates the
// constraints of Eqs. 4-5 (insufficient contribution, or utilization out of
// range).
func (p Params) ProviderSaving(n int, sns []Supernode) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	for i, s := range sns {
		if err := s.Validate(); err != nil {
			return 0, fmt.Errorf("supernode %d: %w", i, err)
		}
	}
	bs := TotalContribution(sns)
	if bs < float64(n)*p.StreamRate {
		return 0, fmt.Errorf("econ: contribution %v < required %v for %d players (Eq. 4)",
			bs, float64(n)*p.StreamRate, n)
	}
	br := p.BandwidthReduction(n, len(sns))
	return p.RevenuePerUnit*br - p.RewardPerUnit*bs, nil
}

// MarginalGain implements Eq. 6: G_s(j) = c_c(ν·R − Λ) − c_s·c_j·u_j, the
// provider's net gain from deploying supernode s that newly covers
// s.CoverageGain players.
func (p Params) MarginalGain(s Supernode) float64 {
	return p.RevenuePerUnit*(float64(s.CoverageGain)*p.StreamRate-p.UpdateRate) -
		p.RewardPerUnit*s.Contribution()
}

// WorthDeploying reports whether Eq. 6's gain is positive: the bandwidth
// saved from newly covered players exceeds the supernode's reward cost.
func (p Params) WorthDeploying(s Supernode) bool { return p.MarginalGain(s) > 0 }

// Plan is the result of planning a supernode deployment.
type Plan struct {
	// Chosen indexes the selected supernodes in the candidate slice.
	Chosen []int
	// Supported is the number of players the selection can stream to.
	Supported int
	// Saving is the provider's C_g for serving exactly `target` players
	// with the selection.
	Saving float64
}

// PlanDeployment selects supernodes from candidates to support target
// players while maximizing provider saving. Following Eq. 3's observation
// that fewer supernodes save more (each costs Λ update bandwidth and its
// reward), it greedily takes the highest-contribution candidates until the
// Eq. 4 constraint is met. It returns an error if the candidates cannot
// support the target at all.
func (p Params) PlanDeployment(target int, candidates []Supernode) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	for i, s := range candidates {
		if err := s.Validate(); err != nil {
			return Plan{}, fmt.Errorf("candidate %d: %w", i, err)
		}
	}
	order := make([]int, len(candidates))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return candidates[order[a]].Contribution() > candidates[order[b]].Contribution()
	})
	need := float64(target) * p.StreamRate
	var plan Plan
	acc := 0.0
	for _, idx := range order {
		if acc >= need {
			break
		}
		c := candidates[idx]
		if c.Contribution() <= 0 {
			break // sorted: the rest contribute nothing
		}
		plan.Chosen = append(plan.Chosen, idx)
		acc += c.Contribution()
	}
	if acc < need {
		return Plan{}, fmt.Errorf("econ: candidates support only %d of %d target players",
			int(acc/p.StreamRate), target)
	}
	chosen := make([]Supernode, len(plan.Chosen))
	for i, idx := range plan.Chosen {
		chosen[i] = candidates[idx]
	}
	plan.Supported = p.SupportedPlayers(chosen)
	saving, err := p.ProviderSaving(target, chosen)
	if err != nil {
		return Plan{}, err
	}
	plan.Saving = saving
	return plan, nil
}
