// Package shard partitions the simulated world by geographic region and
// runs one simulation slice per shard between epoch barriers, so a single
// run can use every core while staying bit-identical to the serial path.
//
// The architecture splits the planes:
//
//   - The control plane — the authoritative core.Fog holding every
//     attachment — is mutated ONLY at epoch barriers, serially, applying
//     the epoch's cross-shard messages in one canonical order. The order is
//     a pure function of the message contents (never of the partition), so
//     the fog — and the run's single rng stream it draws from — evolves
//     identically at any shard count, including 1.
//
//   - The data plane — heartbeat monitors and segment-level QoE node
//     simulations — is owned by shards. Each shard has its own sim.Engine
//     (absolute virtual time, shared origin), its own sim.Rand stream split
//     deterministically from the run seed, and runs concurrently with the
//     other shards between barriers. Shard-local results merge as integer
//     tallies (order-free) or as messages (canonically ordered), never as
//     floats in arrival order.
//
// Ownership is fixed at t=0 from the cloud's estimated supernode positions
// and never moves, so a node's heartbeat chain stays on one engine for the
// whole run and its detector state is a pure function of the fault
// schedule, not of the partition.
package shard

import (
	"math"
	"sort"
	"time"

	"cloudfog/internal/spatial"
	"cloudfog/internal/world"
)

// Clock is the control plane's virtual clock: the fog's latency and health
// apparatus read Now, and the runner advances it at barriers (to each
// message's timestamp while applying, then to the epoch end). It stands in
// for the serial path's engine.Now.
type Clock struct {
	now time.Duration
}

// Now returns the control-plane virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// advance moves the clock forward; it never goes backward.
func (c *Clock) advance(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// Plan is a geographic partition of the world into shard-owned regions: a
// kd-tree over avatar positions (balanced load), with every cut snapped to
// the spatial index's grid-cell geometry so no shortlist cell straddles two
// shards, and leaves assigned to shards balancing total avatar load.
type Plan struct {
	regions []world.Region
	assign  []int // region index -> shard
	shards  int
}

// NewPlan partitions a width×height world carrying the given avatar
// positions into (at least) `shards` kd regions and assigns them to shards.
// Cuts snap to the uniform-grid cell geometry the spatial index would use
// for n = len(pts) points.
func NewPlan(width, height float64, pts []world.Vec2, shards int) *Plan {
	if shards < 1 {
		shards = 1
	}
	depth := 0
	for 1<<depth < shards {
		depth++
	}
	cellW, cellH := spatial.CellGeometry(width, height, len(pts))
	bounds := world.Rect{Min: world.Vec2{X: 0, Y: 0}, Max: world.Vec2{X: width, Y: height}}
	regions := world.PartitionKDSnap(bounds, pts, depth, cellW, cellH)
	return &Plan{
		regions: regions,
		assign:  world.AssignRegions(regions, shards),
		shards:  shards,
	}
}

// Shards returns the shard count the plan was built for.
func (p *Plan) Shards() int { return p.shards }

// Regions returns the kd-tree leaves (shared storage; do not mutate).
func (p *Plan) Regions() []world.Region { return p.regions }

// RegionOwner returns the shard owning region index i.
func (p *Plan) RegionOwner(i int) int { return p.assign[i] }

// Owner returns the shard owning position (x, y). Regions tile the bounds
// half-open (max-exclusive), so points on the outer max edges fall back to
// a closed-bounds scan; points outside the bounds entirely are clamped.
// The answer is a pure function of the position and the plan.
func (p *Plan) Owner(x, y float64) int {
	pt := world.Vec2{X: x, Y: y}
	for i, r := range p.regions {
		if r.Bounds.Contains(pt) {
			return p.assign[i]
		}
	}
	for i, r := range p.regions {
		if pt.X >= r.Bounds.Min.X && pt.X <= r.Bounds.Max.X &&
			pt.Y >= r.Bounds.Min.Y && pt.Y <= r.Bounds.Max.Y {
			return p.assign[i]
		}
	}
	// Outside the bounds: clamp and retry closed.
	best, bestD := 0, math.Inf(1)
	for i, r := range p.regions {
		cx := clampF(pt.X, r.Bounds.Min.X, r.Bounds.Max.X)
		cy := clampF(pt.Y, r.Bounds.Min.Y, r.Bounds.Max.Y)
		d := (cx-pt.X)*(cx-pt.X) + (cy-pt.Y)*(cy-pt.Y)
		if d < bestD {
			best, bestD = i, d
		}
	}
	return p.assign[best]
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MsgKind orders the cross-shard message kinds inside one timestamp: a kill
// precedes a recovery precedes a detection, matching the serial injector's
// causality (a node cannot be detected down before it is down).
type MsgKind uint8

const (
	// MsgKill fails a supernode on the control plane.
	MsgKill MsgKind = iota
	// MsgRecover re-registers a fresh instance of a recovered supernode.
	MsgRecover
	// MsgDetect reports a failure detection: the node's stashed orphans
	// fail over now.
	MsgDetect
)

// Msg is one cross-shard event, exchanged at epoch barriers and applied to
// the control plane in canonical order. (Epoch, At, Kind, Node) is a unique
// key — the fault schedule never emits two identical ops for one node at
// one instant, and a node detects at most once per down-transition — so
// the canonical order is partition-invariant; (Shard, Seq) is only the
// total-order fallback and never actually decides.
type Msg struct {
	Epoch int
	At    time.Duration
	Kind  MsgKind
	Node  int64
	Shard int
	Seq   int64
	// D carries the kill's detection window (oracle mode draws the
	// synthetic detection delay from it).
	D time.Duration
}

// sortMsgs orders messages canonically: (Epoch, At, Kind, Node, Shard, Seq)
// — "(epoch, shard, seq) order, time-keyed within the epoch".
func sortMsgs(ms []Msg) {
	sort.Slice(ms, func(a, b int) bool {
		x, y := ms[a], ms[b]
		switch {
		case x.Epoch != y.Epoch:
			return x.Epoch < y.Epoch
		case x.At != y.At:
			return x.At < y.At
		case x.Kind != y.Kind:
			return x.Kind < y.Kind
		case x.Node != y.Node:
			return x.Node < y.Node
		case x.Shard != y.Shard:
			return x.Shard < y.Shard
		}
		return x.Seq < y.Seq
	})
}

// hash64 is one splitmix64 round — the runner's pure per-entity hash for
// oracle detection delays.
func hash64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
