package shard

import (
	"math/rand"
	"testing"
	"time"

	"cloudfog/internal/world"
)

func testPoints(n int, seed int64) []world.Vec2 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]world.Vec2, n)
	for i := range pts {
		pts[i] = world.Vec2{X: rng.Float64() * 4500, Y: rng.Float64() * 2900}
	}
	return pts
}

// TestPlanOwnerTotal: every position — interior, outer max edges, and
// out-of-bounds — resolves to a valid shard, and repeated lookups agree.
func TestPlanOwnerTotal(t *testing.T) {
	pts := testPoints(500, 1)
	for _, shards := range []int{1, 2, 4, 8} {
		p := NewPlan(4500, 2900, pts, shards)
		if p.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", p.Shards(), shards)
		}
		probe := append(testPoints(200, 2),
			world.Vec2{X: 4500, Y: 2900}, // outer max corner (half-open miss)
			world.Vec2{X: 0, Y: 0},
			world.Vec2{X: -50, Y: 1000},  // out of bounds
			world.Vec2{X: 5000, Y: 3000}, // out of bounds
		)
		for _, pt := range probe {
			o := p.Owner(pt.X, pt.Y)
			if o < 0 || o >= shards {
				t.Fatalf("shards=%d: Owner(%v) = %d out of range", shards, pt, o)
			}
			if o2 := p.Owner(pt.X, pt.Y); o2 != o {
				t.Fatalf("Owner not stable: %d then %d", o, o2)
			}
		}
		// At shards > 1 the partition must actually split the load.
		if shards > 1 {
			seen := map[int]bool{}
			for _, pt := range pts {
				seen[p.Owner(pt.X, pt.Y)] = true
			}
			if len(seen) < 2 {
				t.Fatalf("shards=%d: all %d points landed on one shard", shards, len(pts))
			}
		}
	}
}

// TestSortMsgsCanonical: the merge order is (Epoch, At, Kind, Node, Shard,
// Seq) regardless of arrival order — the partition-invariance keystone.
func TestSortMsgsCanonical(t *testing.T) {
	ms := []Msg{
		{Epoch: 1, At: time.Second, Kind: MsgDetect, Node: 5, Shard: 0, Seq: 3},
		{Epoch: 0, At: 2 * time.Second, Kind: MsgKill, Node: 9, Shard: 2, Seq: 0},
		{Epoch: 0, At: 2 * time.Second, Kind: MsgKill, Node: 4, Shard: 1, Seq: 7},
		{Epoch: 0, At: time.Second, Kind: MsgRecover, Node: 4, Shard: 3, Seq: 1},
		{Epoch: 0, At: time.Second, Kind: MsgKill, Node: 4, Shard: 0, Seq: 2},
	}
	sortMsgs(ms)
	want := []struct {
		epoch int
		node  int64
		kind  MsgKind
	}{
		{0, 4, MsgKill}, {0, 4, MsgRecover}, {0, 4, MsgKill}, {0, 9, MsgKill}, {1, 5, MsgDetect},
	}
	for i, w := range want {
		if ms[i].Epoch != w.epoch || ms[i].Node != w.node || ms[i].Kind != w.kind {
			t.Fatalf("position %d: got %+v, want epoch=%d node=%d kind=%d", i, ms[i], w.epoch, w.node, w.kind)
		}
	}
}

// TestClockMonotonic: the barrier clock never moves backward, even when
// messages arrive time-keyed before the current epoch end.
func TestClockMonotonic(t *testing.T) {
	c := &Clock{}
	c.advance(5 * time.Second)
	c.advance(3 * time.Second)
	if c.Now() != 5*time.Second {
		t.Fatalf("clock went backward: %v", c.Now())
	}
	c.advance(7 * time.Second)
	if c.Now() != 7*time.Second {
		t.Fatalf("clock stuck: %v", c.Now())
	}
}

// TestHash64Deterministic: the oracle-delay hash is a pure function and
// spreads inputs (no two small inputs collide in a modest probe).
func TestHash64Deterministic(t *testing.T) {
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 10_000; i++ {
		h := hash64(i)
		if h != hash64(i) {
			t.Fatal("hash64 not deterministic")
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash64 collision: %d and %d", prev, i)
		}
		seen[h] = i
	}
}
