package shard

import (
	"sort"
	"sync"
	"time"

	"cloudfog/internal/core"
	"cloudfog/internal/fault"
	"cloudfog/internal/health"
	"cloudfog/internal/qoe"
	"cloudfog/internal/sim"
	"cloudfog/internal/world"
)

// Config parameterizes a sharded run.
type Config struct {
	// Shards is the partition width; 1 runs the identical code path with a
	// single shard (the bit-identity anchor).
	Shards int
	// Seed is the run seed; every shard, epoch, and node stream is split
	// from it with sim.SplitSeed.
	Seed int64
	// Horizon is the total virtual time; Epoch the barrier interval.
	Horizon time.Duration
	Epoch   time.Duration
	// Width, Height bound the world plane the partition covers.
	Width, Height float64
	// Detector selects failure detection: ModeOracle synthesizes detection
	// delays from a pure hash; other modes run a per-shard heartbeat
	// monitor on the shard's own engine.
	Detector       health.Mode
	DetectorConfig health.DetectorConfig
	// Overload runs the control plane's RelieveOverloaded ladder step at
	// every barrier (after message application).
	Overload bool
	// QoE configures the per-node segment simulations. Warmup is
	// per-epoch: each epoch is simulated as a fresh session. Seed and
	// Impair are overridden per (epoch, node).
	QoE qoe.Options
	// QoENodeBudget caps how many supernodes run the segment-level QoE
	// simulation per epoch (0 = no cap). Node selection is a pure hash of
	// (seed, epoch, node) — partition-invariant — so capped runs stay
	// bit-identical across shard counts while bounding the data-plane
	// cost at the million-player scale.
	QoENodeBudget int
}

// Sample is one barrier's flow-level census over all players.
type Sample struct {
	T         time.Duration
	Served    int
	FogServed int
	Unserved  int
	Within    int
}

// Result aggregates a sharded run. Every field is partition-invariant
// except the two CrossShard counts, which describe the partition itself
// (how much traffic crossed a boundary) and are reported for the scaling
// analysis only — they never feed figure bytes.
type Result struct {
	Players        int
	Shards         int
	Epochs         int
	Samples        []Sample
	MeanContinuity float64 // over fog players the sampled node sims covered
	QoEPlayers     int     // players with segment-level tallies
	QoENodeRuns    int     // node-epoch simulations executed
	Kills          int64
	Recoveries     int64
	Detections     int64
	Repairs        int64
	Lapsed         int64
	CloudHops      int64 // failovers that left the fog for cloud or edge
	Moved          int64 // overload-relief migrations
	PendingEnd     int64 // orphans still awaiting detection at the horizon
	DetectLatency  time.Duration
	// CrossShardRepairs counts failovers whose backup landed on a shard
	// other than the failed node's; CrossShardMigrations counts relief
	// migrations crossing a boundary. Both depend on the plan.
	CrossShardRepairs    int64
	CrossShardMigrations int64
	// ShardSeeds and ShardDraws are the flight recorder's RNG witness: the
	// split seed each shard's data plane derives its streams from and the
	// draws it consumed (QoE pool runs plus the shard stream). Like the
	// CrossShard counts they describe the partition, not the figures.
	ShardSeeds []int64
	ShardDraws []uint64
	// FogDraws is the control-plane geolocation stream's draw count at the
	// end of the run — partition-invariant, because the fog evolves only at
	// barriers in canonical message order.
	FogDraws uint64
}

// MeanDetectionLatency returns the mean kill-to-detection latency.
func (r *Result) MeanDetectionLatency() time.Duration {
	if r.Detections == 0 {
		return 0
	}
	return r.DetectLatency / time.Duration(r.Detections)
}

// shardState is one shard's private slice of the data plane.
type shardState struct {
	id     int
	engine *sim.Engine
	rng    *sim.Rand
	mon    *health.Monitor
	pool   *qoe.Pool
	outbox []Msg
	seq    int64
	epoch  int
	err    error
}

// Runner executes a sharded run: the control-plane fog advances only at
// epoch barriers, the shards run their monitors and node simulations in
// parallel in between.
type Runner struct {
	cfg     Config
	fog     *core.Fog
	players []*core.Player
	sched   *fault.Schedule
	respawn func(id int64) *core.Supernode
	clk     *Clock

	plan    *Plan
	ownerOf map[int64]int
	shards  []*shardState

	playerIdx map[int64]int
	onTime    []int64 // per-player packet tallies, index-aligned with players
	total     []int64

	nextEvent int // cursor into sched.Events
	downPred  map[int64]bool
	downSince map[int64]time.Duration
	pending   map[int64][]pendingOrphan
	future    []Msg // oracle detects beyond the current epoch

	res Result
}

type pendingOrphan struct {
	p      *core.Player
	killAt time.Duration
}

// NewRunner plans the partition and builds the per-shard machinery. The fog
// must have been built with the Clock's Now as its time source and have the
// players already joined; sched may be nil (fault-free). respawn mints
// fresh supernode instances for recoveries.
func NewRunner(cfg Config, fog *core.Fog, players []*core.Player, sched *fault.Schedule, respawn func(id int64) *core.Supernode, clk *Clock) *Runner {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = cfg.Horizon
	}
	pts := make([]world.Vec2, len(players))
	for i, p := range players {
		pts[i] = world.Vec2{X: p.Pos.X, Y: p.Pos.Y}
	}
	r := &Runner{
		cfg:       cfg,
		fog:       fog,
		players:   players,
		sched:     sched,
		respawn:   respawn,
		clk:       clk,
		plan:      NewPlan(cfg.Width, cfg.Height, pts, cfg.Shards),
		ownerOf:   make(map[int64]int),
		playerIdx: make(map[int64]int, len(players)),
		onTime:    make([]int64, len(players)),
		total:     make([]int64, len(players)),
		downPred:  make(map[int64]bool),
		downSince: make(map[int64]time.Duration),
		pending:   make(map[int64][]pendingOrphan),
	}
	for i, p := range players {
		r.playerIdx[p.ID] = i
	}
	// Ownership freezes at t=0 from the cloud's estimated positions, so a
	// node's heartbeat chain never migrates between engines (its detector
	// state stays a pure function of the schedule).
	for _, sn := range fog.Supernodes() {
		x, y, ok := fog.EstimatedPos(sn.ID)
		if !ok {
			x, y = sn.Pos.X, sn.Pos.Y
		}
		r.ownerOf[sn.ID] = r.plan.Owner(x, y)
	}
	r.shards = make([]*shardState, cfg.Shards)
	monitored := cfg.Detector != health.ModeOracle
	var loss func(time.Duration) float64
	if sched != nil {
		loss = sched.LossFrac
	}
	for i := range r.shards {
		s := &shardState{
			id:     i,
			engine: sim.New(),
			rng:    sim.NewRand(sim.SplitSeed(cfg.Seed, int64(i))),
			pool:   qoe.NewPool(),
		}
		if monitored {
			dc := cfg.DetectorConfig
			dc.Mode = cfg.Detector
			s.mon = health.NewMonitor(s.engine, dc, loss, nil)
			s.mon.OnDetect(func(id int64, now time.Duration) {
				s.outbox = append(s.outbox, Msg{
					Epoch: s.epoch, At: now, Kind: MsgDetect,
					Node: id, Shard: s.id, Seq: s.seq,
				})
				s.seq++
			})
		}
		r.shards[i] = s
	}
	if monitored {
		// Track in ascending node-ID order so heartbeat chain seq order is
		// the canonical order on every shard.
		for _, sn := range fog.Supernodes() {
			r.shards[r.ownerOf[sn.ID]].mon.Track(sn.ID)
		}
		for _, s := range r.shards {
			s.mon.Start()
		}
	}
	return r
}

// OwnerOf returns the shard owning a supernode (test hook).
func (r *Runner) OwnerOf(id int64) int { return r.ownerOf[id] }

// Plan returns the partition plan (test hook).
func (r *Runner) Plan() *Plan { return r.plan }

// nodeTask is one supernode's segment-simulation slice of an epoch.
type nodeTask struct {
	node   int64
	uplink int64
	owner  int
	dur    time.Duration
	specs  []qoe.PlayerSpec
	idx    []int // player indices aligned with specs
}

// Run executes the full horizon and returns the aggregated result.
func (r *Runner) Run() (Result, error) {
	epochs := 0
	for t := time.Duration(0); t < r.cfg.Horizon; t += r.cfg.Epoch {
		epochs++
	}
	r.res.Players = len(r.players)
	r.res.Shards = r.cfg.Shards
	r.res.Epochs = epochs

	for e := 0; e < epochs; e++ {
		t0 := time.Duration(e) * r.cfg.Epoch
		t1 := t0 + r.cfg.Epoch
		if t1 > r.cfg.Horizon {
			t1 = r.cfg.Horizon
		}
		killsAt, msgs := r.prologue(e, t0, t1)
		tasks := r.buildTasks(killsAt, t0, t1)
		if err := r.runShards(e, t0, t1, tasks); err != nil {
			return r.res, err
		}
		r.barrier(e, t1, msgs)
	}
	for _, pend := range r.pending {
		r.res.PendingEnd += int64(len(pend))
	}
	r.summarizeContinuity()
	r.res.ShardSeeds = make([]int64, len(r.shards))
	r.res.ShardDraws = make([]uint64, len(r.shards))
	for i, s := range r.shards {
		r.res.ShardSeeds[i] = sim.SplitSeed(r.cfg.Seed, int64(i))
		r.res.ShardDraws[i] = s.pool.Draws() + s.rng.Draws()
	}
	r.res.FogDraws = r.fog.RandDraws()
	return r.res, nil
}

// prologue routes the epoch's fault events: kills and recoveries are
// predicted against the down map (the same accept/skip sequence the barrier
// will apply, so prediction equals truth), monitor shards get the kill and
// recovery signals scheduled at their exact times, and oracle mode
// synthesizes each kill's detection message from a pure hash. Wire ops
// (loss, latency, bandwidth windows) need no routing: they act through the
// schedule's pure impairment lookups.
func (r *Runner) prologue(epoch int, t0, t1 time.Duration) (killsAt map[int64]time.Duration, msgs []Msg) {
	killsAt = make(map[int64]time.Duration)
	if r.sched == nil {
		return killsAt, nil
	}
	monitored := r.cfg.Detector != health.ModeOracle
	for ; r.nextEvent < len(r.sched.Events); r.nextEvent++ {
		ev := r.sched.Events[r.nextEvent]
		if ev.At > t1 {
			break
		}
		switch ev.Op {
		case fault.OpKill:
			if r.downPred[ev.Node] {
				continue // kill of an already-down node is skipped
			}
			r.downPred[ev.Node] = true
			killsAt[ev.Node] = ev.At
			msgs = append(msgs, Msg{Epoch: epoch, At: ev.At, Kind: MsgKill, Node: ev.Node, Shard: -1, D: ev.D})
			if monitored {
				s := r.shards[r.ownerOf[ev.Node]]
				node, at := ev.Node, ev.At
				s.engine.ScheduleAt(at, func() { s.mon.Kill(node) })
			} else if ev.D > 0 {
				// Oracle: detection at killAt + hash-drawn delay in (0, D].
				h := hash64(uint64(r.cfg.Seed) ^ hash64(uint64(ev.Node)) ^ uint64(ev.At))
				delay := time.Duration(h%uint64(ev.D)) + 1
				r.future = append(r.future, Msg{At: ev.At + delay, Kind: MsgDetect, Node: ev.Node, Shard: -1})
			}
		case fault.OpRecover:
			if !r.downPred[ev.Node] {
				continue
			}
			r.downPred[ev.Node] = false
			msgs = append(msgs, Msg{Epoch: epoch, At: ev.At, Kind: MsgRecover, Node: ev.Node, Shard: -1})
			if monitored {
				s := r.shards[r.ownerOf[ev.Node]]
				node, at := ev.Node, ev.At
				s.engine.ScheduleAt(at, func() { s.mon.Recover(node) })
			}
		}
	}
	// Oracle detections falling due this epoch join the barrier batch.
	keep := r.future[:0]
	for _, m := range r.future {
		if m.At <= t1 {
			m.Epoch = epoch
			msgs = append(msgs, m)
		} else {
			keep = append(keep, m)
		}
	}
	r.future = keep
	return killsAt, msgs
}

// buildTasks groups the fog-served players by serving supernode (canonical
// player order) and selects which nodes run the segment simulation this
// epoch. A node killed mid-epoch serves until its kill time. Cloud- and
// edge-served players are tracked flow-level only.
func (r *Runner) buildTasks(killsAt map[int64]time.Duration, t0, t1 time.Duration) []nodeTask {
	var capOf func(snID int64, startLevel int) int
	if r.cfg.Overload && r.fog.Overload() != nil {
		capOf = r.fog.SupernodeLevelCap
	}
	byNode := make(map[int64]*nodeTask)
	order := make([]int64, 0, 64)
	for i, p := range r.players {
		a := p.Attached
		if a.Kind != core.AttachSupernode {
			continue
		}
		t := byNode[a.SN.ID]
		if t == nil {
			dur := t1 - t0
			if killAt, dead := killsAt[a.SN.ID]; dead {
				dur = killAt - t0
			}
			t = &nodeTask{node: a.SN.ID, uplink: a.SN.Uplink, owner: r.ownerOf[a.SN.ID], dur: dur}
			byNode[a.SN.ID] = t
			order = append(order, a.SN.ID)
		}
		levelCap := 0
		if capOf != nil {
			levelCap = capOf(a.SN.ID, p.Game.StartLevel)
		}
		t.specs = append(t.specs, qoe.PlayerSpec{
			ID:           p.ID,
			Game:         p.Game,
			Latency:      a.StreamLatency,
			InboundDelay: a.UpdateLatency,
			LevelCap:     levelCap,
		})
		t.idx = append(t.idx, i)
	}
	tasks := make([]nodeTask, 0, len(order))
	for _, id := range order {
		t := byNode[id]
		if t.dur > 0 {
			tasks = append(tasks, *t)
		}
	}
	if b := r.cfg.QoENodeBudget; b > 0 && len(tasks) > b {
		// Partition-invariant sample: rank nodes by a pure hash of
		// (seed, epoch, node) and keep the b smallest.
		epoch := int64(t0 / r.cfg.Epoch)
		rank := func(id int64) uint64 {
			return hash64(uint64(sim.SplitSeed(r.cfg.Seed, epoch)) ^ hash64(uint64(id)))
		}
		sortTasksByRank(tasks, rank)
		tasks = tasks[:b]
	}
	return tasks
}

// runShards executes one epoch's data plane: every shard runs its node
// simulations (and, in monitor mode, its heartbeat engine) concurrently.
// Packet tallies land in per-player slots — disjoint across shards because
// a player is served by exactly one node and a node is owned by exactly one
// shard — so the merge is race-free integer addition.
func (r *Runner) runShards(epoch int, t0, t1 time.Duration, tasks []nodeTask) error {
	var wg sync.WaitGroup
	for _, s := range r.shards {
		s.epoch = epoch
		wg.Add(1)
		go func(s *shardState) {
			defer wg.Done()
			opts := r.cfg.QoE
			if r.sched != nil {
				opts.Impair = &offsetImpair{base: r.sched, off: t0}
			}
			for _, t := range tasks {
				if t.owner != s.id {
					continue
				}
				opts.Seed = sim.SplitSeed(sim.SplitSeed(r.cfg.Seed, int64(epoch)), t.node)
				results, err := s.pool.RunNode(opts, t.uplink, t.specs, t.dur)
				if err != nil {
					s.err = err
					return
				}
				for j, pr := range results {
					i := t.idx[j]
					r.onTime[i] += pr.PacketsOnTime
					r.total[i] += pr.PacketsTotal
				}
			}
			if s.mon != nil {
				s.engine.RunUntil(t1)
			}
		}(s)
	}
	wg.Wait()
	for _, s := range r.shards {
		if s.err != nil {
			return s.err
		}
	}
	r.res.QoENodeRuns += len(tasks)
	return nil
}

// barrier applies the epoch's cross-shard messages to the control plane in
// canonical order, runs the overload-relief step, advances the clock, and
// takes the flow-level census. Everything here is serial and ordered by
// message content alone, so the fog (and its rng stream) evolves
// identically at any shard count.
func (r *Runner) barrier(epoch int, t1 time.Duration, msgs []Msg) {
	for _, s := range r.shards {
		msgs = append(msgs, s.outbox...)
		s.outbox = s.outbox[:0]
	}
	sortMsgs(msgs)
	for _, m := range msgs {
		r.clk.advance(m.At)
		switch m.Kind {
		case MsgKill:
			if _, up := r.fog.Supernode(m.Node); !up {
				continue
			}
			orphans := r.fog.FailSupernode(m.Node)
			r.res.Kills++
			if _, down := r.downSince[m.Node]; !down {
				r.downSince[m.Node] = m.At
			}
			for _, p := range orphans {
				r.pending[m.Node] = append(r.pending[m.Node], pendingOrphan{p: p, killAt: m.At})
			}
		case MsgRecover:
			if _, ok := r.downSince[m.Node]; !ok {
				continue
			}
			delete(r.downSince, m.Node)
			if r.respawn == nil {
				continue
			}
			sn := r.respawn(m.Node)
			if sn == nil {
				continue
			}
			if err := r.fog.RegisterSupernode(sn); err != nil {
				continue
			}
			r.res.Recoveries++
		case MsgDetect:
			r.res.Detections++
			if downAt, ok := r.downSince[m.Node]; ok {
				r.res.DetectLatency += m.At - downAt
			}
			pend := r.pending[m.Node]
			if len(pend) == 0 {
				continue
			}
			delete(r.pending, m.Node)
			from := r.ownerOf[m.Node]
			for _, po := range pend {
				if !r.fog.Failover(po.p) {
					r.res.Lapsed++
					continue
				}
				r.res.Repairs++
				switch po.p.Attached.Kind {
				case core.AttachSupernode:
					if r.ownerOf[po.p.Attached.SN.ID] != from {
						r.res.CrossShardRepairs++
					}
				case core.AttachCloud, core.AttachEdge:
					r.res.CloudHops++
				}
			}
		}
	}
	r.clk.advance(t1)
	if r.cfg.Overload && r.fog.Overload() != nil {
		before := make(map[int64]int64)
		for _, p := range r.players {
			if p.Attached.Kind == core.AttachSupernode {
				before[p.ID] = p.Attached.SN.ID
			}
		}
		moved := r.fog.RelieveOverloaded()
		r.res.Moved += int64(moved)
		if moved > 0 {
			for _, p := range r.players {
				if p.Attached.Kind != core.AttachSupernode {
					continue
				}
				old, had := before[p.ID]
				if had && old != p.Attached.SN.ID &&
					r.ownerOf[old] != r.ownerOf[p.Attached.SN.ID] {
					r.res.CrossShardMigrations++
				}
			}
		}
	}
	served, fogN, uns, within := 0, 0, 0, 0
	for _, p := range r.players {
		if !p.Attached.Served() {
			uns++
			continue
		}
		served++
		if p.Attached.Kind == core.AttachSupernode {
			fogN++
		}
		if r.fog.NetworkLatency(p) <= p.Game.NetworkBudget() {
			within++
		}
	}
	r.res.Samples = append(r.res.Samples, Sample{T: t1, Served: served, FogServed: fogN, Unserved: uns, Within: within})
}

// summarizeContinuity folds the per-player integer tallies into the mean
// continuity, in canonical player order.
func (r *Runner) summarizeContinuity() {
	var sum float64
	n := 0
	for i := range r.players {
		if r.total[i] == 0 {
			continue
		}
		sum += float64(r.onTime[i]) / float64(r.total[i])
		n++
	}
	r.res.QoEPlayers = n
	if n > 0 {
		r.res.MeanContinuity = sum / float64(n)
	}
}

// offsetImpair shifts an impairment's time origin: node simulations run an
// epoch in relative time [0, dt), while the schedule's windows live in
// absolute run time.
type offsetImpair struct {
	base qoe.Impairment
	off  time.Duration
}

func (o *offsetImpair) ExtraLatency(now time.Duration) time.Duration {
	return o.base.ExtraLatency(o.off + now)
}
func (o *offsetImpair) LossFrac(now time.Duration) float64 {
	return o.base.LossFrac(o.off + now)
}
func (o *offsetImpair) BandwidthScale(now time.Duration) float64 {
	return o.base.BandwidthScale(o.off + now)
}

// sortTasksByRank orders tasks by (hash rank, node id) ascending — a strict
// total order, so the budgeted sample is deterministic.
func sortTasksByRank(tasks []nodeTask, rank func(int64) uint64) {
	sort.Slice(tasks, func(a, b int) bool {
		ra, rb := rank(tasks[a].node), rank(tasks[b].node)
		if ra != rb {
			return ra < rb
		}
		return tasks[a].node < tasks[b].node
	})
}
