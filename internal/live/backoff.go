package live

import (
	"context"
	"fmt"
	"net"
	"time"
)

// Dial retry tuning: exponential from dialBackoffBase, capped at
// dialBackoffMax, with deterministic jitter in [0, backoff/2] so a herd of
// clients with distinct IDs fans out instead of thundering.
const (
	dialBackoffBase = 50 * time.Millisecond
	dialBackoffMax  = 2 * time.Second
	// dialDeadline bounds a whole dial-with-retries sequence when the
	// caller has no tighter context.
	dialDeadline = 10 * time.Second
)

// dialBackoff dials addr with capped exponential backoff until the context
// expires. The jitter sequence is a pure function of (id, addr, attempt), so
// a retrying fleet is reproducible and spread out at the same time. A context
// canceled mid-sleep aborts immediately, and the single reused timer never
// leaks the way a per-attempt time.After channel would.
func dialBackoff(ctx context.Context, addr string, id int64) (net.Conn, error) {
	var d net.Dialer
	h := uint64(id)*2654435761 + 0x9e3779b97f4a7c15
	for i := 0; i < len(addr); i++ {
		h = h*1099511628211 + uint64(addr[i])
	}
	backoff := dialBackoffBase
	var lastErr error
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("live: dial %s: %w (last attempt: %v)", addr, err, lastErr)
		}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		h = h*6364136223846793005 + 1442695040888963407
		jitter := time.Duration(h % uint64(backoff/2+1))
		timer.Reset(backoff + jitter)
		select {
		case <-ctx.Done():
			if !timer.Stop() {
				<-timer.C
			}
			return nil, fmt.Errorf("live: dial %s: %w (last attempt: %v)", addr, ctx.Err(), lastErr)
		case <-timer.C:
		}
		backoff *= 2
		if backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
	}
}
