package live

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"cloudfog/internal/obs"
	"cloudfog/internal/proto"
	"cloudfog/internal/world"
)

// tcpTestPair returns both ends of a loopback TCP connection.
func tcpTestPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ch := make(chan net.Conn, 1)
	go func() {
		c, aerr := ln.Accept()
		if aerr != nil {
			close(ch)
			return
		}
		ch <- c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server, ok := <-ch
	if !ok {
		client.Close()
		t.Fatal("accept failed")
	}
	return client, server
}

// TestLinkBatchesUnderSaturation blasts frames through a coalescing Link
// faster than the flush deadline and checks that (a) every frame arrives in
// order and byte-intact and (b) the batching counters prove writev batches
// actually formed.
func TestLinkBatchesUnderSaturation(t *testing.T) {
	c1, c2 := tcpTestPair(t)
	defer c2.Close()
	reg := obs.NewRegistry()
	stats := obs.LinkStatsIn(reg, "test")
	link := NewLinkOpts(c1, LinkOptions{Stats: stats})
	defer link.Close()

	const n = 2000
	done := make(chan error, 1)
	go func() {
		br := bufio.NewReaderSize(c2, 1<<16)
		var buf []byte
		var seg proto.Segment
		for i := 0; i < n; i++ {
			typ, payload, err := proto.ReadFrameReuse(br, &buf)
			if err != nil {
				done <- err
				return
			}
			if typ != proto.TSegment {
				done <- fmt.Errorf("frame %d: wrong type %d", i, typ)
				return
			}
			if err := proto.UnmarshalSegmentInto(payload, &seg); err != nil {
				done <- err
				return
			}
			if seg.Seq != int64(i) {
				t.Errorf("frame %d arrived with seq %d: ordering broken", i, seg.Seq)
				done <- nil
				return
			}
		}
		done <- nil
	}()

	payload := make([]byte, 64)
	for i := 0; i < n; i++ {
		frame := link.AcquireFrame(proto.TSegment)
		frame = proto.AppendSegmentHeader(frame, proto.Segment{Player: 1, Seq: int64(i)}, len(payload))
		frame = append(frame, payload...)
		if !link.SendFrameWait(frame) {
			t.Fatalf("link died at frame %d: %v", i, link.Err())
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if batched := stats.BatchedFrames.Load(); batched == 0 {
		t.Fatal("no frames were coalesced under saturation")
	}
	if stats.BatchWrites.Load() == 0 {
		t.Fatal("no batch writes recorded")
	}
	if got := stats.SentFrames.Load(); got != n {
		t.Fatalf("sent %d frames, want %d", got, n)
	}
}

// TestLinkPerFrameModeDisablesBatching pins the baseline mode: a negative
// FlushDeadline must write one frame per syscall and never batch.
func TestLinkPerFrameModeDisablesBatching(t *testing.T) {
	c1, c2 := tcpTestPair(t)
	defer c2.Close()
	reg := obs.NewRegistry()
	stats := obs.LinkStatsIn(reg, "test")
	link := NewLinkOpts(c1, LinkOptions{Stats: stats, FlushDeadline: -1})
	defer link.Close()

	const n = 200
	done := make(chan error, 1)
	go func() {
		var buf []byte
		br := bufio.NewReader(c2)
		for i := 0; i < n; i++ {
			if _, _, err := proto.ReadFrameReuse(br, &buf); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		if !link.Send(proto.TAck, proto.MarshalAck(proto.Ack{Code: uint32(i)})) {
			t.Fatalf("send %d failed: %v", i, link.Err())
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if b := stats.BatchedFrames.Load(); b != 0 {
		t.Fatalf("per-frame mode batched %d frames", b)
	}
}

// TestLinkConcurrentSendImpairClose is the race detector's playground:
// several senders, an impairing goroutine, and a closer all hammer one Link
// concurrently. The only requirement is no race, no panic, no hang.
func TestLinkConcurrentSendImpairClose(t *testing.T) {
	c1, c2 := tcpTestPair(t)
	defer c2.Close()
	reg := obs.NewRegistry()
	link := NewLinkOpts(c1, LinkOptions{Stats: obs.LinkStatsIn(reg, "race")})

	// Drain everything until the conn dies.
	go func() {
		br := bufio.NewReader(c2)
		var buf []byte
		for {
			if _, _, err := proto.ReadFrameReuse(br, &buf); err != nil {
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				frame := link.AcquireFrame(proto.TSegment)
				frame = proto.AppendSegment(frame, proto.Segment{Player: int64(s), Seq: int64(i)})
				if !link.SendFrame(frame) && link.Err() != nil {
					return
				}
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			link.Impair(time.Duration(i%2)*time.Millisecond, float64(i%3)*0.2)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		link.Close()
	}()
	wg.Wait()
	link.Close() // double Close must be safe
	if link.Send(proto.TAck, nil) {
		t.Fatal("send after close succeeded")
	}
}

// udpTestPair returns two DatagramLinks over a connected loopback UDP
// socket pair.
func udpTestPair(t *testing.T, opts LinkOptions) (*DatagramLink, *DatagramLink) {
	t.Helper()
	ua, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	ub, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		ua.Close()
		t.Fatal(err)
	}
	ca, err := net.DialUDP("udp", nil, ub.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	ua.Close()
	return NewDatagramLink(ca, opts), NewDatagramLink(ub, opts)
}

// TestDatagramLinkEndToEnd sends segments over loopback UDP and checks that
// what arrives decodes intact and in strictly increasing seq order (loopback
// preserves ordering; the link itself must not reorder).
func TestDatagramLinkEndToEnd(t *testing.T) {
	sender, receiver := udpTestPair(t, LinkOptions{})
	defer sender.Close()
	defer receiver.Close()

	const n = 50
	for i := 0; i < n; i++ {
		frame := sender.AcquireFrame(proto.TSegment)
		frame = proto.AppendSegment(frame, proto.Segment{Player: 7, Seq: int64(i), Payload: []byte("dgram")})
		if !sender.SendFrameWait(frame) {
			t.Fatalf("send %d failed: %v", i, sender.Err())
		}
	}

	got := 0
	last := int64(-1)
	deadline := time.Now().Add(2 * time.Second)
	for got < n && time.Now().Before(deadline) {
		receiver.conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		typ, payload, err := receiver.Recv()
		if err != nil {
			break // deadline: whatever UDP delivered is what we check
		}
		if typ != proto.TSegment {
			t.Fatalf("wrong type %v", typ)
		}
		var seg proto.Segment
		if err := proto.UnmarshalSegmentInto(payload, &seg); err != nil {
			t.Fatal(err)
		}
		if seg.Seq <= last || string(seg.Payload) != "dgram" {
			t.Fatalf("frame corrupt or reordered: seq %d after %d payload %q", seg.Seq, last, seg.Payload)
		}
		last = seg.Seq
		got++
	}
	if got == 0 {
		t.Fatal("no datagrams arrived on loopback")
	}
}

// TestDatagramLinkRejectsOversize pins the datagram size gate: one frame
// must fit one datagram, so anything beyond MaxDatagram is refused at send.
func TestDatagramLinkRejectsOversize(t *testing.T) {
	sender, receiver := udpTestPair(t, LinkOptions{})
	defer sender.Close()
	defer receiver.Close()
	frame := sender.AcquireFrame(proto.TSegment)
	frame = proto.AppendSegment(frame, proto.Segment{Player: 1, Payload: make([]byte, proto.MaxDatagram)})
	if sender.SendFrame(frame) {
		t.Fatal("oversize datagram accepted")
	}
	if sender.Err() != nil {
		t.Fatalf("oversize send must not kill the link: %v", sender.Err())
	}
}

// TestDatagramLinkImpairLossDeterministic checks the datagram path reuses
// the same deterministic loss accumulator as the stream path: 50% loss
// drops exactly every other frame, counted in the stats, with no RNG.
func TestDatagramLinkImpairLossDeterministic(t *testing.T) {
	reg := obs.NewRegistry()
	stats := obs.LinkStatsIn(reg, "dgram")
	sender, receiver := udpTestPair(t, LinkOptions{Stats: stats})
	defer sender.Close()
	defer receiver.Close()
	sender.Impair(0, 0.5)

	const n = 10
	accepted := 0
	for i := 0; i < n; i++ {
		frame := sender.AcquireFrame(proto.TAck)
		frame = proto.AppendAck(frame, proto.Ack{Code: uint32(i)})
		if sender.SendFrame(frame) {
			accepted++
		}
	}
	if accepted != n/2 {
		t.Fatalf("50%% loss accepted %d of %d frames, want exactly %d", accepted, n, n/2)
	}
	if d := stats.DroppedFrames.Load(); d != n/2 {
		t.Fatalf("dropped counter %d, want %d", d, n/2)
	}
}

// TestPipeTransport checks the in-process transport speaks the identical
// wire path in both directions.
func TestPipeTransport(t *testing.T) {
	a, b := NewPipeTransport(LinkOptions{})
	defer a.Close()
	defer b.Close()

	if !a.Send(proto.TAck, proto.MarshalAck(proto.Ack{Code: 42})) {
		t.Fatal("send a->b failed")
	}
	typ, payload, err := b.Recv()
	if err != nil || typ != proto.TAck {
		t.Fatalf("recv a->b: %v %v", typ, err)
	}
	if ack, err := proto.UnmarshalAck(payload); err != nil || ack.Code != 42 {
		t.Fatalf("decode a->b: %+v %v", ack, err)
	}

	if !b.Send(proto.THeartbeat, proto.MarshalHeartbeat(proto.Heartbeat{ID: 1, Seq: 9})) {
		t.Fatal("send b->a failed")
	}
	typ, payload, err = a.Recv()
	if err != nil || typ != proto.THeartbeat {
		t.Fatalf("recv b->a: %v %v", typ, err)
	}
	if hb, err := proto.UnmarshalHeartbeat(payload); err != nil || hb.Seq != 9 {
		t.Fatalf("decode b->a: %+v %v", hb, err)
	}
}

// TestEndToEndPipelineUDP runs the full deployment with the datagram stream
// transport: cloud (always TCP), one UDP supernode, one UDP player. Segments
// must flow and response latency must still clear the injected path delay.
func TestEndToEndPipelineUDP(t *testing.T) {
	cloud, err := StartCloud(CloudConfig{
		Addr:  "127.0.0.1:0",
		World: world.DefaultConfig(),
		Tick:  33 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()

	sn, err := StartSupernode(SupernodeConfig{
		ID:           1_000_000,
		CloudAddr:    cloud.Addr(),
		Addr:         "127.0.0.1:0",
		DelayToCloud: 2 * time.Millisecond,
		FPS:          30,
		Transport:    TransportUDP,
		DelayFor:     func(int64) time.Duration { return 4 * time.Millisecond },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()

	cloud.World(func(w *world.World) {
		for i := 0; i < 20; i++ {
			w.SpawnObject(world.Vec2{X: float64(i * 400), Y: float64(i * 350)})
		}
	})

	report, err := RunPlayer(PlayerConfig{
		ID:          1,
		GameID:      4,
		CloudAddr:   cloud.Addr(),
		StreamAddr:  sn.Addr(),
		ActionDelay: 3 * time.Millisecond,
		ActionEvery: 100 * time.Millisecond,
		ViewRadius:  DefaultViewRadius,
		Transport:   TransportUDP,
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// ~30 fps for 2 s; UDP may shed a few but the stream must be live.
	if report.Segments < 20 || report.Segments > 75 {
		t.Fatalf("received %d segments over UDP, want ~60", report.Segments)
	}
	if report.Bytes <= 0 {
		t.Fatal("no payload bytes over UDP")
	}
	if report.MeanResponse == 0 {
		t.Fatal("no response latencies measured over UDP")
	}
}
