package live

import (
	"context"
	"fmt"
	"net"

	"cloudfog/internal/obs"
)

// Dial opens the Transport a role uses to reach its upstream, putting the
// UDP-vs-TCP decision (and the backoff/link plumbing both make) in exactly
// one place:
//
//   - RoleSupernode dials the cloud update link at cfg.CloudAddr — always
//     TCP, world updates must not be dropped.
//   - RolePlayer dials the serving stream at cfg.StreamAddr over
//     cfg.Transport.
//   - RoleCoordinator dials the coordinator at cfg.CoordAddr over
//     cfg.Transport (workers registering, players requesting placement).
//
// RoleCloud is listen-only and is rejected. Runtime options attach injected
// delay (DelayFor keyed by cfg.ID) and link stats via WithObs/WithDelayFor.
func Dial(ctx context.Context, role RoleKind, cfg Config, opts ...Option) (Transport, error) {
	o := BuildOptions(opts...)
	cfg = cfg.apply(o)

	var addr string
	udp := false
	switch role {
	case RoleSupernode:
		addr = cfg.CloudAddr
	case RolePlayer:
		addr = cfg.StreamAddr
		udp = cfg.Transport == TransportUDP
	case RoleCoordinator:
		addr = cfg.CoordAddr
		udp = cfg.Transport == TransportUDP
	case RoleCloud:
		return nil, fmt.Errorf("live: Dial(RoleCloud): the cloud listens, it does not dial")
	default:
		return nil, fmt.Errorf("live: Dial on unknown role %q", role)
	}
	if addr == "" {
		return nil, fmt.Errorf("live: Dial(%s): no upstream address in config", role)
	}

	var lo LinkOptions
	if o.DelayFor != nil {
		lo.Delay = o.DelayFor(cfg.ID)
	}
	if o.Obs != nil {
		lo.Stats = obs.LinkStatsIn(o.Obs, fmt.Sprintf("%s%d_dial", role, cfg.ID))
	}
	return dialTransport(ctx, addr, cfg.ID, udp, lo)
}

// dialTransport is the shared tail of every dial path: UDP connects
// immediately (connectionless), TCP retries with capped backoff until ctx
// expires.
func dialTransport(ctx context.Context, addr string, id int64, udp bool, lo LinkOptions) (Transport, error) {
	if udp {
		conn, err := net.Dial("udp", addr)
		if err != nil {
			return nil, err
		}
		return NewDatagramLink(conn, lo), nil
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, dialDeadline)
		defer cancel()
	}
	conn, err := dialBackoff(ctx, addr, id)
	if err != nil {
		return nil, err
	}
	return NewLinkOpts(conn, lo), nil
}

var (
	_ Transport = (*Link)(nil)
	_ Transport = (*DatagramLink)(nil)
)
