package live

import (
	"fmt"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/health"
	"cloudfog/internal/obs"
	"cloudfog/internal/proto"
	"cloudfog/internal/world"
)

// RoleKind tags which live-plane process a Config describes.
type RoleKind string

const (
	RoleCloud       RoleKind = "cloud"
	RoleSupernode   RoleKind = "supernode"
	RolePlayer      RoleKind = "player"
	RoleCoordinator RoleKind = "coordinator"
)

// ParseRole maps a CLI subcommand or config tag onto a RoleKind.
func ParseRole(s string) (RoleKind, error) {
	switch RoleKind(s) {
	case RoleCloud, RoleSupernode, RolePlayer, RoleCoordinator:
		return RoleKind(s), nil
	}
	return "", fmt.Errorf("live: unknown role %q (cloud|supernode|player|coordinator)", s)
}

// Config is the single serializable, role-tagged configuration for every
// live-plane role: cloud, supernode (standalone or coordinator-registered
// worker), player, and coordinator. One JSON document round-trips through it
// and Validate checks exactly the fields the tagged role requires, so a
// coordinator — or an operator's config file — can spawn any role from the
// same schema. Runtime-only knobs that cannot serialize (injected delay
// functions, metric registries, detector overrides) attach through the
// functional options accepted by NewCloud / NewSupernode / NewPlayer.
//
// Durations marshal as integer nanoseconds (Go's time.Duration JSON form).
type Config struct {
	Role RoleKind `json:"role"`
	// ID is the node's wire identity (supernode hello ID, worker ID, player
	// ID).
	ID int64 `json:"id,omitempty"`

	// Addr is the role's own listen address (cloud, supernode,
	// coordinator); "127.0.0.1:0" picks an ephemeral port.
	Addr string `json:"addr,omitempty"`
	// CloudAddr names the upstream cloud (supernode update subscription,
	// player action link, coordinator cloud-direct fallback tickets).
	CloudAddr string `json:"cloud_addr,omitempty"`
	// CoordAddr names the coordinator: a supernode with CoordAddr set
	// registers itself as a placeable worker, and a player with CoordAddr
	// set asks the coordinator for a session ticket instead of using
	// StreamAddr.
	CoordAddr string `json:"coord_addr,omitempty"`
	// StreamAddr pins a player's serving supernode directly (no
	// coordinator); BackupAddrs is its static failover ring.
	StreamAddr  string   `json:"stream_addr,omitempty"`
	BackupAddrs []string `json:"backup_addrs,omitempty"`

	// Transport selects the stream transport: TransportTCP (default when
	// empty) or TransportUDP. Control links (cloud, coordinator TCP mode)
	// stay reliable regardless.
	Transport string `json:"transport,omitempty"`

	// Cloud fields. A zero World means world.DefaultConfig().
	World     world.Config  `json:"world,omitempty"`
	Tick      time.Duration `json:"tick,omitempty"`
	DirectFPS int           `json:"direct_fps,omitempty"`

	// Supernode / worker fields.
	FPS            int           `json:"fps,omitempty"`
	DelayToCloud   time.Duration `json:"delay_to_cloud,omitempty"`
	HeartbeatEvery time.Duration `json:"heartbeat_every,omitempty"`
	// X, Y locate a worker for the coordinator's spatial shortlist (and a
	// player's placement request).
	X float64 `json:"x,omitempty"`
	Y float64 `json:"y,omitempty"`
	// Capacity is a worker's player-slot budget; ReportEvery is its
	// capacity/occupancy report period to the coordinator.
	Capacity    int           `json:"capacity,omitempty"`
	ReportEvery time.Duration `json:"report_every,omitempty"`
	// SkewTolerance is how much worker/coordinator clock disagreement a
	// lease-enforcing worker forgives when checking ticket expiry (zero
	// means DefaultSkewTolerance).
	SkewTolerance time.Duration `json:"skew_tolerance,omitempty"`
	// DrainTimeout bounds how long a SIGTERM'd worker waits for the
	// coordinator to hand its sessions off before exiting anyway (zero
	// means DefaultDrainTimeout).
	DrainTimeout time.Duration `json:"drain_timeout,omitempty"`

	// Player fields.
	GameID          int           `json:"game_id,omitempty"`
	ActionDelay     time.Duration `json:"action_delay,omitempty"`
	ActionEvery     time.Duration `json:"action_every,omitempty"`
	UploadAllowance time.Duration `json:"upload_allowance,omitempty"`
	ViewRadius      float64       `json:"view_radius,omitempty"`

	// Coordinator fields. ShortlistK is how many nearest admitting workers
	// a placement considers (serving pick plus ring candidates); Backups is
	// the backup-ring size baked into each ticket.
	ShortlistK int `json:"shortlist_k,omitempty"`
	Backups    int `json:"backups,omitempty"`
	// TicketKey is the shared HMAC key tickets are signed under (empty
	// disables signing — fine for local smoke runs, not deployments).
	TicketKey string `json:"ticket_key,omitempty"`
	// LeaseTTL, when positive, turns tickets into leases: every ticket the
	// coordinator issues expires LeaseTTL after issue (signed into the HMAC
	// body), workers reject expired tickets, and players renew at
	// half-life. Zero disables leases (tickets never expire).
	LeaseTTL time.Duration `json:"lease_ttl,omitempty"`

	// Detector configures heartbeat failure detection (cloud over supernode
	// heartbeats, coordinator over worker reports).
	Detector health.DetectorConfig `json:"detector,omitempty"`
	// Overload configures the coordinator's placement admission ladder; the
	// zero value means health.DefaultOverloadConfig().
	Overload health.OverloadConfig `json:"overload,omitempty"`
}

// Worker-side lease and drain defaults, used when the corresponding Config
// fields are zero.
const (
	// DefaultSkewTolerance forgives this much worker/coordinator clock
	// disagreement on lease-expiry checks.
	DefaultSkewTolerance = 250 * time.Millisecond
	// DefaultDrainTimeout bounds a draining worker's wait for handoff.
	DefaultDrainTimeout = 5 * time.Second
)

// Validate reports configuration errors for the tagged role.
func (c Config) Validate() error {
	if !validTransport(c.Transport) {
		return fmt.Errorf("live: Config.Transport %q is not %q or %q", c.Transport, TransportTCP, TransportUDP)
	}
	switch c.Role {
	case RoleCloud:
		return c.cloudView().Validate()
	case RoleSupernode:
		if err := c.supernodeView().Validate(); err != nil {
			return err
		}
		if c.CoordAddr != "" {
			switch {
			case c.Capacity <= 0:
				return fmt.Errorf("live: worker Config.Capacity %d is not positive", c.Capacity)
			case c.ReportEvery <= 0:
				return fmt.Errorf("live: worker Config.ReportEvery %v is not positive", c.ReportEvery)
			case c.SkewTolerance < 0:
				return fmt.Errorf("live: worker Config.SkewTolerance %v is negative", c.SkewTolerance)
			case c.DrainTimeout < 0:
				return fmt.Errorf("live: worker Config.DrainTimeout %v is negative", c.DrainTimeout)
			}
		}
		return nil
	case RolePlayer:
		if c.CoordAddr == "" {
			return c.playerView().Validate()
		}
		// A coordinator-placed player gets StreamAddr from its ticket;
		// validate everything else through the classic view.
		v := c.playerView()
		v.StreamAddr = "ticket"
		return v.Validate()
	case RoleCoordinator:
		switch {
		case c.Addr == "":
			return fmt.Errorf("live: coordinator Config.Addr is empty (use \"127.0.0.1:0\" for an ephemeral port)")
		case c.ShortlistK < 0:
			return fmt.Errorf("live: coordinator Config.ShortlistK %d is negative", c.ShortlistK)
		case c.Backups < 0:
			return fmt.Errorf("live: coordinator Config.Backups %d is negative", c.Backups)
		case c.LeaseTTL < 0:
			return fmt.Errorf("live: coordinator Config.LeaseTTL %v is negative", c.LeaseTTL)
		}
		if c.Overload != (health.OverloadConfig{}) {
			if err := c.Overload.Validate(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("live: Config.Role %q is not a known role (cloud|supernode|player|coordinator)", c.Role)
	}
}

// WorldConfig returns the cloud world configuration, substituting
// world.DefaultConfig() for the zero value so serialized configs need not
// spell out the default world.
func (c Config) WorldConfig() world.Config {
	if c.World == (world.Config{}) {
		return world.DefaultConfig()
	}
	return c.World
}

// cloudView projects the role-tagged config onto the legacy cloud struct.
func (c Config) cloudView() CloudConfig {
	return CloudConfig{
		Addr:      c.Addr,
		World:     c.WorldConfig(),
		Tick:      c.Tick,
		Detector:  c.Detector,
		DirectFPS: c.DirectFPS,
	}
}

// supernodeView projects the role-tagged config onto the legacy supernode
// struct.
func (c Config) supernodeView() SupernodeConfig {
	return SupernodeConfig{
		ID:             c.ID,
		CloudAddr:      c.CloudAddr,
		Addr:           c.Addr,
		Transport:      c.Transport,
		DelayToCloud:   c.DelayToCloud,
		FPS:            c.FPS,
		HeartbeatEvery: c.HeartbeatEvery,
	}
}

// playerView projects the role-tagged config onto the legacy player struct.
func (c Config) playerView() PlayerConfig {
	return PlayerConfig{
		ID:              c.ID,
		GameID:          c.GameID,
		CloudAddr:       c.CloudAddr,
		StreamAddr:      c.StreamAddr,
		BackupAddrs:     c.BackupAddrs,
		Transport:       c.Transport,
		ActionDelay:     c.ActionDelay,
		ActionEvery:     c.ActionEvery,
		UploadAllowance: c.UploadAllowance,
		ViewRadius:      c.ViewRadius,
	}
}

// Options carries the runtime-only attachments a serializable Config cannot:
// injected per-peer delays, metric registries, and late overrides. Build one
// with the With* functional options.
type Options struct {
	// Obs, when non-nil, registers the role's link (and coordinator)
	// metrics.
	Obs *obs.Registry
	// DelayFor, when non-nil, returns the injected one-way delay toward the
	// identified peer (the cloud keys it by supernode ID, a supernode by
	// player ID).
	DelayFor func(peerID int64) time.Duration
	// Detector, when non-nil, overrides the config's detector.
	Detector *health.DetectorConfig
	// Transport, when non-empty, overrides the config's stream transport.
	Transport string
	// Occupancy, when non-nil, overrides a worker's reported load (defaults
	// to the supernode's live session count).
	Occupancy func() int
	// JoinGate, when non-nil, vets every player join at a supernode (see
	// SupernodeConfig.JoinGate) — the hook a lease-enforcing worker uses to
	// reject expired tickets and refuse new placements in safe mode.
	JoinGate func(join proto.JoinStream, known bool) uint32
	// Ticket is a player's encoded session ticket, embedded in its joins.
	Ticket []byte
	// Retarget, when non-nil, delivers replacement stream targets to a
	// running player (coordinator-driven drain handoffs).
	Retarget <-chan StreamTarget
}

// Option mutates Options; see With*.
type Option func(*Options)

// WithObs attaches a metrics registry.
func WithObs(r *obs.Registry) Option { return func(o *Options) { o.Obs = r } }

// WithDelayFor injects per-peer one-way delays at the sender.
func WithDelayFor(f func(peerID int64) time.Duration) Option {
	return func(o *Options) { o.DelayFor = f }
}

// WithDetector overrides the failure-detector configuration.
func WithDetector(d health.DetectorConfig) Option {
	return func(o *Options) { o.Detector = &d }
}

// WithTransport overrides the stream transport (TransportTCP/TransportUDP).
func WithTransport(t string) Option { return func(o *Options) { o.Transport = t } }

// WithOccupancy overrides the load a worker reports to the coordinator.
func WithOccupancy(f func() int) Option { return func(o *Options) { o.Occupancy = f } }

// WithJoinGate installs a join admission hook at a supernode.
func WithJoinGate(f func(join proto.JoinStream, known bool) uint32) Option {
	return func(o *Options) { o.JoinGate = f }
}

// WithTicket embeds an encoded session ticket in a player's joins.
func WithTicket(t []byte) Option { return func(o *Options) { o.Ticket = t } }

// WithRetarget wires a replacement-target channel into a player session.
func WithRetarget(ch <-chan StreamTarget) Option {
	return func(o *Options) { o.Retarget = ch }
}

// BuildOptions folds a list of options into one Options value.
func BuildOptions(opts ...Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Applied folds the runtime option overrides (transport, detector) into the
// serializable config, returning the effective config — for packages
// layering on top of live (the coordinator) that accept the same options.
func (c Config) Applied(o Options) Config { return c.apply(o) }

// apply folds the runtime options into the serializable config, returning
// the effective config.
func (c Config) apply(o Options) Config {
	if o.Transport != "" {
		c.Transport = o.Transport
	}
	if o.Detector != nil {
		c.Detector = *o.Detector
	}
	return c
}

// NewCloud starts a cloud server from a role-tagged config plus runtime
// options. The config's Role must be RoleCloud.
func NewCloud(cfg Config, opts ...Option) (*Cloud, error) {
	if cfg.Role != RoleCloud {
		return nil, fmt.Errorf("live: NewCloud on Config.Role %q", cfg.Role)
	}
	o := BuildOptions(opts...)
	cc := cfg.apply(o).cloudView()
	cc.DelayFor = o.DelayFor
	cc.Obs = o.Obs
	return StartCloud(cc)
}

// NewSupernode starts a supernode from a role-tagged config plus runtime
// options. The config's Role must be RoleSupernode. (A config with CoordAddr
// set describes a coordinator-registered worker; start it through
// coord.StartWorker, which calls back into this constructor.)
func NewSupernode(cfg Config, opts ...Option) (*Supernode, error) {
	if cfg.Role != RoleSupernode {
		return nil, fmt.Errorf("live: NewSupernode on Config.Role %q", cfg.Role)
	}
	o := BuildOptions(opts...)
	sc := cfg.apply(o).supernodeView()
	sc.DelayFor = o.DelayFor
	sc.Obs = o.Obs
	sc.JoinGate = o.JoinGate
	return StartSupernode(sc)
}

// Player is a constructed-but-not-yet-run player session; Run drives it for
// a wall-clock duration and returns the report.
type Player struct {
	cfg PlayerConfig
}

// NewPlayer builds a player from a role-tagged config plus runtime options.
// The config's Role must be RolePlayer and StreamAddr must be resolved (a
// coordinator-placed player resolves it from its ticket first).
func NewPlayer(cfg Config, opts ...Option) (*Player, error) {
	if cfg.Role != RolePlayer {
		return nil, fmt.Errorf("live: NewPlayer on Config.Role %q", cfg.Role)
	}
	o := BuildOptions(opts...)
	pc := cfg.apply(o).playerView()
	pc.Obs = o.Obs
	pc.Ticket = o.Ticket
	pc.Retarget = o.Retarget
	if err := pc.Validate(); err != nil {
		return nil, err
	}
	return &Player{cfg: pc}, nil
}

// Run drives the player for the given wall-clock duration.
func (p *Player) Run(duration time.Duration) (PlayerReport, error) {
	return RunPlayer(p.cfg, duration)
}

// DefaultedPlayer fills a player config's unset cadence and radius with the
// suggested defaults and resolves the game, so callers assembling configs
// from tickets don't repeat the boilerplate.
func DefaultedPlayer(cfg Config) (Config, error) {
	if cfg.ActionEvery == 0 {
		cfg.ActionEvery = DefaultActionEvery
	}
	if cfg.ViewRadius == 0 {
		cfg.ViewRadius = DefaultViewRadius
	}
	if _, err := game.ByID(cfg.GameID); err != nil {
		return cfg, fmt.Errorf("live: Config.GameID %d: %w", cfg.GameID, err)
	}
	return cfg, nil
}
