package live

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cloudfog/internal/obs"
	"cloudfog/internal/proto"
	"cloudfog/internal/world"
)

func TestLinkDeliversInOrderWithDelay(t *testing.T) {
	a, b := net.Pipe()
	link := NewLink(a, 20*time.Millisecond)
	defer link.Close()
	defer b.Close()

	start := time.Now()
	go func() {
		for i := 0; i < 3; i++ {
			link.Send(proto.TAck, proto.MarshalAck(proto.Ack{Code: uint32(i)}))
		}
	}()
	for i := 0; i < 3; i++ {
		typ, payload, err := proto.ReadFrame(b)
		if err != nil {
			t.Fatal(err)
		}
		ack, err := proto.UnmarshalAck(payload)
		if err != nil || typ != proto.TAck || ack.Code != uint32(i) {
			t.Fatalf("frame %d: %v %+v %v", i, typ, ack, err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 20*time.Millisecond {
		t.Fatalf("frames arrived in %v, before the injected delay", elapsed)
	}
	// Back-to-back frames overlap in flight: 3 frames should take ~one
	// delay, not three.
	if elapsed > 55*time.Millisecond {
		t.Fatalf("frames head-of-line blocked: %v", elapsed)
	}
}

func TestLinkSendAfterCloseFails(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	link := NewLink(a, 0)
	link.Close()
	if link.Send(proto.TAck, nil) {
		t.Fatal("send after close succeeded")
	}
}

func TestLinkPeerGoneSetsErr(t *testing.T) {
	a, b := net.Pipe()
	link := NewLink(a, 0)
	defer link.Close()
	b.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		link.Send(proto.TAck, nil)
		if link.Err() != nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("write error never surfaced after peer closed")
}

// TestEndToEndPipeline runs the complete live deployment: cloud, one
// supernode, two players, injected delays — and checks that segments flow,
// the replica tracks the world, and measured response latencies sit above
// the injected path delay.
func TestEndToEndPipeline(t *testing.T) {
	const updateDelay = 10 * time.Millisecond
	cloud, err := StartCloud(CloudConfig{
		Addr:     "127.0.0.1:0",
		World:    world.DefaultConfig(),
		Tick:     33 * time.Millisecond,
		DelayFor: func(int64) time.Duration { return updateDelay },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()

	const streamDelay = 8 * time.Millisecond
	sn, err := StartSupernode(SupernodeConfig{
		ID:           1_000_000,
		CloudAddr:    cloud.Addr(),
		Addr:         "127.0.0.1:0",
		DelayToCloud: 5 * time.Millisecond,
		FPS:          30,
		DelayFor:     func(int64) time.Duration { return streamDelay },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()

	// Seed some world objects so views have content.
	cloud.World(func(w *world.World) {
		for i := 0; i < 20; i++ {
			w.SpawnObject(world.Vec2{X: float64(i * 400), Y: float64(i * 350)})
		}
	})

	var wg sync.WaitGroup
	reports := make([]PlayerReport, 2)
	errs := make([]error, 2)
	for i := range reports {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = RunPlayer(PlayerConfig{
				ID:          int64(i + 1),
				GameID:      4,
				CloudAddr:   cloud.Addr(),
				StreamAddr:  sn.Addr(),
				ActionDelay: 6 * time.Millisecond,
				ActionEvery: 100 * time.Millisecond,
				ViewRadius:  DefaultViewRadius,
			}, 2*time.Second)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("player %d: %v", i, err)
		}
	}
	for i, r := range reports {
		// ~30 fps for 2 s; allow generous slack for CI scheduling.
		if r.Segments < 30 || r.Segments > 75 {
			t.Fatalf("player %d received %d segments, want ~60", i, r.Segments)
		}
		if r.Bytes <= 0 {
			t.Fatalf("player %d received no payload bytes", i)
		}
		if r.Actions < 10 {
			t.Fatalf("player %d issued only %d actions", i, r.Actions)
		}
		if r.MeanResponse == 0 {
			t.Fatalf("player %d measured no response latencies", i)
		}
		// The response path is action(6ms) + tick wait + update(10ms) +
		// render wait + stream(8ms): at least the injected 24 ms.
		if r.MeanResponse < 24*time.Millisecond {
			t.Fatalf("player %d mean response %v below injected path delay", i, r.MeanResponse)
		}
		if r.MeanResponse > 500*time.Millisecond {
			t.Fatalf("player %d mean response %v implausibly high", i, r.MeanResponse)
		}
	}

	// The supernode's replica tracked the live world.
	if v := sn.ReplicaVersion(); v == 0 {
		t.Fatal("replica never advanced")
	}
	msgs, bytes := sn.UpdateTraffic()
	if msgs == 0 || bytes == 0 {
		t.Fatal("no update traffic recorded")
	}
	// Update traffic must be far below the video traffic — the paper's
	// central bandwidth claim.
	videoBytes := reports[0].Bytes + reports[1].Bytes
	if bytes >= videoBytes {
		t.Fatalf("update traffic %dB not below video traffic %dB", bytes, videoBytes)
	}
}

func TestCloudRejectsBadHello(t *testing.T) {
	cloud, err := StartCloud(CloudConfig{Addr: "127.0.0.1:0", World: world.DefaultConfig(), Tick: 33 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()

	conn, err := net.Dial("tcp", cloud.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Not a hello: the cloud must drop the connection.
	proto.WriteFrame(conn, proto.TAck, proto.MarshalAck(proto.Ack{}))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var buf [1]byte
	if _, err := conn.Read(buf[:]); err == nil {
		t.Fatal("cloud kept a connection that never said hello")
	}
}

func TestSupernodeRejectsBadJoin(t *testing.T) {
	cloud, err := StartCloud(CloudConfig{Addr: "127.0.0.1:0", World: world.DefaultConfig(), Tick: 33 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()
	sn, err := StartSupernode(SupernodeConfig{ID: 5, CloudAddr: cloud.Addr(), Addr: "127.0.0.1:0", FPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()

	conn, err := net.Dial("tcp", sn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Unknown game ID: join must be refused with an explicit ack code and
	// the connection closed.
	proto.WriteFrame(conn, proto.TJoinStream, proto.MarshalJoinStream(proto.JoinStream{Player: 1, GameID: 99}))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	typ, payload, err := proto.ReadFrame(conn)
	if err != nil || typ != proto.TAck {
		t.Fatalf("expected refusal ack, got %v %v", typ, err)
	}
	ack, err := proto.UnmarshalAck(payload)
	if err != nil || ack.Code != proto.AckRefused {
		t.Fatalf("expected AckRefused, got %+v %v", ack, err)
	}
	var buf [1]byte
	if _, err := conn.Read(buf[:]); err == nil {
		t.Fatal("supernode kept a join with an unknown game")
	}
}

func TestCloudCloseIsClean(t *testing.T) {
	cloud, err := StartCloud(CloudConfig{Addr: "127.0.0.1:0", World: world.DefaultConfig(), Tick: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sn, err := StartSupernode(SupernodeConfig{ID: 9, CloudAddr: cloud.Addr(), Addr: "127.0.0.1:0", FPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	cloud.Close()
	cloud.Close() // idempotent
	sn.Close()
	sn.Close()
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"cloud empty addr", CloudConfig{Tick: time.Second}.Validate(), "Addr is empty"},
		{"cloud zero tick", CloudConfig{Addr: "127.0.0.1:0"}.Validate(), "Tick"},
		{"sn empty cloud addr", SupernodeConfig{Addr: "127.0.0.1:0", FPS: 30}.Validate(), "CloudAddr is empty"},
		{"sn empty addr", SupernodeConfig{CloudAddr: "x", FPS: 30}.Validate(), "Addr is empty"},
		{"sn zero fps", SupernodeConfig{CloudAddr: "x", Addr: "127.0.0.1:0"}.Validate(), "FPS"},
		{"sn negative delay", SupernodeConfig{CloudAddr: "x", Addr: "y", FPS: 30, DelayToCloud: -time.Second}.Validate(), "DelayToCloud"},
		{"player empty cloud addr", PlayerConfig{StreamAddr: "y", GameID: 1, ActionEvery: time.Second, ViewRadius: 1}.Validate(), "CloudAddr is empty"},
		{"player zero cadence", PlayerConfig{CloudAddr: "x", StreamAddr: "y", GameID: 1, ViewRadius: 1}.Validate(), "ActionEvery"},
		{"player zero radius", PlayerConfig{CloudAddr: "x", StreamAddr: "y", GameID: 1, ActionEvery: time.Second}.Validate(), "ViewRadius"},
		{"player bad game", PlayerConfig{CloudAddr: "x", StreamAddr: "y", GameID: 99, ActionEvery: time.Second, ViewRadius: 1}.Validate(), "GameID"},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(c.err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, c.err, c.want)
		}
	}
	ok := PlayerConfig{
		CloudAddr: "x", StreamAddr: "y", GameID: 1,
		ActionEvery: DefaultActionEvery, ViewRadius: DefaultViewRadius,
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("complete player config rejected: %v", err)
	}
}

func TestStartRejectsInvalidConfig(t *testing.T) {
	if _, err := StartCloud(CloudConfig{}); err == nil {
		t.Error("StartCloud accepted an empty config")
	}
	if _, err := StartSupernode(SupernodeConfig{}); err == nil {
		t.Error("StartSupernode accepted an empty config")
	}
	if _, err := RunPlayer(PlayerConfig{}, time.Second); err == nil {
		t.Error("RunPlayer accepted an empty config")
	}
}

// TestLinkMidStreamDisconnect drives a link through an active transfer,
// kills the peer mid-stream, and checks the full error path: the write
// error surfaces via Err, every later Send reports false, and Close still
// returns cleanly.
func TestLinkMidStreamDisconnect(t *testing.T) {
	r := obs.NewRegistry()
	stats := obs.LinkStatsIn(r, "test")
	a, b := net.Pipe()
	link := NewLinkObs(a, 0, stats)
	defer link.Close()

	// Receive a few frames, then vanish mid-stream.
	received := make(chan struct{})
	go func() {
		for i := 0; i < 3; i++ {
			if _, _, err := proto.ReadFrame(b); err != nil {
				break
			}
		}
		close(received)
		b.Close()
	}()

	payload := proto.MarshalAck(proto.Ack{Code: 7})
	for i := 0; i < 3; i++ {
		if !link.Send(proto.TAck, payload) {
			t.Fatalf("send %d failed before disconnect", i)
		}
	}
	<-received

	// Keep sending into the dead peer until the writer surfaces the error.
	deadline := time.Now().Add(2 * time.Second)
	for link.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("write error never surfaced after mid-stream disconnect")
		}
		link.Send(proto.TAck, payload)
		time.Sleep(2 * time.Millisecond)
	}
	if ok := link.Send(proto.TAck, payload); ok {
		t.Fatal("send succeeded after the link erred")
	}
	if got := stats.SentFrames.Load(); got < 3 {
		t.Fatalf("sent frames = %d, want >= 3", got)
	}
	if stats.DroppedFrames.Load() == 0 {
		t.Fatal("no dropped frames counted after disconnect")
	}
}

// TestLinkRecvAfterPeerClose checks the receive-side error path and that
// successful receives are counted.
func TestLinkRecvAfterPeerClose(t *testing.T) {
	r := obs.NewRegistry()
	stats := obs.LinkStatsIn(r, "recv")
	a, b := net.Pipe()
	link := NewLinkObs(b, 0, stats)
	defer link.Close()

	go func() {
		proto.WriteFrame(a, proto.TAck, proto.MarshalAck(proto.Ack{}))
		a.Close()
	}()
	if _, _, err := link.Recv(); err != nil {
		t.Fatalf("first recv: %v", err)
	}
	if _, _, err := link.Recv(); err == nil {
		t.Fatal("recv after peer close returned no error")
	}
	if got := stats.RecvFrames.Load(); got != 1 {
		t.Fatalf("recv frames = %d, want 1", got)
	}
}

// TestLinkStatsCountTraffic checks the happy-path accounting: frames and
// bytes both ways plus a send-delay observation per frame.
func TestLinkStatsCountTraffic(t *testing.T) {
	r := obs.NewRegistry()
	sendStats := obs.LinkStatsIn(r, "s")
	recvStats := obs.LinkStatsIn(r, "r")
	a, b := net.Pipe()
	sender := NewLinkObs(a, 3*time.Millisecond, sendStats)
	receiver := NewLinkObs(b, 0, recvStats)
	defer sender.Close()
	defer receiver.Close()

	payload := proto.MarshalAck(proto.Ack{Code: 1})
	const n = 5
	for i := 0; i < n; i++ {
		if !sender.Send(proto.TAck, payload) {
			t.Fatalf("send %d failed", i)
		}
	}
	for i := 0; i < n; i++ {
		if _, _, err := receiver.Recv(); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	// The writer bumps its counters after WriteFrame returns, which with
	// net.Pipe races the final Recv; give it a moment to settle.
	deadline := time.Now().Add(2 * time.Second)
	for sendStats.SentFrames.Load() != n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := sendStats.SentFrames.Load(); got != n {
		t.Fatalf("sent frames = %d, want %d", got, n)
	}
	wantBytes := int64(n * len(payload))
	if got := sendStats.SentBytes.Load(); got != wantBytes {
		t.Fatalf("sent bytes = %d, want %d", got, wantBytes)
	}
	if got := recvStats.RecvFrames.Load(); got != n {
		t.Fatalf("recv frames = %d, want %d", got, n)
	}
	if got := recvStats.RecvBytes.Load(); got != wantBytes {
		t.Fatalf("recv bytes = %d, want %d", got, wantBytes)
	}
	if got := sendStats.SendDelayNs.Count(); got != n {
		t.Fatalf("send delay observations = %d, want %d", got, n)
	}
	// Every frame was held at least the injected 3 ms.
	if min := sendStats.SendDelayNs.Sum() / n; min < (3 * time.Millisecond).Nanoseconds() {
		t.Fatalf("mean send delay %dns below the injected 3ms", min)
	}
}
