package live

import (
	"net"
	"sync"
	"testing"
	"time"

	"cloudfog/internal/proto"
	"cloudfog/internal/world"
)

func TestLinkDeliversInOrderWithDelay(t *testing.T) {
	a, b := net.Pipe()
	link := NewLink(a, 20*time.Millisecond)
	defer link.Close()
	defer b.Close()

	start := time.Now()
	go func() {
		for i := 0; i < 3; i++ {
			link.Send(proto.TAck, proto.MarshalAck(proto.Ack{Code: uint32(i)}))
		}
	}()
	for i := 0; i < 3; i++ {
		typ, payload, err := proto.ReadFrame(b)
		if err != nil {
			t.Fatal(err)
		}
		ack, err := proto.UnmarshalAck(payload)
		if err != nil || typ != proto.TAck || ack.Code != uint32(i) {
			t.Fatalf("frame %d: %v %+v %v", i, typ, ack, err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 20*time.Millisecond {
		t.Fatalf("frames arrived in %v, before the injected delay", elapsed)
	}
	// Back-to-back frames overlap in flight: 3 frames should take ~one
	// delay, not three.
	if elapsed > 55*time.Millisecond {
		t.Fatalf("frames head-of-line blocked: %v", elapsed)
	}
}

func TestLinkSendAfterCloseFails(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	link := NewLink(a, 0)
	link.Close()
	if link.Send(proto.TAck, nil) {
		t.Fatal("send after close succeeded")
	}
}

func TestLinkPeerGoneSetsErr(t *testing.T) {
	a, b := net.Pipe()
	link := NewLink(a, 0)
	defer link.Close()
	b.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		link.Send(proto.TAck, nil)
		if link.Err() != nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("write error never surfaced after peer closed")
}

// TestEndToEndPipeline runs the complete live deployment: cloud, one
// supernode, two players, injected delays — and checks that segments flow,
// the replica tracks the world, and measured response latencies sit above
// the injected path delay.
func TestEndToEndPipeline(t *testing.T) {
	cloud, err := StartCloud("127.0.0.1:0", world.DefaultConfig(), 33*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()

	const updateDelay = 10 * time.Millisecond
	cloud.DelayFor = func(int64) time.Duration { return updateDelay }

	sn, err := StartSupernode(1_000_000, cloud.Addr(), "127.0.0.1:0", 5*time.Millisecond, 30)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	const streamDelay = 8 * time.Millisecond
	sn.DelayFor = func(int64) time.Duration { return streamDelay }

	// Seed some world objects so views have content.
	cloud.World(func(w *world.World) {
		for i := 0; i < 20; i++ {
			w.SpawnObject(world.Vec2{X: float64(i * 400), Y: float64(i * 350)})
		}
	})

	var wg sync.WaitGroup
	reports := make([]PlayerReport, 2)
	errs := make([]error, 2)
	for i := range reports {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = RunPlayer(PlayerConfig{
				ID:          int64(i + 1),
				GameID:      4,
				CloudAddr:   cloud.Addr(),
				StreamAddr:  sn.Addr(),
				ActionDelay: 6 * time.Millisecond,
				ActionEvery: 100 * time.Millisecond,
			}, 2*time.Second)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("player %d: %v", i, err)
		}
	}
	for i, r := range reports {
		// ~30 fps for 2 s; allow generous slack for CI scheduling.
		if r.Segments < 30 || r.Segments > 75 {
			t.Fatalf("player %d received %d segments, want ~60", i, r.Segments)
		}
		if r.Bytes <= 0 {
			t.Fatalf("player %d received no payload bytes", i)
		}
		if r.Actions < 10 {
			t.Fatalf("player %d issued only %d actions", i, r.Actions)
		}
		if r.MeanResponse == 0 {
			t.Fatalf("player %d measured no response latencies", i)
		}
		// The response path is action(6ms) + tick wait + update(10ms) +
		// render wait + stream(8ms): at least the injected 24 ms.
		if r.MeanResponse < 24*time.Millisecond {
			t.Fatalf("player %d mean response %v below injected path delay", i, r.MeanResponse)
		}
		if r.MeanResponse > 500*time.Millisecond {
			t.Fatalf("player %d mean response %v implausibly high", i, r.MeanResponse)
		}
	}

	// The supernode's replica tracked the live world.
	if v := sn.ReplicaVersion(); v == 0 {
		t.Fatal("replica never advanced")
	}
	msgs, bytes := sn.UpdateTraffic()
	if msgs == 0 || bytes == 0 {
		t.Fatal("no update traffic recorded")
	}
	// Update traffic must be far below the video traffic — the paper's
	// central bandwidth claim.
	videoBytes := reports[0].Bytes + reports[1].Bytes
	if bytes >= videoBytes {
		t.Fatalf("update traffic %dB not below video traffic %dB", bytes, videoBytes)
	}
}

func TestCloudRejectsBadHello(t *testing.T) {
	cloud, err := StartCloud("127.0.0.1:0", world.DefaultConfig(), 33*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()

	conn, err := net.Dial("tcp", cloud.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Not a hello: the cloud must drop the connection.
	proto.WriteFrame(conn, proto.TAck, proto.MarshalAck(proto.Ack{}))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var buf [1]byte
	if _, err := conn.Read(buf[:]); err == nil {
		t.Fatal("cloud kept a connection that never said hello")
	}
}

func TestSupernodeRejectsBadJoin(t *testing.T) {
	cloud, err := StartCloud("127.0.0.1:0", world.DefaultConfig(), 33*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()
	sn, err := StartSupernode(5, cloud.Addr(), "127.0.0.1:0", 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()

	conn, err := net.Dial("tcp", sn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Unknown game ID: join must be rejected.
	proto.WriteFrame(conn, proto.TJoinStream, proto.MarshalJoinStream(proto.JoinStream{Player: 1, GameID: 99}))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var buf [1]byte
	if _, err := conn.Read(buf[:]); err == nil {
		t.Fatal("supernode kept a join with an unknown game")
	}
}

func TestCloudCloseIsClean(t *testing.T) {
	cloud, err := StartCloud("127.0.0.1:0", world.DefaultConfig(), 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := StartSupernode(9, cloud.Addr(), "127.0.0.1:0", 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	cloud.Close()
	cloud.Close() // idempotent
	sn.Close()
	sn.Close()
}
