package live

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/obs"
	"cloudfog/internal/proto"
	"cloudfog/internal/world"
)

// Suggested PlayerConfig values for callers with no opinion of their own.
// Validate does NOT fall back to them: an unset cadence or view radius is a
// configuration error, not a request for defaults.
const (
	DefaultActionEvery = 250 * time.Millisecond
	DefaultViewRadius  = 600.0
)

// PlayerConfig describes one live player client.
//
// Deprecated: new code should build a role-tagged Config (Role: RolePlayer)
// and use NewPlayer; PlayerConfig remains as the internal view the unified
// config projects onto.
type PlayerConfig struct {
	ID     int64
	GameID int
	// CloudAddr receives the action stream; StreamAddr serves the video.
	CloudAddr  string
	StreamAddr string
	// BackupAddrs are fallback supernode stream addresses, tried in order
	// (wrapping) when the serving stream dies mid-run — the live analogue
	// of the fog's backup-failover list.
	BackupAddrs []string
	// Transport selects the supernode stream transport: TransportTCP
	// (default when empty) or TransportUDP. It must match the supernodes'
	// mode. The action link and the cloud's direct-stream fallback are
	// always TCP.
	Transport string
	// ActionDelay is the injected one-way player→cloud latency.
	ActionDelay time.Duration
	// ActionEvery is the input cadence (see DefaultActionEvery).
	ActionEvery time.Duration
	// UploadAllowance is subtracted from each response sample before the
	// budget check: the paper's latency budget covers the downstream path
	// (upload "does not seriously affect the response latency", §III-A),
	// while RunPlayer necessarily measures the full action→video loop.
	UploadAllowance time.Duration
	// ViewRadius is the player's visible range in world units (see
	// DefaultViewRadius).
	ViewRadius float64
	// Obs, when non-nil, registers the player's action-link metrics
	// (cloudfog_link_*{link="p<ID>_to_cloud"}).
	Obs *obs.Registry
	// Ticket carries the player's encoded session ticket; when non-empty it
	// rides inside every join so lease-enforcing workers can verify the
	// placement and its expiry.
	Ticket []byte
	// Retarget, when non-nil, delivers replacement stream targets mid-run
	// (a coordinator draining the serving worker pushes one). The player
	// performs a make-before-break handoff: subscribe to the new target
	// first, then drop the old stream — zero interruptions, counted as a
	// Handoff rather than a Failover.
	Retarget <-chan StreamTarget
}

// StreamTarget names a replacement stream destination pushed mid-session:
// the new serving address, its failover ring, the stream transport, and the
// re-signed ticket that authorizes the player there.
type StreamTarget struct {
	Addr      string
	Backups   []string
	Transport string
	Ticket    []byte
}

// Validate reports configuration errors.
func (c PlayerConfig) Validate() error {
	switch {
	case c.CloudAddr == "":
		return fmt.Errorf("live: PlayerConfig.CloudAddr is empty")
	case c.StreamAddr == "":
		return fmt.Errorf("live: PlayerConfig.StreamAddr is empty")
	case c.ActionDelay < 0:
		return fmt.Errorf("live: PlayerConfig.ActionDelay %v is negative", c.ActionDelay)
	case c.ActionEvery <= 0:
		return fmt.Errorf("live: PlayerConfig.ActionEvery %v is not positive (DefaultActionEvery is %v)",
			c.ActionEvery, DefaultActionEvery)
	case c.ViewRadius <= 0:
		return fmt.Errorf("live: PlayerConfig.ViewRadius %v is not positive (DefaultViewRadius is %v)",
			c.ViewRadius, DefaultViewRadius)
	case !validTransport(c.Transport):
		return fmt.Errorf("live: PlayerConfig.Transport %q is not %q or %q", c.Transport, TransportTCP, TransportUDP)
	}
	if _, err := game.ByID(c.GameID); err != nil {
		return fmt.Errorf("live: PlayerConfig.GameID %d: %w", c.GameID, err)
	}
	return nil
}

// PlayerReport summarizes a live player session.
type PlayerReport struct {
	Segments     int64
	Bytes        int64
	Actions      int64
	MeanResponse time.Duration
	P95Response  time.Duration
	// Failovers counts mid-run stream reattachments to a backup supernode
	// after the serving stream died — each one is a visible interruption.
	Failovers int64
	// Handoffs counts make-before-break retargets (coordinator-driven
	// drains): the player swapped streams without losing a frame.
	Handoffs int64
	// CloudFallback reports that the player ended up streaming directly
	// from the cloud after every supernode in its ring refused.
	CloudFallback bool
	// FailoverErrors records why each refused stream candidate failed, in
	// attempt order ("addr: reason") — the audit trail of a degraded path.
	FailoverErrors []string
	// WithinBudget is the fraction of response samples inside the game's
	// response-latency requirement.
	WithinBudget float64
}

// failoverDialDeadline bounds each dial to a failover candidate: a dead
// supernode should cost the player about a second, not the full patient
// dialDeadline, so a ring of corpses still reaches the cloud fallback
// quickly.
const failoverDialDeadline = time.Second

// RunPlayer drives one player for the given wall-clock duration: an action
// connection to the cloud (move commands toward wandering targets) and a
// stream subscription at the supernode. Response latency is measured from
// action issue to the arrival of the first segment stamped with it.
//
// Deprecated: prefer NewPlayer(Config{Role: RolePlayer, ...}).Run(duration).
func RunPlayer(cfg PlayerConfig, duration time.Duration) (PlayerReport, error) {
	if err := cfg.Validate(); err != nil {
		return PlayerReport{}, err
	}
	g, err := game.ByID(cfg.GameID)
	if err != nil {
		return PlayerReport{}, err
	}

	// Action connection.
	actCtx, actCancel := context.WithTimeout(context.Background(), dialDeadline)
	actConn, err := dialBackoff(actCtx, cfg.CloudAddr, cfg.ID)
	actCancel()
	if err != nil {
		return PlayerReport{}, err
	}
	var actStats *obs.LinkStats
	if cfg.Obs != nil {
		actStats = obs.LinkStatsIn(cfg.Obs, fmt.Sprintf("p%d_to_cloud", cfg.ID))
	}
	actLink := NewLinkObs(actConn, cfg.ActionDelay, actStats)
	defer actLink.Close()
	if !actLink.Send(proto.THello, proto.MarshalHello(proto.Hello{Role: proto.RolePlayerActions, ID: cfg.ID})) {
		return PlayerReport{}, fmt.Errorf("live: hello to cloud failed")
	}
	if typ, _, err := actLink.Recv(); err != nil || typ != proto.TAck {
		return PlayerReport{}, fmt.Errorf("live: cloud rejected player: %v", err)
	}

	// Stream subscription, with backup supernodes as failover targets.
	join := proto.JoinStream{
		Player: cfg.ID,
		GameID: int32(cfg.GameID),
		ViewX:  5000, ViewY: 5000, ViewR: cfg.ViewRadius,
		LevelCap: uint8(g.StartLevel),
		Ticket:   cfg.Ticket,
	}
	addrs := append([]string{cfg.StreamAddr}, cfg.BackupAddrs...)
	// The join frame is encoded once per ticket: the TCP path writes it as
	// the connection's first frame, the datagram path re-sends the identical
	// bytes as its keepalive beacon; a retarget re-encodes it with the
	// replacement ticket.
	joinFrame := proto.AppendFrame(nil, proto.TJoinStream, proto.MarshalJoinStream(join))
	dgramMode := cfg.Transport == TransportUDP
	subscribe := func(addr string, timeout time.Duration, dgram bool, frame []byte) (net.Conn, error) {
		if dgram {
			return subscribeDatagram(addr, frame, timeout)
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		conn, err := dialBackoff(ctx, addr, cfg.ID)
		cancel()
		if err != nil {
			return nil, err
		}
		if _, err := conn.Write(frame); err != nil {
			conn.Close()
			return nil, err
		}
		conn.SetReadDeadline(time.Now().Add(dialDeadline))
		typ, payload, err := proto.ReadFrame(conn)
		if err != nil || typ != proto.TAck {
			conn.Close()
			return nil, fmt.Errorf("live: supernode %s rejected join: %v", addr, err)
		}
		if ack, aerr := proto.UnmarshalAck(payload); aerr == nil && ack.Code != proto.AckOK {
			conn.Close()
			return nil, fmt.Errorf("live: supernode %s refused join (code %d)", addr, ack.Code)
		}
		return conn, nil
	}

	var (
		mu        sync.Mutex
		issuedAt  = map[time.Duration]time.Time{}
		report    PlayerReport
		responses []time.Duration
		lastSeen  time.Duration
	)

	addrIdx := 0
	var strConn net.Conn
	strDgram := false
	for i := range addrs {
		conn, serr := subscribe(addrs[i], dialDeadline, dgramMode, joinFrame)
		if serr == nil {
			strConn, addrIdx, strDgram = conn, i, dgramMode
			break
		}
		report.FailoverErrors = append(report.FailoverErrors,
			fmt.Sprintf("%s: %v", addrs[i], serr))
		err = serr
	}
	if strConn == nil {
		// Every supernode refused before the session even began: stream
		// straight from the cloud as the last resort (always TCP).
		conn, cerr := subscribe(cfg.CloudAddr, dialDeadline, false, joinFrame)
		if cerr != nil {
			report.FailoverErrors = append(report.FailoverErrors,
				fmt.Sprintf("%s (cloud): %v", cfg.CloudAddr, cerr))
			return report, err
		}
		strConn = conn
		report.CloudFallback = true
	}
	defer func() { strConn.Close() }()

	// Action generator: wander between deterministic targets.
	stopActions := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(cfg.ActionEvery)
		defer ticker.Stop()
		h := uint64(cfg.ID)*2654435761 + 12345
		for {
			select {
			case <-stopActions:
				return
			case <-ticker.C:
				h = h*6364136223846793005 + 1442695040888963407
				target := world.Vec2{
					X: float64(h%10000) / 10000 * 10000,
					Y: float64((h>>20)%10000) / 10000 * 10000,
				}
				stamp := time.Duration(time.Now().UnixNano())
				mu.Lock()
				issuedAt[stamp] = time.Now()
				report.Actions++
				mu.Unlock()
				actLink.Send(proto.TAction, proto.MarshalAction(proto.Action{
					Player: cfg.ID,
					Issued: stamp,
					Act:    world.Action{Player: cfg.ID, Kind: world.ActionMove, Target: target},
				}))
			}
		}
	}()

	// Segment receiver. A mid-run stream death fails over through the
	// backup ring with short per-candidate dials, then to the cloud's
	// direct stream; the session only ends early when even the cloud
	// refuses. Datagram streams have no connection to die, so liveness is
	// explicit: short read deadlines drive periodic keepalive re-joins
	// (which also silently re-register after a supernode respawn), and
	// silence past udpStaleAfter is treated as stream death.
	deadline := time.Now().Add(duration)
	if !strDgram {
		strConn.SetReadDeadline(deadline.Add(2 * time.Second))
	}
	var rbuf []byte
	lastRecv := time.Now()
	lastKA := time.Now()
	for time.Now().Before(deadline) {
		if cfg.Retarget != nil {
			select {
			case tgt, ok := <-cfg.Retarget:
				if !ok {
					cfg.Retarget = nil
					break
				}
				// Make-before-break: subscribe to the replacement worker
				// first; only a successful join drops the old stream, so a
				// failed retarget costs nothing.
				newDgram := dgramMode
				if tgt.Transport != "" {
					newDgram = tgt.Transport == TransportUDP
				}
				njoin := join
				njoin.Ticket = tgt.Ticket
				nframe := proto.AppendFrame(nil, proto.TJoinStream, proto.MarshalJoinStream(njoin))
				conn, serr := subscribe(tgt.Addr, failoverDialDeadline, newDgram, nframe)
				if serr != nil {
					mu.Lock()
					report.FailoverErrors = append(report.FailoverErrors,
						fmt.Sprintf("%s (retarget): %v", tgt.Addr, serr))
					mu.Unlock()
					break
				}
				old := strConn
				strConn, strDgram, dgramMode = conn, newDgram, newDgram
				joinFrame = nframe
				addrs = append([]string{tgt.Addr}, tgt.Backups...)
				addrIdx = 0
				if !strDgram {
					strConn.SetReadDeadline(deadline.Add(2 * time.Second))
				}
				lastRecv = time.Now()
				lastKA = lastRecv
				old.Close()
				mu.Lock()
				report.Handoffs++
				mu.Unlock()
			default:
			}
		}
		if strDgram {
			strConn.SetReadDeadline(time.Now().Add(udpKeepaliveEvery))
		}
		typ, payload, err := readStreamFrame(strConn, strDgram, &rbuf)
		if err != nil {
			if !time.Now().Before(deadline) {
				break
			}
			if strDgram {
				if ne, ok := err.(net.Error); ok && ne.Timeout() && time.Since(lastRecv) < udpStaleAfter {
					// Quiet but not dead yet: beacon a re-join and keep
					// listening.
					strConn.Write(joinFrame)
					lastKA = time.Now()
					continue
				}
			}
			strConn.Close()
			var next net.Conn
			nextDgram := false
			fromCloud := false
			for i := 1; i <= len(addrs) && next == nil; i++ {
				if !time.Now().Before(deadline) {
					break
				}
				cand := addrs[(addrIdx+i)%len(addrs)]
				conn, serr := subscribe(cand, failoverDialDeadline, dgramMode, joinFrame)
				if serr != nil {
					mu.Lock()
					report.FailoverErrors = append(report.FailoverErrors,
						fmt.Sprintf("%s: %v", cand, serr))
					mu.Unlock()
					continue
				}
				next = conn
				nextDgram = dgramMode
				addrIdx = (addrIdx + i) % len(addrs)
			}
			if next == nil && time.Now().Before(deadline) {
				// Whole ring down: stream straight from the cloud.
				conn, cerr := subscribe(cfg.CloudAddr, dialDeadline, false, joinFrame)
				if cerr != nil {
					mu.Lock()
					report.FailoverErrors = append(report.FailoverErrors,
						fmt.Sprintf("%s (cloud): %v", cfg.CloudAddr, cerr))
					mu.Unlock()
				} else {
					next = conn
					fromCloud = true
				}
			}
			if next == nil {
				break
			}
			strConn, strDgram = next, nextDgram
			if !strDgram {
				strConn.SetReadDeadline(deadline.Add(2 * time.Second))
			}
			lastRecv = time.Now()
			lastKA = lastRecv
			mu.Lock()
			report.Failovers++
			if fromCloud {
				report.CloudFallback = true
			}
			mu.Unlock()
			continue
		}
		lastRecv = time.Now()
		if strDgram && lastRecv.Sub(lastKA) >= udpKeepaliveEvery {
			// Segments flowing doesn't refresh the supernode's liveness
			// record — only joins do — so beacon on a timer regardless.
			strConn.Write(joinFrame)
			lastKA = lastRecv
		}
		if typ != proto.TSegment {
			continue
		}
		// seg.Payload borrows the read buffer (no copy on the receive hot
		// path); only its length is read before the next frame overwrites
		// it.
		var seg proto.Segment
		if proto.UnmarshalSegmentInto(payload, &seg) != nil {
			continue
		}
		mu.Lock()
		report.Segments++
		report.Bytes += int64(len(seg.Payload))
		if seg.ActionIssued > lastSeen {
			lastSeen = seg.ActionIssued
			if t0, ok := issuedAt[seg.ActionIssued]; ok {
				responses = append(responses, time.Since(t0))
				delete(issuedAt, seg.ActionIssued)
			}
		}
		mu.Unlock()
	}

	close(stopActions)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(responses) > 0 {
		sort.Slice(responses, func(i, j int) bool { return responses[i] < responses[j] })
		var sum time.Duration
		within := 0
		for _, r := range responses {
			sum += r
			if r-cfg.UploadAllowance <= g.ResponseRequirement() {
				within++
			}
		}
		report.MeanResponse = sum / time.Duration(len(responses))
		p95 := int(float64(len(responses)) * 0.95)
		if p95 >= len(responses) {
			p95 = len(responses) - 1
		}
		report.P95Response = responses[p95]
		report.WithinBudget = float64(within) / float64(len(responses))
	}
	return report, nil
}

// readStreamFrame reads one frame from a stream or datagram connection into
// the caller's reuse buffer. The returned payload aliases *buf and is valid
// only until the next call.
func readStreamFrame(conn net.Conn, dgram bool, buf *[]byte) (proto.MsgType, []byte, error) {
	if !dgram {
		return proto.ReadFrameReuse(conn, buf)
	}
	if cap(*buf) < proto.FrameHeaderLen+proto.MaxDatagram {
		*buf = make([]byte, proto.FrameHeaderLen+proto.MaxDatagram)
	}
	b := (*buf)[:cap(*buf)]
	n, err := conn.Read(b)
	if err != nil {
		return 0, nil, err
	}
	return proto.ParseDatagram(b[:n])
}

// subscribeDatagram joins a datagram supernode stream: it sends the join
// frame and retries on short read deadlines until the supernode acks (joins
// and acks are datagrams — either can be lost). A non-zero ack code is a
// rejection; anything else keeps retrying until timeout.
func subscribeDatagram(addr string, joinFrame []byte, timeout time.Duration) (net.Conn, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	buf := make([]byte, proto.FrameHeaderLen+proto.MaxDatagram)
	for time.Now().Before(deadline) {
		if _, err := conn.Write(joinFrame); err != nil {
			// A dead target surfaces as ECONNREFUSED on a connected UDP
			// socket; keep beaconing until the deadline in case it comes
			// back (supernode respawn during failover).
			time.Sleep(50 * time.Millisecond)
			continue
		}
		conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
		n, rerr := conn.Read(buf)
		if rerr != nil {
			if ne, ok := rerr.(net.Error); ok && ne.Timeout() {
				continue // join or ack datagram lost: re-send
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		typ, payload, perr := proto.ParseDatagram(buf[:n])
		if perr != nil {
			continue
		}
		switch typ {
		case proto.TAck:
			ack, aerr := proto.UnmarshalAck(payload)
			if aerr != nil {
				continue
			}
			if ack.Code != 0 {
				conn.Close()
				return nil, fmt.Errorf("live: supernode %s rejected join (code %d)", addr, ack.Code)
			}
			conn.SetReadDeadline(time.Time{})
			return conn, nil
		case proto.TSegment:
			// A segment beat the ack here: the subscription is live.
			conn.SetReadDeadline(time.Time{})
			return conn, nil
		}
	}
	conn.Close()
	return nil, fmt.Errorf("live: supernode %s: datagram join timed out after %v", addr, timeout)
}
