package live

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"cloudfog/internal/health"
	"cloudfog/internal/world"
)

// TestConfigJSONRoundTrip pins the serializability contract: one JSON
// document per role, decoding back to the identical config.
func TestConfigJSONRoundTrip(t *testing.T) {
	cfgs := []Config{
		{
			Role: RoleCloud, Addr: "127.0.0.1:0",
			World: world.DefaultConfig(), Tick: 50 * time.Millisecond,
			DirectFPS: 10,
			Detector:  health.DetectorConfig{Mode: health.ModePhi, Interval: 100 * time.Millisecond},
		},
		{
			Role: RoleSupernode, ID: 3, Addr: "127.0.0.1:0",
			CloudAddr: "127.0.0.1:9000", CoordAddr: "127.0.0.1:9001",
			Transport: TransportUDP, FPS: 30,
			X: 2500, Y: 7500, Capacity: 64, ReportEvery: 100 * time.Millisecond,
		},
		{
			Role: RolePlayer, ID: 11, GameID: 1,
			CloudAddr: "127.0.0.1:9000", CoordAddr: "127.0.0.1:9001",
			ActionEvery: DefaultActionEvery, ViewRadius: DefaultViewRadius,
			BackupAddrs: []string{"127.0.0.1:9100", "127.0.0.1:9101"},
		},
		{
			Role: RoleCoordinator, Addr: "127.0.0.1:0",
			ShortlistK: 4, Backups: 2, TicketKey: "secret",
			Overload: health.DefaultOverloadConfig(),
		},
	}
	for _, cfg := range cfgs {
		blob, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("%s: marshal: %v", cfg.Role, err)
		}
		var back Config
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", cfg.Role, err)
		}
		if !reflect.DeepEqual(cfg, back) {
			t.Fatalf("%s: round trip drifted:\n  in:  %+v\n  out: %+v", cfg.Role, cfg, back)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("%s: decoded config fails validation: %v", cfg.Role, err)
		}
	}
}

// TestUnifiedConfigValidation exercises the single role-dispatched Validate.
func TestUnifiedConfigValidation(t *testing.T) {
	valid := map[RoleKind]Config{
		RoleCloud:     {Role: RoleCloud, Addr: "127.0.0.1:0", Tick: 50 * time.Millisecond, DirectFPS: 10},
		RoleSupernode: {Role: RoleSupernode, ID: 1, Addr: "127.0.0.1:0", CloudAddr: "x:1", FPS: 30},
		RolePlayer: {Role: RolePlayer, ID: 2, GameID: 1, CloudAddr: "x:1", StreamAddr: "x:2",
			ActionEvery: DefaultActionEvery, ViewRadius: DefaultViewRadius},
		RoleCoordinator: {Role: RoleCoordinator, Addr: "127.0.0.1:0"},
	}
	for role, cfg := range valid {
		if err := cfg.Validate(); err != nil {
			t.Errorf("valid %s config rejected: %v", role, err)
		}
	}

	cases := []struct {
		name string
		cfg  Config
	}{
		{"unknown role", Config{Role: "gateway", Addr: "x:1"}},
		{"bad transport", Config{Role: RoleCloud, Addr: "x:1", Tick: time.Millisecond, DirectFPS: 1, Transport: "sctp"}},
		{"cloud no addr", Config{Role: RoleCloud, Tick: time.Millisecond, DirectFPS: 1}},
		{"supernode no cloud", Config{Role: RoleSupernode, ID: 1, Addr: "x:1", FPS: 30}},
		{"worker no capacity", Config{Role: RoleSupernode, ID: 1, Addr: "x:1", CloudAddr: "x:2",
			FPS: 30, CoordAddr: "x:3", ReportEvery: time.Millisecond}},
		{"worker no report period", Config{Role: RoleSupernode, ID: 1, Addr: "x:1", CloudAddr: "x:2",
			FPS: 30, CoordAddr: "x:3", Capacity: 8}},
		{"player no stream or coord", Config{Role: RolePlayer, ID: 2, GameID: 1, CloudAddr: "x:1",
			ActionEvery: DefaultActionEvery, ViewRadius: DefaultViewRadius}},
		{"coordinator no addr", Config{Role: RoleCoordinator}},
		{"coordinator negative shortlist", Config{Role: RoleCoordinator, Addr: "x:1", ShortlistK: -1}},
		{"coordinator negative backups", Config{Role: RoleCoordinator, Addr: "x:1", Backups: -1}},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.cfg)
		}
	}

	// A coordinator-placed player needs no StreamAddr: the ticket names one.
	placed := Config{Role: RolePlayer, ID: 2, GameID: 1, CloudAddr: "x:1", CoordAddr: "x:9",
		ActionEvery: DefaultActionEvery, ViewRadius: DefaultViewRadius}
	if err := placed.Validate(); err != nil {
		t.Errorf("coordinator-placed player rejected: %v", err)
	}
}

// TestConfigConstructors drives a full cloud/supernode/player session through
// the functional-option constructors, including the Dial factory for the
// player's stream transport.
func TestConfigConstructors(t *testing.T) {
	cloud, err := NewCloud(Config{
		Role: RoleCloud, Addr: "127.0.0.1:0",
		Tick: 20 * time.Millisecond, DirectFPS: 10,
	}, WithDetector(health.DetectorConfig{Mode: health.ModeTimeout, Interval: 100 * time.Millisecond}))
	if err != nil {
		t.Fatalf("NewCloud: %v", err)
	}
	defer cloud.Close()

	sn, err := NewSupernode(Config{
		Role: RoleSupernode, ID: 1, Addr: "127.0.0.1:0",
		CloudAddr: cloud.Addr(), FPS: 60,
	}, WithTransport(TransportTCP))
	if err != nil {
		t.Fatalf("NewSupernode: %v", err)
	}
	defer sn.Close()
	if got := sn.SessionCount(); got != 0 {
		t.Fatalf("fresh supernode SessionCount = %d, want 0", got)
	}

	pcfg, err := DefaultedPlayer(Config{
		Role: RolePlayer, ID: 7, GameID: 1,
		CloudAddr: cloud.Addr(), StreamAddr: sn.Addr(),
	})
	if err != nil {
		t.Fatalf("DefaultedPlayer: %v", err)
	}
	p, err := NewPlayer(pcfg)
	if err != nil {
		t.Fatalf("NewPlayer: %v", err)
	}
	rep, err := p.Run(400 * time.Millisecond)
	if err != nil {
		t.Fatalf("player run: %v", err)
	}
	if rep.Segments == 0 {
		t.Fatal("constructor-built player streamed zero segments")
	}
}
