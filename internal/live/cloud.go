package live

import (
	"fmt"
	"net"
	"sync"
	"time"

	"cloudfog/internal/obs"
	"cloudfog/internal/proto"
	"cloudfog/internal/world"
)

// CloudConfig parameterizes the live cloud server. Validate rejects
// incomplete configurations instead of papering over them with defaults.
type CloudConfig struct {
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// World configures the authoritative virtual world.
	World world.Config
	// Tick is the world update cadence.
	Tick time.Duration
	// DelayFor, when non-nil, returns the one-way delay the cloud injects
	// toward a subscribing supernode (keyed by the supernode's hello ID).
	DelayFor func(snID int64) time.Duration
	// Obs, when non-nil, registers per-supernode update-link metrics
	// (cloudfog_link_*{link="cloud_to_sn<ID>"}).
	Obs *obs.Registry
}

// Validate reports configuration errors.
func (c CloudConfig) Validate() error {
	switch {
	case c.Addr == "":
		return fmt.Errorf("live: CloudConfig.Addr is empty (use \"127.0.0.1:0\" for an ephemeral port)")
	case c.Tick <= 0:
		return fmt.Errorf("live: CloudConfig.Tick %v is not positive", c.Tick)
	}
	return nil
}

// Cloud is the live authoritative game server: it accepts player action
// connections and supernode update subscriptions, ticks the virtual world
// at a fixed rate, and ships deltas (plus the freshest action stamp per
// player) to every subscribed supernode.
type Cloud struct {
	cfg CloudConfig

	ln net.Listener

	mu      sync.Mutex
	w       *world.World
	pending []world.Action
	stamps  map[int64]time.Duration // freshest Issued per player, not yet shipped
	subs    map[int64]*cloudSub
	closed  bool

	wg   sync.WaitGroup
	stop chan struct{}
}

type cloudSub struct {
	link    *Link
	version uint64
}

// StartCloud launches the cloud server described by cfg.
func StartCloud(cfg CloudConfig) (*Cloud, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", cfg.Addr, err)
	}
	c := &Cloud{
		cfg:    cfg,
		ln:     ln,
		w:      world.New(cfg.World),
		stamps: make(map[int64]time.Duration),
		subs:   make(map[int64]*cloudSub),
		stop:   make(chan struct{}),
	}
	c.wg.Add(2)
	go c.accept()
	go c.loop()
	return c, nil
}

// Addr returns the cloud's listen address.
func (c *Cloud) Addr() string { return c.ln.Addr().String() }

// World grants locked access to the authoritative world (for tests and
// seeding objects).
func (c *Cloud) World(f func(w *world.World)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(c.w)
}

func (c *Cloud) accept() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go c.serveConn(conn)
	}
}

func (c *Cloud) serveConn(conn net.Conn) {
	defer c.wg.Done()
	typ, payload, err := proto.ReadFrame(conn)
	if err != nil || typ != proto.THello {
		conn.Close()
		return
	}
	hello, err := proto.UnmarshalHello(payload)
	if err != nil {
		conn.Close()
		return
	}
	switch hello.Role {
	case proto.RolePlayerActions:
		c.servePlayer(conn, hello.ID)
	case proto.RoleSupernode:
		c.serveSupernode(conn, hello.ID)
	default:
		conn.Close()
	}
}

// servePlayer ingests a player's action stream and spawns its avatar.
func (c *Cloud) servePlayer(conn net.Conn, playerID int64) {
	defer conn.Close()
	c.mu.Lock()
	if c.w.Avatar(playerID) == nil {
		// Deterministic spawn position derived from the player ID.
		b := c.cfg.World.Bounds
		x := b.Min.X + float64(uint64(playerID)*2654435761%1000)/1000*b.Width()
		y := b.Min.Y + float64(uint64(playerID)*40503%1000)/1000*b.Height()
		if _, err := c.w.SpawnAvatar(playerID, world.Vec2{X: x, Y: y}); err != nil {
			c.mu.Unlock()
			return
		}
	}
	c.mu.Unlock()
	proto.WriteFrame(conn, proto.TAck, proto.MarshalAck(proto.Ack{}))

	for {
		typ, payload, err := proto.ReadFrame(conn)
		if err != nil {
			return
		}
		if typ != proto.TAction {
			continue
		}
		a, err := proto.UnmarshalAction(payload)
		if err != nil || a.Player != playerID {
			continue
		}
		c.mu.Lock()
		c.pending = append(c.pending, a.Act)
		if a.Issued > c.stamps[playerID] {
			c.stamps[playerID] = a.Issued
		}
		c.mu.Unlock()
	}
}

// serveSupernode registers an update subscription; deltas are pushed from
// the tick loop, so this goroutine just waits for disconnect.
func (c *Cloud) serveSupernode(conn net.Conn, snID int64) {
	var delay time.Duration
	if c.cfg.DelayFor != nil {
		delay = c.cfg.DelayFor(snID)
	}
	var stats *obs.LinkStats
	if c.cfg.Obs != nil {
		stats = obs.LinkStatsIn(c.cfg.Obs, fmt.Sprintf("cloud_to_sn%d", snID))
	}
	link := NewLinkObs(conn, delay, stats)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		link.Close()
		return
	}
	// A new subscription starts from a snapshot.
	link.Send(proto.TDelta, proto.MarshalDelta(c.w.Snapshot()))
	c.subs[snID] = &cloudSub{link: link, version: c.w.Version()}
	c.mu.Unlock()

	// Block until the peer goes away.
	var buf [1]byte
	for {
		if _, err := conn.Read(buf[:]); err != nil {
			break
		}
	}
	c.mu.Lock()
	if sub, ok := c.subs[snID]; ok && sub.link == link {
		delete(c.subs, snID)
	}
	c.mu.Unlock()
	link.Close()
}

// loop ticks the world at the configured rate and fans deltas out.
func (c *Cloud) loop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.tickOnce()
		}
	}
}

func (c *Cloud) tickOnce() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Apply(c.pending)
	c.pending = c.pending[:0]
	c.w.Step(c.cfg.Tick.Seconds())

	// Ship per-player action stamps, then the delta, to every supernode.
	var stampFrames [][]byte
	for player, issued := range c.stamps {
		stampFrames = append(stampFrames, proto.MarshalAction(proto.Action{
			Player: player,
			Issued: issued,
		}))
	}
	for player := range c.stamps {
		delete(c.stamps, player)
	}
	minVersion := c.w.Version()
	for _, sub := range c.subs {
		for _, f := range stampFrames {
			sub.link.Send(proto.TAction, f)
		}
		d := c.w.DeltaSince(sub.version)
		sub.link.Send(proto.TDelta, proto.MarshalDelta(d))
		sub.version = d.ToVersion
		if sub.version < minVersion {
			minVersion = sub.version
		}
	}
	c.w.Compact(minVersion)
}

// Close shuts the cloud down.
func (c *Cloud) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	subs := make([]*cloudSub, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s)
	}
	c.mu.Unlock()

	close(c.stop)
	c.ln.Close()
	for _, s := range subs {
		s.link.Close()
	}
	c.wg.Wait()
}
