package live

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/health"
	"cloudfog/internal/obs"
	"cloudfog/internal/proto"
	"cloudfog/internal/world"
)

// CloudConfig parameterizes the live cloud server. Validate rejects
// incomplete configurations instead of papering over them with defaults.
//
// Deprecated: new code should build a role-tagged Config (Role: RoleCloud)
// and use NewCloud; CloudConfig remains as the internal view the unified
// config projects onto.
type CloudConfig struct {
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// World configures the authoritative virtual world.
	World world.Config
	// Tick is the world update cadence.
	Tick time.Duration
	// DelayFor, when non-nil, returns the one-way delay the cloud injects
	// toward a subscribing supernode (keyed by the supernode's hello ID).
	DelayFor func(snID int64) time.Duration
	// Detector, when Mode != health.ModeOracle, runs heartbeat failure
	// detection over supernode subscriptions: supernodes send THeartbeat
	// frames and the cloud times the gaps. Detector state survives a
	// dropped connection, so a vanished supernode is detected by its
	// silence rather than forgotten. Zero fields use the health defaults.
	Detector health.DetectorConfig
	// DirectFPS, when positive, lets the cloud stream segments directly to
	// players that connect with a TJoinStream first frame — the last-resort
	// fallback when no supernode will serve them. Zero disables it.
	DirectFPS int
	// Obs, when non-nil, registers per-supernode update-link metrics
	// (cloudfog_link_*{link="cloud_to_sn<ID>"}).
	Obs *obs.Registry
}

// Validate reports configuration errors.
func (c CloudConfig) Validate() error {
	switch {
	case c.Addr == "":
		return fmt.Errorf("live: CloudConfig.Addr is empty (use \"127.0.0.1:0\" for an ephemeral port)")
	case c.Tick <= 0:
		return fmt.Errorf("live: CloudConfig.Tick %v is not positive", c.Tick)
	case c.DirectFPS < 0:
		return fmt.Errorf("live: CloudConfig.DirectFPS %d is negative", c.DirectFPS)
	}
	return nil
}

// Cloud is the live authoritative game server: it accepts player action
// connections and supernode update subscriptions, ticks the virtual world
// at a fixed rate, and ships deltas (plus the freshest action stamp per
// player) to every subscribed supernode.
type Cloud struct {
	cfg CloudConfig

	ln net.Listener
	// start anchors the wall-clock offsets fed to the failure detectors;
	// immutable after StartCloud.
	start time.Time

	mu      sync.Mutex
	w       *world.World
	pending []world.Action
	stamps  map[int64]time.Duration // freshest Issued per player, not yet shipped
	// lastStamp keeps the freshest Issued per player across ticks for the
	// direct-stream fallback to echo.
	lastStamp map[int64]time.Duration
	subs      map[int64]*cloudSub
	// dets holds per-supernode failure detectors; entries survive dropped
	// connections so silence keeps accruing after a crash.
	dets       map[int64]*snHealth
	directs    map[*Link]struct{} // live direct player streams
	hbRecv     int64
	detections int64
	falsePos   int64
	closed     bool
	// tickOnce encode arenas (mu-guarded): stamp frames are appended
	// back-to-back into encScratch with stampOffs marking boundaries, and
	// each delta is encoded once into deltaScratch. Send copies payloads
	// synchronously, so the reused storage is safe to share across subs
	// and ticks.
	encScratch   []byte
	stampOffs    []int
	deltaScratch []byte

	wg   sync.WaitGroup
	stop chan struct{}
}

type cloudSub struct {
	link    *Link
	version uint64
}

// snHealth is one supernode's cloud-side liveness state.
type snHealth struct {
	det       *health.Detector
	suspected bool
}

// StartCloud launches the cloud server described by cfg.
//
// Deprecated: prefer NewCloud(Config{Role: RoleCloud, ...}, opts...).
func StartCloud(cfg CloudConfig) (*Cloud, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", cfg.Addr, err)
	}
	c := &Cloud{
		cfg:       cfg,
		ln:        ln,
		start:     time.Now(),
		w:         world.New(cfg.World),
		stamps:    make(map[int64]time.Duration),
		lastStamp: make(map[int64]time.Duration),
		subs:      make(map[int64]*cloudSub),
		dets:      make(map[int64]*snHealth),
		directs:   make(map[*Link]struct{}),
		stop:      make(chan struct{}),
	}
	c.wg.Add(2)
	go c.accept()
	go c.loop()
	return c, nil
}

// Addr returns the cloud's listen address.
func (c *Cloud) Addr() string { return c.ln.Addr().String() }

// World grants locked access to the authoritative world (for tests and
// seeding objects).
func (c *Cloud) World(f func(w *world.World)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(c.w)
}

func (c *Cloud) accept() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go c.serveConn(conn)
	}
}

func (c *Cloud) serveConn(conn net.Conn) {
	defer c.wg.Done()
	typ, payload, err := proto.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return
	}
	switch typ {
	case proto.THello:
		hello, err := proto.UnmarshalHello(payload)
		if err != nil {
			conn.Close()
			return
		}
		switch hello.Role {
		case proto.RolePlayerActions:
			c.servePlayer(conn, hello.ID)
		case proto.RoleSupernode:
			c.serveSupernode(conn, hello.ID)
		default:
			conn.Close()
		}
	case proto.TJoinStream:
		c.serveDirectStream(conn, payload)
	default:
		conn.Close()
	}
}

// servePlayer ingests a player's action stream and spawns its avatar.
func (c *Cloud) servePlayer(conn net.Conn, playerID int64) {
	defer conn.Close()
	c.mu.Lock()
	if c.w.Avatar(playerID) == nil {
		// Deterministic spawn position derived from the player ID.
		b := c.cfg.World.Bounds
		x := b.Min.X + float64(uint64(playerID)*2654435761%1000)/1000*b.Width()
		y := b.Min.Y + float64(uint64(playerID)*40503%1000)/1000*b.Height()
		if _, err := c.w.SpawnAvatar(playerID, world.Vec2{X: x, Y: y}); err != nil {
			c.mu.Unlock()
			return
		}
	}
	c.mu.Unlock()
	proto.WriteFrame(conn, proto.TAck, proto.MarshalAck(proto.Ack{}))

	var rbuf []byte
	for {
		typ, payload, err := proto.ReadFrameReuse(conn, &rbuf)
		if err != nil {
			return
		}
		if typ != proto.TAction {
			continue
		}
		a, err := proto.UnmarshalAction(payload)
		if err != nil || a.Player != playerID {
			continue
		}
		c.mu.Lock()
		c.pending = append(c.pending, a.Act)
		if a.Issued > c.stamps[playerID] {
			c.stamps[playerID] = a.Issued
		}
		if a.Issued > c.lastStamp[playerID] {
			c.lastStamp[playerID] = a.Issued
		}
		c.mu.Unlock()
	}
}

// serveSupernode registers an update subscription; deltas are pushed from
// the tick loop, so this goroutine just waits for disconnect.
func (c *Cloud) serveSupernode(conn net.Conn, snID int64) {
	var delay time.Duration
	if c.cfg.DelayFor != nil {
		delay = c.cfg.DelayFor(snID)
	}
	var stats *obs.LinkStats
	if c.cfg.Obs != nil {
		stats = obs.LinkStatsIn(c.cfg.Obs, fmt.Sprintf("cloud_to_sn%d", snID))
	}
	link := NewLinkObs(conn, delay, stats)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		link.Close()
		return
	}
	// A new subscription starts from a snapshot.
	link.Send(proto.TDelta, proto.MarshalDelta(c.w.Snapshot()))
	c.subs[snID] = &cloudSub{link: link, version: c.w.Version()}
	var hd *snHealth
	if c.cfg.Detector.Mode != health.ModeOracle {
		hd = c.dets[snID]
		if hd == nil {
			hd = &snHealth{det: health.NewDetector(c.cfg.Detector)}
			c.dets[snID] = hd
		}
		// A (re)subscribing supernode is a fresh instance: re-base its
		// silence clock and clear any standing suspicion.
		hd.det.Reset(time.Since(c.start))
		hd.suspected = false
	}
	c.mu.Unlock()

	// Consume the peer's frames (heartbeats) until it goes away. Its
	// detector entry survives the disconnect: silence keeps accruing.
	for {
		typ, payload, err := link.Recv()
		if err != nil {
			break
		}
		if typ != proto.THeartbeat || hd == nil {
			continue
		}
		hb, err := proto.UnmarshalHeartbeat(payload)
		if err != nil || hb.ID != snID {
			continue
		}
		c.mu.Lock()
		c.hbRecv++
		hd.det.Heartbeat(time.Since(c.start))
		if hd.suspected {
			hd.suspected = false
			c.falsePos++
		}
		c.mu.Unlock()
	}
	c.mu.Lock()
	if sub, ok := c.subs[snID]; ok && sub.link == link {
		delete(c.subs, snID)
	}
	c.mu.Unlock()
	link.Close()
}

// serveDirectStream streams segments straight from the cloud to a player
// whose first frame is a TJoinStream — the last-resort fallback when every
// supernode in the player's ring is unreachable. The stream is a plain
// fixed-rate encode of the requested game's ladder level (capped by the
// join's LevelCap), stamped with the player's freshest action so response
// latency still measures end to end.
func (c *Cloud) serveDirectStream(conn net.Conn, payload []byte) {
	if c.cfg.DirectFPS <= 0 {
		conn.Close()
		return
	}
	join, err := proto.UnmarshalJoinStream(payload)
	if err != nil {
		conn.Close()
		return
	}
	g, err := game.ByID(int(join.GameID))
	if err != nil {
		conn.Close()
		return
	}
	link := NewLinkObs(conn, 0, nil)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		link.Close()
		return
	}
	c.directs[link] = struct{}{}
	c.mu.Unlock()
	link.Send(proto.TAck, proto.MarshalAck(proto.Ack{}))

	level := g.StartLevel
	if cap := int(join.LevelCap); cap > 0 && cap < level {
		level = cap
	}
	lv, err := game.LevelAt(level)
	if err != nil {
		lv = g.Quality()
	}
	segBytes := renderSize(int(lv.Bitrate) / c.cfg.DirectFPS / 8)

	ticker := time.NewTicker(time.Second / time.Duration(c.cfg.DirectFPS))
	defer ticker.Stop()
	var seq int64
	for link.Err() == nil {
		select {
		case <-c.stop:
			goto done
		case <-ticker.C:
		}
		c.mu.Lock()
		stamp := c.lastStamp[join.Player]
		c.mu.Unlock()
		seg := proto.Segment{
			Player:       join.Player,
			Seq:          seq,
			Level:        uint8(level),
			ActionIssued: stamp,
		}
		seq++
		// Render straight into a pooled wire frame (no Marshal copy).
		frame := link.AcquireFrame(proto.TSegment)
		frame = proto.AppendSegmentHeader(frame, seg, segBytes)
		frame = appendRenderPayload(frame, segBytes, nil)
		link.SendFrame(frame)
	}
done:
	c.mu.Lock()
	delete(c.directs, link)
	c.mu.Unlock()
	link.Close()
}

// HeartbeatsReceived returns how many supernode heartbeats the cloud's
// detector has ingested.
func (c *Cloud) HeartbeatsReceived() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hbRecv
}

// DetectedFailures returns the IDs of supernodes currently suspected dead,
// sorted.
func (c *Cloud) DetectedFailures() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ids []int64
	for id, hd := range c.dets {
		if hd.suspected {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// FailureDetections returns the cumulative detection and false-positive
// counts (a false positive is a suspicion cleared by a later heartbeat on
// the same connection).
func (c *Cloud) FailureDetections() (detections, falsePositives int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.detections, c.falsePos
}

// loop ticks the world at the configured rate and fans deltas out.
func (c *Cloud) loop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.tickOnce()
		}
	}
}

func (c *Cloud) tickOnce() {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Evaluate the failure detectors before the world step: a supernode
	// whose silence crossed the threshold is flagged exactly once until a
	// fresh heartbeat (a false positive) or a re-subscribe clears it.
	if len(c.dets) > 0 {
		now := time.Since(c.start)
		for _, hd := range c.dets {
			if hd.suspected || !hd.det.Suspect(now) {
				continue
			}
			hd.suspected = true
			c.detections++
		}
	}
	c.w.Apply(c.pending)
	c.pending = c.pending[:0]
	c.w.Step(c.cfg.Tick.Seconds())

	// Ship per-player action stamps, then the delta, to every supernode.
	// Stamp payloads are encoded once into the reused arena; subslices are
	// safe to hand to every sub because Send copies synchronously.
	c.encScratch = c.encScratch[:0]
	c.stampOffs = c.stampOffs[:0]
	for player, issued := range c.stamps {
		c.stampOffs = append(c.stampOffs, len(c.encScratch))
		c.encScratch = proto.AppendAction(c.encScratch, proto.Action{
			Player: player,
			Issued: issued,
		})
	}
	c.stampOffs = append(c.stampOffs, len(c.encScratch))
	for player := range c.stamps {
		delete(c.stamps, player)
	}
	minVersion := c.w.Version()
	for _, sub := range c.subs {
		for i := 0; i+1 < len(c.stampOffs); i++ {
			sub.link.Send(proto.TAction, c.encScratch[c.stampOffs[i]:c.stampOffs[i+1]])
		}
		d := c.w.DeltaSince(sub.version)
		c.deltaScratch = proto.AppendDelta(c.deltaScratch[:0], d)
		sub.link.Send(proto.TDelta, c.deltaScratch)
		sub.version = d.ToVersion
		if sub.version < minVersion {
			minVersion = sub.version
		}
	}
	c.w.Compact(minVersion)
}

// Close shuts the cloud down.
func (c *Cloud) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	subs := make([]*cloudSub, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s)
	}
	c.mu.Unlock()

	close(c.stop)
	c.ln.Close()
	for _, s := range subs {
		s.link.Close()
	}
	c.wg.Wait()
}
