package live

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/obs"
	"cloudfog/internal/proto"
	"cloudfog/internal/world"
)

// Transport mode names for SupernodeConfig.Transport and
// PlayerConfig.Transport. TCP is the reliable stream default; UDP streams
// segments as datagrams — stale frames are dropped by the network instead
// of head-of-line blocking behind retransmits (the paper's Eq. 14 dropping
// policy happening naturally).
const (
	TransportTCP = "tcp"
	TransportUDP = "udp"
)

const (
	// udpExpiry is how long a supernode keeps a datagram player without
	// hearing a keepalive re-join before reclaiming the stream.
	udpExpiry = 2 * time.Second
	// udpKeepaliveEvery is the player-side re-join beacon period; it also
	// silently re-registers the player after a supernode respawn.
	udpKeepaliveEvery = 500 * time.Millisecond
	// udpStaleAfter is how long a datagram player tolerates stream silence
	// (re-sending joins meanwhile) before declaring the stream dead and
	// entering the failover path.
	udpStaleAfter = 1600 * time.Millisecond
)

func validTransport(t string) bool {
	return t == "" || t == TransportTCP || t == TransportUDP
}

// SupernodeConfig parameterizes a live fog supernode. Validate rejects
// incomplete configurations instead of papering over them with defaults.
//
// Deprecated: new code should build a role-tagged Config (Role:
// RoleSupernode) and use NewSupernode; SupernodeConfig remains as the
// internal view the unified config projects onto.
type SupernodeConfig struct {
	// ID is the supernode's hello identity at the cloud.
	ID int64
	// CloudAddr is the cloud server to subscribe to.
	CloudAddr string
	// Addr is the player-facing listen address ("127.0.0.1:0" for an
	// ephemeral port).
	Addr string
	// Transport selects the player-facing stream transport: TransportTCP
	// (default when empty) or TransportUDP. The cloud link is always TCP.
	Transport string
	// DelayToCloud is injected on the supernode's outbound hello/keepalive
	// path; the cloud injects the update-path delay via its own DelayFor.
	DelayToCloud time.Duration
	// FPS is the per-player segment rate.
	FPS int
	// HeartbeatEvery, when positive, sends THeartbeat liveness beacons on
	// the cloud link at this period — the cloud's failure detector times
	// the gaps between arrivals.
	HeartbeatEvery time.Duration
	// DelayFor, when non-nil, returns the one-way delay injected toward a
	// player's video stream.
	DelayFor func(playerID int64) time.Duration
	// Obs, when non-nil, registers the cloud-update link and each player
	// stream link (cloudfog_link_*{link="sn<ID>_to_p<player>"}).
	Obs *obs.Registry
	// JoinGate, when non-nil, vets every join — the initial subscription
	// and every datagram keepalive re-join — and returns an Ack code:
	// proto.AckOK admits, anything else refuses the join and the code is
	// reported to the player. known is true when the player already has a
	// live stream here (a lease-enforcing worker in partition safe mode
	// keeps serving known players but refuses new placements).
	JoinGate func(join proto.JoinStream, known bool) uint32
}

// Validate reports configuration errors.
func (c SupernodeConfig) Validate() error {
	switch {
	case c.CloudAddr == "":
		return fmt.Errorf("live: SupernodeConfig.CloudAddr is empty")
	case c.Addr == "":
		return fmt.Errorf("live: SupernodeConfig.Addr is empty (use \"127.0.0.1:0\" for an ephemeral port)")
	case c.DelayToCloud < 0:
		return fmt.Errorf("live: SupernodeConfig.DelayToCloud %v is negative", c.DelayToCloud)
	case c.FPS <= 0:
		return fmt.Errorf("live: SupernodeConfig.FPS %d is not positive", c.FPS)
	case c.HeartbeatEvery < 0:
		return fmt.Errorf("live: SupernodeConfig.HeartbeatEvery %v is negative", c.HeartbeatEvery)
	case !validTransport(c.Transport):
		return fmt.Errorf("live: SupernodeConfig.Transport %q is not %q or %q", c.Transport, TransportTCP, TransportUDP)
	}
	return nil
}

// Supernode is a live fog node: it subscribes to the cloud's update stream,
// maintains a replica of the virtual world, and streams rendered video
// segments to its players at the frame rate.
type Supernode struct {
	cfg SupernodeConfig

	cloudLink *Link
	ln        net.Listener // TCP player transport (nil in UDP mode)
	udp       *net.UDPConn // UDP player transport (nil in TCP mode)

	mu      sync.Mutex
	replica *world.Replica
	stamps  map[int64]time.Duration
	players map[int64]*playerStream
	closed  bool
	// Current chaos impairment, applied to every player stream link and
	// inherited by streams that join while it is active.
	impExtra time.Duration
	impLoss  float64
	// deltas and deltaBytes count the update stream (the Λ grounding).
	deltas     int64
	deltaBytes int64

	wg   sync.WaitGroup
	stop chan struct{}
}

// SessionCount reports the number of live player streams — the occupancy a
// coordinator-registered worker reports upstream.
func (sn *Supernode) SessionCount() int {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return len(sn.players)
}

// SessionIDs returns the IDs of the players with live streams — the ground
// truth a re-registering worker reports so a reconnecting coordinator can
// reconcile its ledger.
func (sn *Supernode) SessionIDs() []int64 {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	ids := make([]int64, 0, len(sn.players))
	for pid := range sn.players {
		ids = append(ids, pid)
	}
	return ids
}

// hasPlayer reports whether the player currently has a live stream.
func (sn *Supernode) hasPlayer(pid int64) bool {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	_, ok := sn.players[pid]
	return ok
}

type playerStream struct {
	link Transport
	join proto.JoinStream
	g    game.Game
	seq  int64
	// Datagram-mode liveness: source address of the join and the last time
	// a keepalive re-join refreshed it (zero for TCP streams, whose death
	// is detected by the connection read).
	raddr    string
	lastSeen time.Time
}

// StartSupernode launches the supernode described by cfg: it dials the
// cloud and serves players on cfg.Addr.
//
// Deprecated: prefer NewSupernode(Config{Role: RoleSupernode, ...}, opts...).
func StartSupernode(cfg SupernodeConfig) (*Supernode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), dialDeadline)
	conn, err := dialBackoff(ctx, cfg.CloudAddr, cfg.ID)
	cancel()
	if err != nil {
		return nil, err
	}
	var cloudStats *obs.LinkStats
	if cfg.Obs != nil {
		cloudStats = obs.LinkStatsIn(cfg.Obs, fmt.Sprintf("sn%d_to_cloud", cfg.ID))
	}
	cloudLink := NewLinkObs(conn, cfg.DelayToCloud, cloudStats)
	if !cloudLink.Send(proto.THello, proto.MarshalHello(proto.Hello{Role: proto.RoleSupernode, ID: cfg.ID})) {
		cloudLink.Close()
		return nil, fmt.Errorf("live: hello to cloud failed")
	}

	var (
		ln  net.Listener
		udp *net.UDPConn
	)
	if cfg.Transport == TransportUDP {
		uaddr, uerr := net.ResolveUDPAddr("udp", cfg.Addr)
		if uerr == nil {
			udp, uerr = net.ListenUDP("udp", uaddr)
		}
		if uerr != nil {
			cloudLink.Close()
			return nil, fmt.Errorf("live: listen udp %s: %w", cfg.Addr, uerr)
		}
	} else {
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			cloudLink.Close()
			return nil, fmt.Errorf("live: listen %s: %w", cfg.Addr, err)
		}
	}
	sn := &Supernode{
		cfg:       cfg,
		cloudLink: cloudLink,
		ln:        ln,
		udp:       udp,
		replica:   world.NewReplica(),
		stamps:    make(map[int64]time.Duration),
		players:   make(map[int64]*playerStream),
		stop:      make(chan struct{}),
	}
	sn.wg.Add(3)
	go sn.consumeUpdates()
	if udp != nil {
		go sn.serveUDP()
	} else {
		go sn.accept()
	}
	go sn.renderLoop()
	if cfg.HeartbeatEvery > 0 {
		sn.wg.Add(1)
		go sn.heartbeatLoop()
	}
	return sn, nil
}

// heartbeatLoop sends periodic liveness beacons on the cloud link. When the
// supernode dies (or its link is chaos-killed), the beacons stop and the
// cloud's detector notices the silence.
func (sn *Supernode) heartbeatLoop() {
	defer sn.wg.Done()
	ticker := time.NewTicker(sn.cfg.HeartbeatEvery)
	defer ticker.Stop()
	var seq uint64
	for {
		select {
		case <-sn.stop:
			return
		case <-ticker.C:
			seq++
			sn.cloudLink.Send(proto.THeartbeat,
				proto.MarshalHeartbeat(proto.Heartbeat{ID: sn.cfg.ID, Seq: seq}))
		}
	}
}

// Addr returns the supernode's player-facing listen address.
func (sn *Supernode) Addr() string {
	if sn.udp != nil {
		return sn.udp.LocalAddr().String()
	}
	return sn.ln.Addr().String()
}

// ReplicaVersion returns the replica's current world version.
func (sn *Supernode) ReplicaVersion() uint64 {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.replica.Version()
}

// UpdateTraffic reports the update stream received so far: message count
// and bytes (the measured Λ).
func (sn *Supernode) UpdateTraffic() (msgs, bytes int64) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.deltas, sn.deltaBytes
}

// consumeUpdates applies the cloud's delta stream to the replica.
func (sn *Supernode) consumeUpdates() {
	defer sn.wg.Done()
	for {
		typ, payload, err := sn.cloudLink.Recv()
		if err != nil {
			return
		}
		switch typ {
		case proto.TDelta:
			d, err := proto.UnmarshalDelta(payload)
			if err != nil {
				continue
			}
			sn.mu.Lock()
			if applyErr := sn.replica.Apply(d); applyErr != nil {
				// Version gap: wait for the next snapshot. (The cloud
				// sends a snapshot on subscribe; gaps only arise from
				// dropped frames on a congested link.)
				sn.mu.Unlock()
				continue
			}
			sn.deltas++
			sn.deltaBytes += int64(len(payload))
			sn.mu.Unlock()
		case proto.TAction:
			a, err := proto.UnmarshalAction(payload)
			if err != nil {
				continue
			}
			sn.mu.Lock()
			if a.Issued > sn.stamps[a.Player] {
				sn.stamps[a.Player] = a.Issued
			}
			sn.mu.Unlock()
		}
	}
}

func (sn *Supernode) accept() {
	defer sn.wg.Done()
	for {
		conn, err := sn.ln.Accept()
		if err != nil {
			return
		}
		sn.wg.Add(1)
		go sn.servePlayer(conn)
	}
}

// serveUDP demuxes the shared datagram socket: every inbound datagram is a
// complete frame, and the only frame players send here is TJoinStream —
// both the initial subscription and the periodic keepalive re-join.
func (sn *Supernode) serveUDP() {
	defer sn.wg.Done()
	buf := make([]byte, proto.FrameHeaderLen+proto.MaxDatagram)
	for {
		n, raddr, err := sn.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		typ, payload, perr := proto.ParseDatagram(buf[:n])
		if perr != nil || typ != proto.TJoinStream {
			continue
		}
		sn.joinDatagram(raddr, payload)
	}
}

// joinDatagram registers (or refreshes) a datagram player stream. The join
// doubles as the liveness keepalive: a re-join from the same source address
// refreshes lastSeen, one from a new address replaces the stream (the
// player respawned), and silence past udpExpiry reclaims it.
func (sn *Supernode) joinDatagram(raddr *net.UDPAddr, payload []byte) {
	join, err := proto.UnmarshalJoinStream(payload)
	if err != nil {
		return
	}
	g, err := game.ByID(int(join.GameID))
	if err != nil {
		// Reject without setting up a stream.
		sn.udp.WriteToUDP(proto.AppendFrame(nil, proto.TAck, proto.MarshalAck(proto.Ack{Code: proto.AckRefused})), raddr)
		return
	}
	if gate := sn.cfg.JoinGate; gate != nil {
		if code := gate(join, sn.hasPlayer(join.Player)); code != proto.AckOK {
			sn.udp.WriteToUDP(proto.AppendFrame(nil, proto.TAck, proto.MarshalAck(proto.Ack{Code: code})), raddr)
			return
		}
	}
	addr := raddr.String()
	now := time.Now()
	var replaced Transport
	sn.mu.Lock()
	if sn.closed {
		sn.mu.Unlock()
		return
	}
	if ps, ok := sn.players[join.Player]; ok {
		if ps.raddr == addr {
			ps.lastSeen = now
			link := ps.link
			sn.mu.Unlock()
			link.Send(proto.TAck, proto.MarshalAck(proto.Ack{}))
			return
		}
		delete(sn.players, join.Player)
		replaced = ps.link
	}
	var delay time.Duration
	if sn.cfg.DelayFor != nil {
		delay = sn.cfg.DelayFor(join.Player)
	}
	var stats *obs.LinkStats
	if sn.cfg.Obs != nil {
		stats = obs.LinkStatsIn(sn.cfg.Obs, fmt.Sprintf("sn%d_to_p%d", sn.cfg.ID, join.Player))
	}
	link := NewDatagramLink(&addrConn{sock: sn.udp, raddr: raddr}, LinkOptions{Delay: delay, Stats: stats})
	link.Impair(sn.impExtra, sn.impLoss)
	sn.players[join.Player] = &playerStream{link: link, join: join, g: g, raddr: addr, lastSeen: now}
	sn.mu.Unlock()
	if replaced != nil {
		replaced.Close()
	}
	link.Send(proto.TAck, proto.MarshalAck(proto.Ack{}))
}

// servePlayer registers a player's stream subscription. Segments are pushed
// from the render loop.
func (sn *Supernode) servePlayer(conn net.Conn) {
	defer sn.wg.Done()
	typ, payload, err := proto.ReadFrame(conn)
	if err != nil || typ != proto.TJoinStream {
		conn.Close()
		return
	}
	join, err := proto.UnmarshalJoinStream(payload)
	if err != nil {
		conn.Close()
		return
	}
	g, err := game.ByID(int(join.GameID))
	if err != nil {
		proto.WriteFrame(conn, proto.TAck, proto.MarshalAck(proto.Ack{Code: proto.AckRefused}))
		conn.Close()
		return
	}
	if gate := sn.cfg.JoinGate; gate != nil {
		if code := gate(join, sn.hasPlayer(join.Player)); code != proto.AckOK {
			proto.WriteFrame(conn, proto.TAck, proto.MarshalAck(proto.Ack{Code: code}))
			conn.Close()
			return
		}
	}
	var delay time.Duration
	if sn.cfg.DelayFor != nil {
		delay = sn.cfg.DelayFor(join.Player)
	}
	var stats *obs.LinkStats
	if sn.cfg.Obs != nil {
		stats = obs.LinkStatsIn(sn.cfg.Obs, fmt.Sprintf("sn%d_to_p%d", sn.cfg.ID, join.Player))
	}
	link := NewLinkObs(conn, delay, stats)

	sn.mu.Lock()
	if sn.closed {
		sn.mu.Unlock()
		link.Close()
		return
	}
	sn.players[join.Player] = &playerStream{link: link, join: join, g: g}
	link.Impair(sn.impExtra, sn.impLoss)
	sn.mu.Unlock()
	link.Send(proto.TAck, proto.MarshalAck(proto.Ack{}))

	var buf [1]byte
	for {
		if _, err := conn.Read(buf[:]); err != nil {
			break
		}
	}
	sn.mu.Lock()
	if ps, ok := sn.players[join.Player]; ok && ps.link == link {
		delete(sn.players, join.Player)
	}
	sn.mu.Unlock()
	link.Close()
}

// ImpairStreams applies a chaos impairment — extra one-way delay and a
// fractional frame loss rate — to every current player stream link, and to
// streams joining while it is active. Zeroes restore healthy links.
func (sn *Supernode) ImpairStreams(extra time.Duration, lossFrac float64) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	sn.impExtra = extra
	sn.impLoss = lossFrac
	for _, ps := range sn.players {
		ps.link.Impair(extra, lossFrac)
	}
}

// renderLoop produces one segment per frame interval for every player:
// select the entities visible from the player's avatar, size the payload by
// the game's ladder level, stamp the freshest covered action, send.
func (sn *Supernode) renderLoop() {
	defer sn.wg.Done()
	ticker := time.NewTicker(time.Second / time.Duration(sn.cfg.FPS))
	defer ticker.Stop()
	segBytes := func(g game.Game) int {
		return int(g.Quality().Bitrate) / sn.cfg.FPS / 8
	}
	var expired []*playerStream
	for {
		select {
		case <-sn.stop:
			return
		case <-ticker.C:
			now := time.Now()
			expired = expired[:0]
			sn.mu.Lock()
			for pid, ps := range sn.players {
				if sn.udp != nil && now.Sub(ps.lastSeen) > udpExpiry {
					// Datagram player went silent: reclaim the stream.
					delete(sn.players, pid)
					expired = append(expired, ps)
					continue
				}
				center := world.Vec2{X: ps.join.ViewX, Y: ps.join.ViewY}
				// Follow the player's avatar once it exists in the replica.
				if av, ok := sn.replica.Avatar(pid); ok {
					center = av.Pos
				}
				visible := sn.replica.Visible(world.Viewport{Center: center, Radius: ps.join.ViewR})
				n := renderSize(segBytes(ps.g))
				seg := proto.Segment{
					Player:       pid,
					Seq:          ps.seq,
					Level:        uint8(ps.g.StartLevel),
					ActionIssued: sn.stamps[pid],
				}
				ps.seq++
				// Render straight into a pooled wire frame: header, segment
				// fields, then the payload bytes in place — no Marshal copy.
				frame := ps.link.AcquireFrame(proto.TSegment)
				frame = proto.AppendSegmentHeader(frame, seg, n)
				frame = appendRenderPayload(frame, n, visible)
				ps.link.SendFrame(frame)
			}
			sn.mu.Unlock()
			for _, ps := range expired {
				ps.link.Close()
			}
		}
	}
}

// renderSize floors a segment's byte size (a degenerate ladder level still
// produces a non-empty frame).
func renderSize(n int) int {
	if n < 16 {
		return 16
	}
	return n
}

// appendRenderPayload appends n segment bytes to dst: a deterministic
// pattern seeded by the visible entities (stand-in for encoded video — the
// sizes and timing are what matter).
func appendRenderPayload(dst []byte, n int, visible []world.Entity) []byte {
	h := uint64(len(visible) + 1)
	for _, e := range visible {
		h = h*1099511628211 + uint64(e.ID)
	}
	for i := 0; i < n; i++ {
		h = h*6364136223846793005 + 1442695040888963407
		dst = append(dst, byte(h>>56))
	}
	return dst
}

// Close shuts the supernode down.
func (sn *Supernode) Close() {
	sn.mu.Lock()
	if sn.closed {
		sn.mu.Unlock()
		return
	}
	sn.closed = true
	players := make([]*playerStream, 0, len(sn.players))
	for _, ps := range sn.players {
		players = append(players, ps)
	}
	sn.mu.Unlock()

	close(sn.stop)
	if sn.ln != nil {
		sn.ln.Close()
	}
	if sn.udp != nil {
		sn.udp.Close()
	}
	sn.cloudLink.Close()
	for _, ps := range players {
		ps.link.Close()
	}
	sn.wg.Wait()
}
