package live

import (
	"context"
	"net"
	"testing"
	"time"

	"cloudfog/internal/obs"
	"cloudfog/internal/proto"
	"cloudfog/internal/world"
)

// TestLinkImpairLoss: a 0.5 loss fraction must drop exactly every second
// frame — the accumulator is deterministic, not sampled.
func TestLinkImpairLoss(t *testing.T) {
	r := obs.NewRegistry()
	stats := obs.LinkStatsIn(r, "lossy")
	a, b := net.Pipe()
	link := NewLinkObs(a, 0, stats)
	defer link.Close()
	defer b.Close()

	link.Impair(0, 0.5)
	go func() {
		payload := proto.MarshalAck(proto.Ack{})
		for i := 0; i < 10; i++ {
			link.Send(proto.TAck, payload)
		}
	}()
	for i := 0; i < 5; i++ {
		if _, _, err := proto.ReadFrame(b); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for stats.DroppedFrames.Load() != 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := stats.DroppedFrames.Load(); got != 5 {
		t.Fatalf("dropped frames = %d, want exactly 5 of 10 at lossFrac 0.5", got)
	}
	// Healthy again: the next sends all pass.
	link.Impair(0, 0)
	go func() {
		payload := proto.MarshalAck(proto.Ack{})
		for i := 0; i < 3; i++ {
			link.Send(proto.TAck, payload)
		}
	}()
	for i := 0; i < 3; i++ {
		if _, _, err := proto.ReadFrame(b); err != nil {
			t.Fatalf("post-heal frame %d: %v", i, err)
		}
	}
}

// TestLinkImpairExtraDelay: the impairment's extra latency adds to the
// link's base delay.
func TestLinkImpairExtraDelay(t *testing.T) {
	a, b := net.Pipe()
	link := NewLink(a, 5*time.Millisecond)
	defer link.Close()
	defer b.Close()

	link.Impair(40*time.Millisecond, 0)
	start := time.Now()
	go link.Send(proto.TAck, proto.MarshalAck(proto.Ack{}))
	if _, _, err := proto.ReadFrame(b); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("frame arrived in %v, before base+extra delay", elapsed)
	}
}

// TestDialBackoffRetriesUntilServerUp: the listener appears only after the
// first dial attempts have failed; backoff must carry the client through.
func TestDialBackoffRetriesUntilServerUp(t *testing.T) {
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close() // free the port; nothing listens for the first ~200ms

	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(200 * time.Millisecond)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		defer ln.Close()
		if conn, err := ln.Accept(); err == nil {
			conn.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := dialBackoff(ctx, addr, 42)
	if err != nil {
		t.Fatalf("dialBackoff never reached the late server: %v", err)
	}
	conn.Close()
	<-done
}

// TestDialBackoffHonorsDeadline: with nothing ever listening, the dial must
// return the context error promptly rather than retrying forever.
func TestDialBackoffHonorsDeadline(t *testing.T) {
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := dialBackoff(ctx, addr, 7); err == nil {
		t.Fatal("dialBackoff succeeded against a dead address")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("dialBackoff took %v to give up on a 300ms deadline", elapsed)
	}
}

// TestPlayerStreamFailover kills the serving supernode mid-run and checks
// the player reattaches to its backup and keeps receiving segments.
func TestPlayerStreamFailover(t *testing.T) {
	cloud, err := StartCloud(CloudConfig{
		Addr:  "127.0.0.1:0",
		World: world.DefaultConfig(),
		Tick:  33 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()

	sn1, err := StartSupernode(SupernodeConfig{ID: 1, CloudAddr: cloud.Addr(), Addr: "127.0.0.1:0", FPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	sn2, err := StartSupernode(SupernodeConfig{ID: 2, CloudAddr: cloud.Addr(), Addr: "127.0.0.1:0", FPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	defer sn2.Close()

	type result struct {
		report PlayerReport
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		report, err := RunPlayer(PlayerConfig{
			ID:          1,
			GameID:      4,
			CloudAddr:   cloud.Addr(),
			StreamAddr:  sn1.Addr(),
			BackupAddrs: []string{sn2.Addr()},
			ActionEvery: 100 * time.Millisecond,
			ViewRadius:  DefaultViewRadius,
		}, 3*time.Second)
		resCh <- result{report, err}
	}()

	time.Sleep(800 * time.Millisecond)
	sn1.Close() // the serving supernode dies mid-run

	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.report.Failovers < 1 {
		t.Fatalf("player recorded %d failovers, want >= 1 after its supernode died", res.report.Failovers)
	}
	if res.report.Segments < 30 {
		t.Fatalf("player received only %d segments across the failover", res.report.Segments)
	}
}
