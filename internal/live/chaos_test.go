package live

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"cloudfog/internal/health"
	"cloudfog/internal/obs"
	"cloudfog/internal/proto"
	"cloudfog/internal/world"
)

// TestLinkImpairLoss: a 0.5 loss fraction must drop exactly every second
// frame — the accumulator is deterministic, not sampled.
func TestLinkImpairLoss(t *testing.T) {
	r := obs.NewRegistry()
	stats := obs.LinkStatsIn(r, "lossy")
	a, b := net.Pipe()
	link := NewLinkObs(a, 0, stats)
	defer link.Close()
	defer b.Close()

	link.Impair(0, 0.5)
	go func() {
		payload := proto.MarshalAck(proto.Ack{})
		for i := 0; i < 10; i++ {
			link.Send(proto.TAck, payload)
		}
	}()
	for i := 0; i < 5; i++ {
		if _, _, err := proto.ReadFrame(b); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for stats.DroppedFrames.Load() != 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := stats.DroppedFrames.Load(); got != 5 {
		t.Fatalf("dropped frames = %d, want exactly 5 of 10 at lossFrac 0.5", got)
	}
	// Healthy again: the next sends all pass.
	link.Impair(0, 0)
	go func() {
		payload := proto.MarshalAck(proto.Ack{})
		for i := 0; i < 3; i++ {
			link.Send(proto.TAck, payload)
		}
	}()
	for i := 0; i < 3; i++ {
		if _, _, err := proto.ReadFrame(b); err != nil {
			t.Fatalf("post-heal frame %d: %v", i, err)
		}
	}
}

// TestLinkImpairExtraDelay: the impairment's extra latency adds to the
// link's base delay.
func TestLinkImpairExtraDelay(t *testing.T) {
	a, b := net.Pipe()
	link := NewLink(a, 5*time.Millisecond)
	defer link.Close()
	defer b.Close()

	link.Impair(40*time.Millisecond, 0)
	start := time.Now()
	go link.Send(proto.TAck, proto.MarshalAck(proto.Ack{}))
	if _, _, err := proto.ReadFrame(b); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("frame arrived in %v, before base+extra delay", elapsed)
	}
}

// TestDialBackoffRetriesUntilServerUp: the listener appears only after the
// first dial attempts have failed; backoff must carry the client through.
func TestDialBackoffRetriesUntilServerUp(t *testing.T) {
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close() // free the port; nothing listens for the first ~200ms

	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(200 * time.Millisecond)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		defer ln.Close()
		if conn, err := ln.Accept(); err == nil {
			conn.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := dialBackoff(ctx, addr, 42)
	if err != nil {
		t.Fatalf("dialBackoff never reached the late server: %v", err)
	}
	conn.Close()
	<-done
}

// TestDialBackoffHonorsDeadline: with nothing ever listening, the dial must
// return the context error promptly rather than retrying forever.
func TestDialBackoffHonorsDeadline(t *testing.T) {
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := dialBackoff(ctx, addr, 7); err == nil {
		t.Fatal("dialBackoff succeeded against a dead address")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("dialBackoff took %v to give up on a 300ms deadline", elapsed)
	}
}

// TestDialBackoffCancelMidSleep: a context canceled while the dialer is
// asleep between attempts must abort the sleep immediately instead of
// finishing the backoff first.
func TestDialBackoffCancelMidSleep(t *testing.T) {
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	ctx, cancel := context.WithCancel(context.Background())
	const cancelAfter = 1200 * time.Millisecond
	time.AfterFunc(cancelAfter, cancel)
	start := time.Now()
	if _, err := dialBackoff(ctx, addr, 9); err == nil {
		t.Fatal("dialBackoff succeeded against a dead address")
	}
	// By 1.2s the backoff has grown to ~800ms sleeps; without the mid-sleep
	// abort the return would trail the cancel by most of a sleep.
	if elapsed := time.Since(start); elapsed > cancelAfter+300*time.Millisecond {
		t.Fatalf("dialBackoff returned %v after a cancel at %v — slept through the cancel", elapsed, cancelAfter)
	}
}

// TestPlayerCloudFallbackAllBackupsDown kills the serving supernode AND every
// backup: the player must land on the cloud's direct stream, keep receiving
// segments, and its error list must name the dead supernodes it tried.
func TestPlayerCloudFallbackAllBackupsDown(t *testing.T) {
	cloud, err := StartCloud(CloudConfig{
		Addr:      "127.0.0.1:0",
		World:     world.DefaultConfig(),
		Tick:      33 * time.Millisecond,
		DirectFPS: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()

	sn1, err := StartSupernode(SupernodeConfig{ID: 1, CloudAddr: cloud.Addr(), Addr: "127.0.0.1:0", FPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	sn2, err := StartSupernode(SupernodeConfig{ID: 2, CloudAddr: cloud.Addr(), Addr: "127.0.0.1:0", FPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	sn1Addr, sn2Addr := sn1.Addr(), sn2.Addr()

	type result struct {
		report PlayerReport
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		report, err := RunPlayer(PlayerConfig{
			ID:          1,
			GameID:      4,
			CloudAddr:   cloud.Addr(),
			StreamAddr:  sn1Addr,
			BackupAddrs: []string{sn2Addr},
			ActionEvery: 100 * time.Millisecond,
			ViewRadius:  DefaultViewRadius,
		}, 6*time.Second)
		resCh <- result{report, err}
	}()

	time.Sleep(600 * time.Millisecond)
	sn1.Close()
	sn2.Close() // the whole ring is gone — only the cloud is left

	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if !res.report.CloudFallback {
		t.Fatalf("player did not fall back to the cloud; errors: %v", res.report.FailoverErrors)
	}
	if res.report.Segments < 30 {
		t.Fatalf("player received only %d segments — the cloud fallback stream never flowed", res.report.Segments)
	}
	mentioned := map[string]bool{}
	for _, e := range res.report.FailoverErrors {
		for _, addr := range []string{sn1Addr, sn2Addr} {
			if strings.Contains(e, addr) {
				mentioned[addr] = true
			}
		}
	}
	if !mentioned[sn1Addr] || !mentioned[sn2Addr] {
		t.Fatalf("FailoverErrors %v does not name both dead supernodes %s and %s",
			res.report.FailoverErrors, sn1Addr, sn2Addr)
	}
}

// TestCloudDetectsSupernodeSilence runs a real heartbeat detector over the
// TCP link: while the supernode beats, no suspicion; once it dies, the
// cloud's detector flags it from the silence alone.
func TestCloudDetectsSupernodeSilence(t *testing.T) {
	cloud, err := StartCloud(CloudConfig{
		Addr:  "127.0.0.1:0",
		World: world.DefaultConfig(),
		Tick:  20 * time.Millisecond,
		Detector: health.DetectorConfig{
			Mode:     health.ModeTimeout,
			Interval: 50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()

	sn, err := StartSupernode(SupernodeConfig{
		ID: 7, CloudAddr: cloud.Addr(), Addr: "127.0.0.1:0",
		FPS: 30, HeartbeatEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Alive and beating: no suspicion accrues.
	time.Sleep(600 * time.Millisecond)
	if dets, fps := cloud.FailureDetections(); dets != 0 || fps != 0 {
		t.Fatalf("detections=%d falsePositives=%d while the supernode was beating", dets, fps)
	}
	if cloud.HeartbeatsReceived() == 0 {
		t.Fatal("cloud received no heartbeats from a live supernode")
	}

	sn.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if ids := cloud.DetectedFailures(); len(ids) == 1 && ids[0] == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cloud never detected the dead supernode; suspected=%v", cloud.DetectedFailures())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, fps := cloud.FailureDetections(); fps != 0 {
		t.Fatalf("detector logged %d false positives on a clean link", fps)
	}
}

// TestPlayerStreamFailover kills the serving supernode mid-run and checks
// the player reattaches to its backup and keeps receiving segments.
func TestPlayerStreamFailover(t *testing.T) {
	cloud, err := StartCloud(CloudConfig{
		Addr:  "127.0.0.1:0",
		World: world.DefaultConfig(),
		Tick:  33 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()

	sn1, err := StartSupernode(SupernodeConfig{ID: 1, CloudAddr: cloud.Addr(), Addr: "127.0.0.1:0", FPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	sn2, err := StartSupernode(SupernodeConfig{ID: 2, CloudAddr: cloud.Addr(), Addr: "127.0.0.1:0", FPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	defer sn2.Close()

	type result struct {
		report PlayerReport
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		report, err := RunPlayer(PlayerConfig{
			ID:          1,
			GameID:      4,
			CloudAddr:   cloud.Addr(),
			StreamAddr:  sn1.Addr(),
			BackupAddrs: []string{sn2.Addr()},
			ActionEvery: 100 * time.Millisecond,
			ViewRadius:  DefaultViewRadius,
		}, 3*time.Second)
		resCh <- result{report, err}
	}()

	time.Sleep(800 * time.Millisecond)
	sn1.Close() // the serving supernode dies mid-run

	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.report.Failovers < 1 {
		t.Fatalf("player recorded %d failovers, want >= 1 after its supernode died", res.report.Failovers)
	}
	if res.report.Segments < 30 {
		t.Fatalf("player received only %d segments across the failover", res.report.Segments)
	}
}
