// Package live runs an actual CloudFog deployment over TCP or UDP: a cloud
// server owning the authoritative virtual world, supernode servers keeping
// replicas and streaming rendered segments, and player clients issuing
// actions and measuring end-to-end response latency. Wide-area propagation
// is injected per link at the sender, so the bytes on the wire are real and
// the timing is wide-area-shaped.
//
// This is the paper's architecture made concrete: player → cloud actions,
// cloud → supernode update deltas, supernode → player video segments.
package live

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"cloudfog/internal/obs"
	"cloudfog/internal/proto"
)

// Transport is the sender/receiver contract shared by the TCP stream Link
// and the UDP DatagramLink, and by the in-process pipe pair used for
// recorded/sim-style runs. All implementations inject the configured
// one-way delay at the sender, apply the deterministic loss accumulator,
// and coalesce release-ready frames into batched writes.
type Transport interface {
	// Send copies payload into a pooled frame and enqueues it. The caller
	// keeps ownership of payload (it may be reused immediately). Never
	// blocks on the network; a full queue or the loss process drops the
	// frame and reports false.
	Send(t proto.MsgType, payload []byte) bool
	// AcquireFrame returns a pooled buffer pre-seeded with a frame header
	// for t. Append the payload with proto.Append* and hand it to
	// SendFrame/SendFrameWait — the wire path never copies it again.
	AcquireFrame(t proto.MsgType) []byte
	// SendFrame enqueues a frame built via AcquireFrame. Ownership
	// transfers to the transport: the buffer is recycled after the write
	// (or drop), so the caller must not retain it. Same non-blocking drop
	// semantics as Send.
	SendFrame(frame []byte) bool
	// SendFrameWait is SendFrame with backpressure: a full queue blocks
	// until the writer drains space (or the link dies). Frames claimed by
	// the loss process report true — they were accepted and lost in
	// flight. False means the link is closed or dead.
	SendFrameWait(frame []byte) bool
	// Recv reads the next frame. The returned payload aliases an internal
	// reuse buffer and is valid only until the next Recv call; callers
	// that retain it must copy. Recv is not safe for concurrent use (one
	// reader goroutine per link, as everywhere in this package).
	Recv() (proto.MsgType, []byte, error)
	// Impair sets chaos impairment: extra one-way delay and a fractional
	// deterministic frame-loss rate. Safe to call concurrently with Send.
	Impair(extra time.Duration, lossFrac float64)
	// Err returns the first fatal write error, if any.
	Err() error
	// Close stops the writer (flushing already-queued frames) and closes
	// the connection.
	Close()
}

const (
	// DefaultFlushDeadline bounds how long the coalescing writer holds the
	// first frame of a batch while gathering more. ~2 ms trades a bounded,
	// sub-frame-interval latency cost for an order-of-magnitude reduction
	// in write syscalls at segment-throughput saturation. Frames whose
	// type is urgent (heartbeats, acks, hellos) always flush immediately,
	// so failure detectors see no added jitter.
	DefaultFlushDeadline = 2 * time.Millisecond

	defaultMaxBatch = 256  // frames per coalesced writev
	sendQueueCap    = 1024 // matches the pre-coalescing Link

	maxRecycledFrame = 1 << 20          // don't hoard giant one-off frames
	maxFreeList      = sendQueueCap + 8 // bound the frame freelist
)

// LinkOptions configures a link beyond the connection itself. The zero
// value is a healthy uninstrumented link with default coalescing.
type LinkOptions struct {
	// Delay is the injected one-way propagation delay.
	Delay time.Duration
	// Stats, when non-nil, counts frames/bytes each way, sheds, batching,
	// and the sender-side holding delay (nil disables instrumentation with
	// no per-frame cost beyond one nil-check).
	Stats *obs.LinkStats
	// FlushDeadline is the coalescing window: 0 means DefaultFlushDeadline,
	// negative disables coalescing entirely (one write per frame — the
	// benchmark baseline).
	FlushDeadline time.Duration
	// MaxBatch caps frames per coalesced write (0 means defaultMaxBatch).
	MaxBatch int
}

// Link wraps a stream connection (TCP, net.Pipe) with sender-side one-way
// delay injection and flush-deadline frame coalescing. Each frame is
// released delay after it was enqueued — ordering is preserved, but
// back-to-back frames are not head-of-line blocked behind each other's
// delay (they overlap in flight, as on a real path). Release-ready frames
// are folded into a single writev-style net.Buffers write.
type Link struct {
	linkCore
}

// DatagramLink is the Transport over an unreliable datagram connection
// (UDP): one frame per datagram, no head-of-line blocking, and transient
// send errors lose only the affected frame — Eq. 14's dropping policy
// happens in the network instead of a queue.
type DatagramLink struct {
	linkCore
}

// linkCore is the shared machinery behind Link and DatagramLink.
type linkCore struct {
	conn          net.Conn
	delay         time.Duration
	flushDeadline time.Duration // <0: per-frame writes (no coalescing)
	maxBatch      int
	dgram         bool
	stats         *obs.LinkStats

	// The send queue is a mu-guarded slice consumed from qhead, not a
	// channel: under saturation the sender's cost is one brief lock and an
	// append, and the writer takes whole batches with one lock round-trip
	// — no per-frame channel handoff or futex wake (cond is only signaled
	// when the writer reported itself idle).
	mu     sync.Mutex
	cond   *sync.Cond // writer waits for work; signaled only when idle
	q      []queued
	qhead  int
	idle   bool
	free   [][]byte // recycled frame buffers (mu-guarded; sync.Pool would box)
	closed bool
	err    error
	wg     sync.WaitGroup

	space chan struct{} // writer → SendFrameWait: queue space freed
	done  chan struct{} // closed when the writer exits

	// Chaos impairment (mu-guarded): extra one-way delay and a fractional
	// loss rate applied at enqueue. Loss is deterministic — an accumulator
	// drops every 1/lossFrac-th frame — so an impaired run is reproducible
	// frame-for-frame given the same send sequence.
	extra    time.Duration
	lossFrac float64
	lossAcc  float64

	// Writer-goroutine-owned scratch (no locking).
	batch      []queued
	bufScratch [][]byte

	// Recv-side reuse buffer, owned by the single reader goroutine.
	recvBuf []byte
}

type queued struct {
	release time.Time
	frame   []byte // full wire frame: header + payload
	urgent  bool   // flush immediately, never held for coalescing
	dropped bool   // set by the writer on a per-frame datagram send error
}

// NewLink wraps conn with the given one-way send delay. Close the link (not
// the conn) when done.
func NewLink(conn net.Conn, delay time.Duration) *Link {
	return NewLinkOpts(conn, LinkOptions{Delay: delay})
}

// NewLinkObs is NewLink with an optional stats bundle.
func NewLinkObs(conn net.Conn, delay time.Duration, stats *obs.LinkStats) *Link {
	return NewLinkOpts(conn, LinkOptions{Delay: delay, Stats: stats})
}

// NewLinkOpts wraps a stream conn with full options.
func NewLinkOpts(conn net.Conn, opts LinkOptions) *Link {
	l := &Link{}
	l.init(conn, opts, false)
	return l
}

// NewDatagramLink wraps a datagram conn (each Write is one datagram).
func NewDatagramLink(conn net.Conn, opts LinkOptions) *DatagramLink {
	l := &DatagramLink{}
	l.init(conn, opts, true)
	return l
}

// NewPipeTransport returns two connected in-process transports over a
// net.Pipe, so sim-style and recorded runs exercise the identical wire
// path (framing, coalescing, delay injection) as a live deployment.
func NewPipeTransport(opts LinkOptions) (Transport, Transport) {
	c1, c2 := net.Pipe()
	return NewLinkOpts(c1, opts), NewLinkOpts(c2, opts)
}

var (
	_ Transport = (*Link)(nil)
	_ Transport = (*DatagramLink)(nil)
)

func (l *linkCore) init(conn net.Conn, opts LinkOptions, dgram bool) {
	fd := opts.FlushDeadline
	if fd == 0 {
		fd = DefaultFlushDeadline
	}
	mb := opts.MaxBatch
	if mb <= 0 {
		mb = defaultMaxBatch
	}
	l.conn = conn
	l.delay = opts.Delay
	l.flushDeadline = fd
	l.maxBatch = mb
	l.dgram = dgram
	l.stats = opts.Stats
	l.cond = sync.NewCond(&l.mu)
	l.space = make(chan struct{}, 1)
	l.done = make(chan struct{})
	l.wg.Add(1)
	go l.writer()
}

// urgentType reports whether frames of type t must flush immediately:
// heartbeats, acks, and the coordinator control frames feed failure
// detectors and handshakes, so coalescing jitter on them would show up as
// detector noise.
func urgentType(t proto.MsgType) bool {
	switch t {
	case proto.THeartbeat, proto.TAck, proto.THello,
		proto.TRegister, proto.TReport, proto.TTicket, proto.TSync:
		return true
	}
	return false
}

func frameUrgent(frame []byte) bool {
	return len(frame) > 0 && urgentType(proto.MsgType(frame[0]))
}

// writer drains the send queue: it sleeps (one reused timer, not one
// time.Sleep per frame) until the head frame's release time, gathers every
// further queued frame releasing within flushDeadline of it (stopping at
// urgent frames, maxBatch, or an empty queue — an empty queue flushes
// immediately, so an idle link adds zero latency), and issues one batched
// write. Close lets it flush everything already queued before it exits.
func (l *linkCore) writer() {
	defer l.wg.Done()
	defer close(l.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

	for {
		l.mu.Lock()
		for l.qhead == len(l.q) && !l.closed {
			l.q = l.q[:0]
			l.qhead = 0
			l.idle = true
			l.cond.Wait()
		}
		l.idle = false
		if l.qhead == len(l.q) { // closed and fully drained
			l.mu.Unlock()
			return
		}
		first := l.q[l.qhead]
		l.qhead++
		l.mu.Unlock()

		l.sleepUntil(timer, first.release)
		l.batch = append(l.batch[:0], first)
		if l.flushDeadline >= 0 && !first.urgent {
			deadline := first.release.Add(l.flushDeadline)
			l.mu.Lock()
			for len(l.batch) < l.maxBatch && l.qhead < len(l.q) {
				q := l.q[l.qhead]
				if q.release.After(deadline) {
					// Holding the batch open for it would blow the
					// deadline; leave it for the next round.
					break
				}
				l.qhead++
				l.batch = append(l.batch, q)
				if q.urgent {
					break
				}
			}
			if l.qhead >= sendQueueCap {
				// Slide the surviving tail to the front so the queue's
				// storage stays bounded across a long saturated run.
				n := copy(l.q, l.q[l.qhead:])
				l.q = l.q[:n]
				l.qhead = 0
			}
			l.mu.Unlock()
			// Frames gathered inside the deadline may release slightly in
			// the future; honor the newest release before writing.
			newest := first.release
			for i := 1; i < len(l.batch); i++ {
				if l.batch[i].release.After(newest) {
					newest = l.batch[i].release
				}
			}
			l.sleepUntil(timer, newest)
		}

		err := l.writeBatch()
		l.finishBatch(err == nil)
		l.notifySpace()
		if err != nil {
			l.fail(err)
			return
		}
	}
}

func (l *linkCore) sleepUntil(timer *time.Timer, release time.Time) {
	if d := time.Until(release); d > 0 {
		timer.Reset(d)
		<-timer.C
	}
}

// writeBatch pushes the gathered batch onto the wire. Stream mode folds a
// multi-frame batch into one net.Buffers write (writev on TCP); datagram
// mode sends one datagram per frame, marking per-frame transient failures
// as dropped instead of killing the link. A non-nil return is fatal.
func (l *linkCore) writeBatch() error {
	if l.dgram {
		for i := range l.batch {
			q := &l.batch[i]
			if _, err := l.conn.Write(q.frame); err != nil {
				q.dropped = true
				if errors.Is(err, net.ErrClosed) {
					for j := i + 1; j < len(l.batch); j++ {
						l.batch[j].dropped = true
					}
					return err
				}
				// ECONNREFUSED between peer restarts, ENOBUFS, EMSGSIZE:
				// datagram semantics — this frame is lost, the link lives.
			}
		}
		return nil
	}
	var err error
	if len(l.batch) == 1 {
		_, err = l.conn.Write(l.batch[0].frame)
	} else {
		l.bufScratch = l.bufScratch[:0]
		for i := range l.batch {
			l.bufScratch = append(l.bufScratch, l.batch[i].frame)
		}
		// WriteTo consumes its receiver, so hand it a throwaway local
		// header; l.bufScratch keeps its storage for the next batch.
		nb := net.Buffers(l.bufScratch)
		_, err = nb.WriteTo(l.conn)
	}
	if err != nil {
		for i := range l.batch {
			l.batch[i].dropped = true
		}
	}
	return err
}

// finishBatch records stats for the written batch and recycles every frame
// buffer onto the freelist (one lock round-trip for the whole batch).
func (l *linkCore) finishBatch(allSent bool) {
	if l.stats != nil {
		now := time.Now()
		for i := range l.batch {
			q := &l.batch[i]
			if q.dropped {
				l.stats.DroppedFrames.Inc()
				continue
			}
			l.stats.SentFrames.Inc()
			l.stats.SentBytes.Add(int64(len(q.frame) - proto.FrameHeaderLen))
			// The frame was enqueued at release−delay; the observed span
			// is queue wait + injected propagation + the write itself.
			l.stats.SendDelayNs.Observe(int64(now.Sub(q.release) + l.delay))
		}
		if !l.dgram && allSent && len(l.batch) > 1 {
			l.stats.BatchedFrames.Add(int64(len(l.batch)))
			l.stats.BatchWrites.Inc()
		}
	}
	l.mu.Lock()
	for i := range l.batch {
		f := l.batch[i].frame
		if cap(f) > 0 && cap(f) <= maxRecycledFrame && len(l.free) < maxFreeList {
			l.free = append(l.free, f[:0])
		}
		l.batch[i] = queued{}
	}
	l.mu.Unlock()
	l.batch = l.batch[:0]
}

func (l *linkCore) fail(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	// Everything still queued will never be written: count it dropped and
	// reclaim the buffers. Future sends observe l.err and report sendDead,
	// so the queue stays empty from here on.
	dropped := len(l.q) - l.qhead
	for i := l.qhead; i < len(l.q); i++ {
		f := l.q[i].frame
		if cap(f) > 0 && cap(f) <= maxRecycledFrame && len(l.free) < maxFreeList {
			l.free = append(l.free, f[:0])
		}
		l.q[i] = queued{}
	}
	l.q = l.q[:0]
	l.qhead = 0
	l.mu.Unlock()
	if l.stats != nil {
		for i := 0; i < dropped; i++ {
			l.stats.DroppedFrames.Inc()
		}
	}
	l.notifySpace()
}

func (l *linkCore) notifySpace() {
	select {
	case l.space <- struct{}{}:
	default:
	}
}

// Impair sets the link's chaos impairment: extra one-way delay and a
// fractional frame loss rate in [0, 1). Zeroes restore the healthy link.
// Safe to call concurrently with Send.
func (l *linkCore) Impair(extra time.Duration, lossFrac float64) {
	if extra < 0 {
		extra = 0
	}
	if lossFrac < 0 {
		lossFrac = 0
	}
	if lossFrac >= 1 {
		lossFrac = 0.999
	}
	l.mu.Lock()
	l.extra = extra
	l.lossFrac = lossFrac
	if lossFrac == 0 {
		l.lossAcc = 0
	}
	l.mu.Unlock()
}

// AcquireFrame returns a recycled (or fresh) buffer pre-seeded with a frame
// header for t. Append the payload in place, then pass to SendFrame.
func (l *linkCore) AcquireFrame(t proto.MsgType) []byte {
	var buf []byte
	l.mu.Lock()
	if n := len(l.free); n > 0 {
		buf = l.free[n-1]
		l.free = l.free[:n-1]
	}
	l.mu.Unlock()
	return proto.BeginFrame(buf, t)
}

type sendResult int

const (
	sendOK       sendResult = iota
	sendFull                // queue congested
	sendLost                // claimed by the deterministic loss process
	sendDead                // closed or failed
	sendRejected            // malformed/oversize frame
)

// trySend patches the frame's length header and enqueues it. Ownership of
// frame transfers on every result except sendFull (the caller may retry).
func (l *linkCore) trySend(frame []byte, urgent bool) sendResult {
	if err := proto.FinishFrame(frame, 0); err != nil {
		return sendRejected
	}
	if l.dgram && len(frame) > proto.MaxDatagram {
		return sendRejected
	}
	// The clock read happens before mu (never hold the lock across a
	// syscall-shaped call) and only when something consumes the stamp: a
	// delay model shifts release by it and stats derive SendDelayNs from
	// it. A bare undelayed link skips it — a zero release is always ready.
	var release time.Time
	if l.delay != 0 || l.stats != nil {
		release = time.Now()
	}
	l.mu.Lock()
	if l.closed || l.err != nil {
		l.mu.Unlock()
		return sendDead
	}
	if l.lossFrac > 0 {
		l.lossAcc += l.lossFrac
		if l.lossAcc >= 1 {
			l.lossAcc--
			l.mu.Unlock()
			return sendLost
		}
	}
	if len(l.q)-l.qhead >= sendQueueCap {
		l.mu.Unlock()
		return sendFull
	}
	if !release.IsZero() {
		release = release.Add(l.delay + l.extra)
	} else if l.extra != 0 {
		// Impair on an uninstrumented link: rare enough that reading the
		// clock under mu beats paying for it on every frame.
		release = time.Now().Add(l.extra)
	}
	l.q = append(l.q, queued{release: release, frame: frame, urgent: urgent})
	if l.idle {
		// Only touch the futex when the writer is actually parked; under
		// saturation the writer is busy and the signal (and its syscall)
		// is skipped entirely.
		l.cond.Signal()
	}
	l.mu.Unlock()
	return sendOK
}

// recycleOne returns an unsent frame buffer to the freelist.
func (l *linkCore) recycleOne(frame []byte) {
	if cap(frame) == 0 || cap(frame) > maxRecycledFrame {
		return
	}
	l.mu.Lock()
	if len(l.free) < maxFreeList {
		l.free = append(l.free, frame[:0])
	}
	l.mu.Unlock()
}

// Send enqueues a frame for delayed transmission, copying payload into a
// pooled buffer (the caller keeps ownership of payload). It never blocks on
// the network; a full queue drops the frame (the link is congested) and
// reports false, as does the impairment loss process when it claims the
// frame.
func (l *linkCore) Send(t proto.MsgType, payload []byte) bool {
	frame := l.AcquireFrame(t)
	frame = append(frame, payload...)
	return l.SendFrame(frame)
}

// SendFrame enqueues a frame built via AcquireFrame + proto.Append*.
// Ownership transfers to the link — the buffer is recycled once written or
// dropped, so the caller must not retain it after this call.
func (l *linkCore) SendFrame(frame []byte) bool {
	switch l.trySend(frame, frameUrgent(frame)) {
	case sendOK:
		return true
	default:
		if l.stats != nil {
			l.stats.DroppedFrames.Inc()
		}
		l.recycleOne(frame)
		return false
	}
}

// SendFrameWait is SendFrame with backpressure: a full queue blocks until
// the writer frees space instead of shedding. Returns false only when the
// link is closed or dead; a frame claimed by the loss process was accepted
// (and lost in flight), so it reports true.
func (l *linkCore) SendFrameWait(frame []byte) bool {
	for {
		switch l.trySend(frame, frameUrgent(frame)) {
		case sendOK:
			return true
		case sendLost:
			if l.stats != nil {
				l.stats.DroppedFrames.Inc()
			}
			l.recycleOne(frame)
			return true
		case sendDead, sendRejected:
			if l.stats != nil {
				l.stats.DroppedFrames.Inc()
			}
			l.recycleOne(frame)
			l.notifySpace() // chain the wakeup to any other blocked sender
			return false
		case sendFull:
			select {
			case <-l.space:
			case <-l.done:
			}
		}
	}
}

// Recv reads the next frame from the connection (receive side is undelayed;
// the sender already injected the one-way latency). The returned payload
// aliases the link's internal reuse buffer and is valid only until the next
// Recv; copy it to retain. One reader goroutine per link.
func (l *linkCore) Recv() (proto.MsgType, []byte, error) {
	var (
		typ     proto.MsgType
		payload []byte
		err     error
	)
	if l.dgram {
		if cap(l.recvBuf) < proto.FrameHeaderLen+proto.MaxDatagram {
			l.recvBuf = make([]byte, proto.FrameHeaderLen+proto.MaxDatagram)
		}
		buf := l.recvBuf[:cap(l.recvBuf)]
		var n int
		n, err = l.conn.Read(buf)
		if err == nil {
			typ, payload, err = proto.ParseDatagram(buf[:n])
		}
	} else {
		typ, payload, err = proto.ReadFrameReuse(l.conn, &l.recvBuf)
	}
	if err == nil && l.stats != nil {
		l.stats.RecvFrames.Inc()
		l.stats.RecvBytes.Add(int64(len(payload)))
	}
	return typ, payload, err
}

// Err returns the first write error, if any.
func (l *linkCore) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close stops the writer (already-queued frames are still flushed) and
// closes the connection.
func (l *linkCore) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	l.wg.Wait()
	l.conn.Close()
}

// addrConn adapts one remote address of a shared unconnected UDP socket to
// net.Conn for DatagramLink's writer. The listener that owns the socket
// does all reading (demuxing by source address), so Read is unsupported,
// and Close is a no-op — the socket outlives any one peer.
type addrConn struct {
	sock  *net.UDPConn
	raddr *net.UDPAddr
}

func (c *addrConn) Write(p []byte) (int, error) { return c.sock.WriteToUDP(p, c.raddr) }
func (c *addrConn) Read(p []byte) (int, error)  { return 0, io.EOF }
func (c *addrConn) Close() error                { return nil }
func (c *addrConn) LocalAddr() net.Addr         { return c.sock.LocalAddr() }
func (c *addrConn) RemoteAddr() net.Addr        { return c.raddr }

func (c *addrConn) SetDeadline(time.Time) error      { return nil }
func (c *addrConn) SetReadDeadline(time.Time) error  { return nil }
func (c *addrConn) SetWriteDeadline(time.Time) error { return nil }
