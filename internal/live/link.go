// Package live runs an actual CloudFog deployment over TCP: a cloud server
// owning the authoritative virtual world, supernode servers keeping
// replicas and streaming rendered segments, and player clients issuing
// actions and measuring end-to-end response latency. Wide-area propagation
// is injected per link at the sender, so the bytes on the wire are real and
// the timing is wide-area-shaped.
//
// This is the paper's architecture made concrete: player → cloud actions,
// cloud → supernode update deltas, supernode → player video segments.
package live

import (
	"net"
	"sync"
	"time"

	"cloudfog/internal/obs"
	"cloudfog/internal/proto"
)

// Link wraps a connection with sender-side one-way delay injection. Each
// frame is released delay after it was enqueued — ordering is preserved,
// but back-to-back frames are not head-of-line blocked behind each other's
// delay (they overlap in flight, as on a real path).
type Link struct {
	conn  net.Conn
	delay time.Duration

	// stats, when non-nil, counts frames/bytes each way, sheds, and the
	// sender-side holding delay. Attached at construction, before the
	// writer goroutine starts, so no synchronization is needed beyond the
	// instruments' own atomics.
	stats *obs.LinkStats

	mu     sync.Mutex
	sendq  chan queued
	closed bool
	err    error
	wg     sync.WaitGroup

	// Chaos impairment (mu-guarded): extra one-way delay and a fractional
	// loss rate applied at Send. Loss is deterministic — an accumulator
	// drops every 1/lossFrac-th frame — so an impaired run is reproducible
	// frame-for-frame given the same send sequence.
	extra    time.Duration
	lossFrac float64
	lossAcc  float64
}

type queued struct {
	release time.Time
	typ     proto.MsgType
	payload []byte
}

// NewLink wraps conn with the given one-way send delay. Close the link (not
// the conn) when done.
func NewLink(conn net.Conn, delay time.Duration) *Link {
	return NewLinkObs(conn, delay, nil)
}

// NewLinkObs is NewLink with an optional stats bundle (nil disables
// instrumentation with no per-frame cost beyond one nil-check).
func NewLinkObs(conn net.Conn, delay time.Duration, stats *obs.LinkStats) *Link {
	l := &Link{conn: conn, delay: delay, stats: stats, sendq: make(chan queued, 1024)}
	l.wg.Add(1)
	go l.writer()
	return l
}

func (l *Link) writer() {
	defer l.wg.Done()
	for q := range l.sendq {
		if d := time.Until(q.release); d > 0 {
			time.Sleep(d)
		}
		if err := proto.WriteFrame(l.conn, q.typ, q.payload); err != nil {
			l.mu.Lock()
			if l.err == nil {
				l.err = err
			}
			l.mu.Unlock()
			// Drain the rest so senders never block forever.
			for range l.sendq {
				if l.stats != nil {
					l.stats.DroppedFrames.Inc()
				}
			}
			return
		}
		if l.stats != nil {
			l.stats.SentFrames.Inc()
			l.stats.SentBytes.Add(int64(len(q.payload)))
			// The frame was enqueued at release−delay; the observed span
			// is queue wait + injected propagation + the write itself.
			l.stats.SendDelayNs.Observe(int64(time.Since(q.release) + l.delay))
		}
	}
}

// Impair sets the link's chaos impairment: extra one-way delay and a
// fractional frame loss rate in [0, 1). Zeroes restore the healthy link.
// Safe to call concurrently with Send.
func (l *Link) Impair(extra time.Duration, lossFrac float64) {
	if extra < 0 {
		extra = 0
	}
	if lossFrac < 0 {
		lossFrac = 0
	}
	if lossFrac >= 1 {
		lossFrac = 0.999
	}
	l.mu.Lock()
	l.extra = extra
	l.lossFrac = lossFrac
	if lossFrac == 0 {
		l.lossAcc = 0
	}
	l.mu.Unlock()
}

// Send enqueues a frame for delayed transmission. It never blocks on the
// network; a full queue drops the frame (the link is congested) and reports
// false, as does the impairment loss process when it claims the frame.
func (l *Link) Send(t proto.MsgType, payload []byte) bool {
	l.mu.Lock()
	if l.closed || l.err != nil {
		l.mu.Unlock()
		if l.stats != nil {
			l.stats.DroppedFrames.Inc()
		}
		return false
	}
	if l.lossFrac > 0 {
		l.lossAcc += l.lossFrac
		if l.lossAcc >= 1 {
			l.lossAcc--
			l.mu.Unlock()
			if l.stats != nil {
				l.stats.DroppedFrames.Inc()
			}
			return false
		}
	}
	delay := l.delay + l.extra
	// Enqueue while still holding mu: Close closes sendq under the same
	// lock, so a send can never race the close. The select never blocks (a
	// full queue drops), so holding the lock here is cheap.
	ok := false
	select {
	case l.sendq <- queued{release: time.Now().Add(delay), typ: t, payload: payload}:
		ok = true
	default:
	}
	l.mu.Unlock()
	if !ok && l.stats != nil {
		l.stats.DroppedFrames.Inc()
	}
	return ok
}

// Recv reads the next frame from the connection (receive side is undelayed;
// the sender already injected the one-way latency).
func (l *Link) Recv() (proto.MsgType, []byte, error) {
	typ, payload, err := proto.ReadFrame(l.conn)
	if err == nil && l.stats != nil {
		l.stats.RecvFrames.Inc()
		l.stats.RecvBytes.Add(int64(len(payload)))
	}
	return typ, payload, err
}

// Err returns the first write error, if any.
func (l *Link) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close stops the writer and closes the connection.
func (l *Link) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	close(l.sendq)
	l.mu.Unlock()
	l.wg.Wait()
	l.conn.Close()
}
