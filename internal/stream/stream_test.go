package stream

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"cloudfog/internal/game"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (Config{SegmentDuration: 0, PacketSize: 1500}).Validate(); err == nil {
		t.Fatal("zero segment duration accepted")
	}
	if err := (Config{SegmentDuration: time.Second, PacketSize: 0}).Validate(); err == nil {
		t.Fatal("zero packet size accepted")
	}
}

// cfg100 is a 100 ms-segment config used by tests that pin byte counts.
func cfg100() Config { return Config{SegmentDuration: 100 * time.Millisecond, PacketSize: 1500} }

func TestSegmentBytes(t *testing.T) {
	cfg := cfg100()
	// 800 kbps × 0.1 s = 80,000 bits = 10,000 bytes.
	if got := cfg.SegmentBytes(800_000); got != 10_000 {
		t.Fatalf("SegmentBytes(800kbps) = %d, want 10000", got)
	}
	// 1800 kbps × 0.1 s = 22,500 bytes => 15 packets of 1500.
	if got := cfg.PacketsPerSegment(1_800_000); got != 15 {
		t.Fatalf("PacketsPerSegment(1800kbps) = %d, want 15", got)
	}
}

func TestPacketsCoverBytesProperty(t *testing.T) {
	cfg := cfg100()
	f := func(kbps uint16) bool {
		bitrate := int64(kbps)*1000 + 1000 // >= 1kbps
		bytes := cfg.SegmentBytes(bitrate)
		packets := cfg.PacketsPerSegment(bitrate)
		return packets*cfg.PacketSize >= bytes && (packets-1)*cfg.PacketSize < bytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncoderStampsSegments(t *testing.T) {
	cfg := cfg100()
	g, _ := game.ByID(3) // 70ms budget, level 3 start
	e := NewEncoder(cfg, 42, g.Quality())
	s := e.Encode(100*time.Millisecond, 105*time.Millisecond, g)
	if s.PlayerID != 42 {
		t.Fatalf("player id = %d", s.PlayerID)
	}
	if s.ID != 0 {
		t.Fatalf("first segment id = %d, want 0", s.ID)
	}
	if s.Level.Level != 3 || s.Bytes != cfg.SegmentBytes(800_000) {
		t.Fatalf("segment level/bytes = %d/%d", s.Level.Level, s.Bytes)
	}
	if s.ExpectedArrival() != 170*time.Millisecond {
		t.Fatalf("t_a = %v, want t_m + L_r = 170ms", s.ExpectedArrival())
	}
	if s.LossTolerance != g.LossTolerance {
		t.Fatal("loss tolerance not propagated")
	}
	s2 := e.Encode(200*time.Millisecond, 205*time.Millisecond, g)
	if s2.ID != 1 {
		t.Fatalf("second segment id = %d, want 1", s2.ID)
	}
}

func TestEncoderSetLevelChangesSize(t *testing.T) {
	cfg := cfg100()
	g, _ := game.ByID(3)
	e := NewEncoder(cfg, 1, g.Quality())
	before := e.Encode(0, 0, g).Bytes
	e.SetLevel(game.MustLevelAt(2))
	after := e.Encode(0, 0, g).Bytes
	if after >= before {
		t.Fatalf("lower level did not shrink segment: %d -> %d", before, after)
	}
}

func TestSegmentDropAccounting(t *testing.T) {
	cfg := cfg100()
	g, _ := game.ByID(5) // loss tolerance 0.40
	e := NewEncoder(cfg, 1, g.Quality())
	s := e.Encode(0, 0, g)
	total := s.Packets
	budget := s.DropBudget()
	want := int(math.Floor(0.40 * float64(total)))
	if budget != want {
		t.Fatalf("drop budget = %d, want %d", budget, want)
	}
	s.Dropped = budget
	if s.DropBudget() != 0 {
		t.Fatalf("budget after max drops = %d, want 0", s.DropBudget())
	}
	if s.RemainingPackets() != total-budget {
		t.Fatal("remaining packets wrong")
	}
	if s.RemainingBytes(cfg.PacketSize) >= s.Bytes {
		t.Fatal("remaining bytes did not shrink")
	}
}

func TestRemainingBytesNeverNegative(t *testing.T) {
	s := &Segment{Bytes: 1000, Packets: 1, Dropped: 5}
	if s.RemainingBytes(1500) != 0 {
		t.Fatal("remaining bytes went negative")
	}
}

func TestReceiverBufferFillAndDrain(t *testing.T) {
	cfg := cfg100()
	b := NewReceiverBuffer(cfg, 800_000) // drains 100,000 B/s
	b.OnArrival(0, 50_000)
	b.Advance(200 * time.Millisecond) // plays 20,000 bytes
	if got := b.BufferedBytes(); math.Abs(got-30_000) > 1 {
		t.Fatalf("buffered = %v, want 30000", got)
	}
	// r in segments: 30,000 / 10,000 = 3 segments.
	if r := b.Segments(800_000); math.Abs(r-3) > 0.01 {
		t.Fatalf("r = %v, want 3", r)
	}
}

func TestReceiverBufferStalls(t *testing.T) {
	cfg := cfg100()
	b := NewReceiverBuffer(cfg, 800_000)
	b.OnArrival(0, 10_000) // 100ms of video
	b.Advance(300 * time.Millisecond)
	if !b.Stalled() {
		t.Fatal("buffer should be stalled")
	}
	// 100ms played, 200ms starved.
	if st := b.StallTime(); st < 190*time.Millisecond || st > 210*time.Millisecond {
		t.Fatalf("stall time = %v, want ~200ms", st)
	}
	if b.StallCount() != 1 {
		t.Fatalf("stall count = %d, want 1", b.StallCount())
	}
	// Refill ends the stall without incrementing the count again until the
	// next distinct interruption.
	b.OnArrival(310*time.Millisecond, 50_000)
	b.Advance(320 * time.Millisecond)
	if b.Stalled() {
		t.Fatal("buffer should have recovered")
	}
	b.Advance(2 * time.Second)
	if b.StallCount() != 2 {
		t.Fatalf("stall count = %d, want 2 after second interruption", b.StallCount())
	}
}

func TestReceiverBufferAdvanceMonotonic(t *testing.T) {
	b := NewReceiverBuffer(cfg100(), 800_000)
	b.OnArrival(time.Second, 10_000)
	before := b.BufferedBytes()
	b.Advance(500 * time.Millisecond) // time going backwards is ignored
	if b.BufferedBytes() != before {
		t.Fatal("backwards Advance changed state")
	}
}

func TestReceiverBufferPlaybackRateChange(t *testing.T) {
	b := NewReceiverBuffer(cfg100(), 800_000)
	b.OnArrival(0, 100_000)
	b.SetPlaybackBitrate(400_000) // drains 50,000 B/s now
	b.Advance(time.Second)
	if got := b.BufferedBytes(); math.Abs(got-50_000) > 1 {
		t.Fatalf("buffered after rate change = %v, want 50000", got)
	}
}

func TestContinuityMeterBasics(t *testing.T) {
	var m ContinuityMeter
	if m.Continuity() != 1 {
		t.Fatal("empty meter continuity != 1")
	}
	m.RecordPackets(9, 10)
	m.RecordPackets(10, 10)
	if got := m.Continuity(); math.Abs(got-0.95) > 1e-12 {
		t.Fatalf("continuity = %v, want 0.95", got)
	}
	if !m.Satisfied() {
		t.Fatal("95% on-time should satisfy")
	}
	m.RecordPackets(0, 10)
	if m.Satisfied() {
		t.Fatal("63% on-time should not satisfy")
	}
	if m.Total() != 30 {
		t.Fatalf("total = %d, want 30", m.Total())
	}
}

func TestContinuityMeterRecordSegment(t *testing.T) {
	cfg := cfg100()
	g, _ := game.ByID(4)
	e := NewEncoder(cfg, 1, g.Quality())
	s := e.Encode(0, 0, g)
	s.Dropped = 2

	var m ContinuityMeter
	m.RecordSegment(s, true)
	// Dropped packets count against continuity even when the rest is on time.
	want := float64(s.Packets-2) / float64(s.Packets)
	if got := m.Continuity(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("continuity = %v, want %v", got, want)
	}

	var late ContinuityMeter
	late.RecordSegment(s, false)
	if late.Continuity() != 0 {
		t.Fatal("late segment should contribute zero on-time packets")
	}
}

func TestContinuityMeterPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RecordPackets(11,10) did not panic")
		}
	}()
	var m ContinuityMeter
	m.RecordPackets(11, 10)
}

func TestBufferConservationProperty(t *testing.T) {
	// Property: played + buffered == arrived, regardless of arrival pattern.
	f := func(arrivals []uint16) bool {
		b := NewReceiverBuffer(cfg100(), 800_000)
		now := time.Duration(0)
		var arrived float64
		for _, a := range arrivals {
			now += 50 * time.Millisecond
			b.OnArrival(now, int(a))
			arrived += float64(a)
		}
		b.Advance(now + time.Second)
		return math.Abs(arrived-(b.BufferedBytes()+b.playedBytes)) < 1e-6 &&
			b.BufferedBytes() >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
