// Package stream models game-video streaming at segment and packet
// granularity: encoding segments at a ladder bitrate, packetizing them, and
// accounting for receiver-side buffering, playback and continuity.
//
// The CloudFog evaluation never inspects video content — only sizes, rates
// and deadlines matter — so a segment here is a (bitrate × duration) byte
// budget split into MTU-sized packets.
package stream

import (
	"fmt"
	"math"
	"time"

	"cloudfog/internal/game"
)

// Config holds the streaming constants shared by senders and receivers.
type Config struct {
	// SegmentDuration is the video time τ covered by one segment.
	SegmentDuration time.Duration
	// PacketSize is the packet payload size in bytes (MTU-sized).
	PacketSize int
}

// DefaultConfig returns the configuration used by all experiments: one video
// frame per segment (the paper streams at 30 fps and budgets response
// latency per action, so game video cannot buffer multi-frame segments) and
// 1500-byte packets.
func DefaultConfig() Config {
	return Config{SegmentDuration: time.Second / 30, PacketSize: 1500}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SegmentDuration <= 0 {
		return fmt.Errorf("stream: non-positive segment duration %v", c.SegmentDuration)
	}
	if c.PacketSize <= 0 {
		return fmt.Errorf("stream: non-positive packet size %d", c.PacketSize)
	}
	return nil
}

// SegmentBytes returns the size in bytes of one segment encoded at the given
// bitrate (bits/second).
func (c Config) SegmentBytes(bitrate int64) int {
	bits := float64(bitrate) * c.SegmentDuration.Seconds()
	return int(math.Ceil(bits / 8))
}

// PacketsPerSegment returns how many packets a segment of the given bitrate
// occupies.
func (c Config) PacketsPerSegment(bitrate int64) int {
	return (c.SegmentBytes(bitrate) + c.PacketSize - 1) / c.PacketSize
}

// Segment is one encoded chunk of a player's game video, queued at a
// supernode (or cloud server) for transmission.
type Segment struct {
	// ID orders segments within one player's stream.
	ID int64
	// PlayerID identifies the destination player.
	PlayerID int64
	// Level is the encoding operating point used for this segment.
	Level game.QualityLevel
	// Bytes is the encoded size; Packets the packet count.
	Bytes   int
	Packets int
	// Dropped counts packets the sender scheduler discarded from this
	// segment to meet deadlines.
	Dropped int
	// ActionTime t_m is when the player issued the action this segment
	// responds to.
	ActionTime time.Duration
	// LatencyReq is the game's network latency requirement L̃_r for this
	// segment; the expected arrival time t_a = ActionTime + LatencyReq.
	LatencyReq time.Duration
	// LossTolerance L̃_t is the game's packet-loss tolerance rate.
	LossTolerance float64
	// Enqueued is when the segment entered the sender buffer.
	Enqueued time.Duration
}

// ExpectedArrival returns t_a = t_m + L̃_r (paper §III-C).
func (s *Segment) ExpectedArrival() time.Duration { return s.ActionTime + s.LatencyReq }

// RemainingPackets returns the packets still to transmit after drops.
func (s *Segment) RemainingPackets() int { return s.Packets - s.Dropped }

// RemainingBytes returns the bytes still to transmit after drops.
func (s *Segment) RemainingBytes(packetSize int) int {
	rem := s.Bytes - s.Dropped*packetSize
	if rem < 0 {
		return 0
	}
	return rem
}

// DropBudget returns how many more packets may be dropped from this segment
// without exceeding its game's loss tolerance rate.
func (s *Segment) DropBudget() int {
	max := int(math.Floor(s.LossTolerance * float64(s.Packets)))
	if s.Dropped >= max {
		return 0
	}
	return max - s.Dropped
}

// Encoder produces segments for one player's stream at a mutable quality
// level. The adaptation strategy moves the level; the encoder just stamps
// segments.
type Encoder struct {
	cfg      Config
	playerID int64
	level    game.QualityLevel
	nextID   int64
}

// NewEncoder returns an encoder starting at the given ladder level.
func NewEncoder(cfg Config, playerID int64, start game.QualityLevel) *Encoder {
	return &Encoder{cfg: cfg, playerID: playerID, level: start}
}

// Level returns the current encoding operating point.
func (e *Encoder) Level() game.QualityLevel { return e.level }

// SetLevel changes the encoding operating point for subsequent segments.
func (e *Encoder) SetLevel(q game.QualityLevel) { e.level = q }

// Encode produces the next segment for an action issued at actionTime, for a
// game with the given tolerances.
func (e *Encoder) Encode(actionTime, enqueued time.Duration, g game.Game) *Segment {
	s := &Segment{
		ID:            e.nextID,
		PlayerID:      e.playerID,
		Level:         e.level,
		Bytes:         e.cfg.SegmentBytes(e.level.Bitrate),
		Packets:       e.cfg.PacketsPerSegment(e.level.Bitrate),
		ActionTime:    actionTime,
		LatencyReq:    g.NetworkBudget(),
		LossTolerance: g.LossTolerance,
		Enqueued:      enqueued,
	}
	e.nextID++
	return s
}

// EncodeInto is Encode writing into caller-provided storage: it overwrites
// every field of s (including Dropped) with the next segment's state. It
// exists so the QoE hot loop can recycle segments through a pool instead of
// allocating one per simulated frame.
func (e *Encoder) EncodeInto(s *Segment, actionTime, enqueued time.Duration, g game.Game) {
	*s = Segment{
		ID:            e.nextID,
		PlayerID:      e.playerID,
		Level:         e.level,
		Bytes:         e.cfg.SegmentBytes(e.level.Bitrate),
		Packets:       e.cfg.PacketsPerSegment(e.level.Bitrate),
		ActionTime:    actionTime,
		LatencyReq:    g.NetworkBudget(),
		LossTolerance: g.LossTolerance,
		Enqueued:      enqueued,
	}
	e.nextID++
}

// ReceiverBuffer models the player-side segment buffer of §III-B: arrivals
// add bytes, playback drains at the current video bitrate, and the occupancy
// in segments (r of Eq. 8) drives the encoding-rate adaptation.
type ReceiverBuffer struct {
	cfg          Config
	arrivedBytes float64
	playedBytes  float64
	lastAdvance  time.Duration
	playbackBits float64 // playback rate b_p in bits/second
	playing      bool
	prebuffer    float64
	stallTime    time.Duration
	stallCount   int
	stalled      bool
}

// NewReceiverBuffer returns a buffer playing back at the given bitrate.
func NewReceiverBuffer(cfg Config, playbackBitrate int64) *ReceiverBuffer {
	return &ReceiverBuffer{cfg: cfg, playbackBits: float64(playbackBitrate), playing: true}
}

// SetPrebuffer delays playback start until the given number of bytes has
// been buffered. Game players hold a small startup buffer (a couple of
// frames) so that the occupancy signal r of Eq. 8 has headroom in both
// directions; without it a healthy stream would sit at r ~ 0 and the
// adaptation of §III-B would spuriously adjust down.
func (b *ReceiverBuffer) SetPrebuffer(bytes float64) {
	if b.arrivedBytes-b.playedBytes < bytes {
		b.playing = false
		b.prebuffer = bytes
	}
}

// SetPlaybackBitrate changes the playback drain rate (the player switched
// quality levels along with the encoder).
func (b *ReceiverBuffer) SetPlaybackBitrate(bitrate int64) { b.playbackBits = float64(bitrate) }

// OnArrival records delivery of n bytes at virtual time now.
func (b *ReceiverBuffer) OnArrival(now time.Duration, n int) {
	b.Advance(now)
	b.arrivedBytes += float64(n)
}

// Advance plays video forward to virtual time now, draining the buffer at
// the playback bitrate and accounting stalls when it runs dry.
func (b *ReceiverBuffer) Advance(now time.Duration) {
	if now <= b.lastAdvance {
		return
	}
	dt := (now - b.lastAdvance).Seconds()
	b.lastAdvance = now
	if !b.playing {
		if b.arrivedBytes-b.playedBytes >= b.prebuffer {
			b.playing = true
		}
		return
	}
	want := b.playbackBits / 8 * dt
	avail := b.arrivedBytes - b.playedBytes
	if want <= avail {
		b.playedBytes += want
		b.stalled = false
		return
	}
	// Ran dry: play what is buffered, stall for the remainder of dt.
	b.playedBytes += avail
	short := want - avail
	stallSec := short / (b.playbackBits / 8)
	b.stallTime += time.Duration(stallSec * float64(time.Second))
	if !b.stalled {
		b.stallCount++
		b.stalled = true
	}
}

// BufferedBytes returns the bytes buffered and not yet played.
func (b *ReceiverBuffer) BufferedBytes() float64 { return b.arrivedBytes - b.playedBytes }

// Segments returns the buffer occupancy r in units of segments at the given
// bitrate (Eq. 8: r = s(t_k)/τ with τ expressed as a segment's byte size).
func (b *ReceiverBuffer) Segments(bitrate int64) float64 {
	seg := float64(b.cfg.SegmentBytes(bitrate))
	if seg <= 0 {
		return 0
	}
	return b.BufferedBytes() / seg
}

// StallTime returns the accumulated playback-stall time.
func (b *ReceiverBuffer) StallTime() time.Duration { return b.stallTime }

// StallCount returns the number of distinct playback interruptions.
func (b *ReceiverBuffer) StallCount() int { return b.stallCount }

// Stalled reports whether playback is currently starved.
func (b *ReceiverBuffer) Stalled() bool { return b.stalled }

// Playing reports whether playback has started (the prebuffer threshold has
// been reached).
func (b *ReceiverBuffer) Playing() bool { return b.playing }

// ContinuityMeter measures playback continuity as the paper does: the
// proportion of packets that arrive within the required response latency
// over all packets of a game video (dropped packets never arrive on time).
type ContinuityMeter struct {
	onTime int64
	total  int64
}

// RecordPackets accounts n packets of which onTime arrived within deadline.
func (m *ContinuityMeter) RecordPackets(onTime, n int) {
	if onTime > n {
		panic(fmt.Sprintf("stream: onTime %d > total %d", onTime, n))
	}
	m.onTime += int64(onTime)
	m.total += int64(n)
}

// RecordSegment accounts a whole segment: its surviving packets arrived
// on time or late; its dropped packets count as not-on-time.
func (m *ContinuityMeter) RecordSegment(s *Segment, arrivedOnTime bool) {
	on := 0
	if arrivedOnTime {
		on = s.RemainingPackets()
	}
	m.RecordPackets(on, s.Packets)
}

// Continuity returns the on-time fraction, or 1 when nothing was recorded
// (an idle stream has not been interrupted).
func (m *ContinuityMeter) Continuity() float64 {
	if m.total == 0 {
		return 1
	}
	return float64(m.onTime) / float64(m.total)
}

// Total returns the number of packets recorded.
func (m *ContinuityMeter) Total() int64 { return m.total }

// OnTime returns the number of packets recorded as on time. Together with
// Total these are the meter's raw integer tallies: integer addition is
// associative, so multi-epoch runs can merge per-player continuity exactly
// however the epochs were executed.
func (m *ContinuityMeter) OnTime() int64 { return m.onTime }

// SatisfactionThreshold is the paper's satisfied-player bar: a player who
// receives 95% of game packets within the game's response latency is
// satisfied.
const SatisfactionThreshold = 0.95

// Satisfied reports whether the stream meets the satisfaction threshold.
func (m *ContinuityMeter) Satisfied() bool {
	return m.Continuity() >= SatisfactionThreshold
}
