// Package trust implements the CloudFog paper's second future-work item
// (§V): "the security issues such as dealing with malicious supernodes".
//
// Supernodes must be reliable — a malicious or broken one can serve
// corrupted streams or silently drop segments (§III-A1). The registry keeps
// a Beta-reputation estimate per supernode from player-reported delivery
// outcomes: the score is the Laplace-smoothed success rate, old evidence
// decays so a machine can redeem itself or go bad, and supernodes whose
// score falls below a threshold (after a minimum of evidence) are
// blacklisted. The cloud consults the blacklist when building assignment
// shortlists.
package trust

import (
	"sort"
	"sync"
)

// Config parameterizes the reputation model.
type Config struct {
	// BlacklistBelow is the score threshold under which a supernode is
	// excluded from assignment. Default 0.6.
	BlacklistBelow float64
	// MinReports is the evidence required before a supernode can be
	// blacklisted (protects new contributors from early bad luck).
	// Default 20.
	MinReports int
	// Decay multiplies accumulated evidence on each Report, bounding the
	// memory so recent behavior dominates. Default 0.995.
	Decay float64
}

// DefaultConfig returns the defaults.
func DefaultConfig() Config {
	return Config{BlacklistBelow: 0.6, MinReports: 20, Decay: 0.995}
}

// Registry tracks per-supernode reputation. It is safe for concurrent use.
type Registry struct {
	cfg Config

	mu    sync.Mutex
	stats map[int64]*record
}

type record struct {
	good, bad float64
}

// NewRegistry returns a registry with the given configuration; zero-value
// fields fall back to defaults.
func NewRegistry(cfg Config) *Registry {
	if cfg.BlacklistBelow == 0 {
		cfg.BlacklistBelow = 0.6
	}
	if cfg.MinReports == 0 {
		cfg.MinReports = 20
	}
	if cfg.Decay == 0 {
		cfg.Decay = 0.995
	}
	return &Registry{cfg: cfg, stats: make(map[int64]*record)}
}

// Report records one delivery outcome for a supernode: ok means the player
// received its segment intact and on time.
func (r *Registry) Report(snID int64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.stats[snID]
	if rec == nil {
		rec = &record{}
		r.stats[snID] = rec
	}
	rec.good *= r.cfg.Decay
	rec.bad *= r.cfg.Decay
	if ok {
		rec.good++
	} else {
		rec.bad++
	}
}

// Score returns the supernode's reputation in [0,1]: the Laplace-smoothed
// success rate (good+1)/(good+bad+2). Unknown supernodes score 0.5.
func (r *Registry) Score(snID int64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.stats[snID]
	if rec == nil {
		return 0.5
	}
	return (rec.good + 1) / (rec.good + rec.bad + 2)
}

// Reports returns the (decayed) evidence volume for a supernode.
func (r *Registry) Reports(snID int64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.stats[snID]
	if rec == nil {
		return 0
	}
	return rec.good + rec.bad
}

// Blacklisted reports whether the supernode has enough evidence and a score
// below the threshold.
func (r *Registry) Blacklisted(snID int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.stats[snID]
	if rec == nil {
		return false
	}
	n := rec.good + rec.bad
	if n < float64(r.cfg.MinReports) {
		return false
	}
	score := (rec.good + 1) / (n + 2)
	return score < r.cfg.BlacklistBelow
}

// Blacklist returns the blacklisted supernode IDs, sorted.
func (r *Registry) Blacklist() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []int64
	for id, rec := range r.stats {
		n := rec.good + rec.bad
		if n < float64(r.cfg.MinReports) {
			continue
		}
		if (rec.good+1)/(n+2) < r.cfg.BlacklistBelow {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Forget removes a supernode's history (contract terminated).
func (r *Registry) Forget(snID int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.stats, snID)
}
