package trust

import (
	"sync"
	"testing"

	"cloudfog/internal/core"
	"cloudfog/internal/game"
	"cloudfog/internal/geo"
	"cloudfog/internal/sim"
)

func TestUnknownSupernodeIsNeutral(t *testing.T) {
	r := NewRegistry(DefaultConfig())
	if r.Score(1) != 0.5 {
		t.Fatalf("unknown score = %v, want 0.5", r.Score(1))
	}
	if r.Blacklisted(1) {
		t.Fatal("unknown supernode blacklisted")
	}
	if r.Reports(1) != 0 {
		t.Fatal("phantom reports")
	}
}

func TestScoreTracksOutcomes(t *testing.T) {
	r := NewRegistry(DefaultConfig())
	for i := 0; i < 50; i++ {
		r.Report(1, true)
		r.Report(2, i%2 == 0) // 50% success
		r.Report(3, false)
	}
	if s := r.Score(1); s < 0.9 {
		t.Fatalf("reliable supernode scores %v", s)
	}
	if s := r.Score(2); s < 0.4 || s > 0.6 {
		t.Fatalf("flaky supernode scores %v, want ~0.5", s)
	}
	if s := r.Score(3); s > 0.1 {
		t.Fatalf("malicious supernode scores %v", s)
	}
}

func TestBlacklistRequiresEvidence(t *testing.T) {
	r := NewRegistry(Config{BlacklistBelow: 0.6, MinReports: 20, Decay: 1})
	for i := 0; i < 10; i++ {
		r.Report(1, false)
	}
	if r.Blacklisted(1) {
		t.Fatal("blacklisted on thin evidence")
	}
	for i := 0; i < 15; i++ {
		r.Report(1, false)
	}
	if !r.Blacklisted(1) {
		t.Fatal("malicious supernode not blacklisted with ample evidence")
	}
	if bl := r.Blacklist(); len(bl) != 1 || bl[0] != 1 {
		t.Fatalf("blacklist = %v", bl)
	}
}

func TestDecayAllowsRedemption(t *testing.T) {
	// Decay 0.9 bounds total evidence at 10, so the minimum must sit below.
	r := NewRegistry(Config{BlacklistBelow: 0.6, MinReports: 8, Decay: 0.9})
	for i := 0; i < 40; i++ {
		r.Report(1, false)
	}
	if !r.Blacklisted(1) {
		t.Fatal("setup: should be blacklisted")
	}
	// A long run of good behavior outweighs the decayed bad history.
	for i := 0; i < 80; i++ {
		r.Report(1, true)
	}
	if r.Blacklisted(1) {
		t.Fatalf("no redemption after sustained good behavior (score %v)", r.Score(1))
	}
}

func TestForget(t *testing.T) {
	r := NewRegistry(DefaultConfig())
	for i := 0; i < 30; i++ {
		r.Report(1, false)
	}
	r.Forget(1)
	if r.Blacklisted(1) || r.Score(1) != 0.5 {
		t.Fatal("history survived Forget")
	}
}

func TestConcurrentReports(t *testing.T) {
	r := NewRegistry(DefaultConfig())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Report(int64(g%3), i%3 != 0)
				r.Score(int64(g % 3))
				r.Blacklisted(int64(g % 3))
			}
		}(g)
	}
	wg.Wait()
}

// TestFogSkipsBlacklistedSupernodes is the integration check: once the
// registry blacklists a supernode, the assignment protocol routes around it.
func TestFogSkipsBlacklistedSupernodes(t *testing.T) {
	cfg := core.DefaultConfig(41)
	cfg.Locator.ErrorSigma = 0
	reg := NewRegistry(Config{BlacklistBelow: 0.6, MinReports: 10, Decay: 1})
	cfg.Exclude = reg.Blacklisted

	center := cfg.Region.Center()
	dc := core.NewDatacenter(2_000_000, geo.Point{X: center.X + 300, Y: center.Y}, cfg.DCEgress)
	sns := make([]*core.Supernode, 8)
	for i := range sns {
		pos := geo.Point{X: center.X + float64(i*20), Y: center.Y + 10}
		sns[i] = core.NewSupernode(1_000_000+int64(i), pos, 10, 10*cfg.UplinkPerSlot)
	}
	fog, err := core.BuildFog(cfg, []*core.Datacenter{dc}, sns, sim.NewRand(42))
	if err != nil {
		t.Fatal(err)
	}

	g, _ := game.ByID(5)
	probe := func(id int64) *core.Player {
		p := &core.Player{ID: id, Pos: center, Game: g, Downlink: 20_000_000}
		fog.Join(p)
		return p
	}

	p1 := probe(1)
	if p1.Attached.Kind != core.AttachSupernode {
		t.Skip("landscape draw left no qualified supernode") // seed-dependent guard
	}
	evil := p1.Attached.SN
	fog.Leave(p1)

	// Players report the supernode dropping everything.
	for i := 0; i < 30; i++ {
		reg.Report(evil.ID, false)
	}
	if !reg.Blacklisted(evil.ID) {
		t.Fatal("registry did not blacklist")
	}

	// Every subsequent join must avoid it.
	for i := int64(10); i < 30; i++ {
		p := probe(i)
		if p.Attached.Kind == core.AttachSupernode && p.Attached.SN == evil {
			t.Fatal("blacklisted supernode still serving new players")
		}
	}
	if evil.Load() != 0 {
		t.Fatalf("blacklisted supernode has load %d", evil.Load())
	}
}
