// Package sched implements CloudFog's deadline-driven sender buffer
// scheduling (paper §III-C, Eqs. 12-14, Fig. 4).
//
// A supernode has a single queuing buffer for the video segments of all the
// players it supports. Segments are kept in ascending order of expected
// arrival time t_a = t_m + L̃_r (earliest deadline first), so tight-deadline
// games transmit first. When a segment's estimated response latency
// (Eq. 12) exceeds its game's requirement, the supernode drops packets from
// that segment and the segments queued ahead of it, splitting the D_i
// packets to drop proportionally to each segment's loss tolerance L̃_t
// weighted by an exponential decay φ = e^{-λt} of its queue waiting time
// (Eq. 14) — older segments, which already shed packets in earlier rounds,
// are protected from repeated dropping.
package sched

import (
	"fmt"
	"math"
	"sort"
	"time"

	"cloudfog/internal/stream"
)

// Config parameterizes the scheduler. Zero-value fields are replaced by
// defaults in NewBuffer.
type Config struct {
	// Lambda is the decay rate λ (per second) of φ = e^{-λt} in Eq. 14.
	// The paper's default is 1.
	Lambda float64
	// PropWindow is m: how many recently sent packets' propagation delays
	// feed the per-player propagation estimate (Eq. 13). Default 10.
	PropWindow int
	// EDF orders the queue by expected arrival time. Disabled, the buffer
	// degenerates to FIFO — kept as an ablation switch.
	EDF bool
	// DropEnabled enables deadline-driven packet dropping. Disabled, the
	// buffer only reorders — the second ablation switch.
	DropEnabled bool
	// UniformDrop replaces Eq. 14's tolerance-and-decay weighting with
	// equal weights across segments — an ablation of the drop policy.
	UniformDrop bool
	// MaxQueueDelay bounds the queue: the buffer holds at most
	// MaxQueueDelay × bandwidth bytes, and segments arriving at a full
	// buffer are tail-dropped. A supernode's single queuing buffer
	// (paper ref [23], an adaptive congestion-control scheme) is
	// bounded; an unbounded queue would turn overload into seconds of
	// delay instead of loss. Zero means unbounded.
	MaxQueueDelay time.Duration
}

// DefaultConfig returns the paper's defaults: λ = 1, m = 10, EDF ordering
// and deadline-driven dropping both enabled.
func DefaultConfig() Config {
	return Config{Lambda: 1, PropWindow: 10, EDF: true, DropEnabled: true,
		MaxQueueDelay: 40 * time.Millisecond}
}

// Buffer is one supernode's sender-side segment queue.
type Buffer struct {
	cfg       Config
	streamCfg stream.Config
	bandwidth float64 // uplink λ_r in bits/second
	queue     []*stream.Segment
	maxBytes  int // 0 = unbounded
	evicted   []*stream.Segment
	prop      map[int64]*propEstimator

	// Counters for metrics.
	enqueued        int64
	sentSegments    int64
	droppedPackets  int64
	fullyDropped    int64
	tailDropped     int64
	deadlineActions int64
}

// NewBuffer returns a sender buffer draining at the given uplink bandwidth
// (bits per second).
func NewBuffer(cfg Config, streamCfg stream.Config, bandwidthBits int64) *Buffer {
	if bandwidthBits <= 0 {
		panic(fmt.Sprintf("sched: non-positive bandwidth %d", bandwidthBits))
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 1
	}
	if cfg.PropWindow == 0 {
		cfg.PropWindow = 10
	}
	maxBytes := 0
	if cfg.MaxQueueDelay > 0 {
		maxBytes = int(float64(bandwidthBits) * cfg.MaxQueueDelay.Seconds() / 8)
	}
	return &Buffer{
		cfg:       cfg,
		streamCfg: streamCfg,
		bandwidth: float64(bandwidthBits),
		maxBytes:  maxBytes,
		prop:      make(map[int64]*propEstimator),
	}
}

// Len returns the number of segments queued.
func (b *Buffer) Len() int { return len(b.queue) }

// QueuedBytes returns the remaining (undropped) bytes queued.
func (b *Buffer) QueuedBytes() int {
	total := 0
	for _, s := range b.queue {
		total += s.RemainingBytes(b.streamCfg.PacketSize)
	}
	return total
}

// TailDropped returns how many whole segments were shed by the queue bound
// (rejected arrivals plus evictions).
func (b *Buffer) TailDropped() int64 { return b.tailDropped }

// TakeEvicted returns the segments shed by the queue bound since the last
// call, so callers can account their packets as lost.
func (b *Buffer) TakeEvicted() []*stream.Segment {
	out := b.evicted
	b.evicted = nil
	return out
}

// Bandwidth returns the uplink rate λ_r in bits per second.
func (b *Buffer) Bandwidth() int64 { return int64(b.bandwidth) }

// Stats reports scheduler counters: segments enqueued and sent, packets
// dropped by the deadline policy, segments whose packets were all dropped,
// and how many deadline-violation repairs ran.
func (b *Buffer) Stats() (enqueued, sent, droppedPackets, fullyDropped, repairs int64) {
	return b.enqueued, b.sentSegments, b.droppedPackets, b.fullyDropped, b.deadlineActions
}

// RecordPropagation feeds one measured packet propagation delay for a
// player into the Eq. 13 estimator.
func (b *Buffer) RecordPropagation(playerID int64, d time.Duration) {
	est, ok := b.prop[playerID]
	if !ok {
		est = newPropEstimator(b.cfg.PropWindow)
		b.prop[playerID] = est
	}
	est.record(d)
}

// PropagationEstimate returns l_p for a player: the mean of the last m
// recorded packet propagation delays (Eq. 13), or zero if none recorded.
func (b *Buffer) PropagationEstimate(playerID int64) time.Duration {
	if est, ok := b.prop[playerID]; ok {
		return est.mean()
	}
	return 0
}

// ForgetPlayer discards the propagation history of a departed player.
func (b *Buffer) ForgetPlayer(playerID int64) { delete(b.prop, playerID) }

// Enqueue inserts a segment (EDF by expected arrival time, or FIFO when the
// ablation switch is off) and, if dropping is enabled, repairs any deadline
// violations the insertion reveals by dropping packets per Eq. 14.
//
// A full buffer sheds load: in FIFO mode the arriving segment is
// tail-dropped; in EDF mode the buffer evicts latest-deadline segments
// first (urgent video is worth more than lenient video that would miss its
// deadline anyway), which may or may not include the arriving segment.
// Enqueue reports whether the arriving segment was accepted; evicted
// segments (including a rejected arrival) are retrievable once via
// TakeEvicted so callers can account their packets as lost.
func (b *Buffer) Enqueue(now time.Duration, seg *stream.Segment) bool {
	seg.Enqueued = now
	b.enqueued++
	if b.maxBytes > 0 {
		segBytes := seg.RemainingBytes(b.streamCfg.PacketSize)
		for b.QueuedBytes()+segBytes > b.maxBytes {
			if !b.cfg.EDF || len(b.queue) == 0 ||
				b.queue[len(b.queue)-1].ExpectedArrival() <= seg.ExpectedArrival() {
				// The arrival is the most expendable segment.
				b.tailDropped++
				b.evicted = append(b.evicted, seg)
				return false
			}
			tail := b.queue[len(b.queue)-1]
			b.queue[len(b.queue)-1] = nil
			b.queue = b.queue[:len(b.queue)-1]
			b.tailDropped++
			b.evicted = append(b.evicted, tail)
		}
	}
	at := len(b.queue)
	if b.cfg.EDF {
		// Insert in ascending order of expected arrival time; ties keep
		// insertion order (stable with respect to earlier segments).
		at = sort.Search(len(b.queue), func(i int) bool {
			return b.queue[i].ExpectedArrival() > seg.ExpectedArrival()
		})
		b.queue = append(b.queue, nil)
		copy(b.queue[at+1:], b.queue[at:])
		b.queue[at] = seg
	} else {
		b.queue = append(b.queue, seg)
	}
	if b.cfg.DropEnabled {
		b.repairDeadlines(now, at)
	}
	return true
}

// Dequeue removes and returns the head segment with at least one surviving
// packet, or nil if the buffer is empty. Segments whose packets were all
// dropped are discarded (and counted) without being returned.
func (b *Buffer) Dequeue(now time.Duration) *stream.Segment {
	for {
		seg := b.DequeueAny(now)
		if seg == nil {
			return nil
		}
		if seg.RemainingPackets() > 0 {
			return seg
		}
	}
}

// DequeueAny removes and returns the head segment even when all of its
// packets were dropped, so callers can account the loss (a fully-dropped
// segment's packets still count against playback continuity). It returns
// nil when the buffer is empty.
func (b *Buffer) DequeueAny(now time.Duration) *stream.Segment {
	if len(b.queue) == 0 {
		return nil
	}
	seg := b.queue[0]
	b.queue[0] = nil
	b.queue = b.queue[1:]
	if seg.RemainingPackets() <= 0 {
		b.fullyDropped++
	} else {
		b.sentSegments++
	}
	return seg
}

// Peek returns the head segment without removing it, or nil.
func (b *Buffer) Peek() *stream.Segment {
	if len(b.queue) == 0 {
		return nil
	}
	return b.queue[0]
}

// TransmissionTime returns l_t for a segment at the buffer's uplink rate:
// remaining bytes divided by λ_r.
func (b *Buffer) TransmissionTime(seg *stream.Segment) time.Duration {
	bytes := seg.RemainingBytes(b.streamCfg.PacketSize)
	return time.Duration(float64(bytes) * 8 / b.bandwidth * float64(time.Second))
}

// packetTime is σ: the average latency reduced by dropping one packet — one
// packet's transmission time at the uplink rate.
func (b *Buffer) packetTime() time.Duration {
	return time.Duration(float64(b.streamCfg.PacketSize) * 8 / b.bandwidth * float64(time.Second))
}

// EstimateResponseLatency implements Eq. 12 for the segment at queue
// position idx: the time already elapsed since the player's action (which
// covers the server receiving delay l_r and processing l_s), plus queueing
// delay l_q = np_i/λ_r for the bytes ahead of it, transmission l_t, and the
// estimated propagation l_p to its player.
func (b *Buffer) EstimateResponseLatency(now time.Duration, idx int) time.Duration {
	if idx < 0 || idx >= len(b.queue) {
		panic(fmt.Sprintf("sched: index %d out of range [0,%d)", idx, len(b.queue)))
	}
	seg := b.queue[idx]
	elapsed := now - seg.ActionTime
	if elapsed < 0 {
		elapsed = 0
	}
	var precedingBytes int
	for _, p := range b.queue[:idx] {
		precedingBytes += p.RemainingBytes(b.streamCfg.PacketSize)
	}
	lq := time.Duration(float64(precedingBytes) * 8 / b.bandwidth * float64(time.Second))
	lt := b.TransmissionTime(seg)
	lp := b.PropagationEstimate(seg.PlayerID)
	return elapsed + lq + lt + lp
}

// repairDeadlines scans the queue head-to-tail; for each segment whose
// estimated response latency exceeds its requirement it computes the packet
// deficit D_i = (L_r - L̃_r)/σ and distributes drops over the segment and
// its predecessors per Eq. 14, capped by each segment's loss-tolerance
// budget. Earlier repairs shrink preceding segments, so later estimates see
// the improvement.
func (b *Buffer) repairDeadlines(now time.Duration, from int) {
	sigma := b.packetTime()
	if sigma <= 0 {
		return
	}
	// Only segments at or after the insertion point can have become late:
	// an EDF insert does not delay anything queued ahead of it. Single
	// pass with running prefix sums of preceding bytes and remaining drop
	// budget; dropAcross only runs when the prefix can actually shed
	// packets, which keeps steady-state overload (budgets exhausted) at
	// O(queue) per enqueue instead of O(queue²).
	precedingBytes := 0
	budgetAhead := 0
	for _, p := range b.queue[:from] {
		precedingBytes += p.RemainingBytes(b.streamCfg.PacketSize)
		budgetAhead += p.DropBudget()
	}
	for i := from; i < len(b.queue); i++ {
		seg := b.queue[i]
		elapsed := now - seg.ActionTime
		if elapsed < 0 {
			elapsed = 0
		}
		lq := time.Duration(float64(precedingBytes) * 8 / b.bandwidth * float64(time.Second))
		lt := b.TransmissionTime(seg)
		lp := b.PropagationEstimate(seg.PlayerID)
		lr := elapsed + lq + lt + lp
		// Dropping queued packets only shrinks l_q and l_t; a segment whose
		// elapsed time plus propagation already exceeds its requirement is
		// late no matter what, and shedding other players' packets for it
		// would be pure loss.
		salvageable := elapsed+lp < seg.LatencyReq
		if lr > seg.LatencyReq && salvageable && budgetAhead+seg.DropBudget() > 0 {
			deficit := int(math.Ceil(float64(lr-seg.LatencyReq) / float64(sigma)))
			if deficit > 0 {
				b.deadlineActions++
				b.dropAcross(now, i, deficit)
				// Recompute the prefix up to i after drops.
				precedingBytes, budgetAhead = 0, 0
				for _, p := range b.queue[:i] {
					precedingBytes += p.RemainingBytes(b.streamCfg.PacketSize)
					budgetAhead += p.DropBudget()
				}
			}
		}
		precedingBytes += seg.RemainingBytes(b.streamCfg.PacketSize)
		budgetAhead += seg.DropBudget()
	}
}

// dropAcross drops up to deficit packets across queue[0..i] following
// Eq. 14: segment k's share is proportional to L̃_t_k × φ_k with
// φ_k = e^{-λ t_k} (t_k = time waited in queue), subject to each segment's
// loss-tolerance budget. Shares are integerized by largest remainder so the
// allocated total matches the deficit whenever budgets allow.
func (b *Buffer) dropAcross(now time.Duration, i, deficit int) {
	segs := b.queue[:i+1]
	weights := make([]float64, len(segs))
	budgets := make([]int, len(segs))
	for k, s := range segs {
		if b.cfg.UniformDrop {
			weights[k] = 1
		} else {
			waited := (now - s.Enqueued).Seconds()
			if waited < 0 {
				waited = 0
			}
			phi := math.Exp(-b.cfg.Lambda * waited)
			weights[k] = s.LossTolerance * phi
		}
		budgets[k] = s.DropBudget()
	}
	alloc := AllocateDrops(weights, budgets, deficit)
	for k, d := range alloc {
		if d > 0 {
			segs[k].Dropped += d
			b.droppedPackets += int64(d)
		}
	}
}

// AllocateDrops splits a total of `deficit` packet drops across segments
// with the given Eq. 14 weights, capping each segment at its budget and
// redistributing capped remainder among the rest. Fractional shares are
// integerized by largest remainder. It returns the per-segment allocation;
// the sum may fall short of deficit when budgets are exhausted.
func AllocateDrops(weights []float64, budgets []int, deficit int) []int {
	n := len(weights)
	if len(budgets) != n {
		panic("sched: AllocateDrops weight/budget length mismatch")
	}
	alloc := make([]int, n)
	remaining := deficit
	active := make([]bool, n)
	for k := range active {
		active[k] = budgets[k] > 0 && weights[k] > 0
	}
	// Iterate: proportional share, cap at budget, redistribute.
	for remaining > 0 {
		totalW := 0.0
		for k := range weights {
			if active[k] {
				totalW += weights[k]
			}
		}
		if totalW <= 0 {
			break
		}
		type share struct {
			k    int
			frac float64
		}
		whole := 0
		shares := make([]share, 0, n)
		add := make([]int, n)
		for k := range weights {
			if !active[k] {
				continue
			}
			exact := float64(remaining) * weights[k] / totalW
			w := int(math.Floor(exact))
			room := budgets[k] - alloc[k]
			if w > room {
				w = room
			}
			add[k] = w
			whole += w
			if w < room {
				shares = append(shares, share{k, exact - math.Floor(exact)})
			}
		}
		// Largest-remainder distribution of the leftover units.
		leftover := remaining - whole
		sort.Slice(shares, func(a, b int) bool { return shares[a].frac > shares[b].frac })
		for _, s := range shares {
			if leftover == 0 {
				break
			}
			if alloc[s.k]+add[s.k] < budgets[s.k] {
				add[s.k]++
				leftover--
			}
		}
		progressed := false
		for k := range add {
			if add[k] > 0 {
				alloc[k] += add[k]
				remaining -= add[k]
				progressed = true
			}
			if alloc[k] >= budgets[k] {
				active[k] = false
			}
		}
		if !progressed {
			break
		}
	}
	return alloc
}

// propEstimator keeps the last m propagation samples (Eq. 13).
type propEstimator struct {
	window  int
	samples []time.Duration
	next    int
	full    bool
	sum     time.Duration
}

func newPropEstimator(window int) *propEstimator {
	return &propEstimator{window: window, samples: make([]time.Duration, window)}
}

func (p *propEstimator) record(d time.Duration) {
	if p.full {
		p.sum -= p.samples[p.next]
	}
	p.samples[p.next] = d
	p.sum += d
	p.next++
	if p.next == p.window {
		p.next = 0
		p.full = true
	}
}

func (p *propEstimator) mean() time.Duration {
	n := p.next
	if p.full {
		n = p.window
	}
	if n == 0 {
		return 0
	}
	return p.sum / time.Duration(n)
}
