// Package sched implements CloudFog's deadline-driven sender buffer
// scheduling (paper §III-C, Eqs. 12-14, Fig. 4).
//
// A supernode has a single queuing buffer for the video segments of all the
// players it supports. Segments are kept in ascending order of expected
// arrival time t_a = t_m + L̃_r (earliest deadline first), so tight-deadline
// games transmit first. When a segment's estimated response latency
// (Eq. 12) exceeds its game's requirement, the supernode drops packets from
// that segment and the segments queued ahead of it, splitting the D_i
// packets to drop proportionally to each segment's loss tolerance L̃_t
// weighted by an exponential decay φ = e^{-λt} of its queue waiting time
// (Eq. 14) — older segments, which already shed packets in earlier rounds,
// are protected from repeated dropping.
package sched

import (
	"fmt"
	"math"
	"sort"
	"time"

	"cloudfog/internal/obs"
	"cloudfog/internal/stream"
)

// Config parameterizes the scheduler. Zero-value fields are replaced by
// defaults in NewBuffer.
type Config struct {
	// Lambda is the decay rate λ (per second) of φ = e^{-λt} in Eq. 14.
	// The paper's default is 1.
	Lambda float64
	// PropWindow is m: how many recently sent packets' propagation delays
	// feed the per-player propagation estimate (Eq. 13). Default 10.
	PropWindow int
	// EDF orders the queue by expected arrival time. Disabled, the buffer
	// degenerates to FIFO — kept as an ablation switch.
	EDF bool
	// DropEnabled enables deadline-driven packet dropping. Disabled, the
	// buffer only reorders — the second ablation switch.
	DropEnabled bool
	// UniformDrop replaces Eq. 14's tolerance-and-decay weighting with
	// equal weights across segments — an ablation of the drop policy.
	UniformDrop bool
	// MaxQueueDelay bounds the queue: the buffer holds at most
	// MaxQueueDelay × bandwidth bytes, and segments arriving at a full
	// buffer are tail-dropped. A supernode's single queuing buffer
	// (paper ref [23], an adaptive congestion-control scheme) is
	// bounded; an unbounded queue would turn overload into seconds of
	// delay instead of loss. Zero means unbounded.
	MaxQueueDelay time.Duration
	// Sink, when non-nil, receives an EventDropDecision for every Eq. 14
	// deadline repair (the late segment's player and packet deficit). The
	// hot path pays one nil-check when disabled.
	Sink obs.EventSink
}

// DefaultConfig returns the paper's defaults: λ = 1, m = 10, EDF ordering
// and deadline-driven dropping both enabled.
func DefaultConfig() Config {
	return Config{Lambda: 1, PropWindow: 10, EDF: true, DropEnabled: true,
		MaxQueueDelay: 40 * time.Millisecond}
}

// Buffer is one supernode's sender-side segment queue.
//
// The queue is a head-indexed slice — queue[head:] is the live window —
// so dequeues reuse the array instead of sliding the slice off its backing
// storage, and steady-state enqueue/dequeue cycles stop allocating once the
// buffer has seen its peak depth. queuedBytes tracks the remaining
// (undropped) queued bytes incrementally at every enqueue, dequeue,
// eviction, and packet drop, so the queue-bound check is O(1) per evicted
// segment instead of the O(queue) rescan it used to cost — overload used to
// degrade Enqueue to O(queue²).
type Buffer struct {
	cfg       Config
	streamCfg stream.Config
	bandwidth float64 // current uplink λ_r in bits/second (nominal × scale)
	nominal   float64 // the unimpaired uplink bandwidth
	queue     []*stream.Segment
	head      int // queue[head:] is the live queue
	maxBytes  int // 0 = unbounded
	evicted   []*stream.Segment
	prop      map[int64]*propEstimator

	// queuedBytes mirrors the sum of RemainingBytes over the live queue.
	// Queued segments must only shed packets through the buffer's own drop
	// path for the counter to stay exact.
	queuedBytes int
	scratch     dropScratch

	// estFree recycles propagation estimators across Reset cycles so a
	// pooled buffer stops allocating per player once it has seen its peak
	// population.
	estFree []*propEstimator

	// Counters for metrics.
	enqueued        int64
	sentSegments    int64
	droppedPackets  int64
	fullyDropped    int64
	tailDropped     int64
	deadlineActions int64
}

// NewBuffer returns a sender buffer draining at the given uplink bandwidth
// (bits per second).
func NewBuffer(cfg Config, streamCfg stream.Config, bandwidthBits int64) *Buffer {
	if bandwidthBits <= 0 {
		panic(fmt.Sprintf("sched: non-positive bandwidth %d", bandwidthBits))
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 1
	}
	if cfg.PropWindow == 0 {
		cfg.PropWindow = 10
	}
	maxBytes := 0
	if cfg.MaxQueueDelay > 0 {
		maxBytes = int(float64(bandwidthBits) * cfg.MaxQueueDelay.Seconds() / 8)
	}
	return &Buffer{
		cfg:       cfg,
		streamCfg: streamCfg,
		bandwidth: float64(bandwidthBits),
		nominal:   float64(bandwidthBits),
		maxBytes:  maxBytes,
		prop:      make(map[int64]*propEstimator),
	}
}

// Reset reinitializes the buffer in place for a new run with new
// parameters, as if freshly built by NewBuffer, while keeping every piece
// of grown storage: the queue array, the eviction list, the drop scratch,
// the estimator map's buckets, and the estimators themselves (moved to a
// freelist and re-dealt as players record propagation samples). A pooled
// buffer therefore stops allocating once it has seen its peak queue depth
// and population. Behavior is identical to a fresh buffer: estimators are
// zeroed before reuse and all counters restart at zero.
func (b *Buffer) Reset(cfg Config, streamCfg stream.Config, bandwidthBits int64) {
	if bandwidthBits <= 0 {
		panic(fmt.Sprintf("sched: non-positive bandwidth %d", bandwidthBits))
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 1
	}
	if cfg.PropWindow == 0 {
		cfg.PropWindow = 10
	}
	maxBytes := 0
	if cfg.MaxQueueDelay > 0 {
		maxBytes = int(float64(bandwidthBits) * cfg.MaxQueueDelay.Seconds() / 8)
	}
	for id, est := range b.prop {
		b.estFree = append(b.estFree, est)
		delete(b.prop, id)
	}
	if b.prop == nil {
		b.prop = make(map[int64]*propEstimator)
	}
	for i := range b.queue {
		b.queue[i] = nil
	}
	b.queue = b.queue[:0]
	b.head = 0
	b.ClearEvicted()
	b.cfg = cfg
	b.streamCfg = streamCfg
	b.bandwidth = float64(bandwidthBits)
	b.nominal = float64(bandwidthBits)
	b.maxBytes = maxBytes
	b.queuedBytes = 0
	b.enqueued, b.sentSegments, b.droppedPackets = 0, 0, 0
	b.fullyDropped, b.tailDropped, b.deadlineActions = 0, 0, 0
}

// SetBandwidthScale rescales the uplink to scale × the nominal bandwidth
// (fault injection's bandwidth collapse). The scale is floored at 1% so
// transmission times stay finite. The queue byte bound intentionally stays
// at the nominal sizing: a collapsed link sheds load through deadline
// drops and longer transmissions, not a shrunken tail-drop bound.
func (b *Buffer) SetBandwidthScale(scale float64) {
	if scale < 0.01 {
		scale = 0.01
	}
	b.bandwidth = b.nominal * scale
}

// live returns the live queue window.
func (b *Buffer) live() []*stream.Segment { return b.queue[b.head:] }

// Len returns the number of segments queued.
func (b *Buffer) Len() int { return len(b.queue) - b.head }

// QueuedBytes returns the remaining (undropped) bytes queued. It reads the
// incrementally-maintained counter, so it is O(1).
func (b *Buffer) QueuedBytes() int { return b.queuedBytes }

// recomputeQueuedBytes walks the live queue and sums remaining bytes — the
// O(n) ground truth the counter must match; used by tests and assertions.
func (b *Buffer) recomputeQueuedBytes() int {
	total := 0
	for _, s := range b.live() {
		total += s.RemainingBytes(b.streamCfg.PacketSize)
	}
	return total
}

// TailDropped returns how many whole segments were shed by the queue bound
// (rejected arrivals plus evictions).
func (b *Buffer) TailDropped() int64 { return b.tailDropped }

// Evicted returns the segments shed by the queue bound since the last
// ClearEvicted (or TakeEvicted), so callers can account their packets as
// lost. The returned slice is owned by the buffer; callers must finish with
// it before the next Enqueue and then call ClearEvicted.
func (b *Buffer) Evicted() []*stream.Segment { return b.evicted }

// ClearEvicted forgets the evicted segments while keeping the backing array
// for reuse — the allocation-free counterpart of TakeEvicted.
func (b *Buffer) ClearEvicted() {
	for i := range b.evicted {
		b.evicted[i] = nil
	}
	b.evicted = b.evicted[:0]
}

// TakeEvicted returns the segments shed by the queue bound since the last
// call and detaches them from the buffer. Prefer Evicted+ClearEvicted in hot
// loops: TakeEvicted hands over the backing array, so the next eviction
// allocates a fresh one.
func (b *Buffer) TakeEvicted() []*stream.Segment {
	out := b.evicted
	b.evicted = nil
	return out
}

// Bandwidth returns the uplink rate λ_r in bits per second.
func (b *Buffer) Bandwidth() int64 { return int64(b.bandwidth) }

// Stats reports scheduler counters: segments enqueued and sent, packets
// dropped by the deadline policy, segments whose packets were all dropped,
// and how many deadline-violation repairs ran.
func (b *Buffer) Stats() (enqueued, sent, droppedPackets, fullyDropped, repairs int64) {
	return b.enqueued, b.sentSegments, b.droppedPackets, b.fullyDropped, b.deadlineActions
}

// RecordPropagation feeds one measured packet propagation delay for a
// player into the Eq. 13 estimator.
func (b *Buffer) RecordPropagation(playerID int64, d time.Duration) {
	est, ok := b.prop[playerID]
	if !ok {
		est = b.takeEstimator()
		b.prop[playerID] = est
	}
	est.record(d)
}

// PropagationEstimate returns l_p for a player: the mean of the last m
// recorded packet propagation delays (Eq. 13), or zero if none recorded.
func (b *Buffer) PropagationEstimate(playerID int64) time.Duration {
	if est, ok := b.prop[playerID]; ok {
		return est.mean()
	}
	return 0
}

// ForgetPlayer discards the propagation history of a departed player.
func (b *Buffer) ForgetPlayer(playerID int64) { delete(b.prop, playerID) }

// Enqueue inserts a segment (EDF by expected arrival time, or FIFO when the
// ablation switch is off) and, if dropping is enabled, repairs any deadline
// violations the insertion reveals by dropping packets per Eq. 14.
//
// A full buffer sheds load: in FIFO mode the arriving segment is
// tail-dropped; in EDF mode the buffer evicts latest-deadline segments
// first (urgent video is worth more than lenient video that would miss its
// deadline anyway), which may or may not include the arriving segment.
// Enqueue reports whether the arriving segment was accepted; evicted
// segments (including a rejected arrival) are retrievable via
// Evicted/TakeEvicted so callers can account their packets as lost.
func (b *Buffer) Enqueue(now time.Duration, seg *stream.Segment) bool {
	seg.Enqueued = now
	b.enqueued++
	segBytes := seg.RemainingBytes(b.streamCfg.PacketSize)
	if b.maxBytes > 0 {
		for b.queuedBytes+segBytes > b.maxBytes {
			last := len(b.queue) - 1
			if !b.cfg.EDF || last < b.head ||
				b.queue[last].ExpectedArrival() <= seg.ExpectedArrival() {
				// The arrival is the most expendable segment.
				b.tailDropped++
				b.evicted = append(b.evicted, seg)
				return false
			}
			tail := b.queue[last]
			b.queue[last] = nil
			b.queue = b.queue[:last]
			b.queuedBytes -= tail.RemainingBytes(b.streamCfg.PacketSize)
			b.tailDropped++
			b.evicted = append(b.evicted, tail)
		}
	}
	// Make room for one more without growing past the peak live depth:
	// compact the window back to the array start when the tail is full.
	if len(b.queue) == cap(b.queue) && b.head > 0 {
		n := copy(b.queue, b.queue[b.head:])
		for i := n; i < len(b.queue); i++ {
			b.queue[i] = nil
		}
		b.queue = b.queue[:n]
		b.head = 0
	}
	q := b.live()
	at := len(q)
	if b.cfg.EDF {
		// Insert in ascending order of expected arrival time; ties keep
		// insertion order (stable with respect to earlier segments).
		at = sort.Search(len(q), func(i int) bool {
			return q[i].ExpectedArrival() > seg.ExpectedArrival()
		})
	}
	b.queue = append(b.queue, nil)
	q = b.live()
	copy(q[at+1:], q[at:])
	q[at] = seg
	b.queuedBytes += segBytes
	if b.cfg.DropEnabled {
		b.repairDeadlines(now, at)
	}
	return true
}

// Dequeue removes and returns the head segment with at least one surviving
// packet, or nil if the buffer is empty. Segments whose packets were all
// dropped are discarded (and counted) without being returned.
func (b *Buffer) Dequeue(now time.Duration) *stream.Segment {
	for {
		seg := b.DequeueAny(now)
		if seg == nil {
			return nil
		}
		if seg.RemainingPackets() > 0 {
			return seg
		}
	}
}

// DequeueAny removes and returns the head segment even when all of its
// packets were dropped, so callers can account the loss (a fully-dropped
// segment's packets still count against playback continuity). It returns
// nil when the buffer is empty.
func (b *Buffer) DequeueAny(now time.Duration) *stream.Segment {
	if b.head >= len(b.queue) {
		return nil
	}
	seg := b.queue[b.head]
	b.queue[b.head] = nil
	b.head++
	if b.head == len(b.queue) {
		b.queue = b.queue[:0]
		b.head = 0
	}
	b.queuedBytes -= seg.RemainingBytes(b.streamCfg.PacketSize)
	if seg.RemainingPackets() <= 0 {
		b.fullyDropped++
	} else {
		b.sentSegments++
	}
	return seg
}

// Peek returns the head segment without removing it, or nil.
func (b *Buffer) Peek() *stream.Segment {
	if b.head >= len(b.queue) {
		return nil
	}
	return b.queue[b.head]
}

// TransmissionTime returns l_t for a segment at the buffer's uplink rate:
// remaining bytes divided by λ_r.
func (b *Buffer) TransmissionTime(seg *stream.Segment) time.Duration {
	bytes := seg.RemainingBytes(b.streamCfg.PacketSize)
	return time.Duration(float64(bytes) * 8 / b.bandwidth * float64(time.Second))
}

// packetTime is σ: the average latency reduced by dropping one packet — one
// packet's transmission time at the uplink rate.
func (b *Buffer) packetTime() time.Duration {
	return time.Duration(float64(b.streamCfg.PacketSize) * 8 / b.bandwidth * float64(time.Second))
}

// EstimateResponseLatency implements Eq. 12 for the segment at queue
// position idx: the time already elapsed since the player's action (which
// covers the server receiving delay l_r and processing l_s), plus queueing
// delay l_q = np_i/λ_r for the bytes ahead of it, transmission l_t, and the
// estimated propagation l_p to its player.
func (b *Buffer) EstimateResponseLatency(now time.Duration, idx int) time.Duration {
	q := b.live()
	if idx < 0 || idx >= len(q) {
		panic(fmt.Sprintf("sched: index %d out of range [0,%d)", idx, len(q)))
	}
	seg := q[idx]
	elapsed := now - seg.ActionTime
	if elapsed < 0 {
		elapsed = 0
	}
	var precedingBytes int
	for _, p := range q[:idx] {
		precedingBytes += p.RemainingBytes(b.streamCfg.PacketSize)
	}
	lq := time.Duration(float64(precedingBytes) * 8 / b.bandwidth * float64(time.Second))
	lt := b.TransmissionTime(seg)
	lp := b.PropagationEstimate(seg.PlayerID)
	return elapsed + lq + lt + lp
}

// repairDeadlines scans the queue head-to-tail; for each segment whose
// estimated response latency exceeds its requirement it computes the packet
// deficit D_i = (L_r - L̃_r)/σ and distributes drops over the segment and
// its predecessors per Eq. 14, capped by each segment's loss-tolerance
// budget. Earlier repairs shrink preceding segments, so later estimates see
// the improvement. from is a live-queue index.
func (b *Buffer) repairDeadlines(now time.Duration, from int) {
	sigma := b.packetTime()
	if sigma <= 0 {
		return
	}
	// Only segments at or after the insertion point can have become late:
	// an EDF insert does not delay anything queued ahead of it. Single
	// pass with running prefix sums of preceding bytes and remaining drop
	// budget; dropAcross only runs when the prefix can actually shed
	// packets, which keeps steady-state overload (budgets exhausted) at
	// O(queue) per enqueue instead of O(queue²).
	q := b.live()
	precedingBytes := 0
	budgetAhead := 0
	for _, p := range q[:from] {
		precedingBytes += p.RemainingBytes(b.streamCfg.PacketSize)
		budgetAhead += p.DropBudget()
	}
	for i := from; i < len(q); i++ {
		seg := q[i]
		elapsed := now - seg.ActionTime
		if elapsed < 0 {
			elapsed = 0
		}
		lq := time.Duration(float64(precedingBytes) * 8 / b.bandwidth * float64(time.Second))
		lt := b.TransmissionTime(seg)
		lp := b.PropagationEstimate(seg.PlayerID)
		lr := elapsed + lq + lt + lp
		// Dropping queued packets only shrinks l_q and l_t; a segment whose
		// elapsed time plus propagation already exceeds its requirement is
		// late no matter what, and shedding other players' packets for it
		// would be pure loss.
		salvageable := elapsed+lp < seg.LatencyReq
		if lr > seg.LatencyReq && salvageable && budgetAhead+seg.DropBudget() > 0 {
			deficit := int(math.Ceil(float64(lr-seg.LatencyReq) / float64(sigma)))
			if deficit > 0 {
				b.deadlineActions++
				if b.cfg.Sink != nil {
					b.cfg.Sink(obs.Event{
						Kind:   obs.EventDropDecision,
						At:     now,
						Player: seg.PlayerID,
						A:      int64(deficit),
					})
				}
				b.dropAcross(now, i, deficit)
				// Recompute the prefix up to i after drops.
				precedingBytes, budgetAhead = 0, 0
				for _, p := range q[:i] {
					precedingBytes += p.RemainingBytes(b.streamCfg.PacketSize)
					budgetAhead += p.DropBudget()
				}
			}
		}
		precedingBytes += seg.RemainingBytes(b.streamCfg.PacketSize)
		budgetAhead += seg.DropBudget()
	}
}

// dropAcross drops up to deficit packets across the live queue[0..i]
// following Eq. 14: segment k's share is proportional to L̃_t_k × φ_k with
// φ_k = e^{-λ t_k} (t_k = time waited in queue), subject to each segment's
// loss-tolerance budget. Shares are integerized by largest remainder so the
// allocated total matches the deficit whenever budgets allow. The weight,
// budget and allocation slices live in the buffer's scratch space, so a
// repair costs no slice allocations beyond the sort.
func (b *Buffer) dropAcross(now time.Duration, i, deficit int) {
	segs := b.live()[:i+1]
	sc := &b.scratch
	sc.reset(len(segs))
	for k, s := range segs {
		if b.cfg.UniformDrop {
			sc.weights[k] = 1
		} else {
			waited := (now - s.Enqueued).Seconds()
			if waited < 0 {
				waited = 0
			}
			phi := math.Exp(-b.cfg.Lambda * waited)
			sc.weights[k] = s.LossTolerance * phi
		}
		sc.budgets[k] = s.DropBudget()
	}
	alloc := sc.allocate(deficit)
	ps := b.streamCfg.PacketSize
	for k, d := range alloc {
		if d > 0 {
			before := segs[k].RemainingBytes(ps)
			segs[k].Dropped += d
			b.queuedBytes -= before - segs[k].RemainingBytes(ps)
			b.droppedPackets += int64(d)
		}
	}
}

// dropScratch holds the reusable slices behind Eq. 14's allocation. One
// lives in each Buffer; AllocateDrops builds a throwaway one.
type dropScratch struct {
	weights []float64
	budgets []int
	alloc   []int
	active  []bool
	add     []int
	shares  []dropShare
}

type dropShare struct {
	k    int
	frac float64
}

// reset sizes every scratch slice to n and zeroes the ones allocate reads
// before writing.
func (s *dropScratch) reset(n int) {
	if cap(s.weights) < n {
		s.weights = make([]float64, n)
		s.budgets = make([]int, n)
		s.alloc = make([]int, n)
		s.active = make([]bool, n)
		s.add = make([]int, n)
	}
	s.weights = s.weights[:n]
	s.budgets = s.budgets[:n]
	s.alloc = s.alloc[:n]
	s.active = s.active[:n]
	s.add = s.add[:n]
	for i := range s.alloc {
		s.alloc[i] = 0
	}
}

// allocate runs the capped largest-remainder split of deficit over the
// scratch weights and budgets, returning the per-segment allocation (a view
// of the scratch allocation slice).
func (s *dropScratch) allocate(deficit int) []int {
	n := len(s.weights)
	remaining := deficit
	for k := 0; k < n; k++ {
		s.active[k] = s.budgets[k] > 0 && s.weights[k] > 0
	}
	// Iterate: proportional share, cap at budget, redistribute.
	for remaining > 0 {
		totalW := 0.0
		for k := 0; k < n; k++ {
			if s.active[k] {
				totalW += s.weights[k]
			}
		}
		if totalW <= 0 {
			break
		}
		whole := 0
		shares := s.shares[:0]
		for k := 0; k < n; k++ {
			s.add[k] = 0
			if !s.active[k] {
				continue
			}
			exact := float64(remaining) * s.weights[k] / totalW
			w := int(math.Floor(exact))
			room := s.budgets[k] - s.alloc[k]
			if w > room {
				w = room
			}
			s.add[k] = w
			whole += w
			if w < room {
				shares = append(shares, dropShare{k, exact - math.Floor(exact)})
			}
		}
		s.shares = shares
		// Largest-remainder distribution of the leftover units.
		leftover := remaining - whole
		sort.Slice(shares, func(a, b int) bool { return shares[a].frac > shares[b].frac })
		for _, sh := range shares {
			if leftover == 0 {
				break
			}
			if s.alloc[sh.k]+s.add[sh.k] < s.budgets[sh.k] {
				s.add[sh.k]++
				leftover--
			}
		}
		progressed := false
		for k := 0; k < n; k++ {
			if s.add[k] > 0 {
				s.alloc[k] += s.add[k]
				remaining -= s.add[k]
				progressed = true
			}
			if s.alloc[k] >= s.budgets[k] {
				s.active[k] = false
			}
		}
		if !progressed {
			break
		}
	}
	return s.alloc
}

// AllocateDrops splits a total of `deficit` packet drops across segments
// with the given Eq. 14 weights, capping each segment at its budget and
// redistributing capped remainder among the rest. Fractional shares are
// integerized by largest remainder. It returns the per-segment allocation;
// the sum may fall short of deficit when budgets are exhausted.
func AllocateDrops(weights []float64, budgets []int, deficit int) []int {
	n := len(weights)
	if len(budgets) != n {
		panic("sched: AllocateDrops weight/budget length mismatch")
	}
	var s dropScratch
	s.reset(n)
	copy(s.weights, weights)
	copy(s.budgets, budgets)
	out := make([]int, n)
	copy(out, s.allocate(deficit))
	return out
}

// propEstimator keeps the last m propagation samples (Eq. 13).
type propEstimator struct {
	window  int
	samples []time.Duration
	next    int
	full    bool
	sum     time.Duration
}

func newPropEstimator(window int) *propEstimator {
	return &propEstimator{window: window, samples: make([]time.Duration, window)}
}

// takeEstimator deals an estimator from the Reset freelist, or allocates
// the pool's first copies. Recycled estimators are indistinguishable from
// fresh ones: stale samples are never read before being overwritten because
// the mean only covers slots written since the reset.
func (b *Buffer) takeEstimator() *propEstimator {
	n := len(b.estFree)
	if n == 0 {
		return newPropEstimator(b.cfg.PropWindow)
	}
	est := b.estFree[n-1]
	b.estFree[n-1] = nil
	b.estFree = b.estFree[:n-1]
	est.reset(b.cfg.PropWindow)
	return est
}

// reset rewinds an estimator for a new owner, regrowing the sample window
// only if the configuration asks for a larger one.
func (p *propEstimator) reset(window int) {
	if cap(p.samples) < window {
		p.samples = make([]time.Duration, window)
	}
	p.samples = p.samples[:window]
	p.window = window
	p.next = 0
	p.full = false
	p.sum = 0
}

func (p *propEstimator) record(d time.Duration) {
	if p.full {
		p.sum -= p.samples[p.next]
	}
	p.samples[p.next] = d
	p.sum += d
	p.next++
	if p.next == p.window {
		p.next = 0
		p.full = true
	}
}

func (p *propEstimator) mean() time.Duration {
	n := p.next
	if p.full {
		n = p.window
	}
	if n == 0 {
		return 0
	}
	return p.sum / time.Duration(n)
}
