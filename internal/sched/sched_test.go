package sched

import (
	"testing"
	"testing/quick"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/sim"
	"cloudfog/internal/stream"
)

// cfg100 is a 100 ms-segment stream config used so tests can pin round byte
// counts (level 3 => 10,000 bytes, level 5 => 22,500 bytes).
func cfg100() stream.Config {
	return stream.Config{SegmentDuration: 100 * time.Millisecond, PacketSize: 1500}
}

func testSegment(t *testing.T, playerID int64, gameID int, action time.Duration) *stream.Segment {
	t.Helper()
	g, err := game.ByID(gameID)
	if err != nil {
		t.Fatal(err)
	}
	e := stream.NewEncoder(cfg100(), playerID, g.Quality())
	return e.Encode(action, action, g)
}

func newTestBuffer(bandwidth int64) *Buffer {
	return NewBuffer(DefaultConfig(), cfg100(), bandwidth)
}

func TestEDFOrdering(t *testing.T) {
	b := newTestBuffer(100_000_000) // ample bandwidth: no drops interfere
	// Game 5 (110ms) queued first, then game 1 (30ms): the tight deadline
	// must jump the queue.
	slow := testSegment(t, 1, 5, 0)
	fast := testSegment(t, 2, 1, 0)
	b.Enqueue(0, slow)
	b.Enqueue(0, fast)
	if got := b.Dequeue(0); got != fast {
		t.Fatalf("head = player %d, want the tight-deadline segment", got.PlayerID)
	}
	if got := b.Dequeue(0); got != slow {
		t.Fatal("second dequeue should return the slow segment")
	}
	if b.Dequeue(0) != nil {
		t.Fatal("empty buffer should return nil")
	}
}

func TestEDFUsesActionTimeToo(t *testing.T) {
	b := newTestBuffer(100_000_000)
	// Same game: earlier action => earlier expected arrival => first out.
	late := testSegment(t, 1, 3, 50*time.Millisecond)
	early := testSegment(t, 2, 3, 10*time.Millisecond)
	b.Enqueue(60*time.Millisecond, late)
	b.Enqueue(60*time.Millisecond, early)
	if got := b.Dequeue(60 * time.Millisecond); got != early {
		t.Fatal("earlier action did not dequeue first")
	}
}

func TestFIFOAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EDF = false
	b := NewBuffer(cfg, cfg100(), 100_000_000)
	slow := testSegment(t, 1, 5, 0)
	fast := testSegment(t, 2, 1, 0)
	b.Enqueue(0, slow)
	b.Enqueue(0, fast)
	if got := b.Dequeue(0); got != slow {
		t.Fatal("FIFO buffer reordered segments")
	}
}

func TestTransmissionTime(t *testing.T) {
	b := newTestBuffer(8_000_000)  // 1 MB/s
	seg := testSegment(t, 1, 3, 0) // 10,000 bytes at 800kbps, 100ms segments
	if got := b.TransmissionTime(seg); got != 10*time.Millisecond {
		t.Fatalf("l_t = %v, want 10ms", got)
	}
}

func TestEstimateResponseLatencyComponents(t *testing.T) {
	b := NewBuffer(Config{Lambda: 1, PropWindow: 10, EDF: true, DropEnabled: false},
		cfg100(), 8_000_000)
	first := testSegment(t, 1, 3, 0)
	second := testSegment(t, 2, 3, 0)
	b.Enqueue(5*time.Millisecond, first)
	b.Enqueue(5*time.Millisecond, second)
	b.RecordPropagation(2, 7*time.Millisecond)

	// Second segment at 10ms: elapsed 10ms + queueing 10ms (first's 10,000B
	// at 1MB/s) + transmission 10ms + propagation 7ms = 37ms.
	got := b.EstimateResponseLatency(10*time.Millisecond, 1)
	if got != 37*time.Millisecond {
		t.Fatalf("L_r = %v, want 37ms", got)
	}
	// Head segment has no queueing delay and no propagation samples.
	if got := b.EstimateResponseLatency(10*time.Millisecond, 0); got != 20*time.Millisecond {
		t.Fatalf("head L_r = %v, want 20ms", got)
	}
}

func TestPropagationEstimatorWindow(t *testing.T) {
	b := newTestBuffer(8_000_000)
	if b.PropagationEstimate(9) != 0 {
		t.Fatal("estimate without samples should be 0")
	}
	// Window m = 10: fill with 10ms then push it out with 20ms samples.
	for i := 0; i < 10; i++ {
		b.RecordPropagation(9, 10*time.Millisecond)
	}
	if got := b.PropagationEstimate(9); got != 10*time.Millisecond {
		t.Fatalf("mean = %v, want 10ms", got)
	}
	for i := 0; i < 10; i++ {
		b.RecordPropagation(9, 20*time.Millisecond)
	}
	if got := b.PropagationEstimate(9); got != 20*time.Millisecond {
		t.Fatalf("mean after window rollover = %v, want 20ms", got)
	}
	b.ForgetPlayer(9)
	if b.PropagationEstimate(9) != 0 {
		t.Fatal("ForgetPlayer did not clear history")
	}
}

func TestPropagationPartialWindow(t *testing.T) {
	b := newTestBuffer(8_000_000)
	b.RecordPropagation(1, 10*time.Millisecond)
	b.RecordPropagation(1, 30*time.Millisecond)
	if got := b.PropagationEstimate(1); got != 20*time.Millisecond {
		t.Fatalf("partial-window mean = %v, want 20ms", got)
	}
}

// TestDropAllocationPaperExample exercises Eq. 14 on Figure 4's scenario:
// 6 packets must be dropped across segments with loss tolerances
// (0.6, 0.2, 0.5). With decay factors (0.5, 1.0, 0.2) the weights are
// (0.30, 0.20, 0.10) and the allocation is d = (3, 2, 1), the figure's
// result. (The figure's printed φ₂ = 0.1 is inconsistent with its own
// output — 0.6·0.5 : 0.2·0.1 : 0.5·0.2 normalizes to (4.3, 0.3, 1.4), not
// (3, 2, 1) — so we use the φ values that make the worked example hold.)
func TestDropAllocationPaperExample(t *testing.T) {
	weights := []float64{0.6 * 0.5, 0.2 * 1.0, 0.5 * 0.2}
	budgets := []int{100, 100, 100}
	got := AllocateDrops(weights, budgets, 6)
	want := []int{3, 2, 1}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("allocation = %v, want %v", got, want)
		}
	}
}

func TestAllocateDropsRespectsBudgets(t *testing.T) {
	weights := []float64{1, 1, 1}
	budgets := []int{1, 0, 10}
	got := AllocateDrops(weights, budgets, 9)
	if got[0] != 1 || got[1] != 0 || got[2] != 8 {
		t.Fatalf("allocation = %v, want [1 0 8]", got)
	}
}

func TestAllocateDropsShortBudget(t *testing.T) {
	got := AllocateDrops([]float64{1, 2}, []int{2, 2}, 100)
	if got[0] != 2 || got[1] != 2 {
		t.Fatalf("allocation = %v, want budget-capped [2 2]", got)
	}
}

func TestAllocateDropsZeroWeights(t *testing.T) {
	got := AllocateDrops([]float64{0, 0}, []int{5, 5}, 4)
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("allocation with zero weights = %v, want zeros", got)
	}
}

func TestAllocateDropsProperties(t *testing.T) {
	f := func(w1, w2, w3 uint8, b1, b2, b3 uint8, deficit uint8) bool {
		weights := []float64{float64(w1), float64(w2), float64(w3)}
		budgets := []int{int(b1 % 30), int(b2 % 30), int(b3 % 30)}
		d := int(deficit % 60)
		alloc := AllocateDrops(weights, budgets, d)
		total := 0
		for k := range alloc {
			if alloc[k] < 0 || alloc[k] > budgets[k] {
				return false
			}
			if weights[k] == 0 && alloc[k] != 0 {
				return false
			}
			total += alloc[k]
		}
		if total > d {
			return false
		}
		// If every weight is positive and budgets suffice, the full deficit
		// must be allocated.
		budgetSum := 0
		allPositive := true
		for k := range budgets {
			if weights[k] > 0 {
				budgetSum += budgets[k]
			} else {
				allPositive = false
			}
		}
		if allPositive && budgetSum >= d && total != d {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineRepairDropsPackets builds a congested buffer: a slow uplink
// with several queued segments forces the estimated latency of a new
// tight-deadline segment past its requirement, which must trigger drops.
func TestDeadlineRepairDropsPackets(t *testing.T) {
	// 2 Mbps uplink: a 10,000-byte segment takes 40ms to transmit. The
	// queue bound is lifted so congestion builds into deadline pressure.
	cfg := DefaultConfig()
	cfg.MaxQueueDelay = 0
	b := NewBuffer(cfg, cfg100(), 2_000_000)
	for i := 0; i < 4; i++ {
		b.Enqueue(0, testSegment(t, int64(i), 5, 0)) // 110ms budget, 40% loss tolerance
	}
	// Game 1 (30ms budget): even alone it needs ~11ms transmission; behind
	// four 22,500B segments (level 5) it is hopeless without drops.
	tight := testSegment(t, 99, 1, 0)
	b.Enqueue(0, tight)
	_, _, dropped, _, repairs := b.Stats()
	if repairs == 0 {
		t.Fatal("no deadline repair ran")
	}
	if dropped == 0 {
		t.Fatal("no packets dropped despite hopeless deadline")
	}
}

func TestDropDisabledAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DropEnabled = false
	cfg.MaxQueueDelay = 0
	b := NewBuffer(cfg, cfg100(), 2_000_000)
	for i := 0; i < 4; i++ {
		b.Enqueue(0, testSegment(t, int64(i), 5, 0))
	}
	b.Enqueue(0, testSegment(t, 99, 1, 0))
	_, _, dropped, _, repairs := b.Stats()
	if dropped != 0 || repairs != 0 {
		t.Fatalf("drops ran with DropEnabled=false: dropped=%d repairs=%d", dropped, repairs)
	}
}

func TestDropsNeverExceedLossTolerance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxQueueDelay = 0
	b := NewBuffer(cfg, cfg100(), 500_000) // very slow uplink: heavy congestion
	segs := make([]*stream.Segment, 0, 12)
	for i := 0; i < 12; i++ {
		gameID := i%5 + 1
		s := testSegment(t, int64(i), gameID, time.Duration(i)*5*time.Millisecond)
		segs = append(segs, s)
		b.Enqueue(time.Duration(i)*5*time.Millisecond, s)
	}
	for _, s := range segs {
		max := int(s.LossTolerance * float64(s.Packets))
		if s.Dropped > max {
			t.Fatalf("segment for player %d dropped %d packets, tolerance allows %d",
				s.PlayerID, s.Dropped, max)
		}
	}
}

func TestFullyDroppedSegmentsSkippedOnDequeue(t *testing.T) {
	b := newTestBuffer(8_000_000)
	s1 := testSegment(t, 1, 3, 0)
	s2 := testSegment(t, 2, 3, 0)
	b.Enqueue(0, s1)
	b.Enqueue(0, s2)
	s1.Dropped = s1.Packets // everything gone
	if got := b.Dequeue(0); got != s2 {
		t.Fatal("fully dropped segment was returned")
	}
	_, sent, _, fullyDropped, _ := b.Stats()
	if sent != 1 || fullyDropped != 1 {
		t.Fatalf("stats = sent %d, fullyDropped %d; want 1, 1", sent, fullyDropped)
	}
}

func TestQueuedBytesTracksDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DropEnabled = false // drive the drop path by hand
	b := NewBuffer(cfg, cfg100(), 8_000_000)
	s := testSegment(t, 1, 5, 0) // 40% loss tolerance: budget covers 2 drops
	b.Enqueue(0, s)
	before := b.QueuedBytes()
	b.dropAcross(0, 0, 2)
	if s.Dropped != 2 {
		t.Fatalf("dropAcross dropped %d packets, want 2", s.Dropped)
	}
	after := b.QueuedBytes()
	if after != before-2*1500 {
		t.Fatalf("queued bytes = %d, want %d", after, before-2*1500)
	}
	if after != b.recomputeQueuedBytes() {
		t.Fatalf("counter %d != recomputed %d", after, b.recomputeQueuedBytes())
	}
}

// TestQueuedBytesCounterConsistency hammers the buffer with a randomized
// enqueue/dequeue/drop/evict mix and asserts the incremental queuedBytes
// counter always equals the O(n) recomputed sum — the invariant that lets
// Enqueue's bound check run in O(1) per evicted segment.
func TestQueuedBytesCounterConsistency(t *testing.T) {
	games := make([]game.Game, 0, 5)
	for id := 1; id <= 5; id++ {
		g, err := game.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		games = append(games, g)
	}
	for seed := int64(1); seed <= 4; seed++ {
		rng := sim.NewRand(seed)
		cfg := DefaultConfig()
		cfg.MaxQueueDelay = 40 * time.Millisecond // 40 KB bound: evictions fire
		b := NewBuffer(cfg, cfg100(), 8_000_000)
		now := time.Duration(0)
		sawBacklog := false
		for op := 0; op < 3000; op++ {
			now += time.Duration(rng.Intn(3)) * time.Millisecond
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // enqueue (triggers EDF insert, repair drops, evictions)
				g := games[rng.Intn(len(games))]
				e := stream.NewEncoder(cfg100(), int64(rng.Intn(40)), g.Quality())
				action := now - time.Duration(rng.Intn(10))*time.Millisecond
				b.Enqueue(now, e.Encode(action, now, g))
				b.ClearEvicted()
			case 5, 6, 7: // dequeue
				b.DequeueAny(now)
			case 8: // deliberate mid-queue packet drops through the drop path
				if n := b.Len(); n > 0 {
					b.dropAcross(now, rng.Intn(n), 1+rng.Intn(4))
				}
			case 9: // drain a burst so head-index wraparound is exercised
				for k := 0; k < 3; k++ {
					b.Dequeue(now)
				}
			}
			if got, want := b.QueuedBytes(), b.recomputeQueuedBytes(); got != want {
				t.Fatalf("seed %d op %d: counter %d != recomputed %d", seed, op, got, want)
			}
			if b.Len() > 1 {
				sawBacklog = true
			}
		}
		if !sawBacklog {
			t.Fatalf("seed %d: workload never built a backlog", seed)
		}
		if b.TailDropped() == 0 {
			t.Fatalf("seed %d: workload never triggered an eviction", seed)
		}
	}
}

// TestEnqueueAllocFloor pins the steady-state allocation cost of the
// Enqueue/Dequeue cycle: once the queue array, scratch space, and evicted
// backing array are warm, a cycle allocates nothing beyond the segment the
// caller encodes.
func TestEnqueueAllocFloor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxQueueDelay = 20 * time.Millisecond
	b := NewBuffer(cfg, cfg100(), 2_000_000)
	g, err := game.ByID(3)
	if err != nil {
		t.Fatal(err)
	}
	e := stream.NewEncoder(cfg100(), 1, g.Quality())
	seg := e.Encode(0, 0, g)
	now := time.Duration(0)
	// Warm: populate the queue, scratch, and evicted arrays.
	for i := 0; i < 64; i++ {
		now += time.Millisecond
		e.EncodeInto(seg, now-5*time.Millisecond, now, g)
		b.Enqueue(now, seg)
		b.ClearEvicted()
		if i%2 == 0 {
			b.DequeueAny(now)
		}
	}
	if avg := testing.AllocsPerRun(200, func() {
		now += time.Millisecond
		e.EncodeInto(seg, now-5*time.Millisecond, now, g)
		b.Enqueue(now, seg)
		b.ClearEvicted()
		b.DequeueAny(now)
	}); avg != 0 {
		t.Fatalf("warm Enqueue/Dequeue cycle allocates %.1f/op, want 0", avg)
	}
}

func TestNewBufferPanicsOnBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bandwidth accepted")
		}
	}()
	NewBuffer(DefaultConfig(), cfg100(), 0)
}

func TestEstimatePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index accepted")
		}
	}()
	newTestBuffer(1_000_000).EstimateResponseLatency(0, 0)
}

// TestPhiProtectsOlderSegments verifies the decay property of Eq. 14: with
// equal loss tolerances, a segment that has waited longer in the queue
// (smaller φ = e^{-λt}) absorbs fewer drops than a fresh one.
func TestPhiProtectsOlderSegments(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DropEnabled = false // drive the allocation by hand
	cfg.MaxQueueDelay = 0   // keep both segments queued
	b := NewBuffer(cfg, cfg100(), 8_000_000)
	old := testSegment(t, 1, 5, 0)
	fresh := testSegment(t, 2, 5, 950*time.Millisecond)
	b.Enqueue(0, old)
	b.Enqueue(950*time.Millisecond, fresh)

	// At t = 1s: old has waited 1s (φ = e^-1), fresh 50ms (φ ≈ 0.95).
	// Budgets (40% of 15 packets = 6) do not bind for a 4-packet deficit.
	b.dropAcross(time.Second, 1, 4)
	if old.Dropped+fresh.Dropped != 4 {
		t.Fatalf("total drops = %d, want 4", old.Dropped+fresh.Dropped)
	}
	if old.Dropped >= fresh.Dropped {
		t.Fatalf("aged segment dropped %d >= fresh segment's %d; φ decay not protecting it",
			old.Dropped, fresh.Dropped)
	}
}

func TestTailDropBoundsQueue(t *testing.T) {
	// 2 Mbps with an explicit 100ms bound => at most 25,000 queued bytes.
	cfg := DefaultConfig()
	cfg.DropEnabled = false
	cfg.MaxQueueDelay = 100 * time.Millisecond
	b := NewBuffer(cfg, cfg100(), 2_000_000)
	accepted := 0
	for i := 0; i < 10; i++ {
		if b.Enqueue(0, testSegment(t, int64(i), 3, 0)) { // 10,000 bytes each
			accepted++
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted %d segments, want 2 within the 25KB bound", accepted)
	}
	if b.QueuedBytes() > 25_000 {
		t.Fatalf("queued %d bytes, bound is 25000", b.QueuedBytes())
	}
	if b.TailDropped() != 8 {
		t.Fatalf("tail-dropped %d, want 8", b.TailDropped())
	}
	// Draining frees space for new segments.
	b.Dequeue(0)
	if !b.Enqueue(0, testSegment(t, 99, 3, 0)) {
		t.Fatal("segment rejected despite freed space")
	}
}

func TestUnboundedQueueNeverTailDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxQueueDelay = 0
	cfg.DropEnabled = false
	b := NewBuffer(cfg, cfg100(), 500_000)
	for i := 0; i < 200; i++ {
		if !b.Enqueue(0, testSegment(t, int64(i), 5, 0)) {
			t.Fatal("unbounded queue rejected a segment")
		}
	}
	if b.TailDropped() != 0 {
		t.Fatal("unbounded queue counted tail drops")
	}
}
