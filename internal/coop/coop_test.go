package coop

import (
	"testing"
	"time"

	"cloudfog/internal/core"
	"cloudfog/internal/game"
	"cloudfog/internal/geo"
	"cloudfog/internal/sim"
)

// buildScatteredFog creates a fog, joins players, then takes a popular
// supernode away and brings it back — leaving players scattered on
// second-best homes, the situation cooperation repairs.
func buildScatteredFog(t *testing.T) (*core.Fog, []*core.Player) {
	t.Helper()
	cfg := core.DefaultConfig(31)
	cfg.Locator.ErrorSigma = 0
	rng := sim.NewRand(32)
	placer := geo.DefaultUSPlacer()

	dcs := []*core.Datacenter{
		core.NewDatacenter(2_000_000, cfg.Region.Center(), cfg.DCEgress),
	}
	sns := make([]*core.Supernode, 40)
	for i := range sns {
		sns[i] = core.NewSupernode(1_000_000+int64(i), placer.Place(rng), 6, 6*cfg.UplinkPerSlot)
	}
	fog, err := core.BuildFog(cfg, dcs, sns, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	g, _ := game.ByID(5)
	players := make([]*core.Player, 150)
	for i := range players {
		players[i] = &core.Player{ID: int64(i), Pos: placer.Place(rng), Game: g, Downlink: 20_000_000}
		fog.Join(players[i])
	}

	// Scatter: the three most-loaded supernodes leave, players fail over;
	// then the machines return empty.
	for round := 0; round < 3; round++ {
		var busiest *core.Supernode
		for _, sn := range fog.Supernodes() {
			if busiest == nil || sn.Load() > busiest.Load() {
				busiest = sn
			}
		}
		if busiest == nil || busiest.Load() == 0 {
			break
		}
		spec := *busiest
		fog.DeregisterSupernode(busiest.ID)
		fresh := core.NewSupernode(spec.ID, spec.Pos, spec.Capacity, spec.Uplink)
		if err := fog.RegisterSupernode(fresh); err != nil {
			t.Fatal(err)
		}
	}
	return fog, players
}

func meanFogLatency(fog *core.Fog, players []*core.Player) time.Duration {
	var sum time.Duration
	n := 0
	for _, p := range players {
		if p.Attached.Kind == core.AttachSupernode {
			sum += p.Attached.StreamLatency + p.Attached.UpdateLatency
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

func TestRebalanceImprovesScatteredPlayers(t *testing.T) {
	fog, players := buildScatteredFog(t)
	before := meanFogLatency(fog, players)
	res := Rebalance(fog, Config{HotUtilization: 0.85})
	if res.Moves == 0 {
		t.Fatal("no players moved despite scattered assignment")
	}
	if res.LatencySavedTotal <= 0 {
		t.Fatalf("moves saved no latency: %+v", res)
	}
	after := meanFogLatency(fog, players)
	if after >= before {
		t.Fatalf("mean fog latency did not improve: %v -> %v", before, after)
	}
	// Invariants survive the migration.
	for _, p := range players {
		if p.Online && !p.Attached.Served() {
			t.Fatal("player lost service during rebalance")
		}
		if p.Attached.Kind == core.AttachSupernode {
			if p.Attached.SN.Member(p.ID) != p {
				t.Fatal("membership inconsistent after move")
			}
		}
	}
	for _, sn := range fog.Supernodes() {
		if sn.Load() > sn.Capacity {
			t.Fatalf("supernode %d over capacity after rebalance", sn.ID)
		}
	}
}

func TestRebalanceIsIdempotentAtFixpoint(t *testing.T) {
	fog, _ := buildScatteredFog(t)
	// Run passes until quiescent, then one more must move nobody.
	for i := 0; i < 10; i++ {
		if Rebalance(fog, Config{}).Moves == 0 {
			break
		}
	}
	if res := Rebalance(fog, Config{}); res.Moves != 0 {
		t.Fatalf("rebalance not quiescent: still %d moves", res.Moves)
	}
}

func TestRebalanceRespectsMoveBudget(t *testing.T) {
	fog, _ := buildScatteredFog(t)
	res := Rebalance(fog, Config{MaxMovesPerPass: 2})
	if res.Moves > 2 {
		t.Fatalf("moved %d players, budget was 2", res.Moves)
	}
}

func TestRebalanceNeverDegradesAnyone(t *testing.T) {
	fog, players := buildScatteredFog(t)
	before := make(map[int64]time.Duration)
	for _, p := range players {
		if p.Attached.Kind == core.AttachSupernode {
			before[p.ID] = p.Attached.StreamLatency + p.Attached.UpdateLatency
		}
	}
	Rebalance(fog, Config{})
	for _, p := range players {
		if p.Attached.Kind != core.AttachSupernode {
			continue
		}
		b, had := before[p.ID]
		if !had {
			continue
		}
		after := p.Attached.StreamLatency + p.Attached.UpdateLatency
		if after > b {
			t.Fatalf("player %d got worse: %v -> %v", p.ID, b, after)
		}
	}
}

func TestRebalanceEmptyFog(t *testing.T) {
	cfg := core.DefaultConfig(1)
	dc := core.NewDatacenter(2_000_000, cfg.Region.Center(), cfg.DCEgress)
	fog, err := core.BuildFog(cfg, []*core.Datacenter{dc}, nil, sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if res := Rebalance(fog, Config{}); res.Considered != 0 || res.Moves != 0 {
		t.Fatalf("empty fog produced work: %+v", res)
	}
}
