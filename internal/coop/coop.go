// Package coop implements the CloudFog paper's first future-work item
// (§V): "the cooperation among supernodes in rendering and transmitting
// game videos to further reduce response latency."
//
// Churn scatters players: when a supernode departs, its players fail over
// to backups (second-best homes), and nothing moves them back when better
// capacity returns. Cooperating supernodes periodically run a rebalancing
// pass — each player is offered to a strictly better qualified supernode,
// and hotspots above a target utilization shed players first. Moves only
// commit when they strictly reduce the player's total serving-path latency,
// so a pass never degrades anyone.
package coop

import (
	"sort"
	"time"

	"cloudfog/internal/core"
)

// Config parameterizes the cooperation pass.
type Config struct {
	// HotUtilization marks a supernode as a hotspot when its load
	// exceeds this fraction of capacity; hotspot players are offered
	// first and hotspots are avoided as targets. Default 0.85.
	HotUtilization float64
	// MaxMovesPerPass bounds the disruption of one pass (a stream
	// migration costs a keyframe). 0 means unbounded.
	MaxMovesPerPass int
}

// DefaultConfig returns the defaults: hotspots above 85% load, at most 64
// migrations per pass.
func DefaultConfig() Config {
	return Config{HotUtilization: 0.85, MaxMovesPerPass: 64}
}

// Result summarizes one rebalancing pass.
type Result struct {
	// Considered is how many fog-served players were examined.
	Considered int
	// Moves is how many players migrated to a better supernode.
	Moves int
	// LatencySavedTotal sums the serving-path latency reduction across
	// the moved players.
	LatencySavedTotal time.Duration
}

// Rebalance runs one cooperation pass over the fog's supernodes. Players on
// hotspots are offered first (largest current serving-path latency first),
// then everyone else; each offer commits only if a strictly better
// qualified supernode has a free slot.
func Rebalance(fog *core.Fog, cfg Config) Result {
	if cfg.HotUtilization <= 0 {
		cfg.HotUtilization = 0.85
	}
	hot := func(sn *core.Supernode) bool {
		return float64(sn.Load()) > cfg.HotUtilization*float64(sn.Capacity)
	}

	type offer struct {
		p     *core.Player
		total time.Duration
		onHot bool
	}
	var offers []offer
	for _, sn := range fog.Supernodes() {
		isHot := hot(sn)
		for _, pid := range sn.Players() {
			p := playerOf(sn, pid)
			if p == nil {
				continue
			}
			offers = append(offers, offer{
				p:     p,
				total: p.Attached.StreamLatency + p.Attached.UpdateLatency,
				onHot: isHot,
			})
		}
	}
	// Hotspot players first, then by how much they currently suffer.
	sort.SliceStable(offers, func(i, j int) bool {
		if offers[i].onHot != offers[j].onHot {
			return offers[i].onHot
		}
		return offers[i].total > offers[j].total
	})

	res := Result{Considered: len(offers)}
	for _, o := range offers {
		if cfg.MaxMovesPerPass > 0 && res.Moves >= cfg.MaxMovesPerPass {
			break
		}
		before := o.p.Attached.StreamLatency + o.p.Attached.UpdateLatency
		if fog.TryReassign(o.p, hot) {
			after := o.p.Attached.StreamLatency + o.p.Attached.UpdateLatency
			res.Moves++
			res.LatencySavedTotal += before - after
		}
	}
	return res
}

// playerOf resolves a player pointer through the supernode's attachment
// (the fog does not expose a player directory; the supernode's member list
// and the player's back-pointer are authoritative).
func playerOf(sn *core.Supernode, pid int64) *core.Player {
	// The supernode's player set stores the pointers; Players() only
	// returns IDs to keep the core API small, so we reach the player via
	// the attachment invariant checked in core's tests: every listed ID
	// belongs to a player attached to this supernode.
	return sn.Member(pid)
}
