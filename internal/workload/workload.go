// Package workload generates the player population and churn of the
// CloudFog evaluation (§IV): 10,000 players placed in metro clusters, 10%
// of them supernode-capable; Poisson arrivals at 5 players/second; session
// lengths from the paper's daily play-time mixture; per-player friend
// counts from a power law with skew 0.5; and friend-driven game selection —
// a joining player picks the game most of its online friends are playing,
// or a uniformly random one when no friend is online.
package workload

import (
	"fmt"

	"cloudfog/internal/core"
	"cloudfog/internal/game"
	"cloudfog/internal/geo"
	"cloudfog/internal/sim"
)

// Endpoint-ID bases keep player, supernode, datacenter and edge-server IDs
// disjoint; the latency trace keys per-node randomness by ID.
const (
	PlayerIDBase     = 0
	SupernodeIDBase  = 1_000_000
	DatacenterIDBase = 2_000_000
	EdgeServerIDBase = 3_000_000
)

// Config parameterizes population generation.
type Config struct {
	Seed              int64
	Players           int
	SupernodeFraction float64
	Placer            geo.Placer
	// Downlink is lognormal across players.
	DownlinkMedian int64
	DownlinkSigma  float64
	// Friend counts follow a power law on [1, MaxFriends] with FriendSkew.
	MaxFriends int
	FriendSkew float64
}

// DefaultConfig returns the paper's population: 10,000 metro-clustered
// players, 10% supernode-capable, 20 Mbps median downlink, friend counts
// power-law with skew 0.5.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:              seed,
		Players:           10_000,
		SupernodeFraction: 0.10,
		Placer:            geo.DefaultUSPlacer(),
		DownlinkMedian:    20_000_000,
		DownlinkSigma:     0.6,
		MaxFriends:        100,
		FriendSkew:        0.5,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Players < 1:
		return fmt.Errorf("workload: Players %d < 1", c.Players)
	case c.SupernodeFraction < 0 || c.SupernodeFraction > 1:
		return fmt.Errorf("workload: SupernodeFraction %v outside [0,1]", c.SupernodeFraction)
	case c.Placer == nil:
		return fmt.Errorf("workload: nil Placer")
	case c.DownlinkMedian <= 0:
		return fmt.Errorf("workload: non-positive DownlinkMedian %d", c.DownlinkMedian)
	case c.MaxFriends < 1:
		return fmt.Errorf("workload: MaxFriends %d < 1", c.MaxFriends)
	case c.FriendSkew < 0:
		return fmt.Errorf("workload: negative FriendSkew %v", c.FriendSkew)
	}
	return nil
}

// Population is a generated player base.
type Population struct {
	Players []*core.Player
	// Capable indexes the supernode-capable players.
	Capable []int
}

// Generate builds a deterministic population from the configuration.
func Generate(cfg Config) (*Population, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRand(cfg.Seed)
	placeRng := rng.Fork()
	linkRng := rng.Fork()
	friendRng := rng.Fork()
	capableRng := rng.Fork()

	pop := &Population{Players: make([]*core.Player, cfg.Players)}
	for i := range pop.Players {
		p := &core.Player{
			ID:       PlayerIDBase + int64(i),
			Pos:      cfg.Placer.Place(placeRng),
			Downlink: int64(float64(cfg.DownlinkMedian) * lognormMultiplier(linkRng, cfg.DownlinkSigma)),
		}
		if capableRng.Float64() < cfg.SupernodeFraction {
			p.SupernodeCapable = true
			pop.Capable = append(pop.Capable, i)
		}
		pop.Players[i] = p
	}
	// Friend graph: sample a degree per player, then draw that many
	// distinct random friends. Friendship is directional here; it only
	// drives game selection.
	for i, p := range pop.Players {
		k := friendRng.PowerLawInt(1, cfg.MaxFriends, cfg.FriendSkew)
		if k >= cfg.Players {
			k = cfg.Players - 1
		}
		seen := map[int]bool{i: true}
		for len(p.Friends) < k {
			j := friendRng.Intn(cfg.Players)
			if seen[j] {
				continue
			}
			seen[j] = true
			p.Friends = append(p.Friends, pop.Players[j].ID)
		}
	}
	return pop, nil
}

func lognormMultiplier(r *sim.Rand, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	return r.LogNormal(0, sigma)
}

// BuildSupernodes promotes n supernode-capable players' machines into
// supernodes: capacity C_j from the paper's Pareto (mean 5), uplink
// provisioned per capacity slot. It returns an error when the population
// has fewer than n capable players.
func (pop *Population) BuildSupernodes(n int, uplinkPerSlot int64, rng *sim.Rand) ([]*core.Supernode, error) {
	if n > len(pop.Capable) {
		return nil, fmt.Errorf("workload: want %d supernodes, only %d capable players", n, len(pop.Capable))
	}
	// Random selection without replacement from the capable set.
	perm := rng.Perm(len(pop.Capable))
	sns := make([]*core.Supernode, 0, n)
	for _, pi := range perm[:n] {
		p := pop.Players[pop.Capable[pi]]
		capacity := int(rng.CapacityPareto() + 0.5)
		if capacity < 1 {
			capacity = 1
		}
		sn := core.NewSupernode(
			SupernodeIDBase+p.ID,
			p.Pos,
			capacity,
			int64(capacity)*uplinkPerSlot,
		)
		sns = append(sns, sn)
	}
	return sns, nil
}

// BuildDatacenters places n datacenters spread over the region.
func BuildDatacenters(region geo.Region, n int, egress int64, rng *sim.Rand) []*core.Datacenter {
	pts := geo.SpreadPoints(region, n, rng)
	dcs := make([]*core.Datacenter, n)
	for i, pt := range pts {
		dcs[i] = core.NewDatacenter(DatacenterIDBase+int64(i), pt, egress)
	}
	return dcs
}

// BuildEdgeServers places n EdgeCloud servers spread over the region.
func BuildEdgeServers(region geo.Region, n int, egress int64, capacity int, rng *sim.Rand) []*core.Datacenter {
	pts := geo.SpreadPoints(region, n, rng)
	servers := make([]*core.Datacenter, n)
	for i, pt := range pts {
		servers[i] = core.NewEdgeServer(EdgeServerIDBase+int64(i), pt, egress, capacity)
	}
	return servers
}

// Churn drives session dynamics on a System: players join following a
// Poisson process, play for a session drawn from the daily play-time
// mixture, leave, and later rejoin for their next session.
type Churn struct {
	Engine *sim.Engine
	System core.System
	Pop    *Population
	// ArrivalRate is the Poisson join rate in players/second (paper: 5).
	ArrivalRate float64

	rng     *sim.Rand
	offline []int // indexes into Pop.Players
	joins   uint64
	leaves  uint64
}

// NewChurn wires a churn driver. Call Start to schedule the first arrival.
func NewChurn(engine *sim.Engine, system core.System, pop *Population, rate float64, rng *sim.Rand) *Churn {
	c := &Churn{Engine: engine, System: system, Pop: pop, ArrivalRate: rate, rng: rng}
	c.offline = make([]int, len(pop.Players))
	for i := range c.offline {
		c.offline[i] = i
	}
	return c
}

// Joins and Leaves report how many session starts/ends have occurred.
func (c *Churn) Joins() uint64  { return c.joins }
func (c *Churn) Leaves() uint64 { return c.leaves }

// Start schedules the arrival process.
func (c *Churn) Start() {
	c.Engine.Schedule(c.rng.Exp(c.ArrivalRate), c.arrival)
}

func (c *Churn) arrival() {
	if len(c.offline) > 0 {
		i := c.rng.Intn(len(c.offline))
		idx := c.offline[i]
		c.offline[i] = c.offline[len(c.offline)-1]
		c.offline = c.offline[:len(c.offline)-1]
		c.join(idx)
	}
	c.Engine.Schedule(c.rng.Exp(c.ArrivalRate), c.arrival)
}

func (c *Churn) join(idx int) {
	p := c.Pop.Players[idx]
	p.Game = c.ChooseGame(p)
	c.System.Join(p)
	c.joins++
	session := c.rng.SessionDuration()
	c.Engine.Schedule(session, func() {
		c.System.Leave(p)
		c.leaves++
		c.offline = append(c.offline, idx)
	})
}

// ChooseGame implements the paper's friend-driven selection: the game with
// the largest number of online friends playing it, or a uniformly random
// game when no friend is online. Ties break toward the lowest game ID for
// determinism.
func (c *Churn) ChooseGame(p *core.Player) game.Game {
	counts := make(map[int]int)
	for _, fid := range p.Friends {
		f := c.Pop.Players[fid-PlayerIDBase]
		if f.Online && f.Game.ID != 0 {
			counts[f.Game.ID]++
		}
	}
	bestID, bestCount := 0, 0
	for id := 1; id <= len(game.Games()); id++ {
		if counts[id] > bestCount {
			bestID, bestCount = id, counts[id]
		}
	}
	if bestID == 0 {
		bestID = 1 + c.rng.Intn(len(game.Games()))
	}
	g, err := game.ByID(bestID)
	if err != nil {
		panic(err) // unreachable: IDs come from game.Games
	}
	return g
}
