package workload

import (
	"math"
	"testing"
	"time"

	"cloudfog/internal/core"
	"cloudfog/internal/game"
	"cloudfog/internal/geo"
	"cloudfog/internal/sim"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Players = 1000
	return cfg
}

func TestGenerateValidation(t *testing.T) {
	bad := DefaultConfig(1)
	bad.Players = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("zero players accepted")
	}
	bad = DefaultConfig(1)
	bad.Placer = nil
	if _, err := Generate(bad); err == nil {
		t.Fatal("nil placer accepted")
	}
	bad = DefaultConfig(1)
	bad.SupernodeFraction = 1.5
	if _, err := Generate(bad); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestGeneratePopulationShape(t *testing.T) {
	pop, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(pop.Players) != 1000 {
		t.Fatalf("players = %d, want 1000", len(pop.Players))
	}
	// ~10% supernode-capable.
	frac := float64(len(pop.Capable)) / 1000
	if frac < 0.06 || frac > 0.14 {
		t.Fatalf("capable fraction = %v, want ~0.10", frac)
	}
	region := geo.USRegion()
	ids := map[int64]bool{}
	for _, p := range pop.Players {
		if !region.Contains(p.Pos) {
			t.Fatalf("player %d outside region", p.ID)
		}
		if p.Downlink <= 0 {
			t.Fatalf("player %d has non-positive downlink", p.ID)
		}
		if len(p.Friends) < 1 {
			t.Fatalf("player %d has no friends", p.ID)
		}
		if ids[p.ID] {
			t.Fatalf("duplicate player id %d", p.ID)
		}
		ids[p.ID] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(smallConfig(5))
	b, _ := Generate(smallConfig(5))
	for i := range a.Players {
		if a.Players[i].Pos != b.Players[i].Pos ||
			a.Players[i].Downlink != b.Players[i].Downlink ||
			len(a.Players[i].Friends) != len(b.Players[i].Friends) {
			t.Fatalf("populations diverge at player %d", i)
		}
	}
}

func TestFriendsAreValidAndDistinct(t *testing.T) {
	pop, _ := Generate(smallConfig(2))
	for _, p := range pop.Players {
		seen := map[int64]bool{}
		for _, f := range p.Friends {
			if f == p.ID {
				t.Fatalf("player %d is its own friend", p.ID)
			}
			if f < PlayerIDBase || f >= PlayerIDBase+1000 {
				t.Fatalf("friend id %d out of range", f)
			}
			if seen[f] {
				t.Fatalf("player %d has duplicate friend %d", p.ID, f)
			}
			seen[f] = true
		}
	}
}

func TestFriendCountsSkewed(t *testing.T) {
	pop, _ := Generate(smallConfig(3))
	// For a power law with skew 0.5 on [1,100]: P(k<=10) ~= 0.26 while
	// P(k>=91) ~= 0.06 — the bottom decile is ~4x more likely than the top.
	few, many := 0, 0
	for _, p := range pop.Players {
		if len(p.Friends) <= 10 {
			few++
		}
		if len(p.Friends) >= 91 {
			many++
		}
	}
	if few <= 2*many {
		t.Fatalf("friend counts not power-law skewed: few=%d many=%d", few, many)
	}
}

func TestDownlinkMedianCalibrated(t *testing.T) {
	pop, _ := Generate(smallConfig(4))
	below := 0
	for _, p := range pop.Players {
		if p.Downlink <= 20_000_000 {
			below++
		}
	}
	frac := float64(below) / float64(len(pop.Players))
	if math.Abs(frac-0.5) > 0.06 {
		t.Fatalf("downlink median calibration off: %.3f below 20Mbps", frac)
	}
}

func TestBuildSupernodes(t *testing.T) {
	pop, _ := Generate(smallConfig(6))
	rng := sim.NewRand(9)
	sns, err := pop.BuildSupernodes(50, 2_500_000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sns) != 50 {
		t.Fatalf("built %d supernodes, want 50", len(sns))
	}
	ids := map[int64]bool{}
	var capSum float64
	for _, sn := range sns {
		if sn.Capacity < 1 {
			t.Fatal("supernode with capacity < 1")
		}
		if sn.Uplink != int64(sn.Capacity)*2_500_000 {
			t.Fatalf("uplink %d not capacity-proportional", sn.Uplink)
		}
		if ids[sn.ID] {
			t.Fatalf("duplicate supernode id %d", sn.ID)
		}
		ids[sn.ID] = true
		if sn.ID < SupernodeIDBase {
			t.Fatalf("supernode id %d below base", sn.ID)
		}
		capSum += float64(sn.Capacity)
	}
	// Pareto mean ~5.
	if mean := capSum / 50; mean < 2 || mean > 12 {
		t.Fatalf("capacity mean = %v, implausible for Pareto(mean 5)", mean)
	}
	// Positions coincide with capable players' machines.
	capablePos := map[geo.Point]bool{}
	for _, i := range pop.Capable {
		capablePos[pop.Players[i].Pos] = true
	}
	for _, sn := range sns {
		if !capablePos[sn.Pos] {
			t.Fatalf("supernode %d not located at a capable player", sn.ID)
		}
	}
}

func TestBuildSupernodesTooMany(t *testing.T) {
	pop, _ := Generate(smallConfig(7))
	if _, err := pop.BuildSupernodes(len(pop.Capable)+1, 2_500_000, sim.NewRand(1)); err == nil {
		t.Fatal("overcommitted supernode selection accepted")
	}
}

func TestBuildDatacentersAndEdgeServers(t *testing.T) {
	rng := sim.NewRand(8)
	dcs := BuildDatacenters(geo.USRegion(), 5, 400_000_000, rng)
	if len(dcs) != 5 {
		t.Fatal("wrong datacenter count")
	}
	for i, dc := range dcs {
		if dc.ID != DatacenterIDBase+int64(i) || dc.Edge || dc.Capacity != 0 {
			t.Fatalf("datacenter %d misconfigured: %+v", i, dc)
		}
	}
	servers := BuildEdgeServers(geo.USRegion(), 45, 100_000_000, 40, rng)
	if len(servers) != 45 {
		t.Fatal("wrong server count")
	}
	for i, s := range servers {
		if s.ID != EdgeServerIDBase+int64(i) || !s.Edge || s.Capacity != 40 {
			t.Fatalf("server %d misconfigured: %+v", i, s)
		}
	}
}

// fakeSystem counts joins/leaves for churn tests.
type fakeSystem struct {
	online map[int64]*core.Player
}

func newFakeSystem() *fakeSystem { return &fakeSystem{online: map[int64]*core.Player{}} }

func (f *fakeSystem) Name() string { return "fake" }
func (f *fakeSystem) Join(p *core.Player) core.Attachment {
	p.Online = true
	f.online[p.ID] = p
	return core.Attachment{Kind: core.AttachCloud}
}
func (f *fakeSystem) Leave(p *core.Player) {
	p.Online = false
	delete(f.online, p.ID)
}
func (f *fakeSystem) NetworkLatency(*core.Player) time.Duration { return 0 }
func (f *fakeSystem) CloudBandwidth() int64                     { return 0 }

func TestChurnDrivesSessions(t *testing.T) {
	pop, _ := Generate(smallConfig(10))
	engine := sim.New()
	sys := newFakeSystem()
	churn := NewChurn(engine, sys, pop, 5, sim.NewRand(11))
	churn.Start()
	engine.RunUntil(10 * time.Minute)

	// Poisson rate 5/s for 600s => ~3000 joins, but the 1000-player pool
	// caps concurrency; joins only fire when someone is offline.
	if churn.Joins() < 1000 {
		t.Fatalf("joins = %d, expected over 1000 in 10 minutes", churn.Joins())
	}
	if churn.Leaves() > churn.Joins() {
		t.Fatal("more leaves than joins")
	}
	online := 0
	for _, p := range pop.Players {
		if p.Online {
			online++
		}
	}
	if online != len(sys.online) {
		t.Fatalf("online bookkeeping mismatch: %d vs %d", online, len(sys.online))
	}
	if uint64(online) != churn.Joins()-churn.Leaves() {
		t.Fatalf("online %d != joins-leaves %d", online, churn.Joins()-churn.Leaves())
	}
}

func TestChurnPlayersRejoin(t *testing.T) {
	cfg := smallConfig(12)
	cfg.Players = 5 // tiny pool: everyone must cycle
	pop, _ := Generate(cfg)
	engine := sim.New()
	churn := NewChurn(engine, newFakeSystem(), pop, 5, sim.NewRand(13))
	churn.Start()
	engine.RunUntil(48 * time.Hour)
	if churn.Joins() < 10 {
		t.Fatalf("joins = %d; players are not cycling through sessions", churn.Joins())
	}
}

func TestChooseGameFollowsFriends(t *testing.T) {
	pop, _ := Generate(smallConfig(14))
	engine := sim.New()
	churn := NewChurn(engine, newFakeSystem(), pop, 5, sim.NewRand(15))

	p := pop.Players[0]
	g3, _ := game.ByID(3)
	g5, _ := game.ByID(5)
	// Two friends online playing game 3, one playing game 5.
	if len(p.Friends) < 3 {
		f1, f2, f3 := pop.Players[1], pop.Players[2], pop.Players[3]
		p.Friends = []int64{f1.ID, f2.ID, f3.ID}
	}
	for i, fid := range p.Friends[:3] {
		f := pop.Players[fid-PlayerIDBase]
		f.Online = true
		if i < 2 {
			f.Game = g3
		} else {
			f.Game = g5
		}
	}
	if got := churn.ChooseGame(p); got.ID != 3 {
		t.Fatalf("chose game %d, want friends' majority game 3", got.ID)
	}
}

func TestChooseGameRandomWithoutFriendsOnline(t *testing.T) {
	pop, _ := Generate(smallConfig(16))
	engine := sim.New()
	churn := NewChurn(engine, newFakeSystem(), pop, 5, sim.NewRand(17))
	counts := map[int]int{}
	p := pop.Players[0]
	for _, fid := range p.Friends {
		pop.Players[fid-PlayerIDBase].Online = false
	}
	for i := 0; i < 1000; i++ {
		counts[churn.ChooseGame(p).ID]++
	}
	for id := 1; id <= 5; id++ {
		if counts[id] < 100 {
			t.Fatalf("game %d chosen %d/1000 times; random fallback not uniform", id, counts[id])
		}
	}
}
