package baseline

import (
	"testing"

	"cloudfog/internal/core"
	"cloudfog/internal/game"
	"cloudfog/internal/geo"
	"cloudfog/internal/sim"
)

func testConfig() core.Config {
	cfg := core.DefaultConfig(1)
	cfg.Locator.ErrorSigma = 0
	return cfg
}

func mustGame(t *testing.T, id int) game.Game {
	t.Helper()
	g, err := game.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func twoDCs(cfg core.Config) []*core.Datacenter {
	c := cfg.Region.Center()
	return []*core.Datacenter{
		core.NewDatacenter(2_000_000, geo.Point{X: c.X - 1500, Y: c.Y}, cfg.DCEgress),
		core.NewDatacenter(2_000_001, geo.Point{X: c.X + 1500, Y: c.Y}, cfg.DCEgress),
	}
}

func player(id int64, pos geo.Point, g game.Game) *core.Player {
	return &core.Player{ID: id, Pos: pos, Game: g, Downlink: 20_000_000}
}

func TestNewCloudValidation(t *testing.T) {
	cfg := testConfig()
	if _, err := NewCloud(cfg, nil, sim.NewRand(1)); err == nil {
		t.Fatal("cloud with no datacenters accepted")
	}
	bad := cfg
	bad.LmaxFactor = 0
	if _, err := NewCloud(bad, twoDCs(cfg), sim.NewRand(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestCloudAttachesToClosestDC(t *testing.T) {
	cfg := testConfig()
	dcs := twoDCs(cfg)
	c, err := NewCloud(cfg, dcs, sim.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	west := player(1, geo.Point{X: cfg.Region.Center().X - 1400, Y: cfg.Region.Center().Y}, mustGame(t, 3))
	a := c.Join(west)
	if a.Kind != core.AttachCloud || a.DC != dcs[0] {
		t.Fatalf("west player attached to %v/%v, want west DC", a.Kind, a.DC)
	}
	east := player(2, geo.Point{X: cfg.Region.Center().X + 1400, Y: cfg.Region.Center().Y}, mustGame(t, 3))
	if got := c.Join(east); got.DC != dcs[1] {
		t.Fatal("east player not attached to east DC")
	}
	if c.OnlinePlayers() != 2 {
		t.Fatalf("online = %d, want 2", c.OnlinePlayers())
	}
}

func TestCloudLeave(t *testing.T) {
	cfg := testConfig()
	dcs := twoDCs(cfg)
	c, _ := NewCloud(cfg, dcs, sim.NewRand(2))
	p := player(3, cfg.Region.Center(), mustGame(t, 3))
	a := c.Join(p)
	c.Leave(p)
	if p.Online || p.Attached.Served() {
		t.Fatal("player still attached after Leave")
	}
	if a.DC.DirectPlayers() != 0 {
		t.Fatal("datacenter still lists the departed player")
	}
	c.Leave(p) // no-op
	if c.OnlinePlayers() != 0 {
		t.Fatal("online count wrong")
	}
}

func TestCloudBandwidthIsFullStreams(t *testing.T) {
	cfg := testConfig()
	c, _ := NewCloud(cfg, twoDCs(cfg), sim.NewRand(2))
	c.Join(player(1, cfg.Region.Center(), mustGame(t, 3))) // 800 kbps
	c.Join(player(2, cfg.Region.Center(), mustGame(t, 5))) // 1800 kbps
	want := cfg.WireRate(800_000) + cfg.WireRate(1_800_000)
	if got := c.CloudBandwidth(); got != want {
		t.Fatalf("cloud bandwidth = %d, want %d", got, want)
	}
}

func TestCloudJoinIdempotent(t *testing.T) {
	cfg := testConfig()
	c, _ := NewCloud(cfg, twoDCs(cfg), sim.NewRand(2))
	p := player(4, cfg.Region.Center(), mustGame(t, 3))
	a1 := c.Join(p)
	a2 := c.Join(p)
	if a1 != a2 || a1.DC.DirectPlayers() != 1 {
		t.Fatal("double join not idempotent")
	}
}

func TestNewEdgeCloudValidation(t *testing.T) {
	cfg := testConfig()
	dcs := twoDCs(cfg)
	notEdge := core.NewDatacenter(3_000_000, cfg.Region.Center(), 100_000_000)
	if _, err := NewEdgeCloud(cfg, dcs, []*core.Datacenter{notEdge}, sim.NewRand(1)); err == nil {
		t.Fatal("non-edge server accepted")
	}
	if _, err := NewEdgeCloud(cfg, nil, nil, sim.NewRand(1)); err == nil {
		t.Fatal("edgecloud with no datacenters accepted")
	}
}

func TestEdgeCloudPrefersNearbyServer(t *testing.T) {
	cfg := testConfig()
	dcs := twoDCs(cfg)
	center := cfg.Region.Center()
	server := core.NewEdgeServer(3_000_000, geo.Point{X: center.X, Y: center.Y + 20}, 100_000_000, 10)
	e, err := NewEdgeCloud(cfg, dcs, []*core.Datacenter{server}, sim.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	p := player(1, center, mustGame(t, 3))
	a := e.Join(p)
	if a.Kind != core.AttachEdge || a.DC != server {
		t.Fatalf("player attached to %v, want the nearby edge server", a.Kind)
	}
}

func TestEdgeCloudServerCapacityOverflowsToDC(t *testing.T) {
	cfg := testConfig()
	dcs := twoDCs(cfg)
	center := cfg.Region.Center()
	server := core.NewEdgeServer(3_000_000, center, 100_000_000, 2)
	e, _ := NewEdgeCloud(cfg, dcs, []*core.Datacenter{server}, sim.NewRand(3))
	kinds := map[core.AttachKind]int{}
	for i := int64(0); i < 5; i++ {
		a := e.Join(player(10+i, center, mustGame(t, 3)))
		kinds[a.Kind]++
	}
	if kinds[core.AttachEdge] != 2 {
		t.Fatalf("edge served %d, capacity is 2", kinds[core.AttachEdge])
	}
	if kinds[core.AttachCloud] != 3 {
		t.Fatalf("overflow to cloud = %d, want 3", kinds[core.AttachCloud])
	}
}

func TestEdgeCloudBandwidthExcludesServers(t *testing.T) {
	cfg := testConfig()
	dcs := twoDCs(cfg)
	center := cfg.Region.Center()
	server := core.NewEdgeServer(3_000_000, center, 100_000_000, 1)
	e, _ := NewEdgeCloud(cfg, dcs, []*core.Datacenter{server}, sim.NewRand(3))
	e.Join(player(1, center, mustGame(t, 3)))                                     // edge-served
	e.Join(player(2, geo.Point{X: center.X - 1400, Y: center.Y}, mustGame(t, 3))) // DC-served
	if got := e.CloudBandwidth(); got != cfg.WireRate(800_000) {
		t.Fatalf("cloud bandwidth = %d, want only the DC-served stream %d",
			got, cfg.WireRate(800_000))
	}
	if got := e.TotalBandwidth(); got != 2*cfg.WireRate(800_000) {
		t.Fatalf("total bandwidth = %d, want both streams", got)
	}
}

func TestEdgeCloudLeaveFreesServerSlot(t *testing.T) {
	cfg := testConfig()
	dcs := twoDCs(cfg)
	center := cfg.Region.Center()
	server := core.NewEdgeServer(3_000_000, center, 100_000_000, 1)
	e, _ := NewEdgeCloud(cfg, dcs, []*core.Datacenter{server}, sim.NewRand(3))
	p := player(1, center, mustGame(t, 3))
	e.Join(p)
	e.Leave(p)
	if server.Available() != 1 {
		t.Fatal("server slot not freed")
	}
	// Slot is reusable.
	p2 := player(2, center, mustGame(t, 3))
	if a := e.Join(p2); a.Kind != core.AttachEdge {
		t.Fatal("freed slot not reused")
	}
}

// TestLatencyOrderingAcrossSystems checks the headline ordering the paper's
// Figure 8 reports: with the same population, Cloud has the highest average
// latency, EdgeCloud is lower (nearby servers), and CloudFog lower still
// (many nearby supernodes).
func TestLatencyOrderingAcrossSystems(t *testing.T) {
	cfg := testConfig()
	rng := sim.NewRand(42)
	placer := geo.DefaultUSPlacer()

	mean := func(sys core.System, players []*core.Player) float64 {
		var sum float64
		for _, p := range players {
			sys.Join(p)
		}
		for _, p := range players {
			sum += sys.NetworkLatency(p).Seconds()
		}
		for _, p := range players {
			sys.Leave(p)
		}
		return sum / float64(len(players))
	}

	// Paper-scale concurrency (~2000 online of 10,000): EdgeCloud's 45
	// servers saturate (capacity 40 each), as in the evaluation.
	makePlayers := func(base int64) []*core.Player {
		out := make([]*core.Player, 2000)
		for i := range out {
			out[i] = player(base+int64(i), placer.Place(rng), mustGame(t, 4))
		}
		return out
	}

	dcRng := sim.NewRand(7)
	dcPts := geo.SpreadPoints(cfg.Region, 5, dcRng)
	newDCs := func() []*core.Datacenter {
		dcs := make([]*core.Datacenter, len(dcPts))
		for i, pt := range dcPts {
			dcs[i] = core.NewDatacenter(2_000_000+int64(i), pt, cfg.DCEgress)
		}
		return dcs
	}

	cloud, _ := NewCloud(cfg, newDCs(), sim.NewRand(8))
	cloudLat := mean(cloud, makePlayers(0))

	srvPts := geo.SpreadPoints(cfg.Region, 45, sim.NewRand(9))
	servers := make([]*core.Datacenter, len(srvPts))
	for i, pt := range srvPts {
		servers[i] = core.NewEdgeServer(3_000_000+int64(i), pt, 100_000_000, 40)
	}
	edge, _ := NewEdgeCloud(cfg, newDCs(), servers, sim.NewRand(10))
	edgeLat := mean(edge, makePlayers(10_000))

	snPts := geo.SpreadPoints(cfg.Region, 600, sim.NewRand(11))
	sns := make([]*core.Supernode, len(snPts))
	for i, pt := range snPts {
		sns[i] = core.NewSupernode(1_000_000+int64(i), pt, 5, 5*cfg.UplinkPerSlot)
	}
	fog, err := core.BuildFog(cfg, newDCs(), sns, sim.NewRand(12))
	if err != nil {
		t.Fatal(err)
	}
	fogLat := mean(fog, makePlayers(20_000))

	if !(cloudLat > edgeLat && edgeLat > fogLat) {
		t.Fatalf("latency ordering violated: cloud=%.1fms edge=%.1fms fog=%.1fms",
			cloudLat*1000, edgeLat*1000, fogLat*1000)
	}
}
