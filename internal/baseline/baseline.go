// Package baseline implements the two systems the CloudFog paper compares
// against (§IV):
//
//   - Cloud: the current cloud gaming model (e.g. GamingAnywhere/OnLive) —
//     every player streams its game video directly from a datacenter.
//   - EdgeCloud (Choy et al., 2012): the cloud is augmented with a number
//     of deployed edge servers that take over *all* tasks — state
//     computation, rendering and streaming — for the players they serve.
//
// Both baselines are built on the same substrates (latency trace, flow
// model, entities) as CloudFog so the comparison isolates the architecture.
package baseline

import (
	"fmt"
	"time"

	"cloudfog/internal/core"
	"cloudfog/internal/sim"
)

// Cloud is the current cloud gaming model: players connect to the
// geographically closest datacenter, which computes state, renders, and
// streams the full game video.
type Cloud struct {
	cfg    core.Config
	dcs    []*core.Datacenter
	rng    *sim.Rand
	online map[int64]*core.Player
}

// NewCloud builds the Cloud baseline over the given datacenters.
func NewCloud(cfg core.Config, dcs []*core.Datacenter, rng *sim.Rand) (*Cloud, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(dcs) == 0 {
		return nil, fmt.Errorf("baseline: Cloud needs at least one datacenter")
	}
	return &Cloud{cfg: cfg, dcs: dcs, rng: rng, online: make(map[int64]*core.Player)}, nil
}

// Name identifies the system in experiment output.
func (c *Cloud) Name() string { return "Cloud" }

// Datacenters returns the baseline's datacenters.
func (c *Cloud) Datacenters() []*core.Datacenter { return c.dcs }

// OnlinePlayers returns the number of players currently served.
func (c *Cloud) OnlinePlayers() int { return len(c.online) }

// Join attaches the player to the geographically closest datacenter (by the
// provider's IP-geolocation estimate of the player's position).
func (c *Cloud) Join(p *core.Player) core.Attachment {
	if p.Online {
		return p.Attached
	}
	p.Online = true
	c.online[p.ID] = p
	est := c.cfg.Locator.Locate(p.Pos, c.rng)
	best := c.dcs[0]
	bestDist := est.DistanceTo(best.Pos)
	for _, dc := range c.dcs[1:] {
		if d := est.DistanceTo(dc.Pos); d < bestDist {
			best, bestDist = dc, d
		}
	}
	best.AddDirect(p)
	p.Attached = core.Attachment{
		Kind:          core.AttachCloud,
		DC:            best,
		StreamLatency: c.cfg.Latency.OneWay(p.Endpoint(), best.Endpoint()),
	}
	return p.Attached
}

// Leave detaches a departing player.
func (c *Cloud) Leave(p *core.Player) {
	if !p.Online {
		return
	}
	p.Online = false
	delete(c.online, p.ID)
	if p.Attached.Kind == core.AttachCloud && p.Attached.DC != nil {
		p.Attached.DC.RemoveDirect(p.ID)
	}
	p.Attached = core.Attachment{}
}

// NetworkLatency returns the player's flow-level response network latency.
func (c *Cloud) NetworkLatency(p *core.Player) time.Duration {
	return core.FlowLatency(c.cfg, p)
}

// CloudBandwidth returns the full video egress of all datacenters: in the
// Cloud model every player's stream leaves the cloud.
func (c *Cloud) CloudBandwidth() int64 {
	var total int64
	for _, p := range c.online {
		total += c.cfg.WireRate(p.Game.Quality().Bitrate)
	}
	return total
}

var _ core.System = (*Cloud)(nil)

// EdgeCloud augments the cloud with deployed edge servers near users. An
// edge server runs the full stack for its players, so a player attaches to
// the closest of (servers ∪ datacenters) that has capacity.
type EdgeCloud struct {
	cfg     core.Config
	dcs     []*core.Datacenter
	servers []*core.Datacenter
	rng     *sim.Rand
	online  map[int64]*core.Player
}

// NewEdgeCloud builds the EdgeCloud baseline. Servers should be constructed
// with core.NewEdgeServer (capacity-limited, provisioned links).
func NewEdgeCloud(cfg core.Config, dcs, servers []*core.Datacenter, rng *sim.Rand) (*EdgeCloud, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(dcs) == 0 {
		return nil, fmt.Errorf("baseline: EdgeCloud needs at least one datacenter")
	}
	for i, s := range servers {
		if !s.Edge {
			return nil, fmt.Errorf("baseline: server %d is not an edge server (use core.NewEdgeServer)", i)
		}
	}
	return &EdgeCloud{cfg: cfg, dcs: dcs, servers: servers, rng: rng,
		online: make(map[int64]*core.Player)}, nil
}

// Name identifies the system in experiment output.
func (e *EdgeCloud) Name() string { return "EdgeCloud" }

// Servers returns the deployed edge servers.
func (e *EdgeCloud) Servers() []*core.Datacenter { return e.servers }

// OnlinePlayers returns the number of players currently served.
func (e *EdgeCloud) OnlinePlayers() int { return len(e.online) }

// Join attaches the player to the closest node among edge servers and
// datacenters that still has capacity.
func (e *EdgeCloud) Join(p *core.Player) core.Attachment {
	if p.Online {
		return p.Attached
	}
	p.Online = true
	e.online[p.ID] = p
	est := e.cfg.Locator.Locate(p.Pos, e.rng)

	var best *core.Datacenter
	bestDist := 0.0
	consider := func(d *core.Datacenter) {
		if d.Available() <= 0 {
			return
		}
		dist := est.DistanceTo(d.Pos)
		if best == nil || dist < bestDist {
			best, bestDist = d, dist
		}
	}
	for _, s := range e.servers {
		consider(s)
	}
	for _, dc := range e.dcs {
		consider(dc)
	}
	// Main datacenters are uncapacitated, so best is never nil.
	best.AddDirect(p)
	kind := core.AttachCloud
	if best.Edge {
		kind = core.AttachEdge
	}
	p.Attached = core.Attachment{
		Kind:          kind,
		DC:            best,
		StreamLatency: e.cfg.Latency.OneWay(p.Endpoint(), best.Endpoint()),
	}
	return p.Attached
}

// Leave detaches a departing player.
func (e *EdgeCloud) Leave(p *core.Player) {
	if !p.Online {
		return
	}
	p.Online = false
	delete(e.online, p.ID)
	if p.Attached.DC != nil {
		p.Attached.DC.RemoveDirect(p.ID)
	}
	p.Attached = core.Attachment{}
}

// NetworkLatency returns the player's flow-level response network latency.
func (e *EdgeCloud) NetworkLatency(p *core.Player) time.Duration {
	return core.FlowLatency(e.cfg, p)
}

// CloudBandwidth returns the egress of the main datacenters only, matching
// the paper's Figure 7 accounting ("the bandwidth consumption of EdgeCloud
// does not include those of additional servers").
func (e *EdgeCloud) CloudBandwidth() int64 {
	var total int64
	for _, p := range e.online {
		if p.Attached.Kind == core.AttachCloud {
			total += e.cfg.WireRate(p.Game.Quality().Bitrate)
		}
	}
	return total
}

// TotalBandwidth includes the edge servers' egress as well — the paper
// notes that with servers included EdgeCloud's consumption is similar to
// Cloud's.
func (e *EdgeCloud) TotalBandwidth() int64 {
	var total int64
	for _, p := range e.online {
		total += e.cfg.WireRate(p.Game.Quality().Bitrate)
	}
	return total
}

var _ core.System = (*EdgeCloud)(nil)
