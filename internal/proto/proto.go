// Package proto defines the CloudFog wire protocol: the binary messages
// exchanged between players, the cloud, and supernodes in a live
// deployment. Framing is [1-byte type][4-byte big-endian length][payload];
// payloads are fixed-layout big-endian fields, hand-encoded so the format
// is stable and inspectable.
//
// The message set mirrors the paper's data flows (§III-A):
//
//	player    → cloud      Action        (the player's input, timestamped)
//	cloud     → supernode  Delta         (game-state update information)
//	supernode → player     Segment       (one encoded video segment)
//	player    → supernode  JoinStream    (subscribe a view)
//	any       → any        Ack           (acknowledgements / errors)
package proto

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"cloudfog/internal/world"
)

// MsgType tags a frame.
type MsgType uint8

const (
	// TAction is a player action sent to the cloud.
	TAction MsgType = iota + 1
	// TDelta is a cloud→supernode game-state update.
	TDelta
	// TSegment is a supernode→player video segment.
	TSegment
	// TJoinStream subscribes a player's view at a supernode.
	TJoinStream
	// TAck acknowledges a request (code 0 = OK).
	TAck
	// THello identifies a connecting peer's role.
	THello
	// THeartbeat is a supernode's periodic liveness beacon to the cloud.
	THeartbeat
)

// MaxFrame bounds frame payloads (16 MiB) against corrupt length headers.
const MaxFrame = 16 << 20

// WriteFrame writes one framed message.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("proto: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one framed message.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("proto: frame length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return MsgType(hdr[0]), payload, nil
}

// buffer is a simple append/consume byte cursor.
type buffer struct {
	b   []byte
	off int
	err error
}

func (b *buffer) u8(v uint8)   { b.b = append(b.b, v) }
func (b *buffer) u32(v uint32) { b.b = binary.BigEndian.AppendUint32(b.b, v) }
func (b *buffer) u64(v uint64) { b.b = binary.BigEndian.AppendUint64(b.b, v) }
func (b *buffer) i64(v int64)  { b.u64(uint64(v)) }
func (b *buffer) f64(v float64) {
	b.u64(math.Float64bits(v))
}

func (b *buffer) need(n int) bool {
	if b.err != nil {
		return false
	}
	if b.off+n > len(b.b) {
		b.err = io.ErrUnexpectedEOF
		return false
	}
	return true
}

func (b *buffer) ru8() uint8 {
	if !b.need(1) {
		return 0
	}
	v := b.b[b.off]
	b.off++
	return v
}

func (b *buffer) ru32() uint32 {
	if !b.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(b.b[b.off:])
	b.off += 4
	return v
}

func (b *buffer) ru64() uint64 {
	if !b.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(b.b[b.off:])
	b.off += 8
	return v
}

func (b *buffer) ri64() int64   { return int64(b.ru64()) }
func (b *buffer) rf64() float64 { return math.Float64frombits(b.ru64()) }

func (b *buffer) finish() error {
	if b.err != nil {
		return b.err
	}
	if b.off != len(b.b) {
		return fmt.Errorf("proto: %d trailing bytes", len(b.b)-b.off)
	}
	return nil
}

// Action is a timestamped player input.
type Action struct {
	Player int64
	// Issued is the client's send time (virtual or wall nanoseconds);
	// it rides through the pipeline so end-to-end response latency can
	// be measured at delivery.
	Issued time.Duration
	Act    world.Action
}

// MarshalAction encodes an action message.
func MarshalAction(a Action) []byte {
	var b buffer
	b.i64(a.Player)
	b.i64(int64(a.Issued))
	b.u8(uint8(a.Act.Kind))
	b.i64(a.Act.Player)
	b.f64(a.Act.Target.X)
	b.f64(a.Act.Target.Y)
	b.i64(int64(a.Act.Victim))
	return b.b
}

// UnmarshalAction decodes an action message.
func UnmarshalAction(p []byte) (Action, error) {
	b := buffer{b: p}
	var a Action
	a.Player = b.ri64()
	a.Issued = time.Duration(b.ri64())
	a.Act.Kind = world.ActionKind(b.ru8())
	a.Act.Player = b.ri64()
	a.Act.Target.X = b.rf64()
	a.Act.Target.Y = b.rf64()
	a.Act.Victim = world.EntityID(b.ri64())
	return a, b.finish()
}

// MarshalDelta encodes a world delta (the cloud's update information).
func MarshalDelta(d world.Delta) []byte {
	var b buffer
	b.u64(d.FromVersion)
	b.u64(d.ToVersion)
	full := uint8(0)
	if d.Full {
		full = 1
	}
	b.u8(full)
	b.u32(uint32(len(d.Updated)))
	b.u32(uint32(len(d.Removed)))
	for _, e := range d.Updated {
		b.i64(int64(e.ID))
		b.u8(uint8(e.Kind))
		b.i64(e.Owner)
		b.f64(e.Pos.X)
		b.f64(e.Pos.Y)
		b.f64(e.Vel.X)
		b.f64(e.Vel.Y)
		b.u32(uint32(e.HP))
		b.u64(e.Version)
	}
	for _, id := range d.Removed {
		b.i64(int64(id))
	}
	return b.b
}

// UnmarshalDelta decodes a world delta.
func UnmarshalDelta(p []byte) (world.Delta, error) {
	b := buffer{b: p}
	var d world.Delta
	d.FromVersion = b.ru64()
	d.ToVersion = b.ru64()
	d.Full = b.ru8() == 1
	nUp := int(b.ru32())
	nRm := int(b.ru32())
	if b.err != nil {
		return d, b.err
	}
	const perEntity = 8 + 1 + 8 + 32 + 4 + 8
	if nUp*perEntity+nRm*8 > len(p) {
		return d, fmt.Errorf("proto: delta counts exceed payload")
	}
	d.Updated = make([]world.Entity, 0, nUp)
	for i := 0; i < nUp; i++ {
		var e world.Entity
		e.ID = world.EntityID(b.ri64())
		e.Kind = world.Kind(b.ru8())
		e.Owner = b.ri64()
		e.Pos.X = b.rf64()
		e.Pos.Y = b.rf64()
		e.Vel.X = b.rf64()
		e.Vel.Y = b.rf64()
		e.HP = int32(b.ru32())
		e.Version = b.ru64()
		d.Updated = append(d.Updated, e)
	}
	d.Removed = make([]world.EntityID, 0, nRm)
	for i := 0; i < nRm; i++ {
		d.Removed = append(d.Removed, world.EntityID(b.ri64()))
	}
	return d, b.finish()
}

// Segment is one video segment header plus its (opaque) payload bytes.
type Segment struct {
	Player int64
	Seq    int64
	Level  uint8
	// ActionIssued echoes the newest action reflected in this frame, so
	// the player can measure response latency end to end.
	ActionIssued time.Duration
	Payload      []byte
}

// MarshalSegment encodes a segment message.
func MarshalSegment(s Segment) []byte {
	var b buffer
	b.i64(s.Player)
	b.i64(s.Seq)
	b.u8(s.Level)
	b.i64(int64(s.ActionIssued))
	b.u32(uint32(len(s.Payload)))
	b.b = append(b.b, s.Payload...)
	return b.b
}

// UnmarshalSegment decodes a segment message.
func UnmarshalSegment(p []byte) (Segment, error) {
	b := buffer{b: p}
	var s Segment
	s.Player = b.ri64()
	s.Seq = b.ri64()
	s.Level = b.ru8()
	s.ActionIssued = time.Duration(b.ri64())
	n := int(b.ru32())
	if b.err != nil {
		return s, b.err
	}
	if n > len(p)-b.off {
		return s, fmt.Errorf("proto: segment payload length %d exceeds frame", n)
	}
	s.Payload = make([]byte, n)
	copy(s.Payload, b.b[b.off:b.off+n])
	b.off += n
	return s, b.finish()
}

// JoinStream subscribes a player's rendered view at a supernode.
type JoinStream struct {
	Player   int64
	GameID   int32
	ViewX    float64
	ViewY    float64
	ViewR    float64
	LevelCap uint8
}

// MarshalJoinStream encodes a stream subscription.
func MarshalJoinStream(j JoinStream) []byte {
	var b buffer
	b.i64(j.Player)
	b.u32(uint32(j.GameID))
	b.f64(j.ViewX)
	b.f64(j.ViewY)
	b.f64(j.ViewR)
	b.u8(j.LevelCap)
	return b.b
}

// UnmarshalJoinStream decodes a stream subscription.
func UnmarshalJoinStream(p []byte) (JoinStream, error) {
	b := buffer{b: p}
	var j JoinStream
	j.Player = b.ri64()
	j.GameID = int32(b.ru32())
	j.ViewX = b.rf64()
	j.ViewY = b.rf64()
	j.ViewR = b.rf64()
	j.LevelCap = b.ru8()
	return j, b.finish()
}

// Role identifies what a connecting peer is.
type Role uint8

const (
	// RolePlayerActions marks a player's action connection to the cloud.
	RolePlayerActions Role = iota + 1
	// RoleSupernode marks a supernode's update subscription at the cloud.
	RoleSupernode
)

// Hello is the first frame on any connection to the cloud.
type Hello struct {
	Role Role
	ID   int64
}

// MarshalHello encodes a hello.
func MarshalHello(h Hello) []byte {
	var b buffer
	b.u8(uint8(h.Role))
	b.i64(h.ID)
	return b.b
}

// UnmarshalHello decodes a hello.
func UnmarshalHello(p []byte) (Hello, error) {
	b := buffer{b: p}
	h := Hello{Role: Role(b.ru8()), ID: b.ri64()}
	return h, b.finish()
}

// Heartbeat is a supernode's periodic liveness beacon: the cloud's failure
// detector times the gaps between arrivals.
type Heartbeat struct {
	ID  int64
	Seq uint64
}

// MarshalHeartbeat encodes a heartbeat.
func MarshalHeartbeat(h Heartbeat) []byte {
	var b buffer
	b.i64(h.ID)
	b.u64(h.Seq)
	return b.b
}

// UnmarshalHeartbeat decodes a heartbeat.
func UnmarshalHeartbeat(p []byte) (Heartbeat, error) {
	b := buffer{b: p}
	h := Heartbeat{ID: b.ri64(), Seq: b.ru64()}
	return h, b.finish()
}

// Ack acknowledges a request.
type Ack struct {
	Code uint32 // 0 = OK
}

// MarshalAck encodes an acknowledgement.
func MarshalAck(a Ack) []byte {
	var b buffer
	b.u32(a.Code)
	return b.b
}

// UnmarshalAck decodes an acknowledgement.
func UnmarshalAck(p []byte) (Ack, error) {
	b := buffer{b: p}
	a := Ack{Code: b.ru32()}
	return a, b.finish()
}
