// Package proto defines the CloudFog wire protocol: the binary messages
// exchanged between players, the cloud, and supernodes in a live
// deployment. Framing is [1-byte type][4-byte big-endian length][payload];
// payloads are fixed-layout big-endian fields, hand-encoded so the format
// is stable and inspectable.
//
// The message set mirrors the paper's data flows (§III-A):
//
//	player    → cloud      Action        (the player's input, timestamped)
//	cloud     → supernode  Delta         (game-state update information)
//	supernode → player     Segment       (one encoded video segment)
//	player    → supernode  JoinStream    (subscribe a view)
//	any       → any        Ack           (acknowledgements / errors)
package proto

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"cloudfog/internal/world"
)

// MsgType tags a frame.
type MsgType uint8

const (
	// TAction is a player action sent to the cloud.
	TAction MsgType = iota + 1
	// TDelta is a cloud→supernode game-state update.
	TDelta
	// TSegment is a supernode→player video segment.
	TSegment
	// TJoinStream subscribes a player's view at a supernode.
	TJoinStream
	// TAck acknowledges a request (code 0 = OK).
	TAck
	// THello identifies a connecting peer's role.
	THello
	// THeartbeat is a supernode's periodic liveness beacon to the cloud.
	THeartbeat
	// TRegister announces a supernode worker to the coordinator: identity,
	// player-facing address, position, and capacity.
	TRegister
	// TReport is a worker's periodic capacity/occupancy report to the
	// coordinator; the coordinator's failure detector times the gaps.
	TReport
	// TPlace asks the coordinator to place a joining player.
	TPlace
	// TTicket is the coordinator's signed placement answer: the serving
	// worker's address plus the backup ring. On the player→coordinator
	// direction the same frame type carries a Renew payload (a lease
	// renewal request).
	TTicket
	// TSync is the coordinator's downstream beacon to workers: its clock
	// and the lease TTL. Workers time the gaps to detect coordinator
	// silence and use the clock to bound ticket-expiry skew.
	TSync
)

// MaxFrame bounds frame payloads (16 MiB) against corrupt length headers.
const MaxFrame = 16 << 20

// FrameHeaderLen is the fixed frame header size: 1 type byte plus a 4-byte
// big-endian payload length.
const FrameHeaderLen = 5

// MaxDatagram is the largest whole frame (header included) that fits in one
// UDP datagram (the IPv4 maximum UDP payload).
const MaxDatagram = 65507

// WriteFrame writes one framed message.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("proto: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [FrameHeaderLen]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// AppendFrame appends one complete frame (header plus payload) to dst and
// returns the extended slice. A sequence of AppendFrame calls into one
// buffer produces the exact byte stream a sequence of WriteFrame calls
// would, so coalesced batches decode with the ordinary ReadFrame loop.
func AppendFrame(dst []byte, t MsgType, payload []byte) []byte {
	dst = append(dst, byte(t))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// BeginFrame appends a frame header for t with a zero payload length to dst.
// Append the payload with the Append* marshalers, then patch the length with
// FinishFrame. The header starts at the returned slice's len(dst) offset.
func BeginFrame(dst []byte, t MsgType) []byte {
	return append(dst, byte(t), 0, 0, 0, 0)
}

// FinishFrame patches the payload length of the frame whose header starts
// at hdrOff in b, after the payload has been appended in place. It reports
// an error (leaving b unusable for the wire) when the frame is malformed or
// the payload exceeds MaxFrame.
func FinishFrame(b []byte, hdrOff int) error {
	if hdrOff < 0 || hdrOff+FrameHeaderLen > len(b) {
		return fmt.Errorf("proto: FinishFrame header offset %d out of range", hdrOff)
	}
	n := len(b) - hdrOff - FrameHeaderLen
	if n > MaxFrame {
		return fmt.Errorf("proto: frame of %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(b[hdrOff+1:], uint32(n))
	return nil
}

// ReadFrame reads one framed message. The returned payload is freshly
// allocated and owned by the caller; hot paths should prefer ReadFrameReuse.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("proto: frame length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return MsgType(hdr[0]), payload, nil
}

// ReadFrameReuse is ReadFrame reading the payload into *buf (grown as
// needed) instead of allocating. The returned payload aliases *buf and is
// valid only until the next call that reuses the same buffer; decode or
// copy it out before reading again.
func ReadFrameReuse(r io.Reader, buf *[]byte) (MsgType, []byte, error) {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[1:]))
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("proto: frame length %d exceeds limit", n)
	}
	b := *buf
	if cap(b) < n {
		b = make([]byte, n)
		*buf = b
	}
	b = b[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		return 0, nil, err
	}
	return MsgType(hdr[0]), b, nil
}

// ParseDatagram interprets one datagram as exactly one frame (header plus
// payload — the datagram transport's unit). The returned payload aliases p.
func ParseDatagram(p []byte) (MsgType, []byte, error) {
	if len(p) < FrameHeaderLen {
		return 0, nil, fmt.Errorf("proto: datagram of %d bytes is shorter than a frame header", len(p))
	}
	n := int(binary.BigEndian.Uint32(p[1:]))
	if n != len(p)-FrameHeaderLen {
		return 0, nil, fmt.Errorf("proto: datagram payload length %d does not match frame length %d",
			len(p)-FrameHeaderLen, n)
	}
	return MsgType(p[0]), p[FrameHeaderLen:], nil
}

// BufferPool recycles payload and frame buffers across encodes and decodes.
// The zero value is ready to use. Buffers above maxPooledBuf are dropped on
// Put so one giant frame cannot pin memory for the pool's lifetime.
type BufferPool struct {
	p sync.Pool
}

// maxPooledBuf bounds the capacity of buffers the pool retains.
const maxPooledBuf = 1 << 20

// Get returns a zero-length buffer with at least capHint capacity.
func (bp *BufferPool) Get(capHint int) []byte {
	if v := bp.p.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= capHint {
			return b[:0]
		}
	}
	if capHint < 512 {
		capHint = 512
	}
	return make([]byte, 0, capHint)
}

// Put returns a buffer to the pool. The caller must not use b afterward.
func (bp *BufferPool) Put(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bp.p.Put(&b)
}

// Append-side primitives: each writes one big-endian field and returns the
// extended slice, so the Append* marshalers compose with zero allocations
// into caller-supplied (typically pooled) storage.

func appendU8(dst []byte, v uint8) []byte   { return append(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }
func appendI64(dst []byte, v int64) []byte  { return appendU64(dst, uint64(v)) }
func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

// buffer is a simple consume-side byte cursor.
type buffer struct {
	b   []byte
	off int
	err error
}

func (b *buffer) need(n int) bool {
	if b.err != nil {
		return false
	}
	if b.off+n > len(b.b) {
		b.err = io.ErrUnexpectedEOF
		return false
	}
	return true
}

func (b *buffer) ru8() uint8 {
	if !b.need(1) {
		return 0
	}
	v := b.b[b.off]
	b.off++
	return v
}

func (b *buffer) ru32() uint32 {
	if !b.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(b.b[b.off:])
	b.off += 4
	return v
}

func (b *buffer) ru64() uint64 {
	if !b.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(b.b[b.off:])
	b.off += 8
	return v
}

func (b *buffer) ri64() int64   { return int64(b.ru64()) }
func (b *buffer) rf64() float64 { return math.Float64frombits(b.ru64()) }

func (b *buffer) finish() error {
	if b.err != nil {
		return b.err
	}
	if b.off != len(b.b) {
		return fmt.Errorf("proto: %d trailing bytes", len(b.b)-b.off)
	}
	return nil
}

// Action is a timestamped player input.
type Action struct {
	Player int64
	// Issued is the client's send time (virtual or wall nanoseconds);
	// it rides through the pipeline so end-to-end response latency can
	// be measured at delivery.
	Issued time.Duration
	Act    world.Action
}

// MarshalAction encodes an action message.
func MarshalAction(a Action) []byte { return AppendAction(nil, a) }

// AppendAction marshals an action message into dst and returns the extended
// slice — the allocation-free form of MarshalAction.
func AppendAction(dst []byte, a Action) []byte {
	dst = appendI64(dst, a.Player)
	dst = appendI64(dst, int64(a.Issued))
	dst = appendU8(dst, uint8(a.Act.Kind))
	dst = appendI64(dst, a.Act.Player)
	dst = appendF64(dst, a.Act.Target.X)
	dst = appendF64(dst, a.Act.Target.Y)
	dst = appendI64(dst, int64(a.Act.Victim))
	return dst
}

// UnmarshalAction decodes an action message.
func UnmarshalAction(p []byte) (Action, error) {
	b := buffer{b: p}
	var a Action
	a.Player = b.ri64()
	a.Issued = time.Duration(b.ri64())
	a.Act.Kind = world.ActionKind(b.ru8())
	a.Act.Player = b.ri64()
	a.Act.Target.X = b.rf64()
	a.Act.Target.Y = b.rf64()
	a.Act.Victim = world.EntityID(b.ri64())
	return a, b.finish()
}

// MarshalDelta encodes a world delta (the cloud's update information).
func MarshalDelta(d world.Delta) []byte { return AppendDelta(nil, d) }

// AppendDelta marshals a world delta into dst and returns the extended
// slice — the allocation-free form of MarshalDelta.
func AppendDelta(dst []byte, d world.Delta) []byte {
	dst = appendU64(dst, d.FromVersion)
	dst = appendU64(dst, d.ToVersion)
	full := uint8(0)
	if d.Full {
		full = 1
	}
	dst = appendU8(dst, full)
	dst = appendU32(dst, uint32(len(d.Updated)))
	dst = appendU32(dst, uint32(len(d.Removed)))
	for _, e := range d.Updated {
		dst = appendI64(dst, int64(e.ID))
		dst = appendU8(dst, uint8(e.Kind))
		dst = appendI64(dst, e.Owner)
		dst = appendF64(dst, e.Pos.X)
		dst = appendF64(dst, e.Pos.Y)
		dst = appendF64(dst, e.Vel.X)
		dst = appendF64(dst, e.Vel.Y)
		dst = appendU32(dst, uint32(e.HP))
		dst = appendU64(dst, e.Version)
	}
	for _, id := range d.Removed {
		dst = appendI64(dst, int64(id))
	}
	return dst
}

// UnmarshalDelta decodes a world delta.
func UnmarshalDelta(p []byte) (world.Delta, error) {
	b := buffer{b: p}
	var d world.Delta
	d.FromVersion = b.ru64()
	d.ToVersion = b.ru64()
	d.Full = b.ru8() == 1
	nUp := int(b.ru32())
	nRm := int(b.ru32())
	if b.err != nil {
		return d, b.err
	}
	const perEntity = 8 + 1 + 8 + 32 + 4 + 8
	if nUp*perEntity+nRm*8 > len(p) {
		return d, fmt.Errorf("proto: delta counts exceed payload")
	}
	d.Updated = make([]world.Entity, 0, nUp)
	for i := 0; i < nUp; i++ {
		var e world.Entity
		e.ID = world.EntityID(b.ri64())
		e.Kind = world.Kind(b.ru8())
		e.Owner = b.ri64()
		e.Pos.X = b.rf64()
		e.Pos.Y = b.rf64()
		e.Vel.X = b.rf64()
		e.Vel.Y = b.rf64()
		e.HP = int32(b.ru32())
		e.Version = b.ru64()
		d.Updated = append(d.Updated, e)
	}
	d.Removed = make([]world.EntityID, 0, nRm)
	for i := 0; i < nRm; i++ {
		d.Removed = append(d.Removed, world.EntityID(b.ri64()))
	}
	return d, b.finish()
}

// Segment is one video segment header plus its (opaque) payload bytes.
type Segment struct {
	Player int64
	Seq    int64
	Level  uint8
	// ActionIssued echoes the newest action reflected in this frame, so
	// the player can measure response latency end to end.
	ActionIssued time.Duration
	Payload      []byte
}

// MarshalSegment encodes a segment message.
func MarshalSegment(s Segment) []byte { return AppendSegment(nil, s) }

// AppendSegment marshals a segment message into dst and returns the
// extended slice — the allocation-free form of MarshalSegment.
func AppendSegment(dst []byte, s Segment) []byte {
	dst = AppendSegmentHeader(dst, s, len(s.Payload))
	return append(dst, s.Payload...)
}

// AppendSegmentHeader marshals a segment's fixed fields plus a payload
// length of payloadLen, without the payload bytes (s.Payload is ignored).
// The caller must append exactly payloadLen bytes afterward — this is the
// render-in-place hot path: the encoder writes the video bytes directly
// into the wire buffer with no intermediate slice.
func AppendSegmentHeader(dst []byte, s Segment, payloadLen int) []byte {
	dst = appendI64(dst, s.Player)
	dst = appendI64(dst, s.Seq)
	dst = appendU8(dst, s.Level)
	dst = appendI64(dst, int64(s.ActionIssued))
	return appendU32(dst, uint32(payloadLen))
}

// UnmarshalSegment decodes a segment message. The payload is copied, so the
// segment is safe to retain after the frame buffer is reused; the receive
// hot path should prefer UnmarshalSegmentInto.
func UnmarshalSegment(p []byte) (Segment, error) {
	var s Segment
	err := UnmarshalSegmentInto(p, &s)
	if err == nil {
		s.Payload = append([]byte(nil), s.Payload...)
	}
	return s, err
}

// UnmarshalSegmentInto decodes a segment message without copying the
// payload: s.Payload aliases p's storage, borrowed rather than owned. The
// decoded segment is valid only as long as p is — until the read buffer or
// pooled frame it came from is reused. Copy s.Payload (or use
// UnmarshalSegment) when the segment must outlive the frame.
func UnmarshalSegmentInto(p []byte, s *Segment) error {
	b := buffer{b: p}
	s.Player = b.ri64()
	s.Seq = b.ri64()
	s.Level = b.ru8()
	s.ActionIssued = time.Duration(b.ri64())
	n := int(b.ru32())
	if b.err != nil {
		return b.err
	}
	if n > len(p)-b.off {
		return fmt.Errorf("proto: segment payload length %d exceeds frame", n)
	}
	s.Payload = b.b[b.off : b.off+n]
	b.off += n
	return b.finish()
}

// JoinStream subscribes a player's rendered view at a supernode.
type JoinStream struct {
	Player   int64
	GameID   int32
	ViewX    float64
	ViewY    float64
	ViewR    float64
	LevelCap uint8
	// Ticket carries the player's encoded session ticket (MarshalTicket
	// bytes) so lease-enforcing workers can verify the placement and its
	// expiry; empty on deployments without leases.
	Ticket []byte
}

// MarshalJoinStream encodes a stream subscription.
func MarshalJoinStream(j JoinStream) []byte { return AppendJoinStream(nil, j) }

// AppendJoinStream marshals a stream subscription into dst and returns the
// extended slice — the allocation-free form of MarshalJoinStream.
func AppendJoinStream(dst []byte, j JoinStream) []byte {
	dst = appendI64(dst, j.Player)
	dst = appendU32(dst, uint32(j.GameID))
	dst = appendF64(dst, j.ViewX)
	dst = appendF64(dst, j.ViewY)
	dst = appendF64(dst, j.ViewR)
	dst = appendU8(dst, j.LevelCap)
	return appendBytes(dst, j.Ticket)
}

// UnmarshalJoinStream decodes a stream subscription.
func UnmarshalJoinStream(p []byte) (JoinStream, error) {
	b := buffer{b: p}
	var j JoinStream
	j.Player = b.ri64()
	j.GameID = int32(b.ru32())
	j.ViewX = b.rf64()
	j.ViewY = b.rf64()
	j.ViewR = b.rf64()
	j.LevelCap = b.ru8()
	j.Ticket = b.rbytes()
	return j, b.finish()
}

// Role identifies what a connecting peer is.
type Role uint8

const (
	// RolePlayerActions marks a player's action connection to the cloud.
	RolePlayerActions Role = iota + 1
	// RoleSupernode marks a supernode's update subscription at the cloud.
	RoleSupernode
)

// Hello is the first frame on any connection to the cloud.
type Hello struct {
	Role Role
	ID   int64
}

// MarshalHello encodes a hello.
func MarshalHello(h Hello) []byte { return AppendHello(nil, h) }

// AppendHello marshals a hello into dst and returns the extended slice —
// the allocation-free form of MarshalHello.
func AppendHello(dst []byte, h Hello) []byte {
	dst = appendU8(dst, uint8(h.Role))
	return appendI64(dst, h.ID)
}

// UnmarshalHello decodes a hello.
func UnmarshalHello(p []byte) (Hello, error) {
	b := buffer{b: p}
	h := Hello{Role: Role(b.ru8()), ID: b.ri64()}
	return h, b.finish()
}

// Heartbeat is a supernode's periodic liveness beacon: the cloud's failure
// detector times the gaps between arrivals.
type Heartbeat struct {
	ID  int64
	Seq uint64
}

// MarshalHeartbeat encodes a heartbeat.
func MarshalHeartbeat(h Heartbeat) []byte { return AppendHeartbeat(nil, h) }

// AppendHeartbeat marshals a heartbeat into dst and returns the extended
// slice — the allocation-free form of MarshalHeartbeat.
func AppendHeartbeat(dst []byte, h Heartbeat) []byte {
	dst = appendI64(dst, h.ID)
	return appendU64(dst, h.Seq)
}

// UnmarshalHeartbeat decodes a heartbeat.
func UnmarshalHeartbeat(p []byte) (Heartbeat, error) {
	b := buffer{b: p}
	h := Heartbeat{ID: b.ri64(), Seq: b.ru64()}
	return h, b.finish()
}

// Ack codes: 0 is success, everything else names a refusal. Workers use the
// lease codes so a rejected player knows whether to renew (expired) or to
// fall back through its ring (refused / safe mode).
const (
	// AckOK accepts the request.
	AckOK uint32 = 0
	// AckRefused rejects a request the receiver will not serve (bad first
	// frame, unknown player, forged ticket).
	AckRefused uint32 = 1
	// AckExpired rejects a join whose ticket lease has lapsed; the player
	// should renew with the coordinator and retry.
	AckExpired uint32 = 2
	// AckSafeMode rejects a new placement at a worker that has lost the
	// coordinator and is serving only its existing leases.
	AckSafeMode uint32 = 3
)

// Ack acknowledges a request.
type Ack struct {
	Code uint32 // 0 = OK, see Ack* codes
}

// MarshalAck encodes an acknowledgement.
func MarshalAck(a Ack) []byte { return AppendAck(nil, a) }

// AppendAck marshals an acknowledgement into dst and returns the extended
// slice — the allocation-free form of MarshalAck.
func AppendAck(dst []byte, a Ack) []byte { return appendU32(dst, a.Code) }

// UnmarshalAck decodes an acknowledgement.
func UnmarshalAck(p []byte) (Ack, error) {
	b := buffer{b: p}
	a := Ack{Code: b.ru32()}
	return a, b.finish()
}
