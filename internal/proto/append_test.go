package proto

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"cloudfog/internal/world"
)

// TestAppendMatchesMarshal pins the byte-identity contract across every
// message type: Append*(prefix, m) leaves prefix intact and appends exactly
// the bytes Marshal*(m) produces.
func TestAppendMatchesMarshal(t *testing.T) {
	prefix := []byte("prefix:")
	check := func(name string, appended, marshaled []byte) {
		t.Helper()
		if !bytes.HasPrefix(appended, prefix) {
			t.Fatalf("%s: prefix clobbered", name)
		}
		if !bytes.Equal(appended[len(prefix):], marshaled) {
			t.Fatalf("%s: appended bytes diverge from marshaled", name)
		}
	}
	a := Action{Player: 9, Issued: 7 * time.Millisecond,
		Act: world.Action{Player: 9, Kind: world.ActionStrike, Target: world.Vec2{X: 1, Y: 2}, Victim: 3}}
	check("action", AppendAction(append([]byte(nil), prefix...), a), MarshalAction(a))

	d := world.Delta{FromVersion: 2, ToVersion: 5,
		Updated: []world.Entity{{ID: 4, Kind: world.KindAvatar, HP: 10, Version: 5}},
		Removed: []world.EntityID{11}}
	check("delta", AppendDelta(append([]byte(nil), prefix...), d), MarshalDelta(d))

	s := Segment{Player: 1, Seq: 2, Level: 3, ActionIssued: time.Second, Payload: []byte("pay")}
	check("segment", AppendSegment(append([]byte(nil), prefix...), s), MarshalSegment(s))

	j := JoinStream{Player: 5, GameID: 2, ViewX: 10, ViewY: 20, ViewR: 30, LevelCap: 4,
		Ticket: []byte("ticket-bytes")}
	check("join", AppendJoinStream(append([]byte(nil), prefix...), j), MarshalJoinStream(j))

	h := Hello{Role: RolePlayerActions, ID: 77}
	check("hello", AppendHello(append([]byte(nil), prefix...), h), MarshalHello(h))

	hb := Heartbeat{ID: 3, Seq: 44}
	check("heartbeat", AppendHeartbeat(append([]byte(nil), prefix...), hb), MarshalHeartbeat(hb))

	check("ack", AppendAck(append([]byte(nil), prefix...), Ack{Code: 6}), MarshalAck(Ack{Code: 6}))

	reg := Register{Worker: 1_000_007, Capacity: 16, Load: 3, X: 120.5, Y: -88.25,
		Transport: StreamUDP, Addr: "127.0.0.1:4321", Sessions: []int64{7, 8, 9}}
	check("register", AppendRegister(append([]byte(nil), prefix...), reg), MarshalRegister(reg))

	rep := Report{Worker: 1_000_007, Seq: 99, Load: 7, Capacity: 16, Level: 2, Draining: 1}
	check("report", AppendReport(append([]byte(nil), prefix...), rep), MarshalReport(rep))

	pl := Place{Player: 42, GameID: 4, X: 5000, Y: 4000}
	check("place", AppendPlace(append([]byte(nil), prefix...), pl), MarshalPlace(pl))

	tk := Ticket{Player: 42, Worker: 1_000_007, Epoch: 12, Issued: 34567, Expiry: 94567,
		Transport: StreamTCP, Addr: "127.0.0.1:4321",
		Backups: []string{"127.0.0.1:4322", "127.0.0.1:4323"}, Sig: []byte("0123456789abcdef")}
	check("ticket", AppendTicket(append([]byte(nil), prefix...), tk), MarshalTicket(tk))

	rn := Renew{Player: 42, Epoch: 12}
	check("renew", AppendRenew(append([]byte(nil), prefix...), rn), MarshalRenew(rn))

	sy := Sync{Now: 123_456, LeaseTTL: 2_000_000_000}
	check("sync", AppendSync(append([]byte(nil), prefix...), sy), MarshalSync(sy))
}

// TestCoordRoundTrips pins encode→decode identity for the coordinator
// control-plane messages, including the empty-ring and unsigned ticket edge
// cases.
func TestCoordRoundTrips(t *testing.T) {
	reg := Register{Worker: 5, Capacity: 8, Load: 1, X: 1.5, Y: 2.5, Transport: StreamTCP,
		Addr: "host:1", Sessions: []int64{11, 12}}
	gotReg, err := UnmarshalRegister(MarshalRegister(reg))
	if err != nil || !reflect.DeepEqual(gotReg, reg) {
		t.Fatalf("register round trip: %+v %v", gotReg, err)
	}
	// A sessionless registration (the common first-connect case) must stay
	// nil through the round trip, not decode as an empty slice.
	bare := Register{Worker: 6, Capacity: 4, Addr: "host:2"}
	gotBare, err := UnmarshalRegister(MarshalRegister(bare))
	if err != nil || !reflect.DeepEqual(gotBare, bare) {
		t.Fatalf("bare register round trip: %+v %v", gotBare, err)
	}
	rep := Report{Worker: 5, Seq: 3, Load: 2, Capacity: 8, Level: 3, Draining: 1}
	gotRep, err := UnmarshalReport(MarshalReport(rep))
	if err != nil || gotRep != rep {
		t.Fatalf("report round trip: %+v %v", gotRep, err)
	}
	rn := Renew{Player: 9, Epoch: 4}
	gotRn, err := UnmarshalRenew(MarshalRenew(rn))
	if err != nil || gotRn != rn {
		t.Fatalf("renew round trip: %+v %v", gotRn, err)
	}
	sy := Sync{Now: 55, LeaseTTL: 66}
	gotSy, err := UnmarshalSync(MarshalSync(sy))
	if err != nil || gotSy != sy {
		t.Fatalf("sync round trip: %+v %v", gotSy, err)
	}
	pl := Place{Player: 9, GameID: 3, X: -4, Y: 4}
	gotPl, err := UnmarshalPlace(MarshalPlace(pl))
	if err != nil || gotPl != pl {
		t.Fatalf("place round trip: %+v %v", gotPl, err)
	}
	for _, tk := range []Ticket{
		{Player: 9, Worker: 5, Epoch: 1, Issued: 77, Expiry: 177, Transport: StreamUDP,
			Addr: "host:1", Backups: []string{"host:2", "host:3"}, Sig: []byte("sig")},
		{Player: 9, Epoch: 2, Addr: "cloud:1"}, // cloud-direct, unsigned, no ring, no lease
	} {
		got, err := UnmarshalTicket(MarshalTicket(tk))
		if err != nil {
			t.Fatalf("ticket round trip: %v", err)
		}
		if got.Player != tk.Player || got.Worker != tk.Worker || got.Epoch != tk.Epoch ||
			got.Issued != tk.Issued || got.Expiry != tk.Expiry ||
			got.Transport != tk.Transport || got.Addr != tk.Addr ||
			len(got.Backups) != len(tk.Backups) || !bytes.Equal(got.Sig, tk.Sig) {
			t.Fatalf("ticket round trip mismatch: %+v vs %+v", got, tk)
		}
		for i := range tk.Backups {
			if got.Backups[i] != tk.Backups[i] {
				t.Fatalf("ticket backup %d: %q vs %q", i, got.Backups[i], tk.Backups[i])
			}
		}
	}
	// Truncated tickets must error, not decode garbage.
	full := MarshalTicket(Ticket{Player: 1, Addr: "a:1", Backups: []string{"b:2"}})
	for cut := 1; cut < len(full); cut++ {
		if _, err := UnmarshalTicket(full[:cut]); err == nil {
			t.Fatalf("truncated ticket at %d decoded cleanly", cut)
		}
	}
}

// TestAppendSegmentHeaderComposes pins the split encode the render path
// uses: AppendSegmentHeader followed by the raw payload bytes must equal
// AppendSegment of the whole segment.
func TestAppendSegmentHeaderComposes(t *testing.T) {
	f := func(player, seq int64, level uint8, issued int64, payload []byte) bool {
		s := Segment{Player: player, Seq: seq, Level: level % 8,
			ActionIssued: time.Duration(issued), Payload: payload}
		split := AppendSegmentHeader(nil, s, len(payload))
		split = append(split, payload...)
		return bytes.Equal(split, MarshalSegment(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBeginFinishFrameMatchesAppendFrame pins the encode-in-place framing:
// BeginFrame + payload + FinishFrame must produce AppendFrame's bytes, at
// any header offset.
func TestBeginFinishFrameMatchesAppendFrame(t *testing.T) {
	f := func(t8 uint8, prefix, payload []byte) bool {
		typ := MsgType(t8)
		buf := BeginFrame(append([]byte(nil), prefix...), typ)
		buf = append(buf, payload...)
		if err := FinishFrame(buf, len(prefix)); err != nil {
			return false
		}
		want := AppendFrame(append([]byte(nil), prefix...), typ, payload)
		return bytes.Equal(buf, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFinishFrameRejectsBadOffset(t *testing.T) {
	b := BeginFrame(nil, TSegment)
	if err := FinishFrame(b, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := FinishFrame(b, 1); err == nil {
		t.Fatal("offset past header accepted")
	}
	if err := FinishFrame(nil, 0); err == nil {
		t.Fatal("empty buffer accepted")
	}
}

// TestReadFrameReuseReusesBuffer drives several frames through one buffer
// and checks the storage is recycled once it has grown to the high-water
// payload size.
func TestReadFrameReuseReusesBuffer(t *testing.T) {
	var wire bytes.Buffer
	payloads := [][]byte{
		bytes.Repeat([]byte{1}, 100),
		bytes.Repeat([]byte{2}, 50),
		bytes.Repeat([]byte{3}, 100),
	}
	for _, p := range payloads {
		if err := WriteFrame(&wire, TSegment, p); err != nil {
			t.Fatal(err)
		}
	}
	var buf []byte
	for i, want := range payloads {
		typ, got, err := ReadFrameReuse(&wire, &buf)
		if err != nil || typ != TSegment || !bytes.Equal(got, want) {
			t.Fatalf("frame %d: %v %v", i, typ, err)
		}
		if i > 0 && &got[0] != &buf[0] {
			t.Fatalf("frame %d: payload does not alias the reused buffer", i)
		}
	}
	if cap(buf) < 100 {
		t.Fatalf("buffer never grew to high-water mark: cap %d", cap(buf))
	}
}

// TestParseDatagramAliasesInput pins the zero-copy contract: the payload is
// a subslice of the datagram, not a copy.
func TestParseDatagramAliasesInput(t *testing.T) {
	p := AppendFrame(nil, TSegment, []byte("zero-copy"))
	typ, payload, err := ParseDatagram(p)
	if err != nil || typ != TSegment {
		t.Fatalf("parse: %v %v", typ, err)
	}
	if &payload[0] != &p[FrameHeaderLen] {
		t.Fatal("payload was copied instead of aliased")
	}
}

func TestParseDatagramRejectsMalformed(t *testing.T) {
	if _, _, err := ParseDatagram([]byte{1, 2}); err == nil {
		t.Fatal("short datagram accepted")
	}
	p := AppendFrame(nil, TAck, MarshalAck(Ack{}))
	if _, _, err := ParseDatagram(p[:len(p)-1]); err == nil {
		t.Fatal("truncated datagram accepted")
	}
	if _, _, err := ParseDatagram(append(p, 0)); err == nil {
		t.Fatal("datagram with trailing bytes accepted")
	}
}

// TestUnmarshalSegmentIntoBorrows pins the ownership rule the player relies
// on: the decoded payload aliases the input and must be consumed before the
// read buffer is reused.
func TestUnmarshalSegmentIntoBorrows(t *testing.T) {
	src := Segment{Player: 8, Seq: 3, Level: 2, Payload: []byte("borrowed")}
	p := MarshalSegment(src)
	var seg Segment
	if err := UnmarshalSegmentInto(p, &seg); err != nil {
		t.Fatal(err)
	}
	if seg.Player != src.Player || seg.Seq != src.Seq || !bytes.Equal(seg.Payload, src.Payload) {
		t.Fatalf("decode mismatch: %+v", seg)
	}
	p[len(p)-len(src.Payload)] = 'B'
	if seg.Payload[0] != 'B' {
		t.Fatal("payload was copied instead of borrowed")
	}
	// The allocating decoder must keep its own copy.
	owned, err := UnmarshalSegment(MarshalSegment(src))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(owned.Payload, src.Payload) {
		t.Fatalf("owned decode mismatch: %q", owned.Payload)
	}
}

func TestBufferPoolRecycles(t *testing.T) {
	var bp BufferPool
	b := bp.Get(64)
	if len(b) != 0 || cap(b) < 64 {
		t.Fatalf("Get(64) = len %d cap %d", len(b), cap(b))
	}
	b = append(b, bytes.Repeat([]byte{9}, 1024)...)
	bp.Put(b)
	got := bp.Get(512)
	if len(got) != 0 {
		t.Fatalf("recycled buffer not reset: len %d", len(got))
	}
	// Oversize buffers must be dropped, not pinned.
	bp.Put(make([]byte, maxPooledBuf+1))
}

// chunkReader yields its underlying bytes in caller-chosen chunk sizes,
// modelling TCP segmentation of a batched writev.
type chunkReader struct {
	data   []byte
	bounds []int
	rng    *rand.Rand
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := 1
	if len(c.bounds) > 0 {
		n = c.bounds[0]%len(c.data) + 1
		c.bounds = c.bounds[1:]
	} else if c.rng != nil {
		n = c.rng.Intn(len(c.data)) + 1
	}
	if n > len(p) {
		n = len(p)
	}
	n = copy(p[:n], c.data)
	c.data = c.data[n:]
	return n, nil
}

// TestBatchSplitAtArbitraryBoundaries is the coalescing round-trip
// property: many frames appended back to back into one buffer (exactly what
// a batched writev puts on the wire) must decode identically no matter how
// the stream is sliced into reads.
func TestBatchSplitAtArbitraryBoundaries(t *testing.T) {
	f := func(seed int64, bounds []int, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count%32) + 2
		var batch []byte
		segs := make([]Segment, n)
		for i := range segs {
			segs[i] = Segment{
				Player:  rng.Int63n(1000),
				Seq:     int64(i),
				Level:   uint8(rng.Intn(8)),
				Payload: make([]byte, rng.Intn(300)),
			}
			rng.Read(segs[i].Payload)
			hdr := len(batch)
			batch = BeginFrame(batch, TSegment)
			batch = AppendSegment(batch, segs[i])
			if err := FinishFrame(batch, hdr); err != nil {
				return false
			}
		}
		for i := range bounds {
			if bounds[i] < 0 {
				bounds[i] = -bounds[i]
			}
		}
		cr := &chunkReader{data: batch, bounds: bounds, rng: rng}
		var buf []byte
		for i := range segs {
			typ, payload, err := ReadFrameReuse(cr, &buf)
			if err != nil || typ != TSegment {
				return false
			}
			var got Segment
			if err := UnmarshalSegmentInto(payload, &got); err != nil {
				return false
			}
			if got.Player != segs[i].Player || got.Seq != segs[i].Seq ||
				got.Level != segs[i].Level || !bytes.Equal(got.Payload, segs[i].Payload) {
				return false
			}
		}
		_, _, err := ReadFrameReuse(cr, &buf)
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
