package proto

import (
	"bytes"
	"testing"
	"time"

	"cloudfog/internal/world"
)

// Native fuzz targets: `go test -fuzz FuzzDecodeDelta ./internal/proto`.
// In normal test runs they execute over the seed corpus only.

func FuzzDecodeAction(f *testing.F) {
	f.Add(MarshalAction(Action{Player: 1, Issued: time.Millisecond}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, p []byte) {
		a, err := UnmarshalAction(p)
		if err != nil {
			return
		}
		// Valid decodes must re-encode to the same bytes.
		if !bytes.Equal(MarshalAction(a), p) {
			t.Fatalf("re-encode mismatch for %x", p)
		}
	})
}

func FuzzDecodeDelta(f *testing.F) {
	d := world.Delta{
		FromVersion: 3, ToVersion: 9,
		Updated: []world.Entity{{ID: 1, Kind: world.KindAvatar, Owner: 2, HP: 50, Version: 9}},
		Removed: []world.EntityID{7},
	}
	f.Add(MarshalDelta(d))
	f.Add(MarshalDelta(world.Delta{Full: true}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, p []byte) {
		got, err := UnmarshalDelta(p)
		if err != nil {
			return
		}
		if !bytes.Equal(MarshalDelta(got), p) {
			t.Fatalf("re-encode mismatch for %x", p)
		}
	})
}

func FuzzDecodeSegment(f *testing.F) {
	f.Add(MarshalSegment(Segment{Player: 1, Seq: 2, Level: 3, Payload: []byte("xyz")}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, p []byte) {
		got, err := UnmarshalSegment(p)
		if err != nil {
			return
		}
		if !bytes.Equal(MarshalSegment(got), p) {
			t.Fatalf("re-encode mismatch for %x", p)
		}
	})
}

func FuzzDecodeFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, TSegment, []byte("payload"))
	f.Add(buf.Bytes())
	f.Add([]byte{byte(TDelta), 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, p []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(p))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, typ, payload); err != nil {
			t.Fatalf("re-frame failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), p[:out.Len()]) {
			t.Fatal("re-framed bytes diverge")
		}
	})
}
