package proto

import (
	"bytes"
	"testing"
	"time"

	"cloudfog/internal/world"
)

// Native fuzz targets: `go test -fuzz FuzzDecodeDelta ./internal/proto`.
// In normal test runs they execute over the seed corpus only.

func FuzzDecodeAction(f *testing.F) {
	f.Add(MarshalAction(Action{Player: 1, Issued: time.Millisecond}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, p []byte) {
		a, err := UnmarshalAction(p)
		if err != nil {
			return
		}
		// Valid decodes must re-encode to the same bytes.
		if !bytes.Equal(MarshalAction(a), p) {
			t.Fatalf("re-encode mismatch for %x", p)
		}
	})
}

func FuzzDecodeDelta(f *testing.F) {
	d := world.Delta{
		FromVersion: 3, ToVersion: 9,
		Updated: []world.Entity{{ID: 1, Kind: world.KindAvatar, Owner: 2, HP: 50, Version: 9}},
		Removed: []world.EntityID{7},
	}
	f.Add(MarshalDelta(d))
	f.Add(MarshalDelta(world.Delta{Full: true}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, p []byte) {
		got, err := UnmarshalDelta(p)
		if err != nil {
			return
		}
		if !bytes.Equal(MarshalDelta(got), p) {
			t.Fatalf("re-encode mismatch for %x", p)
		}
	})
}

func FuzzDecodeSegment(f *testing.F) {
	f.Add(MarshalSegment(Segment{Player: 1, Seq: 2, Level: 3, Payload: []byte("xyz")}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, p []byte) {
		got, err := UnmarshalSegment(p)
		if err != nil {
			return
		}
		if !bytes.Equal(MarshalSegment(got), p) {
			t.Fatalf("re-encode mismatch for %x", p)
		}
	})
}

// FuzzAppendMatchesMarshal drives the pooled Append* encoders against the
// allocating Marshal* forms with fuzzed fields and prefixes: appending into
// a dirty buffer must yield exactly prefix + Marshal bytes, and the split
// segment encode (header then raw payload) must match the one-shot form.
func FuzzAppendMatchesMarshal(f *testing.F) {
	f.Add([]byte("prefix"), int64(1), int64(2), uint8(3), int64(4), []byte("payload"))
	f.Add([]byte{}, int64(-1), int64(0), uint8(0), int64(-9), []byte{})
	f.Fuzz(func(t *testing.T, prefix []byte, player, seq int64, level uint8, issued int64, payload []byte) {
		check := func(name string, appended, marshaled []byte) {
			t.Helper()
			if !bytes.Equal(appended[:len(prefix)], prefix) {
				t.Fatalf("%s: prefix clobbered", name)
			}
			if !bytes.Equal(appended[len(prefix):], marshaled) {
				t.Fatalf("%s: appended bytes diverge from marshaled", name)
			}
		}
		pfx := func() []byte { return append([]byte(nil), prefix...) }

		s := Segment{Player: player, Seq: seq, Level: level % 8,
			ActionIssued: time.Duration(issued), Payload: payload}
		check("segment", AppendSegment(pfx(), s), MarshalSegment(s))
		split := AppendSegmentHeader(pfx(), s, len(payload))
		check("segment-split", append(split, payload...), MarshalSegment(s))

		a := Action{Player: player, Issued: time.Duration(issued),
			Act: world.Action{Player: player, Kind: world.ActionKind(level % 3),
				Target: world.Vec2{X: float64(seq), Y: float64(issued)}, Victim: world.EntityID(seq)}}
		check("action", AppendAction(pfx(), a), MarshalAction(a))

		d := world.Delta{FromVersion: uint64(player), ToVersion: uint64(seq),
			Updated: []world.Entity{{ID: world.EntityID(seq), Kind: world.KindAvatar,
				Owner: player, HP: int32(level), Version: uint64(seq)}},
			Removed: []world.EntityID{world.EntityID(issued)}}
		check("delta", AppendDelta(pfx(), d), MarshalDelta(d))

		j := JoinStream{Player: player, GameID: int32(level % 8), ViewX: float64(seq),
			ViewY: float64(issued), ViewR: 100, LevelCap: level, Ticket: payload}
		check("join", AppendJoinStream(pfx(), j), MarshalJoinStream(j))

		check("renew", AppendRenew(pfx(), Renew{Player: player, Epoch: uint64(seq)}),
			MarshalRenew(Renew{Player: player, Epoch: uint64(seq)}))
		check("sync", AppendSync(pfx(), Sync{Now: issued, LeaseTTL: seq}),
			MarshalSync(Sync{Now: issued, LeaseTTL: seq}))

		check("hello", AppendHello(pfx(), Hello{Role: Role(level), ID: player}),
			MarshalHello(Hello{Role: Role(level), ID: player}))
		check("heartbeat", AppendHeartbeat(pfx(), Heartbeat{ID: player, Seq: uint64(seq)}),
			MarshalHeartbeat(Heartbeat{ID: player, Seq: uint64(seq)}))
		check("ack", AppendAck(pfx(), Ack{Code: uint32(seq)}), MarshalAck(Ack{Code: uint32(seq)}))

		// Encode-in-place framing must agree with the one-shot AppendFrame.
		inPlace := BeginFrame(pfx(), TSegment)
		inPlace = AppendSegment(inPlace, s)
		if err := FinishFrame(inPlace, len(prefix)); err != nil {
			t.Fatalf("FinishFrame: %v", err)
		}
		check("frame", inPlace, AppendFrame(nil, TSegment, MarshalSegment(s)))
	})
}

func FuzzDecodeFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, TSegment, []byte("payload"))
	f.Add(buf.Bytes())
	f.Add([]byte{byte(TDelta), 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, p []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(p))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, typ, payload); err != nil {
			t.Fatalf("re-frame failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), p[:out.Len()]) {
			t.Fatal("re-framed bytes diverge")
		}
	})
}
