package proto

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"cloudfog/internal/world"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello fog")
	if err := WriteFrame(&buf, TSegment, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TSegment || !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip: %v %q", typ, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TAck, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil || typ != TAck || len(got) != 0 {
		t.Fatalf("empty frame: %v %v %v", typ, got, err)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TDelta, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversize frame accepted")
	}
	// A corrupt header claiming a huge length must be rejected too.
	hdr := []byte{byte(TDelta), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("corrupt length accepted")
	}
}

func TestFrameShortRead(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, TAction, []byte("abcdef"))
	short := buf.Bytes()[:buf.Len()-2]
	if _, _, err := ReadFrame(bytes.NewReader(short)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, TAction, []byte("a"))
	WriteFrame(&buf, TDelta, []byte("bb"))
	WriteFrame(&buf, TAck, []byte("ccc"))
	for i, want := range []MsgType{TAction, TDelta, TAck} {
		typ, p, err := ReadFrame(&buf)
		if err != nil || typ != want || len(p) != i+1 {
			t.Fatalf("frame %d: %v %v %v", i, typ, p, err)
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("want EOF at stream end, got %v", err)
	}
}

func TestActionRoundTrip(t *testing.T) {
	a := Action{
		Player: 42,
		Issued: 123456 * time.Microsecond,
		Act: world.Action{
			Player: 42,
			Kind:   world.ActionStrike,
			Target: world.Vec2{X: 1.5, Y: -2.25},
			Victim: 77,
		},
	}
	got, err := UnmarshalAction(MarshalAction(a))
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("round trip: %+v != %+v", got, a)
	}
}

func TestActionRoundTripProperty(t *testing.T) {
	f := func(player int64, issued int64, kind uint8, tx, ty float64, victim int64) bool {
		a := Action{
			Player: player,
			Issued: time.Duration(issued),
			Act: world.Action{
				Player: player,
				Kind:   world.ActionKind(kind % 3),
				Target: world.Vec2{X: tx, Y: ty},
				Victim: world.EntityID(victim),
			},
		}
		got, err := UnmarshalAction(MarshalAction(a))
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	d := world.Delta{
		FromVersion: 10,
		ToVersion:   17,
		Updated: []world.Entity{
			{ID: 1, Kind: world.KindAvatar, Owner: 9, Pos: world.Vec2{X: 3, Y: 4},
				Vel: world.Vec2{X: -1, Y: 0.5}, HP: 80, Version: 16},
			{ID: 2, Kind: world.KindObject, Pos: world.Vec2{X: 100, Y: 200}, HP: 100, Version: 17},
		},
		Removed: []world.EntityID{5, 6},
	}
	got, err := UnmarshalDelta(MarshalDelta(d))
	if err != nil {
		t.Fatal(err)
	}
	if got.FromVersion != d.FromVersion || got.ToVersion != d.ToVersion || got.Full != d.Full {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Updated) != 2 || got.Updated[0] != d.Updated[0] || got.Updated[1] != d.Updated[1] {
		t.Fatalf("updated mismatch: %+v", got.Updated)
	}
	if len(got.Removed) != 2 || got.Removed[0] != 5 || got.Removed[1] != 6 {
		t.Fatalf("removed mismatch: %+v", got.Removed)
	}
}

func TestDeltaFullFlag(t *testing.T) {
	d := world.Delta{ToVersion: 3, Full: true}
	got, err := UnmarshalDelta(MarshalDelta(d))
	if err != nil || !got.Full {
		t.Fatalf("full flag lost: %+v %v", got, err)
	}
}

func TestDeltaRejectsLyingCounts(t *testing.T) {
	d := world.Delta{ToVersion: 1}
	p := MarshalDelta(d)
	// Corrupt the updated-count field to claim 1M entities.
	p[17] = 0xFF
	p[18] = 0xFF
	if _, err := UnmarshalDelta(p); err == nil {
		t.Fatal("lying entity count accepted")
	}
}

func TestDeltaWireSizeMatchesEstimate(t *testing.T) {
	d := world.Delta{
		FromVersion: 1, ToVersion: 2,
		Updated: make([]world.Entity, 7),
		Removed: make([]world.EntityID, 3),
	}
	got := len(MarshalDelta(d))
	want := d.WireSize()
	if got != want {
		t.Fatalf("encoded %dB but WireSize estimates %dB", got, want)
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	s := Segment{
		Player:       3,
		Seq:          991,
		Level:        4,
		ActionIssued: 55 * time.Millisecond,
		Payload:      bytes.Repeat([]byte{0xAB}, 5000),
	}
	got, err := UnmarshalSegment(MarshalSegment(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Player != s.Player || got.Seq != s.Seq || got.Level != s.Level ||
		got.ActionIssued != s.ActionIssued || !bytes.Equal(got.Payload, s.Payload) {
		t.Fatalf("segment round trip mismatch")
	}
}

func TestSegmentRejectsLyingLength(t *testing.T) {
	s := Segment{Player: 1, Payload: []byte("abc")}
	p := MarshalSegment(s)
	p[len(p)-4-3] = 0xFF // inflate payload length
	if _, err := UnmarshalSegment(p); err == nil {
		t.Fatal("lying payload length accepted")
	}
}

func TestJoinStreamRoundTrip(t *testing.T) {
	for _, j := range []JoinStream{
		{Player: 12, GameID: 4, ViewX: 1000, ViewY: 2000, ViewR: 400, LevelCap: 5},
		{Player: 12, GameID: 4, LevelCap: 5, Ticket: []byte("signed-ticket")},
	} {
		got, err := UnmarshalJoinStream(MarshalJoinStream(j))
		if err != nil || !reflect.DeepEqual(got, j) {
			t.Fatalf("join round trip: %+v %v", got, err)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{Role: RoleSupernode, ID: 1_000_042}
	got, err := UnmarshalHello(MarshalHello(h))
	if err != nil || got != h {
		t.Fatalf("hello round trip: %+v %v", got, err)
	}
	if _, err := UnmarshalHello([]byte{1}); err == nil {
		t.Fatal("truncated hello accepted")
	}
}

func TestAckRoundTrip(t *testing.T) {
	got, err := UnmarshalAck(MarshalAck(Ack{Code: 7}))
	if err != nil || got.Code != 7 {
		t.Fatalf("ack round trip: %+v %v", got, err)
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	p := MarshalAck(Ack{})
	p = append(p, 0x01)
	if _, err := UnmarshalAck(p); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestTruncatedPayloadsRejected(t *testing.T) {
	cases := [][]byte{
		MarshalAction(Action{})[:5],
		MarshalDelta(world.Delta{})[:3],
		MarshalSegment(Segment{})[:8],
		MarshalJoinStream(JoinStream{})[:2],
		{},
	}
	if _, err := UnmarshalAction(cases[0]); err == nil {
		t.Fatal("truncated action accepted")
	}
	if _, err := UnmarshalDelta(cases[1]); err == nil {
		t.Fatal("truncated delta accepted")
	}
	if _, err := UnmarshalSegment(cases[2]); err == nil {
		t.Fatal("truncated segment accepted")
	}
	if _, err := UnmarshalJoinStream(cases[3]); err == nil {
		t.Fatal("truncated join accepted")
	}
	if _, err := UnmarshalAck(cases[4]); err == nil {
		t.Fatal("empty ack accepted")
	}
}

// TestUnmarshalNeverPanics fuzzes the decoders with arbitrary bytes.
func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(p []byte) bool {
		UnmarshalAction(p)
		UnmarshalDelta(p)
		UnmarshalSegment(p)
		UnmarshalJoinStream(p)
		UnmarshalAck(p)
		UnmarshalHello(p)
		UnmarshalRegister(p)
		UnmarshalReport(p)
		UnmarshalTicket(p)
		UnmarshalRenew(p)
		UnmarshalSync(p)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
