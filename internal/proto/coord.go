// Coordinator control-plane messages: worker registration and occupancy
// reports flowing up to the coordinator, and placement requests / signed
// session tickets flowing between players and the coordinator. All four ride
// the same pooled Append* encode-in-place path as the data-plane messages.
package proto

import "fmt"

// Stream transport codes carried by Register.Transport, so a ticket can tell
// the player how to dial the worker it names.
const (
	// StreamTCP marks a worker serving players over reliable TCP streams.
	StreamTCP uint8 = 0
	// StreamUDP marks a worker serving players over datagrams.
	StreamUDP uint8 = 1
)

// maxStr bounds the length-prefixed strings in control-plane messages (the
// prefix is a u16, but addresses should never get anywhere near it).
const maxStr = 1 << 12

// appendStr writes a u16 length prefix plus the string bytes.
func appendStr(dst []byte, s string) []byte {
	if len(s) > maxStr {
		s = s[:maxStr]
	}
	dst = append(dst, byte(len(s)>>8), byte(len(s)))
	return append(dst, s...)
}

// appendBytes writes a u16 length prefix plus the raw bytes — the byte-slice
// twin of appendStr.
func appendBytes(dst, p []byte) []byte {
	if len(p) > maxStr {
		p = p[:maxStr]
	}
	dst = append(dst, byte(len(p)>>8), byte(len(p)))
	return append(dst, p...)
}

// rbytes reads a u16-length-prefixed byte slice (nil when empty). The result
// is freshly allocated and owned by the caller.
func (b *buffer) rbytes() []byte {
	s := b.rstr()
	if s == "" {
		return nil
	}
	return []byte(s)
}

// rstr reads a u16-length-prefixed string.
func (b *buffer) rstr() string {
	if !b.need(2) {
		return ""
	}
	n := int(b.b[b.off])<<8 | int(b.b[b.off+1])
	b.off += 2
	if n > maxStr {
		b.err = fmt.Errorf("proto: string of %d bytes exceeds limit", n)
		return ""
	}
	if !b.need(n) {
		return ""
	}
	s := string(b.b[b.off : b.off+n])
	b.off += n
	return s
}

// Register announces a supernode worker to the coordinator.
type Register struct {
	Worker int64
	// Capacity is the worker's player-slot budget; Load is its occupancy at
	// registration time (usually zero, nonzero after a reconnect).
	Capacity int32
	Load     int32
	// X, Y locate the worker for the coordinator's spatial shortlist.
	X, Y float64
	// Transport is the stream transport the worker serves players on
	// (StreamTCP or StreamUDP); tickets echo it to the placed player.
	Transport uint8
	// Addr is the worker's player-facing stream address.
	Addr string
	// Sessions lists the players the worker is currently serving. Empty on
	// a first registration; on a re-registration after a coordinator
	// partition it is the worker's ground truth, and the coordinator
	// reconciles its ledger against it instead of trusting stale state.
	Sessions []int64
}

// MarshalRegister encodes a worker registration.
func MarshalRegister(r Register) []byte { return AppendRegister(nil, r) }

// AppendRegister marshals a worker registration into dst and returns the
// extended slice — the allocation-free form of MarshalRegister.
func AppendRegister(dst []byte, r Register) []byte {
	dst = appendI64(dst, r.Worker)
	dst = appendU32(dst, uint32(r.Capacity))
	dst = appendU32(dst, uint32(r.Load))
	dst = appendF64(dst, r.X)
	dst = appendF64(dst, r.Y)
	dst = appendU8(dst, r.Transport)
	dst = appendStr(dst, r.Addr)
	dst = appendU32(dst, uint32(len(r.Sessions)))
	for _, s := range r.Sessions {
		dst = appendI64(dst, s)
	}
	return dst
}

// UnmarshalRegister decodes a worker registration.
func UnmarshalRegister(p []byte) (Register, error) {
	b := buffer{b: p}
	var r Register
	r.Worker = b.ri64()
	r.Capacity = int32(b.ru32())
	r.Load = int32(b.ru32())
	r.X = b.rf64()
	r.Y = b.rf64()
	r.Transport = b.ru8()
	r.Addr = b.rstr()
	n := int(b.ru32())
	if b.err != nil {
		return r, b.err
	}
	if n*8 > len(p) {
		return r, fmt.Errorf("proto: register session count exceeds payload")
	}
	if n > 0 {
		r.Sessions = make([]int64, 0, n)
		for i := 0; i < n; i++ {
			r.Sessions = append(r.Sessions, b.ri64())
		}
	}
	return r, b.finish()
}

// Report is a worker's periodic capacity/occupancy beacon: the coordinator
// feeds the arrival gaps to its failure detector and the load ratio to the
// overload ladder.
type Report struct {
	Worker   int64
	Seq      uint64
	Load     int32
	Capacity int32
	// Level is the worker's local overload-ladder state
	// (health.OverloadState: 0 Normal … 4 Migrating). The coordinator
	// starts a proactive drain at Shedding or above instead of waiting for
	// the worker to die.
	Level uint8
	// Draining is nonzero when the worker wants every session moved off it
	// (a SIGTERM'd worker handing off before exit).
	Draining uint8
}

// MarshalReport encodes a worker report.
func MarshalReport(r Report) []byte { return AppendReport(nil, r) }

// AppendReport marshals a worker report into dst and returns the extended
// slice — the allocation-free form of MarshalReport.
func AppendReport(dst []byte, r Report) []byte {
	dst = appendI64(dst, r.Worker)
	dst = appendU64(dst, r.Seq)
	dst = appendU32(dst, uint32(r.Load))
	dst = appendU32(dst, uint32(r.Capacity))
	dst = appendU8(dst, r.Level)
	return appendU8(dst, r.Draining)
}

// UnmarshalReport decodes a worker report.
func UnmarshalReport(p []byte) (Report, error) {
	b := buffer{b: p}
	var r Report
	r.Worker = b.ri64()
	r.Seq = b.ru64()
	r.Load = int32(b.ru32())
	r.Capacity = int32(b.ru32())
	r.Level = b.ru8()
	r.Draining = b.ru8()
	return r, b.finish()
}

// Place asks the coordinator to place a joining player near (X, Y).
type Place struct {
	Player int64
	GameID int32
	X, Y   float64
}

// MarshalPlace encodes a placement request.
func MarshalPlace(p Place) []byte { return AppendPlace(nil, p) }

// AppendPlace marshals a placement request into dst and returns the extended
// slice — the allocation-free form of MarshalPlace.
func AppendPlace(dst []byte, p Place) []byte {
	dst = appendI64(dst, p.Player)
	dst = appendU32(dst, uint32(p.GameID))
	dst = appendF64(dst, p.X)
	return appendF64(dst, p.Y)
}

// UnmarshalPlace decodes a placement request.
func UnmarshalPlace(p []byte) (Place, error) {
	b := buffer{b: p}
	var pl Place
	pl.Player = b.ri64()
	pl.GameID = int32(b.ru32())
	pl.X = b.rf64()
	pl.Y = b.rf64()
	return pl, b.finish()
}

// Ticket is the coordinator's placement answer: the serving worker's stream
// address plus the backup ring, signed so a worker (or the cloud's direct
// path) can refuse a forged or stale placement. Epoch increases with every
// ticket the coordinator issues, so a re-placement always supersedes the
// ticket it replaces.
type Ticket struct {
	Player int64
	// Worker is the serving worker's ID; zero means the ticket points the
	// player straight at the cloud's direct stream (no worker would admit).
	Worker int64
	Epoch  uint64
	// Issued is the coordinator's clock at issue time (offset nanoseconds).
	Issued int64
	// Expiry is the lease deadline on the coordinator's clock (offset
	// nanoseconds): the ticket is valid while now < Expiry. Zero means the
	// ticket never expires (deployments without leases). Signed into the
	// HMAC body so a player cannot stretch its own lease.
	Expiry int64
	// Transport echoes the worker's stream transport (StreamTCP/StreamUDP).
	Transport uint8
	// Addr is the serving stream address; Backups is the failover ring, in
	// preference order.
	Addr    string
	Backups []string
	// Sig authenticates every preceding field (HMAC-SHA256 under the
	// deployment's shared ticket key; empty on unsigned deployments).
	Sig []byte
}

// MarshalTicket encodes a session ticket.
func MarshalTicket(t Ticket) []byte { return AppendTicket(nil, t) }

// AppendTicket marshals a session ticket into dst and returns the extended
// slice — the allocation-free form of MarshalTicket.
func AppendTicket(dst []byte, t Ticket) []byte {
	dst = AppendTicketBody(dst, t)
	dst = append(dst, byte(len(t.Sig)>>8), byte(len(t.Sig)))
	return append(dst, t.Sig...)
}

// AppendTicketBody marshals every ticket field except the signature — the
// exact bytes the signature covers.
func AppendTicketBody(dst []byte, t Ticket) []byte {
	dst = appendI64(dst, t.Player)
	dst = appendI64(dst, t.Worker)
	dst = appendU64(dst, t.Epoch)
	dst = appendI64(dst, t.Issued)
	dst = appendI64(dst, t.Expiry)
	dst = appendU8(dst, t.Transport)
	dst = appendStr(dst, t.Addr)
	dst = appendU32(dst, uint32(len(t.Backups)))
	for _, b := range t.Backups {
		dst = appendStr(dst, b)
	}
	return dst
}

// UnmarshalTicket decodes a session ticket.
func UnmarshalTicket(p []byte) (Ticket, error) {
	b := buffer{b: p}
	var t Ticket
	t.Player = b.ri64()
	t.Worker = b.ri64()
	t.Epoch = b.ru64()
	t.Issued = b.ri64()
	t.Expiry = b.ri64()
	t.Transport = b.ru8()
	t.Addr = b.rstr()
	n := int(b.ru32())
	if b.err != nil {
		return t, b.err
	}
	if n*2 > len(p) {
		return t, fmt.Errorf("proto: ticket backup count exceeds payload")
	}
	if n > 0 {
		t.Backups = make([]string, 0, n)
		for i := 0; i < n; i++ {
			t.Backups = append(t.Backups, b.rstr())
		}
	}
	sig := b.rstr()
	if sig != "" {
		t.Sig = []byte(sig)
	}
	return t, b.finish()
}

// Renew asks the coordinator to extend a player's lease. It rides a TTicket
// frame on the player→coordinator direction (the reply is an ordinary pushed
// ticket). Epoch names the lease being renewed so the coordinator can tell a
// renewal racing a replacement ticket from a renewal of the current lease —
// the freshest epoch always wins.
type Renew struct {
	Player int64
	Epoch  uint64
}

// MarshalRenew encodes a lease renewal request.
func MarshalRenew(r Renew) []byte { return AppendRenew(nil, r) }

// AppendRenew marshals a lease renewal request into dst and returns the
// extended slice — the allocation-free form of MarshalRenew.
func AppendRenew(dst []byte, r Renew) []byte {
	dst = appendI64(dst, r.Player)
	return appendU64(dst, r.Epoch)
}

// UnmarshalRenew decodes a lease renewal request.
func UnmarshalRenew(p []byte) (Renew, error) {
	b := buffer{b: p}
	r := Renew{Player: b.ri64(), Epoch: b.ru64()}
	return r, b.finish()
}

// Sync is the coordinator's downstream beacon to a worker, sent in reply to
// every TRegister and TReport. Workers feed the arrival gaps to a phi
// detector on coordinator silence (entering safe mode when it fires) and use
// Now to estimate clock skew against the coordinator, so lease-expiry checks
// at the worker tolerate drifting clocks.
type Sync struct {
	// Now is the coordinator's clock (offset nanoseconds since its start).
	Now int64
	// LeaseTTL is the deployment's ticket lease duration in nanoseconds;
	// zero disables lease enforcement at the worker.
	LeaseTTL int64
}

// MarshalSync encodes a coordinator sync beacon.
func MarshalSync(s Sync) []byte { return AppendSync(nil, s) }

// AppendSync marshals a coordinator sync beacon into dst and returns the
// extended slice — the allocation-free form of MarshalSync.
func AppendSync(dst []byte, s Sync) []byte {
	dst = appendI64(dst, s.Now)
	return appendI64(dst, s.LeaseTTL)
}

// UnmarshalSync decodes a coordinator sync beacon.
func UnmarshalSync(p []byte) (Sync, error) {
	b := buffer{b: p}
	s := Sync{Now: b.ri64(), LeaseTTL: b.ri64()}
	return s, b.finish()
}
