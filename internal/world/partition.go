package world

import (
	"math"
	"sort"
)

// PartitionKD splits the world into 2^depth regions with a kd-tree over the
// avatar positions, alternating split axes and cutting at the median — the
// load-balancing approach of Bezerra et al. (the paper's refs [1][12]) that
// MMOG clouds use to assign regions of the virtual environment to servers.
// Regions tile the bounds exactly; each carries its avatar count.
func PartitionKD(bounds Rect, avatars []Vec2, depth int) []Region {
	return PartitionKDSnap(bounds, avatars, depth, 0, 0)
}

// PartitionKDSnap is PartitionKD with every cut snapped to the nearest
// multiple of snapX (vertical cuts) or snapY (horizontal cuts), both
// anchored at the plane origin. The shard planner passes the spatial grid's
// cell dimensions here so partition boundaries land on cell edges and no
// shortlist cell straddles two shards. A snap of zero leaves that axis
// unsnapped; a cut is also left unsnapped when its slab is narrower than
// one cell (no interior multiple exists).
func PartitionKDSnap(bounds Rect, avatars []Vec2, depth int, snapX, snapY float64) []Region {
	if depth < 0 {
		depth = 0
	}
	pts := make([]Vec2, len(avatars))
	copy(pts, avatars)
	var out []Region
	var split func(r Rect, pts []Vec2, d int, axis int)
	split = func(r Rect, pts []Vec2, d int, axis int) {
		if d == 0 {
			out = append(out, Region{Bounds: r, Avatars: len(pts)})
			return
		}
		if axis == 0 {
			sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		} else {
			sort.Slice(pts, func(i, j int) bool { return pts[i].Y < pts[j].Y })
		}
		mid := len(pts) / 2
		var cut float64
		switch {
		case len(pts) == 0:
			// No load information: cut geometrically.
			if axis == 0 {
				cut = (r.Min.X + r.Max.X) / 2
			} else {
				cut = (r.Min.Y + r.Max.Y) / 2
			}
		case axis == 0:
			cut = pts[mid].X
			if pts[0].X == cut {
				// Every coordinate below the median duplicates it. Contains
				// is max-exclusive, so cutting at the median would hand the
				// whole stack to the right child and leave the left region
				// holding avatars it cannot contain (a zero-load slab).
				// Advance the cut past the duplicate run instead, keeping
				// the stack — and a balanced split — on the left.
				cut = advanceCut(pts, mid, axis)
			}
		default:
			cut = pts[mid].Y
			if pts[0].Y == cut {
				cut = advanceCut(pts, mid, axis)
			}
		}
		// Out-of-range cuts (duplicate stacks spanning the whole slab, or
		// median points on the boundary) fall back to a geometric cut so
		// regions keep positive area.
		lo, hi := r.Min, r.Max
		if axis == 0 {
			cut = snapCut(cut, lo.X, hi.X, snapX)
			if cut <= lo.X || cut >= hi.X {
				cut = (lo.X + hi.X) / 2
			}
		} else {
			cut = snapCut(cut, lo.Y, hi.Y, snapY)
			if cut <= lo.Y || cut >= hi.Y {
				cut = (lo.Y + hi.Y) / 2
			}
		}
		var left, right Rect
		if axis == 0 {
			left = Rect{Min: lo, Max: Vec2{cut, hi.Y}}
			right = Rect{Min: Vec2{cut, lo.Y}, Max: hi}
		} else {
			left = Rect{Min: lo, Max: Vec2{hi.X, cut}}
			right = Rect{Min: Vec2{lo.X, cut}, Max: hi}
		}
		var lp, rp []Vec2
		for _, p := range pts {
			if left.Contains(p) {
				lp = append(lp, p)
			} else {
				rp = append(rp, p)
			}
		}
		split(left, lp, d-1, 1-axis)
		split(right, rp, d-1, 1-axis)
	}
	split(bounds, pts, depth, 0)
	return out
}

// advanceCut returns the first coordinate strictly greater than the median
// value on the given axis (pts are sorted on that axis), or NaN-free +Inf
// semantics via the caller's boundary guard when every point shares the
// value: math.Inf pushes the cut out of range, triggering the geometric
// fallback.
func advanceCut(pts []Vec2, mid, axis int) float64 {
	v := pts[mid].X
	if axis != 0 {
		v = pts[mid].Y
	}
	for _, p := range pts[mid:] {
		c := p.X
		if axis != 0 {
			c = p.Y
		}
		if c > v {
			return c
		}
	}
	return math.Inf(1)
}

// snapCut rounds a cut to the nearest origin-anchored multiple of snap that
// stays strictly inside (lo, hi). When no such multiple exists (the slab is
// narrower than one snap unit) or snap is zero, the cut is returned as is.
func snapCut(cut, lo, hi, snap float64) float64 {
	if snap <= 0 || math.IsInf(cut, 0) {
		return cut
	}
	s := math.Round(cut/snap) * snap
	if s <= lo {
		s += snap
	}
	if s >= hi {
		s -= snap
	}
	if s <= lo || s >= hi {
		return cut
	}
	return s
}

// Region is one kd-tree leaf with its avatar load.
type Region struct {
	Bounds  Rect
	Avatars int
}

// AssignRegions distributes regions across n servers, balancing total
// avatar load greedily (largest region to the least-loaded server). It
// returns, for each region index, the server it is assigned to.
func AssignRegions(regions []Region, n int) []int {
	if n < 1 {
		n = 1
	}
	order := make([]int, len(regions))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return regions[order[a]].Avatars > regions[order[b]].Avatars
	})
	load := make([]int, n)
	assign := make([]int, len(regions))
	for _, ri := range order {
		best := 0
		for s := 1; s < n; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		assign[ri] = best
		load[best] += regions[ri].Avatars
	}
	return assign
}

// LoadImbalance returns max/mean server load for an assignment (1.0 is
// perfect balance). Empty assignments return 1.
func LoadImbalance(regions []Region, assign []int, n int) float64 {
	if n < 1 || len(regions) == 0 {
		return 1
	}
	load := make([]int, n)
	total := 0
	for i, r := range regions {
		load[assign[i]] += r.Avatars
		total += r.Avatars
	}
	if total == 0 {
		return 1
	}
	max := 0
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	mean := float64(total) / float64(n)
	return float64(max) / mean
}
